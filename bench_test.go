// Package logp_test holds the repository benchmark harness: one benchmark
// per table and figure of the paper (each executes the corresponding
// experiment generator and validates its qualitative checks), plus
// microbenchmarks of the simulation substrate itself.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// Per-figure simulated results are reported via custom metrics where a
// single number is meaningful (the benchmark wall time measures the
// simulator, not the simulated machine).
package logp_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"github.com/logp-model/logp/internal/algo/fft"
	"github.com/logp-model/logp/internal/algo/lu"
	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/experiments"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/network"
	"github.com/logp-model/logp/internal/prof"
	"github.com/logp-model/logp/internal/progs"
	"github.com/logp-model/logp/internal/sim"
)

// runExperiment executes one experiment per iteration and fails the
// benchmark if any of the figure's qualitative checks fail.
func runExperiment(b *testing.B, f func(experiments.Scale) experiments.Report) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep := f(1)
		for _, c := range rep.Failed() {
			b.Fatalf("%s: check %q failed: %s", rep.ID, c.Name, c.Detail)
		}
	}
}

func fixed(f func() experiments.Report) func(experiments.Scale) experiments.Report {
	return func(experiments.Scale) experiments.Report { return f() }
}

// --- One benchmark per table and figure (Deliverable d).

func BenchmarkFig2MicroprocessorTrends(b *testing.B) { runExperiment(b, fixed(experiments.Fig2)) }
func BenchmarkFig3OptimalBroadcast(b *testing.B)     { runExperiment(b, fixed(experiments.Fig3)) }
func BenchmarkFig4OptimalSummation(b *testing.B)     { runExperiment(b, fixed(experiments.Fig4)) }
func BenchmarkFig5HybridLayout(b *testing.B)         { runExperiment(b, fixed(experiments.Fig5)) }
func BenchmarkFig6FFTRemapSchedules(b *testing.B)    { runExperiment(b, experiments.Fig6) }
func BenchmarkFig7FFTComputeRates(b *testing.B)      { runExperiment(b, experiments.Fig7) }
func BenchmarkFig8CommunicationRates(b *testing.B)   { runExperiment(b, experiments.Fig8) }
func BenchmarkTableAvgDistance(b *testing.B) {
	runExperiment(b, fixed(experiments.TableAvgDistance))
}
func BenchmarkTable1UnloadedTime(b *testing.B)  { runExperiment(b, fixed(experiments.Table1)) }
func BenchmarkNetworkSaturation(b *testing.B)   { runExperiment(b, experiments.NetworkSaturation) }
func BenchmarkCapacitySaturation(b *testing.B)  { runExperiment(b, experiments.CapacitySaturation) }
func BenchmarkLULayouts(b *testing.B)           { runExperiment(b, experiments.LULayouts) }
func BenchmarkSortAlgorithms(b *testing.B)      { runExperiment(b, experiments.SortComparison) }
func BenchmarkConnectedComponents(b *testing.B) { runExperiment(b, experiments.CCStudy) }
func BenchmarkModelComparison(b *testing.B)     { runExperiment(b, fixed(experiments.ModelComparison)) }
func BenchmarkCapacityAblation(b *testing.B)    { runExperiment(b, fixed(experiments.CapacityAblation)) }
func BenchmarkBroadcastScheduleSweep(b *testing.B) {
	runExperiment(b, fixed(experiments.BroadcastSweep))
}
func BenchmarkMultithreadingLimits(b *testing.B) {
	runExperiment(b, fixed(experiments.Multithreading))
}
func BenchmarkLongMessages(b *testing.B)    { runExperiment(b, fixed(experiments.LongMessages)) }
func BenchmarkSurfaceToVolume(b *testing.B) { runExperiment(b, experiments.SurfaceToVolume) }

// --- Substrate microbenchmarks: how fast the simulators themselves run.

// BenchmarkKernelEventThroughput measures raw discrete-event dispatch: a
// self-rescheduling event chain of 100k events.
func BenchmarkKernelEventThroughput(b *testing.B) {
	const events = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		n := 0
		var tick func()
		tick = func() {
			n++
			if n < events {
				k.After(1, tick)
			}
		}
		k.After(1, tick)
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkMachineMessageThroughput measures simulated messages per second
// through the full LogP cost machinery (gap, capacity, overhead). The
// goroutine machine runs once per construction, so each machine is built
// with the timer stopped and only the run itself is measured; payloads are
// nil so the loop doesn't time 16k payload boxings per iteration.
func BenchmarkMachineMessageThroughput(b *testing.B) {
	const msgs = 2000
	cfg := logp.Config{Params: core.Params{P: 8, L: 20, O: 2, G: 4}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		m, err := logp.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if _, err := m.Run(func(p *logp.Proc) {
			next := (p.ID() + 1) % p.P()
			for m := 0; m < msgs; m++ {
				p.Send(next, 0, nil)
			}
			for m := 0; m < msgs; m++ {
				p.Recv()
			}
		}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(msgs*8*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// benchRing is the flat-engine counterpart of the workload above in
// reactive logp.Program form: every processor streams msgs messages to its
// ring successor and finishes after msgs receptions. Start re-initialises
// the per-processor count, so the program re-runs on a reused machine.
type benchRing struct {
	msgs int
	got  []int
}

func (r *benchRing) Start(n logp.Node) {
	me := n.ID()
	r.got[me] = 0
	next := (me + 1) % n.P()
	for i := 0; i < r.msgs; i++ {
		n.Send(next, 0, nil)
	}
}

func (r *benchRing) Message(n logp.Node, m logp.Message) {
	me := n.ID()
	r.got[me]++
	if r.got[me] == r.msgs {
		n.Done()
	}
}

// BenchmarkFlatMachineMessageThroughput is the identical machine and
// workload on the goroutine-free flat engine: same LogP parameters, same
// capacity limit, same per-message cost charges (the engines are pinned
// cycle-identical by the cross-engine tests in internal/flat). The machine
// is built once and re-Run, so iterations measure steady-state messaging.
func BenchmarkFlatMachineMessageThroughput(b *testing.B) {
	const msgs, procs = 2000, 8
	cfg := logp.Config{Params: core.Params{P: procs, L: 20, O: 2, G: 4}}
	m, err := flat.New(cfg, &benchRing{msgs: msgs, got: make([]int, procs)}, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Messages != msgs*procs {
			b.Fatalf("delivered %d messages, want %d", res.Messages, msgs*procs)
		}
	}
	b.ReportMetric(float64(msgs*procs*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkFlatShardedMessageThroughput runs the ring flood on the windowed
// parallel core: P=256 processors over 8 shards with the o+L conservative
// lookahead (capacity off — capacity semaphores couple shards).
func BenchmarkFlatShardedMessageThroughput(b *testing.B) {
	const msgs, procs, shards = 200, 256, 8
	cfg := logp.Config{
		Params:          core.Params{P: procs, L: 20, O: 2, G: 4},
		DisableCapacity: true,
	}
	m, err := flat.New(cfg, &benchRing{msgs: msgs, got: make([]int, procs)}, shards)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Messages != msgs*procs {
			b.Fatalf("delivered %d messages, want %d", res.Messages, msgs*procs)
		}
	}
	b.ReportMetric(float64(msgs*procs*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkFlatBroadcastP100k pins the scale target: the optimal broadcast
// tree over 10^5 processors on the flat engine, one full machine run per
// iteration (construction included — at this P the run itself dominates).
func BenchmarkFlatBroadcastP100k(b *testing.B) {
	const procs = 100_000
	params := core.Params{P: procs, L: 8, O: 2, G: 3}
	sched, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		b.Fatal(err)
	}
	cfg := logp.Config{Params: params, DisableCapacity: true}
	m, err := flat.New(cfg, progs.NewBroadcast(sched, 1, "datum"), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Messages != procs-1 {
			b.Fatalf("delivered %d messages, want %d", res.Messages, procs-1)
		}
	}
	b.ReportMetric(float64((procs-1)*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkFlatCapShardedMatrix is the multi-core scaling matrix for the
// capacity-sharded kernel: GOMAXPROCS x shards x P over the ring flood with
// the capacity constraint ON, so every send goes through the two-phase
// reserve/commit ledger and the window barriers replay it. The shards=1
// cells are the sequential capacity engine (the baseline); comparing a
// shards>1 cell at gomaxprocs=4 against the same cell at gomaxprocs=1
// isolates the multi-core win. Cells with gomaxprocs above the host's CPU
// count still run (the scheduler multiplexes) but cannot speed up — read
// the snapshot together with its recorded gomaxprocs/host.
func BenchmarkFlatCapShardedMatrix(b *testing.B) {
	const msgs = 50
	for _, gmp := range []int{1, 4} {
		for _, shards := range []int{1, 4, 8} {
			for _, procs := range []int{256, 2048} {
				name := fmt.Sprintf("gomaxprocs=%d/shards=%d/P=%d", gmp, shards, procs)
				b.Run(name, func(b *testing.B) {
					defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(gmp))
					cfg := logp.Config{Params: core.Params{P: procs, L: 20, O: 2, G: 4}}
					m, err := flat.New(cfg, &benchRing{msgs: msgs, got: make([]int, procs)}, shards)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						res, err := m.Run()
						if err != nil {
							b.Fatal(err)
						}
						if res.Messages != msgs*procs {
							b.Fatalf("delivered %d messages, want %d", res.Messages, msgs*procs)
						}
					}
					b.ReportMetric(float64(msgs*procs*b.N)/b.Elapsed().Seconds(), "msgs/s")
				})
			}
		}
	}
}

// BenchmarkHeapPushPop measures the typed 4-ary event heap in isolation: a
// reverse-time burst of schedules followed by a full drain. Steady-state
// push/pop must not allocate (the backing slice is pooled and reused).
func BenchmarkHeapPushPop(b *testing.B) {
	const events = 10_000
	b.ReportAllocs()
	n := 0
	count := func() { n++ }
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		for j := events; j > 0; j-- { // reverse order: worst-case sift-up
			k.At(sim.Time(j), count)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	if n != events*b.N {
		b.Fatalf("ran %d events, want %d", n, events*b.N)
	}
	b.ReportMetric(float64(events*b.N)/b.Elapsed().Seconds(), "events/s")
}

// BenchmarkContextSwitch measures the kernel<->process handoff: two
// processes alternating via Yield, which always forces a real park (the
// in-place clock advance cannot elide it). Each Yield is one round trip —
// two goroutine switches — and must not allocate.
func BenchmarkContextSwitch(b *testing.B) {
	const yields = 10_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		for p := 0; p < 2; p++ {
			k.Spawn("spinner", func(p *sim.Process) {
				for j := 0; j < yields; j++ {
					p.Yield()
				}
			})
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(2*yields*b.N)/b.Elapsed().Seconds(), "switches/s")
}

// BenchmarkProcessWait measures the elided-park fast path: a lone process
// advancing its clock. No events, no parks, no allocations.
func BenchmarkProcessWait(b *testing.B) {
	const waits = 100_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		k.Spawn("clock", func(p *sim.Process) {
			for j := 0; j < waits; j++ {
				p.Wait(3)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(waits*b.N)/b.Elapsed().Seconds(), "waits/s")
}

// BenchmarkOptimalBroadcastConstruction measures the schedule builder at a
// thousand processors.
func BenchmarkOptimalBroadcastConstruction(b *testing.B) {
	p := core.Params{P: 1024, L: 200, O: 66, G: 132}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.OptimalBroadcast(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOptimalSummationDP measures the summation dynamic program.
func BenchmarkOptimalSummationDP(b *testing.B) {
	p := core.Params{P: 64, L: 20, O: 4, G: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if core.SumCapacity(p, 400) == 0 {
			b.Fatal("no capacity")
		}
	}
}

// BenchmarkSequentialFFT measures the local FFT kernel (the per-processor
// work of the parallel phases).
func BenchmarkSequentialFFT(b *testing.B) {
	x := make([]complex128, 1<<14)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	b.ReportAllocs()
	b.SetBytes(int64(len(x) * 16))
	for i := 0; i < b.N; i++ {
		buf := append([]complex128(nil), x...)
		if err := fft.Forward(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParallelFFTSimulation measures a full simulated hybrid FFT run.
func BenchmarkParallelFFTSimulation(b *testing.B) {
	x := make([]complex128, 1<<12)
	rng := rand.New(rand.NewSource(1))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	cfg := fft.Config{N: len(x), Machine: fft.CM5Machine(16), Cost: fft.CM5Cost(), Schedule: fft.StaggeredSchedule}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := fft.Run(cfg, append([]complex128(nil), x...)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequentialLU measures the dense factorization kernel.
func BenchmarkSequentialLU(b *testing.B) {
	a := lu.Random(128, 3)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := lu.Factor(a.Clone()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPacketSimulator measures the packet-level network simulator.
func BenchmarkPacketSimulator(b *testing.B) {
	top := network.Mesh2D(8, 8, true)
	cfg := network.LoadConfig{RouterDelay: 2, Load: 0.2, Pattern: network.UniformTraffic, Horizon: 2000, Warmup: 400, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := network.RunLoad(top, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCollectiveBarrier measures the message-based dissemination
// barrier on 64 simulated processors.
func BenchmarkCollectiveBarrier(b *testing.B) {
	cfg := logp.Config{Params: core.Params{P: 64, L: 20, O: 2, G: 4}}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_, err := logp.Run(cfg, func(p *logp.Proc) {
			for r := 0; r < 4; r++ {
				collective.Barrier(p, 100+r*10)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOverlapFFT(b *testing.B) { runExperiment(b, fixed(experiments.OverlapFFT)) }

func BenchmarkPatternGaps(b *testing.B)    { runExperiment(b, experiments.PatternGaps) }
func BenchmarkParameterSpace(b *testing.B) { runExperiment(b, fixed(experiments.ParameterSpace)) }

func BenchmarkPRAMEmulation(b *testing.B) { runExperiment(b, fixed(experiments.PRAMEmulation)) }
func BenchmarkRobustness(b *testing.B)    { runExperiment(b, fixed(experiments.Robustness)) }

func BenchmarkBSPComparison(b *testing.B) { runExperiment(b, experiments.BSPComparison) }

func BenchmarkActiveMessages(b *testing.B) { runExperiment(b, fixed(experiments.ActiveMessages)) }

// --- Profiler hook overhead (the recorder must be free when off).

// ringExchange is the message-throughput workload: every processor streams
// msgs messages to its ring successor, then drains its own msgs receptions.
// Payloads are nil so the recorder-off steady state allocates nothing per
// message (boxing a non-pointer payload into the Message's any field is the
// caller's allocation, not the machine's).
func ringExchange(msgs int) func(p *logp.Proc) {
	return func(p *logp.Proc) {
		next := (p.ID() + 1) % p.P()
		for m := 0; m < msgs; m++ {
			p.Send(next, 0, nil)
		}
		for m := 0; m < msgs; m++ {
			p.Recv()
		}
	}
}

func benchSendRecv(b *testing.B, rec *prof.Recorder) {
	const msgs = 2000
	cfg := logp.Config{Params: core.Params{P: 8, L: 20, O: 2, G: 4}, Profiler: rec}
	body := ringExchange(msgs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := logp.Run(cfg, body); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(msgs*8*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkSendRecvRecorderOff measures Send/Recv with profiling off: the
// nil-checked hooks must leave the zero-allocation hot path untouched.
func BenchmarkSendRecvRecorderOff(b *testing.B) { benchSendRecv(b, nil) }

// BenchmarkSendRecvRecorderOn measures the same workload with the causal
// profiler recording every operation (the recorder is reused, so its op
// storage reaches a steady state too).
func BenchmarkSendRecvRecorderOn(b *testing.B) { benchSendRecv(b, prof.NewRecorder()) }

// --- Metrics hook overhead (the registry must be free when off).

func benchSendRecvMetrics(b *testing.B, reg *metrics.Registry) {
	const msgs = 2000
	cfg := logp.Config{Params: core.Params{P: 8, L: 20, O: 2, G: 4}, Metrics: reg}
	body := ringExchange(msgs)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := logp.Run(cfg, body); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(msgs*8*b.N)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkSendRecvMetricsOff measures Send/Recv with metrics off: the
// nil-checked hooks must leave the zero-allocation hot path untouched.
func BenchmarkSendRecvMetricsOff(b *testing.B) { benchSendRecvMetrics(b, nil) }

// BenchmarkSendRecvMetricsOn measures the same workload with the metrics
// registry attached and sampling at the default interval (the registry is
// reused across runs, so its sample storage reaches a steady state too).
func BenchmarkSendRecvMetricsOn(b *testing.B) { benchSendRecvMetrics(b, metrics.NewRegistry()) }

// TestSendRecvZeroAllocPerMessage pins the zero-allocation claim: with the
// recorder disabled, the steady-state cost of a message is zero heap
// allocations. Per-run setup (machine, processes, freelist warm-up) is
// amortized out by differencing two message counts.
func TestSendRecvZeroAllocPerMessage(t *testing.T) {
	cfg := logp.Config{Params: core.Params{P: 4, L: 20, O: 2, G: 4}}
	run := func(msgs int) func() {
		body := ringExchange(msgs)
		return func() {
			if _, err := logp.Run(cfg, body); err != nil {
				t.Fatal(err)
			}
		}
	}
	const small, large = 500, 2500
	base := testing.AllocsPerRun(10, run(small))
	grown := testing.AllocsPerRun(10, run(large))
	perMsg := (grown - base) / float64((large-small)*cfg.P)
	if perMsg > 0.01 {
		t.Errorf("steady-state messaging allocates %.4f allocs/message with the recorder off, want 0", perMsg)
	}
}

// TestMetricsOffZeroAllocPerMessage is the same differencing argument for the
// metrics subsystem: with Config.Metrics nil, the per-message cost of the
// counter and sampler hooks must be zero heap allocations.
func TestMetricsOffZeroAllocPerMessage(t *testing.T) {
	cfg := logp.Config{Params: core.Params{P: 4, L: 20, O: 2, G: 4}, Metrics: nil}
	run := func(msgs int) func() {
		body := ringExchange(msgs)
		return func() {
			if _, err := logp.Run(cfg, body); err != nil {
				t.Fatal(err)
			}
		}
	}
	const small, large = 500, 2500
	base := testing.AllocsPerRun(10, run(small))
	grown := testing.AllocsPerRun(10, run(large))
	perMsg := (grown - base) / float64((large-small)*cfg.P)
	if perMsg > 0.01 {
		t.Errorf("steady-state messaging allocates %.4f allocs/message with metrics off, want 0", perMsg)
	}
}
