// Package stats provides the small statistics and formatting helpers shared
// by the benchmark harness: summary statistics, exponential growth fitting
// (for the Figure 2 microprocessor trend), and ASCII table rendering.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary holds basic descriptive statistics.
type Summary struct {
	N                  int
	Mean, Min, Max, SD float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.SD = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of the ascending-sorted
// sample xs, interpolating linearly between order statistics (the same
// estimator as numpy's default). An empty sample yields NaN.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	return sorted[i] + frac*(sorted[i+1]-sorted[i])
}

// HistogramQuantiles estimates quantiles from bucketed counts, interpolating
// linearly inside the winning bucket (the histogram_quantile estimator).
// bounds are the ascending inclusive upper bounds of the first len(bounds)
// buckets; counts has one extra trailing bucket for observations above the
// last bound, whose estimate is clamped to that bound. With no observations
// or no bounds (only the overflow bucket) every quantile is NaN.
func HistogramQuantiles(bounds []float64, counts []int64, qs []float64) []float64 {
	out := make([]float64, len(qs))
	if len(bounds) == 0 {
		for k := range out {
			out[k] = math.NaN()
		}
		return out
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	for k, q := range qs {
		if total == 0 {
			out[k] = math.NaN()
			continue
		}
		if q < 0 {
			q = 0
		}
		if q > 1 {
			q = 1
		}
		rank := q * float64(total)
		var cum int64
		out[k] = bounds[len(bounds)-1]
		for i, c := range counts {
			if float64(cum+c) >= rank {
				if i >= len(bounds) {
					// Overflow bucket: no upper bound to interpolate toward.
					out[k] = bounds[len(bounds)-1]
					break
				}
				lo := 0.0
				if i > 0 {
					lo = bounds[i-1]
				}
				hi := bounds[i]
				if c > 0 {
					out[k] = lo + (hi-lo)*(rank-float64(cum))/float64(c)
				} else {
					out[k] = hi
				}
				break
			}
			cum += c
		}
	}
	return out
}

// LinearFit returns the least-squares slope and intercept of y on x.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, fmt.Errorf("stats: need >= 2 paired points, got %d/%d", len(x), len(y))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// GrowthRate fits an exponential y = a * (1+r)^x and returns the annual
// growth rate r (x in years). Used for the Figure 2 claim that
// floating-point performance grew ~97%/year and integer ~54%/year.
func GrowthRate(years, perf []float64) (float64, error) {
	logs := make([]float64, len(perf))
	for i, p := range perf {
		if p <= 0 {
			return 0, fmt.Errorf("stats: non-positive performance %v", p)
		}
		logs[i] = math.Log(p)
	}
	slope, _, err := LinearFit(years, logs)
	if err != nil {
		return 0, err
	}
	return math.Exp(slope) - 1, nil
}

// Table renders rows of cells as an aligned ASCII table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence for figure output.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// CSV renders one or more series sharing an x-axis as CSV with a header,
// for plotting figures externally.
func CSV(xName string, series ...Series) string {
	var b strings.Builder
	b.WriteString(xName)
	for _, s := range series {
		b.WriteString("," + s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
