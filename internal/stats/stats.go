// Package stats provides the small statistics and formatting helpers shared
// by the benchmark harness: summary statistics, exponential growth fitting
// (for the Figure 2 microprocessor trend), and ASCII table rendering.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Summary holds basic descriptive statistics.
type Summary struct {
	N                  int
	Mean, Min, Max, SD float64
}

// Summarize computes descriptive statistics of xs.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	if s.N == 0 {
		return Summary{}
	}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if s.N > 1 {
		s.SD = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// LinearFit returns the least-squares slope and intercept of y on x.
func LinearFit(x, y []float64) (slope, intercept float64, err error) {
	if len(x) != len(y) || len(x) < 2 {
		return 0, 0, fmt.Errorf("stats: need >= 2 paired points, got %d/%d", len(x), len(y))
	}
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("stats: degenerate x values")
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, nil
}

// GrowthRate fits an exponential y = a * (1+r)^x and returns the annual
// growth rate r (x in years). Used for the Figure 2 claim that
// floating-point performance grew ~97%/year and integer ~54%/year.
func GrowthRate(years, perf []float64) (float64, error) {
	logs := make([]float64, len(perf))
	for i, p := range perf {
		if p <= 0 {
			return 0, fmt.Errorf("stats: non-positive performance %v", p)
		}
		logs[i] = math.Log(p)
	}
	slope, _, err := LinearFit(years, logs)
	if err != nil {
		return 0, err
	}
	return math.Exp(slope) - 1, nil
}

// Table renders rows of cells as an aligned ASCII table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row; values are formatted with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Header))
	for i, h := range t.Header {
		width[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}

// Series is a named (x, y) sequence for figure output.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// CSV renders one or more series sharing an x-axis as CSV with a header,
// for plotting figures externally.
func CSV(xName string, series ...Series) string {
	var b strings.Builder
	b.WriteString(xName)
	for _, s := range series {
		b.WriteString("," + s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].X {
		fmt.Fprintf(&b, "%g", series[0].X[i])
		for _, s := range series {
			if i < len(s.Y) {
				fmt.Fprintf(&b, ",%g", s.Y[i])
			} else {
				b.WriteString(",")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
