package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Errorf("summary %+v", s)
	}
	if math.Abs(s.SD-1.2909944487) > 1e-9 {
		t.Errorf("sd = %v", s.SD)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Errorf("empty summary %+v", z)
	}
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{0, 1, 2, 3}
	y := []float64{1, 3, 5, 7}
	slope, intercept, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(slope-2) > 1e-12 || math.Abs(intercept-1) > 1e-12 {
		t.Errorf("fit %v, %v", slope, intercept)
	}
	if _, _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point accepted")
	}
	if _, _, err := LinearFit([]float64{2, 2}, []float64{1, 3}); err == nil {
		t.Error("degenerate x accepted")
	}
}

func TestLinearFitProperty(t *testing.T) {
	f := func(a, b int8) bool {
		slope0, icept0 := float64(a)/8, float64(b)
		x := []float64{0, 1, 2, 3, 4}
		y := make([]float64, len(x))
		for i := range x {
			y[i] = slope0*x[i] + icept0
		}
		s, ic, err := LinearFit(x, y)
		if err != nil {
			return false
		}
		return math.Abs(s-slope0) < 1e-9 && math.Abs(ic-icept0) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if got := Quantile([]float64{7}, 0.5); got != 7 {
		t.Errorf("singleton quantile %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty sample should be NaN")
	}
}

func TestHistogramQuantiles(t *testing.T) {
	// 10 observations uniform in (0,10]: bounds 5 and 10, no overflow.
	bounds := []float64{5, 10}
	counts := []int64{5, 5, 0}
	got := HistogramQuantiles(bounds, counts, []float64{0.5, 0.9, 1})
	want := []float64{5, 9, 10}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Errorf("q[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Overflow bucket clamps to the last bound.
	over := HistogramQuantiles(bounds, []int64{0, 0, 4}, []float64{0.5})
	if over[0] != 10 {
		t.Errorf("overflow quantile %v, want 10", over[0])
	}
	// No observations: NaN.
	if !math.IsNaN(HistogramQuantiles(bounds, []int64{0, 0, 0}, []float64{0.5})[0]) {
		t.Error("empty histogram should be NaN")
	}
	// No bounds (overflow bucket only): NaN, not an index panic, even with
	// observations present.
	if !math.IsNaN(HistogramQuantiles(nil, []int64{7}, []float64{0.5})[0]) {
		t.Error("boundless histogram should be NaN")
	}
}

func TestGrowthRate(t *testing.T) {
	years := []float64{1987, 1988, 1989, 1990}
	perf := []float64{10, 20, 40, 80} // doubling: 100%/yr
	r, err := GrowthRate(years, perf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r-1.0) > 1e-9 {
		t.Errorf("growth %v, want 1.0", r)
	}
	if _, err := GrowthRate(years, []float64{1, -2, 3, 4}); err == nil {
		t.Error("negative performance accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Header: []string{"name", "value"}}
	tb.Add("alpha", 3.14159)
	tb.Add("b", 42)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "3.14") || !strings.Contains(out, "42") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Errorf("%d lines, want 4", len(lines))
	}
}

func TestCSV(t *testing.T) {
	s1 := Series{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}}
	s2 := Series{Name: "b", X: []float64{1, 2}, Y: []float64{30, 40}}
	out := CSV("n", s1, s2)
	want := "n,a,b\n1,10,30\n2,20,40\n"
	if out != want {
		t.Errorf("csv = %q, want %q", out, want)
	}
	if CSV("x") != "x\n" {
		t.Error("empty csv wrong")
	}
}
