package logp

import (
	"errors"
	"testing"

	"github.com/logp-model/logp/internal/sim"
)

func TestProcSkewSystematic(t *testing.T) {
	c := cfg(4, 6, 2, 4)
	c.ProcSkew = 0.5
	c.Seed = 3
	res, err := Run(c, func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every processor computes at its own fixed rate in [1000, 1500].
	distinct := map[int64]bool{}
	for _, s := range res.Procs {
		if s.Compute < 1000 || s.Compute > 1500 {
			t.Errorf("proc %d compute %d outside skew range", s.Proc, s.Compute)
		}
		distinct[s.Compute] = true
	}
	if len(distinct) < 2 {
		t.Error("skew produced identical processors")
	}
	// Same seed, same skews.
	res2, err := Run(c, func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Procs {
		if res.Procs[i].Compute != res2.Procs[i].Compute {
			t.Error("skew not deterministic in seed")
		}
	}
	bad := cfg(2, 6, 2, 4)
	bad.ProcSkew = -0.1
	if _, err := New(bad); err == nil {
		t.Error("negative skew accepted")
	}
}

// TestHoldCapacityUntilReceive: under the stricter reading, slots free only
// when the destination processor receives, so a sender outpacing a busy
// receiver stalls even one-on-one.
func TestHoldCapacityUntilReceive(t *testing.T) {
	c := cfg(2, 10, 1, 2) // capacity ceil(10/2) = 5
	c.HoldCapacityUntilReceive = true
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 20; i++ {
				p.Send(1, 0, i)
			}
		case 1:
			p.Compute(500) // busy: messages pile up at the module
			for i := 0; i < 20; i++ {
				p.Recv()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxInTransitTo > 5 {
		t.Errorf("outstanding count %d exceeds capacity 5", res.MaxInTransitTo)
	}
	if res.Procs[0].Stall == 0 {
		t.Error("sender never stalled against the busy receiver")
	}
	// Default semantics: the same program never stalls (arrival frees the
	// slot regardless of the receiver being busy).
	c.HoldCapacityUntilReceive = false
	res2, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 20; i++ {
				p.Send(1, 0, i)
			}
		case 1:
			p.Compute(500)
			for i := 0; i < 20; i++ {
				p.Recv()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Procs[0].Stall != 0 {
		t.Errorf("arrival-release sender stalled %d cycles", res2.Procs[0].Stall)
	}
}

// TestHoldCapacityDeadlocksFlood documents why the model ends "in transit"
// at arrival: if slots are held until reception, an all-to-one flood where
// senders only receive between sends deadlocks — every processor is blocked
// inside Send and cannot drain its own inbox. The kernel detects it.
func TestHoldCapacityDeadlocksFlood(t *testing.T) {
	c := cfg(4, 10, 1, 2)
	c.HoldCapacityUntilReceive = true
	_, err := Run(c, func(p *Proc) {
		expect := 3 * 20
		got := 0
		for i := 0; i < 20; i++ {
			for d := 0; d < 4; d++ {
				if d == p.ID() {
					continue
				}
				if p.HasMessage() && got < expect {
					p.Recv()
					got++
				}
				p.Send(d, 0, nil)
			}
		}
		for got < expect {
			p.Recv()
			got++
		}
	})
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

func TestInTransitTrackedWithoutEnforcement(t *testing.T) {
	c := cfg(4, 20, 0, 1)
	c.DisableCapacity = true
	res, err := Run(c, func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 30; i++ {
				p.Recv()
			}
			return
		}
		for i := 0; i < 10; i++ {
			p.Send(0, 0, i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxInTransitTo <= c.Params.Capacity() {
		t.Errorf("flood without enforcement peaked at %d, expected above capacity %d",
			res.MaxInTransitTo, c.Params.Capacity())
	}
}
