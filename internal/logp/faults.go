package logp

import (
	"fmt"
	"math"
	"math/rand"
)

// Fault injection. Section 2 of the paper assumes the network "delivers all
// messages reliably", while conceding that real interconnects degrade: links
// drop and duplicate packets, latency grows under congestion, and nodes slow
// down or die. A FaultPlan attached to Config.Faults injects exactly those
// degradations into a machine run, deterministically in its own seed, so
// that protocols layered on the machine (internal/reliable) can be tested
// against the failures they exist to mask. With Config.Faults == nil every
// fault check is a single nil test and the simulator behaves — and costs —
// exactly as the fault-free machine, so the zero-allocation hot paths and
// the Figure 3/4 exactness results are untouched.
//
// Semantics (documented in DESIGN.md §7):
//
//   - a dropped message is injected normally (the sender pays o, the gap and
//     the capacity constraint) and is lost at the destination module: its
//     capacity slots free at the would-be arrival, even under
//     HoldCapacityUntilReceive (the network has discarded its buffer);
//   - a duplicated message yields a second copy, created inside the network,
//     that arrives strictly after the original (at least one cycle later,
//     plus its own jitter draw) and is exempt from the capacity constraint —
//     the sender injected only one message;
//   - fault jitter ADDS latency beyond L, deliberately violating the model's
//     upper bound: it models the degraded network the paper's L does not;
//   - a slowdown stretches Compute calls whose start time falls inside the
//     window — transient contention, thermal throttling, a noisy neighbour;
//   - a fail-stopped processor halts at the next machine operation at or
//     after its deadline (a blocked receiver is woken and halts immediately);
//     messages addressed to it are discarded on arrival, and the run reports
//     it in Result.Failed instead of failing. The hardware Barrier is NOT
//     fault-tolerant: if a dead processor never arrives, the survivors
//     deadlock, which the kernel reports as such.
//
// Determinism contract: all fault randomness comes from a dedicated
// generator seeded with FaultPlan.Seed, and a draw is made only when the
// corresponding rate is non-zero, in the fixed per-message order
// jitter → drop → duplicate (→ duplicate's jitter). Two runs with equal
// Config, FaultPlan and program are therefore bit-identical, and an
// all-zero FaultPlan reproduces the nil-plan run exactly, cycle for cycle.

// Link identifies a directed sender→receiver pair of processors.
type Link struct{ From, To int }

// LinkFault describes the misbehaviour of one directed link. The zero value
// is a perfect link.
type LinkFault struct {
	// Drop is the probability, per message, that the network loses the
	// message in flight.
	Drop float64
	// Dup is the probability, per delivered message, that the network
	// delivers a second copy of it.
	Dup float64
	// Jitter adds uniform extra latency in [0, Jitter] cycles on top of the
	// model's L bound (degradation, unlike Config.LatencyJitter which stays
	// under L).
	Jitter int64
}

func (lf LinkFault) validate() error {
	if lf.Drop < 0 || lf.Drop > 1 {
		return fmt.Errorf("logp: drop rate %v outside [0,1]", lf.Drop)
	}
	if lf.Dup < 0 || lf.Dup > 1 {
		return fmt.Errorf("logp: duplication rate %v outside [0,1]", lf.Dup)
	}
	if lf.Jitter < 0 {
		return fmt.Errorf("logp: negative fault jitter %d", lf.Jitter)
	}
	return nil
}

// Slowdown is a transient processor slowdown: Compute calls of Proc whose
// start time falls in [Start, End) stretch by Factor.
type Slowdown struct {
	Proc       int
	Start, End int64
	Factor     float64 // >= 1
}

// FailStop halts processor Proc at the first machine operation at or after
// local time At.
type FailStop struct {
	Proc int
	At   int64
}

// FaultPlan is a complete, seeded description of the faults to inject into
// one machine run. The zero value injects nothing (but still exercises the
// fault-aware bookkeeping, which is how the chaos experiment pins the
// zero-fault configuration to the exact Figure 3/4 numbers).
type FaultPlan struct {
	// Seed drives all fault randomness, independently of Config.Seed.
	Seed int64
	// Default applies to every link without an explicit override.
	Default LinkFault
	// Links overrides Default per directed link (the entry replaces Default
	// entirely for that link).
	Links map[Link]LinkFault
	// Slowdowns are transient compute-stretch windows.
	Slowdowns []Slowdown
	// FailStops kill processors at fixed times.
	FailStops []FailStop
}

// Validate checks the plan against a machine of P processors.
func (fp *FaultPlan) Validate(P int) error {
	if err := fp.Default.validate(); err != nil {
		return err
	}
	for l, lf := range fp.Links {
		if l.From < 0 || l.From >= P || l.To < 0 || l.To >= P {
			return fmt.Errorf("logp: fault link %d->%d outside machine of P=%d", l.From, l.To, P)
		}
		if err := lf.validate(); err != nil {
			return err
		}
	}
	for _, s := range fp.Slowdowns {
		if s.Proc < 0 || s.Proc >= P {
			return fmt.Errorf("logp: slowdown for proc %d outside machine of P=%d", s.Proc, P)
		}
		if s.Factor < 1 {
			return fmt.Errorf("logp: slowdown factor %v below 1", s.Factor)
		}
		if s.End <= s.Start {
			return fmt.Errorf("logp: empty slowdown window [%d,%d)", s.Start, s.End)
		}
	}
	for _, fs := range fp.FailStops {
		if fs.Proc < 0 || fs.Proc >= P {
			return fmt.Errorf("logp: fail-stop for proc %d outside machine of P=%d", fs.Proc, P)
		}
		if fs.At < 0 {
			return fmt.Errorf("logp: fail-stop at negative time %d", fs.At)
		}
	}
	return nil
}

// faultState is the per-run runtime of a FaultPlan.
type faultState struct {
	plan *FaultPlan
	rng  *rand.Rand
	slow [][]Slowdown // per-processor slowdown windows
}

func newFaultState(plan *FaultPlan, P int) *faultState {
	f := &faultState{plan: plan, rng: rand.New(rand.NewSource(plan.Seed))}
	if len(plan.Slowdowns) > 0 {
		f.slow = make([][]Slowdown, P)
		for _, s := range plan.Slowdowns {
			f.slow[s.Proc] = append(f.slow[s.Proc], s)
		}
	}
	return f
}

// link resolves the fault parameters of the directed link from→to.
func (f *faultState) link(from, to int) LinkFault {
	if f.plan.Links != nil {
		if lf, ok := f.plan.Links[Link{from, to}]; ok {
			return lf
		}
	}
	return f.plan.Default
}

// slowFactor returns the compute stretch for proc at local time t (the
// largest factor among overlapping windows, 1 if none).
func (f *faultState) slowFactor(proc int, t int64) float64 {
	if f.slow == nil {
		return 1
	}
	factor := 1.0
	for _, s := range f.slow[proc] {
		if t >= s.Start && t < s.End {
			factor = math.Max(factor, s.Factor)
		}
	}
	return factor
}

// messageFate draws the fate of one message on the link from→to, in the
// fixed order jitter → drop → duplicate → duplicate jitter, consuming
// random draws only for non-zero rates so an all-zero plan leaves the
// generator untouched.
func (f *faultState) messageFate(from, to int, lat int64) (newLat int64, drop, dup bool, dupLat int64) {
	lf := f.link(from, to)
	if lf.Jitter > 0 {
		lat += f.rng.Int63n(lf.Jitter + 1)
	}
	if lf.Drop > 0 && f.rng.Float64() < lf.Drop {
		return lat, true, false, 0
	}
	if lf.Dup > 0 && f.rng.Float64() < lf.Dup {
		dupLat = lat + 1
		if lf.Jitter > 0 {
			dupLat += f.rng.Int63n(lf.Jitter + 1)
		}
		return lat, false, true, dupLat
	}
	return lat, false, false, 0
}

// procFailure is the panic value a fail-stopped processor unwinds with; the
// machine recovers it at the processor body boundary.
type procFailure struct{ proc int }
