package logp

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// metricsRing runs a ring exchange (each processor streams msgs messages to
// its successor, then drains its own receptions) with the given registry
// attached, returning the run result.
func metricsRing(t *testing.T, c Config, msgs int) Result {
	t.Helper()
	res, err := Run(c, func(p *Proc) {
		next := (p.ID() + 1) % p.P()
		for m := 0; m < msgs; m++ {
			p.Send(next, 0, nil)
		}
		for m := 0; m < msgs; m++ {
			p.Recv()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestMetricsCountersMatchResult pins the counters to the machine's own
// accounting: the registry must agree exactly with Result.
func TestMetricsCountersMatchResult(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cfg(4, 20, 2, 4)
	c.LatencyJitter = 5
	c.Seed = 3
	c.Metrics = reg
	c.MetricsEvery = 32
	const msgs = 40
	res := metricsRing(t, c, msgs)

	if res.Messages != msgs*4 {
		t.Fatalf("ring delivered %d messages, want %d", res.Messages, msgs*4)
	}
	if got := reg.DeliveredTotal(); got != int64(res.Messages) {
		t.Errorf("delivered counter %d, want %d", got, res.Messages)
	}
	if got := reg.TotalStallCycles(); got != res.TotalStall() {
		t.Errorf("stall cycles %d, want %d", got, res.TotalStall())
	}
	for i, s := range res.Procs {
		if reg.Procs[i].Sends.Value() != int64(s.MsgsSent) {
			t.Errorf("proc %d sends %d, want %d", i, reg.Procs[i].Sends.Value(), s.MsgsSent)
		}
		if reg.Procs[i].Recvs.Value() != int64(s.MsgsReceived) {
			t.Errorf("proc %d recvs %d, want %d", i, reg.Procs[i].Recvs.Value(), s.MsgsReceived)
		}
		next := (i + 1) % 4
		if reg.Link(i, next).Value() != msgs {
			t.Errorf("link %d->%d %d, want %d", i, next, reg.Link(i, next).Value(), msgs)
		}
		if reg.Link(next, i).Value() != 0 {
			t.Errorf("link %d->%d %d, want 0", next, i, reg.Link(next, i).Value())
		}
	}
	if reg.SimTime() != res.Time {
		t.Errorf("sim time %d, want %d", reg.SimTime(), res.Time)
	}
	// Every flight took between L-jitter and L cycles.
	h := reg.FlightCycles
	if h.Count() != int64(res.Messages) {
		t.Errorf("flight histogram %d observations, want %d", h.Count(), res.Messages)
	}
	if h.Min() < c.L-c.LatencyJitter || h.Max() > c.L {
		t.Errorf("flight range [%d, %d] outside [L-jitter=%d, L=%d]", h.Min(), h.Max(), c.L-c.LatencyJitter, c.L)
	}
}

// TestMetricsSampler checks the time series: samples land on the configured
// interval, in-flight counts never exceed the capacity ceiling, delivered is
// monotone, and the series is closed out at the end of the run.
func TestMetricsSampler(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cfg(4, 20, 2, 4)
	c.Metrics = reg
	c.MetricsEvery = 64
	res := metricsRing(t, c, 60)

	if len(reg.Samples) < 3 {
		t.Fatalf("only %d samples for a %d-cycle run at interval 64", len(reg.Samples), res.Time)
	}
	capacity := c.Params.Capacity()
	prevTime, prevDelivered := int64(-1), int64(-1)
	for k, s := range reg.Samples {
		if s.Time <= prevTime {
			t.Fatalf("sample %d time %d not increasing past %d", k, s.Time, prevTime)
		}
		if k < len(reg.Samples)-1 && s.Time != int64(k+1)*c.MetricsEvery {
			t.Errorf("sample %d at time %d, want %d", k, s.Time, int64(k+1)*c.MetricsEvery)
		}
		if s.Delivered < prevDelivered {
			t.Errorf("delivered series not monotone at sample %d", k)
		}
		prevTime, prevDelivered = s.Time, s.Delivered
		for i := 0; i < 4; i++ {
			if int(s.InFlightFrom[i]) > capacity || int(s.InFlightTo[i]) > capacity {
				t.Errorf("sample %d: in-flight (%d from, %d to) exceeds capacity %d",
					k, s.InFlightFrom[i], s.InFlightTo[i], capacity)
			}
			if s.Utilization[i] < 0 || s.Utilization[i] > 1 {
				t.Errorf("sample %d: utilization %v outside [0,1]", k, s.Utilization[i])
			}
		}
	}
	last := reg.Samples[len(reg.Samples)-1]
	if last.Time < res.Time {
		t.Errorf("series ends at %d before completion time %d", last.Time, res.Time)
	}
	if last.Delivered != reg.DeliveredTotal() {
		t.Errorf("final sample delivered %d, want %d", last.Delivered, reg.DeliveredTotal())
	}
}

// TestMetricsDeadlockStillDetected guards against the sampler masking the
// kernel's deadlock detection: a recurring sample event must not keep the
// queue non-empty forever when every live processor is blocked with nothing
// scheduled to wake it, or Run would spin instead of returning the error.
func TestMetricsDeadlockStillDetected(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cfg(2, 20, 2, 4)
	c.Metrics = reg
	c.MetricsEvery = 16
	_, err := Run(c, func(p *Proc) {
		p.Recv() // nobody ever sends
	})
	var dl *sim.DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want deadlock", err)
	}
}

// TestMetricsNoSamplePastFinish pins the series to the run: with a sampling
// interval longer than the whole run, the only sample is the closing one at
// the final completion time, never a later interval boundary.
func TestMetricsNoSamplePastFinish(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cfg(2, 20, 2, 4)
	c.Metrics = reg
	c.MetricsEvery = 1 << 20
	res := metricsRing(t, c, 2)
	if len(reg.Samples) != 1 {
		t.Fatalf("%d samples, want exactly the closing one", len(reg.Samples))
	}
	if got := reg.Samples[0].Time; got != res.Time {
		t.Errorf("sample at %d, want completion time %d", got, res.Time)
	}
}

// TestMetricsRegistryReuse runs two machines against one registry: Begin must
// wipe the first run completely.
func TestMetricsRegistryReuse(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cfg(4, 20, 2, 4)
	c.Metrics = reg
	metricsRing(t, c, 50)
	first := reg.DeliveredTotal()
	metricsRing(t, c, 10)
	if got := reg.DeliveredTotal(); got >= first {
		t.Errorf("second run delivered %d, want fewer than %d (stale counters?)", got, first)
	}
	if got := reg.DeliveredTotal(); got != 40 {
		t.Errorf("second run delivered %d, want 40", got)
	}
}

// TestMetricsGoldenPrometheus locks the exported Prometheus text for a fixed
// configuration and seed. Regenerate with: go test ./internal/logp -run
// Golden -update
func TestMetricsGoldenPrometheus(t *testing.T) {
	reg := metrics.NewRegistry()
	c := cfg(4, 16, 2, 4)
	c.LatencyJitter = 4
	c.Seed = 7
	c.Metrics = reg
	c.MetricsEvery = 64
	metricsRing(t, c, 25)

	var buf bytes.Buffer
	if err := metrics.WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "metrics_golden.prom")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("prometheus output drifted from golden file; rerun with -update and review the diff\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
}
