package logp

import (
	"fmt"
	"os"
	"sort"
	"sync"

	"github.com/logp-model/logp/internal/core"
)

// The engine seam. A Program is an algorithm written in reactive
// (continuation) style: instead of a blocking body per processor, it exposes
// a Start handler and a Message handler, and inside a handler it *records*
// machine operations (Send, Compute, Wait, WaitUntil, Done) against the Node
// it was handed. Handlers never block; the operations are charged by the
// engine after the handler returns, in recording order, and the processor
// then waits for its next message (or finishes, after Done).
//
// The point of the restriction is that a Program carries no goroutine stack:
// it can run on the goroutine machine (each processor replays its recorded
// operations through the blocking Proc primitives) or on a flat,
// goroutine-free event core (internal/flat) that steps per-processor structs
// directly — and, because both engines charge the operations through the
// same cost rules in the same order, the two runs are cycle-identical.
// Engines register themselves here; EngineByName is the seam callers use.

// Node is the per-processor handle a Program's handlers receive. Operation
// methods record work to be charged after the handler returns; accessors
// reflect the state at handler entry. A Node is only valid inside the
// handler invocation it was passed to.
type Node interface {
	// ID is the processor number in [0, P).
	ID() int
	// P is the machine's processor count.
	P() int
	// Params returns the machine's LogP parameters.
	Params() core.Params
	// Now is the processor's local time at handler entry.
	Now() int64
	// Send records a one-word message send to processor to.
	Send(to, tag int, data any)
	// Compute records cycles of local work.
	Compute(cycles int64)
	// Wait records an idle wait of the given number of cycles.
	Wait(cycles int64)
	// WaitUntil records an idle wait until an absolute time.
	WaitUntil(t int64)
	// Done marks the processor finished: after the recorded operations are
	// charged, the processor halts instead of waiting for the next message.
	Done()
}

// Program is a reactive algorithm: Start runs once on every processor at
// time zero, Message runs on the destination processor for every received
// message. Handlers must confine mutable state to the processor they run on
// (e.g. per-processor slice slots): a sharded engine may run handlers of
// different processors concurrently.
type Program interface {
	Start(n Node)
	Message(n Node, m Message)
}

// Engine runs Programs on some implementation of the LogP machine.
type Engine interface {
	// Name identifies the engine ("goroutine", "flat").
	Name() string
	// Run executes prog on a machine built from cfg.
	Run(cfg Config, prog Program) (Result, error)
}

var (
	enginesMu sync.RWMutex
	engines   = map[string]Engine{}

	defaultEngineMu sync.RWMutex
	defaultEngine   = ""
)

// RegisterEngine makes an engine available to EngineByName. Engines register
// themselves from an init function; a duplicate name panics.
func RegisterEngine(e Engine) {
	enginesMu.Lock()
	defer enginesMu.Unlock()
	if _, dup := engines[e.Name()]; dup {
		panic(fmt.Sprintf("logp: duplicate engine %q", e.Name()))
	}
	engines[e.Name()] = e
}

// EngineByName resolves a registered engine.
func EngineByName(name string) (Engine, error) {
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	if e, ok := engines[name]; ok {
		return e, nil
	}
	return nil, fmt.Errorf("logp: unknown engine %q (have %v)", name, engineNamesLocked())
}

// EngineNames lists the registered engines, sorted.
func EngineNames() []string {
	enginesMu.RLock()
	defer enginesMu.RUnlock()
	return engineNamesLocked()
}

func engineNamesLocked() []string {
	names := make([]string, 0, len(engines))
	for n := range engines {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// DefaultEngineName is the engine used when a caller does not choose one
// explicitly: the name set by SetDefaultEngineName, else the LOGP_ENGINE
// environment variable, else "goroutine". This is how the CI engine matrix
// re-runs engine-agnostic tests and commands on the flat core.
func DefaultEngineName() string {
	defaultEngineMu.RLock()
	name := defaultEngine
	defaultEngineMu.RUnlock()
	if name != "" {
		return name
	}
	if env := os.Getenv("LOGP_ENGINE"); env != "" {
		return env
	}
	return "goroutine"
}

// SetDefaultEngineName overrides the default engine ("" restores the
// environment/default resolution). Command binaries call it once at startup
// from their -engine flag.
func SetDefaultEngineName(name string) {
	defaultEngineMu.Lock()
	defaultEngine = name
	defaultEngineMu.Unlock()
}

// DefaultEngine resolves DefaultEngineName against the registry.
func DefaultEngine() (Engine, error) { return EngineByName(DefaultEngineName()) }

// progOp is one recorded Node operation.
type progOp struct {
	kind uint8
	a, b int64
	data any
}

const (
	opSend uint8 = iota
	opCompute
	opWait
	opWaitUntil
)

// gNode adapts a goroutine-machine Proc to the Node interface: handlers
// record operations, the driver replays them through the blocking Proc
// primitives. The ops slice is reused across handler invocations, so the
// steady-state flow does not allocate.
type gNode struct {
	p    *Proc
	ops  []progOp
	done bool
}

func (n *gNode) ID() int             { return n.p.ID() }
func (n *gNode) P() int              { return n.p.P() }
func (n *gNode) Params() core.Params { return n.p.Params() }
func (n *gNode) Now() int64          { return n.p.Now() }
func (n *gNode) Done()               { n.done = true }

func (n *gNode) Send(to, tag int, data any) {
	n.ops = append(n.ops, progOp{kind: opSend, a: int64(to), b: int64(tag), data: data})
}
func (n *gNode) Compute(cycles int64) { n.ops = append(n.ops, progOp{kind: opCompute, a: cycles}) }
func (n *gNode) Wait(cycles int64)    { n.ops = append(n.ops, progOp{kind: opWait, a: cycles}) }
func (n *gNode) WaitUntil(t int64)    { n.ops = append(n.ops, progOp{kind: opWaitUntil, a: t}) }

// replay charges the recorded operations in order.
func (n *gNode) replay() {
	for i := 0; i < len(n.ops); i++ {
		op := &n.ops[i]
		switch op.kind {
		case opSend:
			n.p.Send(int(op.a), int(op.b), op.data)
		case opCompute:
			n.p.Compute(op.a)
		case opWait:
			n.p.Wait(op.a)
		case opWaitUntil:
			n.p.WaitUntil(op.a)
		}
		op.data = nil
	}
	n.ops = n.ops[:0]
}

// RunProgram executes a Program on the goroutine machine: the reference
// driver the flat engine is pinned against. Each processor body runs Start,
// replays the recorded operations, then loops receiving a message, running
// the Message handler and replaying, until the handler calls Done.
func RunProgram(cfg Config, prog Program) (Result, error) {
	m, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(func(p *Proc) {
		n := &gNode{p: p}
		prog.Start(n)
		n.replay()
		for !n.done {
			msg := p.Recv()
			prog.Message(n, msg)
			n.replay()
		}
	})
}

// goroutineEngine is the Engine wrapper over RunProgram.
type goroutineEngine struct{}

func (goroutineEngine) Name() string                                 { return "goroutine" }
func (goroutineEngine) Run(cfg Config, prog Program) (Result, error) { return RunProgram(cfg, prog) }

func init() { RegisterEngine(goroutineEngine{}) }

// AsDup returns a copy of m marked as a network-made duplicate. It exists
// for engines implemented outside this package (internal/flat), which must
// reproduce the machine's duplicate-delivery bookkeeping; algorithm code has
// no use for it.
func (m Message) AsDup() Message { m.dup = true; return m }

// FaultRuntime exposes the per-run fault machinery to engines implemented
// outside this package. It wraps the same seeded state the goroutine machine
// uses, so an external engine making the identical sequence of calls draws
// the identical fates.
type FaultRuntime struct{ fs *faultState }

// NewFaultRuntime builds the runtime for one run. The plan must already have
// been validated against the machine's P.
func NewFaultRuntime(plan *FaultPlan, P int) *FaultRuntime {
	return &FaultRuntime{fs: newFaultState(plan, P)}
}

// Plan returns the plan the runtime was built from.
func (f *FaultRuntime) Plan() *FaultPlan { return f.fs.plan }

// MessageFate draws the fate of one message on the from→to link; see
// faultState.messageFate for the draw-order contract.
func (f *FaultRuntime) MessageFate(from, to int, lat int64) (newLat int64, drop, dup bool, dupLat int64) {
	return f.fs.messageFate(from, to, lat)
}

// SlowFactor returns the compute stretch for proc at local time t.
func (f *FaultRuntime) SlowFactor(proc int, t int64) float64 { return f.fs.slowFactor(proc, t) }
