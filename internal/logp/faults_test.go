package logp

import (
	"testing"
)

// drainBody receives until deadline, ignoring content: a receiver for tests
// whose messages may never arrive.
func drainBody(deadline int64) func(p *Proc) {
	return func(p *Proc) {
		for {
			if _, ok := p.RecvTimeout(deadline); !ok {
				return
			}
		}
	}
}

// pingPong is a small program with jitter-sensitive timing, used to compare
// runs cycle for cycle.
func pingPong(rounds int) func(p *Proc) {
	return func(p *Proc) {
		for i := 0; i < rounds; i++ {
			switch p.ID() {
			case 0:
				p.Send(1, i, i)
				p.Recv()
				p.Compute(3)
			case 1:
				p.Recv()
				p.Compute(2)
				p.Send(0, i, i)
			}
		}
	}
}

func TestZeroFaultPlanMatchesNil(t *testing.T) {
	// An all-zero FaultPlan must reproduce the nil-plan run exactly: no
	// random draws are consumed and every fault check is a no-op.
	base := cfg(2, 6, 2, 4)
	base.LatencyJitter = 3
	base.ComputeJitter = 0.5
	base.Seed = 42

	want, err := Run(base, pingPong(20))
	if err != nil {
		t.Fatal(err)
	}
	withPlan := base
	withPlan.Faults = &FaultPlan{Seed: 7}
	got, err := Run(withPlan, pingPong(20))
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != want.Time || got.Messages != want.Messages {
		t.Errorf("zero plan run (T=%d, msgs=%d) differs from nil plan (T=%d, msgs=%d)",
			got.Time, got.Messages, want.Time, want.Messages)
	}
	if got.Dropped != 0 || got.Duplicated != 0 || got.Undelivered != 0 || got.Failed != nil {
		t.Errorf("zero plan reported faults: %+v", got)
	}
	for i := range want.Procs {
		if got.Procs[i] != want.Procs[i] {
			t.Errorf("proc %d stats diverge: %+v vs %+v", i, got.Procs[i], want.Procs[i])
		}
	}
}

func TestDropLosesMessageAndSettlesCapacity(t *testing.T) {
	// Every message on 0->1 is dropped; the sender must not wedge on the
	// capacity constraint (the network frees a dropped message's slots at
	// its would-be arrival), even under HoldCapacityUntilReceive.
	for _, hold := range []bool{false, true} {
		c := cfg(2, 6, 2, 4)
		c.HoldCapacityUntilReceive = hold
		c.Faults = &FaultPlan{
			Links: map[Link]LinkFault{{From: 0, To: 1}: {Drop: 1}},
		}
		const n = 10 // well beyond capacity ceil(L/g) = 2
		res, err := Run(c, func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < n; i++ {
					p.Send(1, 0, i)
				}
			} else {
				drainBody(200)(p)
			}
		})
		if err != nil {
			t.Fatalf("hold=%v: %v", hold, err)
		}
		if res.Dropped != n {
			t.Errorf("hold=%v: dropped %d messages, want %d", hold, res.Dropped, n)
		}
		if res.Messages != 0 {
			t.Errorf("hold=%v: delivered %d messages, want 0", hold, res.Messages)
		}
	}
}

func TestDuplicateDeliversExtraCopy(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	c.Faults = &FaultPlan{
		Links: map[Link]LinkFault{{From: 0, To: 1}: {Dup: 1}},
	}
	var got []Message
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 7, "x")
		case 1:
			for len(got) < 2 {
				m, ok := p.RecvTimeout(300)
				if !ok {
					return
				}
				got = append(got, m)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("received %d copies, want 2", len(got))
	}
	if got[0].Dup() || !got[1].Dup() {
		t.Errorf("dup flags = %v, %v; want original first, copy second", got[0].Dup(), got[1].Dup())
	}
	if got[1].ArrivedAt <= got[0].ArrivedAt {
		t.Errorf("copy arrived at %d, not after original at %d", got[1].ArrivedAt, got[0].ArrivedAt)
	}
	if res.Duplicated != 1 {
		t.Errorf("Duplicated = %d, want 1", res.Duplicated)
	}
}

func TestFaultJitterDelaysBeyondL(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	// Disable capacity so injection is exactly SentAt+o: jittered messages
	// linger in transit and would otherwise stall later sends, shifting
	// initiations.
	c.DisableCapacity = true
	c.Faults = &FaultPlan{
		Seed:    3,
		Default: LinkFault{Jitter: 10},
	}
	var msgs []Message
	_, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 20; i++ {
				p.Send(1, 0, i)
			}
		case 1:
			for i := 0; i < 20; i++ {
				msgs = append(msgs, p.Recv())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	beyond := false
	for i, m := range msgs {
		flight := m.ArrivedAt - (m.SentAt + 2) // injected o after initiation
		if flight < 6 || flight > 16 {
			t.Errorf("message %d flew %d cycles, want within [L, L+Jitter] = [6, 16]", i, flight)
		}
		if flight > 6 {
			beyond = true
		}
	}
	if !beyond {
		t.Error("no message exceeded L; jitter never applied")
	}
}

func TestSlowdownStretchesCompute(t *testing.T) {
	c := cfg(1, 0, 0, 0)
	c.Faults = &FaultPlan{
		Slowdowns: []Slowdown{{Proc: 0, Start: 100, End: 200, Factor: 3}},
	}
	var in, out int64
	_, err := Run(c, func(p *Proc) {
		p.Compute(50) // outside the window: 50 cycles
		out = p.Now()
		p.WaitUntil(100)
		p.Compute(50) // inside: 150 cycles
		in = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if out != 50 {
		t.Errorf("compute outside window finished at %d, want 50", out)
	}
	if in != 250 {
		t.Errorf("compute inside window finished at %d, want 100+3*50=250", in)
	}
}

func TestFailStopHaltsProcessor(t *testing.T) {
	c := cfg(3, 6, 2, 4)
	c.Faults = &FaultPlan{
		FailStops: []FailStop{{Proc: 1, At: 30}},
	}
	var rounds int
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 10; i++ {
				p.Send(1, 0, i) // messages after t=30 arrive at a corpse
			}
		case 1:
			for {
				if _, ok := p.RecvTimeout(1000); !ok {
					return
				}
				rounds++
			}
		case 2:
			p.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("Failed = %v, want [1]", res.Failed)
	}
	finish := res.Procs[1].Finish
	if finish < 30 || finish > 40 {
		t.Errorf("victim halted at %d, want shortly after the kill at 30", finish)
	}
	if res.Dropped == 0 {
		t.Error("no messages discarded at the dead processor")
	}
	if res.Procs[2].Finish != 100 {
		t.Errorf("bystander finished at %d, want 100", res.Procs[2].Finish)
	}
}

func TestFailStopAtTimeZero(t *testing.T) {
	// A kill at t=0 fires before the victim's first operation.
	c := cfg(2, 6, 2, 4)
	c.Faults = &FaultPlan{FailStops: []FailStop{{Proc: 1, At: 0}}}
	res, err := Run(c, func(p *Proc) {
		if p.ID() == 1 {
			p.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[1].Finish != 0 {
		t.Errorf("victim ran to %d, want 0", res.Procs[1].Finish)
	}
}

func TestRecvTimeout(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	var missCount int
	var missAt, hitAt int64
	var hit bool
	_, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.WaitUntil(50)
			p.Send(1, 0, "late")
		case 1:
			if _, ok := p.RecvTimeout(20); !ok {
				missCount++
				missAt = p.Now()
			}
			_, hit = p.RecvTimeout(1000)
			hitAt = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if missCount != 1 || missAt != 20 {
		t.Errorf("timeout path: miss=%d at %d, want 1 at exactly the deadline 20", missCount, missAt)
	}
	if !hit {
		t.Fatal("second RecvTimeout missed the late message")
	}
	if want := int64(50 + 2 + 6 + 2); hitAt != want { // sent at 50, o+L flight, o receive
		t.Errorf("late receive done at %d, want %d", hitAt, want)
	}
}

func TestFaultDeterminism(t *testing.T) {
	run := func() Result {
		c := cfg(4, 6, 2, 4)
		c.Faults = &FaultPlan{
			Seed:    99,
			Default: LinkFault{Drop: 0.3, Dup: 0.2, Jitter: 5},
		}
		res, err := Run(c, func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < 30; i++ {
					p.Send(1+i%3, 0, i)
				}
			} else {
				drainBody(600)(p)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Dropped != b.Dropped || a.Duplicated != b.Duplicated || a.Messages != b.Messages {
		t.Errorf("two identically seeded runs diverged: %+v vs %+v", a, b)
	}
	if a.Dropped == 0 || a.Duplicated == 0 {
		t.Errorf("fault plan injected nothing (dropped=%d, duplicated=%d)", a.Dropped, a.Duplicated)
	}
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
	}{
		{"drop rate", FaultPlan{Default: LinkFault{Drop: 1.5}}},
		{"dup rate", FaultPlan{Default: LinkFault{Dup: -0.1}}},
		{"negative jitter", FaultPlan{Default: LinkFault{Jitter: -1}}},
		{"link out of range", FaultPlan{Links: map[Link]LinkFault{{From: 0, To: 9}: {}}}},
		{"slowdown proc", FaultPlan{Slowdowns: []Slowdown{{Proc: 9, Start: 0, End: 1, Factor: 2}}}},
		{"slowdown factor", FaultPlan{Slowdowns: []Slowdown{{Proc: 0, Start: 0, End: 1, Factor: 0.5}}}},
		{"slowdown window", FaultPlan{Slowdowns: []Slowdown{{Proc: 0, Start: 5, End: 5, Factor: 2}}}},
		{"failstop proc", FaultPlan{FailStops: []FailStop{{Proc: -1}}}},
		{"failstop time", FaultPlan{FailStops: []FailStop{{Proc: 0, At: -3}}}},
	}
	for _, tc := range cases {
		c := cfg(2, 6, 2, 4)
		plan := tc.plan
		c.Faults = &plan
		if _, err := New(c); err == nil {
			t.Errorf("%s: invalid plan accepted", tc.name)
		}
	}
}
