package logp

import (
	"fmt"

	"github.com/logp-model/logp/internal/sim"
	"github.com/logp-model/logp/internal/trace"
)

// Long messages (Section 5.4). The basic model gives no special treatment
// to long messages: "the overhead o is paid for each word (or small number
// of words)". Machines with a DMA device attached to the network interface
// pay the setup overhead once and stream the message at the network rate,
// overlapping the transfer with computation — "tantamount to providing two
// processors on each node, one to handle messages and one to do the
// computation", which "can at best double the performance of each node".
//
// SendBulk implements both regimes, selected by Config.Coprocessor:
//
//	without coprocessor (PIO): the processor is engaged o per word, words
//	spaced by max(g,o); the receiver is likewise engaged o per word.
//	total, idle endpoints: (k-1)*max(g,o) + 2o + L.
//
//	with coprocessor (DMA): the processor pays o once to set up the
//	device, which streams the words at the gap; the receiver's device
//	collects them and its processor pays o once to consume the message.
//	total: 2o + (k-1)*g + L — the LogGP long-message formula.
//
// Either way the k words travel as one message train delivered as a single
// Message with Size = k, and count one unit against the capacity
// constraint.

// Coprocessor configuration lives in Config (machine.go); this file holds
// the bulk-transfer mechanics.

// SendBulk transmits words words of payload to processor to as one message
// train. See the package notes above for the cost model. words must be
// positive; SendBulk(.., 1) costs exactly Send.
func (p *Proc) SendBulk(to, tag int, data any, words int) {
	if words < 1 {
		panic(fmt.Sprintf("logp: bulk send of %d words", words))
	}
	if to == p.id {
		panic(fmt.Sprintf("logp: proc %d sending to itself", p.id))
	}
	if to < 0 || to >= p.m.cfg.P {
		panic(fmt.Sprintf("logp: proc %d sending to %d out of range", p.id, to))
	}
	p.checkFail()
	cfg := &p.m.cfg
	lkL, lkO, lkG := p.m.link(p.id, to)
	start := p.Now()
	initiation := start
	if p.nextSend > initiation {
		initiation = p.nextSend
	}

	var engaged, portBusy, lastInjection int64
	if cfg.Coprocessor {
		// Set up the DMA device: o cycles, then the device streams the
		// words at the gap while the processor is free.
		engaged = lkO
		lastInjection = lkO + int64(words-1)*lkG
		portBusy = lkO + int64(words)*lkG
	} else {
		// Programmed I/O: o per word, spaced by the send interval.
		iv := lkO
		if lkG > iv {
			iv = lkG
		}
		engaged = int64(words-1)*iv + lkO
		lastInjection = engaged
		portBusy = int64(words) * iv
	}
	// One park covers the gap wait and the engaged stretch.
	p.ps.WaitUntil(sim.Time(initiation + engaged))
	p.stats.SendOverhead += engaged
	p.stats.MsgsSent++
	if initiation > start {
		p.record(trace.Idle, start, initiation)
	}
	p.record(trace.SendOverhead, initiation, p.Now())
	if p.m.met != nil {
		p.m.met.OnSend(p.id, to)
	}
	p.nextSend = initiation + portBusy

	// Capacity: the train takes one in-transit unit from injection of its
	// last word to arrival.
	if p.m.outCap != nil {
		start := p.Now()
		p.m.outCap[p.id].Acquire(p.ps)
		p.m.inCap[to].Acquire(p.ps)
		if d := p.Now() - start; d > 0 {
			p.stats.Stall += d
			p.record(trace.Stall, start, p.Now())
			if p.m.met != nil {
				p.m.met.OnStall(p.id, d)
			}
		}
	}
	p.m.inTransitFrom[p.id]++
	p.m.inTransitTo[to]++
	if u := p.m.inTransitFrom[p.id]; u > p.m.maxOut {
		p.m.maxOut = u
	}
	if u := p.m.inTransitTo[to]; u > p.m.maxIn {
		p.m.maxIn = u
	}

	lat := lkL
	if cfg.LatencyJitter > 0 {
		lat -= p.m.kernel.Rand().Int63n(cfg.LatencyJitter + 1)
	}
	// The whole train shares one fate draw: it is one message in the
	// capacity books, so it drops or duplicates as a unit.
	var drop, dup bool
	var dupLat int64
	if p.m.faults != nil {
		lat, drop, dup, dupLat = p.m.faults.messageFate(p.id, to, lat)
	}
	if p.m.rec != nil {
		p.m.rec.SendBulk(p.id, to, tag, words, lat)
		if drop {
			p.m.rec.DropLast(p.id)
		}
	}
	// The train's last word was injected at initiation+lastInjection; the
	// message is complete at the destination L later. (The DMA processor
	// may already be past this point in simulated time; the arrival event
	// is scheduled from absolute times.)
	arriveAt := initiation + lastInjection + lat
	now := int64(p.m.kernel.Now())
	delay := arriveAt - now
	if delay < 0 {
		delay = 0
	}
	d := p.m.newDelivery()
	d.msg = Message{From: p.id, To: to, Tag: tag, Data: data, Size: words, SentAt: initiation}
	d.drop = drop
	d.flight = lat
	p.m.kernel.AfterRun(sim.Time(delay), d)
	if dup {
		if p.m.rec != nil {
			p.m.rec.Dup(p.id, to, tag, words, dupLat)
		}
		dupDelay := arriveAt - lat + dupLat - now
		if dupDelay < 0 {
			dupDelay = 0
		}
		d2 := p.m.newDelivery()
		d2.msg = Message{From: p.id, To: to, Tag: tag, Data: data, Size: words, SentAt: initiation, dup: true}
		d2.dup = true
		d2.flight = dupLat
		p.m.kernel.AfterRun(sim.Time(dupDelay), d2)
	}
}

// recvCost is the processor engagement for consuming msg: o per word
// without a coprocessor, o once with one. lkO is the overhead of the link
// the message arrived on (the global o without a topology).
func (p *Proc) recvCost(msg Message, lkO int64) int64 {
	words := msg.Size
	if words < 1 {
		words = 1
	}
	if p.m.cfg.Coprocessor {
		return lkO
	}
	return int64(words) * lkO
}
