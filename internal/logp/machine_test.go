package logp

import (
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
)

func cfg(p int, l, o, g int64) Config {
	return Config{Params: core.Params{P: p, L: l, O: o, G: g}}
}

func TestPointToPointTiming(t *testing.T) {
	// One message between idle processors takes 2o+L end to end (Section 5).
	c := cfg(2, 6, 2, 4)
	var recvDone, arrived int64
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 0, "x")
		case 1:
			m := p.Recv()
			arrived = m.ArrivedAt
			recvDone = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if arrived != 8 { // o + L
		t.Errorf("arrival at %d, want o+L=8", arrived)
	}
	if recvDone != 10 { // 2o + L
		t.Errorf("receive done at %d, want 2o+L=10", recvDone)
	}
	if res.Time != 10 {
		t.Errorf("run time %d, want 10", res.Time)
	}
	if res.Messages != 1 {
		t.Errorf("messages = %d, want 1", res.Messages)
	}
}

func TestSendGapSpacing(t *testing.T) {
	// Consecutive sends at one processor are spaced max(g, o) apart.
	c := cfg(2, 6, 2, 4)
	var finish int64
	_, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 4; i++ {
				p.Send(1, 0, i)
			}
			finish = p.Now()
		case 1:
			for i := 0; i < 4; i++ {
				p.Recv()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Initiations at 0, 4, 8, 12; the last occupies the processor until 14.
	if finish != 14 {
		t.Errorf("sender finished at %d, want 3g+o=14", finish)
	}
}

func TestSendGapWhenOverheadDominates(t *testing.T) {
	// With o > g the overhead spaces the sends (Section 3.1: increase o to g
	// or vice versa; the processor cannot inject faster than 1/o).
	c := cfg(2, 6, 5, 2)
	var finish int64
	_, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 0, 0)
			p.Send(1, 0, 1)
			finish = p.Now()
		case 1:
			p.Recv()
			p.Recv()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if finish != 10 { // initiations at 0 and 5, each busy 5
		t.Errorf("sender finished at %d, want 2o=10", finish)
	}
}

func TestReceiverSerialization(t *testing.T) {
	// Many processors sending to one target: the target's receptions are
	// spaced at least max(g, o) apart, so total time grows with the fan-in.
	// This is the effect that ruins the naive FFT schedule (Section 4.1.2).
	c := cfg(5, 6, 2, 4)
	var recvTimes []int64
	_, err := Run(c, func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 4; i++ {
				p.Recv()
				recvTimes = append(recvTimes, p.Now())
			}
			return
		}
		p.Send(0, 0, p.ID())
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(recvTimes) != 4 {
		t.Fatalf("received %d messages, want 4", len(recvTimes))
	}
	for i := 1; i < len(recvTimes); i++ {
		if d := recvTimes[i] - recvTimes[i-1]; d < 4 {
			t.Errorf("receptions %d cycles apart, want >= g=4", d)
		}
	}
	// First reception completes at 2o+L=10; the rest every g: 14, 18, 22.
	want := []int64{10, 14, 18, 22}
	for i := range want {
		if recvTimes[i] != want[i] {
			t.Errorf("reception %d done at %d, want %d", i, recvTimes[i], want[i])
		}
	}
}

func TestSingleSenderNeverStalls(t *testing.T) {
	// A single sender cannot exceed the capacity on its own: the gap already
	// limits its injection rate to 1/g, and ceil(L/g) >= L/g messages fit in
	// flight at that rate. The constraint binds only on fan-in.
	c := cfg(2, 10, 0, 1)
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 30; i++ {
				p.Send(1, 0, i)
			}
		case 1:
			for i := 0; i < 30; i++ {
				p.Recv()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxInTransitTo > 10 || res.MaxInTransitFrom > 10 {
		t.Errorf("in transit (from=%d,to=%d) exceeds capacity 10", res.MaxInTransitFrom, res.MaxInTransitTo)
	}
	if res.TotalStall() != 0 {
		t.Errorf("single sender stalled %d cycles", res.TotalStall())
	}
}

func TestCapacityConstraintStallsOnFanIn(t *testing.T) {
	// Three senders flooding one destination inject at combined rate 3/g,
	// far beyond what ceil(L/g) in-flight slots sustain: senders must stall
	// and the in-transit count stays within capacity. This is the model
	// "discouraging communication patterns in which no processor is flooded
	// with incoming messages" (Section 3.2).
	flood := func(disable bool) Result {
		c := cfg(4, 10, 0, 1)
		c.DisableCapacity = disable
		res, err := Run(c, func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < 30; i++ {
					p.Recv()
				}
				return
			}
			for i := 0; i < 10; i++ {
				p.Send(0, 0, i)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	res := flood(false)
	if res.MaxInTransitTo > 10 {
		t.Errorf("max in transit to = %d, exceeds capacity 10", res.MaxInTransitTo)
	}
	if res.TotalStall() == 0 {
		t.Error("fan-in past capacity produced no stalls")
	}
	// Ablation: without the constraint there are no stalls and the
	// destination is flooded far beyond capacity.
	res2 := flood(true)
	if res2.TotalStall() != 0 {
		t.Errorf("capacity disabled but stalled %d cycles", res2.TotalStall())
	}
}

func TestRemoteReadCost(t *testing.T) {
	// Section 3.2: reading a remote location requires 2L+4o — a request
	// message and a reply.
	c := cfg(2, 6, 2, 4)
	var done int64
	_, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 0, "read x")
			p.Recv()
			done = p.Now()
		case 1:
			p.Recv()
			p.Send(0, 0, 42)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := c.Params.RemoteRead()
	if done != want {
		t.Errorf("remote read took %d, want 2L+4o=%d", done, want)
	}
}

func TestComputeAdvancesOnlyLocalClock(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	res, err := Run(c, func(p *Proc) {
		if p.ID() == 0 {
			p.Compute(100)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Procs[0].Compute != 100 || res.Procs[0].Finish != 100 {
		t.Errorf("proc0 compute=%d finish=%d, want 100/100", res.Procs[0].Compute, res.Procs[0].Finish)
	}
	if res.Procs[1].Finish != 0 {
		t.Errorf("proc1 finish=%d, want 0 (asynchronous processors)", res.Procs[1].Finish)
	}
	if res.Time != 100 {
		t.Errorf("run time %d, want 100", res.Time)
	}
}

func TestLatencyJitterBoundsAndReordering(t *testing.T) {
	// With jitter, latency stays within [L-jitter, L] and messages can
	// arrive out of order; the model only bounds latency above.
	c := cfg(2, 100, 1, 2)
	c.LatencyJitter = 90
	c.Seed = 7
	reordered := false
	var arrivals []int64
	_, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 50; i++ {
				p.Send(1, i, i)
			}
		case 1:
			prev := -1
			for i := 0; i < 50; i++ {
				m := p.Recv()
				arrivals = append(arrivals, m.ArrivedAt-m.SentAt)
				if m.Tag < prev {
					reordered = true
				} else {
					prev = m.Tag
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range arrivals {
		lat := d - 1 // minus send overhead o=1
		if lat < 10 || lat > 100 {
			t.Errorf("latency %d outside [10,100]", lat)
		}
	}
	if !reordered {
		t.Error("no reordering observed with 90%% jitter over 50 messages")
	}
}

func TestBarrierHardware(t *testing.T) {
	c := cfg(4, 6, 2, 4)
	c.BarrierCost = 3
	var releases []int64
	_, err := Run(c, func(p *Proc) {
		p.Compute(int64(10 * (p.ID() + 1)))
		p.Barrier()
		releases = append(releases, p.Now())
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range releases {
		if r != 43 { // last arrival 40 + cost 3
			t.Errorf("released at %d, want 43", r)
		}
	}
}

func TestRecvTagSkipsOtherTags(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	_, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 1, "first")
			p.Send(1, 2, "wanted")
		case 1:
			m := p.RecvTag(2)
			if m.Data != "wanted" {
				t.Errorf("RecvTag(2) returned %v", m.Data)
			}
			m = p.Recv()
			if m.Data != "first" {
				t.Errorf("leftover message %v, want first", m.Data)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTryRecv(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	_, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			if _, ok := p.TryRecv(); ok {
				t.Error("TryRecv returned a message on an empty inbox")
			}
			p.Send(1, 0, "x")
		case 1:
			p.Wait(20)
			if !p.HasMessage() || p.Pending() != 1 {
				t.Error("message not pending after 20 cycles")
			}
			if _, ok := p.TryRecv(); !ok {
				t.Error("TryRecv failed with pending message")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfSendPanics(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	defer func() {
		if recover() == nil {
			t.Error("self-send did not panic")
		}
	}()
	// Run executes bodies on kernel goroutines; panic propagates through the
	// kernel's event loop into Run's caller goroutine... it does not, so
	// test the panic directly on a handcrafted machine below instead.
	m, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	_ = m
	panicInBody(t, c)
}

// panicInBody drives a machine whose body self-sends and re-panics the
// failure on the test goroutine.
func panicInBody(t *testing.T, c Config) {
	t.Helper()
	var caught any
	_, err := Run(c, func(p *Proc) {
		if p.ID() == 0 {
			defer func() { caught = recover() }()
			p.Send(0, 0, nil)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if caught == nil {
		t.Error("self-send did not panic inside body")
	}
	panic(caught) // satisfy the outer recover check
}

func TestDeterminism(t *testing.T) {
	c := cfg(8, 20, 2, 3)
	c.LatencyJitter = 10
	c.ComputeJitter = 0.2
	c.Seed = 99
	run := func() Result {
		res, err := Run(c, func(p *Proc) {
			if p.ID() == 0 {
				sum := 0
				for i := 1; i < p.P(); i++ {
					m := p.Recv()
					sum += m.Data.(int)
					p.Compute(3)
				}
				return
			}
			p.Compute(int64(p.ID()))
			p.Send(0, 0, p.ID())
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Time != b.Time || a.Messages != b.Messages {
		t.Errorf("nondeterministic: %v vs %v", a.Time, b.Time)
	}
	for i := range a.Procs {
		if a.Procs[i] != b.Procs[i] {
			t.Errorf("proc %d stats differ between identical runs", i)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(5)
			p.Send(1, 0, nil)
		case 1:
			p.Recv()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s0, s1 := res.Procs[0], res.Procs[1]
	if s0.Compute != 5 || s0.SendOverhead != 2 || s0.MsgsSent != 1 {
		t.Errorf("proc0 stats %+v", s0)
	}
	if s1.RecvOverhead != 2 || s1.MsgsReceived != 1 {
		t.Errorf("proc1 stats %+v", s1)
	}
	// proc1: idle until arrival at 5+2+6=13, then 2 cycles receiving = 15.
	if s1.Finish != 15 {
		t.Errorf("proc1 finish %d, want 15", s1.Finish)
	}
	if got := s1.Idle(res.Time); got != 13 {
		t.Errorf("proc1 idle %d, want 13", got)
	}
}

func TestCapacityInvariantProperty(t *testing.T) {
	// Random traffic never exceeds the capacity bound.
	f := func(seed int64, ll, gg uint8) bool {
		l := int64(ll%20) + 1
		g := int64(gg%5) + 1
		c := cfg(4, l, 1, g)
		c.Seed = seed
		c.LatencyJitter = l / 2
		res, err := Run(c, func(p *Proc) {
			r := int(seed&3) + 1
			for i := 0; i < 10; i++ {
				dst := (p.ID() + r) % p.P()
				if dst == p.ID() {
					dst = (dst + 1) % p.P()
				}
				p.Send(dst, 0, i)
			}
			for i := 0; i < 10; i++ {
				p.Recv()
			}
		})
		if err != nil {
			return false
		}
		capUnits := c.Params.Capacity()
		return res.MaxInTransitFrom <= capUnits && res.MaxInTransitTo <= capUnits
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestTraceCollection(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	c.CollectTrace = true
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Compute(3)
			p.Send(1, 0, nil)
		case 1:
			p.Recv()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("no trace collected")
	}
	if err := res.Trace.Validate(2); err != nil {
		t.Error(err)
	}
	if got := res.Trace.Busy(0, 0 /* compute */); got != 3 {
		t.Errorf("trace compute busy %d, want 3", got)
	}
}

func TestInvalidConfigs(t *testing.T) {
	if _, err := New(Config{Params: core.Params{P: 0, L: 1, O: 1, G: 1}}); err == nil {
		t.Error("P=0 accepted")
	}
	bad := cfg(2, 6, 2, 4)
	bad.LatencyJitter = 7
	if _, err := New(bad); err == nil {
		t.Error("jitter > L accepted")
	}
	bad = cfg(2, 6, 2, 4)
	bad.ComputeJitter = -1
	if _, err := New(bad); err == nil {
		t.Error("negative compute jitter accepted")
	}
}

func TestMachineRunsOnce(t *testing.T) {
	m, err := New(cfg(2, 6, 2, 4))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(func(p *Proc) {}); err == nil {
		t.Error("second Run accepted")
	}
}

func TestBusyFraction(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	res, err := Run(c, func(p *Proc) { p.Compute(50) })
	if err != nil {
		t.Fatal(err)
	}
	if bf := res.BusyFraction(); bf != 1.0 {
		t.Errorf("busy fraction %v, want 1.0", bf)
	}
}
