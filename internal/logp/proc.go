package logp

import (
	"fmt"
	"math/rand"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/sim"
	"github.com/logp-model/logp/internal/trace"
)

// Message is a small message in the sense of the model: a word or small
// number of words. Data carries the payload; algorithms that move bulk data
// send one message per word-sized unit (Section 5.4: long messages are not
// given special treatment in the basic model).
type Message struct {
	From, To  int
	Tag       int
	Data      any
	Size      int   // words in the message: 1 for Send, k for SendBulk
	SentAt    int64 // initiation time at the sender
	ArrivedAt int64 // arrival time at the destination module

	// dup marks a network-made duplicate copy (fault injection). The copy
	// never touched the capacity books, so reception must not settle it.
	dup bool
}

// Dup reports whether this message is a fault-injected duplicate copy of an
// earlier delivery. Protocols normally detect duplicates by sequence number;
// this is for tests and diagnostics.
func (m Message) Dup() bool { return m.dup }

// Proc is one of the P processor/memory modules. All methods must be called
// from the processor's own body function. Methods advance this processor's
// simulated clock according to the model's cost rules.
type Proc struct {
	id    int
	m     *Machine
	ps    *sim.Process
	stats ProcStats

	nextSend int64 // earliest next send initiation (gap/overhead spacing)
	nextRecv int64 // earliest next reception start

	// inbox is head-indexed: arrivals append, receptions advance inboxHead,
	// and the storage is reused once drained, so the steady-state message
	// flow does not allocate.
	inbox     []Message
	inboxHead int
	inboxSig  sim.Signal

	// failed is set by a fault-plan fail-stop; the processor unwinds with a
	// procFailure panic at its next machine operation.
	failed bool
	// wake is this processor's pooled timeout event (RecvTimeout): it nudges
	// inboxSig at the deadline so the condition loop re-checks the clock.
	wake wakeup
}

// wakeup is a pooled timer event for RecvTimeout. Notify with no waiter is a
// no-op and all inbox waits are condition loops, so a stale wakeup (the
// message arrived first) is harmless.
type wakeup struct{ p *Proc }

// RunEvent implements sim.Runner.
func (w *wakeup) RunEvent() { w.p.inboxSig.Notify() }

// checkFail unwinds the processor body if a fail-stop has triggered. It is
// called on entry to every machine operation and after every inbox wait, so
// a dead processor halts at the next operation boundary.
func (p *Proc) checkFail() {
	if p.failed {
		panic(procFailure{p.id})
	}
}

// ID is the processor number in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the machine's processor count.
func (p *Proc) P() int { return p.m.cfg.P }

// Params returns the machine's LogP parameters. Protocols use them to derive
// timeouts from the model's L, o and g.
func (p *Proc) Params() core.Params { return p.m.cfg.Params }

// Failed reports whether a fail-stop has triggered for this processor. The
// processor itself never observes true (it unwinds first); other processors'
// code must not call this — protocols learn about dead peers by timeout.
func (p *Proc) Failed() bool { return p.failed }

// Now is this processor's current local time in cycles.
func (p *Proc) Now() int64 { return int64(p.ps.Now()) }

// Rand returns the machine's deterministic random source. It must only be
// used from processor bodies (the kernel runs one process at a time, so
// access is race-free and the draw order is reproducible).
func (p *Proc) Rand() *rand.Rand { return p.m.kernel.Rand() }

// Stats returns a snapshot of the processor's activity counters.
func (p *Proc) Stats() ProcStats { s := p.stats; s.Proc = p.id; s.Finish = p.Now(); return s }

// Metrics returns the machine's metrics registry, or nil when metrics are
// off. Layers built on top of the machine (internal/reliable) use it to
// record their own protocol counters alongside the machine's.
func (p *Proc) Metrics() *metrics.Registry { return p.m.met }

func (p *Proc) record(kind trace.Kind, start, end int64) {
	if p.m.tr != nil {
		p.m.tr.Add(p.id, kind, start, end)
	}
}

// Compute performs cycles of local work (the model charges unit time per
// local operation). With Config.ComputeJitter the actual duration stretches
// by a random factor, modeling local timing noise; a fault-plan Slowdown
// window overlapping the start time stretches it further.
func (p *Proc) Compute(cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("logp: negative compute %d", cycles))
	}
	p.checkFail()
	if cycles == 0 {
		return
	}
	if p.m.topol != nil {
		if r := p.m.topol.Rate(p.id); r != 1 {
			cycles = int64(float64(cycles) * r)
		}
	}
	if p.m.skew != nil {
		cycles = int64(float64(cycles) * p.m.skew[p.id])
	}
	if j := p.m.cfg.ComputeJitter; j > 0 {
		cycles += int64(float64(cycles) * j * p.m.kernel.Rand().Float64())
	}
	if p.m.faults != nil {
		if f := p.m.faults.slowFactor(p.id, p.Now()); f > 1 {
			cycles = int64(float64(cycles) * f)
		}
	}
	start := p.Now()
	p.ps.Wait(sim.Time(cycles))
	p.stats.Compute += p.Now() - start
	p.record(trace.Compute, start, p.Now())
	if p.m.rec != nil {
		p.m.rec.Compute(p.id, cycles)
	}
}

// idleUntil waits until absolute time t, recording the wait as idle.
func (p *Proc) idleUntil(t int64) {
	if t <= p.Now() {
		return
	}
	start := p.Now()
	p.ps.WaitUntil(sim.Time(t))
	p.record(trace.Idle, start, p.Now())
}

// Send transmits one small message to processor to. Model costs:
//
//   - the initiation respects the gap: consecutive initiations at this
//     processor are at least max(g, o) apart;
//   - the capacity constraint: if ceil(L/g) messages are already in transit
//     from this processor or to the destination, the processor stalls;
//   - the processor is then busy for o cycles; the message enters the
//     network and arrives at the destination module L cycles later (or
//     up to LatencyJitter earlier).
//
// Send to self is a programming error and panics: the model has no loopback
// network path.
func (p *Proc) Send(to, tag int, data any) {
	if to == p.id {
		panic(fmt.Sprintf("logp: proc %d sending to itself", p.id))
	}
	if to < 0 || to >= p.m.cfg.P {
		panic(fmt.Sprintf("logp: proc %d sending to %d out of range", p.id, to))
	}
	p.checkFail()
	cfg := &p.m.cfg
	lkL, lkO, lkG := p.m.link(p.id, to)
	// The gap wait (until nextSend) and the o-cycle overhead are one
	// uninterruptible stretch of processor time, so they share a single
	// kernel park; the trace segments are computed analytically.
	start := p.Now()
	initiation := start
	if p.nextSend > initiation {
		initiation = p.nextSend
	}
	p.ps.WaitUntil(sim.Time(initiation + lkO)) // idle until nextSend, then send overhead
	p.stats.SendOverhead += lkO
	p.stats.MsgsSent++
	if initiation > start {
		p.record(trace.Idle, start, initiation)
	}
	p.record(trace.SendOverhead, initiation, p.Now())
	if p.m.met != nil {
		p.m.met.OnSend(p.id, to)
	}

	// Capacity: a message is "in transit" during its L-cycle flight, from
	// injection to arrival at the destination module. If injecting now would
	// exceed ceil(L/g) in transit from this processor or to the destination,
	// the processor stalls until it can send (Section 3). A lone sender
	// never self-stalls: its injections are already spaced g apart.
	if p.m.outCap != nil {
		start := p.Now()
		p.m.outCap[p.id].Acquire(p.ps)
		p.m.inCap[to].Acquire(p.ps)
		if d := p.Now() - start; d > 0 {
			p.stats.Stall += d
			p.record(trace.Stall, start, p.Now())
			if p.m.met != nil {
				p.m.met.OnStall(p.id, d)
			}
		}
	}
	p.m.inTransitFrom[p.id]++
	p.m.inTransitTo[to]++
	if u := p.m.inTransitFrom[p.id]; u > p.m.maxOut {
		p.m.maxOut = u
	}
	if u := p.m.inTransitTo[to]; u > p.m.maxIn {
		p.m.maxIn = u
	}
	injection := p.Now()
	// Consecutive injections at one processor are at least g apart even if a
	// stall delayed this one. Both bounds use the link's own interval: the
	// gap is a property of the port driving that link class.
	iv := lkO
	if lkG > iv {
		iv = lkG
	}
	p.nextSend = initiation + iv
	if t := injection + lkG - lkO; t > p.nextSend {
		p.nextSend = t
	}

	lat := lkL
	if cfg.LatencyJitter > 0 {
		lat -= p.m.kernel.Rand().Int63n(cfg.LatencyJitter + 1)
	}
	var drop, dup bool
	var dupLat int64
	if p.m.faults != nil {
		lat, drop, dup, dupLat = p.m.faults.messageFate(p.id, to, lat)
	}
	if p.m.rec != nil {
		p.m.rec.Send(p.id, to, tag, lat)
		if drop {
			p.m.rec.DropLast(p.id)
		}
	}
	d := p.m.newDelivery()
	d.msg = Message{From: p.id, To: to, Tag: tag, Data: data, Size: 1, SentAt: initiation}
	d.drop = drop
	d.flight = lat
	p.m.kernel.AfterRun(sim.Time(lat), d)
	if dup {
		if p.m.rec != nil {
			p.m.rec.Dup(p.id, to, tag, 1, dupLat)
		}
		d2 := p.m.newDelivery()
		d2.msg = Message{From: p.id, To: to, Tag: tag, Data: data, Size: 1, SentAt: initiation, dup: true}
		d2.dup = true
		d2.flight = dupLat
		p.m.kernel.AfterRun(sim.Time(dupLat), d2)
	}
}

// HasMessage reports whether a message has arrived and is waiting, at no
// cost: it models the processor glancing at its network interface.
func (p *Proc) HasMessage() bool { return p.Pending() > 0 }

// Pending reports the number of arrived, unreceived messages.
func (p *Proc) Pending() int { return len(p.inbox) - p.inboxHead }

// popInbox removes and returns the earliest-arrived message.
func (p *Proc) popInbox() Message {
	msg := p.inbox[p.inboxHead]
	p.inbox[p.inboxHead] = Message{}
	p.inboxHead++
	if p.inboxHead == len(p.inbox) {
		p.inbox = p.inbox[:0]
		p.inboxHead = 0
	}
	return msg
}

// RecvReady reports whether a Recv would proceed immediately: a message has
// arrived and the reception gap has elapsed. Polling loops that interleave
// receives with other work should gate on this rather than HasMessage, or
// the Recv blocks waiting out the gap and delays the other work.
func (p *Proc) RecvReady() bool {
	return p.Pending() > 0 && p.Now() >= p.nextRecv
}

// HasTag reports whether a message with the given tag has arrived and is
// waiting, at no cost.
func (p *Proc) HasTag(tag int) bool {
	for i := p.inboxHead; i < len(p.inbox); i++ {
		if p.inbox[i].Tag == tag {
			return true
		}
	}
	return false
}

// finishRecv pays the reception costs for a message already popped from the
// inbox: the gap wait (until nextRecv) and the reception overhead share one
// kernel park; popping first is safe because later arrivals only append
// behind the queue front.
func (p *Proc) finishRecv(msg Message) Message {
	arrived := p.Now()
	start := arrived
	if p.nextRecv > start {
		start = p.nextRecv
	}
	_, lkO, lkG := p.m.link(msg.From, p.id)
	cost := p.recvCost(msg, lkO)
	p.ps.WaitUntil(sim.Time(start + cost)) // gap, then receive overhead (per word without a coprocessor)
	p.stats.RecvOverhead += cost
	p.stats.MsgsReceived++
	if start > arrived {
		p.record(trace.Idle, arrived, start)
	}
	p.record(trace.RecvOverhead, start, p.Now())
	iv := lkO
	if lkG > iv {
		iv = lkG
	}
	p.nextRecv = start + iv
	if t := start + cost; t > p.nextRecv {
		p.nextRecv = t
	}
	if p.m.cfg.HoldCapacityUntilReceive && !msg.dup {
		p.m.settle(msg)
	}
	if p.m.rec != nil {
		p.m.rec.RecvDone(p.id)
	}
	if p.m.met != nil {
		p.m.met.OnRecv(p.id)
	}
	return msg
}

// Recv receives the earliest-arrived message, blocking until one is
// available. Model costs: reception start respects the gap (consecutive
// receptions at least max(g, o) apart) and the processor is busy for o
// cycles. The wait for arrival is idle time.
func (p *Proc) Recv() Message {
	p.checkFail()
	if p.m.rec != nil {
		p.m.rec.Recv(p.id)
	}
	for p.Pending() == 0 {
		start := p.Now()
		p.inboxSig.Wait(p.ps)
		p.record(trace.Idle, start, p.Now())
		p.checkFail()
	}
	return p.finishRecv(p.popInbox())
}

// RecvTimeout receives like Recv, but gives up if no message has arrived by
// absolute time deadline: the processor idles until the deadline and returns
// false. A message arriving exactly at the deadline is missed (the timer was
// scheduled first); one that arrived earlier is received normally, paying
// the usual gap and overhead.
func (p *Proc) RecvTimeout(deadline int64) (Message, bool) {
	p.checkFail()
	for p.Pending() == 0 {
		if p.Now() >= deadline {
			if p.m.rec != nil {
				p.m.rec.WaitUntil(p.id, deadline)
			}
			return Message{}, false
		}
		p.m.kernel.AtRun(sim.Time(deadline), &p.wake)
		start := p.Now()
		p.inboxSig.Wait(p.ps)
		p.record(trace.Idle, start, p.Now())
		p.checkFail()
	}
	if p.m.rec != nil {
		p.m.rec.Recv(p.id)
	}
	return p.finishRecv(p.popInbox()), true
}

// TryRecv receives a message if one has arrived, without blocking for
// arrival (it still pays the gap and overhead when a message is taken).
func (p *Proc) TryRecv() (Message, bool) {
	if p.Pending() == 0 {
		return Message{}, false
	}
	return p.Recv(), true
}

// RecvTag receives the earliest message with the given tag, blocking until
// one arrives. Messages with other tags stay queued in arrival order. Each
// inspection that lands on a matching message costs one reception (o).
func (p *Proc) RecvTag(tag int) Message {
	p.checkFail()
	if p.m.rec != nil {
		p.m.rec.RecvTag(p.id, tag)
	}
	for {
		for i := p.inboxHead; i < len(p.inbox); i++ {
			m := p.inbox[i]
			if m.Tag == tag {
				copy(p.inbox[i:], p.inbox[i+1:])
				p.inbox[len(p.inbox)-1] = Message{}
				p.inbox = p.inbox[:len(p.inbox)-1]
				if p.inboxHead == len(p.inbox) {
					p.inbox = p.inbox[:0]
					p.inboxHead = 0
				}
				return p.finishRecv(m)
			}
		}
		start := p.Now()
		p.inboxSig.Wait(p.ps)
		p.record(trace.Idle, start, p.Now())
		p.checkFail()
	}
}

// Barrier blocks until all P processors have arrived, then releases everyone
// Config.BarrierCost cycles after the last arrival. This models the special
// synchronization hardware of Section 5.5 (the CM-5 control network); the
// message-based alternative is collective.Barrier.
func (p *Proc) Barrier() {
	p.checkFail()
	if p.m.rec != nil {
		p.m.rec.Barrier(p.id)
	}
	start := p.Now()
	p.m.barrier.Await(p.ps)
	if c := p.m.cfg.BarrierCost; c > 0 {
		p.ps.Wait(sim.Time(c))
	}
	p.record(trace.Idle, start, p.Now())
}

// Wait idles for the given number of cycles without counting as computation.
func (p *Proc) Wait(cycles int64) {
	p.checkFail()
	if cycles <= 0 {
		return
	}
	if p.m.rec != nil {
		p.m.rec.Wait(p.id, cycles)
	}
	start := p.Now()
	p.ps.Wait(sim.Time(cycles))
	p.record(trace.Idle, start, p.Now())
}

// WaitUntil idles until the given absolute time (no-op if already past).
func (p *Proc) WaitUntil(t int64) {
	p.checkFail()
	if p.m.rec != nil {
		p.m.rec.WaitUntil(p.id, t)
	}
	p.idleUntil(t)
}
