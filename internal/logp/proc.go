package logp

import (
	"fmt"
	"math/rand"

	"github.com/logp-model/logp/internal/sim"
	"github.com/logp-model/logp/internal/trace"
)

// Message is a small message in the sense of the model: a word or small
// number of words. Data carries the payload; algorithms that move bulk data
// send one message per word-sized unit (Section 5.4: long messages are not
// given special treatment in the basic model).
type Message struct {
	From, To  int
	Tag       int
	Data      any
	Size      int   // words in the message: 1 for Send, k for SendBulk
	SentAt    int64 // initiation time at the sender
	ArrivedAt int64 // arrival time at the destination module
}

// Proc is one of the P processor/memory modules. All methods must be called
// from the processor's own body function. Methods advance this processor's
// simulated clock according to the model's cost rules.
type Proc struct {
	id    int
	m     *Machine
	ps    *sim.Process
	stats ProcStats

	nextSend int64 // earliest next send initiation (gap/overhead spacing)
	nextRecv int64 // earliest next reception start

	// inbox is head-indexed: arrivals append, receptions advance inboxHead,
	// and the storage is reused once drained, so the steady-state message
	// flow does not allocate.
	inbox     []Message
	inboxHead int
	inboxSig  sim.Signal
}

// ID is the processor number in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the machine's processor count.
func (p *Proc) P() int { return p.m.cfg.P }

// Now is this processor's current local time in cycles.
func (p *Proc) Now() int64 { return int64(p.ps.Now()) }

// Rand returns the machine's deterministic random source. It must only be
// used from processor bodies (the kernel runs one process at a time, so
// access is race-free and the draw order is reproducible).
func (p *Proc) Rand() *rand.Rand { return p.m.kernel.Rand() }

// Stats returns a snapshot of the processor's activity counters.
func (p *Proc) Stats() ProcStats { s := p.stats; s.Proc = p.id; s.Finish = p.Now(); return s }

func (p *Proc) record(kind trace.Kind, start, end int64) {
	if p.m.tr != nil {
		p.m.tr.Add(p.id, kind, start, end)
	}
}

// Compute performs cycles of local work (the model charges unit time per
// local operation). With Config.ComputeJitter the actual duration stretches
// by a random factor, modeling local timing noise.
func (p *Proc) Compute(cycles int64) {
	if cycles < 0 {
		panic(fmt.Sprintf("logp: negative compute %d", cycles))
	}
	if cycles == 0 {
		return
	}
	if p.m.skew != nil {
		cycles = int64(float64(cycles) * p.m.skew[p.id])
	}
	if j := p.m.cfg.ComputeJitter; j > 0 {
		cycles += int64(float64(cycles) * j * p.m.kernel.Rand().Float64())
	}
	start := p.Now()
	p.ps.Wait(sim.Time(cycles))
	p.stats.Compute += p.Now() - start
	p.record(trace.Compute, start, p.Now())
	if p.m.rec != nil {
		p.m.rec.Compute(p.id, cycles)
	}
}

// idleUntil waits until absolute time t, recording the wait as idle.
func (p *Proc) idleUntil(t int64) {
	if t <= p.Now() {
		return
	}
	start := p.Now()
	p.ps.WaitUntil(sim.Time(t))
	p.record(trace.Idle, start, p.Now())
}

// Send transmits one small message to processor to. Model costs:
//
//   - the initiation respects the gap: consecutive initiations at this
//     processor are at least max(g, o) apart;
//   - the capacity constraint: if ceil(L/g) messages are already in transit
//     from this processor or to the destination, the processor stalls;
//   - the processor is then busy for o cycles; the message enters the
//     network and arrives at the destination module L cycles later (or
//     up to LatencyJitter earlier).
//
// Send to self is a programming error and panics: the model has no loopback
// network path.
func (p *Proc) Send(to, tag int, data any) {
	if to == p.id {
		panic(fmt.Sprintf("logp: proc %d sending to itself", p.id))
	}
	if to < 0 || to >= p.m.cfg.P {
		panic(fmt.Sprintf("logp: proc %d sending to %d out of range", p.id, to))
	}
	cfg := &p.m.cfg
	// The gap wait (until nextSend) and the o-cycle overhead are one
	// uninterruptible stretch of processor time, so they share a single
	// kernel park; the trace segments are computed analytically.
	start := p.Now()
	initiation := start
	if p.nextSend > initiation {
		initiation = p.nextSend
	}
	p.ps.WaitUntil(sim.Time(initiation + cfg.O)) // idle until nextSend, then send overhead
	p.stats.SendOverhead += cfg.O
	p.stats.MsgsSent++
	if initiation > start {
		p.record(trace.Idle, start, initiation)
	}
	p.record(trace.SendOverhead, initiation, p.Now())

	// Capacity: a message is "in transit" during its L-cycle flight, from
	// injection to arrival at the destination module. If injecting now would
	// exceed ceil(L/g) in transit from this processor or to the destination,
	// the processor stalls until it can send (Section 3). A lone sender
	// never self-stalls: its injections are already spaced g apart.
	if p.m.outCap != nil {
		start := p.Now()
		p.m.outCap[p.id].Acquire(p.ps)
		p.m.inCap[to].Acquire(p.ps)
		if d := p.Now() - start; d > 0 {
			p.stats.Stall += d
			p.record(trace.Stall, start, p.Now())
		}
	}
	p.m.inTransitFrom[p.id]++
	p.m.inTransitTo[to]++
	if u := p.m.inTransitFrom[p.id]; u > p.m.maxOut {
		p.m.maxOut = u
	}
	if u := p.m.inTransitTo[to]; u > p.m.maxIn {
		p.m.maxIn = u
	}
	injection := p.Now()
	// Consecutive injections at one processor are at least g apart even if a
	// stall delayed this one.
	p.nextSend = initiation + cfg.SendInterval()
	if t := injection + cfg.G - cfg.O; t > p.nextSend {
		p.nextSend = t
	}

	lat := cfg.L
	if cfg.LatencyJitter > 0 {
		lat -= p.m.kernel.Rand().Int63n(cfg.LatencyJitter + 1)
	}
	if p.m.rec != nil {
		p.m.rec.Send(p.id, to, tag, lat)
	}
	d := p.m.newDelivery()
	d.msg = Message{From: p.id, To: to, Tag: tag, Data: data, Size: 1, SentAt: initiation}
	p.m.kernel.AfterRun(sim.Time(lat), d)
}

// HasMessage reports whether a message has arrived and is waiting, at no
// cost: it models the processor glancing at its network interface.
func (p *Proc) HasMessage() bool { return p.Pending() > 0 }

// Pending reports the number of arrived, unreceived messages.
func (p *Proc) Pending() int { return len(p.inbox) - p.inboxHead }

// popInbox removes and returns the earliest-arrived message.
func (p *Proc) popInbox() Message {
	msg := p.inbox[p.inboxHead]
	p.inbox[p.inboxHead] = Message{}
	p.inboxHead++
	if p.inboxHead == len(p.inbox) {
		p.inbox = p.inbox[:0]
		p.inboxHead = 0
	}
	return msg
}

// RecvReady reports whether a Recv would proceed immediately: a message has
// arrived and the reception gap has elapsed. Polling loops that interleave
// receives with other work should gate on this rather than HasMessage, or
// the Recv blocks waiting out the gap and delays the other work.
func (p *Proc) RecvReady() bool {
	return p.Pending() > 0 && p.Now() >= p.nextRecv
}

// HasTag reports whether a message with the given tag has arrived and is
// waiting, at no cost.
func (p *Proc) HasTag(tag int) bool {
	for i := p.inboxHead; i < len(p.inbox); i++ {
		if p.inbox[i].Tag == tag {
			return true
		}
	}
	return false
}

// Recv receives the earliest-arrived message, blocking until one is
// available. Model costs: reception start respects the gap (consecutive
// receptions at least max(g, o) apart) and the processor is busy for o
// cycles. The wait for arrival is idle time.
func (p *Proc) Recv() Message {
	if p.m.rec != nil {
		p.m.rec.Recv(p.id)
	}
	for p.Pending() == 0 {
		start := p.Now()
		p.inboxSig.Wait(p.ps)
		p.record(trace.Idle, start, p.Now())
	}
	msg := p.popInbox()
	// The gap wait (until nextRecv) and the reception overhead share one
	// kernel park; popping first is safe because later arrivals only append
	// behind the queue front.
	arrived := p.Now()
	start := arrived
	if p.nextRecv > start {
		start = p.nextRecv
	}
	cost := p.recvCost(msg)
	p.ps.WaitUntil(sim.Time(start + cost)) // gap, then receive overhead (per word without a coprocessor)
	p.stats.RecvOverhead += cost
	p.stats.MsgsReceived++
	if start > arrived {
		p.record(trace.Idle, arrived, start)
	}
	p.record(trace.RecvOverhead, start, p.Now())
	p.nextRecv = start + p.m.cfg.SendInterval()
	if t := start + cost; t > p.nextRecv {
		p.nextRecv = t
	}
	if p.m.cfg.HoldCapacityUntilReceive {
		p.m.settle(msg)
	}
	return msg
}

// TryRecv receives a message if one has arrived, without blocking for
// arrival (it still pays the gap and overhead when a message is taken).
func (p *Proc) TryRecv() (Message, bool) {
	if p.Pending() == 0 {
		return Message{}, false
	}
	return p.Recv(), true
}

// RecvTag receives the earliest message with the given tag, blocking until
// one arrives. Messages with other tags stay queued in arrival order. Each
// inspection that lands on a matching message costs one reception (o).
func (p *Proc) RecvTag(tag int) Message {
	if p.m.rec != nil {
		p.m.rec.RecvTag(p.id, tag)
	}
	for {
		for i := p.inboxHead; i < len(p.inbox); i++ {
			m := p.inbox[i]
			if m.Tag == tag {
				copy(p.inbox[i:], p.inbox[i+1:])
				p.inbox[len(p.inbox)-1] = Message{}
				p.inbox = p.inbox[:len(p.inbox)-1]
				if p.inboxHead == len(p.inbox) {
					p.inbox = p.inbox[:0]
					p.inboxHead = 0
				}
				arrived := p.Now()
				start := arrived
				if p.nextRecv > start {
					start = p.nextRecv
				}
				cost := p.recvCost(m)
				p.ps.WaitUntil(sim.Time(start + cost)) // gap, then reception
				p.stats.RecvOverhead += cost
				p.stats.MsgsReceived++
				if start > arrived {
					p.record(trace.Idle, arrived, start)
				}
				p.record(trace.RecvOverhead, start, p.Now())
				p.nextRecv = start + p.m.cfg.SendInterval()
				if t := start + cost; t > p.nextRecv {
					p.nextRecv = t
				}
				if p.m.cfg.HoldCapacityUntilReceive {
					p.m.settle(m)
				}
				return m
			}
		}
		start := p.Now()
		p.inboxSig.Wait(p.ps)
		p.record(trace.Idle, start, p.Now())
	}
}

// Barrier blocks until all P processors have arrived, then releases everyone
// Config.BarrierCost cycles after the last arrival. This models the special
// synchronization hardware of Section 5.5 (the CM-5 control network); the
// message-based alternative is collective.Barrier.
func (p *Proc) Barrier() {
	if p.m.rec != nil {
		p.m.rec.Barrier(p.id)
	}
	start := p.Now()
	p.m.barrier.Await(p.ps)
	if c := p.m.cfg.BarrierCost; c > 0 {
		p.ps.Wait(sim.Time(c))
	}
	p.record(trace.Idle, start, p.Now())
}

// Wait idles for the given number of cycles without counting as computation.
func (p *Proc) Wait(cycles int64) {
	if cycles <= 0 {
		return
	}
	if p.m.rec != nil {
		p.m.rec.Wait(p.id, cycles)
	}
	start := p.Now()
	p.ps.Wait(sim.Time(cycles))
	p.record(trace.Idle, start, p.Now())
}

// WaitUntil idles until the given absolute time (no-op if already past).
func (p *Proc) WaitUntil(t int64) {
	if p.m.rec != nil {
		p.m.rec.WaitUntil(p.id, t)
	}
	p.idleUntil(t)
}
