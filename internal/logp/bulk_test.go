package logp

import (
	"testing"
	"testing/quick"
)

// TestBulkDMATimingIsLogGP: with a coprocessor, a k-word transfer between
// idle processors completes in exactly 2o + (k-1)g + L — the long-message
// (LogGP) formula.
func TestBulkDMATimingIsLogGP(t *testing.T) {
	c := cfg(2, 30, 2, 4)
	c.Coprocessor = true
	for _, k := range []int{1, 2, 8, 50} {
		var done int64
		_, err := Run(c, func(p *Proc) {
			switch p.ID() {
			case 0:
				p.SendBulk(1, 0, "payload", k)
			case 1:
				m := p.Recv()
				if m.Size != k {
					t.Errorf("size %d, want %d", m.Size, k)
				}
				done = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		want := 2*c.O + int64(k-1)*c.G + c.L
		if done != want {
			t.Errorf("k=%d: done at %d, want 2o+(k-1)g+L = %d", k, done, want)
		}
	}
}

// TestBulkPIOTiming: without a coprocessor the processor is engaged o per
// word spaced by max(g,o), so the transfer ends at (k-1)*max(g,o) + 2o + L
// and both endpoints burn k*o cycles of overhead.
func TestBulkPIOTiming(t *testing.T) {
	c := cfg(2, 30, 2, 4)
	const k = 10
	var done int64
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			p.SendBulk(1, 0, nil, k)
		case 1:
			p.Recv()
			done = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sender engaged until (k-1)*interval + o = 38; arrival 38+L = 68;
	// receiver engaged k*o = 20 more.
	want := int64(k-1)*c.Params.SendInterval() + c.O + c.L + int64(k)*c.O
	if done != want {
		t.Errorf("done at %d, want %d", done, want)
	}
	if res.Procs[0].SendOverhead != int64(k-1)*c.Params.SendInterval()+c.O {
		t.Errorf("sender engaged %d", res.Procs[0].SendOverhead)
	}
	if res.Procs[1].RecvOverhead != int64(k)*c.O {
		t.Errorf("receiver engaged %d, want k*o", res.Procs[1].RecvOverhead)
	}
}

// TestBulkSingleWordEqualsSend: SendBulk of one word costs exactly Send in
// both modes.
func TestBulkSingleWordEqualsSend(t *testing.T) {
	for _, cop := range []bool{false, true} {
		c := cfg(2, 30, 2, 4)
		c.Coprocessor = cop
		var viaBulk, viaSend int64
		_, err := Run(c, func(p *Proc) {
			switch p.ID() {
			case 0:
				p.SendBulk(1, 0, nil, 1)
			case 1:
				p.Recv()
				viaBulk = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = Run(c, func(p *Proc) {
			switch p.ID() {
			case 0:
				p.Send(1, 0, nil)
			case 1:
				p.Recv()
				viaSend = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if viaBulk != viaSend {
			t.Errorf("coprocessor=%v: bulk-1 %d != send %d", cop, viaBulk, viaSend)
		}
	}
}

// TestDMAOverlapsComputation: the coprocessor frees the processor after the
// o setup, so computation overlaps the stream; PIO keeps the processor
// engaged for the whole train.
func TestDMAOverlapsComputation(t *testing.T) {
	const k = 40
	const work = 100
	run := func(cop bool) int64 {
		c := cfg(2, 30, 2, 4)
		c.Coprocessor = cop
		var senderDone int64
		_, err := Run(c, func(p *Proc) {
			switch p.ID() {
			case 0:
				p.SendBulk(1, 0, nil, k)
				p.Compute(work)
				senderDone = p.Now()
			case 1:
				p.Recv()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return senderDone
	}
	pio := run(false)
	dma := run(true)
	c := cfg(2, 30, 2, 4)
	if want := c.O + work; dma != want {
		t.Errorf("DMA sender done at %d, want o+work = %d", dma, want)
	}
	if want := int64(k-1)*c.Params.SendInterval() + c.O + work; pio != want {
		t.Errorf("PIO sender done at %d, want %d", pio, want)
	}
	if dma >= pio {
		t.Error("DMA did not overlap computation")
	}
}

// TestCoprocessorAtBestDoubles: Section 5.4 — "providing a separate network
// processor ... can at best double the performance of each node". On a
// balanced workload (communication overhead equals computation) the speedup
// approaches but does not exceed 2.
func TestCoprocessorAtBestDoubles(t *testing.T) {
	const rounds = 20
	const k = 25
	run := func(cop bool) int64 {
		c := cfg(2, 30, 2, 2) // o = 2 >= g: overhead-bound communication
		c.Coprocessor = cop
		work := int64(k) * c.O // computation balancing the PIO overhead
		var done int64
		res, err := Run(c, func(p *Proc) {
			switch p.ID() {
			case 0:
				for r := 0; r < rounds; r++ {
					p.SendBulk(1, 0, nil, k)
					p.Compute(work)
				}
				done = p.Now()
			case 1:
				for r := 0; r < rounds; r++ {
					p.Recv()
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		_ = res
		return done
	}
	pio := run(false)
	dma := run(true)
	speedup := float64(pio) / float64(dma)
	if speedup <= 1.3 {
		t.Errorf("speedup %.2f, expected a substantial gain on balanced work", speedup)
	}
	if speedup > 2.0 {
		t.Errorf("speedup %.2f exceeds the at-best-double bound", speedup)
	}
}

// TestBulkCapacityCountsOneUnit: a train takes one in-transit slot.
func TestBulkCapacityCountsOneUnit(t *testing.T) {
	c := cfg(2, 30, 2, 4) // capacity ceil(30/4) = 8
	c.Coprocessor = true
	res, err := Run(c, func(p *Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 5; i++ {
				p.SendBulk(1, 0, nil, 20)
			}
		case 1:
			for i := 0; i < 5; i++ {
				p.Recv()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxInTransitTo > c.Params.Capacity() {
		t.Errorf("in transit %d exceeds capacity", res.MaxInTransitTo)
	}
	if res.Messages != 5 {
		t.Errorf("%d messages, want 5 trains", res.Messages)
	}
}

// TestBulkStreamOrderingProperty: trains from one sender arrive in order and
// carry their payloads intact, for any sizes.
func TestBulkStreamOrderingProperty(t *testing.T) {
	f := func(sizes []uint8, cop bool) bool {
		if len(sizes) == 0 || len(sizes) > 12 {
			return true
		}
		c := cfg(2, 30, 2, 4)
		c.Coprocessor = cop
		ok := true
		_, err := Run(c, func(p *Proc) {
			switch p.ID() {
			case 0:
				for i, s := range sizes {
					p.SendBulk(1, i, i, int(s%40)+1)
				}
			case 1:
				for i, s := range sizes {
					m := p.Recv()
					if m.Tag != i || m.Data != i || m.Size != int(s%40)+1 {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBulkValidation(t *testing.T) {
	c := cfg(2, 30, 2, 4)
	_, err := Run(c, func(p *Proc) {
		if p.ID() != 0 {
			return
		}
		for _, f := range []func(){
			func() { p.SendBulk(1, 0, nil, 0) },
			func() { p.SendBulk(0, 0, nil, 2) },
			func() { p.SendBulk(9, 0, nil, 2) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("bad bulk send did not panic")
					}
				}()
				f()
			}()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
