// Package logp implements the LogP abstract machine as a deterministic
// discrete-event simulator: P asynchronous processors that communicate by
// point-to-point messages, with send/receive overhead o, gap g between
// consecutive transmissions or receptions at one processor, latency at most
// L, and the network capacity constraint of at most ceil(L/g) messages in
// transit from any processor or to any processor.
//
// Algorithm code is written as an ordinary Go function per processor using
// blocking Send/Recv/Compute primitives; the simulator charges model costs
// and reports per-processor activity, so the measured completion time of a
// run is the algorithm's LogP cost.
package logp

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/prof"
	"github.com/logp-model/logp/internal/sim"
	"github.com/logp-model/logp/internal/topo"
	"github.com/logp-model/logp/internal/trace"
)

// Config describes the machine to simulate.
type Config struct {
	core.Params

	// Topology, when non-nil, replaces the single global (L, o, g) with a
	// per-link cost model (see internal/topo): a message from i to j pays
	// the overhead, gap spacing and latency of link (i, j), and Compute
	// stretches by the model's per-processor rate. Params remains the base
	// tier — topo's constructors treat it as the cluster link — and the
	// capacity ceiling stays the global ceil(L/g) of Params (the NIC buffer
	// depth is a property of the endpoint, not of any one link).
	// Topology.P() must equal P. nil, and topo.Flat(Params), are both
	// cycle-identical to the pre-topology machine. LatencyJitter must not
	// exceed the model's minimum link L.
	Topology topo.Model

	// LatencyJitter makes message latency uniform in [L-LatencyJitter, L]
	// instead of exactly L. The model defines L as an upper bound and
	// algorithms must be correct under any latency; jitter also produces
	// the asynchronous drift the paper observes on the real CM-5 (Fig. 8).
	LatencyJitter int64

	// ComputeJitter stretches each Compute call by a uniform factor in
	// [1, 1+ComputeJitter], modeling cache misses and other local timing
	// noise ("processors execute asynchronously due to cache effects,
	// network collisions, etc.", Section 4.1.4).
	ComputeJitter float64

	// ProcSkew gives each processor a fixed systematic speed factor drawn
	// uniformly from [1, 1+ProcSkew] (deterministic in Seed), modeling
	// persistent per-node differences (cache conflicts depend on data
	// addresses). This is what makes processors "gradually drift out of
	// sync during the remap phase" in Figure 8.
	ProcSkew float64

	// Seed drives all randomness (jitter). Runs with equal Config and
	// program are bit-reproducible.
	Seed int64

	// DisableCapacity removes the ceil(L/g) capacity constraint, for
	// ablation: this reopens the infinite-bandwidth loophole the model
	// exists to close.
	DisableCapacity bool

	// HoldCapacityUntilReceive keeps a message's capacity slot occupied
	// until the destination processor actually receives it, instead of
	// releasing it on arrival at the destination module: a stricter
	// finite-buffering reading of "in transit to any processor".
	HoldCapacityUntilReceive bool

	// Coprocessor equips every node with a network DMA device for bulk
	// transfers (Section 5.4): SendBulk pays the setup overhead o once and
	// streams at the gap while the processor computes, and receiving a
	// train costs o once. Without it, bulk transfers engage the processor
	// o per word on both ends.
	Coprocessor bool

	// CollectTrace records per-processor activity segments (costly for
	// long runs; used for Figure 3/4 style Gantt output).
	CollectTrace bool

	// Profiler, when non-nil, records the run as a causal operation DAG
	// for critical-path analysis, what-if re-costing and Chrome-trace
	// export (see internal/prof). Every hook sits behind a nil check, so
	// the simulator's zero-allocation hot paths are untouched when
	// profiling is off.
	Profiler *prof.Recorder

	// BarrierCost is the completion cost of the hardware barrier
	// (Section 5.5); Proc.Barrier releases all processors BarrierCost
	// cycles after the last arrival. The CM-5 implementation of Section
	// 4.1.4 uses such a barrier to resynchronize the remap phase.
	BarrierCost int64

	// Faults, when non-nil, injects seeded link and processor faults into
	// the run: message drop/duplication/extra latency, transient compute
	// slowdowns and fail-stop processor deaths. See FaultPlan (faults.go)
	// for the exact semantics and determinism contract. Every fault check
	// sits behind a nil test, so the fault-free hot paths are untouched.
	Faults *FaultPlan

	// Metrics, when non-nil, attaches the live telemetry registry of
	// internal/metrics: per-processor and per-link counters, flight-time
	// and stall histograms, and a sim-time sampler that snapshots in-flight
	// counts against the ceil(L/g) ceiling, inbox depths and utilization
	// every MetricsEvery cycles. Every hook sits behind a nil check (the
	// same pattern as Profiler), so the metrics-off hot path stays
	// allocation-free per message.
	Metrics *metrics.Registry

	// MetricsEvery is the sampling interval of the metrics time series in
	// simulated cycles; <= 0 takes metrics.DefaultEvery. Ignored without
	// Metrics.
	MetricsEvery int64
}

// ProcStats aggregates one processor's activity over a run.
type ProcStats struct {
	Proc         int
	Compute      int64 // cycles of local work
	SendOverhead int64 // cycles paying o on sends
	RecvOverhead int64 // cycles paying o on receives
	Stall        int64 // cycles stalled on the capacity constraint
	Finish       int64 // local completion time
	MsgsSent     int
	MsgsReceived int
}

// Idle is the time the processor spent waiting (gap spacing, message waits
// and end-of-program skew) out of the given horizon.
func (s ProcStats) Idle(horizon int64) int64 {
	busy := s.Compute + s.SendOverhead + s.RecvOverhead + s.Stall
	if horizon < s.Finish {
		horizon = s.Finish
	}
	return horizon - busy
}

// Result summarizes a machine run.
type Result struct {
	// Time is the completion time of the slowest processor, the "maximum
	// time ... used by any processor" metric of Section 3.
	Time int64
	// Procs holds per-processor statistics.
	Procs []ProcStats
	// Messages is the total number of messages delivered.
	Messages int
	// MaxInTransitFrom / MaxInTransitTo are the largest observed in-transit
	// counts; both are bounded by the capacity constraint when enabled.
	MaxInTransitFrom int
	MaxInTransitTo   int
	// Trace is the activity log (nil unless Config.CollectTrace).
	Trace *trace.Log
	// Dropped counts messages the fault layer lost in flight (including
	// messages addressed to an already-dead processor); Duplicated counts
	// network-made extra copies delivered. Both are zero without faults.
	Dropped    int
	Duplicated int
	// Failed lists fail-stopped processors in processor order.
	Failed []int
	// Undelivered counts messages still queued at processor inboxes when
	// the run ended. Without a FaultPlan this is always zero (a leftover
	// message is reported as an error instead); under faults it is expected
	// residue — retransmissions and acks outliving their consumer.
	Undelivered int
}

// BusyFraction is the fraction of processor-cycles spent on computation, a
// measure of efficiency.
func (r Result) BusyFraction() float64 {
	if r.Time == 0 || len(r.Procs) == 0 {
		return 0
	}
	var busy int64
	for _, s := range r.Procs {
		busy += s.Compute
	}
	return float64(busy) / float64(r.Time*int64(len(r.Procs)))
}

// TotalStall sums capacity-stall cycles across processors.
func (r Result) TotalStall() int64 {
	var total int64
	for _, s := range r.Procs {
		total += s.Stall
	}
	return total
}

// Machine is a LogP machine ready to run one program.
type Machine struct {
	cfg    Config
	topol  topo.Model // nil unless Config.Topology: per-link cost model
	kernel *sim.Kernel
	procs  []*Proc
	// capacity semaphores, one pair per processor, nil if disabled
	outCap  []*sim.Semaphore
	inCap   []*sim.Semaphore
	barrier *sim.Barrier
	tr      *trace.Log
	rec     *prof.Recorder    // nil unless Config.Profiler
	met     *metrics.Registry // nil unless Config.Metrics
	faults  *faultState       // nil unless Config.Faults
	skew    []float64         // per-processor systematic speed factor
	// sampler state (metrics only): live processors gate rescheduling so
	// the recurring sample event cannot keep the kernel alive forever, and
	// the lastBusy/lastSample pair turns cumulative busy-cycle counts into
	// per-interval utilization.
	smp        sampleEvent
	live       int
	lastBusy   []int64
	lastSample int64
	// fault counters (see Result)
	dropped    int
	duplicated int
	// in-transit tracking (kept even when enforcement is disabled, so the
	// ablation can show the flood)
	inTransitFrom []int
	inTransitTo   []int
	maxOut        int
	maxIn         int
	// freeDeliveries recycles message-arrival event records: the kernel runs
	// strictly single-threaded, so a plain freelist (no locking) makes the
	// Send hot path allocation-free in steady state.
	freeDeliveries []*delivery
}

// delivery is a pooled message-arrival event. It implements sim.Runner so
// scheduling it does not allocate a closure, and it returns itself to the
// machine's freelist once the message is enqueued at the destination.
// drop marks a message the fault layer loses at arrival; dup marks a
// network-made duplicate copy, which is exempt from capacity accounting.
type delivery struct {
	m      *Machine
	msg    Message
	drop   bool
	dup    bool
	flight int64 // actual network latency drawn for this copy (metrics)
}

// RunEvent completes the message's flight: stamp the arrival, enqueue at
// the destination inbox, settle capacity (unless held until receive), and
// wake a waiting receiver. Under faults, a dropped message — or any message
// addressed to a dead processor — is discarded here instead, freeing its
// capacity slots (the network has dropped its buffer), and duplicate copies
// are enqueued without touching the capacity books.
func (d *delivery) RunEvent() {
	m := d.m
	msg := d.msg
	drop, dup, flight := d.drop, d.dup, d.flight
	d.msg = Message{}
	d.drop, d.dup = false, false
	m.freeDeliveries = append(m.freeDeliveries, d)
	msg.ArrivedAt = int64(m.kernel.Now())
	dst := m.procs[msg.To]
	if drop || dst.failed {
		m.dropped++
		if m.met != nil {
			m.met.OnDrop(msg.To)
		}
		if !dup {
			m.settle(msg)
		}
		return
	}
	dst.inbox = append(dst.inbox, msg)
	if dup {
		m.duplicated++
		if m.met != nil {
			m.met.OnDup(msg.To)
		}
	} else {
		if m.met != nil {
			m.met.OnDeliver(msg.To, flight)
		}
		if !m.cfg.HoldCapacityUntilReceive {
			m.settle(msg)
		}
	}
	dst.inboxSig.Notify()
}

// sampleEvent is the recurring metrics sampler. It implements sim.Runner so
// each firing schedules without allocating, and it stops rescheduling once
// every processor has finished (m.live == 0) or the kernel is otherwise
// quiescent — in either case re-arming would keep the queue non-empty
// forever, so Run would never return (and never report a deadlock).
type sampleEvent struct{ m *Machine }

// RunEvent snapshots the machine and re-arms the sampler.
func (s *sampleEvent) RunEvent() {
	m := s.m
	if m.live == 0 {
		// All processors already finished; skip the sample so the series
		// never contains a point stamped past the run's final SimTime
		// (Machine.Run closes the series at the true finish time).
		return
	}
	m.takeSample(int64(m.kernel.Now()))
	if m.kernel.Quiescent() {
		// Live processors remain but nothing is scheduled to wake them:
		// the program is deadlocked. Let the queue drain so kernel.Run
		// returns its DeadlockError instead of sampling forever.
		return
	}
	m.kernel.AfterRun(sim.Time(m.met.Every()), s)
}

// takeSample appends one time-series point stamped now to the metrics
// registry: in-flight counts from/to each processor (to be read against the
// ceil(L/g) ceiling), inbox depths, cumulative capacity-stall cycles, total
// delivered messages, and per-interval utilization derived by differencing
// each processor's cumulative busy cycles since the previous sample.
func (m *Machine) takeSample(now int64) {
	n := m.cfg.P
	s := metrics.Sample{
		Time:         now,
		Delivered:    m.met.DeliveredTotal(),
		InFlightFrom: make([]int32, n),
		InFlightTo:   make([]int32, n),
		InboxDepth:   make([]int32, n),
		StallCycles:  make([]int64, n),
		Utilization:  make([]float64, n),
	}
	interval := now - m.lastSample
	for i, pr := range m.procs {
		s.InFlightFrom[i] = int32(m.inTransitFrom[i])
		s.InFlightTo[i] = int32(m.inTransitTo[i])
		s.InboxDepth[i] = int32(pr.Pending())
		s.StallCycles[i] = pr.stats.Stall
		busy := pr.stats.Compute + pr.stats.SendOverhead + pr.stats.RecvOverhead + pr.stats.Stall
		if interval > 0 {
			u := float64(busy-m.lastBusy[i]) / float64(interval)
			if u > 1 {
				u = 1 // busy cycles granted mid-operation can overshoot the interval
			}
			s.Utilization[i] = u
		}
		m.lastBusy[i] = busy
	}
	m.lastSample = now
	m.met.AddSample(s)
}

// newDelivery takes an arrival record from the freelist, or allocates one.
func (m *Machine) newDelivery() *delivery {
	if n := len(m.freeDeliveries); n > 0 {
		d := m.freeDeliveries[n-1]
		m.freeDeliveries = m.freeDeliveries[:n-1]
		return d
	}
	return &delivery{m: m}
}

// New builds a machine. Config.Params must validate.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.LatencyJitter < 0 || cfg.LatencyJitter > cfg.L {
		return nil, fmt.Errorf("logp: latency jitter %d outside [0, L=%d]", cfg.LatencyJitter, cfg.L)
	}
	if cfg.Topology != nil {
		if cfg.Topology.P() != cfg.P {
			return nil, fmt.Errorf("logp: topology describes P=%d, machine has P=%d", cfg.Topology.P(), cfg.P)
		}
		if minL := cfg.Topology.MinL(); cfg.LatencyJitter > minL {
			return nil, fmt.Errorf("logp: latency jitter %d exceeds the minimum link L=%d", cfg.LatencyJitter, minL)
		}
	}
	if cfg.ComputeJitter < 0 {
		return nil, fmt.Errorf("logp: negative compute jitter %v", cfg.ComputeJitter)
	}
	if cfg.ProcSkew < 0 {
		return nil, fmt.Errorf("logp: negative processor skew %v", cfg.ProcSkew)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.P); err != nil {
			return nil, err
		}
	}
	m := &Machine{
		cfg:           cfg,
		topol:         cfg.Topology,
		kernel:        sim.NewKernel(cfg.Seed),
		barrier:       sim.NewBarrier(cfg.P),
		inTransitFrom: make([]int, cfg.P),
		inTransitTo:   make([]int, cfg.P),
	}
	if cfg.ProcSkew > 0 {
		m.skew = make([]float64, cfg.P)
		for i := range m.skew {
			m.skew[i] = 1 + cfg.ProcSkew*m.kernel.Rand().Float64()
		}
	}
	if cfg.CollectTrace {
		m.tr = &trace.Log{}
	}
	if cfg.Faults != nil {
		m.faults = newFaultState(cfg.Faults, cfg.P)
	}
	if cfg.Profiler != nil {
		m.rec = cfg.Profiler
		m.rec.Begin(prof.RunInfo{
			Params:                   cfg.Params,
			Coprocessor:              cfg.Coprocessor,
			DisableCapacity:          cfg.DisableCapacity,
			HoldCapacityUntilReceive: cfg.HoldCapacityUntilReceive,
			BarrierCost:              cfg.BarrierCost,
		})
	}
	if !cfg.DisableCapacity {
		capUnits := cfg.Params.Capacity()
		m.outCap = make([]*sim.Semaphore, cfg.P)
		m.inCap = make([]*sim.Semaphore, cfg.P)
		for i := 0; i < cfg.P; i++ {
			m.outCap[i] = sim.NewSemaphore(capUnits)
			m.inCap[i] = sim.NewSemaphore(capUnits)
		}
	}
	if cfg.Metrics != nil {
		m.met = cfg.Metrics
		capUnits := 0
		if !cfg.DisableCapacity {
			capUnits = cfg.Params.Capacity()
		}
		m.met.Begin(cfg.P, capUnits, cfg.MetricsEvery)
		m.lastBusy = make([]int64, cfg.P)
		m.smp = sampleEvent{m: m}
	}
	return m, nil
}

// settle ends a message's in-transit accounting and frees its capacity
// slots: at arrival normally, or at reception under
// HoldCapacityUntilReceive.
func (m *Machine) settle(msg Message) {
	m.inTransitFrom[msg.From]--
	m.inTransitTo[msg.To]--
	if m.outCap != nil {
		m.outCap[msg.From].Release()
		m.inCap[msg.To].Release()
	}
}

// link resolves the (L, o, g) governing a message from from to to: the
// global Params without a topology, the model's link with one. The nil
// branch keeps the pre-topology machine bit-exact, and the model call is a
// pure method on an immutable value, so the hot path stays allocation-free
// either way.
func (m *Machine) link(from, to int) (l, o, g int64) {
	if m.topol == nil {
		return m.cfg.L, m.cfg.O, m.cfg.G
	}
	lk := m.topol.Link(from, to)
	return lk.L, lk.O, lk.G
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Params returns the LogP parameters.
func (m *Machine) Params() core.Params { return m.cfg.Params }

// Run executes body on every processor (as processor p.ID) until all return,
// and reports the run. A Machine runs one program; build a fresh Machine per
// run.
func (m *Machine) Run(body func(p *Proc)) (Result, error) {
	if m.procs != nil {
		return Result{}, fmt.Errorf("logp: machine already ran")
	}
	m.procs = make([]*Proc, m.cfg.P)
	// Fail-stop events are scheduled before the processors so that at equal
	// times the kill fires first and the victim dies before doing any work.
	if m.faults != nil {
		for _, fs := range m.faults.plan.FailStops {
			pr := &fs
			m.kernel.At(sim.Time(pr.At), func() { m.kill(pr.Proc) })
		}
	}
	if m.met != nil {
		m.live = m.cfg.P
		m.kernel.AfterRun(sim.Time(m.met.Every()), &m.smp)
	}
	for i := 0; i < m.cfg.P; i++ {
		pr := &Proc{id: i, m: m}
		pr.wake.p = pr
		m.procs[i] = pr
		m.kernel.Spawn(fmt.Sprintf("proc%d", i), func(ps *sim.Process) {
			pr.ps = ps
			defer func() {
				m.live--
				pr.stats.Finish = int64(ps.Now())
				if r := recover(); r != nil {
					if _, ok := r.(procFailure); ok && pr.failed {
						if m.rec != nil {
							m.rec.FailStop(pr.id, pr.stats.Finish)
						}
						return
					}
					panic(r)
				}
			}()
			body(pr)
		})
	}
	if err := m.kernel.Run(); err != nil {
		return Result{}, err
	}
	res := Result{
		Procs:            make([]ProcStats, m.cfg.P),
		Trace:            m.tr,
		MaxInTransitFrom: m.maxOut,
		MaxInTransitTo:   m.maxIn,
		Dropped:          m.dropped,
		Duplicated:       m.duplicated,
	}
	for i, pr := range m.procs {
		pr.stats.Proc = i
		res.Procs[i] = pr.stats
		if pr.stats.Finish > res.Time {
			res.Time = pr.stats.Finish
		}
		res.Messages += pr.stats.MsgsReceived
		if pr.failed {
			res.Failed = append(res.Failed, i)
		}
		if n := pr.Pending(); n > 0 {
			res.Undelivered += n
			if m.faults == nil {
				return res, fmt.Errorf("logp: proc %d finished with %d undelivered messages", i, n)
			}
		}
	}
	if m.met != nil {
		// Close the time series with a final point at the end of the run
		// (unless the sampler already fired at this instant). Stamped with
		// res.Time, not kernel.Now(): a last sampler firing after every
		// processor finished can leave the clock past the true finish time.
		if res.Time > m.lastSample || len(m.met.Samples) == 0 {
			m.takeSample(res.Time)
		}
		m.met.SetSimTime(res.Time)
	}
	return res, nil
}

// kill marks a processor fail-stopped and wakes it if it is blocked waiting
// for a message, so a dead receiver halts immediately instead of deadlocking
// the kernel. A processor blocked elsewhere (capacity stall, barrier) halts
// at its next operation boundary; a barrier that a dead processor never
// reaches deadlocks the survivors, which the kernel reports.
func (m *Machine) kill(proc int) {
	pr := m.procs[proc]
	if pr.failed {
		return
	}
	pr.failed = true
	pr.inboxSig.Broadcast()
}

// Run is a convenience wrapper: build a machine from cfg and run body.
func Run(cfg Config, body func(p *Proc)) (Result, error) {
	m, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(body)
}
