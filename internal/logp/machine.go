// Package logp implements the LogP abstract machine as a deterministic
// discrete-event simulator: P asynchronous processors that communicate by
// point-to-point messages, with send/receive overhead o, gap g between
// consecutive transmissions or receptions at one processor, latency at most
// L, and the network capacity constraint of at most ceil(L/g) messages in
// transit from any processor or to any processor.
//
// Algorithm code is written as an ordinary Go function per processor using
// blocking Send/Recv/Compute primitives; the simulator charges model costs
// and reports per-processor activity, so the measured completion time of a
// run is the algorithm's LogP cost.
package logp

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/prof"
	"github.com/logp-model/logp/internal/sim"
	"github.com/logp-model/logp/internal/trace"
)

// Config describes the machine to simulate.
type Config struct {
	core.Params

	// LatencyJitter makes message latency uniform in [L-LatencyJitter, L]
	// instead of exactly L. The model defines L as an upper bound and
	// algorithms must be correct under any latency; jitter also produces
	// the asynchronous drift the paper observes on the real CM-5 (Fig. 8).
	LatencyJitter int64

	// ComputeJitter stretches each Compute call by a uniform factor in
	// [1, 1+ComputeJitter], modeling cache misses and other local timing
	// noise ("processors execute asynchronously due to cache effects,
	// network collisions, etc.", Section 4.1.4).
	ComputeJitter float64

	// ProcSkew gives each processor a fixed systematic speed factor drawn
	// uniformly from [1, 1+ProcSkew] (deterministic in Seed), modeling
	// persistent per-node differences (cache conflicts depend on data
	// addresses). This is what makes processors "gradually drift out of
	// sync during the remap phase" in Figure 8.
	ProcSkew float64

	// Seed drives all randomness (jitter). Runs with equal Config and
	// program are bit-reproducible.
	Seed int64

	// DisableCapacity removes the ceil(L/g) capacity constraint, for
	// ablation: this reopens the infinite-bandwidth loophole the model
	// exists to close.
	DisableCapacity bool

	// HoldCapacityUntilReceive keeps a message's capacity slot occupied
	// until the destination processor actually receives it, instead of
	// releasing it on arrival at the destination module: a stricter
	// finite-buffering reading of "in transit to any processor".
	HoldCapacityUntilReceive bool

	// Coprocessor equips every node with a network DMA device for bulk
	// transfers (Section 5.4): SendBulk pays the setup overhead o once and
	// streams at the gap while the processor computes, and receiving a
	// train costs o once. Without it, bulk transfers engage the processor
	// o per word on both ends.
	Coprocessor bool

	// CollectTrace records per-processor activity segments (costly for
	// long runs; used for Figure 3/4 style Gantt output).
	CollectTrace bool

	// Profiler, when non-nil, records the run as a causal operation DAG
	// for critical-path analysis, what-if re-costing and Chrome-trace
	// export (see internal/prof). Every hook sits behind a nil check, so
	// the simulator's zero-allocation hot paths are untouched when
	// profiling is off.
	Profiler *prof.Recorder

	// BarrierCost is the completion cost of the hardware barrier
	// (Section 5.5); Proc.Barrier releases all processors BarrierCost
	// cycles after the last arrival. The CM-5 implementation of Section
	// 4.1.4 uses such a barrier to resynchronize the remap phase.
	BarrierCost int64
}

// ProcStats aggregates one processor's activity over a run.
type ProcStats struct {
	Proc         int
	Compute      int64 // cycles of local work
	SendOverhead int64 // cycles paying o on sends
	RecvOverhead int64 // cycles paying o on receives
	Stall        int64 // cycles stalled on the capacity constraint
	Finish       int64 // local completion time
	MsgsSent     int
	MsgsReceived int
}

// Idle is the time the processor spent waiting (gap spacing, message waits
// and end-of-program skew) out of the given horizon.
func (s ProcStats) Idle(horizon int64) int64 {
	busy := s.Compute + s.SendOverhead + s.RecvOverhead + s.Stall
	if horizon < s.Finish {
		horizon = s.Finish
	}
	return horizon - busy
}

// Result summarizes a machine run.
type Result struct {
	// Time is the completion time of the slowest processor, the "maximum
	// time ... used by any processor" metric of Section 3.
	Time int64
	// Procs holds per-processor statistics.
	Procs []ProcStats
	// Messages is the total number of messages delivered.
	Messages int
	// MaxInTransitFrom / MaxInTransitTo are the largest observed in-transit
	// counts; both are bounded by the capacity constraint when enabled.
	MaxInTransitFrom int
	MaxInTransitTo   int
	// Trace is the activity log (nil unless Config.CollectTrace).
	Trace *trace.Log
}

// BusyFraction is the fraction of processor-cycles spent on computation, a
// measure of efficiency.
func (r Result) BusyFraction() float64 {
	if r.Time == 0 || len(r.Procs) == 0 {
		return 0
	}
	var busy int64
	for _, s := range r.Procs {
		busy += s.Compute
	}
	return float64(busy) / float64(r.Time*int64(len(r.Procs)))
}

// TotalStall sums capacity-stall cycles across processors.
func (r Result) TotalStall() int64 {
	var total int64
	for _, s := range r.Procs {
		total += s.Stall
	}
	return total
}

// Machine is a LogP machine ready to run one program.
type Machine struct {
	cfg    Config
	kernel *sim.Kernel
	procs  []*Proc
	// capacity semaphores, one pair per processor, nil if disabled
	outCap  []*sim.Semaphore
	inCap   []*sim.Semaphore
	barrier *sim.Barrier
	tr      *trace.Log
	rec     *prof.Recorder // nil unless Config.Profiler
	skew    []float64      // per-processor systematic speed factor
	// in-transit tracking (kept even when enforcement is disabled, so the
	// ablation can show the flood)
	inTransitFrom []int
	inTransitTo   []int
	maxOut        int
	maxIn         int
	// freeDeliveries recycles message-arrival event records: the kernel runs
	// strictly single-threaded, so a plain freelist (no locking) makes the
	// Send hot path allocation-free in steady state.
	freeDeliveries []*delivery
}

// delivery is a pooled message-arrival event. It implements sim.Runner so
// scheduling it does not allocate a closure, and it returns itself to the
// machine's freelist once the message is enqueued at the destination.
type delivery struct {
	m   *Machine
	msg Message
}

// RunEvent completes the message's flight: stamp the arrival, enqueue at
// the destination inbox, settle capacity (unless held until receive), and
// wake a waiting receiver.
func (d *delivery) RunEvent() {
	m := d.m
	msg := d.msg
	d.msg = Message{}
	m.freeDeliveries = append(m.freeDeliveries, d)
	msg.ArrivedAt = int64(m.kernel.Now())
	dst := m.procs[msg.To]
	dst.inbox = append(dst.inbox, msg)
	if !m.cfg.HoldCapacityUntilReceive {
		m.settle(msg)
	}
	dst.inboxSig.Notify()
}

// newDelivery takes an arrival record from the freelist, or allocates one.
func (m *Machine) newDelivery() *delivery {
	if n := len(m.freeDeliveries); n > 0 {
		d := m.freeDeliveries[n-1]
		m.freeDeliveries = m.freeDeliveries[:n-1]
		return d
	}
	return &delivery{m: m}
}

// New builds a machine. Config.Params must validate.
func New(cfg Config) (*Machine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.LatencyJitter < 0 || cfg.LatencyJitter > cfg.L {
		return nil, fmt.Errorf("logp: latency jitter %d outside [0, L=%d]", cfg.LatencyJitter, cfg.L)
	}
	if cfg.ComputeJitter < 0 {
		return nil, fmt.Errorf("logp: negative compute jitter %v", cfg.ComputeJitter)
	}
	if cfg.ProcSkew < 0 {
		return nil, fmt.Errorf("logp: negative processor skew %v", cfg.ProcSkew)
	}
	m := &Machine{
		cfg:           cfg,
		kernel:        sim.NewKernel(cfg.Seed),
		barrier:       sim.NewBarrier(cfg.P),
		inTransitFrom: make([]int, cfg.P),
		inTransitTo:   make([]int, cfg.P),
	}
	if cfg.ProcSkew > 0 {
		m.skew = make([]float64, cfg.P)
		for i := range m.skew {
			m.skew[i] = 1 + cfg.ProcSkew*m.kernel.Rand().Float64()
		}
	}
	if cfg.CollectTrace {
		m.tr = &trace.Log{}
	}
	if cfg.Profiler != nil {
		m.rec = cfg.Profiler
		m.rec.Begin(prof.RunInfo{
			Params:                   cfg.Params,
			Coprocessor:              cfg.Coprocessor,
			DisableCapacity:          cfg.DisableCapacity,
			HoldCapacityUntilReceive: cfg.HoldCapacityUntilReceive,
			BarrierCost:              cfg.BarrierCost,
		})
	}
	if !cfg.DisableCapacity {
		capUnits := cfg.Params.Capacity()
		m.outCap = make([]*sim.Semaphore, cfg.P)
		m.inCap = make([]*sim.Semaphore, cfg.P)
		for i := 0; i < cfg.P; i++ {
			m.outCap[i] = sim.NewSemaphore(capUnits)
			m.inCap[i] = sim.NewSemaphore(capUnits)
		}
	}
	return m, nil
}

// settle ends a message's in-transit accounting and frees its capacity
// slots: at arrival normally, or at reception under
// HoldCapacityUntilReceive.
func (m *Machine) settle(msg Message) {
	m.inTransitFrom[msg.From]--
	m.inTransitTo[msg.To]--
	if m.outCap != nil {
		m.outCap[msg.From].Release()
		m.inCap[msg.To].Release()
	}
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Params returns the LogP parameters.
func (m *Machine) Params() core.Params { return m.cfg.Params }

// Run executes body on every processor (as processor p.ID) until all return,
// and reports the run. A Machine runs one program; build a fresh Machine per
// run.
func (m *Machine) Run(body func(p *Proc)) (Result, error) {
	if m.procs != nil {
		return Result{}, fmt.Errorf("logp: machine already ran")
	}
	m.procs = make([]*Proc, m.cfg.P)
	for i := 0; i < m.cfg.P; i++ {
		i := i
		pr := &Proc{id: i, m: m}
		m.procs[i] = pr
		m.kernel.Spawn(fmt.Sprintf("proc%d", i), func(ps *sim.Process) {
			pr.ps = ps
			body(pr)
			pr.stats.Finish = int64(ps.Now())
		})
	}
	if err := m.kernel.Run(); err != nil {
		return Result{}, err
	}
	res := Result{
		Procs:            make([]ProcStats, m.cfg.P),
		Trace:            m.tr,
		MaxInTransitFrom: m.maxOut,
		MaxInTransitTo:   m.maxIn,
	}
	for i, pr := range m.procs {
		pr.stats.Proc = i
		res.Procs[i] = pr.stats
		if pr.stats.Finish > res.Time {
			res.Time = pr.stats.Finish
		}
		res.Messages += pr.stats.MsgsReceived
		if n := pr.Pending(); n > 0 {
			return res, fmt.Errorf("logp: proc %d finished with %d undelivered messages", i, n)
		}
	}
	return res, nil
}

// Run is a convenience wrapper: build a machine from cfg and run body.
func Run(cfg Config, body func(p *Proc)) (Result, error) {
	m, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	return m.Run(body)
}
