package logp_test

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// A two-processor program: the completion time is the model's 2o+L.
func ExampleRun() {
	cfg := logp.Config{Params: core.Params{P: 2, L: 6, O: 2, G: 4}}
	res, err := logp.Run(cfg, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			p.Send(1, 0, "hello")
		case 1:
			m := p.Recv()
			fmt.Printf("proc 1 got %q at cycle %d\n", m.Data, p.Now())
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("run time:", res.Time)
	// Output:
	// proc 1 got "hello" at cycle 10
	// run time: 10
}

// Consecutive sends respect the gap: initiations every max(g, o).
func ExampleProc_Send() {
	cfg := logp.Config{Params: core.Params{P: 2, L: 6, O: 2, G: 4}}
	res, err := logp.Run(cfg, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			for i := 0; i < 3; i++ {
				p.Send(1, 0, i)
			}
			fmt.Println("sender done at", p.Now())
		case 1:
			for i := 0; i < 3; i++ {
				p.Recv()
			}
		}
	})
	if err != nil {
		panic(err)
	}
	_ = res
	// Output:
	// sender done at 10
}

// relay is a minimal reactive Program: processor 0 sends a token that each
// processor forwards to its successor; the last one records the arrival
// time. Handlers never block — they record operations on the Node and
// return — which is what lets the same Program run unchanged on the
// goroutine machine or the flat event core.
type relay struct{ arrived int64 }

func (r *relay) Start(n logp.Node) {
	if n.ID() == 0 {
		n.Send(1, 0, "token")
		n.Done() // sent; nothing more to receive
	}
}

func (r *relay) Message(n logp.Node, m logp.Message) {
	if n.ID() == n.P()-1 {
		r.arrived = n.Now()
	} else {
		n.Send(n.ID()+1, 0, m.Data)
	}
	n.Done() // the token passes each processor once
}

// A Program runs on whichever engine the registry resolves: engines register
// themselves by name (the flat core registers "flat" from its init), and
// callers pick one with EngineByName instead of hard-wiring an
// implementation. Each hop costs 2o+L = 10; the handlers themselves are free.
func ExampleEngineByName() {
	eng, err := logp.EngineByName("goroutine")
	if err != nil {
		panic(err)
	}
	prog := &relay{}
	cfg := logp.Config{Params: core.Params{P: 4, L: 6, O: 2, G: 4}}
	if _, err := eng.Run(cfg, prog); err != nil {
		panic(err)
	}
	fmt.Println("token crossed 3 hops at cycle", prog.arrived)
	// Output:
	// token crossed 3 hops at cycle 30
}

// Bulk transfers with a coprocessor follow the LogGP long-message formula
// 2o + (k-1)g + L.
func ExampleProc_SendBulk() {
	cfg := logp.Config{Params: core.Params{P: 2, L: 6, O: 2, G: 4}, Coprocessor: true}
	_, err := logp.Run(cfg, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			p.SendBulk(1, 0, "payload", 10)
		case 1:
			m := p.Recv()
			fmt.Printf("%d words at cycle %d\n", m.Size, p.Now())
		}
	})
	if err != nil {
		panic(err)
	}
	// Output:
	// 10 words at cycle 46
}
