package bsp

import (
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func machine(p int) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: 20, O: 4, G: 8}}
}

// TestMessagesArriveNextSuperstep: the defining BSP restriction.
func TestMessagesArriveNextSuperstep(t *testing.T) {
	got := make([][]int, 3) // per-step message counts at proc 1
	_, err := Run(machine(2), 3, func(s *Superstep) {
		if s.Proc().ID() == 0 && s.Step() == 0 {
			s.Send(1, "x")
		}
		if s.Proc().ID() == 1 {
			got[s.Step()] = append(got[s.Step()], len(s.Received()))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got[0][0] != 0 {
		t.Error("message visible in its own superstep")
	}
	if got[1][0] != 1 {
		t.Errorf("message not delivered in the next superstep: %v", got)
	}
	if got[2][0] != 0 {
		t.Error("message redelivered")
	}
}

// TestBSPReduction: a tree reduction across supersteps computes correctly.
func TestBSPReduction(t *testing.T) {
	P := 8
	sums := make([]int, P)
	steps := 3 // log2(8)
	_, err := Run(machine(P), steps+1, func(s *Superstep) {
		me := s.Proc().ID()
		if s.Step() == 0 {
			sums[me] = me + 1 // values 1..8
		}
		for _, m := range s.Received() {
			sums[me] += m.Data.(int)
			s.Compute(1)
		}
		stride := 1 << uint(s.Step())
		if s.Step() < steps && me&(2*stride-1) == stride {
			s.Send(me-stride, sums[me])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 36 {
		t.Errorf("reduction = %d, want 36", sums[0])
	}
}

// TestBarrierSynchronizesSteps: a processor cannot race ahead — everyone
// observes step k's messages before anyone computes step k+2.
func TestBSPDeterminism(t *testing.T) {
	run := func() int64 {
		res, err := Run(machine(4), 4, func(s *Superstep) {
			me := s.Proc().ID()
			s.Compute(int64(me + 1))
			s.Send((me+1)%4, me)
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	if run() != run() {
		t.Error("nondeterministic BSP run")
	}
}

// TestBSPChargesBarriers: an empty superstep still costs a barrier — the
// overhead the paper criticizes ("the length of a superstep must be
// sufficient to accommodate an arbitrary h-relation").
func TestBSPChargesBarriers(t *testing.T) {
	res1, err := Run(machine(8), 1, func(s *Superstep) {})
	if err != nil {
		t.Fatal(err)
	}
	res4, err := Run(machine(8), 4, func(s *Superstep) {})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Time == 0 || res4.Time < 3*res1.Time {
		t.Errorf("barrier cost not charged per superstep: %d vs %d", res1.Time, res4.Time)
	}
}

// TestCostFormula matches the standard shape.
func TestCostFormula(t *testing.T) {
	p := core.Params{P: 8, L: 20, O: 4, G: 8}
	c := Cost(p, 100, 10)
	if c != 100+8*10+(20+8)*3 {
		t.Errorf("cost = %d", c)
	}
}

// TestBSPExchangeProperty: arbitrary send patterns are delivered exactly.
func TestBSPExchangeProperty(t *testing.T) {
	f := func(seed int64) bool {
		P := 4
		sent := make([][]int, P)   // per source: list of dests
		recvd := make([]int, P)    // messages seen at each proc
		expected := make([]int, P) // messages expected
		rng := seed
		next := func() int64 { rng = rng*6364136223846793005 + 1442695040888963407; return rng }
		for src := 0; src < P; src++ {
			k := int(uint64(next()) % 5)
			for i := 0; i < k; i++ {
				d := int(uint64(next()) % uint64(P))
				if d == src {
					continue
				}
				sent[src] = append(sent[src], d)
				expected[d]++
			}
		}
		_, err := Run(machine(P), 2, func(s *Superstep) {
			me := s.Proc().ID()
			if s.Step() == 0 {
				for _, d := range sent[me] {
					s.Send(d, me)
				}
				return
			}
			recvd[me] = len(s.Received())
		})
		if err != nil {
			return false
		}
		for i := range recvd {
			if recvd[i] != expected[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSendValidation(t *testing.T) {
	_, err := Run(machine(2), 1, func(s *Superstep) {
		if s.Proc().ID() != 0 {
			return
		}
		for _, f := range []func(){
			func() { s.Send(0, nil) }, // self
			func() { s.Send(5, nil) }, // range
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Error("bad send did not panic")
					}
				}()
				f()
			}()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
