// Package bsp implements Valiant's bulk-synchronous programming model on
// top of the LogP machine, for the Section 6.3 comparison. A computation is
// a sequence of supersteps; within one, a processor computes on local data,
// sends messages, and receives messages — but "the messages sent at the
// beginning of a superstep can only be used in the next superstep", and a
// global synchronization ends every superstep. Running BSP programs on the
// simulated LogP machine charges them honest message costs, exposing the
// two BSP overheads the paper calls out: the barrier per superstep, and the
// inability to use a message the moment it arrives.
package bsp

import (
	"fmt"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// Message is one superstep-delimited message.
type Message struct {
	From int
	Data any
}

// Superstep is the per-processor view of one superstep.
type Superstep struct {
	step int
	p    *logp.Proc
	in   []Message
	out  [][]any
}

// Step reports the superstep index (0-based).
func (s *Superstep) Step() int { return s.step }

// Proc exposes the processor (for ID, P and Compute; direct Send/Recv would
// break the model and should not be used inside BSP programs).
func (s *Superstep) Proc() *logp.Proc { return s.p }

// Received returns the messages sent to this processor during the previous
// superstep.
func (s *Superstep) Received() []Message { return s.in }

// Send queues a message for delivery at the start of the next superstep.
func (s *Superstep) Send(dst int, data any) {
	if dst < 0 || dst >= s.p.P() {
		panic(fmt.Sprintf("bsp: destination %d out of range", dst))
	}
	if dst == s.p.ID() {
		panic("bsp: self-send")
	}
	s.out[dst] = append(s.out[dst], data)
}

// Compute charges local work.
func (s *Superstep) Compute(w int64) { s.p.Compute(w) }

const tagBase = 21000

// Run executes the given number of supersteps on the machine. body is
// called once per processor per superstep. The end-of-superstep exchange
// delivers all queued messages (staggered destinations, counts first) and a
// message-based dissemination barrier provides the global synchronization.
func Run(cfg logp.Config, steps int, body func(s *Superstep)) (logp.Result, error) {
	return logp.Run(cfg, func(p *logp.Proc) {
		P := p.P()
		me := p.ID()
		var in []Message
		for step := 0; step < steps; step++ {
			s := &Superstep{step: step, p: p, in: in, out: make([][]any, P)}
			body(s)
			// Exchange: counts, then data, then the barrier.
			ctag := tagBase + 32*step
			dtag := ctag + 1
			btag := ctag + 2
			for i := 1; i < P; i++ {
				d := (me + i) % P
				p.Send(d, ctag, len(s.out[d]))
			}
			expect := 0
			for i := 1; i < P; i++ {
				expect += p.RecvTag(ctag).Data.(int)
			}
			next := make([]Message, 0, expect)
			for i := 1; i < P; i++ {
				d := (me + i) % P
				for _, v := range s.out[d] {
					for p.HasTag(dtag) && len(next) < expect {
						m := p.RecvTag(dtag)
						next = append(next, Message{From: m.From, Data: m.Data})
					}
					p.Send(d, dtag, v)
				}
			}
			for len(next) < expect {
				m := p.RecvTag(dtag)
				next = append(next, Message{From: m.From, Data: m.Data})
			}
			collective.Barrier(p, btag)
			in = next
		}
	})
}

// Cost is the analytic BSP charge for one superstep: w + g*h + l, with g
// and l derived from the LogP parameters as in internal/models (gBSP =
// max(g,o), l = L + 2o per synchronization round times the dissemination
// depth).
func Cost(p core.Params, w int64, h int) int64 {
	g := p.SendInterval()
	l := (p.L + 2*p.O) * int64(collective.BarrierRounds(p.P))
	return w + g*int64(h) + l
}
