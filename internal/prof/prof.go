// Package prof is the causal profiler for simulated LogP machine runs: it
// records a run as a dependence DAG of operations (compute segments,
// send/receive overhead slots, message flights, gap and capacity waits) and
// answers the questions the paper answers by hand for its broadcast,
// summation and FFT studies:
//
//   - where did the makespan go? CriticalPath extracts the longest weighted
//     chain of spans ending at the last event, and Attribution charges each
//     cycle of it to compute, overhead o, gap g, latency L, or a capacity
//     stall — the model-parameter accounting of Section 3;
//   - what would a different machine do? Replay re-costs the recorded DAG
//     under altered (L, o, g, capacity, coprocessor) without re-running the
//     program, so a parameter sweep costs one simulation plus cheap replays;
//   - what does the run look like? WriteChromeTrace exports the spans and
//     message arrows as Chrome trace_event JSON for chrome://tracing.
//
// Recording is wired into internal/logp behind a nil-checked hook
// (logp.Config.Profiler), so the simulator's zero-allocation hot paths are
// untouched when profiling is off.
package prof

import (
	"github.com/logp-model/logp/internal/core"
)

// OpKind classifies one recorded machine operation.
type OpKind uint8

const (
	// OpCompute is a Compute call; Arg holds the charged cycles (after
	// processor skew and compute jitter, so replay needs no random state).
	OpCompute OpKind = iota
	// OpSend is a small-message Send; Arg holds the actual network latency
	// drawn for the message.
	OpSend
	// OpSendBulk is a SendBulk train of Words words; Arg is the latency.
	OpSendBulk
	// OpRecv is a Recv or RecvTag; AnyTag distinguishes them.
	OpRecv
	// OpBarrier is a hardware Barrier arrival.
	OpBarrier
	// OpWait is a Wait; Arg holds the idled cycles.
	OpWait
	// OpWaitUntil is a WaitUntil; Arg holds the absolute target time.
	OpWaitUntil
	// OpDup is a network-made duplicate (fault injection) of the send
	// recorded immediately before it; Arg holds the duplicate's latency. It
	// consumes no processor time and no capacity slot on replay.
	OpDup
)

// Op is one recorded operation of one processor. Ops are recorded in
// per-processor program order; together with the machine configuration they
// determine the run completely (the simulator is deterministic), which is
// what makes replay under altered parameters possible.
type Op struct {
	Kind    OpKind
	AnyTag  bool  // OpRecv: plain Recv (matches any tag) rather than RecvTag
	Dropped bool  // OpSend/OpSendBulk: the fault layer lost this message
	To      int32 // OpSend/OpSendBulk: destination processor
	Tag     int32 // send tag, or RecvTag filter
	Words   int32 // OpSendBulk: words in the train (1 for OpSend)
	Arg     int64 // cycles, latency, or absolute time, per Kind
}

// RunInfo is the machine configuration the recording was made under: the
// subset of logp.Config that affects costs. Replay defaults to these values
// so a what-if sweep only overrides what it varies.
type RunInfo struct {
	Params                   core.Params
	Coprocessor              bool
	DisableCapacity          bool
	HoldCapacityUntilReceive bool
	BarrierCost              int64
}

// Recorder accumulates the operation log of one machine run. Pass it to the
// machine via logp.Config.Profiler; after the run it can be analyzed and
// replayed any number of times. A Recorder is reset by Begin, so it can be
// reused across sequential runs (the analysis always reflects the latest).
// It is not safe for concurrent use: like the machine itself, it assumes the
// single-threaded simulation kernel.
type Recorder struct {
	info RunInfo
	ops  [][]Op
	sent int // total messages recorded
	// fault bookkeeping: pendingRecv tracks a Recv/RecvTag that has been
	// recorded but not yet completed (so FailStop can pop a receive the dead
	// processor never finished); failed marks fail-stopped processors, which
	// replay uses to discard their late arrivals as the machine does.
	pendingRecv []bool
	failed      []bool
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Begin resets the recorder for a run on the given machine configuration.
// The machine calls it when it is built; tests may call it directly to
// construct synthetic recordings.
func (r *Recorder) Begin(info RunInfo) {
	r.info = info
	r.sent = 0
	if cap(r.ops) >= info.Params.P {
		r.ops = r.ops[:info.Params.P]
		for i := range r.ops {
			r.ops[i] = r.ops[i][:0]
		}
	} else {
		r.ops = make([][]Op, info.Params.P)
	}
	r.pendingRecv = make([]bool, info.Params.P)
	r.failed = make([]bool, info.Params.P)
}

// Info returns the recorded machine configuration.
func (r *Recorder) Info() RunInfo { return r.info }

// Ops returns processor proc's recorded operations in program order. The
// slice aliases the recorder's storage; treat it as read-only.
func (r *Recorder) Ops(proc int) []Op { return r.ops[proc] }

// Messages returns the number of recorded message transmissions.
func (r *Recorder) Messages() int { return r.sent }

// Compute records a Compute of the given charged cycles.
func (r *Recorder) Compute(proc int, cycles int64) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpCompute, Arg: cycles})
}

// Send records a small-message send with the actual latency drawn.
func (r *Recorder) Send(proc, to, tag int, lat int64) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpSend, To: int32(to), Tag: int32(tag), Words: 1, Arg: lat})
	r.sent++
}

// SendBulk records a bulk send of words words with the actual latency drawn.
func (r *Recorder) SendBulk(proc, to, tag, words int, lat int64) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpSendBulk, To: int32(to), Tag: int32(tag), Words: int32(words), Arg: lat})
	r.sent++
}

// Recv records a reception that matches any tag.
func (r *Recorder) Recv(proc int) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpRecv, AnyTag: true})
	r.pendingRecv[proc] = true
}

// RecvTag records a reception filtered to one tag.
func (r *Recorder) RecvTag(proc, tag int) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpRecv, Tag: int32(tag)})
	r.pendingRecv[proc] = true
}

// RecvDone records that the last recorded reception completed (the machine
// calls it once the message is consumed), so a later FailStop knows whether
// the trailing receive is still open.
func (r *Recorder) RecvDone(proc int) { r.pendingRecv[proc] = false }

// DropLast marks the just-recorded send of proc as lost by the fault layer:
// replay puts the message in flight (the sender paid its costs) but discards
// it at arrival instead of delivering it.
func (r *Recorder) DropLast(proc int) {
	ops := r.ops[proc]
	ops[len(ops)-1].Dropped = true
}

// Dup records a network-made duplicate (fault injection) of the send
// recorded immediately before it, with the duplicate's own latency. Replay
// re-delivers the previous message at the duplicate latency, exempt from
// capacity.
func (r *Recorder) Dup(proc, to, tag, words int, lat int64) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpDup, To: int32(to), Tag: int32(tag), Words: int32(words), Arg: lat})
}

// FailStop records that proc fail-stopped at absolute time t. If the
// processor died inside a receive (recorded at entry but never completed),
// that trailing OpRecv is popped, so replay does not wait for a message the
// dead processor never consumed; an OpWaitUntil to the halt time takes its
// place, so replay finishes the victim exactly when the machine did.
func (r *Recorder) FailStop(proc int, t int64) {
	if r.pendingRecv[proc] {
		r.ops[proc] = r.ops[proc][:len(r.ops[proc])-1]
		r.pendingRecv[proc] = false
	}
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpWaitUntil, Arg: t})
	r.failed[proc] = true
}

// Failed reports whether proc fail-stopped during the recorded run.
func (r *Recorder) Failed(proc int) bool { return r.failed[proc] }

// Barrier records an arrival at the hardware barrier.
func (r *Recorder) Barrier(proc int) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpBarrier})
}

// Wait records an idle wait of the given cycles.
func (r *Recorder) Wait(proc int, cycles int64) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpWait, Arg: cycles})
}

// WaitUntil records an idle wait until the given absolute time. Absolute
// times do not rescale under replay with altered parameters; see the replay
// soundness notes in DESIGN.md.
func (r *Recorder) WaitUntil(proc int, t int64) {
	r.ops[proc] = append(r.ops[proc], Op{Kind: OpWaitUntil, Arg: t})
}
