package prof_test

import (
	"testing"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/prof"
	"github.com/logp-model/logp/internal/trace"
)

// fig3 is the machine of the paper's Figure 3: P=8, L=6, o=2, g=4.
var fig3 = core.Params{P: 8, L: 6, O: 2, G: 4}

func mustRun(t *testing.T, cfg logp.Config, body func(p *logp.Proc)) logp.Result {
	t.Helper()
	res, err := logp.Run(cfg, body)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func mustAnalyze(t *testing.T, rec *prof.Recorder) *prof.Run {
	t.Helper()
	run, err := rec.Analyze()
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// recordBroadcast runs the optimal broadcast under a profiler and returns
// the recording alongside the machine result.
func recordBroadcast(t *testing.T, params core.Params, cfg logp.Config) (*prof.Recorder, logp.Result) {
	t.Helper()
	s, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		t.Fatal(err)
	}
	rec := prof.NewRecorder()
	cfg.Params = params
	cfg.Profiler = rec
	res := mustRun(t, cfg, func(p *logp.Proc) {
		collective.Broadcast(p, s, 1, "datum")
	})
	return rec, res
}

// checkMatchesMachine asserts the replayed run reconstructs the machine run
// exactly: same makespan and same per-processor completion times.
func checkMatchesMachine(t *testing.T, run *prof.Run, res logp.Result) {
	t.Helper()
	if run.Makespan != res.Time {
		t.Errorf("replay makespan %d, machine ran in %d", run.Makespan, res.Time)
	}
	for i, f := range run.Finish {
		if f != res.Procs[i].Finish {
			t.Errorf("proc %d: replay finish %d, machine finish %d", i, f, res.Procs[i].Finish)
		}
	}
}

// TestFig3BroadcastOracle pins the analyzer to the paper's Figure 3: the
// optimal broadcast on (P=8, L=6, o=2, g=4) takes 24 cycles, and the
// critical path is the chain the figure draws — three send overheads, two
// flights, two receive overheads and one gap wait, tiling the makespan as
// 10 cycles of o, 12 of L and 2 of g.
func TestFig3BroadcastOracle(t *testing.T) {
	rec, res := recordBroadcast(t, fig3, logp.Config{})
	if res.Time != 24 {
		t.Fatalf("simulated broadcast time %d, want 24 (Figure 3)", res.Time)
	}
	run := mustAnalyze(t, rec)
	checkMatchesMachine(t, run, res)

	cp := run.CriticalPath()
	if err := cp.Contiguous(); err != nil {
		t.Fatalf("critical path does not tile the makespan: %v\n%v", err, cp)
	}
	if len(cp.Spans) != 8 {
		t.Errorf("critical path has %d spans, want 8:\n%v", len(cp.Spans), cp)
	}
	count := map[trace.Kind]int{}
	for _, k := range cp.Kinds() {
		count[k]++
	}
	want := map[trace.Kind]int{
		trace.SendOverhead: 3,
		trace.Flight:       2,
		trace.RecvOverhead: 2,
		trace.GapWait:      1,
	}
	for k, n := range want {
		if count[k] != n {
			t.Errorf("critical path has %d %v spans, want %d:\n%v", count[k], k, n, cp)
		}
	}
	if first := cp.Spans[0]; first.Proc != 0 || first.Kind != trace.SendOverhead {
		t.Errorf("path starts with %v on proc %d, want the root's first send overhead", first.Kind, first.Proc)
	}
	if last := cp.Spans[len(cp.Spans)-1]; last.Kind != trace.RecvOverhead {
		t.Errorf("path ends with %v, want the last reception's overhead", last.Kind)
	}

	a := cp.Attribution()
	if a.Overhead != 10 || a.Latency != 12 || a.Gap != 2 {
		t.Errorf("attribution o=%d L=%d g=%d, want o=10 L=12 g=2 (%v)", a.Overhead, a.Latency, a.Gap, a)
	}
	if a.Compute != 0 || a.Stall != 0 || a.Idle != 0 {
		t.Errorf("attribution charges compute=%d stall=%d idle=%d on an idle-machine broadcast (%v)",
			a.Compute, a.Stall, a.Idle, a)
	}
}

// TestFig4SummationOracle: the optimal summation schedule keeps the root
// busy through its deadline, so the critical path is a chain with no idle
// or stall time and the computation dominates the accounting.
func TestFig4SummationOracle(t *testing.T) {
	params := core.Params{P: 8, L: 5, O: 2, G: 4}
	s, err := core.OptimalSummation(params, 28)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, s.TotalValues)
	for i := range values {
		values[i] = 1
	}
	dist, err := collective.DistributeInputs(s, values)
	if err != nil {
		t.Fatal(err)
	}
	rec := prof.NewRecorder()
	res := mustRun(t, logp.Config{Params: params, Profiler: rec}, func(p *logp.Proc) {
		collective.SumOptimal(p, s, 1, dist[p.ID()])
	})
	if res.Time != 28 {
		t.Fatalf("simulated summation time %d, want 28 (Figure 4)", res.Time)
	}
	run := mustAnalyze(t, rec)
	checkMatchesMachine(t, run, res)

	cp := run.CriticalPath()
	if err := cp.Contiguous(); err != nil {
		t.Fatalf("critical path does not tile the makespan: %v\n%v", err, cp)
	}
	a := cp.Attribution()
	if a.Idle != 0 || a.Stall != 0 {
		t.Errorf("optimal summation path has idle=%d stall=%d, want a fully busy chain (%v)", a.Idle, a.Stall, a)
	}
	if a.Compute == 0 || a.Overhead == 0 {
		t.Errorf("expected both computation and overhead on the summation path, got %v", a)
	}
	if sum := a.Compute + a.Overhead + a.Gap + a.Latency + a.Stall + a.Idle; sum != a.Makespan {
		t.Errorf("attribution components sum to %d, makespan %d", sum, a.Makespan)
	}
}

// TestAnalyzeReconstructsRun: replaying a recording under its own
// configuration (with recorded latencies) reproduces the machine run
// exactly, across jitter, skew, bulk transfers, coprocessors, barriers and
// both capacity regimes.
func TestAnalyzeReconstructsRun(t *testing.T) {
	base := core.Params{P: 6, L: 9, O: 2, G: 3}
	body := func(p *logp.Proc) {
		P := p.P()
		next := (p.ID() + 1) % P
		prev := (p.ID() + P - 1) % P
		p.Compute(int64(5 + 3*p.ID()))
		p.Send(next, 1, nil)
		p.SendBulk(next, 2, nil, 4)
		p.RecvTag(1)
		p.Compute(7)
		p.Recv()
		p.Barrier()
		p.Send(prev, 3, nil)
		p.Recv()
		p.Wait(3)
	}
	cases := []struct {
		name string
		cfg  logp.Config
	}{
		{"deterministic", logp.Config{Params: base}},
		{"latency-jitter", logp.Config{Params: base, LatencyJitter: 5, Seed: 7}},
		{"all-noise", logp.Config{Params: base, LatencyJitter: 4, ComputeJitter: 0.5, ProcSkew: 0.3, Seed: 11}},
		{"hold-capacity", logp.Config{Params: base, HoldCapacityUntilReceive: true}},
		{"coprocessor", logp.Config{Params: base, Coprocessor: true}},
		{"no-capacity", logp.Config{Params: base, DisableCapacity: true}},
		{"barrier-cost", logp.Config{Params: base, BarrierCost: 9}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := prof.NewRecorder()
			cfg := tc.cfg
			cfg.Profiler = rec
			res := mustRun(t, cfg, body)
			run := mustAnalyze(t, rec)
			checkMatchesMachine(t, run, res)
			cp := run.CriticalPath()
			if err := cp.Contiguous(); err != nil {
				t.Errorf("critical path does not tile the makespan: %v\n%v", err, cp)
			}
		})
	}
}

// TestAnalyzeReconstructsContendedRun drives the capacity constraint into
// stalls (two processors flooding one receiver) and checks both the exact
// reconstruction and that the stall shows up in the span DAG.
func TestAnalyzeReconstructsContendedRun(t *testing.T) {
	params := core.Params{P: 3, L: 12, O: 2, G: 6} // capacity ceil(12/6) = 2
	const msgs = 4
	body := func(p *logp.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 2*msgs; i++ {
				p.Recv()
			}
			return
		}
		for i := 0; i < msgs; i++ {
			p.Send(0, p.ID(), nil)
		}
	}
	rec := prof.NewRecorder()
	res := mustRun(t, logp.Config{Params: params, Profiler: rec}, body)
	if res.TotalStall() == 0 {
		t.Fatal("flood program did not stall; the test needs contention")
	}
	run := mustAnalyze(t, rec)
	checkMatchesMachine(t, run, res)
	var stalled int64
	for _, s := range run.Spans {
		if s.Kind == trace.Stall {
			stalled += s.End - s.Start
		}
	}
	if stalled == 0 {
		t.Error("replay produced no stall spans for a stalling run")
	}
	if err := run.CriticalPath().Contiguous(); err != nil {
		t.Errorf("critical path does not tile the makespan: %v", err)
	}
}

// TestRecorderReuse: Begin resets the recorder, so one recorder can profile
// sequential runs and the analysis reflects the latest.
func TestRecorderReuse(t *testing.T) {
	rec := prof.NewRecorder()
	small := core.Params{P: 2, L: 3, O: 1, G: 2}
	mustRun(t, logp.Config{Params: fig3, Profiler: rec}, func(p *logp.Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, nil)
		} else if p.ID() == 1 {
			p.Recv()
		}
	})
	res := mustRun(t, logp.Config{Params: small, Profiler: rec}, func(p *logp.Proc) {
		if p.ID() == 0 {
			p.Send(1, 1, nil)
		} else {
			p.Recv()
		}
	})
	if rec.Info().Params != small {
		t.Fatalf("recorder info %v after second run, want %v", rec.Info().Params, small)
	}
	if rec.Messages() != 1 {
		t.Fatalf("recorder has %d messages after reuse, want 1", rec.Messages())
	}
	run := mustAnalyze(t, rec)
	checkMatchesMachine(t, run, res)
}
