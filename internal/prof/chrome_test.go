package prof_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestChromeTraceGolden pins the Chrome trace_event export byte-for-byte:
// the optimal broadcast on a small machine, compared against
// testdata/broadcast_p4.trace.json (regenerate with go test -run Golden
// -update after intentional format changes).
func TestChromeTraceGolden(t *testing.T) {
	params := core.Params{P: 4, L: 4, O: 1, G: 2}
	rec, _ := recordBroadcast(t, params, logp.Config{})
	run := mustAnalyze(t, rec)

	var buf bytes.Buffer
	if err := run.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "broadcast_p4.trace.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to generate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("Chrome trace differs from %s (run with -update after intentional changes)\ngot:\n%s", golden, buf.String())
	}
}

// TestChromeTraceWellFormed checks structural invariants of the export on a
// busier run: valid JSON, all duration events within [0, makespan], every
// thread id within [0, P] (P is the network lane), and one flow start/finish
// pair per received message.
func TestChromeTraceWellFormed(t *testing.T) {
	rec, _ := recordBroadcast(t, fig3, logp.Config{LatencyJitter: 2, Seed: 3})
	run := mustAnalyze(t, rec)

	var buf bytes.Buffer
	if err := run.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Ts   int64  `json:"ts"`
			Dur  int64  `json:"dur"`
			Tid  int    `json:"tid"`
			ID   string `json:"id"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tr); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var flows, spans int
	for _, e := range tr.TraceEvents {
		if e.Tid < 0 || e.Tid > run.P {
			t.Errorf("event %q on thread %d, machine has threads 0..%d", e.Name, e.Tid, run.P)
		}
		switch e.Ph {
		case "X":
			spans++
			if e.Ts < 0 || e.Ts+e.Dur > run.Makespan {
				t.Errorf("span %q [%d,%d) outside the run [0,%d)", e.Name, e.Ts, e.Ts+e.Dur, run.Makespan)
			}
		case "s":
			flows++
		}
	}
	if spans == 0 {
		t.Error("export contains no duration events")
	}
	if flows != len(run.Msgs) {
		t.Errorf("%d flow starts for %d messages", flows, len(run.Msgs))
	}
}
