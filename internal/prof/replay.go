package prof

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/trace"
)

// Config selects the machine parameters a recorded run is re-costed under.
// The zero value is not useful; start from Recorder.BaseConfig and override
// the parameters being swept.
type Config struct {
	Params                   core.Params
	Coprocessor              bool
	DisableCapacity          bool
	HoldCapacityUntilReceive bool
	BarrierCost              int64

	// UseRecordedLatency charges each message its actually drawn latency
	// instead of Params.L, reproducing a jittered recording exactly. What-if
	// replays leave it false so every message flies in exactly L.
	UseRecordedLatency bool
}

// BaseConfig returns the replay configuration matching the recorded machine,
// with UseRecordedLatency set: replaying it reconstructs the recorded run
// exactly (see Analyze).
func (r *Recorder) BaseConfig() Config {
	i := r.info
	return Config{
		Params:                   i.Params,
		Coprocessor:              i.Coprocessor,
		DisableCapacity:          i.DisableCapacity,
		HoldCapacityUntilReceive: i.HoldCapacityUntilReceive,
		BarrierCost:              i.BarrierCost,
		UseRecordedLatency:       true,
	}
}

// Span is one contiguous interval of the replayed run: processor activity
// (compute, overhead, stall, typed waits) or a message's network flight
// (Proc == -1). Pred indexes the span whose end determined this span's
// start — the binding constraint — so walking Pred links from the last span
// tiles the makespan exactly; -1 marks a chain that starts at time zero.
type Span struct {
	Proc  int // processor, or -1 for a network flight
	Kind  trace.Kind
	Start int64
	End   int64
	Pred  int // binding predecessor span index, -1 at a chain head
	Msg   int // message index for Flight spans, -1 otherwise
}

// MsgInfo summarizes one replayed message, with span indices for rendering.
type MsgInfo struct {
	From, To, Tag, Words int
	Injected             int64 // last word entered the network
	Arrived              int64 // complete at the destination module
	RecvStart, RecvEnd   int64 // reception overhead interval at the receiver
	FlightSpan           int
	RecvSpan             int  // -1 if the program ended without receiving it
	Dropped              bool // lost by the fault layer at arrival
	Dup                  bool // network-made duplicate copy (fault injection)
}

// Run is a replayed (re-costed) execution of a recorded DAG.
type Run struct {
	Cfg      Config
	P        int
	Makespan int64
	Finish   []int64 // per-processor completion times
	Spans    []Span
	Msgs     []MsgInfo

	lastSpan []int // per-processor last chain span, for CriticalPath
}

// Analyze replays the recording under the recorded configuration (with
// recorded latencies), reconstructing the run exactly; the result carries
// the span DAG for critical-path analysis and trace export.
func (r *Recorder) Analyze() (*Run, error) { return r.Replay(r.BaseConfig()) }

// Replay re-costs the recorded DAG under cfg without re-running the program:
// a discrete-event pass over the per-processor operation logs applying the
// machine's exact cost rules (gap spacing, capacity stalls, flight latency,
// barrier release). For programs whose operation sequence does not depend on
// message timing, the predicted makespan equals a fresh simulation's.
func (r *Recorder) Replay(cfg Config) (*Run, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.Params.P != r.info.Params.P {
		return nil, fmt.Errorf("prof: replay with P=%d of a recording made with P=%d", cfg.Params.P, r.info.Params.P)
	}
	rp := newReplayer(r, cfg)
	if err := rp.run(); err != nil {
		return nil, err
	}
	return rp.result(), nil
}

// --- event queue ---

type evKind uint8

const (
	evStep     evKind = iota // advance a processor through its next ops
	evAcquire                // a send reaches its capacity-acquire point
	evDelivery               // a message arrives at its destination module
	evSettle                 // a held capacity slot is freed at reception
)

type event struct {
	t    int64
	seq  int64 // FIFO tie-break, mirroring the kernel's same-time ordering
	kind evKind
	proc int32
	msg  int32
}

type eventHeap struct {
	h   []event
	seq int64
}

func (q *eventHeap) push(t int64, kind evKind, proc, msg int32) {
	q.seq++
	e := event{t: t, seq: q.seq, kind: kind, proc: proc, msg: msg}
	q.h = append(q.h, e)
	i := len(q.h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !less(q.h[i], q.h[p]) {
			break
		}
		q.h[i], q.h[p] = q.h[p], q.h[i]
		i = p
	}
}

func (q *eventHeap) pop() event {
	top := q.h[0]
	n := len(q.h) - 1
	q.h[0] = q.h[n]
	q.h = q.h[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && less(q.h[l], q.h[m]) {
			m = l
		}
		if r < n && less(q.h[r], q.h[m]) {
			m = r
		}
		if m == i {
			break
		}
		q.h[i], q.h[m] = q.h[m], q.h[i]
		i = m
	}
	return top
}

func less(a, b event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// --- replay state ---

type waitState uint8

const (
	wNone    waitState = iota
	wRecv              // blocked for a matching message arrival
	wCapOut            // queued on the sender-side capacity semaphore
	wCapIn             // holds the out slot, queued on the receiver-side one
	wBarrier           // arrived at the barrier, waiting for release
)

type rmsg struct {
	from, to, tag, words int
	lat                  int64
	arrival              int64
	flightSpan           int
	settled              bool
	dropped              bool // discarded at arrival, capacity settled there
	dup                  bool // capacity-exempt network copy
}

type rproc struct {
	id        int
	ops       []Op
	pc        int
	t         int64
	nextSend  int64
	nextRecv  int64
	chain     int     // last span on this processor's causal chain
	inbox     []int32 // arrived, unconsumed message indices in arrival order
	waiting   waitState
	waitStart int64
	lastMsg   int32 // message index of this processor's latest send, for OpDup
	failed    bool  // fail-stopped in the recording: late arrivals are discarded
	// pending send context while acquiring capacity
	sendInit int64 // initiation time
	sendEng  int64 // end of the engaged (overhead) stretch
}

type rsem struct {
	capacity int
	used     int
	queue    []*rproc
}

func (s *rsem) tryAcquire() bool {
	if s.used >= s.capacity {
		return false
	}
	s.used++
	return true
}

type replayer struct {
	rec   *Recorder
	cfg   Config
	procs []*rproc
	q     eventHeap
	spans []Span
	msgs  []rmsg
	minfo []MsgInfo
	// capacity semaphores, nil when disabled
	outCap, inCap []*rsem
	// hardware barrier
	barArrived []*rproc
	barMax     int64
}

func newReplayer(r *Recorder, cfg Config) *replayer {
	P := cfg.Params.P
	rp := &replayer{rec: r, cfg: cfg}
	rp.procs = make([]*rproc, P)
	for i := 0; i < P; i++ {
		rp.procs[i] = &rproc{id: i, ops: r.ops[i], chain: -1, lastMsg: -1}
		if r.failed != nil {
			rp.procs[i].failed = r.failed[i]
		}
		rp.q.push(0, evStep, int32(i), 0)
	}
	if !cfg.DisableCapacity {
		units := cfg.Params.Capacity()
		rp.outCap = make([]*rsem, P)
		rp.inCap = make([]*rsem, P)
		for i := 0; i < P; i++ {
			rp.outCap[i] = &rsem{capacity: units}
			rp.inCap[i] = &rsem{capacity: units}
		}
	}
	return rp
}

// addSpan appends a span and returns its index; zero-length spans are
// dropped (returning the predecessor) so chains stay contiguous.
func (rp *replayer) addSpan(proc int, kind trace.Kind, start, end int64, pred, msg int) int {
	if end <= start {
		return pred
	}
	rp.spans = append(rp.spans, Span{Proc: proc, Kind: kind, Start: start, End: end, Pred: pred, Msg: msg})
	return len(rp.spans) - 1
}

func (rp *replayer) run() error {
	for len(rp.q.h) > 0 {
		e := rp.q.pop()
		switch e.kind {
		case evStep:
			rp.step(rp.procs[e.proc], e.t)
		case evAcquire:
			rp.acquire(rp.procs[e.proc], e.t)
		case evDelivery:
			rp.deliver(int(e.msg), e.t)
		case evSettle:
			rp.settle(int(e.msg), e.t)
		}
	}
	for _, p := range rp.procs {
		if p.pc < len(p.ops) {
			return fmt.Errorf("prof: replay deadlock: proc %d blocked at op %d/%d (%v)",
				p.id, p.pc, len(p.ops), p.ops[p.pc].Kind)
		}
	}
	return nil
}

// step advances a processor from the current event time: local operations
// run inline, operations that touch shared state (sends acquiring capacity,
// receptions, barriers) are handled only when the global clock has caught up
// with the processor's, preserving the machine's arbitration order.
func (rp *replayer) step(p *rproc, now int64) {
	for p.pc < len(p.ops) {
		op := &p.ops[p.pc]
		switch op.Kind {
		case OpCompute:
			p.chain = rp.addSpan(p.id, trace.Compute, p.t, p.t+op.Arg, p.chain, -1)
			p.t += op.Arg
			p.pc++
		case OpWait:
			p.chain = rp.addSpan(p.id, trace.Idle, p.t, p.t+op.Arg, p.chain, -1)
			p.t += op.Arg
			p.pc++
		case OpWaitUntil:
			if op.Arg > p.t {
				p.chain = rp.addSpan(p.id, trace.Idle, p.t, op.Arg, p.chain, -1)
				p.t = op.Arg
			}
			p.pc++
		case OpDup:
			rp.startDup(p, op)
			p.pc++
		case OpSend, OpSendBulk:
			if p.t > now {
				rp.q.push(p.t, evStep, int32(p.id), 0)
				return
			}
			rp.startSend(p, op)
			return
		case OpRecv:
			if p.t > now {
				rp.q.push(p.t, evStep, int32(p.id), 0)
				return
			}
			if !rp.tryRecv(p, op, now) {
				p.waiting = wRecv
				p.waitStart = now
				return
			}
		case OpBarrier:
			if p.t > now {
				rp.q.push(p.t, evStep, int32(p.id), 0)
				return
			}
			if !rp.barrier(p, now) {
				return
			}
		}
	}
}

// startSend charges the gap wait and the engaged overhead stretch, then
// hands off to capacity acquisition at the end of the overhead (the
// machine's acquire point).
func (rp *replayer) startSend(p *rproc, op *Op) {
	prm := &rp.cfg.Params
	init := p.t
	if p.nextSend > init {
		init = p.nextSend
	}
	engaged := prm.O
	if op.Kind == OpSendBulk && !rp.cfg.Coprocessor {
		engaged = int64(op.Words-1)*prm.SendInterval() + prm.O
	}
	p.chain = rp.addSpan(p.id, trace.GapWait, p.t, init, p.chain, -1)
	p.chain = rp.addSpan(p.id, trace.SendOverhead, init, init+engaged, p.chain, -1)
	p.sendInit = init
	p.sendEng = init + engaged
	p.t = p.sendEng
	// nextSend before capacity, exactly as the machine orders it.
	if op.Kind == OpSendBulk {
		if rp.cfg.Coprocessor {
			p.nextSend = init + prm.O + int64(op.Words)*prm.G
		} else {
			p.nextSend = init + int64(op.Words)*prm.SendInterval()
		}
	} else {
		p.nextSend = init + prm.SendInterval()
	}
	if rp.outCap == nil {
		rp.finishSend(p, p.sendEng)
		return
	}
	rp.q.push(p.sendEng, evAcquire, int32(p.id), 0)
}

// acquire is the capacity-acquire point of a pending send: take the
// sender-side then receiver-side slot, queueing FIFO on whichever is full.
func (rp *replayer) acquire(p *rproc, now int64) {
	op := &p.ops[p.pc]
	out := rp.outCap[p.id]
	if !out.tryAcquire() {
		p.waiting = wCapOut
		out.queue = append(out.queue, p)
		return
	}
	in := rp.inCap[op.To]
	if !in.tryAcquire() {
		p.waiting = wCapIn
		in.queue = append(in.queue, p)
		return
	}
	rp.finishSend(p, now)
}

// release frees one slot and grants it to the longest-queued sender, if any.
func (rp *replayer) release(s *rsem, tr int64) {
	if s.used == 0 {
		panic("prof: replay capacity release without acquire")
	}
	s.used--
	if len(s.queue) == 0 || s.used >= s.capacity {
		return
	}
	p := s.queue[0]
	copy(s.queue, s.queue[1:])
	s.queue = s.queue[:len(s.queue)-1]
	s.used++
	if p.waiting == wCapOut {
		// Holds the out slot now; the in slot may still be contended.
		op := &p.ops[p.pc]
		in := rp.inCap[op.To]
		if !in.tryAcquire() {
			p.waiting = wCapIn
			in.queue = append(in.queue, p)
			return
		}
	}
	rp.finishSend(p, tr)
}

// finishSend completes a send whose capacity slots are held at time tInj:
// charge any stall, put the message in flight, and resume the processor.
func (rp *replayer) finishSend(p *rproc, tInj int64) {
	op := &p.ops[p.pc]
	prm := &rp.cfg.Params
	p.waiting = wNone
	p.chain = rp.addSpan(p.id, trace.Stall, p.sendEng, tInj, p.chain, -1)

	lat := prm.L
	if rp.cfg.UseRecordedLatency {
		lat = op.Arg
	}
	var arrival int64
	flightPred := p.chain
	if op.Kind == OpSendBulk {
		lastInj := int64(op.Words-1)*prm.SendInterval() + prm.O
		if rp.cfg.Coprocessor {
			lastInj = prm.O + int64(op.Words-1)*prm.G
			// The DMA device streams the train at the gap rate while the
			// processor is free; charge the stream to g on the causal chain.
			flightPred = rp.addSpan(p.id, trace.GapWait, p.sendEng, p.sendInit+lastInj, p.chain, -1)
		}
		arrival = p.sendInit + lastInj + lat
		if arrival < tInj {
			arrival = tInj // the machine clamps the flight to the injection
		}
	} else {
		arrival = tInj + lat
		// A stall may not defeat the gap: consecutive injections stay g apart.
		if t := tInj + prm.G - prm.O; t > p.nextSend {
			p.nextSend = t
		}
	}

	mi := len(rp.msgs)
	flightStart := arrival - lat
	if fp := flightPred; fp >= 0 && rp.spans[fp].End > flightStart {
		flightStart = rp.spans[fp].End
	}
	fs := len(rp.spans) // flights are kept even when zero-length, for message mapping
	rp.spans = append(rp.spans, Span{Proc: -1, Kind: trace.Flight, Start: flightStart, End: arrival, Pred: flightPred, Msg: mi})
	rp.msgs = append(rp.msgs, rmsg{
		from: p.id, to: int(op.To), tag: int(op.Tag), words: int(op.Words),
		lat: lat, arrival: arrival, flightSpan: fs, dropped: op.Dropped,
	})
	rp.minfo = append(rp.minfo, MsgInfo{
		From: p.id, To: int(op.To), Tag: int(op.Tag), Words: int(op.Words),
		Injected: tInj, Arrived: arrival, FlightSpan: fs, RecvSpan: -1,
		Dropped: op.Dropped,
	})
	rp.q.push(arrival, evDelivery, 0, int32(mi))
	p.lastMsg = int32(mi)

	p.t = tInj
	p.pc++
	rp.q.push(p.t, evStep, int32(p.id), 0)
}

// startDup re-delivers this processor's latest sent message as a
// network-made duplicate: no processor time, no capacity slot, its own
// latency (op.Arg) measured from the original's injection into the network.
func (rp *replayer) startDup(p *rproc, op *Op) {
	orig := &rp.msgs[p.lastMsg]
	arrival := orig.arrival - orig.lat + op.Arg
	if arrival <= orig.arrival && !rp.cfg.UseRecordedLatency {
		arrival = orig.arrival + 1 // the machine delivers copies strictly later
	}
	mi := len(rp.msgs)
	flightStart := arrival - op.Arg
	fs := len(rp.spans)
	rp.spans = append(rp.spans, Span{Proc: -1, Kind: trace.Flight, Start: flightStart, End: arrival, Pred: orig.flightSpan, Msg: mi})
	rp.msgs = append(rp.msgs, rmsg{
		from: p.id, to: int(op.To), tag: int(op.Tag), words: int(op.Words),
		lat: op.Arg, arrival: arrival, flightSpan: fs,
		settled: true, dup: true, // capacity-exempt: nothing to settle
	})
	rp.minfo = append(rp.minfo, MsgInfo{
		From: p.id, To: int(op.To), Tag: int(op.Tag), Words: int(op.Words),
		Injected: flightStart, Arrived: arrival, FlightSpan: fs, RecvSpan: -1,
		Dup: true,
	})
	rp.q.push(arrival, evDelivery, 0, int32(mi))
}

// deliver completes a message's flight: settle capacity (unless held until
// reception), enqueue at the destination, and wake a blocked receiver. A
// message the fault layer dropped — or one addressed to a fail-stopped
// processor — is discarded here, settling its capacity unconditionally (the
// network freed its buffer), exactly as the machine does.
func (rp *replayer) deliver(mi int, now int64) {
	m := &rp.msgs[mi]
	dst := rp.procs[m.to]
	// A fail-stopped destination discards arrivals once past its last
	// recorded op (its death point); earlier arrivals must still queue so
	// the receives it did complete before dying find their messages.
	if m.dropped || (dst.failed && dst.pc >= len(dst.ops) && dst.waiting == wNone) {
		rp.settle(mi, now)
		return
	}
	if !rp.cfg.HoldCapacityUntilReceive {
		rp.settle(mi, now)
	}
	if dst.waiting == wRecv {
		op := &dst.ops[dst.pc]
		if op.AnyTag || int(op.Tag) == m.tag {
			// Consume directly, bypassing the inbox. The wait is explained by
			// the message's flight, so the wait span preds the flight and the
			// chain continues from the flight itself.
			dst.waiting = wNone
			rp.addSpan(dst.id, trace.MsgWait, dst.waitStart, now, m.flightSpan, -1)
			dst.chain = m.flightSpan
			rp.consume(dst, op, mi, now)
			rp.q.push(dst.t, evStep, int32(dst.id), 0)
			return
		}
	}
	dst.inbox = append(dst.inbox, int32(mi))
}

// settle frees a message's capacity slots, waking stalled senders.
func (rp *replayer) settle(mi int, now int64) {
	m := &rp.msgs[mi]
	if m.settled || rp.outCap == nil {
		m.settled = true
		return
	}
	m.settled = true
	rp.release(rp.outCap[m.from], now)
	rp.release(rp.inCap[m.to], now)
}

// tryRecv consumes the earliest-arrived matching message, if one has
// arrived, applying the machine's matching rule (arrival order, optionally
// filtered by tag).
func (rp *replayer) tryRecv(p *rproc, op *Op, now int64) bool {
	for i, mi := range p.inbox {
		m := &rp.msgs[mi]
		if !op.AnyTag && int(op.Tag) != m.tag {
			continue
		}
		copy(p.inbox[i:], p.inbox[i+1:])
		p.inbox = p.inbox[:len(p.inbox)-1]
		// The message was already here: the processor, not the network, is
		// the binding constraint, so the chain stays in program order.
		rp.consume(p, op, int(mi), now)
		return true
	}
	return false
}

// consume charges the reception of message mi starting no earlier than ta
// (the later of the processor's readiness and the arrival).
func (rp *replayer) consume(p *rproc, op *Op, mi int, ta int64) {
	prm := &rp.cfg.Params
	m := &rp.msgs[mi]
	start := ta
	if p.nextRecv > start {
		start = p.nextRecv
	}
	cost := prm.O
	if !rp.cfg.Coprocessor && m.words > 1 {
		cost = int64(m.words) * prm.O
	}
	p.chain = rp.addSpan(p.id, trace.GapWait, ta, start, p.chain, -1)
	rs := rp.addSpan(p.id, trace.RecvOverhead, start, start+cost, p.chain, mi)
	p.chain = rs
	p.nextRecv = start + prm.SendInterval()
	if t := start + cost; t > p.nextRecv {
		p.nextRecv = t
	}
	p.t = start + cost
	p.pc++
	rp.minfo[mi].RecvStart = start
	rp.minfo[mi].RecvEnd = start + cost
	rp.minfo[mi].RecvSpan = rs
	if rp.cfg.HoldCapacityUntilReceive {
		rp.q.push(p.t, evSettle, 0, int32(mi))
	}
}

// barrier registers an arrival; the last arriver releases everyone
// BarrierCost cycles later. Reports whether the processor may continue
// (only the last arriver continues inline).
func (rp *replayer) barrier(p *rproc, now int64) bool {
	if now > rp.barMax {
		rp.barMax = now
	}
	if len(rp.barArrived) < len(rp.procs)-1 {
		rp.barArrived = append(rp.barArrived, p)
		p.waiting = wBarrier
		p.waitStart = now
		return false
	}
	release := rp.barMax + rp.cfg.BarrierCost
	for _, w := range rp.barArrived {
		w.chain = rp.addSpan(w.id, trace.BarrierWait, w.waitStart, release, w.chain, -1)
		w.waiting = wNone
		w.t = release
		w.pc++
		rp.q.push(release, evStep, int32(w.id), 0)
	}
	rp.barArrived = rp.barArrived[:0]
	rp.barMax = 0
	p.chain = rp.addSpan(p.id, trace.BarrierWait, now, release, p.chain, -1)
	p.t = release
	p.pc++
	return true
}

func (rp *replayer) result() *Run {
	run := &Run{
		Cfg:      rp.cfg,
		P:        len(rp.procs),
		Finish:   make([]int64, len(rp.procs)),
		Spans:    rp.spans,
		Msgs:     rp.minfo,
		lastSpan: make([]int, len(rp.procs)),
	}
	for i, p := range rp.procs {
		run.Finish[i] = p.t
		run.lastSpan[i] = p.chain
		if p.t > run.Makespan {
			run.Makespan = p.t
		}
	}
	return run
}
