package prof

import (
	"fmt"
	"strings"

	"github.com/logp-model/logp/internal/trace"
)

// CriticalPath is the longest weighted chain of spans ending at the last
// event of a run: the sequence of activities that determined the makespan.
// Its spans tile [0, Makespan) exactly — each span's start is its
// predecessor's end — so summing them by kind partitions the completion
// time among the model parameters, the accounting the paper performs by
// hand for the optimal broadcast and summation schedules.
type CriticalPath struct {
	Makespan int64
	Spans    []Span // in time order, first starts at 0, last ends at Makespan
}

// CriticalPath extracts the critical path: from the last span of the
// slowest processor (ties to the lowest processor number), follow each
// span's binding predecessor back to time zero.
func (run *Run) CriticalPath() CriticalPath {
	cp := CriticalPath{Makespan: run.Makespan}
	last := -1
	for p := 0; p < run.P; p++ {
		s := run.lastSpan[p]
		if s < 0 {
			continue
		}
		if last < 0 || run.Spans[s].End > run.Spans[last].End {
			last = s
		}
	}
	for s := last; s >= 0; s = run.Spans[s].Pred {
		cp.Spans = append(cp.Spans, run.Spans[s])
	}
	for i, j := 0, len(cp.Spans)-1; i < j; i, j = i+1, j-1 {
		cp.Spans[i], cp.Spans[j] = cp.Spans[j], cp.Spans[i]
	}
	return cp
}

// Kinds returns the path's span kinds in time order, a compact signature
// for tests and summaries.
func (cp CriticalPath) Kinds() []trace.Kind {
	out := make([]trace.Kind, len(cp.Spans))
	for i, s := range cp.Spans {
		out[i] = s.Kind
	}
	return out
}

// Attribution partitions a critical path's cycles among the LogP model
// parameters: every cycle of the makespan is charged to local computation,
// send/receive overhead o, gap g, network latency L, a capacity stall, or
// other idling (explicit waits and barrier time).
type Attribution struct {
	Makespan int64
	Compute  int64 // local work
	Overhead int64 // send and receive overhead, the o parameter
	Gap      int64 // gap waits (and DMA streaming), the g parameter
	Latency  int64 // network flights, the L parameter
	Stall    int64 // capacity-constraint stalls
	Idle     int64 // explicit waits, barrier waits, untyped idling
}

// Attribution sums the path spans by kind. If the path does not reach back
// to time zero (a chain head after 0, which only synthetic recordings can
// produce), the uncovered prefix counts as Idle.
func (cp CriticalPath) Attribution() Attribution {
	a := Attribution{Makespan: cp.Makespan}
	if len(cp.Spans) > 0 {
		a.Idle += cp.Spans[0].Start
	}
	for _, s := range cp.Spans {
		d := s.End - s.Start
		switch s.Kind {
		case trace.Compute:
			a.Compute += d
		case trace.SendOverhead, trace.RecvOverhead:
			a.Overhead += d
		case trace.GapWait:
			a.Gap += d
		case trace.Flight:
			a.Latency += d
		case trace.Stall:
			a.Stall += d
		default:
			a.Idle += d
		}
	}
	return a
}

// Fraction returns cycles/Makespan, guarding the empty run.
func (a Attribution) Fraction(cycles int64) float64 {
	if a.Makespan == 0 {
		return 0
	}
	return float64(cycles) / float64(a.Makespan)
}

// String renders the attribution as one line of fractions.
func (a Attribution) String() string {
	return fmt.Sprintf("makespan %d = compute %.0f%% + o %.0f%% + g %.0f%% + L %.0f%% + stall %.0f%% + idle %.0f%%",
		a.Makespan,
		100*a.Fraction(a.Compute), 100*a.Fraction(a.Overhead), 100*a.Fraction(a.Gap),
		100*a.Fraction(a.Latency), 100*a.Fraction(a.Stall), 100*a.Fraction(a.Idle))
}

// String renders the path as an ordered list of spans, one per line:
//
//	[    0,    2) P0    send-o
//	[    2,    8) net   flight   (P0 -> P1)
//	[    8,   10) P1    recv-o
func (cp CriticalPath) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "critical path, %d spans over %d cycles:\n", len(cp.Spans), cp.Makespan)
	for _, s := range cp.Spans {
		who := "net  "
		if s.Proc >= 0 {
			who = fmt.Sprintf("P%-4d", s.Proc)
		}
		fmt.Fprintf(&b, "  [%6d,%6d) %s %s", s.Start, s.End, who, s.Kind)
		if s.Kind == trace.Flight && s.Msg >= 0 {
			fmt.Fprintf(&b, " (msg %d)", s.Msg)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Contiguous verifies the tiling invariant: the first span starts at zero,
// each span starts where its predecessor ends, and the last ends at the
// makespan. It returns an error describing the first violation, and is used
// by tests as a structural oracle.
func (cp CriticalPath) Contiguous() error {
	if len(cp.Spans) == 0 {
		if cp.Makespan != 0 {
			return fmt.Errorf("prof: empty path for makespan %d", cp.Makespan)
		}
		return nil
	}
	if cp.Spans[0].Start != 0 {
		return fmt.Errorf("prof: path starts at %d, not 0", cp.Spans[0].Start)
	}
	for i := 1; i < len(cp.Spans); i++ {
		if cp.Spans[i].Start != cp.Spans[i-1].End {
			return fmt.Errorf("prof: path gap between span %d (ends %d) and span %d (starts %d)",
				i-1, cp.Spans[i-1].End, i, cp.Spans[i].Start)
		}
	}
	if end := cp.Spans[len(cp.Spans)-1].End; end != cp.Makespan {
		return fmt.Errorf("prof: path ends at %d, makespan %d", end, cp.Makespan)
	}
	return nil
}
