package prof_test

import (
	"fmt"
	"math"
	"testing"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/prof"
)

// whatIf replays rec under alt parameters (ideal latency L, as a what-if
// sweep would) and returns the predicted run.
func whatIf(t *testing.T, rec *prof.Recorder, alt core.Params) *prof.Run {
	t.Helper()
	cfg := rec.BaseConfig()
	cfg.Params = alt
	cfg.UseRecordedLatency = false
	run, err := rec.Replay(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return run
}

// altParams are the what-if machines the exactness tests sweep: latency,
// overhead and gap each move both ways, including a capacity change
// (ceil(L/g) of 1, 2, 3 and 10 across the set).
func altParams(P int) []core.Params {
	return []core.Params{
		{P: P, L: 12, O: 2, G: 4},
		{P: P, L: 6, O: 1, G: 5},
		{P: P, L: 3, O: 4, G: 4},
		{P: P, L: 20, O: 3, G: 2},
		{P: P, L: 2, O: 2, G: 6},
	}
}

// TestWhatIfBroadcastExact: for the dependence-stable broadcast program,
// replaying the recorded DAG under altered parameters predicts the fresh
// simulation's makespan and per-processor finish times exactly.
func TestWhatIfBroadcastExact(t *testing.T) {
	s, err := core.OptimalBroadcast(fig3, 0)
	if err != nil {
		t.Fatal(err)
	}
	body := func(p *logp.Proc) {
		collective.Broadcast(p, s, 1, "datum")
	}
	rec := prof.NewRecorder()
	mustRun(t, logp.Config{Params: fig3, Profiler: rec}, body)

	for _, alt := range altParams(fig3.P) {
		t.Run(alt.String(), func(t *testing.T) {
			pred := whatIf(t, rec, alt)
			fresh := mustRun(t, logp.Config{Params: alt}, body)
			checkMatchesMachine(t, pred, fresh)
			if err := pred.CriticalPath().Contiguous(); err != nil {
				t.Errorf("critical path does not tile the makespan: %v", err)
			}
		})
	}
}

// TestWhatIfSummationExact: same exactness for the optimal summation
// schedule, whose reception pattern differs qualitatively from the
// broadcast (the root interleaves computation with receptions).
func TestWhatIfSummationExact(t *testing.T) {
	params := core.Params{P: 8, L: 5, O: 2, G: 4}
	s, err := core.OptimalSummation(params, 28)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, s.TotalValues)
	for i := range values {
		values[i] = 1
	}
	dist, err := collective.DistributeInputs(s, values)
	if err != nil {
		t.Fatal(err)
	}
	body := func(p *logp.Proc) {
		collective.SumOptimal(p, s, 1, dist[p.ID()])
	}
	rec := prof.NewRecorder()
	mustRun(t, logp.Config{Params: params, Profiler: rec}, body)

	for _, alt := range altParams(params.P) {
		t.Run(alt.String(), func(t *testing.T) {
			pred := whatIf(t, rec, alt)
			fresh := mustRun(t, logp.Config{Params: alt}, body)
			checkMatchesMachine(t, pred, fresh)
		})
	}
}

// TestWhatIfConfigToggles: replay also predicts configuration what-ifs —
// removing the capacity constraint and holding slots until reception —
// exactly, for a program with enough contention that they matter.
func TestWhatIfConfigToggles(t *testing.T) {
	params := core.Params{P: 4, L: 12, O: 2, G: 6}
	const msgs = 3
	body := func(p *logp.Proc) {
		if p.ID() == 0 {
			for i := 0; i < 3*msgs; i++ {
				p.Recv()
			}
			return
		}
		for i := 0; i < msgs; i++ {
			p.Send(0, p.ID(), nil)
		}
	}
	rec := prof.NewRecorder()
	mustRun(t, logp.Config{Params: params, Profiler: rec}, body)

	toggles := []struct {
		name string
		mut  func(*prof.Config, *logp.Config)
	}{
		{"disable-capacity", func(rc *prof.Config, lc *logp.Config) {
			rc.DisableCapacity = true
			lc.DisableCapacity = true
		}},
		{"hold-capacity", func(rc *prof.Config, lc *logp.Config) {
			rc.HoldCapacityUntilReceive = true
			lc.HoldCapacityUntilReceive = true
		}},
	}
	for _, tc := range toggles {
		t.Run(tc.name, func(t *testing.T) {
			rc := rec.BaseConfig()
			rc.UseRecordedLatency = false
			lc := logp.Config{Params: params}
			tc.mut(&rc, &lc)
			pred, err := rec.Replay(rc)
			if err != nil {
				t.Fatal(err)
			}
			fresh := mustRun(t, lc, body)
			// Under heavy contention the machine's capacity arbitration is
			// only weakly FIFO (a sender already scheduled at the release
			// instant can barge ahead of the queue), while replay grants
			// strictly FIFO, so individual senders' finish times can permute;
			// the makespan — set by the receiver — must still match exactly.
			if pred.Makespan != fresh.Time {
				t.Errorf("replay makespan %d, machine ran in %d", pred.Makespan, fresh.Time)
			}
		})
	}
}

// TestWhatIfBulkExact: bulk trains under both transfer regimes (PIO and
// DMA coprocessor) replay exactly, including the regime cross-over — a
// recording made without a coprocessor re-costed as if one were fitted.
func TestWhatIfBulkExact(t *testing.T) {
	params := core.Params{P: 4, L: 8, O: 2, G: 3}
	const words = 6
	body := func(p *logp.Proc) {
		next := (p.ID() + 1) % p.P()
		p.SendBulk(next, 1, nil, words)
		p.Compute(10)
		p.Recv()
	}
	for _, coproc := range []bool{false, true} {
		rec := prof.NewRecorder()
		mustRun(t, logp.Config{Params: params, Coprocessor: coproc, Profiler: rec}, body)
		for _, altCoproc := range []bool{false, true} {
			for _, alt := range []core.Params{params, {P: 4, L: 16, O: 3, G: 5}} {
				name := fmt.Sprintf("rec-dma=%v/replay-dma=%v/%v", coproc, altCoproc, alt)
				t.Run(name, func(t *testing.T) {
					rc := rec.BaseConfig()
					rc.Params = alt
					rc.Coprocessor = altCoproc
					rc.UseRecordedLatency = false
					pred, err := rec.Replay(rc)
					if err != nil {
						t.Fatal(err)
					}
					fresh := mustRun(t, logp.Config{Params: alt, Coprocessor: altCoproc}, body)
					checkMatchesMachine(t, pred, fresh)
				})
			}
		}
	}
}

// TestWhatIfAllToAllTolerance: the all-to-all exchange polls HasMessage, so
// its operation sequence depends on message timing and replay is only an
// approximation (the recorded interleaving stays a valid execution, but the
// live program would adapt its send/receive order — replay errs pessimistic).
// For moderate parameter sweeps of the FFT-style staggered exchange of
// Section 4.1.2 the prediction must stay within 15% of a fresh simulation;
// sweeps that change the capacity ceil(L/g) across a threshold diverge more
// (measured up to ~60%) and are out of scope here — see DESIGN.md.
func TestWhatIfAllToAllTolerance(t *testing.T) {
	params := core.Params{P: 8, L: 6, O: 2, G: 4}
	const perPair = 4
	body := func(p *logp.Proc) {
		c := make([]int, p.P())
		for d := range c {
			if d != p.ID() {
				c[d] = perPair
			}
		}
		collective.AllToAll(p, collective.Staggered, 1, c,
			func(dst, k int) any { return nil }, perPair*(p.P()-1), 2)
	}
	rec := prof.NewRecorder()
	mustRun(t, logp.Config{Params: params, Profiler: rec}, body)

	for _, alt := range []core.Params{
		{P: 8, L: 9, O: 2, G: 4},
		{P: 8, L: 6, O: 4, G: 4},
		{P: 8, L: 6, O: 2, G: 3},
		{P: 8, L: 6, O: 2, G: 2},
	} {
		t.Run(alt.String(), func(t *testing.T) {
			pred := whatIf(t, rec, alt)
			fresh := mustRun(t, logp.Config{Params: alt}, body)
			relErr := math.Abs(float64(pred.Makespan-fresh.Time)) / float64(fresh.Time)
			if relErr > 0.15 {
				t.Errorf("replay predicts %d, fresh simulation %d (%.1f%% off, tolerance 15%%)",
					pred.Makespan, fresh.Time, 100*relErr)
			}
		})
	}
}

// TestWhatIfPipelineLatencyInsensitive reproduces the Section 3.1 claim
// that pipelined streams are latency-insensitive: replaying a pipelined
// chain broadcast with L doubled moves the makespan by only the pipeline
// fill, far less than proportionally.
func TestWhatIfPipelineLatencyInsensitive(t *testing.T) {
	params := core.Params{P: 4, L: 10, O: 2, G: 4}
	const m = 32
	body := func(p *logp.Proc) {
		collective.PipelinedChainBroadcast(p, 0, 1, m, func(i int) any { return nil })
	}
	rec := prof.NewRecorder()
	base := mustRun(t, logp.Config{Params: params, Profiler: rec}, body)

	alt := core.Params{P: 4, L: 20, O: 2, G: 4}
	pred := whatIf(t, rec, alt)
	fresh := mustRun(t, logp.Config{Params: alt}, body)
	checkMatchesMachine(t, pred, fresh)
	grew := pred.Makespan - base.Time
	if grew <= 0 || grew >= 3*(alt.L-params.L)+1 {
		t.Errorf("doubling L grew the pipelined makespan by %d; want the ~3-hop fill, not m*dL", grew)
	}
}

// TestReplayRejectsMismatchedP: a recording can only be re-costed on a
// machine with the same processor count.
func TestReplayRejectsMismatchedP(t *testing.T) {
	rec, _ := recordBroadcast(t, fig3, logp.Config{})
	cfg := rec.BaseConfig()
	cfg.Params.P = 4
	if _, err := rec.Replay(cfg); err == nil {
		t.Error("replay accepted a different P")
	}
	cfg = rec.BaseConfig()
	cfg.Params.G = 0
	if _, err := rec.Replay(cfg); err == nil {
		t.Error("replay accepted invalid parameters")
	}
}
