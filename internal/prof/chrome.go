package prof

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/logp-model/logp/internal/trace"
)

// chromeEvent is one Chrome trace_event record. Field order is fixed by the
// struct, which keeps the export byte-stable for the golden-file test.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace exports the replayed run as Chrome trace_event JSON
// (load it at chrome://tracing or https://ui.perfetto.dev). One thread per
// processor carries the activity spans; thread P ("network") carries the
// message flights; flow arrows connect each injection to its reception.
// Simulated cycles are emitted as microseconds, the unit the viewer expects.
func (run *Run) WriteChromeTrace(w io.Writer) error {
	tr := chromeTrace{
		DisplayTimeUnit: "ms",
		OtherData: map[string]string{
			"machine":  run.Cfg.Params.String(),
			"makespan": fmt.Sprintf("%d cycles", run.Makespan),
		},
	}
	add := func(e chromeEvent) { tr.TraceEvents = append(tr.TraceEvents, e) }

	add(chromeEvent{Name: "process_name", Ph: "M", Args: map[string]any{"name": "LogP machine"}})
	for p := 0; p < run.P; p++ {
		add(chromeEvent{Name: "thread_name", Ph: "M", Tid: p, Args: map[string]any{"name": fmt.Sprintf("P%d", p)}})
		add(chromeEvent{Name: "thread_sort_index", Ph: "M", Tid: p, Args: map[string]any{"sort_index": p}})
	}
	add(chromeEvent{Name: "thread_name", Ph: "M", Tid: run.P, Args: map[string]any{"name": "network"}})
	add(chromeEvent{Name: "thread_sort_index", Ph: "M", Tid: run.P, Args: map[string]any{"sort_index": run.P}})

	for _, s := range run.Spans {
		if s.End <= s.Start {
			continue
		}
		tid := s.Proc
		if tid < 0 {
			tid = run.P
		}
		dur := s.End - s.Start
		ev := chromeEvent{Name: s.Kind.String(), Cat: "span", Ph: "X", Ts: s.Start, Dur: &dur, Pid: 0, Tid: tid}
		if s.Kind == trace.Flight && s.Msg >= 0 {
			m := run.Msgs[s.Msg]
			ev.Args = map[string]any{"from": m.From, "to": m.To, "tag": m.Tag, "words": m.Words}
		}
		add(ev)
	}

	for i, m := range run.Msgs {
		if m.RecvSpan < 0 {
			continue
		}
		id := fmt.Sprintf("msg%d", i)
		add(chromeEvent{Name: "msg", Cat: "msg", Ph: "s", Ts: run.Spans[m.FlightSpan].Start, Pid: 0, Tid: run.P, ID: id})
		add(chromeEvent{Name: "msg", Cat: "msg", Ph: "f", BP: "e", Ts: m.RecvStart, Pid: 0, Tid: m.To, ID: id})
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tr)
}
