package prof_test

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/prof"
	"github.com/logp-model/logp/internal/reliable"
)

// assertExactReplay replays the recording under the recorded configuration
// and checks it reproduces the machine run cycle for cycle.
func assertExactReplay(t *testing.T, rec *prof.Recorder, res logp.Result) *prof.Run {
	t.Helper()
	run := mustAnalyze(t, rec)
	if run.Makespan != res.Time {
		t.Errorf("replay makespan %d, machine ran %d", run.Makespan, res.Time)
	}
	for i, f := range run.Finish {
		if f != res.Procs[i].Finish {
			t.Errorf("replay finishes proc %d at %d, machine at %d", i, f, res.Procs[i].Finish)
		}
	}
	return run
}

func TestReplayExactUnderLinkFaults(t *testing.T) {
	// A lossy, duplicating network forces retransmissions; the recording
	// (with Dropped marks, OpDup entries and OpWaitUntil timeouts) must
	// replay to the exact machine timing, so the cost of recovery shows up
	// faithfully in critical-path attribution.
	rec := prof.NewRecorder()
	cfg := logp.Config{
		Params:   core.Params{P: 2, L: 6, O: 2, G: 4},
		Profiler: rec,
		Faults: &logp.FaultPlan{
			Seed:    21,
			Default: logp.LinkFault{Drop: 0.3, Dup: 0.2},
		},
	}
	var retrans int
	res, err := logp.Run(cfg, func(p *logp.Proc) {
		e := reliable.New(p, reliable.Config{Timeout: 40})
		switch p.ID() {
		case 0:
			for i := 0; i < 6; i++ {
				if err := e.Send(1, 0, i); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
			retrans = e.Retransmits()
			e.Drain(p.Now() + 500)
		case 1:
			for i := 0; i < 6; i++ {
				e.Recv()
			}
			e.Drain(p.Now() + 500)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if retrans == 0 {
		t.Fatal("seed produced no retransmissions; the scenario is vacuous")
	}
	run := assertExactReplay(t, rec, res)

	// The recording knows which flights died and which were network copies.
	dropped, dups := 0, 0
	for _, m := range run.Msgs {
		if m.Dropped {
			dropped++
		}
		if m.Dup {
			dups++
		}
	}
	if dropped != res.Dropped {
		t.Errorf("replay sees %d dropped messages, machine reported %d", dropped, res.Dropped)
	}
	if dups != res.Duplicated {
		t.Errorf("replay sees %d duplicates, machine reported %d", dups, res.Duplicated)
	}
	cp := run.CriticalPath()
	if err := cp.Contiguous(); err != nil {
		t.Error(err)
	}
}

func TestReplayExactUnderFailStop(t *testing.T) {
	// Proc 1 dies mid-conversation, blocked inside a receive. The recorder
	// pops that never-completed receive, so replay terminates and lands on
	// the machine's exact timing.
	rec := prof.NewRecorder()
	cfg := logp.Config{
		Params:   core.Params{P: 3, L: 6, O: 2, G: 4},
		Profiler: rec,
		Faults: &logp.FaultPlan{
			FailStops: []logp.FailStop{{Proc: 1, At: 25}},
		},
	}
	res, err := logp.Run(cfg, func(p *logp.Proc) {
		switch p.ID() {
		case 0:
			p.Compute(40)
			for i := 0; i < 3; i++ {
				p.Send(1, 0, i) // all of these reach a corpse
			}
		case 1:
			p.Recv() // never satisfied: dies waiting at t=25
		case 2:
			p.Compute(60)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Failed) != 1 || res.Failed[0] != 1 {
		t.Fatalf("Failed = %v, want [1]", res.Failed)
	}
	if !rec.Failed(1) {
		t.Error("recorder did not mark proc 1 failed")
	}
	assertExactReplay(t, rec, res)
}
