// Package shmem implements a distributed shared memory on the LogP machine,
// the Section 3.2 point that "shared memory models are implemented on
// distributed memory machines through an implicit exchange of messages":
//
//   - Read of a remote location costs 2L + 4o (request + reply);
//   - Write costs the same with an acknowledgement;
//   - Prefetch initiates a read and continues, costing 2o of processing
//     time, and can be issued every g cycles — so independent reads
//     pipeline and the latency is paid once.
//
// Addresses 0..Words-1 are distributed blockwise over the processors. A
// node services remote requests whenever it waits for its own replies, and
// via Serve when it is otherwise done — the software equivalent of an
// active-message handler loop.
package shmem

import (
	"fmt"

	"github.com/logp-model/logp/internal/logp"
)

// message tags
const (
	tagRead  = 13001 // request: Data = addr (int)
	tagWrite = 13002 // request: Data = [2]int64{addr, value}
	tagReply = 13003 // reply:   Data = value (int64)
	tagAck   = 13004 // write acknowledgement
	tagStop  = 13005 // shut down a serving node
)

// Node is one processor's view of the shared memory. Create one per
// processor inside the machine body with New.
type Node struct {
	p     *logp.Proc
	words int
	block int
	local []int64 // this processor's block

	outstanding int // prefetches in flight
	prefetched  map[int]int64
	pending     map[int]bool

	// HandlerCost is the local work charged to service one remote request
	// beyond the receive/send overheads. The default 0 makes an idle-owner
	// remote read cost exactly 2L+4o, the Section 3.2 formula; set it to
	// model the memory access itself.
	HandlerCost int64
}

// New builds the node for this processor over a shared space of words
// (must divide evenly by P).
func New(p *logp.Proc, words int) (*Node, error) {
	if words%p.P() != 0 {
		return nil, fmt.Errorf("shmem: %d words not divisible by P=%d", words, p.P())
	}
	n := &Node{
		p:          p,
		words:      words,
		block:      words / p.P(),
		local:      make([]int64, words/p.P()),
		prefetched: make(map[int]int64),
		pending:    make(map[int]bool),
	}
	return n, nil
}

// Owner returns the processor owning addr.
func (n *Node) Owner(addr int) int { return addr / n.block }

func (n *Node) checkAddr(addr int) {
	if addr < 0 || addr >= n.words {
		panic(fmt.Sprintf("shmem: address %d out of range [0,%d)", addr, n.words))
	}
}

// Read returns the value at addr. Local reads cost one cycle; remote reads
// send a request and wait for the reply (2L + 4o end to end on an idle
// owner), servicing other processors' requests while waiting. A previously
// prefetched value is consumed without further communication.
func (n *Node) Read(addr int) int64 {
	n.checkAddr(addr)
	owner := n.Owner(addr)
	if owner == n.p.ID() {
		n.p.Compute(1)
		return n.local[addr%n.block]
	}
	n.Prefetch(addr)
	for {
		if v, ok := n.prefetched[addr]; ok {
			delete(n.prefetched, addr)
			return v
		}
		n.recvServing()
	}
}

// Write stores v at addr and waits for the owner's acknowledgement (so a
// subsequent Read anywhere observes it).
func (n *Node) Write(addr int, v int64) {
	n.checkAddr(addr)
	owner := n.Owner(addr)
	if owner == n.p.ID() {
		n.p.Compute(1)
		n.local[addr%n.block] = v
		return
	}
	n.p.Send(owner, tagWrite, [2]int64{int64(addr), v})
	for {
		m := n.recvServing()
		if m.Tag == tagAck {
			return
		}
	}
}

// Prefetch initiates a read of addr and returns immediately; the issuing
// cost is the send overhead o (the second o is paid when the reply is
// consumed). A later Read of the same address picks up the prefetched value
// without further communication; Sync drains all outstanding prefetches.
func (n *Node) Prefetch(addr int) {
	n.checkAddr(addr)
	owner := n.Owner(addr)
	if owner == n.p.ID() || n.pending[addr] {
		return
	}
	if _, ok := n.prefetched[addr]; ok {
		return
	}
	n.pending[addr] = true
	n.outstanding++
	n.p.Send(owner, tagRead, addr)
}

// Sync blocks until every outstanding prefetch has been absorbed.
func (n *Node) Sync() {
	for n.outstanding > 0 {
		n.recvServing()
	}
}

// recvServing receives one message. Read and write requests from other
// processors are serviced inline (the active-message handler), replies are
// absorbed into the prefetch buffer, and the message is returned so callers
// can watch for their own tags (ack, stop).
func (n *Node) recvServing() logp.Message {
	m := n.p.Recv()
	switch m.Tag {
	case tagRead:
		addr := m.Data.(int)
		n.p.Compute(n.HandlerCost)
		n.p.Send(m.From, tagReply, [2]int64{int64(addr), n.local[addr%n.block]})
	case tagWrite:
		req := m.Data.([2]int64)
		n.p.Compute(n.HandlerCost)
		n.local[int(req[0])%n.block] = req[1]
		n.p.Send(m.From, tagAck, nil)
	case tagReply:
		rep := m.Data.([2]int64)
		got := int(rep[0])
		n.prefetched[got] = rep[1]
		if n.pending[got] {
			delete(n.pending, got)
			n.outstanding--
		}
	}
	return m
}

// Serve handles remote requests until another processor calls Stop on this
// node. Call it when a processor has no more work of its own but others
// still need its memory.
func (n *Node) Serve() {
	for {
		m := n.recvServing()
		if m.Tag == tagStop {
			return
		}
	}
}

// Stop releases a processor blocked in Serve.
func (n *Node) Stop(target int) {
	n.p.Send(target, tagStop, nil)
}
