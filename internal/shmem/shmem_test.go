package shmem

import (
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func cfg(p int, l, o, g int64) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: l, O: o, G: g}}
}

// TestRemoteReadCostsExactly2L4o: the Section 3.2 formula, end to end on an
// idle serving owner.
func TestRemoteReadCostsExactly2L4o(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	var elapsed int64
	_, err := logp.Run(c, func(p *logp.Proc) {
		n, err := New(p, 16)
		if err != nil {
			t.Error(err)
			return
		}
		switch p.ID() {
		case 0:
			start := p.Now()
			if v := n.Read(10); v != 0 { // address 10 owned by proc 1
				t.Errorf("read %d, want 0", v)
			}
			elapsed = p.Now() - start
			n.Stop(1)
		case 1:
			n.Serve()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := c.Params.RemoteRead(); elapsed != want {
		t.Errorf("remote read took %d, want 2L+4o = %d", elapsed, want)
	}
}

func TestLocalAccessesAreCheap(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	res, err := logp.Run(c, func(p *logp.Proc) {
		n, err := New(p, 16)
		if err != nil {
			t.Error(err)
			return
		}
		base := p.ID() * 8
		n.Write(base, 42)
		if v := n.Read(base); v != 42 {
			t.Errorf("proc %d: local read %d", p.ID(), v)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Messages != 0 {
		t.Errorf("local accesses sent %d messages", res.Messages)
	}
	if res.Time != 2 {
		t.Errorf("local write+read took %d cycles, want 2", res.Time)
	}
}

func TestWriteIsVisibleToOtherProcessors(t *testing.T) {
	c := cfg(3, 6, 2, 4)
	const flag = 999
	_, err := logp.Run(c, func(p *logp.Proc) {
		n, err := New(p, 30)
		if err != nil {
			t.Error(err)
			return
		}
		switch p.ID() {
		case 0:
			n.Write(25, 77)      // owned by proc 2; acknowledged
			p.Send(1, flag, nil) // tell the reader the write is durable
			n.Stop(2)
		case 1:
			p.RecvTag(flag)
			if v := n.Read(25); v != 77 {
				t.Errorf("read %d, want 77", v)
			}
			n.Stop(2)
		case 2:
			n.Serve() // exits on the first Stop...
			n.Serve() // ...and again on the second
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPrefetchPipelinesReads: k independent remote reads cost nearly
// k * (2L+4o) when sequential, but prefetching overlaps them so the total
// approaches k*max(g,2o) + one latency — "prefetch operations, which
// initiate a read and continue, can be issued every g cycles and cost 2o
// units of processing time".
func TestPrefetchPipelinesReads(t *testing.T) {
	c := cfg(2, 50, 2, 4)
	const k = 10
	sequential := run2(t, c, func(n *Node, p *logp.Proc) {
		for i := 0; i < k; i++ {
			n.Read(16 + i) // proc 1's block
		}
	})
	pipelined := run2(t, c, func(n *Node, p *logp.Proc) {
		for i := 0; i < k; i++ {
			n.Prefetch(16 + i)
		}
		n.Sync()
		for i := 0; i < k; i++ {
			n.Read(16 + i) // all satisfied locally
		}
	})
	seqWant := int64(k) * c.Params.RemoteRead()
	if sequential != seqWant {
		t.Errorf("sequential reads took %d, want %d", sequential, seqWant)
	}
	// Pipelined: pay the round trip once plus per-message processing.
	if pipelined >= sequential/2 {
		t.Errorf("prefetching took %d, not much better than sequential %d", pipelined, sequential)
	}
	if pipelined < c.Params.RemoteRead() {
		t.Errorf("pipelined %d beat a single round trip %d: impossible", pipelined, c.Params.RemoteRead())
	}
}

// run2 runs a 2-processor shmem workload on proc 0 with proc 1 serving, and
// returns proc 0's elapsed time.
func run2(t *testing.T, c logp.Config, body func(n *Node, p *logp.Proc)) int64 {
	t.Helper()
	var elapsed int64
	_, err := logp.Run(c, func(p *logp.Proc) {
		n, err := New(p, 32)
		if err != nil {
			t.Error(err)
			return
		}
		if p.ID() == 0 {
			start := p.Now()
			body(n, p)
			elapsed = p.Now() - start
			n.Stop(1)
			return
		}
		n.Serve()
	})
	if err != nil {
		t.Fatal(err)
	}
	return elapsed
}

// TestPrefetchIdempotent: prefetching the same address twice sends one
// request, and local prefetches are free.
func TestPrefetchIdempotent(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	res, err := logp.Run(c, func(p *logp.Proc) {
		n, err := New(p, 16)
		if err != nil {
			t.Error(err)
			return
		}
		if p.ID() == 0 {
			n.Prefetch(12)
			n.Prefetch(12)
			n.Prefetch(3) // local: no-op
			n.Sync()
			if v := n.Read(12); v != 0 {
				t.Errorf("read %d", v)
			}
			n.Stop(1)
			return
		}
		n.Serve()
	})
	if err != nil {
		t.Fatal(err)
	}
	// one read request + one reply + one stop = 3 messages.
	if res.Messages != 3 {
		t.Errorf("%d messages, want 3", res.Messages)
	}
}

// TestSharedCounterProperty: concurrent disjoint writes then cross reads are
// coherent for arbitrary patterns.
func TestSharedCounterProperty(t *testing.T) {
	f := func(seed int64) bool {
		c := cfg(4, 10, 1, 2)
		c.Seed = seed
		c.LatencyJitter = 5
		ok := true
		_, err := logp.Run(c, func(p *logp.Proc) {
			n, err := New(p, 32)
			if err != nil {
				ok = false
				return
			}
			me := p.ID()
			// Everyone writes its signature into its neighbour's block.
			n.Write((me+1)%4*8+me, int64(100+me))
			p.Barrier()
			// Everyone reads the signature its other neighbour wrote.
			prev := (me + 3) % 4
			got := n.Read(me*8 + prev)
			if got != int64(100+prev) {
				ok = false
			}
			p.Barrier()
			if me != 0 {
				n.Serve()
			} else {
				for t := 1; t < 4; t++ {
					n.Stop(t)
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAddressValidation(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	_, err := logp.Run(c, func(p *logp.Proc) {
		if p.ID() != 0 {
			return
		}
		if _, err := New(p, 15); err == nil {
			t.Error("non-divisible size accepted")
		}
		n, err := New(p, 16)
		if err != nil {
			t.Error(err)
			return
		}
		defer func() {
			if recover() == nil {
				t.Error("out-of-range read did not panic")
			}
		}()
		n.Read(99)
	})
	if err != nil {
		t.Fatal(err)
	}
}
