package core

import (
	"fmt"
	"sort"
)

// SumNode is one processor's role in an optimal summation schedule
// (Section 3.3, Figure 4). The processor sums LocalInputs original values
// and the partial results of its children, finishing (and, unless it is the
// root, initiating the send of its partial sum to its parent) at Deadline.
type SumNode struct {
	Proc        int
	Deadline    int64 // completion time bound T for this subtree
	LocalInputs int   // original input values assigned to this processor
	Children    []*SumNode
	Parent      *SumNode
}

// Additions is the number of additions the subtree's result represents:
// one fewer than the values it sums.
func (n *SumNode) Additions() int64 { return n.SubtreeValues() - 1 }

// SubtreeValues is the number of original input values summed in the subtree.
func (n *SumNode) SubtreeValues() int64 {
	v := int64(n.LocalInputs)
	for _, c := range n.Children {
		v += c.SubtreeValues()
	}
	return v
}

// SumSchedule is the complete optimal summation plan: the communication tree
// (the same shape as an optimal broadcast tree, reversed in time) plus the
// distribution of input values over processors. Note the inputs are not
// equally distributed.
type SumSchedule struct {
	Params      Params
	Root        *SumNode
	Deadline    int64
	TotalValues int64 // number of input values summed by Deadline
	ProcsUsed   int
	// ByProc[i] is processor i's node, nil if the processor is unused
	// (tree pruned to the processor budget).
	ByProc []*SumNode
}

// recvPeriod is the spacing between consecutive receptions in a summation
// schedule: the gap g, but at least o+1 because each reception costs o cycles
// of overhead plus one cycle to add the received value.
func recvPeriod(p Params) int64 {
	if p.G > p.O+1 {
		return p.G
	}
	return p.O + 1
}

// sumBuilder memoizes the two mutually recursive quantities of the optimal
// summation DP:
//
//	best(t, q):  the maximum number of values a subtree with deadline t and
//	             at most q processors can sum;
//	slots(b, q): the maximum *net* gain from the root's reception slots with
//	             child bounds b, b-period, b-period*2, ..., using at most q
//	             processors, where each used slot costs the root o+1 cycles
//	             of local summing (o to receive, 1 to add).
//
// The structure follows Section 3.3: the root's receptions are packed as
// late as possible at the reception period, child k completes at
// t-(2o+L+1)-k*period, and a transmitted partial sum must represent at least
// o additions. Splitting the processor budget across children is a knapsack,
// which the greedy "first child takes what it wants" rule gets wrong; the DP
// solves it exactly (and makes SumCapacity monotone in t, which greedy
// violates).
type sumBuilder struct {
	p       Params
	period  int64
	minRecv int64 // L + 2o + 1: earliest deadline that admits a reception
	best    map[sumKey]int64
	slots   map[sumKey]int64
}

type sumKey struct {
	t int64
	q int
}

func newSumBuilder(p Params) *sumBuilder {
	return &sumBuilder{
		p:       p,
		period:  recvPeriod(p),
		minRecv: p.L + 2*p.O + 1,
		best:    make(map[sumKey]int64),
		slots:   make(map[sumKey]int64),
	}
}

func (b *sumBuilder) bestVal(t int64, q int) int64 {
	if q <= 0 || t < 0 {
		return 0
	}
	key := sumKey{t, q}
	if v, ok := b.best[key]; ok {
		return v
	}
	v := t + 1 // single-processor chain of t additions
	if q > 1 && t >= b.minRecv {
		if s := b.slotVal(t-b.minRecv, q-1); s > 0 {
			v = t + 1 + s
		}
	}
	b.best[key] = v
	return v
}

func (b *sumBuilder) slotVal(bound int64, q int) int64 {
	if bound < 0 || q <= 0 {
		return 0
	}
	key := sumKey{bound, q}
	if v, ok := b.slots[key]; ok {
		return v
	}
	bestNet := int64(0) // stopping (using no further slots) is always legal
	for use := 1; use <= q; use++ {
		cv := b.bestVal(bound, use)
		if cv-1 < b.p.O {
			break // even more processors cannot make a too-early child worth o additions
		}
		net := cv - (b.p.O + 1) + b.slotVal(bound-b.period, q-use)
		if net > bestNet {
			bestNet = net
		}
	}
	b.slots[key] = bestNet
	return bestNet
}

// build reconstructs the schedule tree for (t, q) by replaying the DP argmax.
func (b *sumBuilder) build(t int64, q int) *SumNode {
	node := &SumNode{Deadline: t}
	total := b.bestVal(t, q)
	if q <= 1 || t < b.minRecv || total == t+1 {
		node.LocalInputs = int(t + 1)
		return node
	}
	// Re-derive the slot choices.
	bound, rem := t-b.minRecv, q-1
	for bound >= 0 && rem > 0 {
		target := b.slotVal(bound, rem)
		if target == 0 {
			break
		}
		chosen := 0
		for use := 1; use <= rem; use++ {
			cv := b.bestVal(bound, use)
			if cv-1 < b.p.O {
				break
			}
			if cv-(b.p.O+1)+b.slotVal(bound-b.period, rem-use) == target {
				chosen = use
				break
			}
		}
		if chosen == 0 {
			break
		}
		child := b.build(bound, chosen)
		child.Parent = node
		node.Children = append(node.Children, child)
		rem -= chosen
		bound -= b.period
	}
	k := int64(len(node.Children))
	node.LocalInputs = int(t - k*(b.p.O+1) + 1)
	return node
}

// OptimalSummation computes the schedule that sums the maximum number of
// values within deadline T on at most P processors (the "fixed amount of
// time" formulation the paper derives first). See sumBuilder for the
// recursion; briefly (Section 3.3):
//
//   - If T < L+2o+1 there is no time to receive anything: a single processor
//     sums T+1 values in a chain of T additions.
//   - Otherwise the root's last step, at time T-1, adds a received partial
//     sum; that child completed at T-(2o+L+1), and further children at
//     reception-period intervals before it. Each reception costs the root
//     o+1 cycles; all remaining cycles are a chain of local input additions.
//     Transmitted partial sums must represent at least o additions.
func OptimalSummation(p Params, deadline int64) (*SumSchedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if deadline < 0 {
		return nil, fmt.Errorf("core: negative deadline %d", deadline)
	}
	b := newSumBuilder(p)
	root := b.build(deadline, p.P)
	s := &SumSchedule{
		Params:   p,
		Root:     root,
		Deadline: deadline,
		ByProc:   make([]*SumNode, p.P),
	}
	s.ProcsUsed = assignProcs(root, 0)
	var index func(n *SumNode)
	index = func(n *SumNode) {
		s.ByProc[n.Proc] = n
		for _, c := range n.Children {
			index(c)
		}
	}
	index(root)
	s.TotalValues = root.SubtreeValues()
	return s, nil
}

func assignProcs(n *SumNode, next int) int {
	n.Proc = next
	next++
	for _, c := range n.Children {
		next = assignProcs(c, next)
	}
	return next
}

// SumCapacity returns the maximum number of values summable in time T on at
// most P processors.
func SumCapacity(p Params, deadline int64) int64 {
	if deadline < 0 {
		return 0
	}
	if err := p.Validate(); err != nil {
		return 0
	}
	return newSumBuilder(p).bestVal(deadline, p.P)
}

// MinSumTime returns the smallest deadline T such that n values can be
// summed on at most P processors, found by binary search (SumCapacity is
// nondecreasing in T).
func MinSumTime(p Params, n int64) int64 {
	if n <= 1 {
		return 0
	}
	b := newSumBuilder(p)
	lo, hi := int64(0), n-1 // one processor sums n values in n-1 cycles
	for lo < hi {
		mid := lo + (hi-lo)/2
		if b.bestVal(mid, p.P) >= n {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// BinaryTreeSumTime is the baseline: distribute n values evenly, local-sum,
// then combine with a balanced binary reduction tree where every combining
// round costs a full message time plus one addition. This is the natural
// PRAM-style schedule, charged honestly under LogP.
func BinaryTreeSumTime(p Params, n int64) int64 {
	per := (n + int64(p.P) - 1) / int64(p.P)
	t := per - 1 // local chain
	if t < 0 {
		t = 0
	}
	step := p.PointToPoint() + 1
	if iv := p.SendInterval(); step < iv {
		step = iv
	}
	for m := 1; m < p.P; m *= 2 {
		t += step
	}
	return t
}

// Validate checks that the schedule is executable under the model: receptions
// at each node fit the period and start at or after the child's send
// completes, local additions fit the remaining cycles, and every transmitted
// partial sum represents at least o additions. Used by property tests.
func (s *SumSchedule) Validate() error {
	p := s.Params
	period := recvPeriod(p)
	minRecv := p.L + 2*p.O + 1
	var walk func(n *SumNode) error
	walk = func(n *SumNode) error {
		if n.LocalInputs < 1 {
			return fmt.Errorf("proc %d has %d local inputs", n.Proc, n.LocalInputs)
		}
		k := int64(len(n.Children))
		busy := int64(n.LocalInputs-1) + k*(p.O+1)
		if busy > n.Deadline {
			return fmt.Errorf("proc %d busy %d cycles exceeds deadline %d", n.Proc, busy, n.Deadline)
		}
		for i, c := range n.Children {
			wantBound := n.Deadline - minRecv - int64(i)*period
			if c.Deadline > wantBound {
				return fmt.Errorf("proc %d child %d deadline %d exceeds bound %d", n.Proc, i, c.Deadline, wantBound)
			}
			if c.Additions() < p.O {
				return fmt.Errorf("proc %d transmits only %d additions < o=%d", c.Proc, c.Additions(), p.O)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	return walk(s.Root)
}

// ChildDeadlines returns the root's children's completion deadlines in
// schedule order, the labels Figure 4 places on the second tree level.
func (s *SumSchedule) ChildDeadlines() []int64 {
	out := make([]int64, len(s.Root.Children))
	for i, c := range s.Root.Children {
		out[i] = c.Deadline
	}
	return out
}

// LeafDeadlines returns the deadlines of all leaves, sorted descending.
func (s *SumSchedule) LeafDeadlines() []int64 {
	var out []int64
	var walk func(n *SumNode)
	walk = func(n *SumNode) {
		if len(n.Children) == 0 {
			out = append(out, n.Deadline)
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(s.Root)
	sort.Slice(out, func(i, j int) bool { return out[i] > out[j] })
	return out
}
