package core_test

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
)

// The four parameters define the machine; everything else is derived.
func ExampleParams() {
	p := core.Params{P: 8, L: 6, O: 2, G: 4}
	fmt.Println(p)
	fmt.Println("point-to-point:", p.PointToPoint())
	fmt.Println("remote read:   ", p.RemoteRead())
	fmt.Println("capacity:      ", p.Capacity())
	// Output:
	// LogP(P=8, L=6, o=2, g=4)
	// point-to-point: 10
	// remote read:    20
	// capacity:       2
}

// The Figure 3 broadcast: the tree shape falls out of L, o and g.
func ExampleOptimalBroadcast() {
	s, err := core.OptimalBroadcast(core.Params{P: 8, L: 6, O: 2, G: 4}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Println("finish:", s.Finish)
	fmt.Println("receive times:", s.RecvTimes())
	fmt.Println("root fan-out:", len(s.Sends[0]))
	// Output:
	// finish: 24
	// receive times: [10 14 18 20 22 24 24]
	// root fan-out: 4
}

// The Figure 4 summation: how many values fit in 28 cycles, and the tree.
func ExampleOptimalSummation() {
	s, err := core.OptimalSummation(core.Params{P: 8, L: 5, O: 2, G: 4}, 28)
	if err != nil {
		panic(err)
	}
	fmt.Println("values:", s.TotalValues)
	fmt.Println("children deadlines:", s.ChildDeadlines())
	fmt.Println("root local inputs:", s.Root.LocalInputs)
	// Output:
	// values: 79
	// children deadlines: [18 14 10 6]
	// root local inputs: 17
}

// MinSumTime inverts SumCapacity by binary search.
func ExampleMinSumTime() {
	p := core.Params{P: 8, L: 5, O: 2, G: 4}
	fmt.Println(core.MinSumTime(p, 79))
	fmt.Println(core.BinaryTreeSumTime(p, 79))
	// Output:
	// 28
	// 39
}
