// Package core implements the analytical content of the LogP model
// (Culler et al., PPoPP 1993): the four machine parameters, the derived cost
// formulas of Section 3, and the provably optimal broadcast and summation
// schedules of Section 3.3.
//
// Everything in this package is closed-form or combinatorial; executing the
// schedules on a simulated machine lives in internal/logp and
// internal/collective.
package core

import (
	"errors"
	"fmt"
)

// Params are the four LogP parameters. L, O and G are expressed in processor
// cycles (the unit of local work).
type Params struct {
	P int   // number of processor/memory modules
	L int64 // upper bound on network latency for a small message
	O int64 // send/receive overhead ("o" in the paper)
	G int64 // gap between consecutive sends or receives at one processor
}

// Validate reports whether the parameters describe a legal machine.
func (p Params) Validate() error {
	switch {
	case p.P < 1:
		return fmt.Errorf("core: P = %d, need at least one processor", p.P)
	case p.L < 0 || p.O < 0 || p.G < 0:
		return errors.New("core: L, o and g must be non-negative")
	case p.G == 0 && p.L > 0:
		// Capacity ceil(L/g) would be unbounded; the PRAM loophole the
		// model exists to close. Represent "infinite bandwidth" with G=0
		// and L=0 only.
		return errors.New("core: g = 0 with L > 0 gives unbounded capacity; use g >= 1")
	}
	return nil
}

func (p Params) String() string {
	return fmt.Sprintf("LogP(P=%d, L=%d, o=%d, g=%d)", p.P, p.L, p.O, p.G)
}

// Capacity is the network capacity constraint of Section 3: at most
// ceil(L/g) messages may be in transit from any processor or to any
// processor at any time.
func (p Params) Capacity() int {
	if p.G <= 0 {
		return 1
	}
	c := (p.L + p.G - 1) / p.G
	if c < 1 {
		c = 1
	}
	return int(c)
}

// SendInterval is the minimum spacing between consecutive message initiations
// at one processor: the gap g, but never less than the overhead o, since the
// processor is busy for o cycles per message.
func (p Params) SendInterval() int64 {
	if p.O > p.G {
		return p.O
	}
	return p.G
}

// PointToPoint is the end-to-end time for one small message between two
// otherwise idle processors: o at the sender, L in the network, o at the
// receiver (Section 5: "the time to transmit a small message will be 2o+L").
func (p Params) PointToPoint() int64 { return 2*p.O + p.L }

// RemoteRead is the time to read a remote location in a shared-memory style:
// a request message and a reply, 2L + 4o (Section 3.2).
func (p Params) RemoteRead() int64 { return 2*p.L + 4*p.O }

// PrefetchCost is the processing time consumed by issuing a prefetch
// (initiate a read and continue): 2o per operation, one issue every g cycles
// (Section 3.2).
func (p Params) PrefetchCost() int64 { return 2 * p.O }

// MaxVirtualProcessors is the multithreading limit of Section 3.2: latency
// masking supports at most ceil(L/g) virtual processors per physical one
// before the capacity constraint stalls the pipeline.
func (p Params) MaxVirtualProcessors() int { return p.Capacity() }

// WithO returns a copy with the overhead replaced, a convenience for the
// approximation technique of Section 3.1 (raise o to g so g can be ignored).
func (p Params) WithO(o int64) Params { p.O = o; return p }

// WithG returns a copy with the gap replaced (for example the double-network
// variant of Section 4.1.4, which halves g).
func (p Params) WithG(g int64) Params { p.G = g; return p }

// WithP returns a copy with the processor count replaced.
func (p Params) WithP(n int) Params { p.P = n; return p }
