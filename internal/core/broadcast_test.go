package core

import (
	"testing"
	"testing/quick"
)

// fig3 is the exact configuration of Figure 3: P=8, L=6, g=4, o=2.
var fig3 = Params{P: 8, L: 6, O: 2, G: 4}

// TestFigure3OptimalBroadcast reproduces Figure 3 exactly: the optimal
// broadcast tree for P=8, L=6, g=4, o=2 delivers the datum at times
// {10, 14, 18, 20, 22, 24, 24} and completes at 24.
func TestFigure3OptimalBroadcast(t *testing.T) {
	s, err := OptimalBroadcast(fig3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if s.Finish != 24 {
		t.Errorf("Finish = %d, want 24 (Figure 3)", s.Finish)
	}
	want := []int64{10, 14, 18, 20, 22, 24, 24}
	got := s.RecvTimes()
	if len(got) != len(want) {
		t.Fatalf("got %d receive times, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("receive times %v, want %v", got, want)
		}
	}
	// The source initiates sends at 0, g, 2g, 3g = 0,4,8,12 (Figure 3 right).
	src := s.Sends[0]
	wantAt := []int64{0, 4, 8, 12}
	if len(src) != len(wantAt) {
		t.Fatalf("root makes %d sends, want %d", len(src), len(wantAt))
	}
	for i, ev := range src {
		if ev.At != wantAt[i] {
			t.Errorf("root send %d at %d, want %d", i, ev.At, wantAt[i])
		}
	}
	// First child holds the datum at L+2o = 10 and fans out itself.
	first := src[0].Child
	if s.RecvDone[first] != 10 {
		t.Errorf("first child done at %d, want L+2o=10", s.RecvDone[first])
	}
	if len(s.Sends[first]) != 2 {
		t.Errorf("first child sends %d times, want 2 (at 10 and 14)", len(s.Sends[first]))
	}
	if err := s.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
}

func TestBroadcastDegenerateCases(t *testing.T) {
	if got := BroadcastTime(Params{P: 1, L: 6, O: 2, G: 4}); got != 0 {
		t.Errorf("P=1 broadcast time = %d, want 0", got)
	}
	p2 := Params{P: 2, L: 6, O: 2, G: 4}
	if got := BroadcastTime(p2); got != 10 {
		t.Errorf("P=2 broadcast time = %d, want 2o+L=10", got)
	}
	// Zero-cost communication: the PRAM corner. Everything arrives at once.
	free := Params{P: 16, L: 0, O: 0, G: 0}
	if got := BroadcastTime(free); got != 0 {
		t.Errorf("free-communication broadcast = %d, want 0", got)
	}
}

func TestBroadcastRootChoice(t *testing.T) {
	for root := 0; root < fig3.P; root++ {
		s, err := OptimalBroadcast(fig3, root)
		if err != nil {
			t.Fatal(err)
		}
		if s.Finish != 24 {
			t.Errorf("root %d: finish %d, want 24", root, s.Finish)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("root %d: %v", root, err)
		}
	}
	if _, err := OptimalBroadcast(fig3, 8); err == nil {
		t.Error("out-of-range root accepted")
	}
	if _, err := OptimalBroadcast(Params{P: 0, L: 1, O: 1, G: 1}, 0); err == nil {
		t.Error("invalid params accepted")
	}
}

// TestOptimalBeatsBaselines: the optimal schedule is never slower than the
// binomial or linear baselines (it can equal them in corners).
func TestOptimalBeatsBaselines(t *testing.T) {
	f := func(pp, ll, oo, gg uint8) bool {
		p := Params{
			P: int(pp%64) + 1,
			L: int64(ll % 50),
			O: int64(oo % 20),
			G: int64(gg%20) + 1,
		}
		opt := BroadcastTime(p)
		return opt <= BinomialBroadcastTime(p) && opt <= LinearBroadcastTime(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBroadcastScheduleValidProperty: schedules are lawful for random
// parameters.
func TestBroadcastScheduleValidProperty(t *testing.T) {
	f := func(pp, ll, oo, gg uint8) bool {
		p := Params{
			P: int(pp%128) + 1,
			L: int64(ll % 100),
			O: int64(oo % 30),
			G: int64(gg%30) + 1,
		}
		s, err := OptimalBroadcast(p, 0)
		if err != nil {
			return false
		}
		return s.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestBroadcastMonotoneInParams: increasing any of L, o, g never speeds up
// the broadcast.
func TestBroadcastMonotoneInParams(t *testing.T) {
	base := Params{P: 32, L: 10, O: 3, G: 5}
	b := BroadcastTime(base)
	if BroadcastTime(base.WithG(6)) < b {
		t.Error("larger g made broadcast faster")
	}
	if BroadcastTime(base.WithO(4)) < b {
		t.Error("larger o made broadcast faster")
	}
	l := base
	l.L = 11
	if BroadcastTime(l) < b {
		t.Error("larger L made broadcast faster")
	}
	if BroadcastTime(base.WithP(33)) < b {
		t.Error("more processors finished sooner than fewer")
	}
}

// TestBroadcastLowerBound: no schedule can beat ceil(log2 P) message chains,
// and the optimal time is at least 2o+L for P>1.
func TestBroadcastLowerBound(t *testing.T) {
	f := func(pp uint8) bool {
		p := Params{P: int(pp%200) + 2, L: 6, O: 2, G: 4}
		return BroadcastTime(p) >= p.PointToPoint()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChildrenAccessor(t *testing.T) {
	s, err := OptimalBroadcast(fig3, 0)
	if err != nil {
		t.Fatal(err)
	}
	kids := s.Children(0)
	if len(kids) != 4 {
		t.Fatalf("root has %d children, want 4", len(kids))
	}
	for _, c := range kids {
		if s.Parent[c] != 0 {
			t.Errorf("child %d parent = %d, want 0", c, s.Parent[c])
		}
	}
}

func BenchmarkOptimalBroadcastConstruction(b *testing.B) {
	p := Params{P: 1024, L: 20, O: 4, G: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalBroadcast(p, 0); err != nil {
			b.Fatal(err)
		}
	}
}
