package core

import (
	"testing"
	"testing/quick"
)

// cm5 is the calibrated CM-5 configuration of Section 4.1.4, in 33 MHz
// hardware clock ticks: o = 2us = 66 ticks, L = 6us = 200 ticks,
// g = 4us = 132 ticks.
func cm5(p int) Params { return Params{P: p, L: 200, O: 66, G: 132} }

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		p  Params
		ok bool
	}{
		{Params{P: 1, L: 0, O: 0, G: 1}, true},
		{Params{P: 128, L: 200, O: 66, G: 132}, true},
		{Params{P: 0, L: 1, O: 1, G: 1}, false},
		{Params{P: 4, L: -1, O: 1, G: 1}, false},
		{Params{P: 4, L: 1, O: -1, G: 1}, false},
		{Params{P: 4, L: 10, O: 1, G: 0}, false}, // unbounded capacity
		{Params{P: 4, L: 0, O: 0, G: 0}, true},   // idealized PRAM-like point
	}
	for _, c := range cases {
		if err := c.p.Validate(); (err == nil) != c.ok {
			t.Errorf("%v Validate() = %v, want ok=%v", c.p, err, c.ok)
		}
	}
}

func TestCapacityIsCeilLOverG(t *testing.T) {
	cases := []struct {
		l, g int64
		want int
	}{
		{6, 4, 2},
		{8, 4, 2},
		{9, 4, 3},
		{1, 4, 1},
		{0, 4, 1}, // never below one outstanding message
		{200, 132, 2},
	}
	for _, c := range cases {
		p := Params{P: 2, L: c.l, O: 0, G: c.g}
		if got := p.Capacity(); got != c.want {
			t.Errorf("Capacity(L=%d,g=%d) = %d, want %d", c.l, c.g, got, c.want)
		}
		if p.MaxVirtualProcessors() != c.want {
			t.Errorf("MaxVirtualProcessors(L=%d,g=%d) = %d, want %d", c.l, c.g, p.MaxVirtualProcessors(), c.want)
		}
	}
}

func TestDerivedCosts(t *testing.T) {
	p := Params{P: 8, L: 6, O: 2, G: 4}
	if got := p.PointToPoint(); got != 10 {
		t.Errorf("PointToPoint = %d, want 10 (2o+L)", got)
	}
	// Section 3.2: reading a remote location requires time 2L+4o.
	if got := p.RemoteRead(); got != 20 {
		t.Errorf("RemoteRead = %d, want 20 (2L+4o)", got)
	}
	// Prefetches cost 2o of processing time and issue every g cycles.
	if got := p.PrefetchCost(); got != 4 {
		t.Errorf("PrefetchCost = %d, want 4", got)
	}
	if got := p.SendInterval(); got != 4 {
		t.Errorf("SendInterval = %d, want g=4 when g>o", got)
	}
	if got := p.WithO(9).SendInterval(); got != 9 {
		t.Errorf("SendInterval = %d, want o=9 when o>g", got)
	}
}

func TestWithersDoNotMutate(t *testing.T) {
	p := Params{P: 8, L: 6, O: 2, G: 4}
	q := p.WithG(2).WithO(1).WithP(16)
	if p.G != 4 || p.O != 2 || p.P != 8 {
		t.Errorf("original mutated: %v", p)
	}
	if q.G != 2 || q.O != 1 || q.P != 16 || q.L != 6 {
		t.Errorf("derived wrong: %v", q)
	}
}

func TestCapacityProperty(t *testing.T) {
	// Capacity is ceil(L/g) and always at least 1.
	f := func(l uint16, g uint16) bool {
		p := Params{P: 2, L: int64(l), O: 0, G: int64(g%100) + 1}
		c := int64(p.Capacity())
		if c < 1 {
			return false
		}
		return (c-1)*p.G < p.L+p.G && c*p.G >= p.L
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
