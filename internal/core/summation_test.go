package core

import (
	"testing"
	"testing/quick"
)

// fig4 is the exact configuration of Figure 4: T=28, P=8, L=5, g=4, o=2.
var fig4 = Params{P: 8, L: 5, O: 2, G: 4}

// TestFigure4OptimalSummation reproduces the structure of Figure 4: the
// communication tree for T=28, P=8, L=5, g=4, o=2 has root children that
// complete at 18, 14, 10 and 6, and third-level leaves completing at 8, 4
// and 4.
func TestFigure4OptimalSummation(t *testing.T) {
	s, err := OptimalSummation(fig4, 28)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcsUsed != 8 {
		t.Errorf("procs used = %d, want 8", s.ProcsUsed)
	}
	wantChildren := []int64{18, 14, 10, 6}
	got := s.ChildDeadlines()
	if len(got) != len(wantChildren) {
		t.Fatalf("root children deadlines %v, want %v", got, wantChildren)
	}
	for i := range wantChildren {
		if got[i] != wantChildren[i] {
			t.Fatalf("root children deadlines %v, want %v", got, wantChildren)
		}
	}
	// Level-3: the child finishing at 18 has children finishing at 8 and 4;
	// the child finishing at 14 has one finishing at 4 (Figure 4 left).
	c18 := s.Root.Children[0]
	if len(c18.Children) != 2 || c18.Children[0].Deadline != 8 || c18.Children[1].Deadline != 4 {
		t.Errorf("child@18 has sub-deadlines %v, want [8 4]", deadlinesOf(c18))
	}
	c14 := s.Root.Children[1]
	if len(c14.Children) != 1 || c14.Children[0].Deadline != 4 {
		t.Errorf("child@14 has sub-deadlines %v, want [4]", deadlinesOf(c14))
	}
	// Root timeline: 4 receptions cost 4*(o+1)=12 cycles, leaving a chain of
	// 16 local additions summing 17 local inputs (the root starts its first
	// reception at cycle 13).
	if s.Root.LocalInputs != 17 {
		t.Errorf("root local inputs = %d, want 17", s.Root.LocalInputs)
	}
	if err := s.Validate(); err != nil {
		t.Errorf("schedule invalid: %v", err)
	}
	if s.TotalValues != 79 {
		t.Errorf("total values = %d, want 79", s.TotalValues)
	}
}

func deadlinesOf(n *SumNode) []int64 {
	out := make([]int64, len(n.Children))
	for i, c := range n.Children {
		out[i] = c.Deadline
	}
	return out
}

func TestSummationSingleProcessorRegime(t *testing.T) {
	p := Params{P: 8, L: 5, O: 2, G: 4}
	// T < L+2o+1 = 10: no time to receive; a single chain of T additions.
	for _, T := range []int64{0, 5, 9} {
		s, err := OptimalSummation(p, T)
		if err != nil {
			t.Fatal(err)
		}
		if s.ProcsUsed != 1 {
			t.Errorf("T=%d: used %d procs, want 1", T, s.ProcsUsed)
		}
		if s.TotalValues != T+1 {
			t.Errorf("T=%d: %d values, want %d", T, s.TotalValues, T+1)
		}
	}
	// At T = 12 a child could contribute exactly o additions, but the gain
	// is zero (the root invests o+1 cycles to absorb o+1 values), so the
	// single chain remains optimal. T = 13 is the first strictly beneficial
	// reception: capacity jumps to 15 > T+1.
	if got := SumCapacity(p, 12); got != 13 {
		t.Errorf("SumCapacity(12) = %d, want 13", got)
	}
	s, err := OptimalSummation(p, 13)
	if err != nil {
		t.Fatal(err)
	}
	if s.ProcsUsed < 2 {
		t.Errorf("T=13: used %d procs, want a reception to appear", s.ProcsUsed)
	}
	if s.TotalValues != 15 {
		t.Errorf("T=13: %d values, want 15 (14 root + net gain 1)", s.TotalValues)
	}
}

func TestSummationRespectsProcessorBudget(t *testing.T) {
	for _, P := range []int{1, 2, 3, 4, 8, 16} {
		p := Params{P: P, L: 5, O: 2, G: 4}
		s, err := OptimalSummation(p, 60)
		if err != nil {
			t.Fatal(err)
		}
		if s.ProcsUsed > P {
			t.Errorf("P=%d: schedule uses %d processors", P, s.ProcsUsed)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("P=%d: %v", P, err)
		}
	}
}

func TestSumCapacityMonotone(t *testing.T) {
	p := Params{P: 8, L: 5, O: 2, G: 4}
	prev := int64(-1)
	for T := int64(0); T <= 80; T++ {
		v := SumCapacity(p, T)
		if v < prev {
			t.Fatalf("SumCapacity decreased: T=%d gives %d after %d", T, v, prev)
		}
		prev = v
	}
}

func TestSumCapacityBeatsSingleProcessor(t *testing.T) {
	p := Params{P: 64, L: 5, O: 2, G: 4}
	if v := SumCapacity(p, 60); v <= 61 {
		t.Errorf("64 processors sum %d values in T=60, not better than 1 processor", v)
	}
}

func TestMinSumTime(t *testing.T) {
	p := Params{P: 8, L: 5, O: 2, G: 4}
	for _, n := range []int64{1, 2, 10, 79, 100, 1000} {
		T := MinSumTime(p, n)
		if got := SumCapacity(p, T); got < n {
			t.Errorf("n=%d: T=%d sums only %d", n, T, got)
		}
		if T > 0 {
			if got := SumCapacity(p, T-1); got >= n {
				t.Errorf("n=%d: T=%d not minimal, T-1 sums %d", n, T, got)
			}
		}
	}
	// Figure 4 closes the loop: 79 values need exactly T=28.
	if T := MinSumTime(fig4, 79); T != 28 {
		t.Errorf("MinSumTime(79) = %d, want 28", T)
	}
}

func TestOptimalSummationBeatsBinaryTree(t *testing.T) {
	f := func(nn uint16, pp uint8) bool {
		p := Params{P: int(pp%32) + 1, L: 5, O: 2, G: 4}
		n := int64(nn%2000) + 1
		return MinSumTime(p, n) <= BinaryTreeSumTime(p, n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSummationScheduleValidProperty: schedules are feasible for random
// parameters and deadlines.
func TestSummationScheduleValidProperty(t *testing.T) {
	f := func(tt uint16, pp, ll, oo, gg uint8) bool {
		p := Params{
			P: int(pp%64) + 1,
			L: int64(ll % 40),
			O: int64(oo % 10),
			G: int64(gg%10) + 1,
		}
		s, err := OptimalSummation(p, int64(tt%500))
		if err != nil {
			return false
		}
		return s.Validate() == nil && s.ProcsUsed <= p.P
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSummationInputDistributionUneven: the paper notes "the inputs are not
// equally distributed over processors".
func TestSummationInputDistributionUneven(t *testing.T) {
	s, err := OptimalSummation(fig4, 28)
	if err != nil {
		t.Fatal(err)
	}
	minIn, maxIn := 1<<30, 0
	for _, n := range s.ByProc {
		if n == nil {
			continue
		}
		if n.LocalInputs < minIn {
			minIn = n.LocalInputs
		}
		if n.LocalInputs > maxIn {
			maxIn = n.LocalInputs
		}
	}
	if minIn == maxIn {
		t.Errorf("inputs equally distributed (%d each); Figure 4 distribution is uneven", minIn)
	}
}

func TestByProcIndexConsistent(t *testing.T) {
	s, err := OptimalSummation(fig4, 28)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	for id, n := range s.ByProc {
		if n == nil {
			continue
		}
		seen++
		if n.Proc != id {
			t.Errorf("ByProc[%d].Proc = %d", id, n.Proc)
		}
	}
	if seen != s.ProcsUsed {
		t.Errorf("indexed %d procs, ProcsUsed = %d", seen, s.ProcsUsed)
	}
}

func TestLeafDeadlinesFig4(t *testing.T) {
	s, err := OptimalSummation(fig4, 28)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{10, 8, 6, 4, 4}
	got := s.LeafDeadlines()
	if len(got) != len(want) {
		t.Fatalf("leaf deadlines %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("leaf deadlines %v, want %v", got, want)
		}
	}
}

func BenchmarkOptimalSummationConstruction(b *testing.B) {
	p := Params{P: 256, L: 20, O: 4, G: 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := OptimalSummation(p, 500); err != nil {
			b.Fatal(err)
		}
	}
}
