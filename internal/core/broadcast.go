package core

import (
	"container/heap"
	"fmt"
	"sort"
)

// SendEvent is one transmission in a communication schedule: the processor
// initiates a send to Child at time At (the processor is then busy for o
// cycles and may not initiate again for max(g,o) cycles).
type SendEvent struct {
	Child int
	At    int64
}

// BroadcastSchedule is the optimal single-source broadcast of Section 3.3
// (Figure 3): every informed processor retransmits as fast as the gap allows,
// and no processor receives more than one message. The tree is unbalanced,
// with fan-out determined by L, o and g.
type BroadcastSchedule struct {
	Params Params
	Root   int
	// Parent[i] is the processor that informs i (-1 for the root).
	Parent []int
	// RecvDone[i] is the time processor i has fully received the datum
	// (including its o receive overhead) and can begin retransmitting.
	// RecvDone[Root] = 0.
	RecvDone []int64
	// Sends[i] lists i's transmissions in initiation order.
	Sends [][]SendEvent
	// Finish is the time the last processor holds the datum: the broadcast
	// completion time.
	Finish int64
}

// slot is a processor able to initiate its next send at time t.
type slot struct {
	t    int64
	proc int
}

type slotHeap []slot

func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].proc < h[j].proc
}
func (h slotHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)   { *h = append(*h, x.(slot)) }
func (h *slotHeap) Pop() any     { old := *h; n := len(old); s := old[n-1]; *h = old[:n-1]; return s }

// OptimalBroadcast computes the optimal broadcast schedule from processor
// root. Greedy construction: repeatedly let the processor able to initiate
// the earliest send inform the next uninformed processor. Greedy is optimal
// because a send initiated earlier is never worse: it both delivers its datum
// no later and frees the sender's next slot no later.
func OptimalBroadcast(p Params, root int) (*BroadcastSchedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if root < 0 || root >= p.P {
		return nil, fmt.Errorf("core: broadcast root %d out of range [0,%d)", root, p.P)
	}
	s := &BroadcastSchedule{
		Params:   p,
		Root:     root,
		Parent:   make([]int, p.P),
		RecvDone: make([]int64, p.P),
		Sends:    make([][]SendEvent, p.P),
	}
	for i := range s.Parent {
		s.Parent[i] = -1
	}
	interval := p.SendInterval()
	h := slotHeap{{t: 0, proc: root}}
	// Assign physical IDs to informed processors in discovery order,
	// skipping the root's ID.
	next := 0
	for informed := 1; informed < p.P; informed++ {
		if next == root {
			next++
		}
		sl := heap.Pop(&h).(slot)
		child := next
		next++
		rc := sl.t + 2*p.O + p.L // child holds datum after send o + flight L + recv o
		s.Parent[child] = sl.proc
		s.RecvDone[child] = rc
		s.Sends[sl.proc] = append(s.Sends[sl.proc], SendEvent{Child: child, At: sl.t})
		heap.Push(&h, slot{t: sl.t + interval, proc: sl.proc})
		heap.Push(&h, slot{t: rc, proc: child})
		if rc > s.Finish {
			s.Finish = rc
		}
	}
	return s, nil
}

// BroadcastTime returns only the completion time of the optimal broadcast,
// without materializing the schedule.
func BroadcastTime(p Params) int64 {
	s, err := OptimalBroadcast(p, 0)
	if err != nil || p.P == 1 {
		return 0
	}
	return s.Finish
}

// BinomialBroadcastTime is the classic binomial-tree broadcast, charged
// honestly under LogP: in each round every informed processor forwards to one
// new processor, so a round lasts max(2o+L, max(g,o)) — the receive must
// complete before the recipient forwards, and a processor's consecutive sends
// must respect the gap. It is the natural schedule under models without g,
// and the baseline the optimal LogP schedule is compared against.
func BinomialBroadcastTime(p Params) int64 {
	if p.P <= 1 {
		return 0
	}
	round := p.PointToPoint()
	if iv := p.SendInterval(); round < iv {
		round = iv
	}
	rounds := int64(0)
	for n := 1; n < p.P; n *= 2 {
		rounds++
	}
	return rounds * round
}

// LinearBroadcastTime is the naive source-sends-to-everyone schedule: the
// root initiates P-1 sends back to back.
func LinearBroadcastTime(p Params) int64 {
	if p.P <= 1 {
		return 0
	}
	return int64(p.P-2)*p.SendInterval() + p.PointToPoint()
}

// Validate checks the internal consistency of a broadcast schedule:
// every processor informed exactly once, timing lawful under (L,o,g), and
// Finish is the max receive time. It is used by property tests.
func (s *BroadcastSchedule) Validate() error {
	p := s.Params
	informed := make([]bool, p.P)
	informed[s.Root] = true
	if s.RecvDone[s.Root] != 0 {
		return fmt.Errorf("root RecvDone = %d, want 0", s.RecvDone[s.Root])
	}
	interval := p.SendInterval()
	var finish int64
	for proc, sends := range s.Sends {
		for i, ev := range sends {
			if ev.At < s.RecvDone[proc] {
				return fmt.Errorf("proc %d sends at %d before holding datum at %d", proc, ev.At, s.RecvDone[proc])
			}
			if i > 0 && ev.At-sends[i-1].At < interval {
				return fmt.Errorf("proc %d sends at %d and %d: violates interval %d", proc, sends[i-1].At, ev.At, interval)
			}
			if informed[ev.Child] {
				return fmt.Errorf("proc %d informed twice", ev.Child)
			}
			informed[ev.Child] = true
			want := ev.At + 2*p.O + p.L
			if s.RecvDone[ev.Child] != want {
				return fmt.Errorf("child %d RecvDone = %d, want %d", ev.Child, s.RecvDone[ev.Child], want)
			}
			if s.Parent[ev.Child] != proc {
				return fmt.Errorf("child %d parent = %d, want %d", ev.Child, s.Parent[ev.Child], proc)
			}
			if want > finish {
				finish = want
			}
		}
	}
	for i, ok := range informed {
		if !ok {
			return fmt.Errorf("processor %d never informed", i)
		}
	}
	if finish != s.Finish && p.P > 1 {
		return fmt.Errorf("Finish = %d, want %d", s.Finish, finish)
	}
	return nil
}

// RecvTimes returns the sorted multiset of RecvDone times for the non-root
// processors, the quantity Figure 3 annotates on each tree node.
func (s *BroadcastSchedule) RecvTimes() []int64 {
	out := make([]int64, 0, len(s.RecvDone)-1)
	for i, t := range s.RecvDone {
		if i != s.Root {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns proc's children in send order.
func (s *BroadcastSchedule) Children(proc int) []int {
	out := make([]int, len(s.Sends[proc]))
	for i, ev := range s.Sends[proc] {
		out[i] = ev.Child
	}
	return out
}
