package core

import (
	"fmt"
	"sort"
)

// SendEvent is one transmission in a communication schedule: the processor
// initiates a send to Child at time At (the processor is then busy for o
// cycles and may not initiate again for max(g,o) cycles).
type SendEvent struct {
	Child int
	At    int64
}

// BroadcastSchedule is the optimal single-source broadcast of Section 3.3
// (Figure 3): every informed processor retransmits as fast as the gap allows,
// and no processor receives more than one message. The tree is unbalanced,
// with fan-out determined by L, o and g.
type BroadcastSchedule struct {
	Params Params
	Root   int
	// Parent[i] is the processor that informs i (-1 for the root).
	Parent []int
	// RecvDone[i] is the time processor i has fully received the datum
	// (including its o receive overhead) and can begin retransmitting.
	// RecvDone[Root] = 0.
	RecvDone []int64
	// Sends[i] lists i's transmissions in initiation order.
	Sends [][]SendEvent
	// Finish is the time the last processor holds the datum: the broadcast
	// completion time.
	Finish int64
}

// slot is a processor able to initiate its next send at time t.
type slot struct {
	t    int64
	proc int
}

func slotLess(a, b slot) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.proc < b.proc
}

// slotHeap is a typed 4-ary min-heap by (t, proc). Each processor holds at
// most one slot, so the order is total and the pop sequence is independent
// of heap layout. Typed and flat — container/heap boxes every Push and Pop
// through an interface value, two allocations per element that dominate
// schedule construction at P = 10^6.
type slotHeap []slot

func (h *slotHeap) push(e slot) {
	s := append(*h, e)
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !slotLess(e, s[p]) {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = e
	*h = s
}

func (h *slotHeap) pop() slot {
	s := *h
	top := s[0]
	n := len(s) - 1
	last := s[n]
	s = s[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if slotLess(s[j], s[best]) {
					best = j
				}
			}
			if !slotLess(s[best], last) {
				break
			}
			s[i] = s[best]
			i = best
		}
		s[i] = last
	}
	*h = s
	return top
}

// OptimalBroadcast computes the optimal broadcast schedule from processor
// root. Greedy construction: repeatedly let the processor able to initiate
// the earliest send inform the next uninformed processor. Greedy is optimal
// because a send initiated earlier is never worse: it both delivers its datum
// no later and frees the sender's next slot no later.
func OptimalBroadcast(p Params, root int) (*BroadcastSchedule, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if root < 0 || root >= p.P {
		return nil, fmt.Errorf("core: broadcast root %d out of range [0,%d)", root, p.P)
	}
	s := &BroadcastSchedule{
		Params:   p,
		Root:     root,
		Parent:   make([]int, p.P),
		RecvDone: make([]int64, p.P),
		Sends:    make([][]SendEvent, p.P),
	}
	for i := range s.Parent {
		s.Parent[i] = -1
	}
	interval := p.SendInterval()
	h := make(slotHeap, 1, p.P+1)
	h[0] = slot{t: 0, proc: root}
	// Greedy pops are chronological, so sends accumulate in one flat array
	// with the initiating processor alongside; a stable counting sort then
	// carves the per-processor Sends out of a single arena (pop order is
	// non-decreasing in t, so per-processor initiation order survives). One
	// allocation per run instead of one per tree node.
	evs := make([]SendEvent, 0, p.P-1+1)
	evProc := make([]int32, 0, p.P-1+1)
	// Assign physical IDs to informed processors in discovery order,
	// skipping the root's ID.
	next := 0
	for informed := 1; informed < p.P; informed++ {
		if next == root {
			next++
		}
		sl := h.pop()
		child := next
		next++
		rc := sl.t + 2*p.O + p.L // child holds datum after send o + flight L + recv o
		s.Parent[child] = sl.proc
		s.RecvDone[child] = rc
		evs = append(evs, SendEvent{Child: child, At: sl.t})
		evProc = append(evProc, int32(sl.proc))
		h.push(slot{t: sl.t + interval, proc: sl.proc})
		h.push(slot{t: rc, proc: child})
		if rc > s.Finish {
			s.Finish = rc
		}
	}
	offs := make([]int32, p.P+1)
	for _, pr := range evProc {
		offs[pr+1]++
	}
	for i := 0; i < p.P; i++ {
		offs[i+1] += offs[i]
	}
	arena := make([]SendEvent, len(evs))
	cursor := append([]int32(nil), offs[:p.P]...)
	for i, ev := range evs {
		c := evProc[i]
		arena[cursor[c]] = ev
		cursor[c]++
	}
	for i := 0; i < p.P; i++ {
		if offs[i] < offs[i+1] {
			s.Sends[i] = arena[offs[i]:offs[i+1]:offs[i+1]]
		}
	}
	return s, nil
}

// BroadcastTime returns only the completion time of the optimal broadcast,
// without materializing the schedule.
func BroadcastTime(p Params) int64 {
	s, err := OptimalBroadcast(p, 0)
	if err != nil || p.P == 1 {
		return 0
	}
	return s.Finish
}

// BinomialBroadcastTime is the classic binomial-tree broadcast, charged
// honestly under LogP: in each round every informed processor forwards to one
// new processor, so a round lasts max(2o+L, max(g,o)) — the receive must
// complete before the recipient forwards, and a processor's consecutive sends
// must respect the gap. It is the natural schedule under models without g,
// and the baseline the optimal LogP schedule is compared against.
func BinomialBroadcastTime(p Params) int64 {
	if p.P <= 1 {
		return 0
	}
	round := p.PointToPoint()
	if iv := p.SendInterval(); round < iv {
		round = iv
	}
	rounds := int64(0)
	for n := 1; n < p.P; n *= 2 {
		rounds++
	}
	return rounds * round
}

// LinearBroadcastTime is the naive source-sends-to-everyone schedule: the
// root initiates P-1 sends back to back.
func LinearBroadcastTime(p Params) int64 {
	if p.P <= 1 {
		return 0
	}
	return int64(p.P-2)*p.SendInterval() + p.PointToPoint()
}

// Validate checks the internal consistency of a broadcast schedule:
// every processor informed exactly once, timing lawful under (L,o,g), and
// Finish is the max receive time. It is used by property tests.
func (s *BroadcastSchedule) Validate() error {
	p := s.Params
	informed := make([]bool, p.P)
	informed[s.Root] = true
	if s.RecvDone[s.Root] != 0 {
		return fmt.Errorf("root RecvDone = %d, want 0", s.RecvDone[s.Root])
	}
	interval := p.SendInterval()
	var finish int64
	for proc, sends := range s.Sends {
		for i, ev := range sends {
			if ev.At < s.RecvDone[proc] {
				return fmt.Errorf("proc %d sends at %d before holding datum at %d", proc, ev.At, s.RecvDone[proc])
			}
			if i > 0 && ev.At-sends[i-1].At < interval {
				return fmt.Errorf("proc %d sends at %d and %d: violates interval %d", proc, sends[i-1].At, ev.At, interval)
			}
			if informed[ev.Child] {
				return fmt.Errorf("proc %d informed twice", ev.Child)
			}
			informed[ev.Child] = true
			want := ev.At + 2*p.O + p.L
			if s.RecvDone[ev.Child] != want {
				return fmt.Errorf("child %d RecvDone = %d, want %d", ev.Child, s.RecvDone[ev.Child], want)
			}
			if s.Parent[ev.Child] != proc {
				return fmt.Errorf("child %d parent = %d, want %d", ev.Child, s.Parent[ev.Child], proc)
			}
			if want > finish {
				finish = want
			}
		}
	}
	for i, ok := range informed {
		if !ok {
			return fmt.Errorf("processor %d never informed", i)
		}
	}
	if finish != s.Finish && p.P > 1 {
		return fmt.Errorf("Finish = %d, want %d", s.Finish, finish)
	}
	return nil
}

// RecvTimes returns the sorted multiset of RecvDone times for the non-root
// processors, the quantity Figure 3 annotates on each tree node.
func (s *BroadcastSchedule) RecvTimes() []int64 {
	out := make([]int64, 0, len(s.RecvDone)-1)
	for i, t := range s.RecvDone {
		if i != s.Root {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Children returns proc's children in send order.
func (s *BroadcastSchedule) Children(proc int) []int {
	out := make([]int, len(s.Sends[proc]))
	for i, ev := range s.Sends[proc] {
		out[i] = ev.Child
	}
	return out
}
