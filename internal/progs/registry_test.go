package progs

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

var regParams = core.Params{P: 8, L: 6, O: 2, G: 4}

// TestBuildAndRunEveryProgram builds each registered program by name, runs
// it on the goroutine machine, and checks the Output digest reports a
// completed run.
func TestBuildAndRunEveryProgram(t *testing.T) {
	for _, name := range Names() {
		inst, err := Build(name, regParams, Args{})
		if err != nil {
			t.Fatalf("Build(%s): %v", name, err)
		}
		res, err := logp.RunProgram(logp.Config{Params: regParams, Seed: 1}, inst.Prog)
		if err != nil {
			t.Fatalf("run %s: %v", name, err)
		}
		if res.Time <= 0 {
			t.Errorf("%s: run finished at time %d", name, res.Time)
		}
		out := inst.Output()
		if len(out) == 0 {
			t.Errorf("%s: empty output digest", name)
		}
		switch name {
		case "broadcast":
			if out["reached"] != float64(regParams.P) {
				t.Errorf("broadcast reached %v of %d", out["reached"], regParams.P)
			}
		case "sum":
			if out["root_ok"] != 1 || out["root"] != out["values"] {
				t.Errorf("sum digest %v: want root == values, root_ok 1", out)
			}
		case "pingpong":
			if out["rounds"] != 10 {
				t.Errorf("pingpong rounds %v, want default 10", out["rounds"])
			}
		case "chain", "binomial":
			if out["complete"] != 1 || out["received"] != float64(regParams.P*8) {
				t.Errorf("%s digest %v: want complete pipeline of 8 items at %d procs", name, out, regParams.P)
			}
		case "alltoall":
			if out["received"] != float64(4*regParams.P*(regParams.P-1)) {
				t.Errorf("alltoall received %v", out["received"])
			}
		case "fftremap":
			if out["placed"] != out["rows"] || out["rows"] != 4096 {
				t.Errorf("fftremap digest %v: want all 4096 rows placed", out)
			}
		case "bitonic":
			if out["sorted"] != 1 {
				t.Errorf("bitonic digest %v: want sorted output", out)
			}
		}
	}
}

// TestBuildNormalizesSize pins the Args normalization rules the spec hashing
// in internal/service relies on: zero N resolves to the per-program default,
// sizeless programs force N to zero, and unknown names fail.
func TestBuildNormalizesSize(t *testing.T) {
	if _, err := Build("nosuch", regParams, Args{}); err == nil {
		t.Error("unknown program built")
	}
	if _, err := Build("pingpong", regParams, Args{N: -1}); err == nil {
		t.Error("negative size built")
	}
	if _, err := Build("alltoall", regParams, Args{Work: -3}); err == nil {
		t.Error("negative work built")
	}
	if n, err := DefaultN("sum"); err != nil || n != 1000 {
		t.Errorf("DefaultN(sum) = %d, %v", n, err)
	}
	if n, err := DefaultN("broadcast"); err != nil || n != 0 {
		t.Errorf("DefaultN(broadcast) = %d, %v", n, err)
	}
	if _, err := DefaultN("nosuch"); err == nil {
		t.Error("DefaultN accepted unknown program")
	}
	if doc := Doc("sum"); doc == "" {
		t.Error("Doc(sum) empty")
	}
	// A sized program with explicit N runs at that size.
	inst, err := Build("pingpong", regParams, Args{N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := logp.RunProgram(logp.Config{Params: regParams, Seed: 1}, inst.Prog); err != nil {
		t.Fatal(err)
	}
	if got := inst.Output()["rounds"]; got != 3 {
		t.Errorf("explicit N=3 ran %v rounds", got)
	}
}
