package progs

import (
	"fmt"
	"sort"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// The program registry names every handler-form program so a caller holding
// only a textual spec — the simulation daemon's JobSpec, a CLI flag — can
// construct it. A registry entry builds a fresh program instance per call
// (instances confine mutable state per processor but are not shareable
// across concurrent runs) and pairs it with an Output summarizer, so the
// caller can report a small deterministic digest of the program-level result
// (the summation root, the number of processors reached) without knowing the
// concrete program type.

// Args parameterizes a registry program. The zero value selects each
// program's default size.
type Args struct {
	// N is the problem size; its meaning is per program: ping-pong round
	// trips, summation input values, pipelined items, all-to-all messages
	// per destination. 0 picks the program's default (DefaultN); programs
	// that take no size (broadcast) ignore it.
	N int
	// Work is the all-to-all's local compute in cycles before each send.
	Work int64
	// Staggered selects the all-to-all's staggered destination order.
	Staggered bool
}

// Instance is one ready-to-run program with its result summarizer.
type Instance struct {
	Prog logp.Program
	// Output digests the program-level result after a run into a small
	// map with deterministic keys and values (runs are deterministic, so
	// equal specs produce equal digests). Call it only after the run.
	Output func() map[string]float64
}

// builder constructs an instance for a validated machine and normalized
// size.
type builder struct {
	defaultN int // 0: the program takes no size
	doc      string
	build    func(p core.Params, a Args) (Instance, error)
}

// builders is the static registry, keyed by program name.
var builders = map[string]builder{
	"pingpong": {
		defaultN: 10,
		doc:      "bounce N round trips between processors 0 and 1",
		build: func(p core.Params, a Args) (Instance, error) {
			if p.P < 2 {
				return Instance{}, fmt.Errorf("progs: pingpong needs P >= 2, have P=%d", p.P)
			}
			pp := NewPingPong(a.N, 1)
			return Instance{Prog: pp, Output: func() map[string]float64 {
				return map[string]float64{"rounds": float64(pp.Rounds())}
			}}, nil
		},
	},
	"broadcast": {
		doc: "the paper's Figure 3 optimal single-datum broadcast",
		build: func(p core.Params, a Args) (Instance, error) {
			s, err := core.OptimalBroadcast(p, 0)
			if err != nil {
				return Instance{}, err
			}
			b := NewBroadcast(s, 1, "datum")
			return Instance{Prog: b, Output: func() map[string]float64 {
				reached := 0
				for _, g := range b.Got {
					if g == "datum" {
						reached++
					}
				}
				return map[string]float64{
					"predicted_finish": float64(s.Finish),
					"reached":          float64(reached),
				}
			}}, nil
		},
	},
	"sum": {
		defaultN: 1000,
		doc:      "the paper's Figure 4 optimal summation of N values",
		build: func(p core.Params, a Args) (Instance, error) {
			deadline := core.MinSumTime(p, int64(a.N))
			s, err := core.OptimalSummation(p, deadline)
			if err != nil {
				return Instance{}, err
			}
			values := make([]float64, s.TotalValues)
			for i := range values {
				values[i] = 1
			}
			dist, err := collective.DistributeInputs(s, values)
			if err != nil {
				return Instance{}, err
			}
			sm := NewSum(s, 1, dist)
			return Instance{Prog: sm, Output: func() map[string]float64 {
				ok := 0.0
				if sm.RootOK {
					ok = 1
				}
				return map[string]float64{
					"predicted_finish": float64(deadline),
					"root":             sm.Root,
					"root_ok":          ok,
					"values":           float64(s.TotalValues),
				}
			}}, nil
		},
	},
	"chain": {
		defaultN: 8,
		doc:      "pipelined broadcast of N values through the linear chain",
		build: func(p core.Params, a Args) (Instance, error) {
			c := NewPipelinedChain(p.P, 0, 1, a.N, func(i int) any { return float64(i) })
			return Instance{Prog: c, Output: pipelinedOutput(a.N, &c.Out)}, nil
		},
	},
	"binomial": {
		defaultN: 8,
		doc:      "pipelined broadcast of N values down the binomial tree",
		build: func(p core.Params, a Args) (Instance, error) {
			b := NewPipelinedBinomial(p.P, 0, 1, a.N, func(i int) any { return float64(i) })
			return Instance{Prog: b, Output: pipelinedOutput(a.N, &b.Out)}, nil
		},
	},
	"fftremap": {
		defaultN: 4096,
		doc:      "the FFT's cyclic-to-blocked data remap of N points, staggered (Section 4.1)",
		build: func(p core.Params, a Args) (Instance, error) {
			if a.N%(p.P*p.P) != 0 {
				return Instance{}, fmt.Errorf("progs: fftremap needs N divisible by P^2, have N=%d P=%d", a.N, p.P)
			}
			f := NewFFTRemap(p.P, a.N, 1)
			return Instance{Prog: f, Output: func() map[string]float64 {
				return map[string]float64{"rows": float64(a.N), "placed": float64(f.Placed())}
			}}, nil
		},
	},
	"bitonic": {
		doc: "bitonic merge sort, one key per processor (Section 4.2.2)",
		build: func(p core.Params, a Args) (Instance, error) {
			if p.P&(p.P-1) != 0 {
				return Instance{}, fmt.Errorf("progs: bitonic needs P a power of two, have P=%d", p.P)
			}
			b := NewBitonic(p.P, 1, nil)
			return Instance{Prog: b, Output: func() map[string]float64 {
				sorted := 1.0
				for i := 1; i < len(b.Keys); i++ {
					if b.Keys[i-1] > b.Keys[i] {
						sorted = 0
					}
				}
				return map[string]float64{"procs": float64(p.P), "sorted": sorted}
			}}, nil
		},
	},
	"alltoall": {
		defaultN: 4,
		doc:      "every processor sends N messages to every other (Section 4.1.2)",
		build: func(p core.Params, a Args) (Instance, error) {
			at := NewAllToAll(p.P, a.N, a.Work, 1, a.Staggered)
			return Instance{Prog: at, Output: func() map[string]float64 {
				total := 0
				for _, r := range at.Received {
					total += r
				}
				return map[string]float64{"received": float64(total)}
			}}, nil
		},
	},
}

// pipelinedOutput digests the pipelined broadcasts' Out matrix: how many of
// the m items every processor saw, and whether all of them arrived in order.
func pipelinedOutput(m int, out *[][]any) func() map[string]float64 {
	return func() map[string]float64 {
		received, ordered := 0, 1.0
		for _, row := range *out {
			received += len(row)
			if len(row) != m {
				ordered = 0
				continue
			}
			for i, v := range row {
				if v != any(float64(i)) {
					ordered = 0
				}
			}
		}
		return map[string]float64{"received": float64(received), "complete": ordered}
	}
}

// Names lists the registered program names, sorted.
func Names() []string {
	names := make([]string, 0, len(builders))
	for n := range builders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Doc returns the one-line description of a registered program ("" if
// unknown).
func Doc(name string) string { return builders[name].doc }

// DefaultN reports the problem size a zero Args.N resolves to; 0 means the
// program takes no size.
func DefaultN(name string) (int, error) {
	b, ok := builders[name]
	if !ok {
		return 0, fmt.Errorf("progs: unknown program %q (have %v)", name, Names())
	}
	return b.defaultN, nil
}

// Build constructs a fresh instance of the named program for the given
// machine. Args.N of 0 takes the program's default; programs without a size
// force N to 0, so callers can canonicalize specs by building through this
// path. The returned instance must not be shared across concurrent runs.
func Build(name string, p core.Params, a Args) (Instance, error) {
	b, ok := builders[name]
	if !ok {
		return Instance{}, fmt.Errorf("progs: unknown program %q (have %v)", name, Names())
	}
	if err := p.Validate(); err != nil {
		return Instance{}, err
	}
	if a.N < 0 {
		return Instance{}, fmt.Errorf("progs: %s: negative size %d", name, a.N)
	}
	if a.Work < 0 {
		return Instance{}, fmt.Errorf("progs: %s: negative work %d", name, a.Work)
	}
	if b.defaultN == 0 {
		a.N = 0
	} else if a.N == 0 {
		a.N = b.defaultN
	}
	return b.build(p, a)
}
