package progs

import (
	"math/bits"

	"github.com/logp-model/logp/internal/logp"
)

// bitonicState is one processor's slot of Bitonic.
type bitonicState struct {
	key   float64
	round int
	// stash holds partner keys that arrived for rounds this processor has
	// not reached yet (a fast pair starts its next round while a slow pair
	// is still merging); stashSet marks which rounds are present.
	stash    []float64
	stashSet []bool
}

// Bitonic is bitonic merge sort with one key per processor (Section 4.2.2)
// in handler form: the compare-exchange network of the sorting example,
// lifted out of the blocking driver in internal/algo/sort. Round r of the
// log2(P)*(log2(P)+1)/2 rounds pairs processor me with me^j (k the stage
// size, j the halving distance); each partner sends its key, and on the
// exchange the pair keeps (min, max) oriented by the stage's direction bit
// me&k. Tags are round-specific so a fast pair's next-round key cannot mix
// into a slow pair's current exchange.
type Bitonic struct {
	tag  int
	keys func(i int) float64
	st   []bitonicState

	// Keys[p] is processor p's key after the sort (ascending across p).
	Keys []float64
}

// bitonicRounds is the total compare-exchange rounds for P processors.
func bitonicRounds(p int) int {
	lg := bits.Len(uint(p)) - 1
	return lg * (lg + 1) / 2
}

// bitonicKey is the default input: the bit-reversal permutation of the
// processor index — distinct keys, thoroughly unsorted.
func bitonicKey(i, p int) float64 {
	lg := bits.Len(uint(p)) - 1
	return float64(bits.Reverse(uint(i)) >> (bits.UintSize - lg))
}

// NewBitonic builds the sort for p processors (a power of two); keys(i) is
// processor i's input key, nil for the default bit-reversal permutation.
func NewBitonic(p, tag int, keys func(i int) float64) *Bitonic {
	if keys == nil {
		keys = func(i int) float64 { return bitonicKey(i, p) }
	}
	return &Bitonic{tag: tag, keys: keys, st: make([]bitonicState, p), Keys: make([]float64, p)}
}

// partner returns the exchange partner and keep-low orientation of round r.
func (b *Bitonic) partner(me, P, r int) (int, bool) {
	for k := 2; k <= P; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			if r == 0 {
				partner := me ^ j
				ascending := me&k == 0
				return partner, (me < partner) == ascending
			}
			r--
		}
	}
	panic("progs: bitonic round out of range")
}

// Start implements logp.Program.
func (b *Bitonic) Start(n logp.Node) {
	P := n.P()
	me := n.ID()
	st := &b.st[me]
	st.key = b.keys(me)
	st.round = 0
	total := bitonicRounds(P)
	if cap(st.stash) < total {
		st.stash = make([]float64, total)
		st.stashSet = make([]bool, total)
	}
	st.stash = st.stash[:total]
	st.stashSet = st.stashSet[:total]
	for i := range st.stashSet {
		st.stashSet[i] = false
	}
	if P == 1 {
		b.Keys[me] = st.key
		n.Done()
		return
	}
	p, _ := b.partner(me, P, 0)
	n.Send(p, b.tag, st.key)
}

// exchange applies one round's compare-exchange and fires the next send (or
// finishes).
func (b *Bitonic) exchange(n logp.Node, st *bitonicState, theirs float64) {
	P := n.P()
	me := n.ID()
	_, keepLow := b.partner(me, P, st.round)
	if keepLow == (theirs < st.key) {
		st.key = theirs
	}
	st.round++
	if st.round == bitonicRounds(P) {
		b.Keys[me] = st.key
		n.Done()
		return
	}
	p, _ := b.partner(me, P, st.round)
	n.Send(p, b.tag+st.round, st.key)
}

// Message implements logp.Program.
func (b *Bitonic) Message(n logp.Node, m logp.Message) {
	me := n.ID()
	st := &b.st[me]
	r := m.Tag - b.tag
	if r != st.round {
		st.stash[r] = m.Data.(float64)
		st.stashSet[r] = true
		return
	}
	b.exchange(n, st, m.Data.(float64))
	for st.round < len(st.stashSet) && st.stashSet[st.round] {
		st.stashSet[st.round] = false
		b.exchange(n, st, st.stash[st.round])
	}
}
