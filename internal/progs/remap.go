package progs

import "github.com/logp-model/logp/internal/logp"

// remapPoint is one row in flight during the FFT data remap.
type remapPoint struct {
	Row int
	V   float64
}

// FFTRemap is the FFT's cyclic-to-blocked data remap (Section 4.1) in
// handler form: the communication phase of the hybrid layout, lifted out of
// the blocking FFT driver in internal/algo/fft. Under the cyclic layout
// processor me holds rows j*P+me; the blocked owner of row r is r/(n/P), so
// each processor keeps one contiguous chunk of n/P^2 local indices and ships
// one such chunk to every other processor. Sends go in staggered order —
// destination (me+i)%P at step i — which keeps every destination served by
// exactly one sender at a time; each processor finishes after receiving its
// n/P - n/P^2 incoming rows.
type FFTRemap struct {
	n, tag int

	// Blocked[p] is processor p's slice of the blocked layout after the
	// remap: Blocked[p][i] holds row p*(n/P)+i.
	Blocked [][]float64
	got     []int
}

// rowVal is the payload carried for a row: self-identifying, so the digest
// can verify every row landed at its blocked position.
func rowVal(r int) float64 { return float64(r) }

// NewFFTRemap builds the remap of n points; n must be a positive multiple
// of P*P (each sender-destination chunk is n/P^2 rows).
func NewFFTRemap(p, n, tag int) *FFTRemap {
	return &FFTRemap{n: n, tag: tag, Blocked: make([][]float64, p), got: make([]int, p)}
}

// Start implements logp.Program.
func (f *FFTRemap) Start(n logp.Node) {
	P := n.P()
	me := n.ID()
	local := f.n / P
	perDest := f.n / (P * P)
	if cap(f.Blocked[me]) < local {
		f.Blocked[me] = make([]float64, local)
	}
	f.Blocked[me] = f.Blocked[me][:local]
	for i := range f.Blocked[me] {
		f.Blocked[me][i] = -1
	}
	f.got[me] = 0
	// Own chunk moves locally.
	for t := 0; t < perDest; t++ {
		j := me*perDest + t
		r := j*P + me
		f.Blocked[me][r%local] = rowVal(r)
	}
	for i := 1; i < P; i++ {
		d := (me + i) % P
		for t := 0; t < perDest; t++ {
			j := d*perDest + t
			r := j*P + me
			n.Send(d, f.tag, remapPoint{Row: r, V: rowVal(r)})
		}
	}
	if local == perDest { // P == 1: nothing inbound
		n.Done()
	}
}

// Message implements logp.Program.
func (f *FFTRemap) Message(n logp.Node, m logp.Message) {
	P := n.P()
	me := n.ID()
	local := f.n / P
	pt := m.Data.(remapPoint)
	f.Blocked[me][pt.Row%local] = pt.V
	f.got[me]++
	if f.got[me] == local-local/P {
		n.Done()
	}
}

// Placed counts the rows sitting at their correct blocked position.
func (f *FFTRemap) Placed() int {
	placed := 0
	for p, chunk := range f.Blocked {
		local := len(chunk)
		for i, v := range chunk {
			if v == rowVal(p*local+i) {
				placed++
			}
		}
	}
	return placed
}
