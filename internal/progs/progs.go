// Package progs ports the paper's benchmark algorithms to the reactive
// logp.Program form, so one implementation runs on every registered engine
// (the goroutine machine and the flat core) and cross-engine equivalence
// tests can pin the engines cycle-identical against each other.
//
// Each program is handler-structured: Start seeds the computation, Message
// reacts to one arrival. All mutable state is confined to per-processor
// slots (a sharded engine runs handlers of different processors
// concurrently), and result fields are written by a single processor's
// handler and read only after the run. Every Start re-initialises its
// processor's state, so one program value can be run repeatedly — in
// particular on a reused flat.Machine, whose Run replays the whole run
// without reallocating.
package progs

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// PingPong bounces a message between processors 0 and 1 for a number of
// rounds; each half-trip costs the model's 2o+L end-to-end time. Processors
// other than 0 and 1 finish immediately.
type PingPong struct {
	rounds int
	tag    int
	count  [2]int
}

// NewPingPong builds a ping-pong of the given number of round trips (>= 1).
func NewPingPong(rounds, tag int) *PingPong {
	if rounds < 1 {
		panic(fmt.Sprintf("progs: ping-pong rounds %d < 1", rounds))
	}
	return &PingPong{rounds: rounds, tag: tag}
}

// Start implements logp.Program.
func (pp *PingPong) Start(n logp.Node) {
	switch n.ID() {
	case 0:
		pp.count[0] = 0
		n.Send(1, pp.tag, nil)
	case 1:
		pp.count[1] = 0
	default:
		n.Done()
	}
}

// Message implements logp.Program.
func (pp *PingPong) Message(n logp.Node, m logp.Message) {
	switch n.ID() {
	case 0:
		pp.count[0]++
		if pp.count[0] < pp.rounds {
			n.Send(1, pp.tag, nil)
		} else {
			n.Done()
		}
	case 1:
		pp.count[1]++
		n.Send(0, pp.tag, m.Data)
		if pp.count[1] == pp.rounds {
			n.Done()
		}
	}
}

// Rounds reports the completed round trips (for post-run assertions).
func (pp *PingPong) Rounds() int { return pp.count[0] }

// Broadcast executes the optimal broadcast schedule of Figure 3: the
// handler port of collective.Broadcast. Every non-root processor receives
// the datum exactly once and retransmits per the schedule.
type Broadcast struct {
	sched *core.BroadcastSchedule
	tag   int
	data  any

	// Got[i] is the datum as received at processor i (set at the root too).
	Got []any
}

// NewBroadcast builds the broadcast program for a schedule.
func NewBroadcast(s *core.BroadcastSchedule, tag int, data any) *Broadcast {
	return &Broadcast{sched: s, tag: tag, data: data, Got: make([]any, s.Params.P)}
}

// Start implements logp.Program.
func (b *Broadcast) Start(n logp.Node) {
	if n.P() != b.sched.Params.P {
		panic(fmt.Sprintf("progs: schedule for P=%d on machine with P=%d", b.sched.Params.P, n.P()))
	}
	me := n.ID()
	b.Got[me] = nil
	if me != b.sched.Root {
		return // wait for the parent's message
	}
	b.Got[me] = b.data
	for _, ev := range b.sched.Sends[me] {
		n.Send(ev.Child, b.tag, b.data)
	}
	n.Done()
}

// Message implements logp.Program.
func (b *Broadcast) Message(n logp.Node, m logp.Message) {
	me := n.ID()
	b.Got[me] = m.Data
	for _, ev := range b.sched.Sends[me] {
		n.Send(ev.Child, b.tag, m.Data)
	}
	n.Done()
}

// sumState is one processor's slot of the Sum program.
type sumState struct {
	sum       float64
	remaining []float64
	recvLeft  int64
}

// Sum executes the optimal summation schedule of Figure 4: the handler port
// of collective.SumOptimal, charging the identical interleave of local
// additions and receptions (an initial chain, then per reception one add
// and g-o-1 chained additions between receptions).
type Sum struct {
	sched    *core.SumSchedule
	tag      int
	inputs   [][]float64
	betweens int64
	st       []sumState

	// Root is the global sum at the schedule root; RootOK is set when the
	// root finished.
	Root   float64
	RootOK bool
}

// NewSum builds the summation program for a schedule; inputs is the
// per-processor distribution from collective.DistributeInputs.
func NewSum(s *core.SumSchedule, tag int, inputs [][]float64) *Sum {
	period := s.Params.G
	if period < s.Params.O+1 {
		period = s.Params.O + 1
	}
	return &Sum{
		sched:    s,
		tag:      tag,
		inputs:   inputs,
		betweens: period - s.Params.O - 1,
		st:       make([]sumState, s.Params.P),
	}
}

// chain performs cnt local additions eagerly and records their cost.
func (s *Sum) chain(st *sumState, n logp.Node, cnt int64) {
	for i := int64(0); i < cnt; i++ {
		st.sum += st.remaining[0]
		st.remaining = st.remaining[1:]
	}
	n.Compute(cnt)
}

// Start implements logp.Program.
func (s *Sum) Start(n logp.Node) {
	me := n.ID()
	node := s.sched.ByProc[me]
	if node == nil {
		n.Done() // pruned processor: not part of the schedule
		return
	}
	local := s.inputs[me]
	if len(local) != node.LocalInputs {
		panic(fmt.Sprintf("progs: proc %d given %d inputs, schedule says %d", me, len(local), node.LocalInputs))
	}
	if node.Parent == nil {
		s.Root, s.RootOK = 0, false
	}
	st := &s.st[me]
	st.sum = local[0]
	st.remaining = local[1:]
	k := int64(len(node.Children))
	if k == 0 {
		s.chain(st, n, int64(len(st.remaining)))
		s.finish(st, n, node)
		return
	}
	initial := int64(len(st.remaining)) - (k-1)*s.betweens
	if initial < 0 {
		panic(fmt.Sprintf("progs: proc %d schedule underflow (initial=%d)", me, initial))
	}
	s.chain(st, n, initial)
	st.recvLeft = k
}

// Message implements logp.Program.
func (s *Sum) Message(n logp.Node, m logp.Message) {
	me := n.ID()
	st := &s.st[me]
	st.sum += m.Data.(float64)
	n.Compute(1)
	st.recvLeft--
	if st.recvLeft > 0 {
		s.chain(st, n, s.betweens)
		return
	}
	s.finish(st, n, s.sched.ByProc[me])
}

func (s *Sum) finish(st *sumState, n logp.Node, node *core.SumNode) {
	if node.Parent != nil {
		n.Send(node.Parent.Proc, s.tag, st.sum)
	} else {
		s.Root, s.RootOK = st.sum, true
	}
	n.Done()
}

// chainState is one processor's slot of the pipelined broadcasts.
type chainState struct {
	next int
	got  int
}

// PipelinedChain streams m values from root through the linear chain
// root -> root+1 -> ... -> root+P-1 (mod P): the handler port of
// collective.PipelinedChainBroadcast.
type PipelinedChain struct {
	root, tag, m int
	values       func(i int) any
	st           []chainState

	// Out[p][i] is the i-th value as seen at processor p.
	Out [][]any
}

// NewPipelinedChain builds the chain broadcast of m values, with values(i)
// producing the i-th value at the root.
func NewPipelinedChain(p, root, tag, m int, values func(i int) any) *PipelinedChain {
	c := &PipelinedChain{root: root, tag: tag, m: m, values: values,
		st: make([]chainState, p), Out: outMatrix(p, m)}
	return c
}

// outMatrix carves the p-by-(up to m) output rows from one arena: each row
// has capacity m exactly, so appends never reallocate and constructing a
// million-processor program is one allocation, not one per processor.
func outMatrix(p, m int) [][]any {
	rows := make([][]any, p)
	arena := make([]any, p*m)
	for i := range rows {
		rows[i] = arena[i*m : i*m : (i+1)*m]
	}
	return rows
}

// Start implements logp.Program.
func (c *PipelinedChain) Start(n logp.Node) {
	P := n.P()
	me := n.ID()
	pos := (me - c.root + P) % P
	c.Out[me] = c.Out[me][:0]
	st := &c.st[me]
	st.got = 0
	st.next = -1
	if pos < P-1 {
		st.next = (me + 1) % P
	}
	if pos != 0 {
		return
	}
	for i := 0; i < c.m; i++ {
		v := c.values(i)
		c.Out[me] = append(c.Out[me], v)
		if st.next >= 0 {
			n.Send(st.next, c.tag, v)
		}
	}
	n.Done()
}

// Message implements logp.Program.
func (c *PipelinedChain) Message(n logp.Node, m logp.Message) {
	me := n.ID()
	st := &c.st[me]
	c.Out[me] = append(c.Out[me], m.Data)
	if st.next >= 0 {
		n.Send(st.next, c.tag, m.Data)
	}
	st.got++
	if st.got == c.m {
		n.Done()
	}
}

// binState is one processor's slot of PipelinedBinomial.
type binState struct {
	children []int
	got      int
}

// PipelinedBinomial streams m values down the binomial broadcast tree: the
// handler port of collective.PipelinedBinomialBroadcast.
type PipelinedBinomial struct {
	root, tag, m int
	values       func(i int) any
	st           []binState

	// The broadcast tree is static, so every rank's child list is carved
	// from one arena at construction (p-1 edges total) instead of being
	// allocated per processor at Start.
	kidArena []int
	kidOffs  []int32

	// Out[p][i] is the i-th value as seen at processor p.
	Out [][]any
}

// NewPipelinedBinomial builds the binomial broadcast of m values.
func NewPipelinedBinomial(p, root, tag, m int, values func(i int) any) *PipelinedBinomial {
	b := &PipelinedBinomial{root: root, tag: tag, m: m, values: values,
		st: make([]binState, p), Out: outMatrix(p, m)}
	b.kidArena = make([]int, 0, p-1+1)
	b.kidOffs = make([]int32, p+1)
	for r := 0; r < p; r++ {
		b.kidArena = appendBinomialChildren(b.kidArena, r, root, p)
		b.kidOffs[r+1] = int32(len(b.kidArena))
	}
	return b
}

// appendBinomialChildren mirrors collective.binomialChildren: the children
// of relative rank r sit below the bit it joined on, largest first.
func appendBinomialChildren(dst []int, r, root, P int) []int {
	joinMask := 1
	for joinMask < P && r&joinMask == 0 {
		joinMask <<= 1
	}
	for mask := joinMask >> 1; mask > 0; mask >>= 1 {
		if d := r + mask; d < P {
			dst = append(dst, (d+root)%P)
		}
	}
	return dst
}

// Start implements logp.Program.
func (b *PipelinedBinomial) Start(n logp.Node) {
	P := n.P()
	me := n.ID()
	r := (me - b.root + P) % P
	b.Out[me] = b.Out[me][:0]
	st := &b.st[me]
	st.got = 0
	st.children = b.kidArena[b.kidOffs[r]:b.kidOffs[r+1]]
	if r != 0 {
		return
	}
	for i := 0; i < b.m; i++ {
		v := b.values(i)
		b.Out[me] = append(b.Out[me], v)
		for _, c := range st.children {
			n.Send(c, b.tag, v)
		}
	}
	n.Done()
}

// Message implements logp.Program.
func (b *PipelinedBinomial) Message(n logp.Node, m logp.Message) {
	me := n.ID()
	st := &b.st[me]
	b.Out[me] = append(b.Out[me], m.Data)
	for _, c := range st.children {
		n.Send(c, b.tag, m.Data)
	}
	st.got++
	if st.got == b.m {
		n.Done()
	}
}

// AllToAll is the saturation workload of Section 4.1.2 in handler form:
// every processor sends perDst messages to every other processor (in naive
// or staggered destination order, with workPerMsg cycles of local work
// before each send) and finishes after receiving its perDst*(P-1) incoming
// messages. Unlike the blocking collective.AllToAll, the handler form
// records all sends up front and lets arrivals queue at the inbox; the
// reception interleave is then driven entirely by the model's gap and
// overhead charges.
type AllToAll struct {
	perDst    int
	work      int64
	tag       int
	staggered bool

	// Received[p] counts messages received at p.
	Received []int
}

// NewAllToAll builds the exchange: perDst messages to each of the other
// P-1 processors, staggered or naive destination order.
func NewAllToAll(p, perDst int, work int64, tag int, staggered bool) *AllToAll {
	return &AllToAll{perDst: perDst, work: work, tag: tag, staggered: staggered,
		Received: make([]int, p)}
}

// Start implements logp.Program.
func (a *AllToAll) Start(n logp.Node) {
	P := n.P()
	me := n.ID()
	a.Received[me] = 0
	if a.staggered {
		for i := 1; i < P; i++ {
			a.sendTo(n, (me+i)%P)
		}
	} else {
		for d := 0; d < P; d++ {
			if d != me {
				a.sendTo(n, d)
			}
		}
	}
	if a.perDst*(P-1) == 0 {
		n.Done()
	}
}

func (a *AllToAll) sendTo(n logp.Node, dst int) {
	for k := 0; k < a.perDst; k++ {
		if a.work > 0 {
			n.Compute(a.work)
		}
		n.Send(dst, a.tag, nil)
	}
}

// Message implements logp.Program.
func (a *AllToAll) Message(n logp.Node, m logp.Message) {
	me := n.ID()
	a.Received[me]++
	if a.Received[me] == a.perDst*(n.P()-1) {
		n.Done()
	}
}
