package flat_test

import (
	"bytes"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/sim"
)

// shardedConfig is a machine the sharded core accepts: capacity disabled, no
// jitter, no faults, no trace or profiler.
func shardedConfig(p int) logp.Config {
	return logp.Config{
		Params:          core.Params{P: p, L: 8, O: 2, G: 3},
		DisableCapacity: true,
	}
}

// clearTransit zeroes the in-transit high-water marks, which sharded runs do
// not track (documented in flat.New): the rest of the Result must agree.
func clearTransit(r logp.Result) logp.Result {
	r.MaxInTransitFrom, r.MaxInTransitTo = 0, 0
	return r
}

// TestShardedMatchesSequential pins the windowed core against the sequential
// flat core (and transitively the goroutine machine) on the ported
// benchmarks: identical times, stats, and message counts for every shard
// count that divides the run differently.
func TestShardedMatchesSequential(t *testing.T) {
	cases := []struct {
		name string
		p    int
		mk   func(p int) logp.Program
	}{
		{"broadcast", 32, func(p int) logp.Program {
			s, err := core.OptimalBroadcast(core.Params{P: p, L: 8, O: 2, G: 3}, 0)
			if err != nil {
				t.Fatal(err)
			}
			return newBroadcast(s, 1, "datum")
		}},
		{"pingpong", 16, func(p int) logp.Program { return newPingPong(12) }},
		{"alltoall", 12, func(p int) logp.Program { return newAllToAll(p, 3, 1, 2, true) }},
		{"chain", 24, func(p int) logp.Program { return newChain(p, 0, 3, 6, func(i int) any { return i }) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := shardedConfig(tc.p)
			seq, err := flat.Run(cfg, tc.mk(tc.p), 1)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			gor, err := logp.RunProgram(cfg, tc.mk(tc.p))
			if err != nil {
				t.Fatalf("goroutine: %v", err)
			}
			if !reflect.DeepEqual(seq, gor) {
				t.Errorf("flat(1) vs goroutine differ:\n flat:      %+v\n goroutine: %+v", seq, gor)
			}
			want := clearTransit(seq)
			for _, shards := range []int{2, 3, 4, 8} {
				got, err := flat.Run(cfg, tc.mk(tc.p), shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !reflect.DeepEqual(clearTransit(got), want) {
					t.Errorf("shards=%d differs from sequential:\n sharded:    %+v\n sequential: %+v",
						shards, clearTransit(got), want)
				}
			}
		})
	}
}

// TestShardedBitDeterminism: at a fixed shard count, the run — Result,
// Prometheus text, and the sample series — is bit-identical for every
// GOMAXPROCS setting. This is the determinism contract of the windowed core:
// OS-thread scheduling must not be observable.
func TestShardedBitDeterminism(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	p := 24
	s, err := core.OptimalBroadcast(core.Params{P: p, L: 8, O: 2, G: 3}, 0)
	if err != nil {
		t.Fatal(err)
	}
	run := func() (logp.Result, []byte, []metrics.Sample) {
		cfg := shardedConfig(p)
		reg := metrics.NewRegistry()
		cfg.Metrics = reg
		cfg.MetricsEvery = 16
		res, err := flat.Run(cfg, newBroadcast(s, 1, "datum"), 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := metrics.WritePrometheus(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes(), append([]metrics.Sample(nil), reg.Samples...)
	}

	runtime.GOMAXPROCS(1)
	res1, prom1, samp1 := run()
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		res, prom, samp := run()
		if !reflect.DeepEqual(res, res1) {
			t.Errorf("GOMAXPROCS=%d: Result differs from GOMAXPROCS=1", procs)
		}
		if !bytes.Equal(prom, prom1) {
			t.Errorf("GOMAXPROCS=%d: Prometheus text differs from GOMAXPROCS=1", procs)
		}
		if !reflect.DeepEqual(samp, samp1) {
			t.Errorf("GOMAXPROCS=%d: sample series differs from GOMAXPROCS=1", procs)
		}
	}
}

// parkAhead is the regression program for a send whose overhead park spans
// a window barrier: proc 0 idles, then sends to proc 1, so the o-cycle park
// of the send crosses the window boundary at o+L past the global minimum;
// proc 1 advances its own clock (WaitUntil / Wait / Compute, by mode)
// before receiving, so its shard runs ahead of the late delivery. Every
// other processor finishes immediately, padding the machine so partitions
// place sender and receiver on different shards.
type parkAhead struct {
	idle  int64 // proc 0: Wait before the send
	mode  int   // proc 1: 0 WaitUntil(ahead), 1 Wait(ahead), 2 Compute(ahead)
	ahead int64
}

func (pa *parkAhead) Start(n logp.Node) {
	switch n.ID() {
	case 0:
		n.Wait(pa.idle)
		n.Send(1, 7, "late")
		n.Done()
	case 1:
		switch pa.mode {
		case 0:
			n.WaitUntil(pa.ahead)
		case 1:
			n.Wait(pa.ahead)
		default:
			n.Compute(pa.ahead)
		}
	default:
		n.Done()
	}
}

func (pa *parkAhead) Message(n logp.Node, m logp.Message) { n.Done() }

// TestShardedSendParkSpansBarrier pins the lookahead soundness fix: a send
// that paid its overhead across a window barrier has only L (not o+L)
// cycles of lookahead left when its wake fires, so its cross-shard delivery
// must be buffered at park time, not at injection. Before the fix the
// sharded core scheduled the delivery in the destination shard's past and
// panicked ("scheduling event at t before current time"); the exact
// reproduction is P=2, o=3, L=1, g=4 with proc 0 Wait(3)+Send and proc 1
// WaitUntil(9).
func TestShardedSendParkSpansBarrier(t *testing.T) {
	cases := []struct {
		name   string
		p      int
		params core.Params
		prog   parkAhead
		shards []int
	}{
		{"waituntil-repro", 2, core.Params{P: 2, L: 1, O: 3, G: 4},
			parkAhead{idle: 3, mode: 0, ahead: 9}, []int{2}},
		{"wait-ahead", 2, core.Params{P: 2, L: 1, O: 3, G: 4},
			parkAhead{idle: 3, mode: 1, ahead: 9}, []int{2}},
		{"compute-ahead", 2, core.Params{P: 2, L: 1, O: 3, G: 4},
			parkAhead{idle: 3, mode: 2, ahead: 9}, []int{2}},
		{"zero-latency", 2, core.Params{P: 2, L: 0, O: 3, G: 4},
			parkAhead{idle: 3, mode: 0, ahead: 9}, []int{2}},
		{"wide-machine", 8, core.Params{P: 8, L: 1, O: 3, G: 4},
			parkAhead{idle: 3, mode: 0, ahead: 9}, []int{2, 3, 4, 8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := logp.Config{Params: tc.params, DisableCapacity: true}
			pa := tc.prog
			seq, err := flat.Run(cfg, &pa, 1)
			if err != nil {
				t.Fatalf("sequential: %v", err)
			}
			gor, err := logp.RunProgram(cfg, &pa)
			if err != nil {
				t.Fatalf("goroutine: %v", err)
			}
			if !reflect.DeepEqual(seq, gor) {
				t.Errorf("flat(1) vs goroutine differ:\n flat:      %+v\n goroutine: %+v", seq, gor)
			}
			want := clearTransit(seq)
			for _, shards := range tc.shards {
				got, err := flat.Run(cfg, &pa, shards)
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				if !reflect.DeepEqual(clearTransit(got), want) {
					t.Errorf("shards=%d differs from sequential:\n sharded:    %+v\n sequential: %+v",
						shards, clearTransit(got), want)
				}
			}
		})
	}
}

// TestShardedRejectsUnsupportedConfig: the windowed core refuses
// configurations whose cross-shard safety argument does not hold.
func TestShardedRejectsUnsupportedConfig(t *testing.T) {
	base := shardedConfig(8)
	cases := []struct {
		name   string
		mutate func(*logp.Config)
	}{
		{"trace", func(c *logp.Config) { c.CollectTrace = true }},
		{"latency-jitter", func(c *logp.Config) { c.LatencyJitter = 3 }},
		{"compute-jitter", func(c *logp.Config) { c.ComputeJitter = 0.5 }},
		{"drop-faults", func(c *logp.Config) { c.Faults = &logp.FaultPlan{Default: logp.LinkFault{Drop: 0.1}} }},
		{"dup-faults", func(c *logp.Config) { c.Faults = &logp.FaultPlan{Default: logp.LinkFault{Dup: 0.1}} }},
		{"jitter-faults", func(c *logp.Config) { c.Faults = &logp.FaultPlan{Default: logp.LinkFault{Jitter: 2}} }},
		{"slowdown-faults", func(c *logp.Config) {
			c.Faults = &logp.FaultPlan{Slowdowns: []logp.Slowdown{{Proc: 0, Start: 0, End: 10, Factor: 2}}}
		}},
		{"zero-lookahead-nocap", func(c *logp.Config) { c.Params.L, c.Params.O, c.Params.G = 0, 0, 1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := flat.Run(cfg, newPingPong(2), 2); err == nil {
				t.Errorf("sharded run accepted unsupported config %q", tc.name)
			}
		})
	}
	// Capacity mode and fail-stop-only fault plans are supported under
	// sharding (via the window ledger and victim-shard kill events).
	accepts := []struct {
		name   string
		mutate func(*logp.Config)
	}{
		{"capacity", func(c *logp.Config) { c.DisableCapacity = false }},
		{"capacity-zero-lookahead", func(c *logp.Config) {
			c.DisableCapacity = false
			c.Params.L, c.Params.O, c.Params.G = 0, 0, 1
		}},
		{"fail-stop-faults", func(c *logp.Config) {
			c.Faults = &logp.FaultPlan{FailStops: []logp.FailStop{{Proc: 3, At: 1000}}}
		}},
	}
	for _, tc := range accepts {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			if _, err := flat.Run(cfg, newPingPong(2), 2); err != nil {
				t.Errorf("sharded run rejected supported config %q: %v", tc.name, err)
			}
		})
	}
	// The rejected configs are fine on one shard.
	cfg := base
	cfg.CollectTrace = true
	if _, err := flat.Run(cfg, newPingPong(2), 1); err != nil {
		t.Errorf("sequential flat rejected supported config: %v", err)
	}
}

// TestFlatMetricsDeadlockStillDetected is the flat-core mirror of the
// goroutine regression test: an attached metrics sampler must not keep the
// event queue non-quiescent forever and mask a deadlock.
func TestFlatMetricsDeadlockStillDetected(t *testing.T) {
	for _, shards := range []int{1, 2} {
		cfg := logp.Config{
			Params:          core.Params{P: 2, L: 8, O: 2, G: 3},
			DisableCapacity: true,
			Metrics:         metrics.NewRegistry(),
			MetricsEvery:    4,
		}
		// Proc 1 expects a message nobody sends.
		_, err := flat.Run(cfg, newRingExpect(0, []int{0, 1}), shards)
		var dl *sim.DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("shards=%d: want DeadlockError, got %v", shards, err)
		}
		if len(dl.Blocked) != 1 || dl.Blocked[0] != "proc1" {
			t.Errorf("shards=%d: blocked = %v, want [proc1]", shards, dl.Blocked)
		}
	}
}
