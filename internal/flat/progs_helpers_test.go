package flat_test

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/progs"
)

// Thin constructors so the equivalence tests read as scenarios, not
// argument lists.

func newPingPong(rounds int) logp.Program { return progs.NewPingPong(rounds, 1) }

func newBroadcast(s *core.BroadcastSchedule, tag int, data any) logp.Program {
	return progs.NewBroadcast(s, tag, data)
}

func newSum(s *core.SumSchedule, tag int, inputs [][]float64) logp.Program {
	return progs.NewSum(s, tag, inputs)
}

func checkSumRoot(t *testing.T, engine string, p logp.Program, want float64) {
	t.Helper()
	s := p.(*progs.Sum)
	if !s.RootOK {
		t.Errorf("%s: summation root never finished", engine)
	} else if s.Root != want {
		t.Errorf("%s: root sum %v, want %v", engine, s.Root, want)
	}
}

func newChain(p, root, tag, m int, values func(i int) any) logp.Program {
	return progs.NewPipelinedChain(p, root, tag, m, values)
}

func newBinomial(p, root, tag, m int, values func(i int) any) logp.Program {
	return progs.NewPipelinedBinomial(p, root, tag, m, values)
}

func newAllToAll(p, perDst int, work int64, tag int, staggered bool) logp.Program {
	return progs.NewAllToAll(p, perDst, work, tag, staggered)
}

// ringExpect streams msgs messages to the ring successor and finishes after
// expect[me] receptions. Expectation counts are supplied by the test, which
// knows the fault plan (a processor downstream of a fail-stopped one must
// expect zero).
type ringExpect struct {
	msgs   int
	expect []int
	got    []int
}

func newRingExpect(msgs int, expect []int) *ringExpect {
	return &ringExpect{msgs: msgs, expect: expect, got: make([]int, len(expect))}
}

func (r *ringExpect) Start(n logp.Node) {
	me := n.ID()
	r.got[me] = 0 // self-resetting: safe to re-Run on a reused Machine
	next := (me + 1) % n.P()
	for i := 0; i < r.msgs; i++ {
		n.Send(next, 0, nil)
	}
	if r.expect[me] == 0 {
		n.Done()
	}
}

func (r *ringExpect) Message(n logp.Node, m logp.Message) {
	me := n.ID()
	r.got[me]++
	if r.got[me] == r.expect[me] {
		n.Done()
	}
}
