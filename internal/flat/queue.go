package flat

import (
	"fmt"

	"github.com/logp-model/logp/internal/logp"
)

// Event kinds. A wake resumes a processor's continuation, a deliver
// completes a message flight, an arrive finishes a delivery that was
// deferred past a capacity grant (capacity-sharded runs; bookkeeping
// already settled), a fail executes a fail-stop, a sample fires the
// metrics sampler (single-shard runs only).
const (
	evWake uint8 = iota
	evDeliver
	evArrive
	evFail
	evSample
)

// event is one scheduled occurrence in full: the form cross-shard outboxes
// carry. Inside a queue, events are stored as pointer-free ents with deliver
// payloads parked in the arena.
type event struct {
	t    int64
	seq  uint64
	kind uint8
	drop bool  // evDeliver: the fault layer loses the message at arrival
	proc int32 // target processor (wake/fail) or destination (deliver)
	// evDeliver payload.
	flight int64 // network latency drawn for this copy (metrics)
	msg    logp.Message
}

// ent is the in-queue representation: 32 pointer-free bytes, so queue
// operations move quarter-size entries with no write barriers and the
// garbage collector never scans the queue. Deliver payloads (the only part
// of an event with pointers) live out-of-line in the queue's arena,
// referenced by index.
type ent struct {
	t    int64
	seq  uint64
	proc int32
	idx  int32 // arena slot of the deliver payload; -1 for payload-free kinds
	kind uint8
	drop bool
}

// payload is the out-of-line part of an evDeliver event.
type payload struct {
	flight int64
	msg    logp.Message
}

// entLess orders entries by (time, sequence), exactly as the sim kernel
// does, so same-instant ties break in scheduling order.
func entLess(a, b *ent) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// The near-future timing wheel: one bucket per cycle, wheelSize cycles
// ahead. LogP events overwhelmingly land within o + g + L of the current
// time, so almost every schedule is a bucket append and almost every pop a
// bucket read — no sift compares. Events beyond the horizon overflow to the
// 4-ary heap and migrate into the wheel as the clock approaches.
const (
	wheelBits = 7
	wheelSize = 1 << wheelBits
	wheelMask = wheelSize - 1
)

// queue is one shard's event queue. Dispatch order is exactly (time, seq) —
// the same total order as the sim kernel's heap + same-instant FIFO — which
// is what keeps the flat engine cycle-identical to the goroutine machine:
// the two runs make scheduling calls in the same order, so same-instant
// ties break identically.
//
// Representation invariants: every wheel entry has now <= t < now+wheelSize,
// so bucket t&wheelMask collides with nothing and the bucket for the current
// instant holds exactly the t == now events, in seq order (appends are
// seq-ordered; heap migrations insert by seq). The heap holds only entries
// with t >= now + wheelSize at their scheduling time; popNext migrates them
// into the wheel before the clock reaches them.
type queue struct {
	now      int64
	deadline int64 // bound for in-place clock advances (window end - 1)
	seq      uint64
	count    int // unconsumed wheel entries across all buckets
	heads    [wheelSize]int32
	wheel    [wheelSize][]ent
	heap     []ent // overflow: events past the wheel horizon
	arena    []payload
	free     []int32
	rec      *ShardStat // flight-recorder hook; nil when the recorder is off
}

// allocPayload reserves an arena slot, recycling freed ones.
func (q *queue) allocPayload() int32 {
	if n := len(q.free); n > 0 {
		i := q.free[n-1]
		q.free = q.free[:n-1]
		return i
	}
	q.arena = append(q.arena, payload{})
	return int32(len(q.arena) - 1)
}

// freePayload recycles a delivery's arena slot once its message has been
// consumed, dropping the payload reference so the GC does not retain it.
func (q *queue) freePayload(i int32) {
	q.arena[i].msg.Data = nil
	q.free = append(q.free, i)
}

// insert places an entry in the wheel or, past the horizon, the heap.
func (q *queue) insert(e ent) {
	if e.t-q.now >= wheelSize {
		if q.rec != nil {
			q.rec.HeapEvents++
		}
		q.pushHeap(e)
		return
	}
	if q.rec != nil {
		q.rec.WheelEvents++
	}
	s := int(e.t) & wheelMask
	if h := q.heads[s]; h != 0 && h == int32(len(q.wheel[s])) {
		q.wheel[s] = q.wheel[s][:0]
		q.heads[s] = 0
	}
	q.wheel[s] = append(q.wheel[s], e)
	q.count++
}

// migrate moves a heap entry into the wheel once its time is within the
// horizon, inserting by seq: earlier-scheduled (heap) entries precede the
// bucket's direct appends at the same instant, exactly as (t, seq) demands.
//
// popNext drains due heap entries in (t, seq) order, so a burst of events
// sharing an instant migrates as a seq-ascending run: each lands after the
// bucket's current tail and the append fast path makes the whole run linear.
// Without it the insertion scan walks the run-so-far every time, which is
// quadratic exactly when it hurts — a broadcast frontier of 10^5+ deliveries
// buffered for one instant beyond the horizon. The scan survives only for
// the rare out-of-order case: a barrier merge direct-appended a larger-seq
// entry to the bucket before the migration caught up.
func (q *queue) migrate(e ent) {
	s := int(e.t) & wheelMask
	if h := q.heads[s]; h != 0 && h == int32(len(q.wheel[s])) {
		q.wheel[s] = q.wheel[s][:0]
		q.heads[s] = 0
	}
	if n := len(q.wheel[s]); n == int(q.heads[s]) || q.wheel[s][n-1].seq < e.seq {
		q.wheel[s] = append(q.wheel[s], e)
		q.count++
		return
	}
	sl := append(q.wheel[s], ent{})
	i := int(q.heads[s])
	for i < len(sl)-1 && sl[i].seq < e.seq {
		i++
	}
	copy(sl[i+1:], sl[i:])
	sl[i] = e
	q.wheel[s] = sl
	q.count++
}

// schedule queues e at absolute time t, assigning the next sequence number.
func (q *queue) schedule(t int64, e *event) {
	if t < q.now {
		panic(fmt.Sprintf("flat: scheduling event at %d before current time %d", t, q.now))
	}
	q.seq++
	en := ent{t: t, seq: q.seq, proc: e.proc, idx: -1, kind: e.kind, drop: e.drop}
	if e.kind == evDeliver {
		i := q.allocPayload()
		p := &q.arena[i]
		p.flight = e.flight
		p.msg = e.msg
		en.idx = i
	}
	q.insert(en)
}

// scheduleAt queues a payload-free event (wake, fail, sample) at time t.
// This is the hot scheduling path — parks and wakes — and never touches the
// full event struct or the arena.
func (q *queue) scheduleAt(t int64, kind uint8, proc int32) {
	if t < q.now {
		panic(fmt.Sprintf("flat: scheduling event at %d before current time %d", t, q.now))
	}
	q.seq++
	q.insert(ent{t: t, seq: q.seq, proc: proc, idx: -1, kind: kind})
}

// scheduleDeliver queues a shard-local delivery from its pieces, writing the
// payload straight into the arena with no intermediate event value.
func (q *queue) scheduleDeliver(t int64, proc int32, msg *logp.Message, flight int64, drop bool) {
	if t < q.now {
		panic(fmt.Sprintf("flat: scheduling event at %d before current time %d", t, q.now))
	}
	q.seq++
	i := q.allocPayload()
	p := &q.arena[i]
	p.flight = flight
	p.msg = *msg
	q.insert(ent{t: t, seq: q.seq, proc: proc, idx: i, kind: evDeliver, drop: drop})
}

// scheduleArrive queues the deferred completion of a delivery whose settle,
// release and metrics decisions belong elsewhere (see heldEvent): only the
// inbox push, the delivery metrics and the receiver wake remain at dispatch.
func (q *queue) scheduleArrive(t int64, proc int32, msg *logp.Message, flight int64) {
	if t < q.now {
		panic(fmt.Sprintf("flat: scheduling event at %d before current time %d", t, q.now))
	}
	q.seq++
	i := q.allocPayload()
	p := &q.arena[i]
	p.flight = flight
	p.msg = *msg
	q.insert(ent{t: t, seq: q.seq, proc: proc, idx: i, kind: evArrive})
}

// pushHeap inserts e into the 4-ary overflow heap (sift-up with a hole).
func (q *queue) pushHeap(e ent) {
	h := append(q.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !entLess(&e, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	q.heap = h
}

// popHeap removes and returns the minimum heap entry.
func (q *queue) popHeap() ent {
	h := q.heap
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if entLess(&h[j], &h[best]) {
					best = j
				}
			}
			if !entLess(&h[best], &last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	q.heap = h
	return top
}

// popBucket removes the next entry of bucket s, which must be non-empty.
func (q *queue) popBucket(s int, out *ent) {
	*out = q.wheel[s][q.heads[s]]
	q.heads[s]++
	q.count--
	if q.heads[s] == int32(len(q.wheel[s])) {
		q.wheel[s] = q.wheel[s][:0]
		q.heads[s] = 0
	}
}

// nextAfterNow finds the earliest event time strictly after now: the first
// non-empty wheel bucket ahead (every wheel entry is within the horizon, so
// the scan is bounded by the gap to the next event) or the heap top.
func (q *queue) nextAfterNow() (int64, bool) {
	if q.count > 0 {
		for d := int64(1); d < wheelSize; d++ {
			t := q.now + d
			if s := int(t) & wheelMask; q.heads[s] < int32(len(q.wheel[s])) {
				return t, true
			}
		}
	}
	if len(q.heap) > 0 {
		return q.heap[0].t, true
	}
	return 0, false
}

// popNext fills out with the next event in (time, seq) order, advancing the
// clock, as long as its time is strictly below limit. Events at the current
// instant always run (the window barrier only bounds clock advances).
// Deliver payloads stay in the arena; the dispatcher reads them via out.idx
// and frees the slot when done.
func (q *queue) popNext(limit int64, out *ent) bool {
	if s := int(q.now) & wheelMask; q.heads[s] < int32(len(q.wheel[s])) {
		q.popBucket(s, out)
		return true
	}
	t, ok := q.nextAfterNow()
	if !ok || t >= limit {
		return false
	}
	q.now = t
	for len(q.heap) > 0 && q.heap[0].t-t < wheelSize {
		q.migrate(q.popHeap())
	}
	q.popBucket(int(t)&wheelMask, out)
	return true
}

// rewind moves the clock back to t (<= now) so a window-barrier grant can
// schedule a wake at a sim time the shard already ran past. Every wheel
// bucket whose index falls in [t, now) holds only entries at that index plus
// wheelSize (the wheel invariant pins entries to [now, now+wheelSize), and
// the bucket residues below now wrapped around) — all at least t+wheelSize,
// outside the rewound horizon — so they spill to the overflow heap, from
// which popNext's migration loop recovers them as the clock re-approaches.
// Buckets at indices in [now, t+wheelSize) keep their entries: those times
// stay within the horizon of the new now.
func (q *queue) rewind(t int64) {
	if t >= q.now {
		return
	}
	if q.rec != nil {
		q.rec.Rewinds++
	}
	span := q.now - t
	if span > wheelSize {
		span = wheelSize // all wheelSize buckets covered; further laps revisit them
	}
	for d := int64(0); d < span; d++ {
		s := int(t+d) & wheelMask
		for q.heads[s] < int32(len(q.wheel[s])) {
			var e ent
			q.popBucket(s, &e)
			q.pushHeap(e)
		}
	}
	q.now = t
}

// reset empties the queue and rewinds its clock and sequence counter,
// keeping the capacity of every bucket, the heap and the arena for reuse.
func (q *queue) reset() {
	q.now, q.deadline, q.seq = 0, 0, 0
	for s := range q.wheel {
		q.wheel[s] = q.wheel[s][:0]
		q.heads[s] = 0
	}
	q.count = 0
	q.heap = q.heap[:0]
	for i := range q.arena {
		q.arena[i].msg = logp.Message{}
	}
	q.arena = q.arena[:0]
	q.free = q.free[:0]
}

// pending reports the number of queued events (the kernel's pendingEvents).
func (q *queue) pending() int { return q.count + len(q.heap) }

// nextTime reports the time of the next event, if any.
func (q *queue) nextTime() (int64, bool) {
	if s := int(q.now) & wheelMask; q.heads[s] < int32(len(q.wheel[s])) {
		return q.now, true
	}
	return q.nextAfterNow()
}

// canAdvance reports whether the clock may move to t in place, with no
// event scheduled: the mirror of sim.Process.advance. Valid only when no
// queued event precedes or ties t (the advancing processor is necessarily
// the next dispatch) and t does not cross the active window deadline.
func (q *queue) canAdvance(t int64) bool {
	if t > q.deadline {
		return false
	}
	if s := int(q.now) & wheelMask; q.heads[s] < int32(len(q.wheel[s])) {
		return false
	}
	if len(q.heap) > 0 && q.heap[0].t <= t {
		return false
	}
	if q.count > 0 {
		if t-q.now >= wheelSize {
			return false // every wheel entry is within the horizon, hence <= t
		}
		for d := int64(1); d <= t-q.now; d++ {
			if s := int(q.now+d) & wheelMask; q.heads[s] < int32(len(q.wheel[s])) {
				return false
			}
		}
	}
	return true
}
