package flat_test

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/prof"
	"github.com/logp-model/logp/internal/sim"
)

// The cross-engine determinism contract: the same (program, machine config,
// seed, fault plan) must produce the identical Result — times, stats, trace
// — the identical metrics registry state (pinned via Prometheus text and the
// sample series), and the identical profiler recording (pinned via the
// recorded op streams and the critical-path attribution) on the goroutine
// machine and the flat core.

// runBoth executes a fresh program instance from mk on each engine under
// cfg (with per-engine profiler/metrics attachments when requested) and
// compares everything the run produces.
func runBoth(t *testing.T, name string, cfg logp.Config, mk func() logp.Program, withProf, withMetrics bool) (gRes, fRes logp.Result) {
	t.Helper()
	var gRec, fRec *prof.Recorder
	var gMet, fMet *metrics.Registry
	gCfg, fCfg := cfg, cfg
	if withProf {
		gRec, fRec = prof.NewRecorder(), prof.NewRecorder()
		gCfg.Profiler, fCfg.Profiler = gRec, fRec
	}
	if withMetrics {
		gMet, fMet = metrics.NewRegistry(), metrics.NewRegistry()
		gCfg.Metrics, fCfg.Metrics = gMet, fMet
	}

	gRes, gErr := logp.RunProgram(gCfg, mk())
	fRes, fErr := flat.Run(fCfg, mk(), 1)
	if (gErr == nil) != (fErr == nil) || (gErr != nil && gErr.Error() != fErr.Error()) {
		t.Fatalf("%s: errors differ: goroutine=%v flat=%v", name, gErr, fErr)
	}
	if gErr != nil {
		return gRes, fRes
	}
	if !reflect.DeepEqual(gRes, fRes) {
		t.Errorf("%s: results differ:\n goroutine: %+v\n flat:      %+v", name, gRes, fRes)
	}
	if withProf {
		for p := 0; p < cfg.P; p++ {
			if !reflect.DeepEqual(gRec.Ops(p), fRec.Ops(p)) {
				t.Errorf("%s: recorded ops differ at proc %d:\n goroutine: %+v\n flat:      %+v",
					name, p, gRec.Ops(p), fRec.Ops(p))
			}
		}
		gRun, err1 := gRec.Analyze()
		fRun, err2 := fRec.Analyze()
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: analyze: goroutine=%v flat=%v", name, err1, err2)
		}
		gCP, fCP := gRun.CriticalPath(), fRun.CriticalPath()
		if gCP.String() != fCP.String() {
			t.Errorf("%s: critical paths differ:\n goroutine:\n%s flat:\n%s", name, gCP.String(), fCP.String())
		}
		if ga, fa := gCP.Attribution(), fCP.Attribution(); ga != fa {
			t.Errorf("%s: critical-path attribution differs:\n goroutine: %+v\n flat:      %+v", name, ga, fa)
		}
	}
	if withMetrics {
		var gBuf, fBuf bytes.Buffer
		if err := metrics.WritePrometheus(&gBuf, gMet.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if err := metrics.WritePrometheus(&fBuf, fMet.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gBuf.Bytes(), fBuf.Bytes()) {
			t.Errorf("%s: Prometheus text differs:\n goroutine:\n%s\n flat:\n%s", name, gBuf.String(), fBuf.String())
		}
		if !reflect.DeepEqual(gMet.Samples, fMet.Samples) {
			t.Errorf("%s: sample series differ:\n goroutine: %+v\n flat:      %+v", name, gMet.Samples, fMet.Samples)
		}
	}
	return gRes, fRes
}

func figureParams() core.Params { return core.Params{P: 8, L: 6, O: 2, G: 4} }

func TestEquivPingPong(t *testing.T) {
	cfg := logp.Config{Params: core.Params{P: 2, L: 20, O: 2, G: 4}, CollectTrace: true}
	runBoth(t, "pingpong", cfg, func() logp.Program { return progsPingPong(16) }, true, true)
}

func progsPingPong(rounds int) logp.Program { return newPingPong(rounds) }

func TestEquivOptimalBroadcast(t *testing.T) {
	p := figureParams()
	s, err := core.OptimalBroadcast(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := logp.Config{Params: p, CollectTrace: true}
	g, f := runBoth(t, "broadcast", cfg, func() logp.Program { return newBroadcast(s, 7, "datum") }, true, true)
	// The Figure 3 exactness result must hold on both engines: the run
	// completes at the schedule's Finish plus the final o receive overhead
	// already included in Finish.
	if g.Time != f.Time {
		t.Fatalf("times differ: %d vs %d", g.Time, f.Time)
	}
	if g.Time != s.Finish {
		t.Errorf("broadcast completed at %d, schedule Finish %d", g.Time, s.Finish)
	}
}

func TestEquivOptimalSummation(t *testing.T) {
	p := core.Params{P: 8, L: 6, O: 2, G: 4}
	s, err := core.OptimalSummation(p, 60)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, s.TotalValues)
	total := 0.0
	for i := range values {
		values[i] = float64(i + 1)
		total += values[i]
	}
	inputs, err := collective.DistributeInputs(s, values)
	if err != nil {
		t.Fatal(err)
	}
	cfg := logp.Config{Params: p, CollectTrace: true}
	mkSum := func() logp.Program { return newSum(s, 3, inputs) }

	// Run once per engine, keeping the program to check the root value.
	gProg, fProg := mkSum(), mkSum()
	progs := []logp.Program{gProg, fProg}
	i := 0
	g, f := runBoth(t, "summation", cfg, func() logp.Program { p := progs[i]; i++; return p }, true, true)
	if g.Time != f.Time {
		t.Fatalf("times differ: %d vs %d", g.Time, f.Time)
	}
	if g.Time != s.Deadline {
		t.Errorf("summation completed at %d, schedule deadline %d", g.Time, s.Deadline)
	}
	checkSumRoot(t, "goroutine", gProg, total)
	checkSumRoot(t, "flat", fProg, total)
}

func TestEquivPipelinedCollectives(t *testing.T) {
	p := core.Params{P: 6, L: 12, O: 3, G: 5}
	cfg := logp.Config{Params: p, CollectTrace: true}
	vals := func(i int) any { return i * 10 }
	runBoth(t, "chain", cfg, func() logp.Program { return newChain(p.P, 1, 5, 8, vals) }, true, true)
	runBoth(t, "binomial", cfg, func() logp.Program { return newBinomial(p.P, 2, 6, 7, vals) }, true, true)
}

func TestEquivAllToAllSaturation(t *testing.T) {
	p := core.Params{P: 6, L: 18, O: 2, G: 3}
	// Capacity on: the naive schedule floods destination 0 and stalls on the
	// ceil(L/g) constraint, exercising the semaphore mirror.
	cfg := logp.Config{Params: p, CollectTrace: true}
	g, _ := runBoth(t, "alltoall-naive", cfg, func() logp.Program { return newAllToAll(p.P, 4, 1, 9, false) }, true, true)
	if g.TotalStall() == 0 {
		t.Error("naive all-to-all did not stall: capacity path not exercised")
	}
	runBoth(t, "alltoall-staggered", cfg, func() logp.Program { return newAllToAll(p.P, 4, 1, 9, true) }, true, true)

	hold := cfg
	hold.HoldCapacityUntilReceive = true
	runBoth(t, "alltoall-hold", hold, func() logp.Program { return newAllToAll(p.P, 3, 0, 9, true) }, true, true)
}

func TestEquivJitterSkewSeeded(t *testing.T) {
	p := core.Params{P: 5, L: 20, O: 2, G: 4}
	cfg := logp.Config{
		Params:        p,
		LatencyJitter: 7,
		ComputeJitter: 0.3,
		ProcSkew:      0.2,
		Seed:          12345,
		CollectTrace:  true,
	}
	runBoth(t, "jitter-skew", cfg, func() logp.Program { return newAllToAll(p.P, 3, 2, 5, true) }, true, true)
}

func TestEquivFaultPlan(t *testing.T) {
	p := core.Params{P: 5, L: 20, O: 2, G: 4}
	cfg := logp.Config{
		Params: p,
		Seed:   99,
		Faults: &logp.FaultPlan{
			Seed:    1234,
			Default: logp.LinkFault{Dup: 0.3, Jitter: 9},
			Slowdowns: []logp.Slowdown{
				{Proc: 1, Start: 0, End: 400, Factor: 2.5},
				{Proc: 3, Start: 50, End: 200, Factor: 1.5},
			},
		},
		CollectTrace: true,
	}
	runBoth(t, "faults", cfg, func() logp.Program { return newAllToAll(p.P, 3, 2, 5, true) }, true, true)
}

func TestEquivDeadlockError(t *testing.T) {
	// Every ping dropped: both processors block forever, and the two engines
	// must report the identical deadlock (time, blocked set, formatting).
	cfg := logp.Config{
		Params: core.Params{P: 2, L: 20, O: 2, G: 4},
		Faults: &logp.FaultPlan{Default: logp.LinkFault{Drop: 1}},
	}
	mk := func() logp.Program { return newPingPong(4) }
	_, gErr := logp.RunProgram(cfg, mk())
	_, fErr := flat.Run(cfg, mk(), 1)
	var gDl, fDl *sim.DeadlockError
	if !errors.As(gErr, &gDl) || !errors.As(fErr, &fDl) {
		t.Fatalf("want deadlocks, got goroutine=%v flat=%v", gErr, fErr)
	}
	if gErr.Error() != fErr.Error() {
		t.Errorf("deadlock errors differ:\n goroutine: %v\n flat:      %v", gErr, fErr)
	}
}

func TestEquivFailStop(t *testing.T) {
	// Proc 1 dies mid-exchange; messages to it are dropped, survivors run
	// on. Both engines must agree on the failure bookkeeping. The exchange
	// among survivors still completes because every survivor expects only
	// the messages that can still arrive.
	p := core.Params{P: 4, L: 20, O: 2, G: 4}
	cfg := logp.Config{
		Params: p,
		Faults: &logp.FaultPlan{FailStops: []logp.FailStop{{Proc: 1, At: 0}}},
	}
	// A resilient workload: everyone streams to their ring successor; the
	// processor downstream of the dead one expects nothing, so a dead peer
	// cannot block anyone. (Proc 1 dies before its first send charges, so
	// proc 2 expects zero; sends into proc 1 are dropped on arrival.)
	mk := func() logp.Program { return newRingExpect(6, []int{6, 6, 0, 6}) }
	gRes, gErr := logp.RunProgram(cfg, mk())
	fRes, fErr := flat.Run(cfg, mk(), 1)
	if gErr != nil || fErr != nil {
		t.Fatalf("errors: goroutine=%v flat=%v", gErr, fErr)
	}
	if !reflect.DeepEqual(gRes, fRes) {
		t.Errorf("fail-stop results differ:\n goroutine: %+v\n flat:      %+v", gRes, fRes)
	}
	if len(gRes.Failed) != 1 || gRes.Failed[0] != 1 {
		t.Errorf("Failed = %v, want [1]", gRes.Failed)
	}
}
