package flat

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// TestInboxShrinksAfterBurst pins the cap-aware compaction: a one-off burst
// grows the inbox backing array far past inboxShrinkCap; a long streaming
// phase with a small steady-state backlog must then release it, instead of
// compacting in place over the oversized array forever.
func TestInboxShrinksAfterBurst(t *testing.T) {
	var p proc
	burst := inboxShrinkCap * 4
	for i := 0; i < burst; i++ {
		p.pushInbox(&logp.Message{Tag: i})
	}
	if cap(p.inbox) < burst {
		t.Fatalf("burst of %d grew cap to only %d", burst, cap(p.inbox))
	}
	for i := 0; i < burst; i++ {
		if got := p.popInbox(); got.Tag != i {
			t.Fatalf("popInbox order broken at %d: got tag %d", i, got.Tag)
		}
	}
	// Steady state: backlog of ~8 while streaming thousands through.
	next, want := 0, 0
	for i := 0; i < 4*inboxShrinkCap; i++ {
		p.pushInbox(&logp.Message{Tag: next})
		next++
		if p.pending() > 8 {
			if got := p.popInbox(); got.Tag != want {
				t.Fatalf("steady-state order broken: got tag %d, want %d", got.Tag, want)
			}
			want++
		}
	}
	if c := cap(p.inbox); c > inboxShrinkCap {
		t.Errorf("inbox cap %d after streaming with backlog 8; want <= %d", c, inboxShrinkCap)
	}
	for p.pending() > 0 {
		if got := p.popInbox(); got.Tag != want {
			t.Fatalf("drain order broken: got tag %d, want %d", got.Tag, want)
		}
		want++
	}
	if want != next {
		t.Errorf("received %d of %d messages", want, next)
	}
}

// burstThenStream floods processor 0 with one up-front burst from every
// peer, then streams a long compute-paced trickle through it (slower than
// the reception rate, so the backlog drains to a small steady state): the
// machine-level shape of the over-grown-inbox pathology.
type burstThenStream struct {
	burst, stream int
	got           int
}

func (b *burstThenStream) Start(n logp.Node) {
	if n.ID() == 0 {
		b.got = 0
		return
	}
	for i := 0; i < b.burst; i++ {
		n.Send(0, 1, nil)
	}
	if n.ID() == 1 {
		for i := 0; i < b.stream; i++ {
			n.Compute(16)
			n.Send(0, 2, nil)
		}
	}
	n.Done()
}

func (b *burstThenStream) Message(n logp.Node, m logp.Message) {
	b.got++
	if b.got == b.burst*(n.P()-1)+b.stream {
		n.Done()
	}
}

// TestInboxBoundedGrowthOnBurstyRun runs the pathology end to end and
// inspects the machine's inbox storage afterwards: the burst peak must not
// linger as permanent footprint once the streaming phase has drained it.
func TestInboxBoundedGrowthOnBurstyRun(t *testing.T) {
	prog := &burstThenStream{burst: 2048, stream: 40000}
	cfg := logp.Config{Params: core.Params{P: 5, L: 4, O: 1, G: 2}, DisableCapacity: true}
	m, err := New(cfg, prog, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := prog.got; got != 2048*4+40000 {
		t.Fatalf("received %d messages", got)
	}
	if c := cap(m.procs[0].inbox); c > inboxShrinkCap {
		t.Errorf("proc 0 inbox cap %d after bursty run; want <= %d (burst peak released)", c, inboxShrinkCap)
	}
}
