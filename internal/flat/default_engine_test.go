package flat_test

import (
	"testing"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/progs"
)

// TestDefaultEngineSuite runs the paper's Figure 3/4 schedule programs on
// whichever engine the process default resolves to — the hook the CI engine
// matrix uses: LOGP_ENGINE=flat re-runs this suite on the goroutine-free
// core, LOGP_SHARDS additionally selects the windowed parallel kernel. Every
// engine must land each program exactly on its analytic finish time, so a
// run that diverges from the reference machine by even one cycle fails here
// regardless of which engine is selected.
func TestDefaultEngineSuite(t *testing.T) {
	e, err := logp.DefaultEngine()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("default engine: %s", e.Name())
	params := core.Params{P: 16, L: 8, O: 2, G: 3}

	bs, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(logp.Config{Params: params, DisableCapacity: true},
		progs.NewBroadcast(bs, 1, "datum"))
	if err != nil {
		t.Fatal(err)
	}
	if res.Time != bs.Finish {
		t.Errorf("broadcast: simulated time %d, analytic finish %d", res.Time, bs.Finish)
	}
	if res.Messages != params.P-1 {
		t.Errorf("broadcast: %d messages, want %d", res.Messages, params.P-1)
	}

	deadline := core.MinSumTime(params, 64)
	ss, err := core.OptimalSummation(params, deadline)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]float64, ss.TotalValues)
	for i := range values {
		values[i] = 1
	}
	dist, err := collective.DistributeInputs(ss, values)
	if err != nil {
		t.Fatal(err)
	}
	sumRes, err := e.Run(logp.Config{Params: params, DisableCapacity: true},
		progs.NewSum(ss, 1, dist))
	if err != nil {
		t.Fatal(err)
	}
	if sumRes.Time != deadline {
		t.Errorf("summation: simulated time %d, analytic deadline %d", sumRes.Time, deadline)
	}
}
