package flat_test

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
)

// holdKillChain: 0 floods 1, 1 floods 2, 2 sleeps long before draining.
// Hold mode keeps every unit reserved until reception, so 1 parks on its
// acquire to 2 while arrivals from 0 pile up held; a kill of 1 mid-stall
// exercises the held-kill + held-arrival drop path in capFlush.
type holdKillChain struct{ burst int }

func (c *holdKillChain) Start(n logp.Node) {
	switch n.ID() {
	case 0:
		for i := 0; i < c.burst; i++ {
			n.Send(1, 9, i)
		}
		n.Done()
	case 1:
		for i := 0; i < c.burst; i++ {
			n.Send(2, 9, i)
		}
	case 2:
		n.Wait(300)
	default:
		n.Done()
	}
}

func (c *holdKillChain) Message(n logp.Node, m logp.Message) {
	if n.ID() == 2 && m.Data.(int) == c.burst-1 {
		n.Done()
	}
	if n.ID() == 1 && m.Data.(int) == c.burst-1 {
		n.Done()
	}
}

func TestZZReproHoldKill(t *testing.T) {
	for _, at := range []int64{5, 9, 12, 15, 20, 25, 30, 40, 60, 100} {
		cfg := logp.Config{
			Params:                   core.Params{P: 6, L: 4, O: 1, G: 2},
			HoldCapacityUntilReceive: true,
			Faults:                   &logp.FaultPlan{FailStops: []logp.FailStop{{Proc: 1, At: at}}},
		}
		mk := func() logp.Program { return &holdKillChain{burst: 8} }
		seq, seqErr := flat.Run(cfg, mk(), 1)
		for _, shards := range []int{2, 3, 6} {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("at=%d shards=%d: panic: %v", at, shards, r)
					}
				}()
				got, err := flat.Run(cfg, mk(), shards)
				es := func(e error) string {
					if e == nil {
						return ""
					}
					return e.Error()
				}
				if es(err) != es(seqErr) {
					t.Errorf("at=%d shards=%d: err %q vs seq %q", at, shards, es(err), es(seqErr))
				} else if seqErr == nil && (got.Time != seq.Time || got.Dropped != seq.Dropped) {
					t.Errorf("at=%d shards=%d: Time/Dropped %d/%d vs seq %d/%d", at, shards, got.Time, got.Dropped, seq.Time, seq.Dropped)
				}
			}()
		}
	}
}
