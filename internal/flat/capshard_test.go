package flat_test

import (
	"bytes"
	"reflect"
	"runtime"
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
)

// checkCapSharded runs prog on the sequential flat engine, the goroutine
// machine, and the sharded flat engine at every given shard count, asserting
// full Result equality — including MaxInTransitFrom/To, which the barrier
// replay tracks exactly under capacity sharding. A run that errors (e.g. a
// capacity deadlock) must error identically on every engine.
func checkCapSharded(t *testing.T, cfg logp.Config, mk func() logp.Program, shardCounts []int) {
	t.Helper()
	errStr := func(err error) string {
		if err == nil {
			return ""
		}
		return err.Error()
	}
	seq, seqErr := flat.Run(cfg, mk(), 1)
	gor, gorErr := logp.RunProgram(cfg, mk())
	if errStr(seqErr) != errStr(gorErr) {
		t.Errorf("flat(1) error %q, goroutine error %q", errStr(seqErr), errStr(gorErr))
	} else if seqErr == nil && !reflect.DeepEqual(seq, gor) {
		t.Errorf("flat(1) vs goroutine differ:\n flat:      %+v\n goroutine: %+v", seq, gor)
	}
	for _, shards := range shardCounts {
		got, err := flat.Run(cfg, mk(), shards)
		if errStr(err) != errStr(seqErr) {
			t.Errorf("shards=%d error %q, sequential error %q", shards, errStr(err), errStr(seqErr))
			continue
		}
		if seqErr == nil && !reflect.DeepEqual(got, seq) {
			t.Errorf("shards=%d differs from sequential:\n sharded:    %+v\n sequential: %+v",
				shards, got, seq)
		}
	}
}

// TestCapShardedMatchesSequential pins the capacity-mode window ledger
// against the sequential flat core and the goroutine machine across the
// ported programs, including the parameter corners that stress the replay:
// g > L (capacity 1, every link serialized), L = 0 (single-instant windows),
// and hold-until-receive (releases at reception end, not arrival).
func TestCapShardedMatchesSequential(t *testing.T) {
	std := core.Params{P: 0, L: 8, O: 2, G: 3}
	with := func(p int) core.Params { pr := std; pr.P = p; return pr }
	cases := []struct {
		name string
		cfg  logp.Config
		mk   func() logp.Program
	}{
		{"broadcast", logp.Config{Params: with(32)}, func() logp.Program {
			s, err := core.OptimalBroadcast(with(32), 0)
			if err != nil {
				t.Fatal(err)
			}
			return newBroadcast(s, 1, "datum")
		}},
		{"pingpong", logp.Config{Params: with(16)}, func() logp.Program { return newPingPong(12) }},
		{"alltoall", logp.Config{Params: with(12)}, func() logp.Program { return newAllToAll(12, 3, 1, 2, true) }},
		{"chain", logp.Config{Params: with(24)}, func() logp.Program {
			return newChain(24, 0, 3, 6, func(i int) any { return i })
		}},
		{"gap-exceeds-latency", logp.Config{Params: core.Params{P: 8, L: 2, O: 1, G: 5}},
			func() logp.Program { return newAllToAll(8, 3, 1, 2, true) }},
		{"zero-latency", logp.Config{Params: core.Params{P: 8, L: 0, O: 2, G: 1}},
			func() logp.Program { return newAllToAll(8, 2, 1, 2, true) }},
		{"zero-latency-zero-overhead", logp.Config{Params: core.Params{P: 6, L: 0, O: 0, G: 1}},
			func() logp.Program { return newChain(6, 0, 3, 4, func(i int) any { return i }) }},
		{"hold-until-receive", logp.Config{Params: with(12), HoldCapacityUntilReceive: true},
			func() logp.Program { return newChain(12, 0, 3, 6, func(i int) any { return i }) }},
		// Hold-mode all-to-all genuinely deadlocks (everyone's reservations
		// are held behind receptions that wait on everyone else): the
		// sharded engine must report the identical capacity deadlock.
		{"hold-deadlock", logp.Config{Params: with(12), HoldCapacityUntilReceive: true},
			func() logp.Program { return newAllToAll(12, 3, 1, 2, true) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkCapSharded(t, tc.cfg, tc.mk, []int{2, 3, 4, 8})
		})
	}
}

// capFlood is the stall-spanning-a-barrier scenario: proc 0 fires burst
// back-to-back sends at proc 1, which idles for hold cycles before draining
// its inbox. With hold-until-receive the capacity units stay reserved until
// proc 1's receptions complete, so proc 0's stalls span many [M, M+L+1)
// windows and grants fire from windows far past the acquire's. Remaining
// processors finish at once, padding the machine so partitions split sender
// and receiver.
type capFlood struct {
	burst int
	hold  int64
}

func (c *capFlood) Start(n logp.Node) {
	switch n.ID() {
	case 0:
		for i := 0; i < c.burst; i++ {
			n.Send(1, 9, i)
		}
		n.Done()
	case 1:
		n.Wait(c.hold)
	default:
		n.Done()
	}
}

func (c *capFlood) Message(n logp.Node, m logp.Message) {
	if m.Data.(int) == c.burst-1 {
		n.Done()
	}
}

func TestCapShardedStallSpansBarrier(t *testing.T) {
	cases := []struct {
		name string
		cfg  logp.Config
	}{
		{"arrival-release", logp.Config{Params: core.Params{P: 6, L: 4, O: 1, G: 2}}},
		{"hold-release", logp.Config{Params: core.Params{P: 6, L: 4, O: 1, G: 2}, HoldCapacityUntilReceive: true}},
		{"hold-release-cap1", logp.Config{Params: core.Params{P: 6, L: 3, O: 2, G: 4}, HoldCapacityUntilReceive: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			checkCapSharded(t, tc.cfg, func() logp.Program {
				return &capFlood{burst: 8, hold: 60}
			}, []int{2, 3, 6})
		})
	}
}

// TestCapShardedFailStopHoldingCapacity kills processors that hold reserved
// capacity: the sender mid-burst (its in-flight messages still settle and its
// queued acquire may be granted posthumously — the grant injects, then the
// processor halts at the next operation boundary, exactly as sequentially)
// and the receiver (deliveries to it drop, but non-dup drops still release
// the reserved units, so the surviving senders make progress).
func TestCapShardedFailStopHoldingCapacity(t *testing.T) {
	params := core.Params{P: 6, L: 4, O: 1, G: 2}
	cases := []struct {
		name   string
		faults *logp.FaultPlan
		mk     func() logp.Program
	}{
		// The killed sender's receiver waits forever for the tail of the
		// burst: every engine must report the identical deadlock, with the
		// sender's granted-but-undelivered reservations settled the same way.
		{"sender-killed-mid-stall",
			&logp.FaultPlan{FailStops: []logp.FailStop{{Proc: 0, At: 7}}},
			func() logp.Program { return &capFlood{burst: 8, hold: 60} }},
		{"receiver-killed-holding-reservations",
			&logp.FaultPlan{FailStops: []logp.FailStop{{Proc: 1, At: 9}}},
			func() logp.Program {
				// Ring flood: every processor streams to its successor; the
				// ring keeps going around proc 1's corpse because drops
				// release capacity. Proc 2 expects nothing (its predecessor
				// is dead) and the others their full stream.
				return newRingExpect(4, []int{4, 0, 0, 4, 4, 4})
			}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := logp.Config{Params: params, Faults: tc.faults}
			checkCapSharded(t, cfg, tc.mk, []int{2, 3, 6})
		})
	}
}

// TestCapShardedPrometheusMatchesSequential: with capacity sharding the
// whole counter and histogram surface — sends, receptions, deliveries,
// stall events and cycles, the stall and flight histograms, the traffic
// matrix — must render byte-identical Prometheus text to the sequential
// engine. (The sampled time series is window-quantized under sharding and is
// compared across shard counts, not against sequential.)
func TestCapShardedPrometheusMatchesSequential(t *testing.T) {
	params := core.Params{P: 12, L: 8, O: 2, G: 3}
	run := func(shards int) ([]byte, []metrics.Sample) {
		reg := metrics.NewRegistry()
		cfg := logp.Config{Params: params, Metrics: reg, MetricsEvery: 8}
		if _, err := flat.Run(cfg, newAllToAll(12, 3, 1, 2, true), shards); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		var buf bytes.Buffer
		if err := metrics.WritePrometheus(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), append([]metrics.Sample(nil), reg.Samples...)
	}
	promSeq, _ := run(1)
	prom2, samp2 := run(2)
	if !bytes.Equal(prom2, promSeq) {
		t.Errorf("shards=2 Prometheus text differs from sequential:\n--- sequential\n%s\n--- sharded\n%s", promSeq, prom2)
	}
	for _, shards := range []int{3, 4, 6} {
		prom, samp := run(shards)
		if !bytes.Equal(prom, promSeq) {
			t.Errorf("shards=%d Prometheus text differs from sequential", shards)
		}
		if !reflect.DeepEqual(samp, samp2) {
			t.Errorf("shards=%d sample series differs from shards=2 (window sequence should be shard-count-invariant)", shards)
		}
	}
}

// TestCapShardedBitDeterminism: the capacity-sharded run — Result,
// Prometheus text, sample series — is bit-identical for every GOMAXPROCS
// setting. The ledger replay is single-threaded over a sort keyed purely by
// sim-time fields, so thread scheduling must not be observable.
func TestCapShardedBitDeterminism(t *testing.T) {
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)

	run := func() (logp.Result, []byte, []metrics.Sample) {
		reg := metrics.NewRegistry()
		cfg := logp.Config{Params: core.Params{P: 24, L: 8, O: 2, G: 3}, Metrics: reg, MetricsEvery: 16}
		res, err := flat.Run(cfg, newAllToAll(24, 2, 1, 2, true), 4)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := metrics.WritePrometheus(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return res, buf.Bytes(), append([]metrics.Sample(nil), reg.Samples...)
	}

	runtime.GOMAXPROCS(1)
	res1, prom1, samp1 := run()
	for _, procs := range []int{2, 4, 8} {
		runtime.GOMAXPROCS(procs)
		res, prom, samp := run()
		if !reflect.DeepEqual(res, res1) {
			t.Errorf("GOMAXPROCS=%d: Result differs from GOMAXPROCS=1", procs)
		}
		if !bytes.Equal(prom, prom1) {
			t.Errorf("GOMAXPROCS=%d: Prometheus text differs from GOMAXPROCS=1", procs)
		}
		if !reflect.DeepEqual(samp, samp1) {
			t.Errorf("GOMAXPROCS=%d: sample series differs from GOMAXPROCS=1", procs)
		}
	}
}
