package flat_test

import (
	"reflect"
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/topo"
)

// The tiered-machine contract: a topo.Flat topology is cycle-identical to no
// topology at all on both engines, tiered parameters keep the goroutine and
// flat engines pinned to each other (Results, traces, profiles, metrics),
// and the sharded kernel — whose lookahead window shrinks to the minimum
// o+L (or min L + 1 with capacity on) over all links — reproduces the
// sequential kernel bit-for-bit at any shard count.

// twoTierModel builds the suite's standard tiered machine over base: nodes
// of 4 processors with a (L=2, o=1, g=1) intra-node link.
func twoTierModel(t testing.TB, base core.Params) topo.Model {
	t.Helper()
	m, err := topo.TwoTier(base, 4, topo.Link{L: 2, O: 1, G: 1})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFlatTopologyCycleIdentical pins the backward-compatibility guarantee:
// Config.Topology = topo.Flat(params) and Config.Topology = nil are the same
// machine, cycle for cycle, on both engines, across the representative
// workloads of the equivalence suite (tree schedule, saturating all-to-all
// with capacity stalls, seeded jitter and skew).
func TestFlatTopologyCycleIdentical(t *testing.T) {
	cases := []struct {
		name string
		cfg  logp.Config
		mk   func(p core.Params) logp.Program
	}{
		{
			name: "broadcast",
			cfg:  logp.Config{Params: core.Params{P: 8, L: 6, O: 2, G: 4}, CollectTrace: true},
			mk: func(p core.Params) logp.Program {
				s, err := core.OptimalBroadcast(p, 0)
				if err != nil {
					t.Fatal(err)
				}
				return newBroadcast(s, 7, "datum")
			},
		},
		{
			name: "alltoall-saturating",
			cfg:  logp.Config{Params: core.Params{P: 6, L: 18, O: 2, G: 3}, CollectTrace: true},
			mk:   func(p core.Params) logp.Program { return newAllToAll(p.P, 4, 1, 9, false) },
		},
		{
			name: "jitter-skew",
			cfg: logp.Config{Params: core.Params{P: 5, L: 20, O: 2, G: 4},
				LatencyJitter: 7, ComputeJitter: 0.3, ProcSkew: 0.2, Seed: 12345, CollectTrace: true},
			mk: func(p core.Params) logp.Program { return newAllToAll(p.P, 3, 2, 5, true) },
		},
	}
	for _, tc := range cases {
		flatCfg := tc.cfg
		flatCfg.Topology = topo.Flat(tc.cfg.Params)
		for _, eng := range []struct {
			name string
			run  func(cfg logp.Config) (logp.Result, error)
		}{
			{"goroutine", func(cfg logp.Config) (logp.Result, error) {
				return logp.RunProgram(cfg, tc.mk(cfg.Params))
			}},
			{"flat", func(cfg logp.Config) (logp.Result, error) {
				return flat.Run(cfg, tc.mk(cfg.Params), 1)
			}},
		} {
			bare, err1 := eng.run(tc.cfg)
			wrapped, err2 := eng.run(flatCfg)
			if err1 != nil || err2 != nil {
				t.Fatalf("%s/%s: errors: nil-topology=%v flat-topology=%v", tc.name, eng.name, err1, err2)
			}
			if !reflect.DeepEqual(bare, wrapped) {
				t.Errorf("%s/%s: topo.Flat is not cycle-identical to nil:\n nil:  %+v\n flat: %+v",
					tc.name, eng.name, bare, wrapped)
			}
		}
	}
}

// TestEquivTieredBroadcast pins the engines to each other under a two-tier
// model on a tree schedule, with traces, profiles and metrics compared via
// the shared runBoth harness.
func TestEquivTieredBroadcast(t *testing.T) {
	p := core.Params{P: 8, L: 6, O: 2, G: 4}
	s, err := core.OptimalBroadcast(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := logp.Config{Params: p, CollectTrace: true, Topology: twoTierModel(t, p)}
	runBoth(t, "tiered-broadcast", cfg, func() logp.Program { return newBroadcast(s, 7, "datum") }, true, true)
}

// TestEquivTieredAllToAll drives the capacity semaphores under tiered
// parameters: the saturating all-to-all must stall identically on both
// engines when the links it floods have per-link costs.
func TestEquivTieredAllToAll(t *testing.T) {
	p := core.Params{P: 8, L: 18, O: 2, G: 3}
	cfg := logp.Config{Params: p, CollectTrace: true, Topology: twoTierModel(t, p)}
	g, _ := runBoth(t, "tiered-alltoall", cfg, func() logp.Program { return newAllToAll(p.P, 4, 1, 9, false) }, true, true)
	if g.TotalStall() == 0 {
		t.Error("tiered all-to-all did not stall: capacity path not exercised under topology")
	}
}

// TestEquivThreeTier runs the all-to-all on a three-tier (node/rack/cluster)
// machine with per-processor compute-rate scaling layered on top.
func TestEquivThreeTier(t *testing.T) {
	p := core.Params{P: 8, L: 24, O: 3, G: 5}
	m, err := topo.ThreeTier(p, 2, 2, topo.Link{L: 2, O: 1, G: 1}, topo.Link{L: 8, O: 2, G: 3})
	if err != nil {
		t.Fatal(err)
	}
	rates := make([]float64, p.P)
	for i := range rates {
		rates[i] = 1 + float64(i%3)
	}
	m, err = topo.WithRates(m, rates)
	if err != nil {
		t.Fatal(err)
	}
	cfg := logp.Config{Params: p, CollectTrace: true, Topology: m}
	runBoth(t, "three-tier-rated", cfg, func() logp.Program { return newAllToAll(p.P, 3, 2, 5, true) }, true, true)
}

// TestTieredShardedDeterminism pins the shrunken lookahead windows: under a
// two-tier model the sharded kernel must reproduce the sequential Result at
// every shard count, capacity off (min o+L window) and on (min L + 1 window
// with the reserve/commit ledger). Sharded runs report the in-transit
// high-water marks as zero with capacity off, so those fields are masked
// there and compared exactly with capacity on.
func TestTieredShardedDeterminism(t *testing.T) {
	p := core.Params{P: 32, L: 16, O: 2, G: 3}
	model := twoTierModel(t, p)
	s, err := core.OptimalBroadcast(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, nocap := range []bool{true, false} {
		cfg := logp.Config{Params: p, DisableCapacity: nocap, Topology: model}
		seq, err := flat.Run(cfg, newBroadcast(s, 7, "datum"), 1)
		if err != nil {
			t.Fatal(err)
		}
		want := seq
		if nocap {
			want.MaxInTransitFrom, want.MaxInTransitTo = 0, 0
		}
		for _, shards := range []int{2, 4, 8} {
			got, err := flat.Run(cfg, newBroadcast(s, 7, "datum"), shards)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("nocap=%v shards=%d: sharded result diverges:\n seq:     %+v\n sharded: %+v",
					nocap, shards, want, got)
			}
		}
	}
}

// TestTieredZeroAllocPerMessage extends the zero-alloc invariant to the
// tiered hot path: per-link lookups must not put allocations on the
// per-message path of either kernel.
func TestTieredZeroAllocPerMessage(t *testing.T) {
	const (
		p     = 8
		small = 500
		large = 2500
	)
	base := core.Params{P: p, L: 8, O: 2, G: 3}
	model := twoTierModel(t, base)
	measure := func(msgs int) float64 {
		return testing.AllocsPerRun(10, func() {
			cfg := logp.Config{Params: base, DisableCapacity: true, Topology: model}
			if _, err := flat.Run(cfg, ringFlood(msgs, p), 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocSmall := measure(small)
	allocLarge := measure(large)
	perMsg := (allocLarge - allocSmall) / float64((large-small)*p)
	if perMsg > 0.01 {
		t.Errorf("tiered flat path allocates %.4f allocs/message (small run %.0f, large run %.0f)",
			perMsg, allocSmall, allocLarge)
	}
}
