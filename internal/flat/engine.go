package flat

import (
	"fmt"
	"os"
	"strconv"

	"github.com/logp-model/logp/internal/logp"
)

// Engine is the logp.Engine adapter for the flat core. Shards is the number
// of event-kernel shards: 1 (or 0) runs the sequential core, which supports
// every Config; N > 1 runs the windowed parallel core. Shards == 0
// additionally consults the LOGP_SHARDS environment variable, so the CI
// engine matrix can select a sharded run without touching call sites.
type Engine struct{ Shards int }

// Name identifies the engine: "flat", or "flat<N>" for a fixed shard count.
func (e Engine) Name() string {
	if e.Shards > 1 {
		return fmt.Sprintf("flat%d", e.Shards)
	}
	return "flat"
}

func (e Engine) shards() int {
	if e.Shards > 0 {
		return e.Shards
	}
	if env := os.Getenv("LOGP_SHARDS"); env != "" {
		if n, err := strconv.Atoi(env); err == nil && n > 0 {
			return n
		}
	}
	return 1
}

// Run executes prog on a flat machine built from cfg.
func (e Engine) Run(cfg logp.Config, prog logp.Program) (logp.Result, error) {
	m, err := New(cfg, prog, e.shards())
	if err != nil {
		return logp.Result{}, err
	}
	return m.Run()
}

// Run executes prog on a flat machine with the given shard count: the
// convenience counterpart of logp.RunProgram.
func Run(cfg logp.Config, prog logp.Program, shards int) (logp.Result, error) {
	return Engine{Shards: shards}.Run(cfg, prog)
}

func init() { logp.RegisterEngine(Engine{}) }
