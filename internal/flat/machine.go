// Package flat is the goroutine-free execution engine for the LogP machine:
// per-processor state lives in plain structs in one flat array, and a typed
// event kernel steps those structs directly — no goroutine per processor, no
// channel handoff, no park/unpark. Programs are written against the reactive
// logp.Program interface and run here or on the goroutine machine
// interchangeably.
//
// # Cycle identity
//
// The engine is pinned cycle-identical to the goroutine machine
// (logp.RunProgram): both charge the same cost rules at the same points, make
// scheduling calls in the same order (so same-instant ties break
// identically), elide clock advances under the same conditions, and draw from
// identically-seeded random streams at the same operations. Cross-engine
// equivalence tests assert identical Results, traces, metrics and profiles.
//
// # Sharding
//
// With more than one shard, processors are partitioned into contiguous
// blocks, each with its own event queue, and shards execute windows of
// events concurrently. The LogP model itself provides the conservative
// lookahead: a message initiated at time t occupies the sender for o cycles
// and the network for L more, so no cross-shard event lands sooner than
// t + o + L of its own link. Each window therefore spans [M, M + min(o+L)),
// the minimum taken over every link in the machine (just o+L on a flat
// machine), where M is the earliest pending event machine-wide; within it
// every shard's execution
// depends only on its own pre-window state, and cross-shard deliveries are
// merged at the window barrier in fixed shard order. The lookahead is
// anchored at send initiation, not injection: a send that parks for its
// o-cycle overhead buffers its cross-shard delivery at park time
// (bufferParkedSend), because by the time the wake fires — possibly in a
// later window — only L of the lookahead remains. The result is
// bit-identical for any GOMAXPROCS setting.
//
// The capacity constraint — the paper's ceil(L/g) in-flight bound — couples
// processors across shards through the machine-wide semaphores, so capacity
// mode runs a two-phase reserve/commit instead: within a window every send
// parks at its acquire and shards record acquire/release operations into a
// ledger; the barrier replays the merged ledger single-threaded in sim-time
// order, granting capacity and injecting deliveries (see runSharded and
// replayCapacity). The window narrows to [M, M+min(L)+1) to keep barrier
// grants sound, and the replay order is built from pure sim-time fields, so
// capacity-sharded runs are bit-identical across shard counts too. Sharded
// runs exclude the single-shard-only observers (trace, profiler, latency and
// compute jitter) and allow fault plans with fail-stops only; see New.
package flat

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/prof"
	"github.com/logp-model/logp/internal/sim"
	"github.com/logp-model/logp/internal/topo"
	"github.com/logp-model/logp/internal/trace"
)

// Continuation codes: where a parked processor resumes when its wake event
// fires. Each corresponds to one park point of the goroutine Proc.
const (
	rStart         uint8 = iota // initial wake: run the Start handler
	rComputeDone                // Compute's busy stretch elapsed
	rWaitDone                   // Wait's idle stretch elapsed
	rWaitUntilDone              // WaitUntil's idle stretch elapsed
	rSendPaid                   // Send's gap wait + o overhead elapsed
	rCapOut                     // woken from the out-capacity queue
	rCapIn                      // woken from the in-capacity queue
	rRecvWake                   // woken from the inbox arrival wait
	rRecvPaid                   // Recv's gap wait + o overhead elapsed
	rCapGranted                 // sharded: the barrier ledger granted both capacity units
)

// Capacity-ledger operation kinds. Releases sort before acquires at equal
// (t, trig): a unit freed at an instant is available to an acquire at that
// instant, mirroring the barging re-check of sim.Semaphore.
const (
	opRelease uint8 = iota
	opAcquire
)

// capOp is one capacity-semaphore operation recorded by a shard during a
// window and replayed single-threaded at the barrier. Every field is a pure
// sim-time quantity — no shard-local sequence numbers — so the replay order,
// and with it the whole capacity schedule, is identical for every shard
// count and GOMAXPROCS setting.
type capOp struct {
	t    int64 // sim time the operation occurred
	trig int64 // tie-break: when the occurrence was set in motion (see sort comment)
	kind uint8
	from int32 // sending processor (out-capacity side)
	to   int32 // destination processor (in-capacity side)
}

// Recorded Node operation kinds.
const (
	oSend uint8 = iota
	oCompute
	oWait
	oWaitUntil
)

// op is one recorded Node operation (the flat twin of the goroutine
// driver's record-then-replay buffer entry).
type op struct {
	kind uint8
	a, b int64
	data any
}

// heldEvent is an event targeting a capacity-blocked processor, deferred
// until the barrier grant resolves (capacity-sharded runs only). A shard's
// window may dispatch a delivery or kill for a processor parked at its
// capacity acquire at a sim time the grant later rewinds past; applying it
// at dispatch would leak its effect backward in time (an inbox arrival the
// rewound execution should not see yet, a fail-stop flag killing work the
// sequential engine performs). Held events are flushed in dispatch order at
// grant time: at or before the grant instant they apply directly, after it
// they are rescheduled at their original times.
type heldEvent struct {
	t      int64 // sim time the event was dispatched (arrival / kill time)
	kind   uint8 // evDeliver or evFail
	flight int64 // evDeliver: the flight draw (metrics, hold-mode release)
	msg    logp.Message
}

// capBlocked reports whether p is parked at a capacity acquire awaiting a
// barrier grant: events targeting it must be deferred (see heldEvent).
func capBlocked(p *proc) bool {
	return p.blocked && (p.resume == rCapOut || p.resume == rCapIn)
}

// proc is one processor/memory module: the flat-array counterpart of
// logp.Proc, with the goroutine stack replaced by the resume code and the
// per-operation context fields below.
type proc struct {
	id        int32
	shard     int32
	resume    uint8
	failed    bool // fail-stop triggered; halts at the next operation boundary
	done      bool // Done() recorded: finish once the operation buffer drains
	retired   bool // processor has finished (or fail-stopped) and left the run
	waiting   bool // parked on the inbox arrival signal
	blocked   bool // parked with no scheduled wake (inbox or capacity queue)
	sentEarly bool // sharded: the parked send's delivery is already in an outbox

	m *Machine

	nextSend int64
	nextRecv int64

	stats logp.ProcStats

	// inbox is head-indexed exactly like logp.Proc's: arrivals append,
	// receptions advance inboxHead, storage is reused once drained.
	inbox     []logp.Message
	inboxHead int

	// ops is the recorded-operation buffer, reused across handlers.
	ops    []op
	opHead int

	// Continuation context for the operation in flight.
	sendStart  int64 // Send: time the op began (idle-trace bound)
	initiation int64 // Send: gap-respecting initiation time
	stallStart int64 // Send: when the capacity acquires began
	waitStart  int64 // Compute/Wait/inbox wait: segment start
	pend       int64 // Compute: stretched cycles being charged
	recvArrive int64 // Recv: message arrival / reception begin
	recvFrom   int64 // Recv: gap-respecting reception start
	recvPay    int64 // Recv: overhead cycles being charged
	cur        logp.Message

	// held buffers deliveries and kills that targeted this processor while
	// it was parked at a capacity acquire; the barrier grant flushes it
	// (capFlush). Dispatch order, hence ascending time.
	held []heldEvent
}

func (p *proc) pending() int { return len(p.inbox) - p.inboxHead }

func (p *proc) popInbox() logp.Message {
	msg := p.inbox[p.inboxHead]
	p.inbox[p.inboxHead].Data = nil
	p.inboxHead++
	if p.inboxHead == len(p.inbox) {
		p.inbox = p.inbox[:0]
		p.inboxHead = 0
	}
	return msg
}

// inboxShrinkCap bounds the backing array a compaction keeps: above it, a
// backlog that fits in a quarter of the capacity moves to a right-sized
// array instead of compacting in place, so a processor's footprint follows
// its steady-state backlog rather than its historical burst peak.
const inboxShrinkCap = 4096

// pushInbox appends an arrival, compacting consumed slots once they dominate
// the backlog so a streaming receiver reuses storage instead of growing the
// slice for the whole run. Invisible to programs: only the live tail moves.
// Pathologically over-grown backing arrays (a one-off burst followed by a
// long streaming phase) are released at compaction (inboxShrinkCap).
func (p *proc) pushInbox(msg *logp.Message) {
	if p.inboxHead > 16 && p.inboxHead*2 >= len(p.inbox) {
		live := len(p.inbox) - p.inboxHead
		if c := cap(p.inbox); c > inboxShrinkCap && live*4 < c {
			newCap := live * 2
			if newCap < 64 {
				newCap = 64
			}
			nb := make([]logp.Message, live, newCap)
			copy(nb, p.inbox[p.inboxHead:])
			p.inbox = nb // old array released wholesale, dead Data and all
			p.inboxHead = 0
		} else {
			n := copy(p.inbox, p.inbox[p.inboxHead:])
			for i := n; i < len(p.inbox); i++ {
				p.inbox[i].Data = nil
			}
			p.inbox = p.inbox[:n]
			p.inboxHead = 0
		}
	}
	p.inbox = append(p.inbox, *msg)
}

func (p *proc) resetOps() {
	for i := range p.ops {
		p.ops[i].data = nil
	}
	p.ops = p.ops[:0]
	p.opHead = 0
}

// The logp.Node interface: handlers record operations against the proc.

// ID is the processor number in [0, P).
func (p *proc) ID() int { return int(p.id) }

// P is the machine's processor count.
func (p *proc) P() int { return p.m.cfg.P }

// Params returns the machine's LogP parameters.
func (p *proc) Params() core.Params { return p.m.cfg.Params }

// Now is the processor's local time at handler entry.
func (p *proc) Now() int64 { return p.m.sh[p.shard].now }

// Send records a one-word message send.
func (p *proc) Send(to, tag int, data any) {
	p.ops = append(p.ops, op{kind: oSend, a: int64(to), b: int64(tag), data: data})
}

// Compute records cycles of local work.
func (p *proc) Compute(cycles int64) { p.ops = append(p.ops, op{kind: oCompute, a: cycles}) }

// Wait records an idle wait.
func (p *proc) Wait(cycles int64) { p.ops = append(p.ops, op{kind: oWait, a: cycles}) }

// WaitUntil records an idle wait until an absolute time.
func (p *proc) WaitUntil(t int64) { p.ops = append(p.ops, op{kind: oWaitUntil, a: t}) }

// Done marks the processor finished once its recorded operations complete.
func (p *proc) Done() { p.done = true }

// semaphore mirrors sim.Semaphore with proc IDs in place of process
// pointers: FIFO-queued acquirers, woken one per release, re-checking (and
// re-queueing at the back) on wake exactly as the condition loop in
// sim.Semaphore.Acquire does.
type semaphore struct {
	capacity int
	used     int
	waiters  []int32
	head     int
}

// shard is one partition of the machine: a block of processors, their event
// queue, and (in sharded mode) the per-destination outboxes and shard-local
// metrics scratch.
type shard struct {
	queue
	idx     int32
	lo, hi  int // procs [lo, hi)
	live    int
	out     [][]event          // cross-shard deliveries, one buffer per destination shard
	flight  *metrics.Histogram // shard-local flight-cycle observations, merged at the end
	stall   *metrics.Histogram // shard-local stall-cycle observations, merged at the end
	capOps  []capOp            // capacity ledger: this window's acquires and releases
	dropped int                // deliveries lost to fail-stopped destinations
}

// Machine is a flat LogP machine ready to run one Program.
type Machine struct {
	cfg        logp.Config
	topol      topo.Model // nil unless cfg.Topology: per-link cost model
	prog       logp.Program
	shards     int
	horizon    int64 // conservative cross-shard lookahead: min(o+L), or min(L)+1 with capacity on
	capSharded bool  // shards > 1 with the capacity constraint: sends go through the ledger
	perSh      int   // processors per shard (last shard may be short)

	procs []proc
	sh    []shard

	rng *rand.Rand // mirrors the sim kernel's seeded source

	// Single-shard-only machinery, mirroring the goroutine machine.
	outCap, inCap []semaphore
	inTransitFrom []int32 // nil in sharded runs (settling crosses shards)
	inTransitTo   []int32
	maxOut, maxIn int
	tr            *trace.Log
	rec           *prof.Recorder
	faults        *logp.FaultRuntime
	duplicated    int

	// Barrier-replay scratch for capacity-sharded runs, reused across
	// windows: the merged sorted ledger and the pending wake list of the
	// instant being replayed.
	capLedger []capOp
	capWakes  []int32

	met        *metrics.Registry
	skew       []float64
	lastBusy   []int64
	lastSample int64
	every      int64
	nextSample int64 // sharded runs: next coordinator sample time

	fr *flightRecorder // nil unless EnableFlightRecorder was called

	ran bool
}

// New builds a flat machine for prog. Config semantics are identical to
// logp.New. shards < 2 builds the sequential engine, which supports every
// Config and is cycle-identical to the goroutine machine. shards >= 2
// enables windowed parallel execution, which excludes trace and profiler
// collection, latency and compute jitter, and fault plans beyond pure
// fail-stops; ProcSkew is allowed (the skews are drawn up front). The
// capacity constraint is supported — sends resolve against the machine-wide
// semaphores at the window barriers (see runSharded) — and with it
// Result.MaxInTransitFrom/To are exact; capacity-off sharded runs report
// them as zero (settling a message's in-transit accounting at arrival would
// cross shards), and both flavors keep the sample in-flight series zero.
// Capacity-off sharding additionally requires o+L >= 1 (the lookahead
// window); capacity mode runs its own L+1 window and has no such floor.
func New(cfg logp.Config, prog logp.Program, shards int) (*Machine, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.LatencyJitter < 0 || cfg.LatencyJitter > cfg.L {
		return nil, fmt.Errorf("logp: latency jitter %d outside [0, L=%d]", cfg.LatencyJitter, cfg.L)
	}
	if cfg.Topology != nil {
		if cfg.Topology.P() != cfg.P {
			return nil, fmt.Errorf("logp: topology describes P=%d, machine has P=%d", cfg.Topology.P(), cfg.P)
		}
		if minL := cfg.Topology.MinL(); cfg.LatencyJitter > minL {
			return nil, fmt.Errorf("logp: latency jitter %d exceeds the minimum link L=%d", cfg.LatencyJitter, minL)
		}
	}
	if cfg.ComputeJitter < 0 {
		return nil, fmt.Errorf("logp: negative compute jitter %v", cfg.ComputeJitter)
	}
	if cfg.ProcSkew < 0 {
		return nil, fmt.Errorf("logp: negative processor skew %v", cfg.ProcSkew)
	}
	if cfg.Faults != nil {
		if err := cfg.Faults.Validate(cfg.P); err != nil {
			return nil, err
		}
	}
	if shards < 1 {
		shards = 1
	}
	if shards > cfg.P {
		shards = cfg.P
	}
	// Per-link cost models shrink the conservative lookahead to the cheapest
	// link anywhere in the machine: minOL = min over links of o+L, minL =
	// min over links of L. Without a topology both reduce to the global
	// parameters. The minimum over link *classes* is what soundness needs —
	// a cross-shard message over some link (i, j) takes at least
	// o(i,j)+L(i,j) >= minOL cycles from initiation to arrival, so a window
	// of minOL cycles still cannot be outrun by any message, just as in the
	// uniform argument (see the package comment and runSharded).
	minOL, minL := cfg.O+cfg.L, cfg.L
	if cfg.Topology != nil {
		minOL, minL = cfg.Topology.MinOL(), cfg.Topology.MinL()
	}
	if shards > 1 {
		if cfg.CollectTrace || cfg.Profiler != nil {
			return nil, fmt.Errorf("flat: sharded execution excludes trace and profiler (single-shard observers)")
		}
		if cfg.Faults != nil && !failStopOnly(cfg.Faults) {
			return nil, fmt.Errorf("flat: sharded execution allows fail-stop faults only (drop/dup/jitter/slowdown draws are ordered by a single queue)")
		}
		if cfg.LatencyJitter != 0 || cfg.ComputeJitter != 0 {
			return nil, fmt.Errorf("flat: sharded execution requires zero latency/compute jitter (random draws are ordered by a single queue)")
		}
		if cfg.DisableCapacity && minOL < 1 {
			return nil, fmt.Errorf("flat: sharded execution requires min(o+L) >= 1 over all links for a conservative lookahead window")
		}
	}
	horizon := minOL
	capSharded := shards > 1 && !cfg.DisableCapacity
	if capSharded {
		// Capacity mode narrows the window to min(L)+1: every send pauses at
		// its capacity acquire and is granted at the barrier, so the only
		// events the barrier schedules into a shard's past-capable future are
		// deliveries at grant+L(link) with grant >= M — sound iff the window
		// end M+W-1 never exceeds M+minL, i.e. W <= minL+1, since every
		// link's L is at least minL. minL = 0 degenerates to single-instant
		// windows, which stay correct (and need no minOL >= 1 rule: barrier
		// grants, not in-window sends, carry the progress).
		horizon = minL + 1
	}
	m := &Machine{
		cfg:        cfg,
		topol:      cfg.Topology,
		prog:       prog,
		shards:     shards,
		horizon:    horizon,
		capSharded: capSharded,
		rng:        rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.ProcSkew > 0 {
		m.skew = make([]float64, cfg.P)
		for i := range m.skew {
			m.skew[i] = 1 + cfg.ProcSkew*m.rng.Float64()
		}
	}
	if cfg.CollectTrace {
		m.tr = &trace.Log{}
	}
	if cfg.Faults != nil {
		m.faults = logp.NewFaultRuntime(cfg.Faults, cfg.P)
	}
	if cfg.Profiler != nil {
		m.rec = cfg.Profiler
		m.rec.Begin(prof.RunInfo{
			Params:                   cfg.Params,
			Coprocessor:              cfg.Coprocessor,
			DisableCapacity:          cfg.DisableCapacity,
			HoldCapacityUntilReceive: cfg.HoldCapacityUntilReceive,
			BarrierCost:              cfg.BarrierCost,
		})
	}
	if !cfg.DisableCapacity {
		capUnits := cfg.Params.Capacity()
		m.outCap = make([]semaphore, cfg.P)
		m.inCap = make([]semaphore, cfg.P)
		for i := 0; i < cfg.P; i++ {
			m.outCap[i].capacity = capUnits
			m.inCap[i].capacity = capUnits
		}
	}
	if shards == 1 || !cfg.DisableCapacity {
		// Sequential runs settle in-transit counts at delivery; capacity-
		// sharded runs replay every acquire and release at the barrier in
		// sim-time order, which makes the high-water marks exact there too.
		// Only capacity-off sharded runs leave them untracked (settling a
		// message's accounting at arrival would cross shards mid-window).
		m.inTransitFrom = make([]int32, cfg.P)
		m.inTransitTo = make([]int32, cfg.P)
	}
	if cfg.Metrics != nil {
		m.met = cfg.Metrics
		capUnits := 0
		if !cfg.DisableCapacity {
			capUnits = cfg.Params.Capacity()
		}
		m.met.Begin(cfg.P, capUnits, cfg.MetricsEvery)
		m.lastBusy = make([]int64, cfg.P)
		m.every = m.met.Every()
		m.nextSample = m.every
	}

	m.perSh = (cfg.P + shards - 1) / shards
	m.shards = (cfg.P + m.perSh - 1) / m.perSh // drop empty trailing shards
	m.procs = make([]proc, cfg.P)
	m.sh = make([]shard, m.shards)
	for s := range m.sh {
		sh := &m.sh[s]
		sh.idx = int32(s)
		sh.lo = s * m.perSh
		sh.hi = sh.lo + m.perSh
		if sh.hi > cfg.P {
			sh.hi = cfg.P
		}
		sh.deadline = math.MaxInt64
		if m.shards > 1 {
			if !m.capSharded {
				// Capacity-sharded runs have no outboxes: every send parks at
				// its acquire and the barrier injects cross- and same-shard
				// deliveries alike, so nothing is emitted mid-window.
				sh.out = make([][]event, m.shards)
			}
			if m.met != nil {
				sh.flight = metrics.NewHistogram(m.met.FlightCycles.Bounds()...)
				sh.stall = metrics.NewHistogram(m.met.StallCyclesHist.Bounds()...)
			}
		}
	}
	for i := range m.procs {
		p := &m.procs[i]
		p.id = int32(i)
		p.shard = int32(i / m.perSh)
		p.m = m
	}
	return m, nil
}

func (m *Machine) shardOf(proc int) int32 { return int32(proc / m.perSh) }

// link resolves the (L, o, g) governing a message from from to to — the
// mirror of logp.Machine.link. Pure and allocation-free; safe to call from
// concurrently executing shards (the model is immutable).
func (m *Machine) link(from, to int) (l, o, g int64) {
	if m.topol == nil {
		return m.cfg.L, m.cfg.O, m.cfg.G
	}
	lk := m.topol.Link(from, to)
	return lk.L, lk.O, lk.G
}

// failStopOnly reports whether a fault plan injects fail-stops and nothing
// else: no link faults (drop/dup/jitter) and no slowdown windows. Such a plan
// is admissible under sharding — each kill is an event on its victim's own
// shard and consumes no random draws, so there is no cross-shard draw
// ordering to preserve.
func failStopOnly(p *logp.FaultPlan) bool {
	return p.Default == (logp.LinkFault{}) && len(p.Links) == 0 && len(p.Slowdowns) == 0
}

// Config returns the machine configuration.
func (m *Machine) Config() logp.Config { return m.cfg }

// Run executes the Program to completion and reports the run. A Machine may
// be Run repeatedly: each run restarts from cycle zero with the same seed and
// produces an identical Result, reusing the machine's internal storage so
// steady-state benchmarking pays no per-run construction cost. A re-run
// resets the configured metrics registry and profiler and replaces the trace,
// so retain (or copy) a previous run's observations before re-running.
func (m *Machine) Run() (logp.Result, error) {
	if m.ran {
		m.reset()
	}
	m.ran = true
	// Initial schedule, mirroring logp.Machine.Run: fail-stop events first
	// (at equal times the kill fires before the victim does any work), then
	// the metrics sampler, then the processor start events in order.
	if m.faults != nil {
		for _, fs := range m.faults.Plan().FailStops {
			// The kill is an event on the victim's own shard: it touches only
			// that processor's state, so it is window-safe under sharding.
			q := &m.sh[m.shardOf(fs.Proc)].queue
			q.scheduleAt(fs.At, evFail, int32(fs.Proc))
		}
	}
	if m.met != nil && m.shards == 1 {
		q0 := &m.sh[0].queue
		q0.scheduleAt(q0.now+m.every, evSample, 0)
	}
	for s := range m.sh {
		m.sh[s].live = m.sh[s].hi - m.sh[s].lo
	}
	for i := range m.procs {
		p := &m.procs[i]
		sh := &m.sh[p.shard]
		p.resume = rStart
		sh.scheduleAt(sh.now, evWake, p.id)
	}

	var err error
	if m.shards == 1 {
		err = m.runSingle()
	} else {
		err = m.runSharded()
	}
	if err != nil {
		return logp.Result{}, err
	}

	res := logp.Result{
		Procs:            make([]logp.ProcStats, m.cfg.P),
		Trace:            m.tr,
		MaxInTransitFrom: m.maxOut,
		MaxInTransitTo:   m.maxIn,
		Duplicated:       m.duplicated,
	}
	for s := range m.sh {
		res.Dropped += m.sh[s].dropped
	}
	for i := range m.procs {
		pr := &m.procs[i]
		pr.stats.Proc = i
		res.Procs[i] = pr.stats
		if pr.stats.Finish > res.Time {
			res.Time = pr.stats.Finish
		}
		res.Messages += pr.stats.MsgsReceived
		if pr.failed {
			res.Failed = append(res.Failed, i)
		}
		if n := pr.pending(); n > 0 {
			res.Undelivered += n
			if m.faults == nil {
				return res, fmt.Errorf("logp: proc %d finished with %d undelivered messages", i, n)
			}
		}
	}
	if m.met != nil {
		for s := range m.sh {
			if m.sh[s].flight != nil {
				m.met.FlightCycles.Merge(m.sh[s].flight)
			}
			if m.sh[s].stall != nil {
				m.met.StallCyclesHist.Merge(m.sh[s].stall)
			}
		}
		if res.Time > m.lastSample || len(m.met.Samples) == 0 {
			m.takeSample(res.Time)
		}
		m.met.SetSimTime(res.Time)
	}
	return res, nil
}

// reset returns the machine to its just-constructed state, keeping the
// capacity of every internal buffer. The rng is reseeded and the skews
// redrawn in construction order, so a re-run replays the exact random
// sequence of a fresh machine.
func (m *Machine) reset() {
	m.resetRecorder()
	m.rng = rand.New(rand.NewSource(m.cfg.Seed))
	for i := range m.skew {
		m.skew[i] = 1 + m.cfg.ProcSkew*m.rng.Float64()
	}
	if m.tr != nil {
		m.tr = &trace.Log{} // the previous Result retains the old log
	}
	if m.faults != nil {
		m.faults = logp.NewFaultRuntime(m.cfg.Faults, m.cfg.P)
	}
	if m.rec != nil {
		m.rec.Begin(prof.RunInfo{
			Params:                   m.cfg.Params,
			Coprocessor:              m.cfg.Coprocessor,
			DisableCapacity:          m.cfg.DisableCapacity,
			HoldCapacityUntilReceive: m.cfg.HoldCapacityUntilReceive,
			BarrierCost:              m.cfg.BarrierCost,
		})
	}
	for i := range m.outCap {
		m.outCap[i] = semaphore{capacity: m.outCap[i].capacity, waiters: m.outCap[i].waiters[:0]}
		m.inCap[i] = semaphore{capacity: m.inCap[i].capacity, waiters: m.inCap[i].waiters[:0]}
	}
	for i := range m.inTransitFrom {
		m.inTransitFrom[i], m.inTransitTo[i] = 0, 0
	}
	m.maxOut, m.maxIn = 0, 0
	m.duplicated = 0
	m.capLedger = m.capLedger[:0]
	m.capWakes = m.capWakes[:0]
	if m.met != nil {
		capUnits := 0
		if !m.cfg.DisableCapacity {
			capUnits = m.cfg.Params.Capacity()
		}
		m.met.Begin(m.cfg.P, capUnits, m.cfg.MetricsEvery)
		for i := range m.lastBusy {
			m.lastBusy[i] = 0
		}
		m.lastSample = 0
		m.nextSample = m.every
	}
	for s := range m.sh {
		sh := &m.sh[s]
		sh.queue.reset()
		sh.deadline = math.MaxInt64
		for d := range sh.out {
			sh.out[d] = sh.out[d][:0]
		}
		if sh.flight != nil {
			sh.flight = metrics.NewHistogram(m.met.FlightCycles.Bounds()...)
		}
		if sh.stall != nil {
			sh.stall = metrics.NewHistogram(m.met.StallCyclesHist.Bounds()...)
		}
		sh.capOps = sh.capOps[:0]
		sh.dropped = 0
	}
	for i := range m.procs {
		p := &m.procs[i]
		for j := range p.inbox {
			p.inbox[j].Data = nil
		}
		p.inbox = p.inbox[:0]
		p.inboxHead = 0
		p.resetOps()
		for j := range p.held {
			p.held[j].msg.Data = nil
		}
		*p = proc{
			id:    p.id,
			shard: p.shard,
			m:     m,
			inbox: p.inbox,
			ops:   p.ops,
			held:  p.held[:0],
		}
	}
}

// runSingle drains the lone queue to exhaustion: the sequential engine.
// With the flight recorder on, the whole drain is one busy span (the
// sequential engine has no windows and no barrier).
func (m *Machine) runSingle() error {
	sh := &m.sh[0]
	var e ent
	if sh.rec != nil {
		t0 := time.Now()
		for sh.popNext(math.MaxInt64, &e) {
			m.dispatch(sh, &e)
		}
		sh.rec.BusyNs += time.Since(t0).Nanoseconds()
		return m.checkDeadlock()
	}
	for sh.popNext(math.MaxInt64, &e) {
		m.dispatch(sh, &e)
	}
	return m.checkDeadlock()
}

// checkDeadlock mirrors the kernel's end-of-run check: the queues drained
// while some processor was still parked with no scheduled wake.
func (m *Machine) checkDeadlock() error {
	var blocked []string
	for i := range m.procs {
		p := &m.procs[i]
		if !p.retired && p.blocked {
			blocked = append(blocked, fmt.Sprintf("proc%d", i))
		}
	}
	if len(blocked) == 0 {
		return nil
	}
	var t int64
	for s := range m.sh {
		if m.sh[s].now > t {
			t = m.sh[s].now
		}
	}
	return &sim.DeadlockError{Time: sim.Time(t), Blocked: blocked}
}

// dispatch executes one event on its shard.
func (m *Machine) dispatch(sh *shard, e *ent) {
	if sh.rec != nil {
		sh.rec.Events++
	}
	switch e.kind {
	case evWake:
		m.resumeProc(sh, &m.procs[e.proc])
	case evDeliver:
		m.deliver(sh, e)
	case evArrive:
		m.arrive(sh, e)
	case evFail:
		m.kill(&m.procs[e.proc])
	case evSample:
		m.sample(sh)
	}
}

// resumeProc continues a processor at its recorded continuation.
func (m *Machine) resumeProc(sh *shard, p *proc) {
	if p.retired {
		return
	}
	switch p.resume {
	case rStart:
		m.prog.Start(p)
		m.step(sh, p)
	case rComputeDone:
		p.stats.Compute += p.pend
		m.record(p, trace.Compute, p.waitStart, sh.now)
		if m.rec != nil {
			m.rec.Compute(int(p.id), p.pend)
		}
		p.opHead++
		m.step(sh, p)
	case rWaitDone, rWaitUntilDone:
		m.record(p, trace.Idle, p.waitStart, sh.now)
		p.opHead++
		m.step(sh, p)
	case rSendPaid:
		if m.sendAfterOverhead(sh, p) {
			p.opHead++
			m.step(sh, p)
		}
	case rCapOut:
		if m.sendAcquireOut(sh, p) {
			p.opHead++
			m.step(sh, p)
		}
	case rCapIn:
		if m.sendAcquireIn(sh, p) {
			p.opHead++
			m.step(sh, p)
		}
	case rCapGranted:
		// Sharded capacity: the barrier ledger granted both units at sh.now
		// and already injected the message (capGrant). What remains is the
		// sequential sendAcquireIn/sendInject bookkeeping that belongs to the
		// sender: the stall charge and the gap floor for the next send.
		if d := sh.now - p.stallStart; d > 0 {
			p.stats.Stall += d
			if m.met != nil {
				// OnStall splits like OnDeliver: the per-processor counters
				// are owned by this shard, the stall histogram is shared, so
				// observe into shard scratch merged at the end of the run.
				pm := &m.met.Procs[p.id]
				pm.StallEvents.Inc()
				pm.StallCycles.Add(d)
				sh.stall.Observe(d)
			}
		}
		_, lkO, lkG := m.link(int(p.id), int(p.ops[p.opHead].a))
		iv := lkO
		if lkG > iv {
			iv = lkG
		}
		p.nextSend = p.initiation + iv
		if t := sh.now + lkG - lkO; t > p.nextSend {
			p.nextSend = t
		}
		p.opHead++
		m.step(sh, p)
	case rRecvWake:
		// Mirror of the wait loop in logp.Proc.Recv: record the idle
		// segment, halt if fail-stopped, re-wait if the wake was for a
		// message someone else consumed (impossible here, but the loop shape
		// is kept), else pay for the reception.
		m.record(p, trace.Idle, p.waitStart, sh.now)
		if p.failed {
			m.failProc(sh, p)
			return
		}
		if p.pending() == 0 {
			p.waitStart = sh.now
			p.waiting, p.blocked = true, true
			p.resume = rRecvWake
			return
		}
		if m.beginRecvPay(sh, p) {
			m.recvComplete(sh, p)
		}
	case rRecvPaid:
		m.recvComplete(sh, p)
	}
}

// step drives the processor forward: execute recorded operations until one
// parks, then (once the buffer drains) finish if Done was recorded, or
// receive the next message — paying reception costs and running the Message
// handler inline when possible.
func (m *Machine) step(sh *shard, p *proc) {
	for {
		for p.opHead < len(p.ops) {
			if !m.execOp(sh, p) {
				return
			}
			p.opHead++
		}
		p.resetOps()
		if p.done {
			m.finish(sh, p)
			return
		}
		// The driver's p.Recv(): fail check, Recv hook, wait for arrival.
		if p.failed {
			m.failProc(sh, p)
			return
		}
		if m.rec != nil {
			m.rec.Recv(int(p.id))
		}
		if p.pending() == 0 {
			p.waitStart = sh.now
			p.waiting, p.blocked = true, true
			p.resume = rRecvWake
			return
		}
		if !m.beginRecvPay(sh, p) {
			return
		}
		m.finishRecvBook(sh, p)
		msg := p.cur
		p.cur.Data = nil
		m.prog.Message(p, msg)
	}
}

// parkUntil advances the clock to t in place when the queue allows it
// (returning true to continue inline), else schedules a wake at t with the
// given continuation and returns false.
func (m *Machine) parkUntil(sh *shard, p *proc, t int64, cont uint8) bool {
	if sh.canAdvance(t) {
		sh.now = t
		return true
	}
	p.resume = cont
	sh.scheduleAt(t, evWake, p.id)
	return false
}

// execOp charges the operation at the op cursor. It returns false if the
// processor parked (or halted); the caller advances the cursor on true.
func (m *Machine) execOp(sh *shard, p *proc) bool {
	o := &p.ops[p.opHead]
	switch o.kind {
	case oCompute:
		cycles := o.a
		if cycles < 0 {
			panic(fmt.Sprintf("logp: negative compute %d", cycles))
		}
		if p.failed {
			m.failProc(sh, p)
			return false
		}
		if cycles == 0 {
			return true
		}
		if m.topol != nil {
			if r := m.topol.Rate(int(p.id)); r != 1 {
				cycles = int64(float64(cycles) * r)
			}
		}
		if m.skew != nil {
			cycles = int64(float64(cycles) * m.skew[p.id])
		}
		if j := m.cfg.ComputeJitter; j > 0 {
			cycles += int64(float64(cycles) * j * m.rng.Float64())
		}
		if m.faults != nil {
			if f := m.faults.SlowFactor(int(p.id), sh.now); f > 1 {
				cycles = int64(float64(cycles) * f)
			}
		}
		p.pend = cycles
		p.waitStart = sh.now
		if t := sh.now + cycles; t > sh.now {
			if !m.parkUntil(sh, p, t, rComputeDone) {
				return false
			}
		}
		p.stats.Compute += cycles
		m.record(p, trace.Compute, p.waitStart, sh.now)
		if m.rec != nil {
			m.rec.Compute(int(p.id), cycles)
		}
		return true
	case oWait:
		if p.failed {
			m.failProc(sh, p)
			return false
		}
		if o.a <= 0 {
			return true
		}
		if m.rec != nil {
			m.rec.Wait(int(p.id), o.a)
		}
		p.waitStart = sh.now
		if !m.parkUntil(sh, p, sh.now+o.a, rWaitDone) {
			return false
		}
		m.record(p, trace.Idle, p.waitStart, sh.now)
		return true
	case oWaitUntil:
		if p.failed {
			m.failProc(sh, p)
			return false
		}
		if m.rec != nil {
			m.rec.WaitUntil(int(p.id), o.a)
		}
		if o.a <= sh.now {
			return true
		}
		p.waitStart = sh.now
		if !m.parkUntil(sh, p, o.a, rWaitUntilDone) {
			return false
		}
		m.record(p, trace.Idle, p.waitStart, sh.now)
		return true
	default: // oSend
		return m.execSend(sh, p, o)
	}
}

// execSend begins a send: the gap wait and the o-cycle overhead share one
// park, exactly as in logp.Proc.Send.
func (m *Machine) execSend(sh *shard, p *proc, o *op) bool {
	to := int(o.a)
	if to == int(p.id) {
		panic(fmt.Sprintf("logp: proc %d sending to itself", p.id))
	}
	if to < 0 || to >= m.cfg.P {
		panic(fmt.Sprintf("logp: proc %d sending to %d out of range", p.id, to))
	}
	if p.failed {
		m.failProc(sh, p)
		return false
	}
	start := sh.now
	p.sendStart = start
	initiation := start
	if p.nextSend > initiation {
		initiation = p.nextSend
	}
	p.initiation = initiation
	_, lkO, _ := m.link(int(p.id), to)
	if t := initiation + lkO; t > sh.now {
		if !m.parkUntil(sh, p, t, rSendPaid) {
			m.bufferParkedSend(sh, p, o)
			return false
		}
	}
	return m.sendAfterOverhead(sh, p)
}

// bufferParkedSend emits a parked send's cross-shard delivery into the
// outbox at park time, while the full o+L lookahead still lies ahead. The
// rSendPaid wake may fire in a later window, where only L cycles separate
// it from the delivery — less than the window span, so injecting there
// could land the message behind the destination shard's clock. At park
// time the whole flight is already determined (sharded runs have no
// capacity stalls, jitter or faults): the wake fires at initiation+o and
// the message lands exactly L later. Shard-local destinations keep the
// wake-time injection — scheduling into the shard's own queue never
// outruns its own clock.
func (m *Machine) bufferParkedSend(sh *shard, p *proc, o *op) {
	if sh.out == nil {
		return
	}
	to := int32(o.a)
	ds := m.shardOf(int(to))
	if ds == sh.idx {
		return
	}
	// The flight is the link's own o+L, which is at least the machine-wide
	// minOL the window spans — so the buffered delivery still lands at or
	// after the window end.
	lkL, lkO, _ := m.link(int(p.id), int(to))
	t := p.initiation + lkO + lkL
	sh.out[ds] = append(sh.out[ds], event{
		kind:   evDeliver,
		proc:   to,
		t:      t,
		flight: lkL,
		msg:    logp.Message{From: int(p.id), To: int(to), Tag: int(o.b), Data: o.data, Size: 1, SentAt: p.initiation},
	})
	o.data = nil
	p.sentEarly = true
}

// sendAfterOverhead continues a send once the overhead is paid: statistics,
// hooks, then the capacity acquires (or straight to injection).
func (m *Machine) sendAfterOverhead(sh *shard, p *proc) bool {
	o := &p.ops[p.opHead]
	to := int(o.a)
	_, lkO, _ := m.link(int(p.id), to)
	p.stats.SendOverhead += lkO
	p.stats.MsgsSent++
	if p.initiation > p.sendStart {
		m.record(p, trace.Idle, p.sendStart, p.initiation)
	}
	m.record(p, trace.SendOverhead, p.initiation, sh.now)
	if m.met != nil {
		m.met.OnSend(int(p.id), to)
	}
	if m.outCap != nil {
		p.stallStart = sh.now
		if m.capSharded {
			// Sharded capacity: every send pauses here, even when both units
			// are free — whether they are free at this instant depends on
			// releases other shards are producing concurrently. The acquire
			// goes into the window ledger (trig: the park time of the wake
			// that ran this attempt, i.e. the send's start) and the barrier
			// replays all shards' ledgers in sim-time order, granting via
			// capGrant and waking the sender with rCapGranted. p.resume
			// doubles as the replay stage marker: rCapOut = holding nothing,
			// rCapIn = holding the out unit, exactly the sequential codes.
			p.blocked = true
			p.resume = rCapOut
			sh.capOps = append(sh.capOps, capOp{
				t: sh.now, trig: p.sendStart, kind: opAcquire, from: p.id, to: int32(to),
			})
			return false
		}
		return m.sendAcquireOut(sh, p)
	}
	m.sendInject(sh, p)
	return true
}

// sendAcquireOut waits for an out-capacity unit (re-entered on every wake,
// re-queueing at the back on a failed re-check, like sim.Semaphore.Acquire).
func (m *Machine) sendAcquireOut(sh *shard, p *proc) bool {
	s := &m.outCap[p.id]
	if s.used >= s.capacity {
		m.semWait(s, p, rCapOut)
		return false
	}
	s.used++
	return m.sendAcquireIn(sh, p)
}

// sendAcquireIn waits for the destination's in-capacity unit, then settles
// the stall accounting and injects.
func (m *Machine) sendAcquireIn(sh *shard, p *proc) bool {
	o := &p.ops[p.opHead]
	to := int(o.a)
	s := &m.inCap[to]
	if s.used >= s.capacity {
		m.semWait(s, p, rCapIn)
		return false
	}
	s.used++
	if d := sh.now - p.stallStart; d > 0 {
		p.stats.Stall += d
		m.record(p, trace.Stall, p.stallStart, sh.now)
		if m.met != nil {
			m.met.OnStall(int(p.id), d)
		}
	}
	m.sendInject(sh, p)
	return true
}

// sendInject injects the message into the network: in-transit accounting,
// gap bookkeeping, the latency draw, the fault fate, and the delivery event.
func (m *Machine) sendInject(sh *shard, p *proc) {
	o := &p.ops[p.opHead]
	to := int(o.a)
	tag := int(o.b)
	if m.inTransitFrom != nil {
		m.inTransitFrom[p.id]++
		m.inTransitTo[to]++
		if u := int(m.inTransitFrom[p.id]); u > m.maxOut {
			m.maxOut = u
		}
		if u := int(m.inTransitTo[to]); u > m.maxIn {
			m.maxIn = u
		}
	}
	lkL, lkO, lkG := m.link(int(p.id), to)
	injection := sh.now
	iv := lkO
	if lkG > iv {
		iv = lkG
	}
	p.nextSend = p.initiation + iv
	if t := injection + lkG - lkO; t > p.nextSend {
		p.nextSend = t
	}
	if p.sentEarly {
		// The delivery was buffered at park time (bufferParkedSend); only
		// the gap bookkeeping above remains to be done at the wake.
		p.sentEarly = false
		return
	}
	lat := lkL
	if m.cfg.LatencyJitter > 0 {
		lat -= m.rng.Int63n(m.cfg.LatencyJitter + 1)
	}
	var drop, dup bool
	var dupLat int64
	if m.faults != nil {
		lat, drop, dup, dupLat = m.faults.MessageFate(int(p.id), to, lat)
	}
	if m.rec != nil {
		m.rec.Send(int(p.id), to, tag, lat)
		if drop {
			m.rec.DropLast(int(p.id))
		}
	}
	msg := logp.Message{From: int(p.id), To: to, Tag: tag, Data: o.data, Size: 1, SentAt: p.initiation}
	o.data = nil
	m.scheduleDeliver(sh, injection+lat, &msg, lat, drop)
	if dup {
		if m.rec != nil {
			m.rec.Dup(int(p.id), to, tag, 1, dupLat)
		}
		dupMsg := msg.AsDup()
		m.scheduleDeliver(sh, injection+dupLat, &dupMsg, dupLat, false)
	}
}

// scheduleDeliver routes a delivery event to the destination's shard: the
// local queue when the destination is shard-local, else the per-destination
// outbox merged at the next window barrier.
func (m *Machine) scheduleDeliver(sh *shard, t int64, msg *logp.Message, flight int64, drop bool) {
	ds := m.shardOf(msg.To)
	if ds == sh.idx {
		sh.queue.scheduleDeliver(t, int32(msg.To), msg, flight, drop)
		return
	}
	sh.out[ds] = append(sh.out[ds], event{kind: evDeliver, proc: int32(msg.To), msg: *msg, flight: flight, drop: drop, t: t})
}

// deliver completes a message flight: the mirror of logp's delivery event.
// The payload is read in place from the queue arena and its slot freed once
// the message has been copied onward (or dropped).
func (m *Machine) deliver(sh *shard, e *ent) {
	pay := &sh.arena[e.idx]
	pay.msg.ArrivedAt = sh.now
	msg := &pay.msg
	dst := &m.procs[e.proc]
	if e.drop || dst.failed {
		sh.dropped++
		if m.met != nil {
			m.met.OnDrop(msg.To)
		}
		if !msg.Dup() {
			m.settleAt(sh, msg, pay.flight)
		}
		sh.freePayload(e.idx)
		return
	}
	if m.capSharded && capBlocked(dst) {
		// dst is parked at a capacity acquire: the barrier may grant it at
		// an instant before now and rewind its execution, which must not
		// observe this arrival yet. The release belongs to this instant
		// regardless (a drop to a dead destination settles identically), so
		// it is recorded now; the inbox push and the delivery-vs-drop
		// metrics are deferred to the grant (capFlush).
		if !m.cfg.HoldCapacityUntilReceive && !msg.Dup() {
			m.settleAt(sh, msg, pay.flight)
		}
		dst.held = append(dst.held, heldEvent{t: sh.now, kind: evDeliver, flight: pay.flight, msg: *msg})
		sh.freePayload(e.idx)
		return
	}
	dst.pushInbox(msg)
	if msg.Dup() {
		m.duplicated++
		if m.met != nil {
			m.met.OnDup(msg.To)
		}
	} else {
		if m.met != nil {
			// OnDeliver splits under sharding: the per-processor counter is
			// owned by the destination shard, but the flight histogram is
			// shared, so sharded runs observe into shard scratch instead.
			if sh.flight != nil {
				m.met.Procs[msg.To].Delivered.Inc()
				sh.flight.Observe(pay.flight)
			} else {
				m.met.OnDeliver(msg.To, pay.flight)
			}
		}
		if !m.cfg.HoldCapacityUntilReceive {
			m.settleAt(sh, msg, pay.flight)
		}
	}
	sh.freePayload(e.idx)
	if dst.waiting {
		dst.waiting, dst.blocked = false, false
		sh.scheduleAt(sh.now, evWake, dst.id)
	}
}

// arrive completes a deferred arrival (capacity-sharded runs): the delivery
// originally dispatched while its destination was parked at a capacity
// acquire and was rescheduled past the grant (capFlush). Its settle and
// release already ran at the original dispatch; what remains mirrors the
// tail of deliver — the drop to a dead destination, the inbox push, the
// delivery-vs-drop metrics, the receiver wake — plus deferring again if the
// destination has stalled at a new acquire in the meantime.
func (m *Machine) arrive(sh *shard, e *ent) {
	pay := &sh.arena[e.idx]
	msg := &pay.msg
	dst := &m.procs[e.proc]
	if capBlocked(dst) {
		dst.held = append(dst.held, heldEvent{t: sh.now, kind: evDeliver, flight: pay.flight, msg: *msg})
		sh.freePayload(e.idx)
		return
	}
	if dst.failed {
		sh.dropped++
		if m.met != nil {
			m.met.OnDrop(msg.To)
		}
		if m.cfg.HoldCapacityUntilReceive && !msg.Dup() {
			// Hold-mode arrivals settle at reception or drop time; this one
			// dropped, so its release is recorded here (the non-hold release
			// already ran at the original dispatch).
			sh.capOps = append(sh.capOps, capOp{
				t: sh.now, trig: sh.now - pay.flight, kind: opRelease,
				from: int32(msg.From), to: int32(msg.To),
			})
		}
		sh.freePayload(e.idx)
		return
	}
	dst.pushInbox(msg)
	if m.met != nil {
		if sh.flight != nil {
			m.met.Procs[msg.To].Delivered.Inc()
			sh.flight.Observe(pay.flight)
		} else {
			m.met.OnDeliver(msg.To, pay.flight)
		}
	}
	sh.freePayload(e.idx)
	if dst.waiting {
		dst.waiting, dst.blocked = false, false
		sh.scheduleAt(sh.now, evWake, dst.id)
	}
}

// settle ends a message's in-transit accounting and frees its capacity
// slots (single-shard runs; in capacity-sharded runs the barrier replay
// performs the equivalent release via capOp).
func (m *Machine) settle(msg *logp.Message) {
	if m.inTransitFrom != nil {
		m.inTransitFrom[msg.From]--
		m.inTransitTo[msg.To]--
	}
	if m.outCap != nil {
		m.semRelease(&m.outCap[msg.From])
		m.semRelease(&m.inCap[msg.To])
	}
}

// settleAt settles a message at a delivery point: directly in sequential
// runs, or — capacity-sharded — as a release recorded in the window ledger,
// to be replayed at the barrier (the semaphores and in-transit counts are
// machine-wide and may not be touched mid-window). The trig tie-break is the
// injection time (arrival minus flight): the sim time at which the sequential
// engine scheduled this delivery event.
func (m *Machine) settleAt(sh *shard, msg *logp.Message, flight int64) {
	if m.capSharded {
		sh.capOps = append(sh.capOps, capOp{
			t: sh.now, trig: sh.now - flight, kind: opRelease,
			from: int32(msg.From), to: int32(msg.To),
		})
		return
	}
	m.settle(msg)
}

// semWait queues the processor on the semaphore (mirror of Signal.Wait +
// Process.Block).
func (m *Machine) semWait(s *semaphore, p *proc, cont uint8) {
	if s.head == len(s.waiters) {
		s.waiters = s.waiters[:0]
		s.head = 0
	}
	s.waiters = append(s.waiters, p.id)
	p.blocked = true
	p.resume = cont
}

// semRelease frees one unit and wakes the longest-stalled acquirer (mirror
// of sim.Semaphore.Release: Notify → Unblock → a wake at the current time).
func (m *Machine) semRelease(s *semaphore) {
	if s.used == 0 {
		panic("flat: semaphore release without acquire")
	}
	s.used--
	if s.head < len(s.waiters) {
		w := s.waiters[s.head]
		s.head++
		p := &m.procs[w]
		p.blocked = false
		sh := &m.sh[p.shard]
		sh.scheduleAt(sh.now, evWake, p.id)
	}
}

// beginRecvPay pops the earliest message and starts paying the reception
// costs (gap wait + overhead in one park). True means the cost completed
// inline; false means the processor parked with resume = rRecvPaid.
func (m *Machine) beginRecvPay(sh *shard, p *proc) bool {
	p.cur = p.popInbox()
	arrived := sh.now
	p.recvArrive = arrived
	start := arrived
	if p.nextRecv > start {
		start = p.nextRecv
	}
	p.recvFrom = start
	_, lkO, _ := m.link(p.cur.From, p.cur.To)
	cost := m.recvCost(&p.cur, lkO)
	p.recvPay = cost
	if t := start + cost; t > sh.now {
		if !m.parkUntil(sh, p, t, rRecvPaid) {
			return false
		}
	}
	return true
}

// recvCost mirrors logp.Proc.recvCost: o per word of the arriving link
// without a coprocessor, that link's o once with one.
func (m *Machine) recvCost(msg *logp.Message, lkO int64) int64 {
	words := msg.Size
	if words < 1 {
		words = 1
	}
	if m.cfg.Coprocessor {
		return lkO
	}
	return int64(words) * lkO
}

// finishRecvBook completes the reception bookkeeping (the tail of
// logp.Proc.finishRecv).
func (m *Machine) finishRecvBook(sh *shard, p *proc) {
	cost := p.recvPay
	start := p.recvFrom
	arrived := p.recvArrive
	p.stats.RecvOverhead += cost
	p.stats.MsgsReceived++
	if start > arrived {
		m.record(p, trace.Idle, arrived, start)
	}
	m.record(p, trace.RecvOverhead, start, sh.now)
	_, lkO, lkG := m.link(p.cur.From, p.cur.To)
	iv := lkO
	if lkG > iv {
		iv = lkG
	}
	p.nextRecv = start + iv
	if t := start + cost; t > p.nextRecv {
		p.nextRecv = t
	}
	if m.cfg.HoldCapacityUntilReceive && !p.cur.Dup() {
		if m.capSharded {
			// Hold-mode release at reception end: trig is the arrival time —
			// when the reception (and so this release) was set in motion.
			sh.capOps = append(sh.capOps, capOp{
				t: sh.now, trig: p.recvArrive, kind: opRelease,
				from: int32(p.cur.From), to: int32(p.cur.To),
			})
		} else {
			m.settle(&p.cur)
		}
	}
	if m.rec != nil {
		m.rec.RecvDone(int(p.id))
	}
	if m.met != nil {
		m.met.OnRecv(int(p.id))
	}
}

// recvComplete finishes a parked reception: bookkeeping, the Message
// handler, then onward stepping.
func (m *Machine) recvComplete(sh *shard, p *proc) {
	m.finishRecvBook(sh, p)
	msg := p.cur
	p.cur.Data = nil
	m.prog.Message(p, msg)
	m.step(sh, p)
}

// finish retires a processor that recorded Done.
func (m *Machine) finish(sh *shard, p *proc) {
	p.retired = true
	sh.live--
	p.stats.Finish = sh.now
}

// failProc halts a fail-stopped processor at an operation boundary: the
// mirror of the procFailure unwind in logp.Machine.Run.
func (m *Machine) failProc(sh *shard, p *proc) {
	p.retired = true
	p.blocked = false
	sh.live--
	p.stats.Finish = sh.now
	if m.rec != nil {
		m.rec.FailStop(int(p.id), p.stats.Finish)
	}
	p.resetOps()
}

// kill marks a processor fail-stopped and wakes a blocked receiver (the
// mirror of logp.Machine.kill).
func (m *Machine) kill(p *proc) {
	if p.failed {
		return
	}
	if m.capSharded && capBlocked(p) {
		// p is parked at a capacity acquire: a barrier grant may rewind it
		// to a time before this kill, and the sends it performs there must
		// not see the failed flag early (the sequential engine grants a
		// queued acquire posthumously and halts the victim at the next
		// operation boundary). Applied — or rescheduled — at grant time.
		p.held = append(p.held, heldEvent{t: m.sh[p.shard].now, kind: evFail})
		return
	}
	p.failed = true
	if p.waiting {
		p.waiting, p.blocked = false, false
		sh := &m.sh[p.shard]
		sh.scheduleAt(sh.now, evWake, p.id)
	}
}

// sample is the recurring metrics sampler (single-shard runs): the mirror
// of logp's sampleEvent.RunEvent, including the quiescence check that keeps
// deadlock detection alive.
func (m *Machine) sample(sh *shard) {
	if sh.live == 0 {
		return
	}
	m.takeSample(sh.now)
	if sh.pending() == 0 {
		return
	}
	sh.scheduleAt(sh.now+m.every, evSample, 0)
}

// takeSample appends one time-series point stamped now (the mirror of
// logp.Machine.takeSample; in-flight gauges read zero in sharded runs).
func (m *Machine) takeSample(now int64) {
	n := m.cfg.P
	s := metrics.Sample{
		Time:         now,
		Delivered:    m.met.DeliveredTotal(),
		InFlightFrom: make([]int32, n),
		InFlightTo:   make([]int32, n),
		InboxDepth:   make([]int32, n),
		StallCycles:  make([]int64, n),
		Utilization:  make([]float64, n),
	}
	interval := now - m.lastSample
	for i := range m.procs {
		pr := &m.procs[i]
		if m.shards == 1 && m.inTransitFrom != nil {
			// Sharded runs keep the sample gauges zero even when the barrier
			// replay tracks in-transit counts exactly (capacity mode): the
			// mid-window state a sequential sampler would observe at this
			// instant is not reconstructible at a barrier.
			s.InFlightFrom[i] = m.inTransitFrom[i]
			s.InFlightTo[i] = m.inTransitTo[i]
		}
		s.InboxDepth[i] = int32(pr.pending())
		s.StallCycles[i] = pr.stats.Stall
		busy := pr.stats.Compute + pr.stats.SendOverhead + pr.stats.RecvOverhead + pr.stats.Stall
		if interval > 0 {
			u := float64(busy-m.lastBusy[i]) / float64(interval)
			if u > 1 {
				u = 1 // busy cycles granted mid-operation can overshoot the interval
			}
			s.Utilization[i] = u
		}
		m.lastBusy[i] = busy
	}
	m.lastSample = now
	m.met.AddSample(s)
}

// record appends a trace segment when tracing is on.
func (m *Machine) record(p *proc, kind trace.Kind, start, end int64) {
	if m.tr != nil {
		m.tr.Add(int(p.id), kind, start, end)
	}
}
