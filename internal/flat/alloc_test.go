package flat_test

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
)

// ringFlood is the zero-alloc workload: every processor streams msgs nil
// messages to its ring successor and finishes after msgs receptions.
func ringFlood(msgs, p int) logp.Program {
	expect := make([]int, p)
	for i := range expect {
		expect[i] = msgs
	}
	return newRingExpect(msgs, expect)
}

func newRingMachine(b *testing.B, msgs, p, shards int) *flat.Machine {
	cfg := logp.Config{
		Params:          core.Params{P: p, L: 8, O: 2, G: 3},
		DisableCapacity: true,
	}
	m, err := flat.New(cfg, ringFlood(msgs, p), shards)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// TestFlatZeroAllocPerMessage pins the hooks-off flat hot path zero-alloc
// per message, by the same differencing scheme as the goroutine-machine
// tests at the repo root: run a small and a large message count and charge
// only the difference to the messages, cancelling per-run setup costs.
func TestFlatZeroAllocPerMessage(t *testing.T) {
	const (
		p     = 8
		small = 500
		large = 2500
	)
	measure := func(msgs int) float64 {
		return testing.AllocsPerRun(10, func() {
			cfg := logp.Config{
				Params:          core.Params{P: p, L: 8, O: 2, G: 3},
				DisableCapacity: true,
			}
			if _, err := flat.Run(cfg, ringFlood(msgs, p), 1); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocSmall := measure(small)
	allocLarge := measure(large)
	perMsg := (allocLarge - allocSmall) / float64((large-small)*p)
	if perMsg > 0.01 {
		t.Errorf("flat path allocates %.4f allocs/message (small run %.0f, large run %.0f)",
			perMsg, allocSmall, allocLarge)
	}
}

// BenchmarkFlatRingThroughput is the in-package counterpart of the repo
// root's engine benchmarks: P processors flooding their ring successors on
// the sequential flat core. The machine is built once and re-Run, so the
// timed loop measures steady-state messaging, not construction.
func BenchmarkFlatRingThroughput(b *testing.B) {
	const msgs, p = 2000, 8
	m := newRingMachine(b, msgs, p, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Messages != msgs*p {
			b.Fatalf("delivered %d messages, want %d", res.Messages, msgs*p)
		}
	}
	b.ReportMetric(float64(b.N*msgs*p)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkFlatShardedRingThroughput exercises the windowed core on the same
// workload at a larger P, where the per-window fan-out has shards to feed.
func BenchmarkFlatShardedRingThroughput(b *testing.B) {
	const msgs, p, shards = 200, 256, 8
	m := newRingMachine(b, msgs, p, shards)
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		res, err := m.Run()
		if err != nil {
			b.Fatal(err)
		}
		if res.Messages != msgs*p {
			b.Fatalf("delivered %d messages, want %d", res.Messages, msgs*p)
		}
	}
	b.ReportMetric(float64(b.N*msgs*p)/b.Elapsed().Seconds(), "msgs/s")
}
