package flat

import (
	"math"
	"sort"
	"sync"
	"time"

	"github.com/logp-model/logp/internal/logp"
)

// runSharded executes the machine in conservative lookahead windows. Each
// round: find M, the earliest pending event machine-wide; let every shard
// execute its events in [M, M+W) concurrently, where W is the horizon
// min(o+L) over all links (the global o+L without a topology); then merge
// the cross-shard deliveries each shard buffered, in fixed (destination,
// source, append) order, and advance to the next window.
//
// Safety: within a window a shard touches only its own processors, its own
// queue, and metric cells owned by its processors (sender-side counters and
// link rows on sends, destination-side counters on deliveries, a shard-local
// flight histogram), so shards share no mutable state. Every cross-shard
// delivery buffered during a window lands at or after the window end — after
// the merge point — because outbox entries are emitted only at points where
// the full o+L lookahead of the message's own link lies ahead, and every
// link's o+L is at least the minOL the window spans: an inline injection at
// time t >= M follows an overhead charge that began at initiation >= t-o...
// >= M, putting its delivery at initiation+o+L >= M+minOL, and a send that
// parks for its overhead buffers its delivery at park time
// (bufferParkedSend), with t_deliver = initiation+o+L >= M+minOL. The park
// case is load-bearing: an rSendPaid wake can fire in a later window, where
// only L cycles — less than the window span — separate it from delivery, so
// injecting there could land the message behind a destination shard whose
// clock ran ahead via Wait/WaitUntil/Compute. Sharded runs disallow latency
// jitter, capacity stalls and faults, so the park-time flight is exact.
// Under a tiered topology the window is set by the *cheapest* link class —
// typically the intra-node tier — even though most shard boundaries carry
// only expensive cluster links: the partition is by contiguous ID block, so
// a node can straddle a boundary and put fast links cross-shard, and minOL
// is the only bound that is sound for every partition.
//
// Capacity mode (capSharded) replaces the outboxes with a window ledger. The
// capacity semaphores couple processors across shards, so no shard may decide
// a stall-vs-go outcome mid-window: every send instead parks at its acquire
// point and appends an acquire record; every settling delivery appends a
// release record. The barrier merges all shards' records, sorts them into a
// single sim-time order, and replays them single-threaded against the
// machine-wide semaphores (replayCapacity), granting via capGrant — which
// injects the delivery at grant+L of the message's link and wakes the sender
// at the grant instant, rewinding the sender's queue clock when its window
// ran past it. The window narrows to min(L)+1 so a grant at gt >= M
// schedules its delivery at gt+L(link) >= gt+minL >= M+minL >= every shard's
// clock (each at most M+minL after its window). Fail-stop faults stay
// admissible: a kill is an event on the victim's own shard, and a victim
// parked in a capacity queue stays parked, exactly as in the sequential
// engine.
//
// Determinism: each shard's window execution is sequential, so its outbox
// order is a pure function of its pre-window state; the merge order is
// fixed; ledger records carry only pure sim-time fields and the replay is
// single-threaded over a totally ordered sort of them; therefore the run is
// bit-identical for any GOMAXPROCS setting, including 1 — and, in capacity
// mode, for any shard count.
func (m *Machine) runSharded() error {
	var wg sync.WaitGroup
	for {
		M := int64(math.MaxInt64)
		found := false
		for s := range m.sh {
			if t, ok := m.sh[s].nextTime(); ok && (!found || t < M) {
				M = t
				found = true
			}
		}
		if !found {
			break
		}
		wend := M + m.horizon
		if wend < M { // saturate on overflow
			wend = math.MaxInt64
		}
		wg.Add(len(m.sh))
		for s := range m.sh {
			sh := &m.sh[s]
			go func() {
				defer wg.Done()
				sh.deadline = wend - 1
				var e ent
				if sh.rec == nil {
					for sh.popNext(wend, &e) {
						m.dispatch(sh, &e)
					}
					return
				}
				// Flight recorder on: stamp the window's busy span and the
				// finish instant the barrier differencing reads. Wall clock
				// only — sim state is untouched, so the Result is identical.
				sh.rec.Windows++
				t0 := time.Now()
				for sh.popNext(wend, &e) {
					m.dispatch(sh, &e)
				}
				end := time.Now()
				sh.rec.BusyNs += end.Sub(t0).Nanoseconds()
				m.fr.finish[sh.idx] = end
			}()
		}
		wg.Wait()
		if m.fr != nil {
			// Per-shard barrier wait: the gap between a shard's own window
			// finish and the moment the slowest shard released the barrier.
			bend := time.Now()
			for s := range m.sh {
				m.fr.stats[s].BarrierWaitNs += bend.Sub(m.fr.finish[s]).Nanoseconds()
			}
		}
		if m.capSharded {
			m.replayCapacity()
		} else {
			for d := range m.sh {
				dst := &m.sh[d]
				for s := range m.sh {
					buf := m.sh[s].out[d]
					if dst.rec != nil {
						dst.rec.MergedIn += int64(len(buf))
					}
					for i := range buf {
						dst.schedule(buf[i].t, &buf[i])
						buf[i].msg.Data = nil
					}
					m.sh[s].out[d] = buf[:0]
				}
			}
		}
		if m.met != nil {
			// Window-barrier sampling: the per-event sampler of sequential
			// runs cannot fire inside a window (it reads machine-wide state),
			// so sharded runs sample at the barrier for every interval the
			// window covered. Deterministic for a given shard count.
			live := 0
			for s := range m.sh {
				live += m.sh[s].live
			}
			for m.nextSample < wend {
				if live > 0 {
					m.takeSample(m.nextSample)
				}
				m.nextSample += m.every
			}
		}
	}
	return m.checkDeadlock()
}

// replayCapacity merges every shard's window ledger and replays it
// single-threaded against the machine-wide capacity semaphores, in a total
// order built from pure sim-time fields: (t, trig, releases-before-acquires,
// from, to). t is when the operation occurred; trig is when it was set in
// motion — the injection time for a delivery's release, the send start for
// an acquire — standing in for the sequential engine's scheduling-order seq.
// Releases sort first at an equal (t, trig) because a unit freed at an
// instant is acquirable at that instant. Two records that compare equal are
// necessarily same-link releases with identical effects, so sort.Slice's
// instability cannot perturb the outcome.
//
// Within one instant the replay runs recorded operations in sorted order —
// releases free units and pop their longest-stalled waiter into the pending
// wake list; fresh acquires try out-then-in, parking FIFO on the full
// semaphore — and then resolves the pending wakes, which re-check from their
// recorded stage and re-queue at the back on failure. That is the barging
// re-check of sim.Semaphore.Acquire: a fresh same-instant acquire (whose
// wake event predates the release in the sequential engine) may take a freed
// unit ahead of the popped waiter.
//
// The replay stops after the first instant that grants anything, carrying
// the unprocessed tail of the ledger to the next barrier. A grant at gt
// resumes its sender at gt, and the resumed execution can record new
// operations at any time from gt onward — times that an op already sitting
// later in this ledger may postdate. Processing such an op now would run it
// ahead of operations with smaller sim times (the source of the hazard is
// real: a granted sender's next acquire at gt+o can land between two ops of
// the current ledger). Stopping at the granting instant re-sorts the carried
// tail together with everything the resumed senders record, restoring the
// global time order. Ops at the granting instant itself stay safe: a
// resumed sender's new ops are causally after its grant, and the next
// barrier replays them at that same instant, after this one's.
func (m *Machine) replayCapacity() {
	ops := m.capLedger
	for s := range m.sh {
		ops = append(ops, m.sh[s].capOps...)
		m.sh[s].capOps = m.sh[s].capOps[:0]
	}
	m.capLedger = ops
	if len(ops) == 0 {
		return
	}
	sort.Slice(ops, func(i, j int) bool {
		a, b := &ops[i], &ops[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.trig != b.trig {
			return a.trig < b.trig
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		if a.from != b.from {
			return a.from < b.from
		}
		return a.to < b.to
	})
	i := 0
	for i < len(ops) {
		t := ops[i].t
		granted := false
		for ; i < len(ops) && ops[i].t == t; i++ {
			op := &ops[i]
			if op.kind == opRelease {
				m.inTransitFrom[op.from]--
				m.inTransitTo[op.to]--
				m.capRelease(&m.outCap[op.from])
				m.capRelease(&m.inCap[op.to])
			} else if m.capTryAcquire(&m.procs[op.from], t) {
				granted = true
			}
		}
		for len(m.capWakes) > 0 {
			w := m.capWakes[0]
			m.capWakes = m.capWakes[:copy(m.capWakes, m.capWakes[1:])]
			if m.capTryAcquire(&m.procs[w], t) {
				granted = true
			}
		}
		if granted {
			break
		}
	}
	m.capLedger = m.capLedger[:copy(m.capLedger, ops[i:])]
}

// capFlush applies p's deferred events at its grant instant gt (see
// heldEvent). Events at or before gt apply directly, in dispatch order
// (ascending time — all from p's own shard): a kill sets the failed flag
// (the grant still injects, exactly as the sequential engine's posthumous
// grant), an arrival lands in the inbox — or, when a kill applied first,
// drops just as the sequential engine drops arrivals to a dead processor.
// Events after gt are rescheduled at their original times: the kill as a
// regular evFail, the arrival as an evArrive whose settle and release
// already ran at the original dispatch. p's queue clock has been rewound to
// at most gt, so the reschedules are never in the past.
func (m *Machine) capFlush(p *proc, gt int64) {
	sh := &m.sh[p.shard]
	held := p.held
	if sh.rec != nil {
		sh.rec.HeldReplays += int64(len(held))
	}
	i := 0
	for ; i < len(held) && held[i].t <= gt; i++ {
		h := &held[i]
		if h.kind == evFail {
			p.failed = true
			continue
		}
		if p.failed {
			sh.dropped++
			if m.met != nil {
				m.met.OnDrop(h.msg.To)
			}
			if m.cfg.HoldCapacityUntilReceive && !h.msg.Dup() {
				// Hold-mode drops settle at arrival; recorded now, replayed
				// at the next barrier (the non-hold release already ran at
				// the original dispatch).
				sh.capOps = append(sh.capOps, capOp{
					t: h.t, trig: h.t - h.flight, kind: opRelease,
					from: int32(h.msg.From), to: int32(h.msg.To),
				})
			}
			h.msg.Data = nil
			continue
		}
		p.pushInbox(&h.msg)
		if m.met != nil {
			if sh.flight != nil {
				m.met.Procs[h.msg.To].Delivered.Inc()
				sh.flight.Observe(h.flight)
			} else {
				m.met.OnDeliver(h.msg.To, h.flight)
			}
		}
		h.msg.Data = nil
	}
	for ; i < len(held); i++ {
		h := &held[i]
		if h.kind == evFail {
			sh.scheduleAt(h.t, evFail, p.id)
		} else {
			sh.queue.scheduleArrive(h.t, p.id, &h.msg, h.flight)
			h.msg.Data = nil
		}
	}
	p.held = p.held[:0]
}

// capRelease frees one unit and pops the longest-stalled waiter into the
// pending wake list of the instant being replayed (the ledger twin of
// semRelease; the wake resolves at the end of the instant).
func (m *Machine) capRelease(s *semaphore) {
	if s.used == 0 {
		panic("flat: semaphore release without acquire")
	}
	s.used--
	if s.head < len(s.waiters) {
		m.capWakes = append(m.capWakes, s.waiters[s.head])
		s.head++
	}
}

// capTryAcquire attempts the two-unit acquire for p's pending send during
// the barrier replay, reporting whether it granted. p.resume is the stage
// marker — rCapOut holding nothing, rCapIn holding the out unit, exactly
// the sequential continuation codes — so a re-check after a failed
// in-acquire does not re-take the out unit. A full semaphore parks p at the
// back of its FIFO; success grants both units at instant t.
func (m *Machine) capTryAcquire(p *proc, t int64) bool {
	if p.resume == rCapOut {
		s := &m.outCap[p.id]
		if s.used >= s.capacity {
			m.capParkOn(s, p)
			return false
		}
		s.used++
		p.resume = rCapIn
	}
	s := &m.inCap[p.ops[p.opHead].a]
	if s.used >= s.capacity {
		m.capParkOn(s, p)
		return false
	}
	s.used++
	m.capGrant(p, t)
	return true
}

// capParkOn queues p on the semaphore's FIFO (p is already blocked and its
// resume code already marks the acquire stage).
func (m *Machine) capParkOn(s *semaphore, p *proc) {
	if s.head == len(s.waiters) {
		s.waiters = s.waiters[:0]
		s.head = 0
	}
	s.waiters = append(s.waiters, p.id)
}

// capGrant completes a replayed acquire at instant gt: the in-transit
// accounting and high-water marks (exact here — the replay sees every
// acquire and release in sim-time order), the delivery at gt+L of the
// message's own link into the destination's queue, and the sender's wake at
// gt with resume = rCapGranted for the stall and gap bookkeeping. The
// sender's window may have run past gt, so its queue clock rewinds first;
// the destination's cannot have: the link's L is at least the machine-wide
// minL the capacity window spans, so gt+L(link) >= M+minL bounds every
// clock from above and the delivery never lands in the past.
func (m *Machine) capGrant(p *proc, gt int64) {
	o := &p.ops[p.opHead]
	to := int(o.a)
	m.inTransitFrom[p.id]++
	m.inTransitTo[to]++
	if u := int(m.inTransitFrom[p.id]); u > m.maxOut {
		m.maxOut = u
	}
	if u := int(m.inTransitTo[to]); u > m.maxIn {
		m.maxIn = u
	}
	sq := &m.sh[p.shard].queue
	sq.rewind(gt)
	if len(p.held) > 0 {
		m.capFlush(p, gt)
	}
	msg := logp.Message{From: int(p.id), To: to, Tag: int(o.b), Data: o.data, Size: 1, SentAt: p.initiation}
	o.data = nil
	lkL, _, _ := m.link(int(p.id), to)
	dq := &m.sh[m.shardOf(to)].queue
	if dq.rec != nil {
		dq.rec.MergedIn++
	}
	dq.scheduleDeliver(gt+lkL, int32(to), &msg, lkL, false)
	p.blocked = false
	p.resume = rCapGranted
	sq.scheduleAt(gt, evWake, p.id)
}
