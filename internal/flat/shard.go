package flat

import (
	"math"
	"sync"
)

// runSharded executes the machine in conservative lookahead windows. Each
// round: find M, the earliest pending event machine-wide; let every shard
// execute its events in [M, M+o+L) concurrently; then merge the cross-shard
// deliveries each shard buffered, in fixed (destination, source, append)
// order, and advance to the next window.
//
// Safety: within a window a shard touches only its own processors, its own
// queue, and metric cells owned by its processors (sender-side counters and
// link rows on sends, destination-side counters on deliveries, a shard-local
// flight histogram), so shards share no mutable state. Every cross-shard
// delivery buffered during a window lands at or after the window end — after
// the merge point — because outbox entries are emitted only at points where
// the full o+L lookahead lies ahead: an inline injection at time t >= M
// follows an overhead charge that began at initiation >= t-o... >= M, and a
// send that parks for its overhead buffers its delivery at park time
// (bufferParkedSend), with t_deliver = initiation+o+L >= M+o+L. The park
// case is load-bearing: an rSendPaid wake can fire in a later window, where
// only L cycles — less than the window span — separate it from delivery, so
// injecting there could land the message behind a destination shard whose
// clock ran ahead via Wait/WaitUntil/Compute. Sharded runs disallow latency
// jitter, capacity stalls and faults, so the park-time flight is exact.
// Determinism: each shard's window execution is sequential, so its outbox
// order is a pure function of its pre-window state; the merge order is
// fixed; therefore the run is bit-identical for any GOMAXPROCS setting,
// including 1.
func (m *Machine) runSharded() error {
	var wg sync.WaitGroup
	for {
		M := int64(math.MaxInt64)
		found := false
		for s := range m.sh {
			if t, ok := m.sh[s].nextTime(); ok && (!found || t < M) {
				M = t
				found = true
			}
		}
		if !found {
			break
		}
		wend := M + m.horizon
		if wend < M { // saturate on overflow
			wend = math.MaxInt64
		}
		wg.Add(len(m.sh))
		for s := range m.sh {
			sh := &m.sh[s]
			go func() {
				defer wg.Done()
				sh.deadline = wend - 1
				var e ent
				for sh.popNext(wend, &e) {
					m.dispatch(sh, &e)
				}
			}()
		}
		wg.Wait()
		for d := range m.sh {
			dst := &m.sh[d]
			for s := range m.sh {
				buf := m.sh[s].out[d]
				for i := range buf {
					dst.schedule(buf[i].t, &buf[i])
					buf[i].msg.Data = nil
				}
				m.sh[s].out[d] = buf[:0]
			}
		}
		if m.met != nil {
			// Window-barrier sampling: the per-event sampler of sequential
			// runs cannot fire inside a window (it reads machine-wide state),
			// so sharded runs sample at the barrier for every interval the
			// window covered. Deterministic for a given shard count.
			live := 0
			for s := range m.sh {
				live += m.sh[s].live
			}
			for m.nextSample < wend {
				if live > 0 {
					m.takeSample(m.nextSample)
				}
				m.nextSample += m.every
			}
		}
	}
	return m.checkDeadlock()
}
