package flat

import "time"

// ShardStat is one shard's flight-recorder snapshot: where the sharded
// kernel's wall-clock time and event traffic went. Sim-time results are
// never derived from these fields — the recorder observes the kernel, it
// does not steer it — so a recorded run's Result is bit-identical to an
// unrecorded one.
type ShardStat struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Procs is the number of processors the shard owns.
	Procs int `json:"procs"`
	// Windows counts lookahead windows the shard executed (zero for the
	// sequential engine, which has no windows).
	Windows int64 `json:"windows"`
	// Events counts events this shard dispatched.
	Events int64 `json:"events"`
	// WheelEvents counts queue insertions that landed in the timing wheel
	// (the fast path: within the 128-cycle horizon).
	WheelEvents int64 `json:"wheel_events"`
	// HeapEvents counts queue insertions that overflowed to the 4-ary heap
	// (past the wheel horizon; includes rewind spills).
	HeapEvents int64 `json:"heap_events"`
	// MergedIn counts events injected into this shard at window barriers:
	// outbox deliveries in capacity-off runs, grant-scheduled deliveries in
	// capacity mode.
	MergedIn int64 `json:"merged_in"`
	// HeldReplays counts held events (deliveries and kills deferred while
	// their target was parked at a capacity acquire) replayed at grants.
	HeldReplays int64 `json:"held_replays"`
	// Rewinds counts queue-clock rewinds forced by barrier grants at
	// instants the shard's window had already run past (capacity mode).
	Rewinds int64 `json:"rewinds"`
	// BusyNs is wall-clock nanoseconds the shard's worker spent executing
	// window events.
	BusyNs int64 `json:"busy_ns"`
	// BarrierWaitNs is wall-clock nanoseconds the shard's worker sat idle
	// at window barriers waiting for the slowest shard.
	BarrierWaitNs int64 `json:"barrier_wait_ns"`
}

// flightRecorder holds the per-shard counters while a recorded run executes.
// Each shard's queue carries a pointer into stats, so the hot paths bump
// counters through one nil-checked pointer — the same hook discipline as the
// metrics and profiler integrations, keeping the recorder-off path
// zero-overhead and the recorder-on path allocation-free.
type flightRecorder struct {
	stats  []ShardStat
	finish []time.Time // per-shard window finish stamps, read at the barrier
}

// EnableFlightRecorder starts collecting per-shard kernel statistics on
// subsequent Runs. Enable before Run; the counters reset with the machine at
// each re-Run and accumulate across windows within one run. The recorder
// adds two time stamps per shard per window and counter increments on the
// scheduling paths — it never touches sim state, so Results are unchanged.
func (m *Machine) EnableFlightRecorder() {
	if m.fr != nil {
		return
	}
	m.fr = &flightRecorder{
		stats:  make([]ShardStat, len(m.sh)),
		finish: make([]time.Time, len(m.sh)),
	}
	for s := range m.sh {
		m.sh[s].queue.rec = &m.fr.stats[s]
	}
}

// FlightRecorderEnabled reports whether EnableFlightRecorder has been called.
func (m *Machine) FlightRecorderEnabled() bool { return m.fr != nil }

// ShardStats snapshots the flight recorder after a Run: one entry per
// shard, in shard order, with the identity fields filled in. Nil when the
// recorder is off.
func (m *Machine) ShardStats() []ShardStat {
	if m.fr == nil {
		return nil
	}
	out := make([]ShardStat, len(m.fr.stats))
	copy(out, m.fr.stats)
	for s := range out {
		out[s].Shard = s
		out[s].Procs = m.sh[s].hi - m.sh[s].lo
	}
	return out
}

// resetRecorder zeroes the counters for a re-Run, keeping the queue hook
// pointers wired (the stats slice is reused in place).
func (m *Machine) resetRecorder() {
	if m.fr == nil {
		return
	}
	for s := range m.fr.stats {
		m.fr.stats[s] = ShardStat{}
	}
}
