package flat_test

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/prof"
)

// TestMachineRerunIdentical pins the machine-reuse contract behind the
// steady-state benchmarks: re-Running a Machine replays the run exactly —
// same Result, trace, profile and metrics as a freshly built machine —
// because reset rewinds the rng, the fault runtime and every observer.
func TestMachineRerunIdentical(t *testing.T) {
	cfg := logp.Config{
		Params:       core.Params{P: 4, L: 10, O: 2, G: 3},
		Seed:         42,
		CollectTrace: true,
		Faults: &logp.FaultPlan{
			Seed:    77,
			Default: logp.LinkFault{Jitter: 5},
		},
	}
	run := func(m *flat.Machine, rec *prof.Recorder, reg *metrics.Registry) (logp.Result, [][]prof.Op, []byte) {
		res, err := m.Run()
		if err != nil {
			t.Fatal(err)
		}
		ops := make([][]prof.Op, cfg.P)
		for p := 0; p < cfg.P; p++ {
			ops[p] = append([]prof.Op(nil), rec.Ops(p)...)
		}
		var buf bytes.Buffer
		if err := metrics.WritePrometheus(&buf, reg.Snapshot()); err != nil {
			t.Fatal(err)
		}
		return res, ops, buf.Bytes()
	}
	build := func() (*flat.Machine, *prof.Recorder, *metrics.Registry) {
		c := cfg
		rec := prof.NewRecorder()
		reg := metrics.NewRegistry()
		c.Profiler = rec
		c.Metrics = reg
		c.MetricsEvery = 8
		m, err := flat.New(c, newPingPong(20), 1)
		if err != nil {
			t.Fatal(err)
		}
		return m, rec, reg
	}

	mFresh, recF, regF := build()
	wantRes, wantOps, wantProm := run(mFresh, recF, regF)

	mReused, recR, regR := build()
	if _, _, _ = run(mReused, recR, regR); true {
		// First run primes the machine; the second exercises reset.
	}
	gotRes, gotOps, gotProm := run(mReused, recR, regR)

	// Traces are distinct objects by design; compare contents, then the rest
	// of the Result by value.
	if !reflect.DeepEqual(wantRes.Trace, gotRes.Trace) {
		t.Errorf("re-run trace diverged")
	}
	wantRes.Trace, gotRes.Trace = nil, nil
	if !reflect.DeepEqual(wantRes, gotRes) {
		t.Errorf("re-run Result diverged:\nfresh:  %+v\nre-run: %+v", wantRes, gotRes)
	}
	if !reflect.DeepEqual(wantOps, gotOps) {
		t.Errorf("re-run profile diverged")
	}
	if !bytes.Equal(wantProm, gotProm) {
		t.Errorf("re-run metrics diverged:\nfresh:\n%s\nre-run:\n%s", wantProm, gotProm)
	}
}

// TestMachineRerunIdenticalSharded is the same contract on the windowed
// parallel core.
func TestMachineRerunIdenticalSharded(t *testing.T) {
	cfg := logp.Config{
		Params:          core.Params{P: 16, L: 8, O: 2, G: 3},
		DisableCapacity: true,
	}
	m, err := flat.New(cfg, ringFlood(50, 16), 4)
	if err != nil {
		t.Fatal(err)
	}
	first, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	second, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Errorf("sharded re-run Result diverged:\nfirst:  %+v\nsecond: %+v", first, second)
	}
}
