package flat_test

import (
	"reflect"
	"runtime"
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/progs"
)

// broadcastMachine builds a flat machine running the paper's optimal
// broadcast at P, the flight-recorder test workload (fan-out traffic that
// crosses shards and, with capacity on, exercises the barrier replay).
func broadcastMachine(t testing.TB, p, shards int, nocap bool) *flat.Machine {
	t.Helper()
	params := core.Params{P: p, L: 8, O: 2, G: 3}
	sched, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := flat.New(logp.Config{Params: params, DisableCapacity: nocap},
		progs.NewBroadcast(sched, 1, "datum"), shards)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFlightRecorderResultIdentical pins the acceptance property: a recorded
// run's Result is bit-identical to an unrecorded one — the recorder observes
// wall-clock behavior and never steers sim time — across the sequential,
// capacity-off sharded, and capacity-sharded kernels.
func TestFlightRecorderResultIdentical(t *testing.T) {
	for _, tc := range []struct {
		name   string
		shards int
		nocap  bool
	}{
		{"sequential", 1, false},
		{"sharded-nocap", 4, true},
		{"sharded-capacity", 4, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plain := broadcastMachine(t, 64, tc.shards, tc.nocap)
			want, err := plain.Run()
			if err != nil {
				t.Fatal(err)
			}
			rec := broadcastMachine(t, 64, tc.shards, tc.nocap)
			rec.EnableFlightRecorder()
			got, err := rec.Run()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("recorded Result differs:\nplain    %+v\nrecorded %+v", want, got)
			}
			// And a re-Run resets the counters rather than accumulating.
			first := rec.ShardStats()
			if _, err := rec.Run(); err != nil {
				t.Fatal(err)
			}
			second := rec.ShardStats()
			for s := range first {
				if first[s].Events != second[s].Events {
					t.Errorf("shard %d: re-Run accumulated events (%d then %d)",
						s, first[s].Events, second[s].Events)
				}
			}
		})
	}
}

// TestShardStatsCounters sanity-checks the recorded traffic: every event
// dispatched was inserted somewhere (wheel or heap), sharded runs count
// their windows and barrier merges, and the capacity kernel records its
// grant injections.
func TestShardStatsCounters(t *testing.T) {
	m := broadcastMachine(t, 64, 4, true)
	m.EnableFlightRecorder()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	stats := m.ShardStats()
	if len(stats) != 4 {
		t.Fatalf("ShardStats() returned %d shards, want 4", len(stats))
	}
	var events, inserted, windows, merged int64
	for _, st := range stats {
		if st.Procs != 16 {
			t.Errorf("shard %d owns %d procs, want 16", st.Shard, st.Procs)
		}
		if st.Windows == 0 {
			t.Errorf("shard %d executed no windows", st.Shard)
		}
		events += st.Events
		inserted += st.WheelEvents + st.HeapEvents
		windows += st.Windows
		merged += st.MergedIn
	}
	if events == 0 || inserted < events {
		t.Errorf("dispatched %d events but inserted only %d", events, inserted)
	}
	if merged == 0 {
		t.Error("a 64-proc broadcast over 4 shards must merge cross-shard deliveries")
	}
	// All shards run every window together.
	if windows != 4*stats[0].Windows {
		t.Errorf("unequal window counts across shards: %v", stats)
	}

	// Capacity mode: grants inject deliveries at the barrier (MergedIn) and
	// the recorder sees them; with the broadcast's one-message-per-link tree
	// no send stalls, so held replays may stay zero, but the injections must
	// not.
	cm := broadcastMachine(t, 64, 4, false)
	cm.EnableFlightRecorder()
	if _, err := cm.Run(); err != nil {
		t.Fatal(err)
	}
	var capMerged int64
	for _, st := range cm.ShardStats() {
		capMerged += st.MergedIn
	}
	if capMerged == 0 {
		t.Error("capacity-sharded broadcast recorded no grant injections")
	}

	// Recorder off: ShardStats is nil.
	off := broadcastMachine(t, 64, 4, true)
	if _, err := off.Run(); err != nil {
		t.Fatal(err)
	}
	if off.ShardStats() != nil || off.FlightRecorderEnabled() {
		t.Error("recorder-off machine must report no shard stats")
	}
}

// TestShardStatsOffZeroAllocPerMessage extends the zero-alloc pin to the
// flight recorder: with the recorder compiled in but off (the nil-hook
// default), the flat hot path must stay zero-alloc per message. Same
// differencing scheme as TestFlatZeroAllocPerMessage; the machine is built
// once per size so the recorder's construction-time state (none, when off)
// cannot hide per-message costs.
func TestShardStatsOffZeroAllocPerMessage(t *testing.T) {
	const (
		p     = 8
		small = 500
		large = 2500
	)
	measure := func(msgs int) float64 {
		m, err := flat.New(logp.Config{
			Params:          core.Params{P: p, L: 8, O: 2, G: 3},
			DisableCapacity: true,
		}, ringFlood(msgs, p), 1)
		if err != nil {
			t.Fatal(err)
		}
		if m.FlightRecorderEnabled() {
			t.Fatal("recorder must be off by default")
		}
		return testing.AllocsPerRun(10, func() {
			if _, err := m.Run(); err != nil {
				t.Fatal(err)
			}
		})
	}
	allocSmall := measure(small)
	allocLarge := measure(large)
	perMsg := (allocLarge - allocSmall) / float64((large-small)*p)
	if perMsg > 0.01 {
		t.Errorf("recorder-off flat path allocates %.4f allocs/message (small run %.0f, large run %.0f)",
			perMsg, allocSmall, allocLarge)
	}
}

// TestShardStatsOnSteadyStateAllocFree pins the recorder-on path: after the
// first Run warms the machine's buffers, further recorded runs allocate
// (amortized) nothing per message — the counters are plain fields bumped
// through a pointer, and the snapshot is only built when ShardStats is
// called.
func TestShardStatsOnSteadyStateAllocFree(t *testing.T) {
	const msgs, p = 1000, 8
	m, err := flat.New(logp.Config{
		Params:          core.Params{P: p, L: 8, O: 2, G: 3},
		DisableCapacity: true,
	}, ringFlood(msgs, p), 1)
	if err != nil {
		t.Fatal(err)
	}
	m.EnableFlightRecorder()
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}
	perRun := testing.AllocsPerRun(10, func() {
		if _, err := m.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if perMsg := perRun / float64(msgs*p); perMsg > 0.01 {
		t.Errorf("recorder-on steady state allocates %.4f allocs/message (%.0f per run)", perMsg, perRun)
	}
}

// BenchmarkShardBalance is the kernel-tuning bench the shardbalance
// experiment complements: the sharded broadcast across a (GOMAXPROCS,
// shards, P) matrix with the flight recorder on, reporting the barrier-wait
// fraction — the share of shard-worker wall time spent idle at window
// barriers — alongside throughput. CI uploads this output as the
// shardbalance artifact.
func BenchmarkShardBalance(b *testing.B) {
	maxProcs := runtime.GOMAXPROCS(0)
	for _, procs := range []int{1, 2, 4} {
		if procs > maxProcs {
			continue
		}
		for _, shards := range []int{2, 4, 8} {
			for _, p := range []int{256, 4096} {
				name := benchName(procs, shards, p)
				b.Run(name, func(b *testing.B) {
					prev := runtime.GOMAXPROCS(procs)
					defer runtime.GOMAXPROCS(prev)
					m := broadcastMachine(b, p, shards, false)
					m.EnableFlightRecorder()
					b.ResetTimer()
					for n := 0; n < b.N; n++ {
						if _, err := m.Run(); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					var busy, wait int64
					for _, st := range m.ShardStats() {
						busy += st.BusyNs
						wait += st.BarrierWaitNs
					}
					if busy+wait > 0 {
						b.ReportMetric(float64(wait)/float64(busy+wait), "barrier-wait-frac")
					}
				})
			}
		}
	}
}

// benchName renders one matrix point's sub-benchmark name.
func benchName(procs, shards, p int) string {
	digits := func(n int) string {
		if n == 0 {
			return "0"
		}
		var buf [12]byte
		i := len(buf)
		for n > 0 {
			i--
			buf[i] = byte('0' + n%10)
			n /= 10
		}
		return string(buf[i:])
	}
	return "gomaxprocs=" + digits(procs) + "/shards=" + digits(shards) + "/P=" + digits(p)
}
