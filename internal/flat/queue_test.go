package flat

import (
	"math"
	"testing"
)

// TestQueuePendingQuiescence pins the queue-level invariant the deadlock
// detector depends on (the flat-core analogue of kernel.Quiescent /
// pendingEvents): pending counts both the same-instant FIFO and the heap,
// and reaches zero exactly when both drain.
func TestQueuePendingQuiescence(t *testing.T) {
	var q queue
	var e ent
	if q.pending() != 0 {
		t.Fatalf("fresh queue pending = %d", q.pending())
	}
	q.scheduleAt(0, evWake, 0) // same-instant: FIFO
	q.scheduleAt(5, evWake, 1) // future: heap
	q.scheduleAt(0, evWake, 2) // FIFO again
	if got := q.pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	if _, ok := q.nextTime(); !ok {
		t.Fatal("nextTime reported empty")
	}
	for i := 3; i > 0; i-- {
		if q.pending() != i {
			t.Fatalf("pending = %d, want %d", q.pending(), i)
		}
		if !q.popNext(math.MaxInt64, &e) {
			t.Fatalf("popNext drained early at %d remaining", i)
		}
	}
	if q.pending() != 0 {
		t.Fatalf("drained queue pending = %d", q.pending())
	}
	if q.popNext(math.MaxInt64, &e) {
		t.Fatal("popNext produced an event from an empty queue")
	}
	if q.now != 5 {
		t.Fatalf("queue time %d after draining, want 5", q.now)
	}
}

// TestQueueOrderAndElision pins the merge rule ((time, seq) order with the
// FIFO fast path) and the in-place clock-advance condition used to elide
// park wake-ups.
func TestQueueOrderAndElision(t *testing.T) {
	var q queue
	var e ent
	q.deadline = math.MaxInt64
	q.scheduleAt(4, evWake, 2)
	q.scheduleAt(0, evWake, 0)
	q.scheduleAt(2, evWake, 1)

	// FIFO is non-empty at t=0: the clock cannot advance in place.
	if q.canAdvance(1) {
		t.Error("canAdvance with same-instant work pending")
	}
	q.popNext(math.MaxInt64, &e)
	if e.proc != 0 || q.now != 0 {
		t.Fatalf("first event proc %d at %d, want proc 0 at 0", e.proc, q.now)
	}
	// FIFO drained, heap top at 2: advancing to 1 is safe, to 3 is not.
	if !q.canAdvance(1) {
		t.Error("cannot advance to 1 with heap top at 2")
	}
	if q.canAdvance(3) {
		t.Error("advanced past heap top at 2")
	}
	q.popNext(math.MaxInt64, &e)
	if e.proc != 1 || q.now != 2 {
		t.Fatalf("second event proc %d at %d, want proc 1 at 2", e.proc, q.now)
	}
	// The window limit bounds the pop: an event at 4 is invisible to a
	// window ending at 4.
	if q.popNext(4, &e) {
		t.Error("popNext crossed the window end")
	}
	if !q.popNext(5, &e) || e.proc != 2 {
		t.Error("popNext missed the event inside the widened window")
	}
	// Past the deadline the clock may not advance in place either.
	q.deadline = 10
	if q.canAdvance(11) {
		t.Error("advanced past the shard deadline")
	}
}

// TestQueueDeliverArenaRecycles pins the arena round-trip: deliver payloads
// survive the heap, and their slots recycle instead of growing.
func TestQueueDeliverArenaRecycles(t *testing.T) {
	var q queue
	var e ent
	for round := 0; round < 8; round++ {
		base := q.now
		for i := 0; i < 4; i++ {
			ev := event{kind: evDeliver, proc: int32(i), flight: int64(10 + i)}
			ev.msg.From = i
			ev.msg.Data = round
			q.schedule(base+int64(1+i), &ev)
		}
		for i := 0; i < 4; i++ {
			if !q.popNext(math.MaxInt64, &e) {
				t.Fatal("queue drained early")
			}
			pay := &q.arena[e.idx]
			if e.kind != evDeliver || pay.msg.From != int(e.proc) || pay.flight != int64(10+e.proc) {
				t.Fatalf("payload scrambled: %+v (payload %+v)", e, *pay)
			}
			if pay.msg.Data != round {
				t.Fatalf("payload data %v, want %v", pay.msg.Data, round)
			}
			q.freePayload(e.idx)
		}
	}
	if len(q.arena) > 4 {
		t.Errorf("arena grew to %d slots for 4 concurrent deliveries", len(q.arena))
	}
}

// BenchmarkQueueScheduleDrain measures the raw event-kernel cycle the flat
// core is built on: schedule into the heap, pop in order.
func BenchmarkQueueScheduleDrain(b *testing.B) {
	const batch = 1024
	var q queue
	var e ent
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		for i := 0; i < batch; i++ {
			// A deterministic scatter of future times.
			q.scheduleAt(q.now+int64(1+(i*7)%64), evWake, int32(i))
		}
		for q.popNext(math.MaxInt64, &e) {
		}
	}
}

// BenchmarkQueueFIFOFastPath measures the same-instant append/pop fast path
// taken by handler-driven wake chains.
func BenchmarkQueueFIFOFastPath(b *testing.B) {
	var q queue
	var e ent
	b.ReportAllocs()
	for n := 0; n < b.N; n++ {
		for i := 0; i < 64; i++ {
			q.scheduleAt(q.now, evWake, int32(i))
		}
		for q.popNext(math.MaxInt64, &e) {
		}
		q.now++
	}
}
