// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a simulated clock by executing events from a priority
// queue ordered by (time, insertion sequence). Simulated processes run user
// code in their own goroutines but are scheduled strictly one at a time by
// the kernel, so a given program is bit-reproducible regardless of GOMAXPROCS.
//
// The package is the substrate for both the LogP abstract machine
// (internal/logp) and the packet-level network simulator (internal/network).
package sim

import "fmt"

// Time is a point in simulated time, measured in integer cycles.
// The unit is defined by the client (the LogP machine uses processor cycles
// or hardware clock ticks).
type Time int64

// Infinity is a time later than any event the kernel will ever execute.
const Infinity Time = 1<<63 - 1

// String renders the time as a bare cycle count.
func (t Time) String() string { return fmt.Sprintf("%d", int64(t)) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
