package sim

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestKernelRunsEventsInTimeOrder(t *testing.T) {
	k := NewKernel(1)
	var got []Time
	for _, d := range []Time{30, 10, 20, 10, 0} {
		d := d
		k.At(d, func() { got = append(got, d) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d at time %d, want %d", i, got[i], want[i])
		}
	}
}

func TestKernelTieBreakIsFIFO(t *testing.T) {
	k := NewKernel(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		k.At(5, func() { got = append(got, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("tie-broken order %v, want FIFO", got)
		}
	}
}

func TestKernelNowAdvances(t *testing.T) {
	k := NewKernel(1)
	k.At(7, func() {
		if k.Now() != 7 {
			t.Errorf("Now() = %v inside event at 7", k.Now())
		}
		k.After(3, func() {
			if k.Now() != 10 {
				t.Errorf("Now() = %v, want 10", k.Now())
			}
		})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 10 {
		t.Errorf("final Now() = %v, want 10", k.Now())
	}
}

func TestKernelSchedulingInPastPanics(t *testing.T) {
	k := NewKernel(1)
	k.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		k.At(5, func() {})
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestKernelStop(t *testing.T) {
	k := NewKernel(1)
	ran := 0
	k.At(1, func() { ran++; k.Stop() })
	k.At(2, func() { ran++ })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("ran %d events after Stop, want 1", ran)
	}
	// Resuming runs the remaining event.
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran %d events total, want 2", ran)
	}
}

func TestKernelRunUntil(t *testing.T) {
	k := NewKernel(1)
	ran := 0
	k.At(5, func() { ran++ })
	k.At(15, func() { ran++ })
	if err := k.RunUntil(10); err != nil {
		t.Fatal(err)
	}
	if ran != 1 || k.Now() != 10 {
		t.Fatalf("ran=%d now=%v, want 1 event and clock at 10", ran, k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if ran != 2 {
		t.Fatalf("ran=%d, want 2", ran)
	}
}

func TestProcessWait(t *testing.T) {
	k := NewKernel(1)
	var times []Time
	k.Spawn("w", func(p *Process) {
		times = append(times, p.Now())
		p.Wait(10)
		times = append(times, p.Now())
		p.Wait(0)
		times = append(times, p.Now())
		p.WaitUntil(25)
		times = append(times, p.Now())
		p.WaitUntil(5) // in the past: no-op
		times = append(times, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{0, 10, 10, 25, 25}
	for i := range want {
		if times[i] != want[i] {
			t.Fatalf("times = %v, want %v", times, want)
		}
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		k := NewKernel(1)
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			k.Spawn(name, func(p *Process) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Wait(2)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	first := run()
	for i := 0; i < 20; i++ {
		if got := run(); len(got) != len(first) {
			t.Fatal("nondeterministic run length")
		} else {
			for j := range got {
				if got[j] != first[j] {
					t.Fatalf("nondeterministic interleaving: run %d = %v, first = %v", i, got, first)
				}
			}
		}
	}
}

func TestSignalWakesFIFO(t *testing.T) {
	k := NewKernel(1)
	var sig Signal
	var order []string
	for _, name := range []string{"a", "b", "c"} {
		name := name
		k.Spawn(name, func(p *Process) {
			sig.Wait(p)
			order = append(order, name)
		})
	}
	k.At(5, func() {
		if sig.Waiting() != 3 {
			t.Errorf("Waiting() = %d, want 3", sig.Waiting())
		}
		sig.Notify()
	})
	k.At(6, func() { sig.Broadcast() })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != "a" {
		t.Fatalf("wake order %v, want a first", order)
	}
}

func TestDeadlockDetected(t *testing.T) {
	k := NewKernel(1)
	var sig Signal
	k.Spawn("stuck", func(p *Process) { sig.Wait(p) })
	err := k.Run()
	var dl *DeadlockError
	if !errors.As(err, &dl) {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(dl.Blocked) != 1 || dl.Blocked[0] != "stuck" {
		t.Errorf("blocked = %v, want [stuck]", dl.Blocked)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(2)
	inUse, maxInUse := 0, 0
	for i := 0; i < 6; i++ {
		k.Spawn("p", func(p *Process) {
			sem.Acquire(p)
			inUse++
			if inUse > maxInUse {
				maxInUse = inUse
			}
			p.Wait(10)
			inUse--
			sem.Release()
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInUse != 2 {
		t.Errorf("max concurrent holders = %d, want 2", maxInUse)
	}
	if k.Now() != 30 {
		t.Errorf("finish time = %v, want 30 (three batches of 10)", k.Now())
	}
}

func TestSemaphoreAcquireReportsStall(t *testing.T) {
	k := NewKernel(1)
	sem := NewSemaphore(1)
	var stall Time
	k.Spawn("first", func(p *Process) {
		sem.Acquire(p)
		p.Wait(7)
		sem.Release()
	})
	k.Spawn("second", func(p *Process) {
		stall = sem.Acquire(p)
		sem.Release()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if stall != 7 {
		t.Errorf("stall = %v, want 7", stall)
	}
}

func TestBarrierReleasesAllTogether(t *testing.T) {
	k := NewKernel(1)
	b := NewBarrier(3)
	var release []Time
	for i, d := range []Time{3, 9, 6} {
		d := d
		k.Spawn("p", func(p *Process) {
			p.Wait(d)
			b.Await(p)
			release = append(release, p.Now())
		})
		_ = i
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(release) != 3 {
		t.Fatalf("%d processes released, want 3", len(release))
	}
	for _, r := range release {
		if r != 9 {
			t.Errorf("released at %v, want 9 (latest arrival)", r)
		}
	}
}

func TestBarrierIsReusable(t *testing.T) {
	k := NewKernel(1)
	b := NewBarrier(2)
	count := 0
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(p *Process) {
			for r := 0; r < 3; r++ {
				p.Wait(1)
				b.Await(p)
				count++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Errorf("count = %d, want 6", count)
	}
}

// Property: for any set of non-negative delays, the kernel executes events in
// nondecreasing time order and the clock never runs backwards.
func TestKernelTimeMonotonicProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		k := NewKernel(1)
		last := Time(-1)
		ok := true
		for _, d := range delays {
			d := Time(d)
			k.At(d, func() {
				if k.Now() < last {
					ok = false
				}
				last = k.Now()
				if k.Now() != d {
					ok = false
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: processes waiting random durations finish at the sum of their
// waits, independent of how many other processes run.
func TestProcessWaitSumsProperty(t *testing.T) {
	f := func(waits [][]uint8) bool {
		k := NewKernel(1)
		ok := true
		for _, ws := range waits {
			ws := ws
			k.Spawn("p", func(p *Process) {
				var total Time
				for _, w := range ws {
					p.Wait(Time(w))
					total += Time(w)
				}
				if p.Now() != total {
					ok = false
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestYieldRunsOthersFirst(t *testing.T) {
	k := NewKernel(1)
	var log []string
	k.Spawn("a", func(p *Process) {
		log = append(log, "a1")
		p.Yield()
		log = append(log, "a2")
	})
	k.Spawn("b", func(p *Process) {
		log = append(log, "b1")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}
