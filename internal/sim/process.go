package sim

import "fmt"

// Process is a simulated thread of control. Its body runs in a dedicated
// goroutine, but the kernel resumes processes one at a time: whenever the
// body calls a blocking Process method the goroutine parks and hands control
// back to the kernel, which runs other events until it is this process's turn
// again. Simulated time only advances between those hand-offs, so process
// code observes a coherent clock via Now.
//
// Control transfer uses a single unbuffered handoff channel. Because the
// kernel and the process alternate strictly (the kernel only runs while the
// process is parked, and vice versa), sends and receives on the one channel
// pair up deterministically: kernel-send resumes the process, process-send
// returns control to the kernel.
type Process struct {
	k       *Kernel
	name    string
	handoff chan struct{} // strict kernel <-> process control transfer
	done    bool
	blocked bool // parked with no scheduled wake-up (waiting on a Signal)
}

// Spawn creates a process running body and schedules it to start at the
// current simulated time. The name appears in deadlock reports.
func (k *Kernel) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{
		k:       k,
		name:    name,
		handoff: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	go func() {
		<-p.handoff // wait for the kernel to start us
		body(p)
		p.done = true
		p.handoff <- struct{}{}
	}()
	k.AfterRun(0, p)
	return p
}

// RunEvent wakes the process at its scheduled time. Process implements
// Runner so that every wake-up (Spawn, Wait, Unblock, Yield) is scheduled
// through the kernel without allocating a closure.
func (p *Process) RunEvent() { p.wake() }

// wake transfers control to the process goroutine and blocks the kernel until
// the process parks again. This strict hand-off is what makes the simulation
// deterministic.
func (p *Process) wake() {
	if p.done {
		return
	}
	p.handoff <- struct{}{}
	<-p.handoff
}

// park returns control to the kernel and blocks until woken.
func (p *Process) park() {
	p.handoff <- struct{}{}
	<-p.handoff
}

// advance tries to move the simulated clock to t without a kernel round
// trip. While process code runs it holds the control token (the kernel is
// blocked in wake), so if no queued event precedes t this process is
// necessarily the next thing the kernel would dispatch — waking it at t. In
// that case the park and both goroutine switches are pure overhead: the
// process may simply set the clock forward and keep running. The elision is
// suppressed past the active RunUntil deadline and after Stop, where control
// must return to the kernel.
func (p *Process) advance(t Time) bool {
	k := p.k
	if k.stopped || t > k.deadline || k.fifoHead != len(k.fifo) {
		return false
	}
	if len(k.events) > 0 && k.events[0].t <= t {
		return false
	}
	k.now = t
	return true
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Process) Kernel() *Kernel { return p.k }

// Now reports the current simulated time.
func (p *Process) Now() Time { return p.k.Now() }

// Wait advances this process's clock by d cycles of simulated time.
func (p *Process) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q waiting negative duration %d", p.name, d))
	}
	if d == 0 {
		return
	}
	t := p.k.now + d
	if p.advance(t) {
		return
	}
	p.k.AtRun(t, p)
	p.park()
}

// WaitUntil advances this process's clock to absolute time t. Waiting for a
// time in the past is a no-op.
func (p *Process) WaitUntil(t Time) {
	if t <= p.k.Now() {
		return
	}
	if p.advance(t) {
		return
	}
	p.k.AtRun(t, p)
	p.park()
}

// Block parks the process indefinitely; some other event must call Unblock to
// resume it. Use Signal or Gate for higher-level coordination.
func (p *Process) Block() {
	p.blocked = true
	p.park()
}

// Unblock schedules a blocked process to resume at the current simulated
// time and marks it unblocked immediately, so a second Unblock before the
// process actually resumes is detected as the bug it is: a spurious extra
// wake-up would hand control to the process at an arbitrary later park and
// corrupt the simulation. Calling Unblock on a process that is not blocked
// panics.
func (p *Process) Unblock() {
	if !p.blocked {
		panic(fmt.Sprintf("sim: Unblock of process %q which is not blocked (double unblock?)", p.name))
	}
	p.blocked = false
	p.k.AfterRun(0, p)
}

// Yield parks the process and immediately reschedules it at the current time,
// letting other events scheduled for this instant run first.
func (p *Process) Yield() {
	p.k.AfterRun(0, p)
	p.park()
}
