package sim

import "fmt"

// Process is a simulated thread of control. Its body runs in a dedicated
// goroutine, but the kernel resumes processes one at a time: whenever the
// body calls a blocking Process method the goroutine parks and hands control
// back to the kernel, which runs other events until it is this process's turn
// again. Simulated time only advances between those hand-offs, so process
// code observes a coherent clock via Now.
type Process struct {
	k       *Kernel
	name    string
	resume  chan struct{} // kernel -> process: run
	parked  chan struct{} // process -> kernel: parked or finished
	done    bool
	blocked bool // parked with no scheduled wake-up (waiting on a Signal)
}

// Spawn creates a process running body and schedules it to start at the
// current simulated time. The name appears in deadlock reports.
func (k *Kernel) Spawn(name string, body func(p *Process)) *Process {
	p := &Process{
		k:      k,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	k.procs = append(k.procs, p)
	go func() {
		<-p.resume // wait for the kernel to start us
		body(p)
		p.done = true
		p.parked <- struct{}{}
	}()
	k.After(0, p.wake)
	return p
}

// wake transfers control to the process goroutine and blocks the kernel until
// the process parks again. This strict hand-off is what makes the simulation
// deterministic.
func (p *Process) wake() {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	<-p.parked
}

// park returns control to the kernel and blocks until woken.
func (p *Process) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Kernel returns the kernel this process runs on.
func (p *Process) Kernel() *Kernel { return p.k }

// Now reports the current simulated time.
func (p *Process) Now() Time { return p.k.Now() }

// Wait advances this process's clock by d cycles of simulated time.
func (p *Process) Wait(d Time) {
	if d < 0 {
		panic(fmt.Sprintf("sim: process %q waiting negative duration %d", p.name, d))
	}
	if d == 0 {
		return
	}
	p.k.After(d, p.wake)
	p.park()
}

// WaitUntil advances this process's clock to absolute time t. Waiting for a
// time in the past is a no-op.
func (p *Process) WaitUntil(t Time) {
	if t <= p.k.Now() {
		return
	}
	p.k.At(t, p.wake)
	p.park()
}

// Block parks the process indefinitely; some other event must call Unblock to
// resume it. Use Signal or Gate for higher-level coordination.
func (p *Process) Block() {
	p.blocked = true
	p.park()
	p.blocked = false
}

// Unblock schedules a blocked process to resume at the current simulated
// time. Calling Unblock on a process that is not blocked is a bug in the
// caller and panics.
func (p *Process) Unblock() {
	if !p.blocked {
		panic(fmt.Sprintf("sim: Unblock of process %q which is not blocked", p.name))
	}
	p.k.After(0, p.wake)
}

// Yield parks the process and immediately reschedules it at the current time,
// letting other events scheduled for this instant run first.
func (p *Process) Yield() {
	p.k.After(0, p.wake)
	p.park()
}
