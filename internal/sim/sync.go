package sim

// Signal is a condition that simulated processes can wait on. Waiters are
// woken in FIFO order, one per Notify, or all at once by Broadcast. The
// waiter queue is a head-indexed slice so the steady-state wait/notify
// cycle reuses its storage instead of allocating per operation.
type Signal struct {
	waiters []*Process
	head    int
}

// Wait blocks the calling process until another event notifies the signal.
func (s *Signal) Wait(p *Process) {
	if s.head == len(s.waiters) {
		s.waiters = s.waiters[:0]
		s.head = 0
	}
	s.waiters = append(s.waiters, p)
	p.Block()
}

// Notify wakes the longest-waiting process, if any, and reports whether a
// process was woken.
func (s *Signal) Notify() bool {
	if s.head == len(s.waiters) {
		return false
	}
	w := s.waiters[s.head]
	s.waiters[s.head] = nil
	s.head++
	w.Unblock()
	return true
}

// Broadcast wakes every waiting process.
func (s *Signal) Broadcast() {
	for i := s.head; i < len(s.waiters); i++ {
		w := s.waiters[i]
		s.waiters[i] = nil
		w.Unblock()
	}
	s.waiters = s.waiters[:0]
	s.head = 0
}

// Waiting reports the number of processes blocked on the signal.
func (s *Signal) Waiting() int { return len(s.waiters) - s.head }

// Semaphore is a counting resource with FIFO-queued acquirers. It models
// finite capacities such as the LogP network capacity constraint: a process
// that cannot acquire stalls until a release frees a unit.
type Semaphore struct {
	capacity int
	used     int
	queue    Signal
}

// NewSemaphore returns a semaphore with the given number of units.
func NewSemaphore(capacity int) *Semaphore {
	if capacity < 1 {
		panic("sim: semaphore capacity must be positive")
	}
	return &Semaphore{capacity: capacity}
}

// Acquire takes one unit, blocking the process until one is free. It returns
// the simulated time spent stalled.
func (s *Semaphore) Acquire(p *Process) Time {
	start := p.Now()
	for s.used >= s.capacity {
		s.queue.Wait(p)
	}
	s.used++
	return p.Now() - start
}

// TryAcquire takes a unit only if one is free, reporting success.
func (s *Semaphore) TryAcquire() bool {
	if s.used >= s.capacity {
		return false
	}
	s.used++
	return true
}

// Release returns one unit and wakes the longest-stalled acquirer, if any.
// Release may be called from plain events, not only from processes.
func (s *Semaphore) Release() {
	if s.used == 0 {
		panic("sim: semaphore release without acquire")
	}
	s.used--
	s.queue.Notify()
}

// InUse reports the number of units currently held.
func (s *Semaphore) InUse() int { return s.used }

// Capacity reports the total number of units.
func (s *Semaphore) Capacity() int { return s.capacity }

// Barrier blocks processes until a fixed number have arrived, then releases
// them all. It is reusable: the generation counter flips once all arrive.
type Barrier struct {
	parties int
	arrived int
	sig     Signal
}

// NewBarrier returns a barrier for the given number of parties.
func NewBarrier(parties int) *Barrier {
	if parties < 1 {
		panic("sim: barrier parties must be positive")
	}
	return &Barrier{parties: parties}
}

// Await blocks until all parties have called Await, then wakes everyone.
// The last arriver does not block.
func (b *Barrier) Await(p *Process) {
	b.arrived++
	if b.arrived == b.parties {
		b.arrived = 0
		b.sig.Broadcast()
		return
	}
	b.sig.Wait(p)
}
