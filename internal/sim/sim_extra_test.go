package sim

import (
	"strings"
	"testing"
)

func TestTimeHelpers(t *testing.T) {
	if Time(42).String() != "42" {
		t.Errorf("String() = %q", Time(42).String())
	}
	if Max(3, 7) != 7 || Max(7, 3) != 7 {
		t.Error("Max wrong")
	}
	if Min(3, 7) != 3 || Min(7, 3) != 3 {
		t.Error("Min wrong")
	}
}

func TestKernelRandDeterministic(t *testing.T) {
	a := NewKernel(5).Rand().Int63()
	b := NewKernel(5).Rand().Int63()
	c := NewKernel(6).Rand().Int63()
	if a != b {
		t.Error("same seed gave different draws")
	}
	if a == c {
		t.Error("different seeds gave the same first draw")
	}
}

func TestAfterNegativePanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestProcessWaitNegativePanics(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("p", func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("negative wait did not panic")
			}
		}()
		p.Wait(-5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessAccessors(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("worker", func(p *Process) {
		if p.Name() != "worker" {
			t.Errorf("Name() = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel() wrong")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnblockNotBlockedPanics(t *testing.T) {
	k := NewKernel(1)
	var target *Process
	target = k.Spawn("idle", func(p *Process) { p.Wait(10) })
	k.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("Unblock of non-blocked process did not panic")
			}
		}()
		target.Unblock()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded at capacity")
	}
	if s.InUse() != 1 || s.Capacity() != 1 {
		t.Errorf("InUse=%d Capacity=%d", s.InUse(), s.Capacity())
	}
	s.Release()
	if s.InUse() != 0 {
		t.Error("release did not free the unit")
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	s := NewSemaphore(1)
	defer func() {
		if recover() == nil {
			t.Error("release without acquire did not panic")
		}
	}()
	s.Release()
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSemaphore(0) },
		func() { NewBarrier(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	e := &DeadlockError{Time: 9, Blocked: []string{"a", "b"}}
	if !strings.Contains(e.Error(), "time 9") || !strings.Contains(e.Error(), "2 process(es)") {
		t.Errorf("error = %q", e.Error())
	}
}

func TestWakeAfterDoneIsNoop(t *testing.T) {
	// A process that finishes before a scheduled wake-up: the stale wake
	// must not panic or hang.
	k := NewKernel(1)
	var pr *Process
	pr = k.Spawn("quick", func(p *Process) {})
	k.At(5, func() {
		// Re-schedule a wake on the finished process via the kernel's own
		// mechanism: nothing should happen.
		_ = pr
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// A second Unblock before the woken process actually resumes is the classic
// double-unblock hazard: the spurious wake-up would pair with some later
// park and corrupt the handoff. Unblock clears blocked immediately, so the
// second call must panic.
func TestDoubleUnblockPanics(t *testing.T) {
	k := NewKernel(1)
	target := k.Spawn("sleeper", func(p *Process) { p.Block() })
	k.At(1, func() {
		target.Unblock() // legitimate wake-up
		defer func() {
			if recover() == nil {
				t.Error("second Unblock before resume did not panic")
			}
		}()
		target.Unblock() // the process has not resumed yet: must panic
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// A process waiting past pending events must not skip them: the in-place
// clock advance is only legal when the process is provably the next thing
// to run.
func TestWaitObservesInterveningEvents(t *testing.T) {
	k := NewKernel(1)
	var order []Time
	k.At(5, func() { order = append(order, k.Now()) })
	k.Spawn("waiter", func(p *Process) {
		p.Wait(10) // an event at t=5 is pending: no elision
		order = append(order, p.Now())
		p.Wait(7) // queue now empty: elided, but time still advances
		order = append(order, p.Now())
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{5, 10, 17}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// RunUntil's deadline must bound in-place clock advances too: a process
// waiting beyond the deadline parks, and the clock stops at the deadline.
func TestRunUntilBoundsProcessWaits(t *testing.T) {
	k := NewKernel(1)
	resumed := false
	k.Spawn("long", func(p *Process) {
		p.Wait(100)
		resumed = true
	})
	if err := k.RunUntil(50); err != nil {
		t.Fatal(err)
	}
	if resumed {
		t.Error("process ran past the deadline")
	}
	if k.Now() != 50 {
		t.Errorf("clock at %d, want 50", k.Now())
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !resumed || k.Now() != 100 {
		t.Errorf("resumed=%v now=%d after draining", resumed, k.Now())
	}
}
