package sim

import (
	"strings"
	"testing"
)

func TestTimeHelpers(t *testing.T) {
	if Time(42).String() != "42" {
		t.Errorf("String() = %q", Time(42).String())
	}
	if Max(3, 7) != 7 || Max(7, 3) != 7 {
		t.Error("Max wrong")
	}
	if Min(3, 7) != 3 || Min(7, 3) != 3 {
		t.Error("Min wrong")
	}
}

func TestKernelRandDeterministic(t *testing.T) {
	a := NewKernel(5).Rand().Int63()
	b := NewKernel(5).Rand().Int63()
	c := NewKernel(6).Rand().Int63()
	if a != b {
		t.Error("same seed gave different draws")
	}
	if a == c {
		t.Error("different seeds gave the same first draw")
	}
}

func TestAfterNegativePanics(t *testing.T) {
	k := NewKernel(1)
	defer func() {
		if recover() == nil {
			t.Error("negative delay did not panic")
		}
	}()
	k.After(-1, func() {})
}

func TestProcessWaitNegativePanics(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("p", func(p *Process) {
		defer func() {
			if recover() == nil {
				t.Error("negative wait did not panic")
			}
		}()
		p.Wait(-5)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessAccessors(t *testing.T) {
	k := NewKernel(1)
	k.Spawn("worker", func(p *Process) {
		if p.Name() != "worker" {
			t.Errorf("Name() = %q", p.Name())
		}
		if p.Kernel() != k {
			t.Error("Kernel() wrong")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestUnblockNotBlockedPanics(t *testing.T) {
	k := NewKernel(1)
	var target *Process
	target = k.Spawn("idle", func(p *Process) { p.Wait(10) })
	k.At(1, func() {
		defer func() {
			if recover() == nil {
				t.Error("Unblock of non-blocked process did not panic")
			}
		}()
		target.Unblock()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSemaphoreTryAcquire(t *testing.T) {
	s := NewSemaphore(1)
	if !s.TryAcquire() {
		t.Fatal("first TryAcquire failed")
	}
	if s.TryAcquire() {
		t.Fatal("second TryAcquire succeeded at capacity")
	}
	if s.InUse() != 1 || s.Capacity() != 1 {
		t.Errorf("InUse=%d Capacity=%d", s.InUse(), s.Capacity())
	}
	s.Release()
	if s.InUse() != 0 {
		t.Error("release did not free the unit")
	}
}

func TestSemaphoreReleaseWithoutAcquirePanics(t *testing.T) {
	s := NewSemaphore(1)
	defer func() {
		if recover() == nil {
			t.Error("release without acquire did not panic")
		}
	}()
	s.Release()
}

func TestConstructorValidation(t *testing.T) {
	for _, f := range []func(){
		func() { NewSemaphore(0) },
		func() { NewBarrier(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid constructor did not panic")
				}
			}()
			f()
		}()
	}
}

func TestDeadlockErrorMessage(t *testing.T) {
	e := &DeadlockError{Time: 9, Blocked: []string{"a", "b"}}
	if !strings.Contains(e.Error(), "time 9") || !strings.Contains(e.Error(), "2 process(es)") {
		t.Errorf("error = %q", e.Error())
	}
}

func TestWakeAfterDoneIsNoop(t *testing.T) {
	// A process that finishes before a scheduled wake-up: the stale wake
	// must not panic or hang.
	k := NewKernel(1)
	var pr *Process
	pr = k.Spawn("quick", func(p *Process) {})
	k.At(5, func() {
		// Re-schedule a wake on the finished process via the kernel's own
		// mechanism: nothing should happen.
		_ = pr
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
