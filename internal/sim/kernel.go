package sim

import (
	"fmt"
	"math/rand"
	"sync"
)

// Runner is an event body that can be scheduled without allocating a
// closure: the kernel stores the interface value (a pointer, so no boxing
// allocation) and invokes RunEvent at the scheduled time. Processes and
// pooled event records implement it; ad-hoc events use the func() forms.
type Runner interface {
	RunEvent()
}

// event is a scheduled callback. Events with equal time run in the order
// they were scheduled (seq breaks ties), which keeps the simulation
// deterministic. Exactly one of fn and r is set.
type event struct {
	t   Time
	seq uint64
	fn  func()
	r   Runner
}

// eventLess orders events by (time, sequence).
func eventLess(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// kernelStorage is the reusable backing store for a kernel's event queues.
// Simulation sweeps build thousands of short-lived kernels; pooling the
// slices means a fresh kernel starts with already-grown arrays instead of
// re-paying the append growth path every run.
type kernelStorage struct {
	heap []event
	fifo []event
}

var storagePool = sync.Pool{
	New: func() any {
		return &kernelStorage{
			heap: make([]event, 0, 64),
			fifo: make([]event, 0, 64),
		}
	},
}

// Kernel is a discrete-event simulation engine. The zero value is not ready
// for use; construct with NewKernel.
//
// The event queue is split into two structures:
//
//   - a hand-rolled 4-ary min-heap (keyed on (time, seq)) for events
//     scheduled in the future, with no interface conversions anywhere on
//     the push/pop path, and
//   - a FIFO fast path for events scheduled at the current instant
//     (wake-ups, yields, signal notifications), which are extremely common
//     in process-based simulations and need no heap discipline at all.
//
// The FIFO invariant: every queued FIFO event has t == now, and the clock
// only advances once the FIFO is empty. Because seq increases globally,
// merging the two queues at dispatch needs only a seq comparison when the
// heap's top shares the current timestamp.
type Kernel struct {
	now      Time
	events   []event // 4-ary min-heap of future events
	fifo     []event // events at t == now, in scheduling order
	fifoHead int
	storage  *kernelStorage
	seq      uint64
	rng      *rand.Rand
	procs    []*Process // all spawned processes, for deadlock reporting
	stopped  bool
	deadline Time // active RunUntil deadline, bounding in-place clock advances
}

// NewKernel returns a kernel at time zero whose random source is seeded with
// seed. All randomness used by simulations built on the kernel should come
// from Rand so that runs are reproducible.
func NewKernel(seed int64) *Kernel {
	st := storagePool.Get().(*kernelStorage)
	return &Kernel{
		rng:      rand.New(rand.NewSource(seed)),
		events:   st.heap[:0],
		fifo:     st.fifo[:0],
		storage:  st,
		deadline: Infinity,
	}
}

// release returns the queue storage to the pool once the queues are empty.
// The kernel remains usable afterwards (the slices simply start over), but
// the common case — one run per kernel — hands its grown arrays to the next
// simulation.
func (k *Kernel) release() {
	st := k.storage
	if st == nil {
		return
	}
	k.storage = nil
	st.heap = k.events[:0]
	st.fifo = k.fifo[:0]
	k.events = nil
	k.fifo = nil
	k.fifoHead = 0
	storagePool.Put(st)
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// pushHeap inserts e into the 4-ary heap (sift-up with a hole, no swaps).
func (k *Kernel) pushHeap(e event) {
	h := append(k.events, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !eventLess(&e, &h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = e
	k.events = h
}

// popHeap removes and returns the minimum event.
func (k *Kernel) popHeap() event {
	h := k.events
	top := h[0]
	n := len(h) - 1
	last := h[n]
	h[n] = event{} // drop the closure reference
	h = h[:n]
	if n > 0 {
		i := 0
		for {
			c := i<<2 + 1
			if c >= n {
				break
			}
			best := c
			end := c + 4
			if end > n {
				end = n
			}
			for j := c + 1; j < end; j++ {
				if eventLess(&h[j], &h[best]) {
					best = j
				}
			}
			if !eventLess(&h[best], &last) {
				break
			}
			h[i] = h[best]
			i = best
		}
		h[i] = last
	}
	k.events = h
	return top
}

// schedule queues an event at absolute time t. Events at the current
// instant take the FIFO fast path; future events go through the heap.
func (k *Kernel) schedule(t Time, fn func(), r Runner) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before current time %d", t, k.now))
	}
	k.seq++
	e := event{t: t, seq: k.seq, fn: fn, r: r}
	if t == k.now {
		k.fifo = append(k.fifo, e)
		return
	}
	k.pushHeap(e)
}

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error that panics, since it would corrupt causality.
func (k *Kernel) At(t Time, fn func()) { k.schedule(t, fn, nil) }

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	k.schedule(k.now+d, fn, nil)
}

// AtRun schedules r.RunEvent at absolute time t without allocating: the
// closure-free counterpart of At.
func (k *Kernel) AtRun(t Time, r Runner) { k.schedule(t, nil, r) }

// AfterRun schedules r.RunEvent d cycles from now without allocating.
func (k *Kernel) AfterRun(d Time, r Runner) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	k.schedule(k.now+d, nil, r)
}

// pendingEvents reports the number of queued events.
func (k *Kernel) pendingEvents() int {
	return len(k.events) + len(k.fifo) - k.fifoHead
}

// Quiescent reports whether no further events are queued. Every live,
// non-blocked process has a wake event scheduled, so a recurring event
// (e.g. a metrics sampler) that observes Quiescent from inside its own
// RunEvent knows it is the only thing keeping the simulation alive:
// rescheduling itself would spin forever and mask deadlock detection.
func (k *Kernel) Quiescent() bool { return k.pendingEvents() == 0 }

// Stop makes Run return after the current event completes. Pending events
// remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the queue is empty or Stop is
// called. It returns an error if, at exhaustion, some spawned process is
// still blocked: that is a deadlock in the simulated program.
func (k *Kernel) Run() error {
	return k.RunUntil(Infinity)
}

// RunUntil executes events with time <= deadline. The clock is left at the
// last executed event (or deadline if nothing ran beyond it).
func (k *Kernel) RunUntil(deadline Time) error {
	k.stopped = false
	k.deadline = deadline
	for !k.stopped {
		var e event
		if k.fifoHead < len(k.fifo) {
			f := &k.fifo[k.fifoHead]
			// Heap events that share the current timestamp were scheduled
			// earlier only if their seq is smaller.
			if len(k.events) == 0 || k.events[0].t > k.now || k.events[0].seq > f.seq {
				e = *f
				*f = event{}
				k.fifoHead++
				if k.fifoHead == len(k.fifo) {
					k.fifo = k.fifo[:0]
					k.fifoHead = 0
				}
			} else {
				e = k.popHeap()
			}
		} else if len(k.events) > 0 {
			if k.events[0].t > deadline {
				k.now = deadline
				return nil
			}
			e = k.popHeap()
			k.now = e.t
		} else {
			break
		}
		if e.r != nil {
			e.r.RunEvent()
		} else {
			e.fn()
		}
	}
	if k.stopped {
		return nil
	}
	var blocked []string
	for _, p := range k.procs {
		if !p.done && p.blocked {
			blocked = append(blocked, p.name)
		}
	}
	k.release()
	if len(blocked) > 0 {
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}

// DeadlockError reports that the event queue drained while simulated
// processes were still waiting to be woken.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at time %d: %d process(es) blocked forever: %v", e.Time, len(e.Blocked), e.Blocked)
}
