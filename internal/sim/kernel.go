package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events with equal time run in the order they
// were scheduled (seq breaks ties), which keeps the simulation deterministic.
type event struct {
	t   Time
	seq uint64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Kernel is a discrete-event simulation engine. The zero value is not ready
// for use; construct with NewKernel.
type Kernel struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	procs   []*Process // all spawned processes, for deadlock reporting
	stopped bool
}

// NewKernel returns a kernel at time zero whose random source is seeded with
// seed. All randomness used by simulations built on the kernel should come
// from Rand so that runs are reproducible.
func NewKernel(seed int64) *Kernel {
	return &Kernel{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current simulated time.
func (k *Kernel) Now() Time { return k.now }

// Rand exposes the kernel's deterministic random source.
func (k *Kernel) Rand() *rand.Rand { return k.rng }

// At schedules fn to run at absolute time t. Scheduling in the past is an
// error that panics, since it would corrupt causality.
func (k *Kernel) At(t Time, fn func()) {
	if t < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before current time %d", t, k.now))
	}
	k.seq++
	k.events.pushEvent(event{t: t, seq: k.seq, fn: fn})
}

// After schedules fn to run d cycles from now.
func (k *Kernel) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %d", d))
	}
	k.At(k.now+d, fn)
}

// Stop makes Run return after the current event completes. Pending events
// remain queued.
func (k *Kernel) Stop() { k.stopped = true }

// Run executes events in time order until the queue is empty or Stop is
// called. It returns an error if, at exhaustion, some spawned process is
// still blocked: that is a deadlock in the simulated program.
func (k *Kernel) Run() error {
	return k.RunUntil(Infinity)
}

// RunUntil executes events with time <= deadline. The clock is left at the
// last executed event (or deadline if nothing ran beyond it).
func (k *Kernel) RunUntil(deadline Time) error {
	k.stopped = false
	for len(k.events) > 0 && !k.stopped {
		if k.events.peek().t > deadline {
			k.now = deadline
			return nil
		}
		e := k.events.popEvent()
		k.now = e.t
		e.fn()
	}
	if k.stopped {
		return nil
	}
	var blocked []string
	for _, p := range k.procs {
		if !p.done && p.blocked {
			blocked = append(blocked, p.name)
		}
	}
	if len(blocked) > 0 {
		return &DeadlockError{Time: k.now, Blocked: blocked}
	}
	return nil
}

// DeadlockError reports that the event queue drained while simulated
// processes were still waiting to be woken.
type DeadlockError struct {
	Time    Time
	Blocked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at time %d: %d process(es) blocked forever: %v", e.Time, len(e.Blocked), e.Blocked)
}
