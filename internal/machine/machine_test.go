package machine

import (
	"math"
	"testing"

	"github.com/logp-model/logp/internal/stats"
)

// TestTable1Reproduced recomputes the T(M=160) column of Table 1 from the
// primary columns with the Section 5.2 model and checks it against the
// published values.
func TestTable1Reproduced(t *testing.T) {
	for _, s := range Table1() {
		got := s.UnloadedTime(160, s.AvgHops)
		want := float64(s.TM160)
		// The paper's column is the same formula; allow a couple of
		// cycles of rounding (the CM-5 row rounds H*r).
		if math.Abs(got-want) > 2 {
			t.Errorf("%s: T(160) = %.1f, want %.0f", s.Name, got, want)
		}
	}
}

// TestOverheadDominates: the Section 5.2 observation that "message
// communication time through a lightly loaded network is dominated by the
// send and receive overheads" for the commercial machines.
func TestOverheadDominates(t *testing.T) {
	for _, name := range []string{"nCUBE/2", "CM-5"} {
		s, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		network := s.UnloadedTime(160, s.AvgHops) - float64(s.Overhead)
		if float64(s.Overhead) < 5*network {
			t.Errorf("%s: overhead %d not dominant over network %f", name, s.Overhead, network)
		}
	}
}

// TestTopologySpreadIsSmall: Section 5.1 — "for configurations of practical
// interest the difference between topologies is a factor of two, except for
// very primitive networks". Hop-count contribution H*r varies far less than
// the overheads do across machines.
func TestTopologySpreadIsSmall(t *testing.T) {
	var minHr, maxHr = math.Inf(1), math.Inf(-1)
	for _, s := range Table1() {
		hr := s.AvgHops * float64(s.RouterR)
		if hr < minHr {
			minHr = hr
		}
		if hr > maxHr {
			maxHr = hr
		}
	}
	if maxHr/minHr > 20 {
		t.Errorf("H*r spread %.1f..%.1f implausible", minHr, maxHr)
	}
	// Overheads span more than two orders of magnitude.
	if 6400/10 < 100 {
		t.Error("unreachable")
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("CM-5 (AM)"); err != nil {
		t.Error(err)
	}
	if _, err := ByName("iPSC"); err == nil {
		t.Error("unknown machine accepted")
	}
}

// TestDeriveLogPForCM5: deriving LogP parameters for the CM-5 Active
// Message layer lands near the Section 4.1.4 calibration (o = 66 ticks,
// L = 200 ticks, g = 132 ticks at 33 MHz; Table 1 cycles are 25 ns so
// values here are in 40 MHz cycles — compare microseconds).
func TestDeriveLogPForCM5(t *testing.T) {
	s, err := ByName("CM-5 (AM)")
	if err != nil {
		t.Fatal(err)
	}
	p := DeriveLogP(s, 128, 160, s.AvgHops)
	usOf := func(cycles int64) float64 { return float64(cycles) * s.CycleNs / 1000 }
	if o := usOf(p.O); o < 1.2 || o > 2.5 {
		t.Errorf("derived o = %.2f us, want about 2", o)
	}
	if l := usOf(p.L); l < 2 || l > 7 {
		t.Errorf("derived L = %.2f us, want a few microseconds", l)
	}
	if g := usOf(p.G); g < 3 || g > 5 {
		t.Errorf("derived g = %.2f us, want about 4 (16B+4B at 5 MB/s)", g)
	}
	if p.Validate() != nil {
		t.Errorf("derived params invalid: %v", p)
	}
}

func TestDeriveLogPWithoutBisection(t *testing.T) {
	s, err := ByName("J-Machine")
	if err != nil {
		t.Fatal(err)
	}
	p := DeriveLogP(s, 1024, 160, s.AvgHops)
	if p.G < 1 || p.Validate() != nil {
		t.Errorf("derived params invalid: %v", p)
	}
}

// TestFigure2GrowthRates: the fitted exponential growth of the Figure 2
// series matches the paper's "floating point SPEC benchmarks improved at
// about 97% per year since 1987, and integer SPEC benchmarks improved at
// about 54% per year".
func TestFigure2GrowthRates(t *testing.T) {
	pts := Figure2()
	years := make([]float64, len(pts))
	ints := make([]float64, len(pts))
	fps := make([]float64, len(pts))
	for i, p := range pts {
		years[i] = p.Year
		ints[i] = p.Integer
		fps[i] = p.FP
	}
	ri, err := stats.GrowthRate(years, ints)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := stats.GrowthRate(years, fps)
	if err != nil {
		t.Fatal(err)
	}
	if ri < 0.45 || ri > 0.62 {
		t.Errorf("integer growth %.0f%%/yr, want about 54%%", ri*100)
	}
	if rf < 0.85 || rf > 1.10 {
		t.Errorf("FP growth %.0f%%/yr, want about 97%%", rf*100)
	}
}
