// Package machine is the machine database of Sections 2 and 5: the Table 1
// network timing parameters of five 1992-era multiprocessors (plus the
// Active Message variants), the unloaded message time model
// T(M,H) = Tsnd + ceil(M/w) + H*r + Trcv, the derivation of LogP parameters
// from hardware numbers, and the Figure 2 SPEC performance series.
package machine

import (
	"fmt"
	"math"

	"github.com/logp-model/logp/internal/core"
)

// Spec is one row of Table 1: network timing parameters for a one-way
// message without contention. Times are in network cycles of the given
// cycle time.
type Spec struct {
	Name     string
	Network  string
	CycleNs  float64 // network cycle time in nanoseconds
	WidthW   int     // channel width w in bits
	Overhead int     // Tsnd + Trcv in cycles
	RouterR  int     // per-hop delay r in cycles
	AvgHops  float64 // average H at 1024 processors
	// TM160 is the paper's reported total time T(M=160) at 1024
	// processors, in cycles.
	TM160 int
	// BisectionMBs is the per-processor bisection bandwidth in MB/s where
	// the paper reports one (CM-5: 5 MB/s), else 0.
	BisectionMBs float64
}

// UnloadedTime evaluates the Section 5.2 model for an M-bit message over H
// hops: T = (Tsnd + Trcv) + ceil(M/w) + H*r.
func (s Spec) UnloadedTime(mBits int, hops float64) float64 {
	return float64(s.Overhead) + math.Ceil(float64(mBits)/float64(s.WidthW)) + hops*float64(s.RouterR)
}

// Table1 returns the rows of Table 1 exactly as published (overheads for
// the vendor communication layers, and the Active Message variants that
// expose the raw hardware).
func Table1() []Spec {
	return []Spec{
		{Name: "nCUBE/2", Network: "hypercube", CycleNs: 25, WidthW: 1, Overhead: 6400, RouterR: 40, AvgHops: 5, TM160: 6760},
		{Name: "CM-5", Network: "fat-tree", CycleNs: 25, WidthW: 4, Overhead: 3600, RouterR: 8, AvgHops: 9.3, TM160: 3714, BisectionMBs: 5},
		{Name: "Dash", Network: "torus", CycleNs: 30, WidthW: 16, Overhead: 30, RouterR: 2, AvgHops: 6.8, TM160: 53},
		{Name: "J-Machine", Network: "3d-mesh", CycleNs: 31, WidthW: 8, Overhead: 16, RouterR: 2, AvgHops: 12.1, TM160: 60},
		{Name: "Monsoon", Network: "butterfly", CycleNs: 20, WidthW: 16, Overhead: 10, RouterR: 2, AvgHops: 5, TM160: 30},
		{Name: "nCUBE/2 (AM)", Network: "hypercube", CycleNs: 25, WidthW: 1, Overhead: 1000, RouterR: 40, AvgHops: 5, TM160: 1360},
		{Name: "CM-5 (AM)", Network: "fat-tree", CycleNs: 25, WidthW: 4, Overhead: 132, RouterR: 8, AvgHops: 9.3, TM160: 246, BisectionMBs: 5},
	}
}

// ByName returns the spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range Table1() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("machine: unknown machine %q", name)
}

// DeriveLogP converts hardware numbers into LogP parameters following
// Section 5.2: o = (Tsnd+Trcv)/2, L = H*r + ceil(M/w) for the fixed message
// size in use, and g = M / (per-processor bisection bandwidth). Times are in
// network cycles; mBits is the message size (the paper uses 160 bits:
// 16 bytes of data plus 4 of address).
func DeriveLogP(s Spec, p int, mBits int, maxHops float64) core.Params {
	o := int64(s.Overhead / 2)
	l := int64(math.Ceil(maxHops*float64(s.RouterR) + math.Ceil(float64(mBits)/float64(s.WidthW))))
	var g int64
	if s.BisectionMBs > 0 {
		bytesPerMsg := float64(mBits) / 8
		secs := bytesPerMsg / (s.BisectionMBs * 1e6)
		g = int64(math.Round(secs * 1e9 / s.CycleNs))
	} else {
		g = o
		if g < 1 {
			g = 1
		}
	}
	if g < 1 {
		g = 1
	}
	return core.Params{P: p, L: l, O: o, G: g}
}

// SpecPoint is one microprocessor of Figure 2 (performance relative to the
// VAX-11/780).
type SpecPoint struct {
	Year    float64
	Name    string
	Integer float64
	FP      float64
}

// Figure2 returns the SPEC trend data behind Figure 2: state-of-the-art
// microprocessor performance 1987-1992, consistent with the paper's fitted
// growth rates of about 54%/year (integer) and 97%/year (floating point).
// Individual values are reconstructed from the fitted trend lines (the
// figure prints the curve, not a table).
func Figure2() []SpecPoint {
	return []SpecPoint{
		{1987, "Sun 4/260", 9, 6},
		{1988, "MIPS M/120", 13, 11},
		{1989, "MIPS M2000", 18, 21},
		{1990, "IBM RS6000/540", 30, 48},
		{1991, "HP 9000/750", 48, 86},
		{1992, "DEC alpha", 75, 165},
	}
}
