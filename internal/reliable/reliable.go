// Package reliable layers a retransmission protocol over the LogP machine,
// recovering the paper's "all messages are delivered reliably" assumption on
// top of a network that drops, duplicates and delays (logp.FaultPlan). The
// protocol is deliberately textbook: per-peer sequence numbers with
// duplicate suppression at the receiver, positive acknowledgements, and
// stop-and-wait retransmission with exponential backoff and a bounded retry
// budget. A peer that exhausts the budget is declared dead and every later
// send to it fails fast, letting collectives degrade gracefully (Broadcast
// skips the orphaned subtree, Reduce reports how many processors actually
// contributed).
//
// Every protocol action is an ordinary machine operation — acks pay o and
// the gap like any other message, retransmissions count against the
// capacity constraint — so the cost of reliability shows up in the model's
// own currency, and in the critical-path attribution of internal/prof.
package reliable

import (
	"errors"
	"fmt"

	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
)

// Machine tags the protocol multiplexes its frames onto. Application tags
// travel inside the data frame, so programs may use any tag values they
// like; only these two machine-level tags are reserved.
const (
	TagData = 1 << 20
	TagAck  = 1<<20 + 1
)

// ErrPeerDead reports that a peer exhausted the retry budget (or was already
// declared dead by an earlier send). Match with errors.Is.
var ErrPeerDead = errors.New("reliable: peer presumed dead")

// ErrNoData reports that a collective's value never arrived by its deadline.
var ErrNoData = errors.New("reliable: no data before deadline")

// frame is the payload of a TagData machine message.
type frame struct {
	Seq  int64
	Tag  int // application tag
	Data any
}

// Message is an application-level delivery: exactly-once, in send order per
// peer.
type Message struct {
	From int
	Tag  int
	Data any
}

// Config tunes the protocol. The zero value takes defaults derived from the
// machine's own parameters (see DefaultConfig).
type Config struct {
	// Timeout is the initial ack wait in cycles; each retransmission doubles
	// it up to BackoffCap.
	Timeout int64
	// BackoffCap bounds the doubled timeout.
	BackoffCap int64
	// Retries is the retransmission budget per message; when it is exhausted
	// without an ack the peer is declared dead.
	Retries int
}

// DefaultConfig derives protocol parameters from the machine's: the initial
// timeout covers a full data+ack round trip (two flights, two receptions,
// the ack's send overhead) with gap slack, the backoff cap is eight times
// that, and the retry budget is 10.
func DefaultConfig(p *logp.Proc) Config {
	prm := p.Params()
	rtt := 2*prm.L + 4*prm.O + 4*prm.G
	return Config{Timeout: rtt, BackoffCap: 8 * rtt, Retries: 10}
}

// Endpoint is one processor's protocol state. Create one per processor at
// the start of the program body; all reliable traffic of that processor must
// flow through it (it owns the machine inbox: raw Recv calls would steal
// protocol frames).
type Endpoint struct {
	p   *logp.Proc
	cfg Config

	nextSeq []int64 // per peer: last sequence number assigned to a send
	acked   []int64 // per peer: highest sequence number they acked
	lastSeq []int64 // per peer: highest sequence number received from them
	dead    []bool  // per peer: declared dead (retry budget exhausted)

	// queue holds application messages delivered but not yet consumed,
	// head-indexed like the machine inbox.
	queue     []Message
	queueHead int

	retransmits int
	duplicates  int

	// met points at this processor's protocol counters in the machine's
	// metrics registry, nil when metrics are off (same nil-checked hook
	// discipline as the machine's own hot paths).
	met *metrics.ReliableMetrics
}

// New builds an endpoint for processor p. Zero fields of cfg take the
// DefaultConfig values.
func New(p *logp.Proc, cfg Config) *Endpoint {
	def := DefaultConfig(p)
	if cfg.Timeout <= 0 {
		cfg.Timeout = def.Timeout
	}
	if cfg.BackoffCap <= 0 {
		cfg.BackoffCap = def.BackoffCap
	}
	if cfg.BackoffCap < cfg.Timeout {
		cfg.BackoffCap = cfg.Timeout
	}
	if cfg.Retries <= 0 {
		cfg.Retries = def.Retries
	}
	P := p.P()
	e := &Endpoint{
		p: p, cfg: cfg,
		nextSeq: make([]int64, P),
		acked:   make([]int64, P),
		lastSeq: make([]int64, P),
		dead:    make([]bool, P),
	}
	if reg := p.Metrics(); reg != nil {
		e.met = &reg.Rel[p.ID()]
	}
	return e
}

// Proc returns the underlying machine processor.
func (e *Endpoint) Proc() *logp.Proc { return e.p }

// Retransmits reports how many retransmissions this endpoint has sent.
func (e *Endpoint) Retransmits() int { return e.retransmits }

// Duplicates reports how many duplicate data frames this endpoint has
// suppressed (each was still re-acked, in case the original ack was lost).
func (e *Endpoint) Duplicates() int { return e.duplicates }

// Dead reports whether peer has been declared dead by this endpoint.
func (e *Endpoint) Dead(peer int) bool { return e.dead[peer] }

// Send delivers data to peer to exactly once, retransmitting on ack timeout
// with exponential backoff. It returns nil once the peer acknowledged, or an
// ErrPeerDead-wrapping error once the retry budget is exhausted (the peer is
// then marked dead and later sends fail immediately). Incoming traffic from
// other peers is serviced while waiting, so concurrent conversations cannot
// deadlock each other.
func (e *Endpoint) Send(to, tag int, data any) error {
	if e.dead[to] {
		return fmt.Errorf("reliable: send to proc %d: %w", to, ErrPeerDead)
	}
	e.nextSeq[to]++
	seq := e.nextSeq[to]
	f := frame{Seq: seq, Tag: tag, Data: data}
	timeout := e.cfg.Timeout
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			e.retransmits++
			if e.met != nil {
				e.met.Retransmits.Inc()
			}
		} else if e.met != nil {
			e.met.DataSends.Inc()
		}
		e.p.Send(to, TagData, f)
		deadline := e.p.Now() + timeout
		for e.acked[to] < seq {
			m, ok := e.p.RecvTimeout(deadline)
			if !ok {
				if e.met != nil {
					e.met.Timeouts.Inc()
				}
				break
			}
			e.handle(m)
		}
		if e.acked[to] >= seq {
			return nil
		}
		if attempt == e.cfg.Retries {
			break
		}
		timeout *= 2
		if timeout > e.cfg.BackoffCap {
			timeout = e.cfg.BackoffCap
		}
	}
	e.dead[to] = true
	if e.met != nil {
		e.met.DeadPeers.Inc()
	}
	return fmt.Errorf("reliable: send to proc %d: no ack after %d retries: %w", to, e.cfg.Retries, ErrPeerDead)
}

// handle processes one raw machine message: data frames are deduplicated,
// acked and queued for the application; ack frames advance the acked
// watermark of their sender.
func (e *Endpoint) handle(m logp.Message) {
	switch m.Tag {
	case TagData:
		f := m.Data.(frame)
		if f.Seq <= e.lastSeq[m.From] {
			// A retransmission (our ack was lost) or a network-made copy:
			// suppress it, but re-ack so the sender can make progress.
			e.duplicates++
			if e.met != nil {
				e.met.DedupHits.Inc()
				e.met.AcksSent.Inc()
			}
			e.p.Send(m.From, TagAck, f.Seq)
			return
		}
		e.lastSeq[m.From] = f.Seq
		if e.met != nil {
			e.met.AcksSent.Inc()
		}
		e.p.Send(m.From, TagAck, f.Seq)
		e.pushQueue(Message{From: m.From, Tag: f.Tag, Data: f.Data})
	case TagAck:
		if e.met != nil {
			e.met.AcksRecv.Inc()
		}
		if seq := m.Data.(int64); seq > e.acked[m.From] {
			e.acked[m.From] = seq
		}
	default:
		panic(fmt.Sprintf("reliable: proc %d received raw message with tag %d: all traffic must use the endpoint", e.p.ID(), m.Tag))
	}
}

func (e *Endpoint) pushQueue(m Message) {
	if e.queueHead == len(e.queue) {
		e.queue = e.queue[:0]
		e.queueHead = 0
	}
	e.queue = append(e.queue, m)
}

// Recv returns the next application message, blocking until one arrives.
// Use RecvUntil when the sender might be dead.
func (e *Endpoint) Recv() Message {
	for e.queueHead == len(e.queue) {
		e.handle(e.p.Recv())
	}
	m := e.queue[e.queueHead]
	e.queue[e.queueHead] = Message{}
	e.queueHead++
	return m
}

// RecvUntil returns the next application message, or ok=false if none has
// arrived by absolute time deadline (the processor idles until then).
func (e *Endpoint) RecvUntil(deadline int64) (Message, bool) {
	for e.queueHead == len(e.queue) {
		m, ok := e.p.RecvTimeout(deadline)
		if !ok {
			return Message{}, false
		}
		e.handle(m)
	}
	m := e.queue[e.queueHead]
	e.queue[e.queueHead] = Message{}
	e.queueHead++
	return m, true
}

// RecvTagUntil returns the earliest queued application message with the
// given tag, or ok=false at the deadline. Messages with other tags stay
// queued in arrival order.
func (e *Endpoint) RecvTagUntil(tag int, deadline int64) (Message, bool) {
	for {
		for i := e.queueHead; i < len(e.queue); i++ {
			if e.queue[i].Tag == tag {
				m := e.queue[i]
				copy(e.queue[i:], e.queue[i+1:])
				e.queue[len(e.queue)-1] = Message{}
				e.queue = e.queue[:len(e.queue)-1]
				if e.queueHead == len(e.queue) {
					e.queue = e.queue[:0]
					e.queueHead = 0
				}
				return m, true
			}
		}
		m, ok := e.p.RecvTimeout(deadline)
		if !ok {
			return Message{}, false
		}
		e.handle(m)
	}
}

// Drain services protocol traffic until absolute time t: retransmissions
// get re-acked and late acks are recorded. Processors call it after their
// last reliable operation, because a peer whose ack was lost keeps
// retransmitting — if nobody answers, it burns its whole retry budget and
// wrongly declares this processor dead.
func (e *Endpoint) Drain(t int64) {
	for {
		m, ok := e.p.RecvTimeout(t)
		if !ok {
			return
		}
		e.handle(m)
	}
}
