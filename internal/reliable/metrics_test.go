package reliable

import (
	"errors"
	"testing"

	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
)

// TestMetricsCountersUnderLoss pins the protocol counters to the endpoint's
// own accounting on a lossy link: data sends, retransmissions, timeouts,
// dedup hits and ack traffic must all land in the registry.
func TestMetricsCountersUnderLoss(t *testing.T) {
	reg := metrics.NewRegistry()
	plan := &logp.FaultPlan{
		Seed:  9,
		Links: map[logp.Link]logp.LinkFault{{From: 0, To: 1}: {Drop: 0.4, Dup: 0.3}},
	}
	c := cfg(2, plan)
	c.Metrics = reg
	const msgs = 8
	var retrans, suppressed int
	_, err := logp.Run(c, func(p *logp.Proc) {
		e := New(p, Config{Timeout: 40})
		switch p.ID() {
		case 0:
			for i := 0; i < msgs; i++ {
				if err := e.Send(1, 0, i); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
			retrans = e.Retransmits()
			e.Drain(p.Now() + 200)
		case 1:
			for i := 0; i < msgs; i++ {
				e.Recv()
			}
			e.Drain(p.Now() + 400)
			suppressed = e.Duplicates()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Rel[0].DataSends.Value(); got != msgs {
		t.Errorf("data sends %d, want %d", got, msgs)
	}
	if got := reg.Rel[0].Retransmits.Value(); got != int64(retrans) {
		t.Errorf("retransmit counter %d, endpoint reports %d", got, retrans)
	}
	if retrans == 0 {
		t.Error("no retransmissions on a 40% lossy link; test exercises nothing")
	}
	// Every retransmission was preceded by an ack timeout.
	if got := reg.Rel[0].Timeouts.Value(); got < int64(retrans) {
		t.Errorf("timeouts %d < retransmissions %d", got, retrans)
	}
	if got := reg.Rel[1].DedupHits.Value(); got != int64(suppressed) {
		t.Errorf("dedup counter %d, endpoint reports %d", got, suppressed)
	}
	// The receiver acked every accepted frame and every suppressed copy.
	if got := reg.Rel[1].AcksSent.Value(); got != int64(msgs+suppressed) {
		t.Errorf("acks sent %d, want %d", got, msgs+suppressed)
	}
	if got := reg.Rel[0].AcksRecv.Value(); got < msgs {
		t.Errorf("acks received %d, want at least %d", got, msgs)
	}
}

// TestMetricsDeadPeerVerdict checks that a peer that never answers shows up
// as retry-budget timeouts and one dead-peer verdict.
func TestMetricsDeadPeerVerdict(t *testing.T) {
	reg := metrics.NewRegistry()
	plan := &logp.FaultPlan{FailStops: []logp.FailStop{{Proc: 1, At: 0}}}
	c := cfg(2, plan)
	c.Metrics = reg
	const retries = 3
	_, err := logp.Run(c, func(p *logp.Proc) {
		if p.ID() != 0 {
			return
		}
		e := New(p, Config{Timeout: 20, Retries: retries})
		if err := e.Send(1, 0, "x"); !errors.Is(err, ErrPeerDead) {
			t.Errorf("send to dead peer: %v, want ErrPeerDead", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := reg.Rel[0].DeadPeers.Value(); got != 1 {
		t.Errorf("dead peers %d, want 1", got)
	}
	if got := reg.Rel[0].Timeouts.Value(); got != retries+1 {
		t.Errorf("timeouts %d, want %d (initial send plus %d retries)", got, retries+1, retries)
	}
	if got := reg.Rel[0].Retransmits.Value(); got != retries {
		t.Errorf("retransmits %d, want %d", got, retries)
	}
}
