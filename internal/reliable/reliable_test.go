package reliable

import (
	"errors"
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func cfg(p int, faults *logp.FaultPlan) logp.Config {
	return logp.Config{
		Params: core.Params{P: p, L: 6, O: 2, G: 4},
		Faults: faults,
	}
}

func TestReliableDeliveryNoFaults(t *testing.T) {
	// On a perfect network the protocol is just data+ack: every message
	// arrives exactly once, in order, with no retransmissions.
	var got []Message
	var retrans int
	_, err := logp.Run(cfg(2, nil), func(p *logp.Proc) {
		e := New(p, Config{})
		switch p.ID() {
		case 0:
			for i := 0; i < 5; i++ {
				if err := e.Send(1, 7, i); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
			retrans = e.Retransmits()
		case 1:
			for i := 0; i < 5; i++ {
				got = append(got, e.Recv())
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d messages, want 5", len(got))
	}
	for i, m := range got {
		if m.From != 0 || m.Tag != 7 || m.Data.(int) != i {
			t.Errorf("message %d = %+v, want {0 7 %d}", i, m, i)
		}
	}
	if retrans != 0 {
		t.Errorf("%d retransmissions on a perfect network", retrans)
	}
}

func TestDuplicateSuppression(t *testing.T) {
	// The network duplicates every data frame on 0->1; the receiver must
	// deliver each message exactly once and re-ack every suppressed copy.
	plan := &logp.FaultPlan{
		Seed:  1,
		Links: map[logp.Link]logp.LinkFault{{From: 0, To: 1}: {Dup: 1}},
	}
	var got []Message
	var suppressed int
	res, err := logp.Run(cfg(2, plan), func(p *logp.Proc) {
		e := New(p, Config{})
		switch p.ID() {
		case 0:
			for i := 0; i < 4; i++ {
				if err := e.Send(1, 0, i); err != nil {
					t.Errorf("send %d: %v", i, err)
				}
			}
			e.Drain(p.Now() + 100)
		case 1:
			for i := 0; i < 4; i++ {
				got = append(got, e.Recv())
			}
			e.Drain(p.Now() + 100) // keep re-acking late copies
			suppressed = e.Duplicates()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("delivered %d messages, want 4", len(got))
	}
	for i, m := range got {
		if m.Data.(int) != i {
			t.Errorf("message %d carried %v, want %d: duplicate slipped through", i, m.Data, i)
		}
	}
	if suppressed == 0 {
		t.Error("no duplicates suppressed although every frame was copied")
	}
	if res.Duplicated == 0 {
		t.Error("machine reported no duplicated messages")
	}
}

// lossyOneRetransmit finds a seed where the first data frame is dropped and
// the retransmission survives: the canonical single-timeout recovery.
func TestRetransmitAfterOneTimeout(t *testing.T) {
	for seed := int64(0); seed < 64; seed++ {
		plan := &logp.FaultPlan{
			Seed: seed,
			// Only the data direction is lossy; acks always get through.
			Links: map[logp.Link]logp.LinkFault{{From: 0, To: 1}: {Drop: 0.5}},
		}
		var sendErr error
		var retrans int
		var sendDone int64
		var got []Message
		_, err := logp.Run(cfg(2, plan), func(p *logp.Proc) {
			e := New(p, Config{Timeout: 40})
			switch p.ID() {
			case 0:
				sendErr = e.Send(1, 0, "v")
				retrans = e.Retransmits()
				sendDone = p.Now()
			case 1:
				if m, ok := e.RecvUntil(2000); ok {
					got = append(got, m)
				}
				e.Drain(p.Now() + 100)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if retrans != 1 {
			continue // wrong drop pattern for this seed, try the next
		}
		if sendErr != nil {
			t.Fatalf("seed %d: send failed despite successful retransmission: %v", seed, sendErr)
		}
		if len(got) != 1 || got[0].Data.(string) != "v" {
			t.Fatalf("seed %d: delivered %v, want the one message", seed, got)
		}
		// The sender sat out one full timeout before retransmitting: the
		// round trip finished after Timeout but within two timeouts.
		if sendDone <= 40 || sendDone > 2*40+40 {
			t.Errorf("seed %d: send completed at %d; want after one 40-cycle timeout", seed, sendDone)
		}
		return
	}
	t.Fatal("no seed in [0,64) produced exactly one retransmission")
}

func TestBackoffCapAndDeadPeerVerdict(t *testing.T) {
	// Every data frame to 1 is lost: the sender must time out Retries+1
	// times with capped exponential backoff, then declare the peer dead.
	plan := &logp.FaultPlan{
		Links: map[logp.Link]logp.LinkFault{{From: 0, To: 1}: {Drop: 1}},
	}
	var firstErr, secondErr error
	var retrans int
	var gaveUpAt, secondFailAt int64
	var dead bool
	_, err := logp.Run(cfg(2, plan), func(p *logp.Proc) {
		e := New(p, Config{Timeout: 10, BackoffCap: 20, Retries: 4})
		if p.ID() != 0 {
			return
		}
		firstErr = e.Send(1, 0, "x")
		retrans = e.Retransmits()
		gaveUpAt = p.Now()
		dead = e.Dead(1)
		secondErr = e.Send(1, 0, "y")
		secondFailAt = p.Now()
	})
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(firstErr, ErrPeerDead) {
		t.Fatalf("send error = %v, want ErrPeerDead", firstErr)
	}
	if retrans != 4 {
		t.Errorf("retransmissions = %d, want the full budget of 4", retrans)
	}
	if !dead {
		t.Error("peer not marked dead after budget exhaustion")
	}
	// Attempts at 0, 12, 34, 56, 78 (o=2 each); timeouts 10, 20, 20, 20, 20
	// — the third and later are capped at BackoffCap, not 40/80/160.
	if gaveUpAt != 100 {
		t.Errorf("gave up at %d, want exactly 100 (capped backoff schedule)", gaveUpAt)
	}
	if !errors.Is(secondErr, ErrPeerDead) {
		t.Errorf("second send error = %v, want immediate ErrPeerDead", secondErr)
	}
	if secondFailAt != gaveUpAt {
		t.Errorf("second send burned %d cycles, want an immediate failure", secondFailAt-gaveUpAt)
	}
}

func TestReliableBroadcastUnderDrop(t *testing.T) {
	// Acceptance criterion: with a seeded 1% drop plan, reliable broadcast
	// on P=8 delivers the value to every processor.
	plan := &logp.FaultPlan{Seed: 11, Default: logp.LinkFault{Drop: 0.01}}
	const P = 8
	var got [P]any
	var errs [P]error
	_, err := logp.Run(cfg(P, plan), func(p *logp.Proc) {
		e := New(p, Config{})
		v, berr := Broadcast(e, 0, 1, "payload", p.Now()+100000)
		got[p.ID()], errs[p.ID()] = v, berr
		e.Drain(p.Now() + 5000)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < P; i++ {
		if errs[i] != nil {
			t.Errorf("proc %d: %v", i, errs[i])
		}
		if got[i] != "payload" {
			t.Errorf("proc %d got %v, want the payload", i, got[i])
		}
	}
}

func TestReliableDeterminism(t *testing.T) {
	// Same seed => identical makespan and identical retransmit count.
	run := func() (int64, int) {
		plan := &logp.FaultPlan{Seed: 5, Default: logp.LinkFault{Drop: 0.2}}
		const P = 8
		var retrans [P]int
		res, err := logp.Run(cfg(P, plan), func(p *logp.Proc) {
			e := New(p, Config{Timeout: 50})
			if _, berr := Broadcast(e, 0, 1, 42, p.Now()+100000); berr != nil {
				t.Errorf("proc %d: %v", p.ID(), berr)
			}
			e.Drain(p.Now() + 2000)
			retrans[p.ID()] = e.Retransmits()
		})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, r := range retrans {
			total += r
		}
		return res.Time, total
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Errorf("identically seeded runs diverged: makespan %d/%d, retransmits %d/%d", t1, t2, r1, r2)
	}
	if r1 == 0 {
		t.Error("20%% drop produced no retransmissions; the scenario is vacuous")
	}
}

func TestReducePartialResultAroundDeadPeer(t *testing.T) {
	// Proc 5 dies before contributing; its parent times out and the root
	// still gets a partial sum counting the 7 survivors.
	plan := &logp.FaultPlan{FailStops: []logp.FailStop{{Proc: 5, At: 0}}}
	const P = 8
	var rootGot Contribution
	var rootOK bool
	_, err := logp.Run(cfg(P, plan), func(p *logp.Proc) {
		e := New(p, Config{Timeout: 30, Retries: 3})
		c, ok, rerr := Reduce(e, 0, 2, float64(p.ID()), 500)
		if ok {
			rootGot, rootOK = c, true
		}
		_ = rerr // proc 5's parent reports the dead child; others are clean
		e.Drain(p.Now() + 5000)
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rootOK {
		t.Fatal("no processor reported the root result")
	}
	if rootGot.N != P-1 {
		t.Errorf("root summed %d contributions, want %d (everyone but the corpse)", rootGot.N, P-1)
	}
	want := float64(0 + 1 + 2 + 3 + 4 + 6 + 7) // everyone except proc 5
	if rootGot.Value != want {
		t.Errorf("root sum = %v, want %v", rootGot.Value, want)
	}
}

func TestBroadcastSkipsDeadSubtree(t *testing.T) {
	// Proc 1 (an internal node of the binomial tree from root 0: children
	// ranks 1,2,4) is dead: its parent reports ErrPeerDead, procs below it
	// time out with ErrNoData, and the rest still get the value.
	plan := &logp.FaultPlan{FailStops: []logp.FailStop{{Proc: 4, At: 0}}}
	const P = 8
	var errs [P]error
	var got [P]any
	_, err := logp.Run(cfg(P, plan), func(p *logp.Proc) {
		e := New(p, Config{Timeout: 20, Retries: 2})
		got[p.ID()], errs[p.ID()] = Broadcast(e, 0, 3, "v", p.Now()+4000)
		e.Drain(p.Now() + 6000)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Rank 4's subtree is {4, 5, 6, 7}: 4 is dead, 5..7 never hear anything.
	if !errors.Is(errs[0], ErrPeerDead) {
		t.Errorf("root error = %v, want ErrPeerDead for its dead child", errs[0])
	}
	for _, i := range []int{5, 6, 7} {
		if !errors.Is(errs[i], ErrNoData) {
			t.Errorf("orphan %d error = %v, want ErrNoData", i, errs[i])
		}
	}
	for _, i := range []int{1, 2, 3} {
		if errs[i] != nil {
			t.Errorf("live proc %d: %v", i, errs[i])
		}
		if got[i] != "v" {
			t.Errorf("live proc %d got %v, want the value", i, got[i])
		}
	}
}
