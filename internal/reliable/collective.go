package reliable

import "fmt"

// Collectives over the reliable layer: the binomial-tree broadcast and
// reduction of internal/collective, re-built on Endpoint.Send/RecvTagUntil
// so they survive message loss and degrade gracefully around dead peers
// instead of deadlocking. The price is visible in the model's terms: every
// hop now costs a data frame plus an ack, and a lossy link adds whole
// retransmission timeouts to the affected subtree.

// Broadcast delivers data from root to every reachable processor down a
// binomial tree. Every processor calls it; deadline is the absolute time at
// which a processor gives up waiting for the value (its parent — or the
// parent's whole path to the root — is then presumed dead and the processor
// returns an ErrNoData-wrapping error). A processor that cannot deliver to a
// child (ErrPeerDead) keeps forwarding to its remaining children and
// reports the first such failure; the orphaned subtree simply never gets
// the value.
func Broadcast(e *Endpoint, root, tag int, data any, deadline int64) (any, error) {
	P := e.p.P()
	r := (e.p.ID() - root + P) % P // rank relative to the root
	mask := 1
	for mask < P {
		if r&mask != 0 {
			m, ok := e.RecvTagUntil(tag, deadline)
			if !ok {
				return nil, fmt.Errorf("reliable: broadcast value never reached proc %d: %w", e.p.ID(), ErrNoData)
			}
			data = m.Data
			break
		}
		mask <<= 1
	}
	// Forward to the subtree below the bit we joined on, largest first.
	var firstErr error
	for mask >>= 1; mask > 0; mask >>= 1 {
		if dst := r + mask; dst < P {
			if err := e.Send((dst+root)%P, tag, data); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	return data, firstErr
}

// Contribution is a (possibly partial) reduction result: Value aggregated
// over N contributing processors. Reduce reports partial sums rather than
// failing when part of the tree is unreachable — the caller sees from N how
// much of the machine answered.
type Contribution struct {
	Value float64
	N     int
}

// Reduce folds each processor's value up a binomial tree to root. Every
// processor calls it; on the root it returns ok=true and the contribution
// accumulated from every subtree that answered. A non-root processor
// returns its own subtree's contribution and ok=false; its error is
// non-nil if the parent was unreachable (that subtree's values are then
// lost to the root).
//
// patience is the per-hop waiting budget. The wait for the child at
// distance mask lasts 2*mask*patience cycles: geometric in the child's
// subtree size, so a parent that must first wait out dead descendants
// still delivers its partial sum inside its own parent's window — a flat
// deadline would cascade (the late partial arrives just after everyone
// upstream gave up). patience should comfortably exceed one hop including
// a full retransmission tail.
func Reduce(e *Endpoint, root, tag int, value float64, patience int64) (Contribution, bool, error) {
	P := e.p.P()
	r := (e.p.ID() - root + P) % P
	c := Contribution{Value: value, N: 1}
	for mask := 1; mask < P; mask <<= 1 {
		if r&mask != 0 {
			parent := (r - mask + root) % P
			if err := e.Send(parent, tag, c); err != nil {
				return c, false, err
			}
			return c, false, nil
		}
		if src := r + mask; src < P {
			// Contributions are matched by tag, not source: children finish
			// in data-dependent order and addition commutes, exactly as in
			// collective.BinomialReduce. A timeout means one child (and its
			// whole subtree) is presumed dead; the fold continues without it.
			deadline := e.p.Now() + 2*int64(mask)*patience
			if m, ok := e.RecvTagUntil(tag, deadline); ok {
				child := m.Data.(Contribution)
				c.Value += child.Value
				c.N += child.N
				e.p.Compute(1)
			}
		}
	}
	return c, true, nil
}
