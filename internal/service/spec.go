// Package service turns the deterministic simulation runners into a
// simulation-as-a-service subsystem: a canonical job specification with a
// stable content hash, a bounded content-addressed result cache with
// single-flight de-duplication, a bounded executor running jobs on reusable
// flat machines, and the HTTP/JSON handlers cmd/logpsimd serves them from.
//
// The load-bearing property is the one the paper's model promises and PR 6
// pinned in tests: a simulation's entire observable result — Result, program
// output, metrics snapshot — is a pure function of its job spec. That makes
// the spec hash a sound cache key: a cached response is byte-identical to
// what re-running the simulation would produce, so identical specs are free
// and parameter sweeps amortize to the cost of their distinct points.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/progs"
	"github.com/logp-model/logp/internal/topo"
)

// MachineSpec describes the simulated machine: the four LogP parameters plus
// the model toggles the runners accept.
type MachineSpec struct {
	P int   `json:"p"` // processor count
	L int64 `json:"l"` // network latency upper bound in cycles
	O int64 `json:"o"` // per-endpoint send/receive overhead in cycles
	G int64 `json:"g"` // minimum gap between transmissions in cycles
	// NoCapacity disables the ceil(L/g) capacity constraint. Legal with
	// sharded flat execution either way: capacity-off sharding uses the
	// o+L lookahead fast path, capacity-on sharding settles the per-link
	// accounting at window barriers.
	NoCapacity bool `json:"no_capacity,omitempty"`
	// LatencyJitter makes message latency uniform in [L-LatencyJitter, L]
	// instead of exactly L, deterministic in Seed (the other asynchrony
	// knobs below are too).
	LatencyJitter int64 `json:"latency_jitter,omitempty"`
	// ComputeJitter stretches each compute interval by a uniform factor in
	// [1, 1+ComputeJitter].
	ComputeJitter float64 `json:"compute_jitter,omitempty"`
	// ProcSkew gives each processor a fixed systematic speed factor drawn
	// uniformly from [1, 1+ProcSkew].
	ProcSkew float64 `json:"proc_skew,omitempty"`
	// Topology describes a hierarchical (L, o, g) cost model layered over
	// the base parameters, which become the top (cluster) tier. Nil means a
	// flat machine — the field is appended with omitempty so every
	// pre-topology spec still canonicalizes to the same bytes and the same
	// hash. See topo.Spec for the shape and validation rules.
	Topology *topo.Spec `json:"topology,omitempty"`
}

// Params returns the core parameter tuple.
func (m MachineSpec) Params() core.Params { return core.Params{P: m.P, L: m.L, O: m.O, G: m.G} }

// FaultSpec is the JSON form of the fault plan the CLI flags expose: a
// default link fault for every link plus fail-stop events. A nil FaultSpec
// (or one that injects nothing) runs the machine on its zero-overhead
// fault-free path.
type FaultSpec struct {
	// Seed drives the fault draws, independent of the machine seed; 0 is
	// normalized to 1, mirroring the CLI default.
	Seed   int64          `json:"seed,omitempty"`
	Drop   float64        `json:"drop,omitempty"`       // per-message loss probability in [0,1]
	Dup    float64        `json:"dup,omitempty"`        // per-message duplication probability in [0,1]
	Jitter int64          `json:"jitter,omitempty"`     // extra fault-injected delay bound in cycles
	Fails  []FailStopSpec `json:"fail_stops,omitempty"` // scheduled processor kills
}

// FailStopSpec kills processor Proc at local time At.
type FailStopSpec struct {
	Proc int   `json:"proc"` // processor to kill
	At   int64 `json:"at"`   // local cycle at which it halts
}

// empty reports whether the spec injects nothing (the all-zero plan is
// proven cycle-identical to no plan, so Normalize drops it).
func (f *FaultSpec) empty() bool {
	return f == nil || (f.Drop == 0 && f.Dup == 0 && f.Jitter == 0 && len(f.Fails) == 0)
}

// plan converts to the machine's FaultPlan.
func (f *FaultSpec) plan() *logp.FaultPlan {
	if f == nil {
		return nil
	}
	p := &logp.FaultPlan{
		Seed:    f.Seed,
		Default: logp.LinkFault{Drop: f.Drop, Dup: f.Dup, Jitter: f.Jitter},
	}
	for _, fs := range f.Fails {
		p.FailStops = append(p.FailStops, logp.FailStop{Proc: fs.Proc, At: fs.At})
	}
	return p
}

// MetricsSpec asks for the run's telemetry snapshot in the response.
type MetricsSpec struct {
	// Include puts the full metrics.Snapshot (families + sampled series)
	// in the response body.
	Include bool `json:"include"`
	// Every is the sampling interval in simulated cycles; 0 takes the
	// registry default.
	Every int64 `json:"every,omitempty"`
}

// JobSpec is the canonical description of one simulation job. Its normalized
// JSON encoding is the content the cache addresses: Normalize resolves every
// default so that any two specs asking for the same simulation serialize to
// the same bytes and therefore the same Hash.
type JobSpec struct {
	// Program names a registry program (progs.Names): pingpong, broadcast,
	// sum, chain, binomial, alltoall.
	Program string `json:"program"`
	// N is the program's problem size (see progs.Args); 0 resolves to the
	// program's default.
	N int `json:"n,omitempty"`
	// Work and Staggered parameterize the all-to-all.
	Work int64 `json:"work,omitempty"`
	// Staggered rotates the all-to-all's destination order per sender.
	Staggered bool `json:"staggered,omitempty"`

	// Machine is the simulated machine the program runs on.
	Machine MachineSpec `json:"machine"`

	// Engine selects the execution engine: "goroutine" or "flat" ("" =
	// goroutine — the spec default is fixed, not environment-dependent, so
	// hashes are stable across daemon configurations).
	Engine string `json:"engine"`
	// Shards > 1 selects the flat engine's windowed parallel kernel. The
	// sharded kernel is bit-deterministic in the shard count, but the
	// capacity-off fast path reports the in-transit observables as zero
	// (settling them would couple shards), so Shards is part of the hash.
	Shards int `json:"shards,omitempty"`

	// Seed drives the machine's random draws; 0 is normalized to 1,
	// mirroring the CLI default.
	Seed int64 `json:"seed,omitempty"`

	Faults  *FaultSpec   `json:"faults,omitempty"`  // optional fault-injection plan
	Metrics *MetricsSpec `json:"metrics,omitempty"` // optional telemetry request

	// IncludeProcs puts the per-processor statistics in the response
	// (verbose for large P, so off by default).
	IncludeProcs bool `json:"include_procs,omitempty"`
}

// Limits bound what a single spec may ask of the daemon; the zero value
// applies the defaults.
type Limits struct {
	// MaxP caps Machine.P (default 1 << 20).
	MaxP int
	// MaxN caps the problem size N (default 1 << 20).
	MaxN int
}

// DefaultLimits are the caps applied when a Limits field is zero.
var DefaultLimits = Limits{MaxP: 1 << 20, MaxN: 1 << 20}

func (l Limits) maxP() int {
	if l.MaxP > 0 {
		return l.MaxP
	}
	return DefaultLimits.MaxP
}

func (l Limits) maxN() int {
	if l.MaxN > 0 {
		return l.MaxN
	}
	return DefaultLimits.MaxN
}

// Normalize validates the spec and rewrites it into canonical form: engine
// and seed defaults resolved, the program's default size filled in, fields
// the program ignores zeroed, no-op fault and metrics blocks dropped. Two
// specs describing the same simulation normalize to identical values, so
// their hashes match and the second is a cache hit. Returns the first
// validation error; a normalized spec is ready to run.
func (s *JobSpec) Normalize(lim Limits) error {
	defN, err := progs.DefaultN(s.Program)
	if err != nil {
		return err
	}
	if err := s.Machine.Params().Validate(); err != nil {
		return err
	}
	if s.Machine.P > lim.maxP() {
		return fmt.Errorf("service: P=%d exceeds the limit %d", s.Machine.P, lim.maxP())
	}
	if s.N < 0 {
		return fmt.Errorf("service: negative problem size n=%d", s.N)
	}
	if s.N > lim.maxN() {
		return fmt.Errorf("service: n=%d exceeds the limit %d", s.N, lim.maxN())
	}
	if s.Machine.LatencyJitter < 0 || s.Machine.LatencyJitter > s.Machine.L {
		return fmt.Errorf("service: latency jitter %d outside [0, L=%d]", s.Machine.LatencyJitter, s.Machine.L)
	}
	if s.Machine.ComputeJitter < 0 || s.Machine.ProcSkew < 0 {
		return fmt.Errorf("service: negative compute jitter or skew")
	}
	if t := s.Machine.Topology; t != nil {
		// Build the model once here so a bad topology fails at validation,
		// with the same errors the machine constructors would raise.
		m, err := t.Build(s.Machine.Params())
		if err != nil {
			return err
		}
		if s.Machine.LatencyJitter > m.MinL() {
			return fmt.Errorf("service: latency jitter %d exceeds the minimum link latency %d", s.Machine.LatencyJitter, m.MinL())
		}
	}

	switch s.Engine {
	case "":
		s.Engine = "goroutine"
	case "goroutine", "flat":
	default:
		return fmt.Errorf("service: unknown engine %q (want goroutine or flat)", s.Engine)
	}
	if s.Shards < 0 {
		return fmt.Errorf("service: negative shard count %d", s.Shards)
	}
	if s.Shards > 1 && s.Engine != "flat" {
		return fmt.Errorf("service: shards apply to the flat engine only")
	}
	if s.Shards > s.Machine.P {
		s.Shards = s.Machine.P // the machine clamps; canonicalize so hashes agree
	}
	if s.Shards == 1 {
		s.Shards = 0 // one shard is the sequential core: same machine, same bytes
	}

	// Program-size canonicalization mirrors progs.Build: sizeless programs
	// force N to 0, sized programs resolve the default.
	if defN == 0 {
		s.N = 0
	} else if s.N == 0 {
		s.N = defN
	}
	if s.Program != "alltoall" {
		s.Work, s.Staggered = 0, false
	}
	if s.Work < 0 {
		return fmt.Errorf("service: negative work %d", s.Work)
	}

	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Faults.empty() {
		s.Faults = nil
	} else {
		if s.Faults.Drop < 0 || s.Faults.Drop > 1 || s.Faults.Dup < 0 || s.Faults.Dup > 1 {
			return fmt.Errorf("service: fault probabilities outside [0,1]")
		}
		if s.Faults.Jitter < 0 {
			return fmt.Errorf("service: negative fault jitter")
		}
		if s.Faults.Seed == 0 {
			s.Faults.Seed = 1
		}
		if err := s.Faults.plan().Validate(s.Machine.P); err != nil {
			return err
		}
	}
	if s.Metrics != nil {
		if s.Metrics.Every < 0 {
			return fmt.Errorf("service: negative metrics interval")
		}
		if !s.Metrics.Include {
			s.Metrics = nil
		}
	}
	if s.Shards > 1 {
		// Mirror the flat kernel's sharding preconditions here so a bad
		// spec fails at validation, before it occupies a worker. Capacity
		// on is legal (the capacity-sharded kernel settles the accounting
		// at window barriers), and so are fail-stop-only fault plans (a
		// kill is an event on its victim's own shard and consumes no
		// random draws); probabilistic link faults are not.
		if s.Faults != nil && (s.Faults.Drop != 0 || s.Faults.Dup != 0 || s.Faults.Jitter != 0) {
			return fmt.Errorf("service: sharded execution allows fail-stop faults only")
		}
		if s.Machine.LatencyJitter != 0 || s.Machine.ComputeJitter != 0 {
			return fmt.Errorf("service: sharded execution requires zero latency/compute jitter")
		}
		minOL := s.Machine.O + s.Machine.L
		if t := s.Machine.Topology; t != nil {
			if m, err := t.Build(s.Machine.Params()); err == nil {
				minOL = m.MinOL()
			}
		}
		if s.Machine.NoCapacity && minOL < 1 {
			return fmt.Errorf("service: sharded execution without capacity requires min(o+L) >= 1 over all links")
		}
	}
	return nil
}

// Canonical returns the canonical JSON encoding of a normalized spec: the
// exact bytes the content hash covers. Field order is fixed by the struct
// definitions, so the encoding is stable across processes and Go versions
// (the golden-hash test pins it).
func (s JobSpec) Canonical() []byte {
	b, err := json.Marshal(s)
	if err != nil {
		// Every field is a plain value; Marshal cannot fail on a JobSpec.
		panic(fmt.Sprintf("service: canonical encoding: %v", err))
	}
	return b
}

// Hash is the spec's content address: hex SHA-256 of the canonical
// encoding. Call it on normalized specs only — Normalize is what guarantees
// equal simulations get equal hashes.
func (s JobSpec) Hash() string {
	sum := sha256.Sum256(s.Canonical())
	return hex.EncodeToString(sum[:])
}
