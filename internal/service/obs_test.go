package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/logp-model/logp/internal/obs"
)

// timingStages parses an X-Logpsimd-Timing header into its stage names.
func timingStages(t *testing.T, header string) map[string]bool {
	t.Helper()
	stages := map[string]bool{}
	if header == "" {
		return stages
	}
	for _, part := range strings.Split(header, ",") {
		name, dur, ok := strings.Cut(strings.TrimSpace(part), ";dur=")
		if !ok || name == "" || dur == "" {
			t.Fatalf("malformed timing entry %q in %q", part, header)
		}
		stages[name] = true
	}
	return stages
}

// postJobs posts a spec with a query string and returns the full response
// with its body drained.
func postJobs(t *testing.T, url string, spec JobSpec, query string) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs"+query, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestTimingHeaderAcrossCachePaths pins the span surface: every /v1/jobs
// response carries X-Logpsimd-Timing, the executing request (cold, and a
// forced refresh) reports execute and encode stages, while a cache hit —
// which never runs the simulation — reports decode/normalize/cache only.
// The header is wall-clock observability and must never leak into the body:
// cold and hit bodies stay byte-identical.
func TestTimingHeaderAcrossCachePaths(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := specBroadcast8()

	cold, coldBody := postJobs(t, ts.URL, spec, "")
	st := timingStages(t, cold.Header.Get("X-Logpsimd-Timing"))
	if !st["decode"] || !st["execute"] || !st["encode"] || !st["cache"] {
		t.Errorf("cold stages %v, want decode+execute+encode+cache", st)
	}

	hit, hitBody := postJobs(t, ts.URL, spec, "")
	if hit.Header.Get("X-Logpsimd-Cache") != "hit" {
		t.Fatalf("second submit not a hit: %q", hit.Header.Get("X-Logpsimd-Cache"))
	}
	st = timingStages(t, hit.Header.Get("X-Logpsimd-Timing"))
	if !st["decode"] || !st["cache"] {
		t.Errorf("hit stages %v, want decode+cache", st)
	}
	if st["execute"] || st["encode"] {
		t.Errorf("hit stages %v: a cache hit must not report simulation stages", st)
	}
	if !bytes.Equal(coldBody, hitBody) {
		t.Error("timing instrumentation changed the cached body")
	}

	refresh, _ := postJobs(t, ts.URL, spec, "?refresh=1")
	st = timingStages(t, refresh.Header.Get("X-Logpsimd-Timing"))
	if !st["execute"] || !st["encode"] {
		t.Errorf("refresh stages %v, want execute+encode (it re-runs)", st)
	}

	// Hash lookup: served straight from the cache, decode-free.
	var hashResp struct {
		SpecHash string `json:"spec_hash"`
	}
	if err := json.Unmarshal(coldBody, &hashResp); err != nil {
		t.Fatal(err)
	}
	get, err := http.Get(ts.URL + "/v1/jobs/" + hashResp.SpecHash)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, get.Body)
	get.Body.Close()
	st = timingStages(t, get.Header.Get("X-Logpsimd-Timing"))
	if !st["cache"] || st["execute"] {
		t.Errorf("lookup stages %v, want cache only", st)
	}
}

// TestTimingHeaderOnStream covers the NDJSON path: the headers go out before
// the body streams, so the timing header carries the pre-execution stages
// and the cache/hash headers are still present.
func TestTimingHeaderOnStream(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := JobSpec{Program: "sum", N: 2000, Machine: MachineSpec{P: 8, L: 5, O: 2, G: 4},
		Metrics: &MetricsSpec{Include: true, Every: 50}}
	b, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs?stream=samples", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Logpsimd-Spec-Hash") == "" {
		t.Error("stream response missing spec-hash header")
	}
	st := timingStages(t, resp.Header.Get("X-Logpsimd-Timing"))
	if !st["decode"] {
		t.Errorf("stream stages %v, want at least decode (headers precede the run)", st)
	}
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines < 3 {
		t.Errorf("stream delivered %d lines; the Flusher passthrough must survive instrumentation", lines)
	}
}

// TestMetricsEndpoint checks GET /metrics: Prometheus content type, the
// service families present, and the request/cache counters advancing with
// traffic.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := specBroadcast8()
	postJobs(t, ts.URL, spec, "")
	postJobs(t, ts.URL, spec, "")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		"logpsimd_uptime_seconds",
		"logpsimd_jobs_run_total 1",
		"logpsimd_cache_hits_total 1",
		"logpsimd_cache_misses_total 1",
		"logpsimd_executor_queue_depth 0",
		"logpsimd_executor_in_flight 0",
		"logpsimd_machine_pool_acquires_total",
		`logpsimd_http_requests_total{route="/v1/jobs"} 2`,
		`logpsimd_http_request_us_bucket{route="/v1/jobs",le="+Inf"} 2`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The scrape itself is instrumented on the next scrape.
	resp2, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body2, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(body2), `logpsimd_http_requests_total{route="/metrics"} 1`) {
		t.Error("second scrape does not count the first")
	}
}

// TestExtendedServerStats covers the wall-clock fields added to /v1/stats:
// executor gauges quiesce to zero between requests, the machine pool reports
// its size and hit rate, and uptime advances.
func TestExtendedServerStats(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2})
	spec := specBroadcast8()
	spec.Engine = "flat"
	postJobs(t, ts.URL, spec, "")
	postJobs(t, ts.URL, spec, "?refresh=1") // reuses the pooled machine

	st := srv.Stats()
	if st.QueueDepth != 0 || st.InFlight != 0 {
		t.Errorf("executor gauges not quiesced: queue %d, in-flight %d", st.QueueDepth, st.InFlight)
	}
	if st.PoolSize != 1 {
		t.Errorf("pool size %d, want 1 (one flat spec seen)", st.PoolSize)
	}
	if st.PoolHitRate != 0.5 {
		t.Errorf("pool hit rate %v, want 0.5 (one build, one reuse)", st.PoolHitRate)
	}
	if st.UptimeSeconds <= 0 {
		t.Errorf("uptime %v", st.UptimeSeconds)
	}

	// And the same numbers over HTTP.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var got ServerStats
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("stats body %s: %v", body, err)
	}
	if got.PoolSize != 1 || got.UptimeSeconds <= 0 {
		t.Errorf("HTTP stats %+v", got)
	}
}

// TestRequestLogging wires a JSON slog logger into the server and checks the
// per-request line: one line per request with method, status, spec hash,
// cache verdict and stage latencies — execute present on the miss, absent on
// the hit.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger, err := obs.NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Workers: 2, Logger: logger})
	spec := specBroadcast8()
	postJobs(t, ts.URL, spec, "")
	postJobs(t, ts.URL, spec, "")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2: %q", len(lines), buf.String())
	}
	type reqLine struct {
		Msg       string `json:"msg"`
		Method    string `json:"method"`
		Status    int    `json:"status"`
		Program   string `json:"program"`
		Hash      string `json:"hash"`
		Cache     string `json:"cache"`
		ExecuteUs *int64 `json:"execute_us"`
		DecodeUs  *int64 `json:"decode_us"`
	}
	var miss, hit reqLine
	if err := json.Unmarshal([]byte(lines[0]), &miss); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &hit); err != nil {
		t.Fatal(err)
	}
	if miss.Msg != "request" || miss.Method != "POST" || miss.Status != 200 ||
		miss.Program != "broadcast" || len(miss.Hash) != 64 || miss.Cache != "miss" {
		t.Errorf("miss line %+v", miss)
	}
	if miss.ExecuteUs == nil || miss.DecodeUs == nil {
		t.Errorf("miss line lacks stage latencies: %s", lines[0])
	}
	if hit.Cache != "hit" || hit.Hash != miss.Hash {
		t.Errorf("hit line %+v", hit)
	}
	if hit.ExecuteUs != nil {
		t.Errorf("hit line reports an execute stage: %s", lines[1])
	}
}

// TestPprofGating: the profiling endpoints exist only when EnablePprof is
// set — an unconfigured server must not expose them.
func TestPprofGating(t *testing.T) {
	_, off := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(off.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Errorf("pprof off: status %d, want 404", resp.StatusCode)
	}

	_, on := newTestServer(t, Config{Workers: 1, EnablePprof: true})
	resp, err = http.Get(on.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "goroutine") {
		t.Errorf("pprof on: status %d", resp.StatusCode)
	}
}
