package service

import (
	"bytes"
	"container/list"
	"encoding/json"
	"fmt"
	"sync"

	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/progs"
)

// ProcStatsJSON mirrors logp.ProcStats with stable JSON field names.
type ProcStatsJSON struct {
	Proc         int   `json:"proc"`          // processor ID
	Compute      int64 `json:"compute"`       // cycles spent in local work
	SendOverhead int64 `json:"send_overhead"` // cycles spent in send o
	RecvOverhead int64 `json:"recv_overhead"` // cycles spent in receive o
	Stall        int64 `json:"stall"`         // cycles stalled on gap or capacity
	Finish       int64 `json:"finish"`        // cycle the processor went idle for good
	MsgsSent     int   `json:"msgs_sent"`     // messages this processor sent
	MsgsReceived int   `json:"msgs_received"` // messages this processor received
}

// ResultJSON mirrors logp.Result minus the trace.
type ResultJSON struct {
	Time             int64           `json:"time"`                // completion cycle of the run
	Messages         int             `json:"messages"`            // total messages delivered
	MaxInTransitFrom int             `json:"max_in_transit_from"` // peak in-flight count from one sender
	MaxInTransitTo   int             `json:"max_in_transit_to"`   // peak in-flight count toward one receiver
	Dropped          int             `json:"dropped"`             // messages lost by fault injection
	Duplicated       int             `json:"duplicated"`          // messages duplicated by fault injection
	Failed           []int           `json:"failed,omitempty"`    // processors halted by fail-stop faults
	Undelivered      int             `json:"undelivered"`         // messages still queued at completion
	Procs            []ProcStatsJSON `json:"procs,omitempty"`     // per-processor stats when requested
}

// Response is the full observable result of one job: what the daemon caches
// and serves, and what logpsim -json prints. Its encoding is deterministic —
// struct fields encode in definition order, the Output map's keys sort, and
// the metrics snapshot is ordered by construction — so equal specs produce
// byte-identical bodies whether computed or replayed from the cache.
type Response struct {
	// SpecHash is the content address of the normalized Spec.
	SpecHash string `json:"spec_hash"`
	// Spec is the normalized spec the response answers.
	Spec JobSpec `json:"spec"`
	// Result summarizes the machine run.
	Result ResultJSON `json:"result"`
	// Output is the program-level digest (progs.Instance.Output).
	Output map[string]float64 `json:"output,omitempty"`
	// Metrics is the telemetry snapshot (when Spec.Metrics asked for it).
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

// Encode renders the canonical response body: two-space-indented JSON with a
// trailing newline, matching the metrics JSON writer's house style.
func (r *Response) Encode() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeResponse parses a canonical response body.
func DecodeResponse(body []byte) (*Response, error) {
	var r Response
	if err := json.Unmarshal(body, &r); err != nil {
		return nil, err
	}
	return &r, nil
}

// config assembles the logp.Config for a normalized spec.
func (s JobSpec) config() logp.Config {
	cfg := logp.Config{
		Params:          s.Machine.Params(),
		LatencyJitter:   s.Machine.LatencyJitter,
		ComputeJitter:   s.Machine.ComputeJitter,
		ProcSkew:        s.Machine.ProcSkew,
		Seed:            s.Seed,
		DisableCapacity: s.Machine.NoCapacity,
		Faults:          s.Faults.plan(),
	}
	if t := s.Machine.Topology; t != nil {
		// Normalize already built this model once to validate it; Build on a
		// validated spec cannot fail.
		m, err := t.Build(s.Machine.Params())
		if err != nil {
			panic(fmt.Sprintf("service: topology on a normalized spec: %v", err))
		}
		cfg.Topology = m
	}
	if s.Metrics != nil {
		cfg.Metrics = metrics.NewRegistry()
		cfg.MetricsEvery = s.Metrics.Every
	}
	return cfg
}

// Run normalizes and executes one spec from scratch and builds its Response.
// This is the uncached, pool-free entry point the CLI uses; the daemon runs
// the same jobSpec→Response path through its cache and machine pool.
func Run(spec JobSpec) (*Response, error) {
	if err := spec.Normalize(Limits{}); err != nil {
		return nil, err
	}
	return runNormalized(spec, nil)
}

// runNormalized executes a normalized spec, drawing a reusable machine from
// pool when one is available.
func runNormalized(spec JobSpec, pool *machinePool) (*Response, error) {
	hash := spec.Hash()
	var (
		res  logp.Result
		inst progs.Instance
		reg  *metrics.Registry
		err  error
	)
	if spec.Engine == "flat" {
		var m *flat.Machine
		if pool != nil {
			if pm := pool.acquire(hash); pm != nil {
				m, inst, reg = pm.m, pm.inst, pm.reg
			}
		}
		if m == nil {
			inst, err = progs.Build(spec.Program, spec.Machine.Params(),
				progs.Args{N: spec.N, Work: spec.Work, Staggered: spec.Staggered})
			if err != nil {
				return nil, err
			}
			cfg := spec.config()
			reg = cfg.Metrics
			shards := spec.Shards
			if shards < 1 {
				shards = 1
			}
			m, err = flat.New(cfg, inst.Prog, shards)
			if err != nil {
				return nil, err
			}
		}
		res, err = m.Run()
		if err == nil && pool != nil {
			pool.release(hash, &pooledMachine{m: m, inst: inst, reg: reg})
		}
	} else {
		inst, err = progs.Build(spec.Program, spec.Machine.Params(),
			progs.Args{N: spec.N, Work: spec.Work, Staggered: spec.Staggered})
		if err != nil {
			return nil, err
		}
		cfg := spec.config()
		reg = cfg.Metrics
		res, err = logp.RunProgram(cfg, inst.Prog)
	}
	if err != nil {
		return nil, err
	}

	resp := &Response{
		SpecHash: hash,
		Spec:     spec,
		Result: ResultJSON{
			Time:             res.Time,
			Messages:         res.Messages,
			MaxInTransitFrom: res.MaxInTransitFrom,
			MaxInTransitTo:   res.MaxInTransitTo,
			Dropped:          res.Dropped,
			Duplicated:       res.Duplicated,
			Failed:           res.Failed,
			Undelivered:      res.Undelivered,
		},
		Output: inst.Output(),
	}
	if spec.IncludeProcs {
		resp.Result.Procs = make([]ProcStatsJSON, len(res.Procs))
		for i, p := range res.Procs {
			resp.Result.Procs[i] = ProcStatsJSON{
				Proc: p.Proc, Compute: p.Compute,
				SendOverhead: p.SendOverhead, RecvOverhead: p.RecvOverhead,
				Stall: p.Stall, Finish: p.Finish,
				MsgsSent: p.MsgsSent, MsgsReceived: p.MsgsReceived,
			}
		}
	}
	if reg != nil {
		snap := reg.Snapshot()
		resp.Metrics = &snap
	}
	return resp, nil
}

// pooledMachine is one reusable flat machine with the program instance and
// metrics registry it was built with. flat.Machine.Run rewinds everything —
// rng, faults, metrics, program state — so a reused machine replays the run
// bit-identically at ~zero construction cost.
type pooledMachine struct {
	m    *flat.Machine
	inst progs.Instance
	reg  *metrics.Registry
}

// machinePool is a bounded LRU of reusable flat machines keyed by spec hash.
// acquire removes the entry (a machine must never run concurrently with
// itself), release puts it back; the least recently used machine is dropped
// when the pool is full.
type machinePool struct {
	mu      sync.Mutex
	max     int
	order   *list.List               // front = most recent; values are *poolItem
	entries map[string]*list.Element // hash → element

	acquires int64 // lookups, hit or miss (the pool hit-rate denominator)
	reuses   int64 // lookups that found a pooled machine
}

type poolItem struct {
	hash string
	pm   *pooledMachine
}

func newMachinePool(max int) *machinePool {
	if max < 1 {
		max = 1
	}
	return &machinePool{max: max, order: list.New(), entries: map[string]*list.Element{}}
}

func (p *machinePool) acquire(hash string) *pooledMachine {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.acquires++
	el, ok := p.entries[hash]
	if !ok {
		return nil
	}
	p.order.Remove(el)
	delete(p.entries, hash)
	p.reuses++
	return el.Value.(*poolItem).pm
}

func (p *machinePool) release(hash string, pm *pooledMachine) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, dup := p.entries[hash]; dup {
		return // a concurrent release already stocked this hash
	}
	p.entries[hash] = p.order.PushFront(&poolItem{hash: hash, pm: pm})
	for p.order.Len() > p.max {
		last := p.order.Back()
		p.order.Remove(last)
		delete(p.entries, last.Value.(*poolItem).hash)
	}
}

// Reuses reports how many runs drew a pooled machine.
func (p *machinePool) Reuses() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.reuses
}

// Counters reports the pool's lookup and reuse totals (the hit-rate pair).
func (p *machinePool) Counters() (acquires, reuses int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquires, p.reuses
}

// Size reports the number of machines currently pooled.
func (p *machinePool) Size() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.order.Len()
}
