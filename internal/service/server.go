package service

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/obs"
	"github.com/logp-model/logp/internal/progs"
)

// Config sizes one Server; the zero value takes the defaults.
type Config struct {
	// Workers bounds the simulations in flight across all requests
	// (default GOMAXPROCS). Submissions past the bound queue.
	Workers int
	// CacheEntries bounds the result cache's completed bodies (default
	// 4096).
	CacheEntries int
	// CacheBytes bounds the result cache's total body size (default
	// 256 MiB).
	CacheBytes int64
	// MachinePool bounds the reusable flat machines kept per spec hash
	// (default 64).
	MachinePool int
	// MaxSweepPoints caps the expansion of one sweep request (default
	// 4096).
	MaxSweepPoints int
	// Limits bound individual specs.
	Limits Limits
	// Logger, when set, emits one structured line per job request — hash,
	// program, cache verdict, stage latencies, status. Nil disables
	// request logging; the wall-clock telemetry on /metrics stays on
	// either way.
	Logger *slog.Logger
	// EnablePprof mounts the net/http/pprof debug handlers under
	// /debug/pprof/ (the daemon's -pprof flag).
	EnablePprof bool
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) cacheEntries() int {
	if c.CacheEntries > 0 {
		return c.CacheEntries
	}
	return 4096
}

func (c Config) cacheBytes() int64 {
	if c.CacheBytes > 0 {
		return c.CacheBytes
	}
	return 256 << 20
}

func (c Config) machinePool() int {
	if c.MachinePool > 0 {
		return c.MachinePool
	}
	return 64
}

func (c Config) maxSweepPoints() int {
	if c.MaxSweepPoints > 0 {
		return c.MaxSweepPoints
	}
	return 4096
}

// Server is the simulation service: cache, machine pool and executor behind
// an http.Handler. Create one with New and mount Handler.
type Server struct {
	cfg      Config
	cache    *Cache
	pool     *machinePool
	sem      chan struct{}
	jobsRun  atomic.Int64
	queued   atomic.Int64 // submissions waiting for an executor slot
	inflight atomic.Int64 // simulations holding an executor slot
	tel      *obs.Telemetry
	log      *slog.Logger
}

// ServerStats is the /v1/stats body.
type ServerStats struct {
	// Cache snapshots the result-cache counters.
	Cache CacheStats `json:"cache"`
	// JobsRun counts simulations actually executed (cache misses and
	// refreshes); the request count is JobsRun + hits + coalesced.
	JobsRun int64 `json:"jobs_run"`
	// MachineReuses counts runs served by a pooled flat machine instead of
	// a fresh construction.
	MachineReuses int64 `json:"machine_reuses"`
	// Workers is the executor bound.
	Workers int `json:"workers"`
	// QueueDepth is the number of submissions currently waiting for an
	// executor slot.
	QueueDepth int64 `json:"queue_depth"`
	// InFlight is the number of simulations currently holding an executor
	// slot.
	InFlight int64 `json:"in_flight"`
	// PoolSize is the number of reusable flat machines currently pooled.
	PoolSize int `json:"pool_size"`
	// PoolHitRate is MachineReuses over all pool lookups (0 when the pool
	// was never consulted).
	PoolHitRate float64 `json:"pool_hit_rate"`
	// UptimeSeconds is the wall-clock age of the server.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// New builds a Server.
func New(cfg Config) *Server {
	return &Server{
		cfg:   cfg,
		cache: NewCache(cfg.cacheEntries(), cfg.cacheBytes()),
		pool:  newMachinePool(cfg.machinePool()),
		sem:   make(chan struct{}, cfg.workers()),
		tel:   obs.NewTelemetry(),
		log:   cfg.Logger,
	}
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	acquires, reuses := s.pool.Counters()
	hitRate := 0.0
	if acquires > 0 {
		hitRate = float64(reuses) / float64(acquires)
	}
	return ServerStats{
		Cache:         s.cache.Stats(),
		JobsRun:       s.jobsRun.Load(),
		MachineReuses: reuses,
		Workers:       s.cfg.workers(),
		QueueDepth:    s.queued.Load(),
		InFlight:      s.inflight.Load(),
		PoolSize:      s.pool.Size(),
		PoolHitRate:   hitRate,
		UptimeSeconds: s.tel.Uptime().Seconds(),
	}
}

// Handler mounts the service API:
//
//	GET  /healthz            liveness probe
//	GET  /v1/programs        the program registry with arg docs
//	POST /v1/jobs            submit a JobSpec; ?refresh=1 recomputes,
//	                         ?stream=samples streams NDJSON sim-time samples
//	GET  /v1/jobs/{hash}     fetch a cached response by spec hash
//	POST /v1/sweep           expand a parameter grid and run every point
//	GET  /v1/stats           cache and executor counters
//	GET  /metrics            wall-clock service metrics, Prometheus format
//
// Every route is instrumented into the wall-clock telemetry the /metrics
// endpoint exports. Config.EnablePprof additionally mounts the
// net/http/pprof handlers under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	handle := func(pattern, route string, h http.HandlerFunc) {
		mux.HandleFunc(pattern, s.tel.Instrument(route, h))
	}
	handle("GET /healthz", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	handle("GET /v1/programs", "/v1/programs", s.handlePrograms)
	handle("POST /v1/jobs", "/v1/jobs", s.handleSubmit)
	handle("GET /v1/jobs/{hash}", "/v1/jobs/{hash}", s.handleLookup)
	handle("POST /v1/sweep", "/v1/sweep", s.handleSweep)
	handle("GET /v1/stats", "/v1/stats", s.handleStats)
	handle("GET /metrics", "/metrics", s.handleMetrics)
	if s.cfg.EnablePprof {
		obs.MountPprof(mux)
	}
	return mux
}

// runCached executes a normalized spec through the cache: concurrent
// identical submissions coalesce onto one simulation, and completed bodies
// are served byte-identically without re-running. The span (nil for
// span-free callers like sweep points) receives the execute and encode
// stage latencies when this call actually ran the simulation.
func (s *Server) runCached(spec JobSpec, hash string, sp *obs.Span) (body []byte, hit bool, err error) {
	return s.cache.GetOrRun(hash, func() ([]byte, error) {
		s.queued.Add(1)
		s.sem <- struct{}{}
		s.queued.Add(-1)
		s.inflight.Add(1)
		defer func() {
			s.inflight.Add(-1)
			<-s.sem
		}()
		s.jobsRun.Add(1)
		execDone := sp.Timer("execute")
		resp, err := runNormalized(spec, s.pool)
		execDone()
		if err != nil {
			return nil, err
		}
		encDone := sp.Timer("encode")
		body, err := resp.Encode()
		encDone()
		return body, err
	})
}

// decodeSpec reads and normalizes a JobSpec body, timing the decode and
// normalize stages into sp. Unknown fields are rejected so a misspelled
// knob cannot silently hash to a different job.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request, sp *obs.Span) (JobSpec, bool) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	decDone := sp.Timer("decode")
	err := dec.Decode(&spec)
	decDone()
	if err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return JobSpec{}, false
	}
	normDone := sp.Timer("normalize")
	err = spec.Normalize(s.cfg.Limits)
	normDone()
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return JobSpec{}, false
	}
	return spec, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	sp := obs.NewSpan()
	spec, ok := s.decodeSpec(w, r, sp)
	if !ok {
		s.logRequest(r, "", "", "reject", http.StatusBadRequest, sp)
		return
	}
	hash := spec.Hash()
	if r.URL.Query().Get("refresh") == "1" {
		s.cache.Invalidate(hash)
	}
	t0 := time.Now()
	body, hit, err := s.runCached(spec, hash, sp)
	// The cache stage is the GetOrRun bookkeeping — lookup, single-flight
	// coalescing, insertion — net of the simulation the closure may have run.
	sp.Observe("cache", time.Since(t0)-sp.Get("execute")-sp.Get("encode"))
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		s.logRequest(r, spec.Program, hash, "error", http.StatusBadRequest, sp)
		return
	}
	w.Header().Set("X-Logpsimd-Spec-Hash", hash)
	w.Header().Set("X-Logpsimd-Cache", cacheMark(hit))
	w.Header().Set("X-Logpsimd-Timing", sp.Header())
	if r.URL.Query().Get("stream") == "samples" {
		code := s.streamSamples(w, body)
		s.logRequest(r, spec.Program, hash, cacheMark(hit), code, sp)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	s.logRequest(r, spec.Program, hash, cacheMark(hit), http.StatusOK, sp)
}

// logRequest emits the per-request slog line, when logging is configured.
func (s *Server) logRequest(r *http.Request, program, hash, verdict string, status int, sp *obs.Span) {
	if s.log == nil {
		return
	}
	attrs := append(make([]slog.Attr, 0, 8+len(sp.LogAttrs())),
		slog.String("method", r.Method),
		slog.String("path", r.URL.Path),
		slog.Int("status", status),
		slog.String("program", program),
		slog.String("hash", hash),
		slog.String("cache", verdict),
	)
	attrs = append(attrs, sp.LogAttrs()...)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "request", attrs...)
}

// streamSamples re-renders a completed response as NDJSON over a chunked
// connection: one line per sim-time sample, then a final line with the spec
// hash, result and output. Requires the spec to have asked for metrics.
// Reports the response status for the request log.
func (s *Server) streamSamples(w http.ResponseWriter, body []byte) int {
	resp, err := DecodeResponse(body)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return http.StatusInternalServerError
	}
	if resp.Metrics == nil {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf(`stream=samples needs the spec to request metrics: {"metrics":{"include":true}}`))
		return http.StatusBadRequest
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range resp.Metrics.Samples {
		if err := enc.Encode(&resp.Metrics.Samples[i]); err != nil {
			return http.StatusOK
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	final := struct {
		SpecHash string             `json:"spec_hash"`
		Result   ResultJSON         `json:"result"`
		Output   map[string]float64 `json:"output,omitempty"`
	}{resp.SpecHash, resp.Result, resp.Output}
	enc.Encode(&final)
	if flusher != nil {
		flusher.Flush()
	}
	return http.StatusOK
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	sp := obs.NewSpan()
	hash := r.PathValue("hash")
	lookupDone := sp.Timer("cache")
	body, ok := s.cache.Get(hash)
	lookupDone()
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached result for spec hash %q", hash))
		s.logRequest(r, "", hash, "lookup-miss", http.StatusNotFound, sp)
		return
	}
	w.Header().Set("X-Logpsimd-Spec-Hash", hash)
	w.Header().Set("X-Logpsimd-Cache", cacheMark(true))
	w.Header().Set("X-Logpsimd-Timing", sp.Header())
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	s.logRequest(r, "", hash, "hit", http.StatusOK, sp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

// handleMetrics renders the wall-clock service metrics in the Prometheus
// text exposition format: the server-level families (uptime, executor,
// cache, machine pool) assembled from Stats, then the per-route HTTP
// telemetry. Everything rides internal/metrics' deterministic writer; the
// sim-time metric families of individual runs live in response bodies, not
// here.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	counter := func(name, help string, v float64) metrics.Family {
		return metrics.Family{Name: name, Help: help, Kind: "counter",
			Points: []metrics.Point{{Value: v}}}
	}
	gauge := func(name, help string, v float64) metrics.Family {
		return metrics.Family{Name: name, Help: help, Kind: "gauge",
			Points: []metrics.Point{{Value: v}}}
	}
	acquires, _ := s.pool.Counters()
	fams := []metrics.Family{
		gauge("logpsimd_uptime_seconds", "Wall-clock age of the server.", st.UptimeSeconds),
		counter("logpsimd_jobs_run_total", "Simulations actually executed (cache misses and refreshes).", float64(st.JobsRun)),
		counter("logpsimd_cache_hits_total", "Result-cache hits.", float64(st.Cache.Hits)),
		counter("logpsimd_cache_misses_total", "Result-cache misses.", float64(st.Cache.Misses)),
		counter("logpsimd_cache_coalesced_total", "Submissions coalesced onto an in-flight identical run (single-flight).", float64(st.Cache.Coalesced)),
		counter("logpsimd_cache_evictions_total", "Result-cache evictions.", float64(st.Cache.Evictions)),
		gauge("logpsimd_cache_entries", "Cached response bodies.", float64(st.Cache.Entries)),
		gauge("logpsimd_cache_bytes", "Total size of cached response bodies.", float64(st.Cache.Bytes)),
		gauge("logpsimd_executor_workers", "Executor slot bound.", float64(st.Workers)),
		gauge("logpsimd_executor_queue_depth", "Submissions waiting for an executor slot.", float64(st.QueueDepth)),
		gauge("logpsimd_executor_in_flight", "Simulations holding an executor slot.", float64(st.InFlight)),
		gauge("logpsimd_machine_pool_size", "Reusable flat machines currently pooled.", float64(st.PoolSize)),
		counter("logpsimd_machine_pool_acquires_total", "Machine-pool lookups.", float64(acquires)),
		counter("logpsimd_machine_pool_reuses_total", "Machine-pool lookups served by a pooled machine.", float64(st.MachineReuses)),
	}
	fams = append(fams, s.tel.Families()...)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, metrics.Snapshot{Families: fams})
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	type progInfo struct {
		Name     string `json:"name"`
		Doc      string `json:"doc"`
		DefaultN int    `json:"default_n"`
	}
	var out []progInfo
	for _, name := range progs.Names() {
		n, _ := progs.DefaultN(name)
		out = append(out, progInfo{Name: name, Doc: progs.Doc(name), DefaultN: n})
	}
	writeJSON(w, out)
}

func cacheMark(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
