package service

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"

	"github.com/logp-model/logp/internal/progs"
)

// Config sizes one Server; the zero value takes the defaults.
type Config struct {
	// Workers bounds the simulations in flight across all requests
	// (default GOMAXPROCS). Submissions past the bound queue.
	Workers int
	// CacheEntries bounds the result cache's completed bodies (default
	// 4096).
	CacheEntries int
	// CacheBytes bounds the result cache's total body size (default
	// 256 MiB).
	CacheBytes int64
	// MachinePool bounds the reusable flat machines kept per spec hash
	// (default 64).
	MachinePool int
	// MaxSweepPoints caps the expansion of one sweep request (default
	// 4096).
	MaxSweepPoints int
	// Limits bound individual specs.
	Limits Limits
}

func (c Config) workers() int {
	if c.Workers > 0 {
		return c.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (c Config) cacheEntries() int {
	if c.CacheEntries > 0 {
		return c.CacheEntries
	}
	return 4096
}

func (c Config) cacheBytes() int64 {
	if c.CacheBytes > 0 {
		return c.CacheBytes
	}
	return 256 << 20
}

func (c Config) machinePool() int {
	if c.MachinePool > 0 {
		return c.MachinePool
	}
	return 64
}

func (c Config) maxSweepPoints() int {
	if c.MaxSweepPoints > 0 {
		return c.MaxSweepPoints
	}
	return 4096
}

// Server is the simulation service: cache, machine pool and executor behind
// an http.Handler. Create one with New and mount Handler.
type Server struct {
	cfg     Config
	cache   *Cache
	pool    *machinePool
	sem     chan struct{}
	jobsRun atomic.Int64
}

// ServerStats is the /v1/stats body.
type ServerStats struct {
	// Cache snapshots the result-cache counters.
	Cache CacheStats `json:"cache"`
	// JobsRun counts simulations actually executed (cache misses and
	// refreshes); the request count is JobsRun + hits + coalesced.
	JobsRun int64 `json:"jobs_run"`
	// MachineReuses counts runs served by a pooled flat machine instead of
	// a fresh construction.
	MachineReuses int64 `json:"machine_reuses"`
	// Workers is the executor bound.
	Workers int `json:"workers"`
}

// New builds a Server.
func New(cfg Config) *Server {
	return &Server{
		cfg:   cfg,
		cache: NewCache(cfg.cacheEntries(), cfg.cacheBytes()),
		pool:  newMachinePool(cfg.machinePool()),
		sem:   make(chan struct{}, cfg.workers()),
	}
}

// Stats snapshots the server counters.
func (s *Server) Stats() ServerStats {
	return ServerStats{
		Cache:         s.cache.Stats(),
		JobsRun:       s.jobsRun.Load(),
		MachineReuses: s.pool.Reuses(),
		Workers:       s.cfg.workers(),
	}
}

// Handler mounts the service API:
//
//	GET  /healthz            liveness probe
//	GET  /v1/programs        the program registry with arg docs
//	POST /v1/jobs            submit a JobSpec; ?refresh=1 recomputes,
//	                         ?stream=samples streams NDJSON sim-time samples
//	GET  /v1/jobs/{hash}     fetch a cached response by spec hash
//	POST /v1/sweep           expand a parameter grid and run every point
//	GET  /v1/stats           cache and executor counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/programs", s.handlePrograms)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{hash}", s.handleLookup)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return mux
}

// runCached executes a normalized spec through the cache: concurrent
// identical submissions coalesce onto one simulation, and completed bodies
// are served byte-identically without re-running.
func (s *Server) runCached(spec JobSpec, hash string) (body []byte, hit bool, err error) {
	return s.cache.GetOrRun(hash, func() ([]byte, error) {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
		s.jobsRun.Add(1)
		resp, err := runNormalized(spec, s.pool)
		if err != nil {
			return nil, err
		}
		return resp.Encode()
	})
}

// decodeSpec reads and normalizes a JobSpec body. Unknown fields are
// rejected so a misspelled knob cannot silently hash to a different job.
func (s *Server) decodeSpec(w http.ResponseWriter, r *http.Request) (JobSpec, bool) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return JobSpec{}, false
	}
	if err := spec.Normalize(s.cfg.Limits); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return JobSpec{}, false
	}
	return spec, true
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, ok := s.decodeSpec(w, r)
	if !ok {
		return
	}
	hash := spec.Hash()
	if r.URL.Query().Get("refresh") == "1" {
		s.cache.Invalidate(hash)
	}
	body, hit, err := s.runCached(spec, hash)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	w.Header().Set("X-Logpsimd-Spec-Hash", hash)
	w.Header().Set("X-Logpsimd-Cache", cacheMark(hit))
	if r.URL.Query().Get("stream") == "samples" {
		s.streamSamples(w, body)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// streamSamples re-renders a completed response as NDJSON over a chunked
// connection: one line per sim-time sample, then a final line with the spec
// hash, result and output. Requires the spec to have asked for metrics.
func (s *Server) streamSamples(w http.ResponseWriter, body []byte) {
	resp, err := DecodeResponse(body)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err)
		return
	}
	if resp.Metrics == nil {
		httpError(w, http.StatusBadRequest,
			fmt.Errorf(`stream=samples needs the spec to request metrics: {"metrics":{"include":true}}`))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for i := range resp.Metrics.Samples {
		if err := enc.Encode(&resp.Metrics.Samples[i]); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	final := struct {
		SpecHash string             `json:"spec_hash"`
		Result   ResultJSON         `json:"result"`
		Output   map[string]float64 `json:"output,omitempty"`
	}{resp.SpecHash, resp.Result, resp.Output}
	enc.Encode(&final)
	if flusher != nil {
		flusher.Flush()
	}
}

func (s *Server) handleLookup(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	body, ok := s.cache.Get(hash)
	if !ok {
		httpError(w, http.StatusNotFound, fmt.Errorf("no cached result for spec hash %q", hash))
		return
	}
	w.Header().Set("X-Logpsimd-Spec-Hash", hash)
	w.Header().Set("X-Logpsimd-Cache", cacheMark(true))
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Stats())
}

func (s *Server) handlePrograms(w http.ResponseWriter, r *http.Request) {
	type progInfo struct {
		Name     string `json:"name"`
		Doc      string `json:"doc"`
		DefaultN int    `json:"default_n"`
	}
	var out []progInfo
	for _, name := range progs.Names() {
		n, _ := progs.DefaultN(name)
		out = append(out, progInfo{Name: name, Doc: progs.Doc(name), DefaultN: n})
	}
	writeJSON(w, out)
}

func cacheMark(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
