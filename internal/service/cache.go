package service

import (
	"container/list"
	"sync"
)

// Cache is the bounded content-addressed result cache. Keys are spec hashes;
// values are the canonical response bodies. Lookups of a hash whose body is
// still being computed coalesce onto the in-flight computation
// (single-flight): N concurrent identical submissions run one simulation and
// every caller gets the same byte slice. Eviction is LRU over completed
// entries, bounded both by entry count and by total body bytes; in-flight
// entries are never evicted. Errors are not cached — every waiter of a
// failed computation sees the error, and the next submission retries.
type Cache struct {
	mu       sync.Mutex
	maxEnt   int
	maxBytes int64
	bytes    int64
	order    *list.List               // completed entries, front = most recent
	entries  map[string]*cacheEntry   // hash → entry (in-flight or complete)
	elem     map[string]*list.Element // hash → LRU element (complete only)

	hits, misses, coalesced, evictions int64
}

// cacheEntry is one hash's slot. done is closed when body/err are final.
type cacheEntry struct {
	done chan struct{}
	body []byte
	err  error
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	// Hits counts lookups served from a completed body.
	Hits int64 `json:"hits"`
	// Coalesced counts lookups that waited on an in-flight computation of
	// the same hash (they are also hits: no extra simulation ran).
	Coalesced int64 `json:"coalesced"`
	// Misses counts lookups that had to run the simulation.
	Misses int64 `json:"misses"`
	// Evictions counts completed bodies dropped by the LRU bounds.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of completed bodies resident.
	Entries int `json:"entries"`
	// Bytes is the total size of the resident bodies.
	Bytes int64 `json:"bytes"`
}

// NewCache builds a cache bounded to maxEntries completed bodies and
// maxBytes total body size (values < 1 mean a single entry / unbounded
// bytes).
func NewCache(maxEntries int, maxBytes int64) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{
		maxEnt:   maxEntries,
		maxBytes: maxBytes,
		order:    list.New(),
		entries:  map[string]*cacheEntry{},
		elem:     map[string]*list.Element{},
	}
}

// GetOrRun returns the body cached under hash, running run() to produce it
// on a miss. hit reports whether the body came from the cache (including
// coalescing onto another caller's in-flight run). The returned slice is
// shared — callers must not mutate it.
func (c *Cache) GetOrRun(hash string, run func() ([]byte, error)) (body []byte, hit bool, err error) {
	c.mu.Lock()
	if e, ok := c.entries[hash]; ok {
		select {
		case <-e.done:
			c.hits++
			c.touch(hash)
			c.mu.Unlock()
			return e.body, true, e.err
		default:
			c.coalesced++
			c.mu.Unlock()
			<-e.done
			return e.body, true, e.err
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	c.entries[hash] = e
	c.misses++
	c.mu.Unlock()

	e.body, e.err = run()
	close(e.done)

	c.mu.Lock()
	if e.err != nil {
		delete(c.entries, hash) // errors are not cached; next submission retries
	} else {
		c.complete(hash, e)
	}
	c.mu.Unlock()
	return e.body, false, e.err
}

// Get returns the completed body cached under hash without running
// anything. An in-flight entry is not waited for.
func (c *Cache) Get(hash string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		return nil, false
	}
	select {
	case <-e.done:
		if e.err != nil {
			return nil, false
		}
		c.hits++
		c.touch(hash)
		return e.body, true
	default:
		return nil, false
	}
}

// touch moves a completed entry to the LRU front. Caller holds mu.
func (c *Cache) touch(hash string) {
	if el, ok := c.elem[hash]; ok {
		c.order.MoveToFront(el)
	}
}

// complete files a finished entry into the LRU and evicts past the bounds.
// Caller holds mu.
func (c *Cache) complete(hash string, e *cacheEntry) {
	c.elem[hash] = c.order.PushFront(hash)
	c.bytes += int64(len(e.body))
	// Evict from the LRU tail past either bound, but always keep the entry
	// just completed: a body larger than the byte bound still serves its
	// own request and the next identical one.
	for (c.order.Len() > c.maxEnt || (c.maxBytes > 0 && c.bytes > c.maxBytes)) && c.order.Len() > 1 {
		last := c.order.Back()
		victim := last.Value.(string)
		c.order.Remove(last)
		delete(c.elem, victim)
		c.bytes -= int64(len(c.entries[victim].body))
		delete(c.entries, victim)
		c.evictions++
	}
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits: c.hits, Coalesced: c.coalesced, Misses: c.misses,
		Evictions: c.evictions, Entries: c.order.Len(), Bytes: c.bytes,
	}
}

// Invalidate drops the completed entry for hash (used by refresh
// submissions, which recompute and re-file). In-flight entries are left to
// finish.
func (c *Cache) Invalidate(hash string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[hash]
	if !ok {
		return
	}
	select {
	case <-e.done:
		if el, found := c.elem[hash]; found {
			c.order.Remove(el)
			delete(c.elem, hash)
		}
		c.bytes -= int64(len(e.body))
		delete(c.entries, hash)
	default:
	}
}
