package service

import (
	"strings"
	"testing"

	"github.com/logp-model/logp/internal/topo"
)

// specBroadcast8 is the canonical small broadcast spec the tests share.
func specBroadcast8() JobSpec {
	return JobSpec{Program: "broadcast", Machine: MachineSpec{P: 8, L: 6, O: 2, G: 4}}
}

// TestNormalizeCanonicalizes pins the normalization rules that make the hash
// a sound cache key: defaults resolve to fixed values, ignored fields zero,
// no-op blocks drop.
func TestNormalizeCanonicalizes(t *testing.T) {
	s := specBroadcast8()
	s.N = 17                 // broadcast takes no size
	s.Work = 5               // only alltoall uses work
	s.Staggered = true       // ditto
	s.Shards = 1             // one shard is the sequential core
	s.Faults = &FaultSpec{}  // injects nothing
	s.Metrics = &MetricsSpec{Include: false, Every: 100}
	if err := s.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	base := specBroadcast8()
	if err := base.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	if s.Hash() != base.Hash() {
		t.Errorf("normalization did not canonicalize:\n%s\n%s", s.Canonical(), base.Canonical())
	}
	if s.Engine != "goroutine" || s.Seed != 1 || s.N != 0 || s.Work != 0 || s.Staggered ||
		s.Shards != 0 || s.Faults != nil || s.Metrics != nil {
		t.Errorf("unexpected normalized spec: %+v", s)
	}

	sized := JobSpec{Program: "sum", Machine: MachineSpec{P: 8, L: 5, O: 2, G: 4}}
	if err := sized.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	if sized.N != 1000 {
		t.Errorf("sum default N = %d, want 1000", sized.N)
	}
}

// TestNormalizeAcceptsCapacitySharded pins the admissible sharded envelope:
// capacity on (the reserve/commit kernel) and fail-stop-only fault plans are
// both legal with shards > 1.
func TestNormalizeAcceptsCapacitySharded(t *testing.T) {
	s := specBroadcast8()
	s.Engine = "flat"
	s.Shards = 4
	s.Faults = &FaultSpec{Fails: []FailStopSpec{{Proc: 3, At: 10}}}
	if err := s.Normalize(Limits{}); err != nil {
		t.Fatalf("capacity-sharded spec with fail-stop rejected: %v", err)
	}
	if s.Machine.NoCapacity || s.Shards != 4 {
		t.Errorf("normalization mangled the spec: %+v", s)
	}
}

// TestNormalizeRejects covers the validation surface.
func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*JobSpec)
		want string
	}{
		{"unknown program", func(s *JobSpec) { s.Program = "nosuch" }, "unknown program"},
		{"bad machine", func(s *JobSpec) { s.Machine.P = 0 }, "at least one processor"},
		{"unknown engine", func(s *JobSpec) { s.Engine = "warp" }, "unknown engine"},
		{"shards on goroutine", func(s *JobSpec) { s.Shards = 4 }, "flat engine only"},
		{"negative n", func(s *JobSpec) { s.Program = "sum"; s.N = -1 }, "negative problem size"},
		{"over P limit", func(s *JobSpec) { s.Machine.P = 3_000_000 }, "exceeds the limit"},
		{"bad drop", func(s *JobSpec) { s.Faults = &FaultSpec{Drop: 1.5} }, "outside [0,1]"},
		{"fail-stop out of range", func(s *JobSpec) {
			s.Faults = &FaultSpec{Fails: []FailStopSpec{{Proc: 99, At: 0}}}
		}, "outside machine"},
		{"sharded with link faults", func(s *JobSpec) {
			s.Engine = "flat"
			s.Shards = 4
			s.Machine.NoCapacity = true
			s.Faults = &FaultSpec{Drop: 0.1}
		}, "fail-stop faults only"},
		{"bad jitter", func(s *JobSpec) { s.Machine.LatencyJitter = 99 }, "latency jitter"},
		{"bad topology", func(s *JobSpec) {
			s.Machine.Topology = &topo.Spec{ProcsPerNode: 99, Node: topo.Link{L: 2, O: 1, G: 1}}
		}, "procs_per_node"},
		{"jitter over node latency", func(s *JobSpec) {
			s.Machine.LatencyJitter = 4
			s.Machine.Topology = &topo.Spec{ProcsPerNode: 4, Node: topo.Link{L: 2, O: 1, G: 1}}
		}, "minimum link latency"},
	}
	for _, tc := range cases {
		s := specBroadcast8()
		tc.mut(&s)
		err := s.Normalize(Limits{})
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// TestSpecHashGolden pins the canonical encoding and content hash of
// representative specs. If this test fails, the spec format changed and
// every deployed cache key (and any stored BENCH/replay artifact keyed by
// hash) silently diverges — change the format deliberately or not at all.
func TestSpecHashGolden(t *testing.T) {
	golden := []struct {
		name string
		spec JobSpec
		hash string
	}{
		{
			name: "broadcast-default",
			spec: specBroadcast8(),
			hash: "27274fbbb9d904652e8a888c66e6a72e5120e0fcfa4865118e587aae34915bf1",
		},
		{
			name: "sum-flat",
			spec: JobSpec{Program: "sum", N: 79, Machine: MachineSpec{P: 8, L: 5, O: 2, G: 4}, Engine: "flat"},
			hash: "7dc4ef0c624540acaaf4a73c37e37562896182e8a34ce007a9e2c0f9593d48c2",
		},
		{
			name: "alltoall-sharded",
			spec: JobSpec{Program: "alltoall", N: 2, Work: 3, Staggered: true,
				Machine: MachineSpec{P: 64, L: 8, O: 2, G: 4, NoCapacity: true}, Engine: "flat", Shards: 4},
			hash: "db3bbb80f0e9f347ea1fd6738eca6324e1c1dcfc9e1605cab7be6faec780f781",
		},
		{
			name: "chaos-metrics",
			spec: JobSpec{Program: "pingpong", N: 5, Machine: MachineSpec{P: 4, L: 6, O: 2, G: 4}, Seed: 7,
				Faults:  &FaultSpec{Seed: 3, Drop: 0.1, Fails: []FailStopSpec{{Proc: 2, At: 100}}},
				Metrics: &MetricsSpec{Include: true, Every: 50}},
			hash: "8f137332e8e4ae9e26aecd4a4f69031528ebb90d2eb96aa86bc9cfbb1c43b8ad",
		},
		{
			// The Topology block is appended with omitempty precisely so the
			// four flat hashes above survive its introduction; this entry pins
			// the tiered encoding itself.
			name: "broadcast-two-tier",
			spec: JobSpec{Program: "broadcast",
				Machine: MachineSpec{P: 8, L: 6, O: 2, G: 4,
					Topology: &topo.Spec{ProcsPerNode: 4, Node: topo.Link{L: 2, O: 1, G: 1}}}},
			hash: "2212efff485fbc6892c1a027543661cf738cd3fa66637cf2493aa0c4917274cc",
		},
	}
	for _, g := range golden {
		spec := g.spec
		if err := spec.Normalize(Limits{}); err != nil {
			t.Fatalf("%s: %v", g.name, err)
		}
		if got := spec.Hash(); got != g.hash {
			t.Errorf("%s: hash %s, want %s\ncanonical: %s", g.name, got, g.hash, spec.Canonical())
		}
	}
}

// TestHashDistinguishes checks that every knob that changes the observable
// result also changes the hash.
func TestHashDistinguishes(t *testing.T) {
	base := specBroadcast8()
	if err := base.Normalize(Limits{}); err != nil {
		t.Fatal(err)
	}
	muts := []struct {
		name string
		mut  func(*JobSpec)
	}{
		{"program", func(s *JobSpec) { s.Program = "sum" }},
		{"P", func(s *JobSpec) { s.Machine.P = 9 }},
		{"L", func(s *JobSpec) { s.Machine.L = 7 }},
		{"o", func(s *JobSpec) { s.Machine.O = 3 }},
		{"g", func(s *JobSpec) { s.Machine.G = 5 }},
		{"capacity", func(s *JobSpec) { s.Machine.NoCapacity = true }},
		{"engine", func(s *JobSpec) { s.Engine = "flat" }},
		{"seed", func(s *JobSpec) { s.Seed = 2 }},
		{"faults", func(s *JobSpec) { s.Faults = &FaultSpec{Drop: 0.5} }},
		{"metrics", func(s *JobSpec) { s.Metrics = &MetricsSpec{Include: true} }},
		{"procs", func(s *JobSpec) { s.IncludeProcs = true }},
		{"topology", func(s *JobSpec) {
			s.Machine.Topology = &topo.Spec{ProcsPerNode: 4, Node: topo.Link{L: 2, O: 1, G: 1}}
		}},
		{"topology node link", func(s *JobSpec) {
			s.Machine.Topology = &topo.Spec{ProcsPerNode: 4, Node: topo.Link{L: 3, O: 1, G: 1}}
		}},
	}
	for _, m := range muts {
		s := specBroadcast8()
		m.mut(&s)
		if err := s.Normalize(Limits{}); err != nil {
			t.Fatalf("%s: %v", m.name, err)
		}
		if s.Hash() == base.Hash() {
			t.Errorf("changing %s did not change the hash", m.name)
		}
	}
}
