package service

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCacheSingleFlight fires many concurrent lookups of one hash whose
// computation is slow: exactly one run must execute and every caller must
// get the same byte slice.
func TestCacheSingleFlight(t *testing.T) {
	c := NewCache(16, 0)
	var runs atomic.Int64
	gate := make(chan struct{})
	const callers = 64

	var wg sync.WaitGroup
	bodies := make([][]byte, callers)
	hits := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, hit, err := c.GetOrRun("h1", func() ([]byte, error) {
				runs.Add(1)
				<-gate // hold every other caller in the coalesced path
				return []byte("result-bytes"), nil
			})
			if err != nil {
				t.Error(err)
			}
			bodies[i], hits[i] = body, hit
		}(i)
	}
	// Wait until the one in-flight run exists, then release it. Coalesced
	// callers may still be en route; GetOrRun handles both orders.
	for c.Stats().Misses == 0 {
		runtime.Gosched()
	}
	close(gate)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("%d runs for %d concurrent identical submissions", got, callers)
	}
	misses := 0
	for i := range bodies {
		if !bytes.Equal(bodies[i], []byte("result-bytes")) {
			t.Fatalf("caller %d got %q", i, bodies[i])
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Errorf("%d callers reported a miss, want exactly the runner", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits+st.Coalesced != callers-1 {
		t.Errorf("stats %+v", st)
	}
}

// TestCacheHitIsByteIdentical runs a miss then a hit and checks the hit
// serves the exact bytes without re-running.
func TestCacheHitIsByteIdentical(t *testing.T) {
	c := NewCache(16, 0)
	var runs atomic.Int64
	run := func() ([]byte, error) {
		runs.Add(1)
		return []byte(fmt.Sprintf("run-%d", runs.Load())), nil
	}
	cold, hit, err := c.GetOrRun("h", run)
	if err != nil || hit {
		t.Fatalf("cold: hit=%v err=%v", hit, err)
	}
	warm, hit, err := c.GetOrRun("h", run)
	if err != nil || !hit {
		t.Fatalf("warm: hit=%v err=%v", hit, err)
	}
	if !bytes.Equal(cold, warm) || runs.Load() != 1 {
		t.Errorf("warm body %q != cold %q (runs=%d)", warm, cold, runs.Load())
	}
	if body, ok := c.Get("h"); !ok || !bytes.Equal(body, cold) {
		t.Errorf("Get returned %q, %v", body, ok)
	}
	if _, ok := c.Get("absent"); ok {
		t.Error("Get found an absent hash")
	}
}

// TestCacheEvictionBounds fills past both bounds and checks LRU order and
// the byte accounting.
func TestCacheEvictionBounds(t *testing.T) {
	c := NewCache(3, 0)
	put := func(h string) {
		c.GetOrRun(h, func() ([]byte, error) { return []byte(h + "-body"), nil })
	}
	put("a")
	put("b")
	put("c")
	c.Get("a") // touch: a is now most recent, b is LRU
	put("d")   // evicts b
	if _, ok := c.Get("b"); ok {
		t.Error("b survived eviction")
	}
	for _, h := range []string{"a", "c", "d"} {
		if _, ok := c.Get(h); !ok {
			t.Errorf("%s evicted unexpectedly", h)
		}
	}
	st := c.Stats()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Errorf("stats %+v", st)
	}

	// Byte bound: three 6-byte bodies under an 8-byte cap keep only the
	// newest entry resident (the bound never evicts the entry just made).
	cb := NewCache(100, 8)
	put2 := func(h string) {
		cb.GetOrRun(h, func() ([]byte, error) { return []byte(h + "-body!"), nil })
	}
	put2("x")
	put2("y")
	if _, ok := cb.Get("x"); ok {
		t.Error("x survived the byte bound")
	}
	if _, ok := cb.Get("y"); !ok {
		t.Error("newest entry evicted by the byte bound")
	}
	if st := cb.Stats(); st.Bytes != 7 {
		t.Errorf("bytes %d after eviction, want 7", st.Bytes)
	}
}

// TestCacheErrorsNotCached checks a failed computation propagates to its
// caller and leaves no entry behind.
func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache(16, 0)
	boom := errors.New("boom")
	if _, _, err := c.GetOrRun("h", func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	body, hit, err := c.GetOrRun("h", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || hit || string(body) != "ok" {
		t.Errorf("retry after error: body=%q hit=%v err=%v", body, hit, err)
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 2 {
		t.Errorf("stats %+v", st)
	}
}

// TestCacheInvalidate drops a completed entry so the next submission
// recomputes (the refresh path).
func TestCacheInvalidate(t *testing.T) {
	c := NewCache(16, 0)
	var runs atomic.Int64
	run := func() ([]byte, error) { runs.Add(1); return []byte("same"), nil }
	c.GetOrRun("h", run)
	c.Invalidate("h")
	if _, ok := c.Get("h"); ok {
		t.Fatal("entry survived Invalidate")
	}
	body, hit, _ := c.GetOrRun("h", run)
	if hit || runs.Load() != 2 || string(body) != "same" {
		t.Errorf("refresh: hit=%v runs=%d body=%q", hit, runs.Load(), body)
	}
	if st := c.Stats(); st.Bytes != int64(len("same")) {
		t.Errorf("bytes %d after refresh", st.Bytes)
	}
	c.Invalidate("absent") // no-op
}
