package service_test

import (
	"fmt"

	"github.com/logp-model/logp/internal/service"
	"github.com/logp-model/logp/internal/topo"
)

// Submitting a job: build a spec, let Run normalize and execute it, and read
// the response. The spec hash is the content address a daemon's cache would
// serve this exact response from; adding a Topology block changes the hash
// (a tiered machine is a different simulation), while leaving it nil keeps
// the pre-topology encoding byte-identical.
func ExampleRun() {
	spec := service.JobSpec{
		Program: "broadcast",
		Machine: service.MachineSpec{P: 8, L: 6, O: 2, G: 4},
	}
	resp, err := service.Run(spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("flat machine: %d cycles, %d messages\n", resp.Result.Time, resp.Result.Messages)

	spec.Machine.Topology = &topo.Spec{ProcsPerNode: 4, Node: topo.Link{L: 2, O: 1, G: 1}}
	tiered, err := service.Run(spec)
	if err != nil {
		panic(err)
	}
	fmt.Printf("two-tier machine: %d cycles\n", tiered.Result.Time)
	fmt.Println("distinct cache keys:", resp.SpecHash != tiered.SpecHash)
	// Output:
	// flat machine: 24 cycles, 7 messages
	// two-tier machine: 18 cycles
	// distinct cache keys: true
}
