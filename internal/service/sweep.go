package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"github.com/logp-model/logp/internal/experiments"
)

// SweepAxes lists the values each swept dimension takes. An empty axis keeps
// the base spec's value. The expansion is the cartesian product in the fixed
// order P, L, o, g, n, seed (rightmost fastest), so the same request always
// produces the same point order and the same response bytes.
type SweepAxes struct {
	P    []int   `json:"p,omitempty"`    // processor counts
	L    []int64 `json:"l,omitempty"`    // latencies
	O    []int64 `json:"o,omitempty"`    // overheads
	G    []int64 `json:"g,omitempty"`    // gaps
	N    []int   `json:"n,omitempty"`    // problem sizes
	Seed []int64 `json:"seed,omitempty"` // machine seeds
}

// SweepRequest expands Base over Axes server-side.
type SweepRequest struct {
	Base JobSpec   `json:"base"` // spec every grid point starts from
	Axes SweepAxes `json:"axes"` // dimensions to vary
}

// SweepPoint summarizes one grid point. The full response body of any point
// is retrievable (and cached) under its spec hash via GET /v1/jobs/{hash}.
type SweepPoint struct {
	SpecHash string `json:"spec_hash"` // content address of the point's full spec
	P        int    `json:"p"`         // processor count at this point
	L        int64  `json:"l"`         // latency at this point
	O        int64  `json:"o"`         // overhead at this point
	G        int64  `json:"g"`         // gap at this point
	N        int    `json:"n"`         // problem size at this point
	Seed     int64  `json:"seed"`      // machine seed at this point
	Time     int64  `json:"time"`      // completion cycles of the run
	Messages int    `json:"messages"`  // messages the run delivered
}

// SweepResponse is the deterministic sweep body: points in expansion order.
// Cache effectiveness is reported in the X-Logpsimd-Cache-Hits/-Misses
// headers so a warm re-submission still returns byte-identical bytes.
type SweepResponse struct {
	Points []SweepPoint `json:"points"` // one summary per grid point, in expansion order
}

// expand builds the normalized spec grid. Every returned spec has been
// validated; the first invalid point aborts the expansion.
func (r *SweepRequest) expand(lim Limits, maxPoints int) ([]JobSpec, error) {
	orOne := func(n int) int {
		if n == 0 {
			return 1
		}
		return n
	}
	total := orOne(len(r.Axes.P)) * orOne(len(r.Axes.L)) * orOne(len(r.Axes.O)) *
		orOne(len(r.Axes.G)) * orOne(len(r.Axes.N)) * orOne(len(r.Axes.Seed))
	if total > maxPoints {
		return nil, fmt.Errorf("service: sweep expands to %d points, limit %d", total, maxPoints)
	}
	specs := make([]JobSpec, 0, total)
	forEach := func(spec JobSpec) error {
		if err := spec.Normalize(lim); err != nil {
			return fmt.Errorf("sweep point %d: %w", len(specs), err)
		}
		specs = append(specs, spec)
		return nil
	}
	// Odometer over the six axes, empty axes pinned to the base value.
	base := r.Base
	for _, p := range valuesOr(r.Axes.P, base.Machine.P) {
		for _, l := range valuesOr(r.Axes.L, base.Machine.L) {
			for _, o := range valuesOr(r.Axes.O, base.Machine.O) {
				for _, g := range valuesOr(r.Axes.G, base.Machine.G) {
					for _, n := range valuesOr(r.Axes.N, base.N) {
						for _, seed := range valuesOr(r.Axes.Seed, base.Seed) {
							spec := base
							spec.Machine.P, spec.Machine.L, spec.Machine.O, spec.Machine.G = p, l, o, g
							spec.N, spec.Seed = n, seed
							if err := forEach(spec); err != nil {
								return nil, err
							}
						}
					}
				}
			}
		}
	}
	return specs, nil
}

// valuesOr returns axis, or the single base value when the axis is empty.
func valuesOr[T any](axis []T, base T) []T {
	if len(axis) == 0 {
		return []T{base}
	}
	return axis
}

// handleSweep expands the grid and drives every point through the cache on
// the experiments parallel runner at the server's worker bound. The response
// lists the points in expansion order; per-point full responses stay cached
// under their spec hashes.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, fmt.Errorf("decoding sweep: %w", err))
		return
	}
	specs, err := req.expand(s.cfg.Limits, s.cfg.maxSweepPoints())
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}

	type outcome struct {
		point SweepPoint
		hit   bool
		err   error
	}
	outs := experiments.MapIndexed(s.cfg.workers(), len(specs), func(i int) outcome {
		spec := specs[i]
		hash := spec.Hash()
		body, hit, err := s.runCached(spec, hash, nil)
		if err != nil {
			return outcome{err: fmt.Errorf("sweep point %d (%s): %w", i, hash[:12], err)}
		}
		resp, err := DecodeResponse(body)
		if err != nil {
			return outcome{err: err}
		}
		return outcome{hit: hit, point: SweepPoint{
			SpecHash: hash,
			P:        spec.Machine.P, L: spec.Machine.L, O: spec.Machine.O, G: spec.Machine.G,
			N: spec.N, Seed: spec.Seed,
			Time: resp.Result.Time, Messages: resp.Result.Messages,
		}}
	})

	var hits, misses int
	sr := SweepResponse{Points: make([]SweepPoint, len(outs))}
	for i, o := range outs {
		if o.err != nil {
			// First failure in expansion order, matching the sequential loop.
			httpError(w, http.StatusBadRequest, o.err)
			return
		}
		sr.Points[i] = o.point
		if o.hit {
			hits++
		} else {
			misses++
		}
	}
	w.Header().Set("X-Logpsimd-Cache-Hits", strconv.Itoa(hits))
	w.Header().Set("X-Logpsimd-Cache-Misses", strconv.Itoa(misses))
	writeJSON(w, sr)
}
