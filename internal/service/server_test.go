package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// newTestServer starts a service on httptest with a small worker pool.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// submit posts a spec and returns the status, body and cache header.
func submit(t *testing.T, url string, spec JobSpec, query string) (int, []byte, string) {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/jobs"+query, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body, resp.Header.Get("X-Logpsimd-Cache")
}

// TestSubmitColdThenHitByteIdentical is the determinism-as-cache-key
// acceptance test: a cold run, a cache hit, a hash lookup and a forced
// refresh (which re-runs the simulation, on a reused flat machine for the
// flat engine) must all return byte-identical bodies.
func TestSubmitColdThenHitByteIdentical(t *testing.T) {
	for _, engine := range []string{"goroutine", "flat"} {
		t.Run(engine, func(t *testing.T) {
			srv, ts := newTestServer(t, Config{Workers: 2})
			spec := specBroadcast8()
			spec.Engine = engine
			spec.Metrics = &MetricsSpec{Include: true}

			code, cold, mark := submit(t, ts.URL, spec, "")
			if code != 200 || mark != "miss" {
				t.Fatalf("cold: status %d, cache %q, body %s", code, mark, cold)
			}
			code, warm, mark := submit(t, ts.URL, spec, "")
			if code != 200 || mark != "hit" {
				t.Fatalf("warm: status %d, cache %q", code, mark)
			}
			if !bytes.Equal(cold, warm) {
				t.Fatal("cache hit body differs from the cold run")
			}

			resp, err := DecodeResponse(cold)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Result.Time != 24 { // Figure 3: optimal broadcast at P=8, L=6, o=2, g=4
				t.Errorf("broadcast finished at %d, want the paper's 24", resp.Result.Time)
			}
			if resp.Output["reached"] != 8 {
				t.Errorf("output %v", resp.Output)
			}
			if resp.Metrics == nil || len(resp.Metrics.Samples) == 0 {
				t.Error("metrics snapshot missing from response")
			}

			// GET by hash serves the same bytes.
			get, err := http.Get(ts.URL + "/v1/jobs/" + resp.SpecHash)
			if err != nil {
				t.Fatal(err)
			}
			byHash, _ := io.ReadAll(get.Body)
			get.Body.Close()
			if get.StatusCode != 200 || !bytes.Equal(byHash, cold) {
				t.Errorf("lookup by hash: status %d, identical=%v", get.StatusCode, bytes.Equal(byHash, cold))
			}

			// refresh=1 re-runs the simulation and must reproduce the bytes.
			code, refreshed, mark := submit(t, ts.URL, spec, "?refresh=1")
			if code != 200 || mark != "miss" {
				t.Fatalf("refresh: status %d, cache %q", code, mark)
			}
			if !bytes.Equal(refreshed, cold) {
				t.Error("refreshed body differs: the simulation is not a pure function of its spec")
			}
			st := srv.Stats()
			if st.JobsRun != 2 {
				t.Errorf("jobs run %d, want 2 (cold + refresh)", st.JobsRun)
			}
			if engine == "flat" && st.MachineReuses != 1 {
				t.Errorf("machine reuses %d, want 1 (the refresh)", st.MachineReuses)
			}
		})
	}
}

// TestEnginesAgreeOnResult pins flat vs goroutine agreement through the
// service path: same program, same machine, both engines — identical Result
// and Output (the bodies differ only in the spec's engine field and hash).
func TestEnginesAgreeOnResult(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	for _, prog := range []string{"pingpong", "broadcast", "sum", "chain", "binomial", "alltoall"} {
		spec := JobSpec{Program: prog, Machine: MachineSpec{P: 8, L: 6, O: 2, G: 4}, IncludeProcs: true}
		var got [2]*Response
		for i, engine := range []string{"goroutine", "flat"} {
			s := spec
			s.Engine = engine
			code, body, _ := submit(t, ts.URL, s, "")
			if code != 200 {
				t.Fatalf("%s/%s: status %d: %s", prog, engine, code, body)
			}
			r, err := DecodeResponse(body)
			if err != nil {
				t.Fatal(err)
			}
			got[i] = r
		}
		if !reflect.DeepEqual(got[0].Result, got[1].Result) {
			t.Errorf("%s: engines disagree on Result:\ngoroutine: %+v\nflat:      %+v", prog, got[0].Result, got[1].Result)
		}
		if !reflect.DeepEqual(got[0].Output, got[1].Output) {
			t.Errorf("%s: engines disagree on Output: %v vs %v", prog, got[0].Output, got[1].Output)
		}
	}
}

// TestConcurrentIdenticalSubmissionsSingleFlight hammers one spec from many
// clients at once: the daemon must run one simulation and serve everyone the
// same bytes.
func TestConcurrentIdenticalSubmissionsSingleFlight(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 4})
	spec := JobSpec{Program: "sum", N: 500, Machine: MachineSpec{P: 8, L: 5, O: 2, G: 4}}

	const clients = 32
	bodies := make([][]byte, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body, _ := submit(t, ts.URL, spec, "")
			if code != 200 {
				t.Errorf("client %d: status %d: %s", i, code, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	for i := 1; i < clients; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Fatalf("client %d got different bytes", i)
		}
	}
	if st := srv.Stats(); st.JobsRun != 1 {
		t.Errorf("%d simulations for %d identical submissions", st.JobsRun, clients)
	}
}

// TestSweepEndpoint expands a grid, checks the point order and cache
// amortization, and that a repeated sweep is pure hits with an identical
// body.
func TestSweepEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 4})
	req := SweepRequest{
		Base: JobSpec{Program: "broadcast", Machine: MachineSpec{P: 4, L: 6, O: 2, G: 4}},
		Axes: SweepAxes{P: []int{4, 8}, L: []int64{2, 6}, G: []int64{4, 6}},
	}
	post := func() (int, []byte, http.Header) {
		b, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body, resp.Header
	}

	code, cold, hdr := post()
	if code != 200 {
		t.Fatalf("sweep: status %d: %s", code, cold)
	}
	if hdr.Get("X-Logpsimd-Cache-Misses") != "8" || hdr.Get("X-Logpsimd-Cache-Hits") != "0" {
		t.Errorf("cold sweep headers: hits=%s misses=%s", hdr.Get("X-Logpsimd-Cache-Hits"), hdr.Get("X-Logpsimd-Cache-Misses"))
	}
	var sr SweepResponse
	if err := json.Unmarshal(cold, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Points) != 8 {
		t.Fatalf("%d points, want 8", len(sr.Points))
	}
	// Expansion order: P slowest, then L, then g.
	wantPLG := [][3]int64{{4, 2, 4}, {4, 2, 6}, {4, 6, 4}, {4, 6, 6}, {8, 2, 4}, {8, 2, 6}, {8, 6, 4}, {8, 6, 6}}
	for i, p := range sr.Points {
		if [3]int64{int64(p.P), p.L, p.G} != wantPLG[i] {
			t.Errorf("point %d: (P,L,g) = (%d,%d,%d), want %v", i, p.P, p.L, p.G, wantPLG[i])
		}
		if p.Time <= 0 || p.SpecHash == "" {
			t.Errorf("point %d: %+v", i, p)
		}
	}
	// Larger machines at equal (L,o,g) broadcast no faster.
	if sr.Points[4].Time < sr.Points[0].Time {
		t.Errorf("P=8 broadcast (%d) faster than P=4 (%d)", sr.Points[4].Time, sr.Points[0].Time)
	}

	code, warm, hdr := post()
	if code != 200 || hdr.Get("X-Logpsimd-Cache-Hits") != "8" || hdr.Get("X-Logpsimd-Cache-Misses") != "0" {
		t.Fatalf("warm sweep: status %d hits=%s misses=%s", code, hdr.Get("X-Logpsimd-Cache-Hits"), hdr.Get("X-Logpsimd-Cache-Misses"))
	}
	if !bytes.Equal(cold, warm) {
		t.Error("warm sweep body differs from cold")
	}
	if st := srv.Stats(); st.JobsRun != 8 {
		t.Errorf("jobs run %d, want 8", st.JobsRun)
	}

	// A sweep over the limit is rejected before running anything.
	big := SweepRequest{Base: req.Base, Axes: SweepAxes{Seed: make([]int64, 5000)}}
	b, _ := json.Marshal(big)
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("oversized sweep: status %d", resp.StatusCode)
	}
}

// TestStreamSamples checks the chunked NDJSON leg: one line per sim-time
// sample, then the result line.
func TestStreamSamples(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	spec := JobSpec{Program: "sum", N: 2000, Machine: MachineSpec{P: 8, L: 5, O: 2, G: 4},
		Metrics: &MetricsSpec{Include: true, Every: 50}}
	b, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs?stream=samples", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("Content-Type") != "application/x-ndjson" {
		t.Fatalf("status %d, content-type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lines) < 3 {
		t.Fatalf("%d NDJSON lines, want samples plus a result line", len(lines))
	}
	var lastTime int64 = -1
	for _, line := range lines[:len(lines)-1] {
		var s struct {
			Time int64 `json:"time"`
		}
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad sample line %q: %v", line, err)
		}
		if s.Time <= lastTime {
			t.Errorf("sample times not increasing: %d after %d", s.Time, lastTime)
		}
		lastTime = s.Time
	}
	var final struct {
		SpecHash string     `json:"spec_hash"`
		Result   ResultJSON `json:"result"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatal(err)
	}
	if final.SpecHash == "" || final.Result.Time != lastTime {
		t.Errorf("final line %+v; last sample at %d (the sampler clamps its last sample to the finish time)", final, lastTime)
	}

	// Streaming without metrics in the spec is a 400.
	nospec := specBroadcast8()
	nb, _ := json.Marshal(nospec)
	r2, err := http.Post(ts.URL+"/v1/jobs?stream=samples", "application/json", bytes.NewReader(nb))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if r2.StatusCode != 400 {
		t.Errorf("stream without metrics: status %d", r2.StatusCode)
	}
}

// TestAPIErrorsAndAux covers the small endpoints and the error surface.
func TestAPIErrorsAndAux(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	// Unknown field in the spec body: rejected, not silently a new spec.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"program":"broadcast","machine":{"p":8,"l":6,"o":2,"g":4},"sede":9}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 400 || !strings.Contains(string(body), "sede") {
		t.Errorf("unknown field: status %d body %s", resp.StatusCode, body)
	}

	// Bad spec (validation error) and a spec the engine rejects.
	code, body, _ := submit(t, ts.URL, JobSpec{Program: "nosuch", Machine: MachineSpec{P: 2, L: 1, O: 1, G: 1}}, "")
	if code != 400 || !strings.Contains(string(body), "unknown program") {
		t.Errorf("unknown program: status %d body %s", code, body)
	}

	// Missing hash is a JSON 404.
	resp, err = http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 404 || !strings.Contains(string(body), "error") {
		t.Errorf("missing hash: status %d body %s", resp.StatusCode, body)
	}

	// healthz, programs, stats.
	for _, path := range []string{"/healthz", "/v1/programs", "/v1/stats"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != 200 || len(b) == 0 {
			t.Errorf("%s: status %d, %d bytes", path, r.StatusCode, len(b))
		}
		if path == "/v1/programs" && !strings.Contains(string(b), `"default_n": 1000`) {
			t.Errorf("programs listing missing sum default: %s", b)
		}
	}
}

// TestCacheEvictionAcrossSpecs drives more distinct specs than the cache
// holds and checks the bound is respected while everything still runs.
func TestCacheEvictionAcrossSpecs(t *testing.T) {
	srv, ts := newTestServer(t, Config{Workers: 2, CacheEntries: 3})
	for seed := int64(1); seed <= 6; seed++ {
		spec := specBroadcast8()
		spec.Seed = seed
		if code, body, _ := submit(t, ts.URL, spec, ""); code != 200 {
			t.Fatalf("seed %d: status %d: %s", seed, code, body)
		}
	}
	st := srv.Stats()
	if st.Cache.Entries > 3 {
		t.Errorf("cache holds %d entries past the bound 3", st.Cache.Entries)
	}
	if st.Cache.Evictions != 3 || st.JobsRun != 6 {
		t.Errorf("stats %+v", st)
	}
}

// TestResponseGoldenShape pins the response body shape with a small golden
// fragment, so accidental encoding changes (field renames, indent changes)
// are caught the same way the spec hash is.
func TestResponseGoldenShape(t *testing.T) {
	resp, err := Run(specBroadcast8())
	if err != nil {
		t.Fatal(err)
	}
	body, err := resp.Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"\"spec_hash\": \"" + resp.SpecHash + "\"",
		`"program": "broadcast"`,
		`"engine": "goroutine"`,
		`"time": 24`,
		`"messages": 7`,
		`"predicted_finish": 24`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("encoded body missing %s:\n%s", want, body)
		}
	}
	if body[len(body)-1] != '\n' {
		t.Error("body does not end in newline")
	}
}
