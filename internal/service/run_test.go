package service

import (
	"testing"

	"github.com/logp-model/logp/internal/topo"
)

// tieredBroadcastSpec is a two-tier broadcast spec: P=8 with 4-processor
// nodes whose intra-node links are cheaper in all of (L, o, g).
func tieredBroadcastSpec(engine string, shards int) JobSpec {
	return JobSpec{
		Program: "broadcast",
		Machine: MachineSpec{P: 8, L: 6, O: 2, G: 4,
			Topology: &topo.Spec{ProcsPerNode: 4, Node: topo.Link{L: 2, O: 1, G: 1}}},
		Engine: engine,
		Shards: shards,
	}
}

// TestRunTieredSpec runs a tiered spec through the service path on both
// engines and the sharded kernel: all three must report the same simulated
// time, and the tiered machine must beat the flat one (the broadcast tree
// sends one message per link, so uniformly cheaper intra-node links can only
// help).
func TestRunTieredSpec(t *testing.T) {
	g, err := Run(tieredBroadcastSpec("goroutine", 0))
	if err != nil {
		t.Fatal(err)
	}
	f, err := Run(tieredBroadcastSpec("flat", 0))
	if err != nil {
		t.Fatal(err)
	}
	s, err := Run(tieredBroadcastSpec("flat", 4))
	if err != nil {
		t.Fatal(err)
	}
	if g.Result.Time != f.Result.Time || g.Result.Time != s.Result.Time {
		t.Errorf("engines disagree under the tiered model: goroutine %d, flat %d, sharded %d",
			g.Result.Time, f.Result.Time, s.Result.Time)
	}
	if g.Result.Messages != f.Result.Messages || g.Result.Messages != s.Result.Messages {
		t.Errorf("message counts disagree: %d %d %d", g.Result.Messages, f.Result.Messages, s.Result.Messages)
	}

	flatSpec := tieredBroadcastSpec("goroutine", 0)
	flatSpec.Machine.Topology = nil
	flat, err := Run(flatSpec)
	if err != nil {
		t.Fatal(err)
	}
	if g.Result.Time >= flat.Result.Time {
		t.Errorf("tiered broadcast %d should beat the flat machine's %d", g.Result.Time, flat.Result.Time)
	}
	if g.SpecHash == flat.SpecHash {
		t.Error("tiered and flat specs must not share a cache address")
	}
}
