package obs

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/logp-model/logp/internal/metrics"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"WARN": slog.LevelWarn, "warning": slog.LevelWarn, "error": slog.LevelError,
	}
	for in, want := range cases {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestNewLoggerFormats(t *testing.T) {
	var buf bytes.Buffer
	log, err := NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("request", "route", "/v1/jobs", "status", 200)
	var line map[string]any
	if err := json.Unmarshal(buf.Bytes(), &line); err != nil {
		t.Fatalf("json handler emitted non-JSON %q: %v", buf.String(), err)
	}
	if line["route"] != "/v1/jobs" {
		t.Errorf("log line %v lost the route attribute", line)
	}

	buf.Reset()
	log, err = NewLogger(&buf, "warn", "text")
	if err != nil {
		t.Fatal(err)
	}
	log.Info("dropped")
	if buf.Len() != 0 {
		t.Errorf("info line passed a warn-level logger: %q", buf.String())
	}
	if _, err := NewLogger(&buf, "info", "xml"); err == nil {
		t.Error("NewLogger accepted an unknown format")
	}
}

func TestSpanHeaderAndAttrs(t *testing.T) {
	sp := NewSpan()
	sp.Observe("decode", 1500*time.Microsecond)
	sp.Observe("execute", 2*time.Millisecond)
	sp.Observe("decode", 500*time.Microsecond) // accumulates
	h := sp.Header()
	if want := "decode;dur=2.000, execute;dur=2.000"; h != want {
		t.Errorf("Header() = %q, want %q", h, want)
	}
	if got := sp.Get("execute"); got != 2*time.Millisecond {
		t.Errorf("Get(execute) = %v", got)
	}
	if got := sp.Total(); got != 4*time.Millisecond {
		t.Errorf("Total() = %v", got)
	}
	attrs := sp.LogAttrs()
	if len(attrs) != 2 || attrs[0].Key != "decode_us" || attrs[0].Value.Int64() != 2000 {
		t.Errorf("LogAttrs() = %v", attrs)
	}
}

func TestSpanNilSafe(t *testing.T) {
	var sp *Span
	sp.Observe("decode", time.Millisecond)
	sp.Timer("execute")()
	if sp.Header() != "" || sp.Get("decode") != 0 || sp.Total() != 0 || sp.LogAttrs() != nil {
		t.Error("nil span methods must be no-ops")
	}
}

func TestTelemetryFamiliesAndInstrument(t *testing.T) {
	tel := NewTelemetry()
	h := tel.Instrument("/v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Query().Get("bad") == "1" {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		w.Write([]byte("ok"))
	})
	for _, target := range []string{"/v1/jobs", "/v1/jobs", "/v1/jobs?bad=1"} {
		rr := httptest.NewRecorder()
		h(rr, httptest.NewRequest("POST", target, nil))
	}
	routes := tel.Routes()
	if len(routes) != 1 || routes[0].Requests != 3 || routes[0].Errors != 1 {
		t.Fatalf("Routes() = %+v, want one route with 3 requests / 1 error", routes)
	}
	if routes[0].Latency.Count != 3 {
		t.Errorf("latency histogram saw %d observations, want 3", routes[0].Latency.Count)
	}
	if tel.Uptime() <= 0 {
		t.Error("uptime must be positive")
	}

	var buf bytes.Buffer
	if err := metrics.WritePrometheus(&buf, metrics.Snapshot{Families: tel.Families()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`logpsimd_http_requests_total{route="/v1/jobs"} 3`,
		`logpsimd_http_errors_total{route="/v1/jobs"} 1`,
		`logpsimd_http_request_us_count{route="/v1/jobs"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus rendering missing %q:\n%s", want, out)
		}
	}
}

func TestInstrumentNilTelemetryAndFlusher(t *testing.T) {
	var tel *Telemetry
	called := false
	h := tel.Instrument("/x", func(w http.ResponseWriter, r *http.Request) { called = true })
	h(httptest.NewRecorder(), httptest.NewRequest("GET", "/x", nil))
	if !called {
		t.Fatal("nil telemetry must pass the handler through")
	}
	// The status writer must stay a Flusher so streaming handlers keep
	// flushing when instrumented.
	var sw http.ResponseWriter = &statusWriter{ResponseWriter: httptest.NewRecorder()}
	if _, ok := sw.(http.Flusher); !ok {
		t.Fatal("statusWriter lost the Flusher interface")
	}
}

func TestMountPprof(t *testing.T) {
	mux := http.NewServeMux()
	MountPprof(mux)
	rr := httptest.NewRecorder()
	mux.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/pprof/", nil))
	if rr.Code != http.StatusOK || !strings.Contains(rr.Body.String(), "goroutine") {
		t.Fatalf("pprof index: status %d body %q", rr.Code, rr.Body.String())
	}
}
