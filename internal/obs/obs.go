// Package obs is the daemon's wall-clock observability layer: structured
// request logging via log/slog, wall-clock service metrics rendered on a
// Prometheus /metrics endpoint through internal/metrics' writers, per-request
// stage spans, and opt-in net/http/pprof wiring.
//
// obs is the host-side counterpart of the repository's sim-time stack:
// internal/metrics measures the simulated machine and internal/prof its
// causal structure, both in cycles; obs measures the daemon that serves
// them, in nanoseconds. The two never mix — wall-clock data lives only in
// log lines, response headers and the /metrics scrape, never inside cached
// response bodies, so equal specs keep producing byte-identical responses
// with observability on.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
)

// ParseLevel maps a -log-level flag value to its slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
}

// NewLogger builds the daemon logger writing to w at the given level.
// format selects the handler: "text" emits human-oriented key=value lines,
// "json" one JSON object per line (the shape log shippers ingest).
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	lv, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// MountPprof registers the net/http/pprof handlers on mux under
// /debug/pprof/. The index handler serves the named runtime profiles (heap,
// goroutine, block, mutex, ...) by path suffix, exactly as the package's
// DefaultServeMux registration would; mounting explicitly keeps the
// daemon's mux free of import-side-effect routes and lets the wiring stay
// opt-in behind the -pprof flag.
func MountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
