package obs

import (
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/logp-model/logp/internal/metrics"
)

// latencyBoundsUs are the request-latency histogram buckets in microseconds:
// sub-millisecond cache hits through multi-second cold sweeps.
var latencyBoundsUs = []int64{
	100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000,
	100_000, 250_000, 500_000, 1_000_000, 5_000_000,
}

// RouteStats is one route's wall-clock counters in a Telemetry snapshot.
type RouteStats struct {
	// Route is the route pattern the counters describe (e.g. "/v1/jobs").
	Route string
	// Requests counts completed requests.
	Requests int64
	// Errors counts requests that finished with a 4xx or 5xx status.
	Errors int64
	// Latency is the request-latency distribution in microseconds.
	Latency *metrics.HistogramSnapshot
}

// routeCell is the live (mutex-guarded) form of RouteStats.
type routeCell struct {
	requests int64
	errors   int64
	latency  *metrics.Histogram
}

// Telemetry accumulates the daemon's wall-clock HTTP metrics: per-route
// request and error counters and latency histograms. Unlike the sim-time
// metrics.Registry — single-threaded by the kernel's design — a Telemetry is
// safe for concurrent use: every HTTP request records into it once, under a
// mutex (a scrape-scale cost, irrelevant next to a simulation).
type Telemetry struct {
	start time.Time

	mu     sync.Mutex
	routes map[string]*routeCell
}

// NewTelemetry starts an empty telemetry store; its uptime clock starts now.
func NewTelemetry() *Telemetry {
	return &Telemetry{start: time.Now(), routes: map[string]*routeCell{}}
}

// Uptime reports the time since the store was created.
func (t *Telemetry) Uptime() time.Duration { return time.Since(t.start) }

// Observe records one completed request against a route.
func (t *Telemetry) Observe(route string, status int, d time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	c := t.routes[route]
	if c == nil {
		c = &routeCell{latency: metrics.NewHistogram(latencyBoundsUs...)}
		t.routes[route] = c
	}
	c.requests++
	if status >= 400 {
		c.errors++
	}
	c.latency.Observe(d.Microseconds())
}

// Routes snapshots every route's counters, sorted by route name.
func (t *Telemetry) Routes() []RouteStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]RouteStats, 0, len(t.routes))
	for route, c := range t.routes {
		out = append(out, RouteStats{
			Route: route, Requests: c.requests, Errors: c.errors,
			Latency: metrics.HistSnapshot(c.latency),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Route < out[j].Route })
	return out
}

// Families renders the HTTP telemetry as metric families for the /metrics
// endpoint, hand-assembled in the internal/metrics export model so the
// deterministic Prometheus writer renders them. Routes appear in sorted
// order, making two scrapes of an idle daemon byte-identical.
func (t *Telemetry) Families() []metrics.Family {
	routes := t.Routes()
	req := metrics.Family{Name: "logpsimd_http_requests_total",
		Help: "Completed HTTP requests per route.", Kind: "counter"}
	errs := metrics.Family{Name: "logpsimd_http_errors_total",
		Help: "HTTP requests that finished with a 4xx or 5xx status, per route.", Kind: "counter"}
	lat := metrics.Family{Name: "logpsimd_http_request_us",
		Help: "Wall-clock request latency per route, microseconds.", Kind: "histogram"}
	for i := range routes {
		r := &routes[i]
		labels := []metrics.Label{{Name: "route", Value: r.Route}}
		req.Points = append(req.Points, metrics.Point{Labels: labels, Value: float64(r.Requests)})
		errs.Points = append(errs.Points, metrics.Point{Labels: labels, Value: float64(r.Errors)})
		lat.Points = append(lat.Points, metrics.Point{Labels: labels, Hist: r.Latency})
	}
	return []metrics.Family{req, errs, lat}
}

// Instrument wraps a handler so each request records its route, status and
// wall-clock latency into the telemetry store. A nil receiver passes the
// handler through untouched.
func (t *Telemetry) Instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	if t == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		t.Observe(route, sw.status, time.Since(t0))
	}
}

// statusWriter captures the response status for the route counters. It
// passes Flush through so instrumented streaming handlers (NDJSON sample
// streams) keep flushing per line.
type statusWriter struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (sw *statusWriter) WriteHeader(code int) {
	sw.status = code
	sw.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer's Flusher, when it has one.
func (sw *statusWriter) Flush() {
	if f, ok := sw.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
