package obs

import (
	"fmt"
	"log/slog"
	"strings"
	"time"
)

// Stage is one named, timed step of a request span.
type Stage struct {
	// Name identifies the stage (decode, normalize, cache, execute, encode).
	Name string
	// Dur is the wall-clock time the stage took.
	Dur time.Duration
}

// Span collects the stage latencies of one request: the decode → normalize →
// cache → execute → encode pipeline of a job submission. Stages are recorded
// explicitly (Observe or Timer) in pipeline order; a stage a request never
// reaches — execute on a cache hit — is simply absent. Every method is
// nil-receiver safe, so call sites that do not collect spans pass nil and
// pay nothing. A Span is used by one request goroutine; it is not
// synchronized.
type Span struct {
	stages []Stage
}

// NewSpan starts an empty span.
func NewSpan() *Span { return &Span{} }

// Observe records d against the named stage, accumulating onto an earlier
// observation of the same name.
func (s *Span) Observe(name string, d time.Duration) {
	if s == nil {
		return
	}
	for i := range s.stages {
		if s.stages[i].Name == name {
			s.stages[i].Dur += d
			return
		}
	}
	s.stages = append(s.stages, Stage{Name: name, Dur: d})
}

// Timer starts timing the named stage and returns the function that stops
// the clock and records the elapsed time.
func (s *Span) Timer(name string) func() {
	if s == nil {
		return func() {}
	}
	t0 := time.Now()
	return func() { s.Observe(name, time.Since(t0)) }
}

// Get reports the recorded duration of a stage (zero when absent).
func (s *Span) Get(name string) time.Duration {
	if s == nil {
		return 0
	}
	for i := range s.stages {
		if s.stages[i].Name == name {
			return s.stages[i].Dur
		}
	}
	return 0
}

// Total sums every recorded stage.
func (s *Span) Total() time.Duration {
	if s == nil {
		return 0
	}
	var t time.Duration
	for i := range s.stages {
		t += s.stages[i].Dur
	}
	return t
}

// Header renders the span in the Server-Timing header syntax —
// "decode;dur=0.112, execute;dur=1.204", durations in milliseconds — the
// value the daemon sets as X-Logpsimd-Timing. Stages appear in recording
// order; an empty span renders "".
func (s *Span) Header() string {
	if s == nil || len(s.stages) == 0 {
		return ""
	}
	var b strings.Builder
	for i := range s.stages {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s;dur=%.3f", s.stages[i].Name, float64(s.stages[i].Dur)/float64(time.Millisecond))
	}
	return b.String()
}

// LogAttrs renders the stages as slog attributes ("<name>_us", microseconds)
// for the per-request log line.
func (s *Span) LogAttrs() []slog.Attr {
	if s == nil {
		return nil
	}
	attrs := make([]slog.Attr, 0, len(s.stages))
	for i := range s.stages {
		attrs = append(attrs, slog.Int64(s.stages[i].Name+"_us", s.stages[i].Dur.Microseconds()))
	}
	return attrs
}
