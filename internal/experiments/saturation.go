package experiments

import (
	"fmt"
	"strings"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/metrics"
	"github.com/logp-model/logp/internal/stats"
)

// CapacitySaturation reproduces the machine-level bandwidth knee implied by
// the capacity constraint (Section 3): four processors stream messages at a
// common sink, sweeping the attempted aggregate load from well below to past
// the network's per-processor ceiling. Delivered bandwidth at the sink rises
// linearly with attempted load until the number of messages in flight to the
// sink pins at ceil(L/g); past that point delivered bandwidth flattens at
// 1/g and the excess attempts are absorbed as capacity-stall cycles at the
// senders. The in-flight and stall telemetry comes from the internal/metrics
// registry attached to every run.
func CapacitySaturation(scale Scale) Report {
	const id = "saturation"
	params := core.Params{P: 5, L: 12, O: 1, G: 3}
	capacity := params.Capacity() // ceil(L/g) = 4
	senders := params.P - 1
	msgs := 80 * scale.clamp()
	// Each sender alternates Compute(spacing) with one send, so unimpeded it
	// attempts one message every spacing+o cycles; the aggregate attempted
	// load is senders/(spacing+o) messages per cycle. The sweep spans ~0.08
	// to ~1.33 msgs/cycle around the 1/g = 0.33 service ceiling of the sink.
	spacings := []int64{49, 31, 23, 15, 11, 7, 5, 3, 2}
	const seeds = 16

	type outcome struct {
		rate    float64 // delivered msgs/cycle at the sink
		stall   float64 // capacity-stall cycles per message
		pinned  float64 // fraction of samples with in-flight-to-sink at capacity
		maxIn   int     // peak in-flight to the sink
		allOK   bool
		failMsg string
	}
	flat := mapIndexed(len(spacings)*seeds, func(i int) outcome {
		spacing := spacings[i/seeds]
		seed := int64(i%seeds + 1)
		reg := metrics.NewRegistry()
		cfg := logp.Config{
			Params:        params,
			Seed:          seed,
			ComputeJitter: 0.04,
			Metrics:       reg,
			MetricsEvery:  32,
		}
		res, err := logp.Run(cfg, func(p *logp.Proc) {
			if p.ID() == 0 {
				for m := 0; m < msgs*senders; m++ {
					p.Recv()
				}
				return
			}
			// Stagger the senders across one spacing period: synchronized
			// starts would burst all four sends at once and graze the
			// capacity ceiling even at light load.
			p.Compute(spacing * int64(p.ID()-1) / int64(senders))
			for m := 0; m < msgs; m++ {
				p.Compute(spacing)
				p.Send(0, 0, nil)
			}
		})
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		total := int64(msgs * senders)
		return outcome{
			rate:   float64(reg.DeliveredTotal()) / float64(res.Time),
			stall:  float64(reg.TotalStallCycles()) / float64(total),
			pinned: reg.PinnedInFraction(0),
			maxIn:  reg.MaxInFlightTo(0),
			allOK:  reg.DeliveredTotal() == total && res.MaxInTransitTo <= capacity,
		}
	})

	attempted := make([]float64, len(spacings))
	delivered := make([]float64, len(spacings))
	stall := make([]float64, len(spacings))
	pinned := make([]float64, len(spacings))
	maxIn := make([]float64, len(spacings))
	allOK := true
	for li, spacing := range spacings {
		attempted[li] = float64(senders) / float64(spacing+params.O)
		worstIn := 0
		for s := 0; s < seeds; s++ {
			o := flat[li*seeds+s]
			if o.failMsg != "" {
				return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", o.failMsg)}}
			}
			if !o.allOK {
				allOK = false
			}
			delivered[li] += o.rate
			stall[li] += o.stall
			pinned[li] += o.pinned
			if o.maxIn > worstIn {
				worstIn = o.maxIn
			}
		}
		delivered[li] /= seeds
		stall[li] /= seeds
		pinned[li] /= seeds
		maxIn[li] = float64(worstIn)
	}

	peak := 1 / float64(params.G) // the sink's reception ceiling
	// The oracle: linear below the knee, monotone throughout, flat on the
	// plateau, with the in-flight count pinned at the capacity ceiling and
	// stall cycles absorbing the excess.
	linearBelow := true
	for li := range spacings {
		if attempted[li] <= 0.8*peak && delivered[li] < 0.9*attempted[li] {
			linearBelow = false
		}
	}
	monotone := true
	for li := 1; li < len(spacings); li++ {
		if delivered[li] < 0.98*delivered[li-1] {
			monotone = false
		}
	}
	last := len(spacings) - 1
	flat2 := delivered[last] > 0.95*delivered[last-1] && delivered[last] < 1.05*delivered[last-1]
	atPeak := delivered[last] > 0.85*peak && delivered[last] <= peak*1.01
	pinnedKnee := pinned[last] > 0.5 && int(maxIn[last]) == capacity && pinned[0] < 0.05
	stallKnee := stall[0] < 0.5 && stall[last] > float64(params.G)

	var b strings.Builder
	fmt.Fprintf(&b, "%v  capacity ceiling ceil(L/g) = %d, sink service ceiling 1/g = %.3f msg/cycle\n", params, capacity, peak)
	fmt.Fprintf(&b, "%d senders -> proc 0, %d messages each, %d seeds per load, means below\n\n", senders, msgs, seeds)
	b.WriteString(stats.CSV("attempted_load",
		stats.Series{Name: "delivered_bandwidth", X: attempted, Y: delivered},
		stats.Series{Name: "stall_cycles_per_msg", X: attempted, Y: stall},
		stats.Series{Name: "pinned_fraction", X: attempted, Y: pinned},
		stats.Series{Name: "max_in_flight_to_sink", X: attempted, Y: maxIn},
	))
	return Report{
		ID:    id,
		Title: "Delivered bandwidth vs attempted load: the capacity-constraint knee",
		Text:  b.String(),
		Checks: []Check{
			check("all messages delivered, capacity bound respected", allOK, "%d runs", len(flat)),
			check("delivered tracks attempted below the knee", linearBelow, "delivered %v vs attempted %v", delivered, attempted),
			check("delivered bandwidth monotone in attempted load", monotone, "delivered %v", delivered),
			check("plateau flat past the knee", flat2, "top loads %.4f vs %.4f", delivered[last-1], delivered[last]),
			check("plateau sits at the 1/g service ceiling", atPeak, "%.4f vs 1/g = %.4f", delivered[last], peak),
			check("in-flight pins at ceil(L/g) exactly at saturation", pinnedKnee, "pinned %.2f, max in-flight %d, capacity %d", pinned[last], int(maxIn[last]), capacity),
			check("stall cycles absorb the excess load", stallKnee, "%.2f cycles/msg unloaded vs %.2f saturated", stall[0], stall[last]),
		},
	}
}
