package experiments

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/prof"
)

// WhatIf validates the causal profiler's what-if re-costing against direct
// simulation: record one run of a program, replay the recorded DAG under a
// sweep of altered parameters, and compare the predicted makespans with
// fresh simulations of the same program at each sweep point. For programs
// whose operation sequence does not depend on message timing (the optimal
// broadcast and summation schedules) the prediction is exact; for the
// timing-adaptive all-to-all exchange it is an approximation, reported with
// its measured error. The experiment also prints the base run's
// critical-path attribution — the paper's Figure 3 accounting, recovered
// mechanically.
func WhatIf() Report {
	base := core.Params{P: 8, L: 6, O: 2, G: 4}
	var b strings.Builder
	checks := []Check{}

	// The swept machines: L, o and g each move both ways from the base.
	sweep := []core.Params{
		{P: 8, L: 2, O: 2, G: 4},
		{P: 8, L: 12, O: 2, G: 4},
		{P: 8, L: 20, O: 2, G: 4},
		{P: 8, L: 6, O: 1, G: 4},
		{P: 8, L: 6, O: 4, G: 4},
		{P: 8, L: 6, O: 2, G: 2},
		{P: 8, L: 6, O: 2, G: 6},
		{P: 8, L: 20, O: 1, G: 8},
	}
	// Small single-parameter moves (≤50%): the regime where replay of a
	// timing-adaptive program is still a useful estimate. Wider moves are
	// shown in the table but not gated — the live program re-orders its
	// sends and receives, which the recorded DAG cannot anticipate.
	moderate := []core.Params{
		{P: 8, L: 9, O: 2, G: 4},
		{P: 8, L: 6, O: 3, G: 4},
		{P: 8, L: 6, O: 2, G: 3},
		{P: 8, L: 6, O: 2, G: 5},
	}

	type program struct {
		name  string
		exact bool
		body  func(params core.Params) func(p *logp.Proc)
	}
	bcast, err := core.OptimalBroadcast(base, 0)
	if err != nil {
		return Report{ID: "whatif", Checks: []Check{check("broadcast schedule built", false, "%v", err)}}
	}
	sum, err := core.OptimalSummation(base, 28)
	if err != nil {
		return Report{ID: "whatif", Checks: []Check{check("summation schedule built", false, "%v", err)}}
	}
	values := make([]float64, sum.TotalValues)
	for i := range values {
		values[i] = 1
	}
	dist, err := collective.DistributeInputs(sum, values)
	if err != nil {
		return Report{ID: "whatif", Checks: []Check{check("inputs distributed", false, "%v", err)}}
	}
	const perPair = 4
	programs := []program{
		{"broadcast", true, func(core.Params) func(p *logp.Proc) {
			return func(p *logp.Proc) { collective.Broadcast(p, bcast, 1, nil) }
		}},
		{"tree-sum", true, func(core.Params) func(p *logp.Proc) {
			return func(p *logp.Proc) { collective.SumOptimal(p, sum, 1, dist[p.ID()]) }
		}},
		{"all-to-all", false, func(core.Params) func(p *logp.Proc) {
			return func(p *logp.Proc) {
				c := make([]int, p.P())
				for d := range c {
					if d != p.ID() {
						c[d] = perPair
					}
				}
				collective.AllToAll(p, collective.Staggered, 1, c,
					func(dst, k int) any { return nil }, perPair*(p.P()-1), 2)
			}
		}},
	}

	fmt.Fprintf(&b, "record once on %v, replay the DAG under altered parameters,\n", base)
	b.WriteString("and compare with fresh simulations of the same program:\n\n")
	for _, prog := range programs {
		rec := prof.NewRecorder()
		body := prog.body(base)
		res, err := logp.Run(logp.Config{Params: base, Profiler: rec}, body)
		if err != nil {
			return Report{ID: "whatif", Checks: []Check{check(prog.name+" recorded", false, "%v", err)}}
		}
		fmt.Fprintf(&b, "%s (base makespan %d):\n", prog.name, res.Time)
		fmt.Fprintf(&b, "  %-28s %9s %9s %7s\n", "machine", "predicted", "simulated", "error")
		rows := sweep
		if !prog.exact {
			rows = append(append([]core.Params{}, moderate...), sweep...)
		}
		exact := true
		var worst, worstModerate float64
		for ri, alt := range rows {
			cfg := rec.BaseConfig()
			cfg.Params = alt
			cfg.UseRecordedLatency = false
			pred, err := rec.Replay(cfg)
			if err != nil {
				return Report{ID: "whatif", Checks: []Check{check(prog.name+" replayed", false, "%v", err)}}
			}
			fresh, err := logp.Run(logp.Config{Params: alt}, prog.body(alt))
			if err != nil {
				return Report{ID: "whatif", Checks: []Check{check(prog.name+" simulated", false, "%v", err)}}
			}
			relErr := math.Abs(float64(pred.Makespan-fresh.Time)) / float64(fresh.Time)
			if relErr > worst {
				worst = relErr
			}
			if ri < len(moderate) && relErr > worstModerate {
				worstModerate = relErr
			}
			if pred.Makespan != fresh.Time {
				exact = false
			}
			fmt.Fprintf(&b, "  %-28v %9d %9d %6.1f%%\n", alt, pred.Makespan, fresh.Time, 100*relErr)
		}
		if prog.exact {
			checks = append(checks, check(prog.name+" replay exact across the sweep", exact,
				"worst error %.1f%%", 100*worst))
		} else {
			checks = append(checks, check(prog.name+" replay within 15% for small parameter moves",
				worstModerate <= 0.15, "worst error %.1f%% (%.1f%% across the wide sweep)",
				100*worstModerate, 100*worst))
		}
		b.WriteByte('\n')
	}

	// The base broadcast's critical path, the Figure 3 accounting.
	rec := prof.NewRecorder()
	if _, err := logp.Run(logp.Config{Params: base, Profiler: rec}, programs[0].body(base)); err != nil {
		return Report{ID: "whatif", Checks: []Check{check("broadcast recorded", false, "%v", err)}}
	}
	run, err := rec.Analyze()
	if err != nil {
		return Report{ID: "whatif", Checks: []Check{check("broadcast analyzed", false, "%v", err)}}
	}
	cp := run.CriticalPath()
	a := cp.Attribution()
	b.WriteString("critical path of the recorded broadcast (Figure 3 accounting):\n")
	b.WriteString(cp.String())
	b.WriteString(a.String())
	b.WriteByte('\n')
	checks = append(checks,
		check("broadcast critical path tiles the makespan", cp.Contiguous() == nil, "%v", cp.Contiguous()),
		check("Figure 3 accounting: o=10 L=12 g=2 of 24", a.Makespan == 24 && a.Overhead == 10 && a.Latency == 12 && a.Gap == 2,
			"makespan %d: o=%d L=%d g=%d", a.Makespan, a.Overhead, a.Latency, a.Gap))

	return Report{
		ID:     "whatif",
		Title:  "What-if re-costing: replayed DAG vs direct simulation",
		Text:   b.String(),
		Checks: checks,
	}
}

// WriteProfTraces records the paper's two schedule figures — the optimal
// broadcast of Figure 3 and the optimal summation of Figure 4 — under the
// causal profiler and writes their Chrome trace_event JSON exports to
// <dir>/fig3.trace.json and <dir>/fig4.trace.json (cmd/figures -prof).
func WriteProfTraces(dir string) error {
	write := func(name string, params core.Params, body func(p *logp.Proc)) error {
		rec := prof.NewRecorder()
		if _, err := logp.Run(logp.Config{Params: params, Profiler: rec}, body); err != nil {
			return err
		}
		run, err := rec.Analyze()
		if err != nil {
			return err
		}
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := run.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}

	fig3 := core.Params{P: 8, L: 6, O: 2, G: 4}
	bcast, err := core.OptimalBroadcast(fig3, 0)
	if err != nil {
		return err
	}
	if err := write("fig3.trace.json", fig3, func(p *logp.Proc) {
		collective.Broadcast(p, bcast, 1, nil)
	}); err != nil {
		return err
	}

	fig4 := core.Params{P: 8, L: 5, O: 2, G: 4}
	sum, err := core.OptimalSummation(fig4, 28)
	if err != nil {
		return err
	}
	values := make([]float64, sum.TotalValues)
	for i := range values {
		values[i] = 1
	}
	dist, err := collective.DistributeInputs(sum, values)
	if err != nil {
		return err
	}
	return write("fig4.trace.json", fig4, func(p *logp.Proc) {
		collective.SumOptimal(p, sum, 1, dist[p.ID()])
	})
}
