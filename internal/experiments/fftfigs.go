package experiments

import (
	"fmt"
	"math/rand"

	"github.com/logp-model/logp/internal/algo/fft"
	"github.com/logp-model/logp/internal/stats"
)

// fftInput builds a deterministic random input.
func fftInput(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

// fig6Machine returns the machine size and problem-size sweep for a scale:
// the paper's machine is the full 128-processor CM-5 (we keep P=128, since
// the naive-schedule serialization ratio depends on it); the sweep reaches
// 2^16 points at the default scale instead of 16M, preserving the
// per-processor ratios.
func fig6Machine(scale Scale) (p int, sizes []int) {
	s := scale.clamp()
	p = 128
	base := []int{1 << 14, 1 << 15, 1 << 16}
	for i := range base {
		base[i] *= s
	}
	return p, base
}

// Fig6 regenerates the FFT execution-time figure: local computation versus
// the remap phase under the naive and staggered communication schedules, on
// the CM-5 calibration. The paper's shape: the staggered remap costs about
// 1/7th of the computation, an order of magnitude less than the naive remap
// (>1.5x the computation on the CM-5, whose fat-tree congestion also slows
// traffic to other destinations). In the pure LogP model the naive flood
// stalls senders on the per-destination capacity, and the fair FIFO slot
// arbitration lets the flood self-stagger after a serialized start, so the
// simulated naive penalty settles at ~3x staggered rather than the CM-5's
// ~10x; the orderings and the staggered/compute ratio match the paper.
func Fig6(scale Scale) Report {
	P, sizes := fig6Machine(scale)
	// One sweep item per problem size: both schedules for that size, run
	// concurrently with the other sizes and reassembled in size order.
	type point struct {
		compute, naive, staggered, stallFrac float64
		fail                                 failure
	}
	points := mapIndexed(len(sizes), func(i int) point {
		n := sizes[i]
		cfg := fft.Config{N: n, Machine: fft.CM5Machine(P), Cost: fft.CM5Cost(), Schedule: fft.StaggeredSchedule}
		_, phS, _, err := fft.Run(cfg, fftInput(n, int64(n)))
		if err != nil {
			return point{fail: fail("fig6", check("staggered run", false, "%v", err))}
		}
		cfg.Schedule = fft.NaiveSchedule
		_, phN, resN, err := fft.Run(cfg, fftInput(n, int64(n)))
		if err != nil {
			return point{fail: fail("fig6", check("naive run", false, "%v", err))}
		}
		comp := float64(phS.Cyclic + phS.Blocked)
		return point{
			compute:   comp * fft.CM5TickNanos / 1e9,
			naive:     float64(phN.Remap) * fft.CM5TickNanos / 1e9,
			staggered: float64(phS.Remap) * fft.CM5TickNanos / 1e9,
			stallFrac: float64(resN.TotalStall()) / float64(phN.Remap*int64(P)),
		}
	})
	var xs, compute, naive, staggered []float64
	var naiveStallFrac float64
	for i, pt := range points {
		if pt.fail.rep != nil {
			return *pt.fail.rep
		}
		xs = append(xs, float64(sizes[i]))
		compute = append(compute, pt.compute)
		naive = append(naive, pt.naive)
		staggered = append(staggered, pt.staggered)
		naiveStallFrac = pt.stallFrac
	}
	text := stats.CSV("points",
		stats.Series{Name: "compute_s", X: xs, Y: compute},
		stats.Series{Name: "naive_remap_s", X: xs, Y: naive},
		stats.Series{Name: "staggered_remap_s", X: xs, Y: staggered},
	)
	last := len(xs) - 1
	text += fmt.Sprintf("\nat n=%d, P=%d: naive/compute = %.1f, staggered/compute = 1/%.1f, naive/staggered = %.0f\n",
		int(xs[last]), P, naive[last]/compute[last], compute[last]/staggered[last], naive[last]/staggered[last])
	return Report{
		ID:    "fig6",
		Title: "FFT execution time: computation vs naive and staggered remap (CM-5 calibration)",
		Text:  text,
		Checks: []Check{
			check("staggered remap well below compute (paper: 1/7)", staggered[last] < compute[last]/3, "1/%.1f", compute[last]/staggered[last]),
			check("naive remap several times staggered", naive[last] > 2.5*staggered[last], "%.1fx", naive[last]/staggered[last]),
			check("naive remap loses a large fraction to contention stalls", naiveStallFrac > 0.25, "%.0f%% of naive processor-cycles stalled", naiveStallFrac*100),
			check("compute grows superlinearly vs remap (n log n vs n)",
				compute[last]/compute[0] > staggered[last]/staggered[0], ""),
		},
	}
}

// Fig7 regenerates the per-processor computation rates of the two local FFT
// phases: the drop from ~2.8 to ~2.2 Mflops once the per-processor working
// set exceeds the 64 KB cache, with the cyclic phase (one large FFT)
// suffering more than the blocked phase (many small FFTs). The sweep uses a
// smaller machine (P=8) so the per-processor working set n/P crosses the
// 64 KB boundary (4096 points) at simulable sizes; the rates are local
// properties and do not depend on P.
func Fig7(scale Scale) Report {
	P := 8
	s := scale.clamp()
	sizes := []int{1 << 13, 1 << 14, 1 << 15, 1 << 16, 1 << 17}
	for i := range sizes {
		sizes[i] *= s
	}
	cost := fft.CM5Cost()
	var xs, phase1, phase3 []float64
	k := func(n int) int {
		lg := 0
		for v := n; v > 1; v >>= 1 {
			lg++
		}
		return lg
	}
	lp := k(P)
	type point struct {
		phase1, phase3 float64
		fail           failure
	}
	points := mapIndexed(len(sizes), func(i int) point {
		n := sizes[i]
		cfg := fft.Config{N: n, Machine: fft.CM5Machine(P), Cost: cost, Schedule: fft.StaggeredSchedule}
		_, ph, _, err := fft.Run(cfg, fftInput(n, int64(n)))
		if err != nil {
			return point{fail: fail("fig7", check("run", false, "%v", err))}
		}
		bflyPerProc := int64(n / P / 2)
		b1 := bflyPerProc * int64(k(n)-lp)
		b3 := bflyPerProc * int64(lp)
		return point{
			phase1: fft.ComputeMflopsPerProc(b1, ph.Cyclic, fft.CM5TickNanos),
			phase3: fft.ComputeMflopsPerProc(b3, ph.Blocked, fft.CM5TickNanos),
		}
	})
	for i, pt := range points {
		if pt.fail.rep != nil {
			return *pt.fail.rep
		}
		xs = append(xs, float64(sizes[i]))
		phase1 = append(phase1, pt.phase1)
		phase3 = append(phase3, pt.phase3)
	}
	text := stats.CSV("points",
		stats.Series{Name: "phase1_mflops", X: xs, Y: phase1},
		stats.Series{Name: "phase3_mflops", X: xs, Y: phase3},
	)
	// Find the in-cache and out-of-cache plateaus of phase I.
	small, large := phase1[0], phase1[len(phase1)-1]
	large3 := phase3[len(phase3)-1]
	text += fmt.Sprintf("\nphase I: %.2f Mflops in cache, %.2f out of cache; phase III ends at %.2f\n", small, large, large3)
	return Report{
		ID:    "fig7",
		Title: "FFT per-processor computation rates (cache capacity knee)",
		Text:  text,
		Checks: []Check{
			check("in-cache rate ~2.8 Mflops", small > 2.6 && small < 3.0, "%.2f", small),
			check("out-of-cache cyclic rate ~2.2 Mflops", large > 2.0 && large < 2.4, "%.2f", large),
			check("blocked phase suffers less than cyclic", large3 > large, "%.2f vs %.2f", large3, large),
		},
	}
}

// Fig8 regenerates the remap communication-rate figure: MB/s per processor
// for the naive, staggered, synchronized (barrier per destination chunk) and
// double-network schedules, against the o-bound prediction 16B /
// max(1us+2o, g) = 3.2 MB/s. Processors carry systematic speed skew and
// timing noise, so the staggered schedule drifts out of sync and droops as
// the problem grows; the barrier variant pays per-chunk overhead at small
// sizes but holds the rate up once chunks amortize it (the paper's barriers
// come every n/P^2 = 1024 messages at 16M points; our scaled chunks are far
// smaller, so the crossover happens inside the sweep); doubling the network
// (halving g) lifts the deterministic rate by only ~13% — the paper's 15% —
// because the interface overhead o and loop processing dominate.
func Fig8(scale Scale) Report {
	P := 128
	s := scale.clamp()
	sizes := []int{1 << 14, 1 << 15, 1 << 16, 1 << 17}
	for i := range sizes {
		sizes[i] *= s
	}
	type variant struct {
		name   string
		sched  fft.RemapSchedule
		halveG bool
		clean  bool // no jitter: the deterministic reference
	}
	variants := []variant{
		{name: "naive", sched: fft.NaiveSchedule},
		{name: "staggered", sched: fft.StaggeredSchedule},
		{name: "synchronized", sched: fft.SynchronizedSchedule},
		{name: "double_net", sched: fft.StaggeredSchedule, halveG: true},
		{name: "deterministic", sched: fft.StaggeredSchedule, clean: true},
	}
	series := make([]stats.Series, 0, len(variants)+1)
	rates := map[string][]float64{}
	var xs []float64
	for _, n := range sizes {
		xs = append(xs, float64(n))
	}
	// Flatten the variant x size grid into one sweep: 20 independent
	// simulations, each with its own machine seeded only by (variant, n).
	type cell struct {
		rate float64
		fail failure
	}
	cells := mapIndexed(len(variants)*len(sizes), func(i int) cell {
		v := variants[i/len(sizes)]
		n := sizes[i%len(sizes)]
		m := fft.CM5Machine(P)
		if !v.clean {
			m.ComputeJitter = 0.02 // local timing noise
			m.ProcSkew = 0.10      // systematic per-node speed differences
			m.LatencyJitter = 10
			m.Seed = int64(n)
		}
		m.BarrierCost = 33 // ~1us hardware barrier
		if v.halveG {
			m.Params = m.Params.WithG(m.Params.G / 2)
		}
		cfg := fft.Config{N: n, Machine: m, Cost: fft.CM5Cost(), Schedule: v.sched}
		_, ph, _, err := fft.Run(cfg, fftInput(n, int64(n)))
		if err != nil {
			return cell{fail: fail("fig8", check(v.name, false, "%v", err))}
		}
		return cell{rate: ph.RemapRateMBps(fft.CM5TickNanos)}
	})
	for vi, v := range variants {
		ys := make([]float64, 0, len(sizes))
		for si := range sizes {
			c := cells[vi*len(sizes)+si]
			if c.fail.rep != nil {
				return *c.fail.rep
			}
			ys = append(ys, c.rate)
		}
		rates[v.name] = ys
		series = append(series, stats.Series{Name: v.name + "_MBps", X: xs, Y: ys})
	}
	predicted := make([]float64, len(xs))
	for i := range predicted {
		predicted[i] = 3.2
	}
	series = append(series, stats.Series{Name: "predicted_MBps", X: xs, Y: predicted})
	text := stats.CSV("points", series...)
	last := len(xs) - 1
	stag := rates["staggered"]
	sync := rates["synchronized"]
	dbl := rates["double_net"]
	naive := rates["naive"]
	det := rates["deterministic"]
	text += fmt.Sprintf("\nat n=%d: staggered %.2f, synchronized %.2f, double-net %.2f, naive %.2f, deterministic %.2f MB/s (predicted 3.2)\n",
		int(xs[last]), stag[last], sync[last], dbl[last], naive[last], det[last])
	return Report{
		ID:    "fig8",
		Title: "Remap communication rates per processor (drift, barriers, double network)",
		Text:  text,
		Checks: []Check{
			check("nothing beats the o-bound prediction", maxOf(stag, sync, dbl, det) <= 3.3, "max %.2f", maxOf(stag, sync, dbl, det)),
			check("staggered droops as processors drift", stag[last] < stag[0]*0.95, "%.2f -> %.2f", stag[0], stag[last]),
			check("synchronizing barriers hold the rate up at scale", sync[last] > stag[last] && sync[last] > sync[0], "%.2f vs %.2f", sync[last], stag[last]),
			check("double network gains only ~15% over the deterministic rate (o dominates)",
				dbl[last] > det[last] && dbl[last] < det[last]*1.25, "+%.0f%%", (dbl[last]/det[last]-1)*100),
			check("naive schedule is far below", naive[last] < stag[last]/1.5, "%.2f vs %.2f", naive[last], stag[last]),
		},
	}
}

func maxOf(seqs ...[]float64) float64 {
	m := 0.0
	for _, s := range seqs {
		for _, v := range s {
			if v > m {
				m = v
			}
		}
	}
	return m
}
