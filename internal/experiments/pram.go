package experiments

import (
	"fmt"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/network"
	"github.com/logp-model/logp/internal/stats"
)

// PRAMEmulation regenerates the Section 6.1 argument against the PRAM as an
// implementation vehicle: "implementation of these algorithms can be
// achieved by general-purpose simulations of the PRAM on distributed-memory
// machines. However, these simulations ... may be unacceptably slow,
// especially when network bandwidth and processor overhead for sending and
// receiving messages are properly accounted."
//
// The workload is a prefix sum over n values. The PRAM-style execution runs
// the classic Hillis-Steele algorithm with n virtual processors: log2 n
// synchronous steps, each moving Theta(n) fine-grained values between
// (cyclically assigned) virtual processors. The native LogP algorithm sums
// each processor's local chunk, scans the P partial sums, and fixes up
// locally — Theta(n/P) local work and Theta(log P) messages per processor.
// Both run on the same simulated machine and produce identical results; the
// emulation's message bill is what the PRAM hides.
func PRAMEmulation() Report {
	const n = 1 << 10
	params := core.Params{P: 8, L: 20, O: 4, G: 8}
	input := make([]int64, n)
	for i := range input {
		input[i] = int64(i%17 + 1)
	}
	want := make([]int64, n)
	var acc int64
	for i, v := range input {
		acc += v
		want[i] = acc
	}

	emulated, emuRes, err := pramPrefix(params, input)
	if err != nil {
		return Report{ID: "pram", Checks: []Check{check("emulated run", false, "%v", err)}}
	}
	native, natRes, err := nativePrefix(params, input)
	if err != nil {
		return Report{ID: "pram", Checks: []Check{check("native run", false, "%v", err)}}
	}
	okEmu := equalInt64(emulated, want)
	okNat := equalInt64(native, want)

	tb := stats.Table{Header: []string{"execution", "time (cycles)", "messages", "correct"}}
	tb.Add("PRAM emulation (n virtual procs)", emuRes.Time, emuRes.Messages, okEmu)
	tb.Add("native LogP algorithm", natRes.Time, natRes.Messages, okNat)
	slow := float64(emuRes.Time) / float64(natRes.Time)
	msgRatio := float64(emuRes.Messages) / float64(natRes.Messages)
	text := tb.String()
	text += fmt.Sprintf("\nprefix sum of %d values on %v: emulation is %.0fx slower and sends %.0fx more messages\n",
		n, params, slow, msgRatio)
	return Report{
		ID:    "pram",
		Title: "The cost of PRAM emulation vs a native LogP algorithm (Section 6.1)",
		Text:  text,
		Checks: []Check{
			check("both executions are correct", okEmu && okNat, ""),
			check("emulation is unacceptably slow", slow > 5, "%.0fx", slow),
			check("the message bill explains it", msgRatio > 10, "%.0fx more messages", msgRatio),
		},
	}
}

func equalInt64(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// pramPrefix runs Hillis-Steele with one virtual processor per element,
// assigned cyclically (virtual v on physical v mod P), pushing each step's
// values to their readers.
func pramPrefix(params core.Params, input []int64) ([]int64, logp.Result, error) {
	n := len(input)
	P := params.P
	out := make([]int64, n)
	res, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		me := p.ID()
		// Local slots for owned virtual processors.
		vals := map[int]int64{}
		for v := me; v < n; v += P {
			vals[v] = input[v]
		}
		step := 0
		for k := 1; k < n; k <<= 1 {
			tag := 18000 + step
			// Count how many values this processor will receive: owned
			// readers v with v >= k whose source v-k lives elsewhere.
			expect := 0
			for v := me; v < n; v += P {
				if v >= k && (v-k)%P != me {
					expect++
				}
			}
			add := map[int]int64{}
			// Push owned values to their readers (reader of v is v+k).
			for v := me; v < n; v += P {
				reader := v + k
				if reader >= n {
					continue
				}
				if reader%P == me {
					add[reader] += vals[v]
					continue
				}
				for p.HasTag(tag) && expect > 0 {
					m := p.RecvTag(tag).Data.([2]int64)
					add[int(m[0])] += m[1]
					expect--
				}
				p.Send(reader%P, tag, [2]int64{int64(v + k), vals[v]})
			}
			for expect > 0 {
				m := p.RecvTag(tag).Data.([2]int64)
				add[int(m[0])] += m[1]
				expect--
			}
			// The synchronous PRAM step boundary.
			adds := 0
			for v, d := range add {
				vals[v] += d
				adds++
			}
			p.Compute(int64(adds))
			p.Barrier()
			step++
		}
		for v, x := range vals {
			out[v] = x
		}
	})
	return out, res, err
}

// nativePrefix is the LogP-appropriate algorithm: local chain, scan of the
// P partials, local fixup.
func nativePrefix(params core.Params, input []int64) ([]int64, logp.Result, error) {
	n := len(input)
	P := params.P
	per := n / P
	out := make([]int64, n)
	res, err := logp.Run(logp.Config{Params: params}, func(p *logp.Proc) {
		me := p.ID()
		lo, hi := me*per, (me+1)*per
		if me == P-1 {
			hi = n
		}
		var sum int64
		for i := lo; i < hi; i++ {
			sum += input[i]
		}
		p.Compute(int64(hi - lo - 1))
		incl := collective.Scan(p, 19000, sum, func(a, b any) any {
			return a.(int64) + b.(int64)
		}).(int64)
		offset := incl - sum
		acc := offset
		for i := lo; i < hi; i++ {
			acc += input[i]
			out[i] = acc
		}
		p.Compute(int64(hi - lo))
	})
	return out, res, err
}

// Robustness regenerates the Section 2 motivations about real networks:
// faults are routed around ("the physical interconnect on a single system
// will vary over time to avoid broken components") and adaptive routing
// relieves contention ("adaptive routing techniques are becoming
// increasingly practical") — both reasons the model abstracts topology.
func Robustness() Report {
	// Fault tolerance on a 5-cube.
	h := network.Hypercube(5)
	before := h.AverageDistance()
	cut := [][2]int{{0, 1}, {3, 7}, {12, 28}, {17, 19}, {24, 25}, {9, 13}}
	for _, e := range cut {
		if !h.FailLink(e[0], e[1]) {
			return Report{ID: "robustness", Checks: []Check{check("links exist", false, "edge %v missing", e)}}
		}
	}
	after := h.AverageDistance()
	lcfg := network.LoadConfig{RouterDelay: 2, Load: 0.1, Pattern: network.UniformTraffic, Horizon: 3000, Warmup: 500, Seed: 3}
	faulty, err := network.RunLoad(h, lcfg)
	if err != nil {
		return Report{ID: "robustness", Checks: []Check{check("degraded run", false, "%v", err)}}
	}

	// Adaptive routing on a loaded mesh.
	mesh := network.Mesh2D(8, 8, false)
	mcfg := network.LoadConfig{RouterDelay: 2, Load: 0.3, Pattern: network.UniformTraffic, Horizon: 3000, Warmup: 500, Seed: 6}
	det, err := network.RunLoad(mesh, mcfg)
	if err != nil {
		return Report{ID: "robustness", Checks: []Check{check("deterministic run", false, "%v", err)}}
	}
	mcfg.Adaptive = true
	ad, err := network.RunLoad(mesh, mcfg)
	if err != nil {
		return Report{ID: "robustness", Checks: []Check{check("adaptive run", false, "%v", err)}}
	}

	tb := stats.Table{Header: []string{"study", "metric", "value"}}
	tb.Add("5-cube, 6 failed links", "avg distance before", before)
	tb.Add("5-cube, 6 failed links", "avg distance after", after)
	tb.Add("5-cube, 6 failed links", "mean latency degraded net", faulty.MeanLatency)
	tb.Add("8x8 mesh @ load 0.3", "deterministic latency", det.MeanLatency)
	tb.Add("8x8 mesh @ load 0.3", "adaptive latency", ad.MeanLatency)
	return Report{
		ID:    "robustness",
		Title: "Faults and adaptive routing: why topology is abstracted (Section 2)",
		Text:  tb.String(),
		Checks: []Check{
			check("network survives the failures", h.Connected(), ""),
			check("routes lengthen only slightly", after >= before && after < before*1.2, "%.2f -> %.2f", before, after),
			check("traffic still flows on the degraded network", faulty.Delivered > 0, "%d delivered", faulty.Delivered),
			check("adaptive routing relieves contention", ad.MeanLatency < det.MeanLatency, "%.1f vs %.1f", ad.MeanLatency, det.MeanLatency),
			check("adaptivity stays on shortest paths", ad.MeanDistance <= det.MeanDistance+1e-9, "%.2f vs %.2f", ad.MeanDistance, det.MeanDistance),
		},
	}
}
