package experiments

import (
	"sync/atomic"
	"time"
)

// Observation reports one experiment finishing inside RunAll: which entry,
// its catalog position, and the wall-clock time its generator took. Wall time
// is host time (the telemetry of the harness itself), not simulated cycles —
// simulated results stay bit-identical regardless of the observer.
type Observation struct {
	ID    string
	Index int // position in Catalog order
	Total int // catalog size
	Wall  time.Duration
}

// observer holds the registered callback; the indirection through a struct
// keeps the atomic.Value type consistent when clearing.
type observerBox struct{ fn func(Observation) }

var observer atomic.Value // observerBox

// SetObserver registers fn to be called once per experiment as RunAll
// completes it. The callback runs on the harness worker goroutines, so it
// must be safe for concurrent use; nil removes the observer. Reports are
// unaffected — the observer is a side channel for progress display and
// wall-time metrics.
func SetObserver(fn func(Observation)) {
	observer.Store(observerBox{fn: fn})
}

func loadObserver() func(Observation) {
	if b, ok := observer.Load().(observerBox); ok {
		return b.fn
	}
	return nil
}
