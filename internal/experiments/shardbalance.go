package experiments

import (
	"fmt"
	"reflect"
	"runtime"
	"strings"
	"time"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/progs"
	"github.com/logp-model/logp/internal/stats"
)

// ShardBalance turns the flight recorder on the sharded kernel itself: the
// capacity-mode optimal broadcast at a fixed large P, swept across shard
// counts, with the per-shard wall-clock split (busy vs barrier wait) and the
// scheduling traffic (wheel/heap insertions, barrier merges, held replays,
// queue rewinds) recorded for every run. The observable of interest is the
// barrier-wait fraction — the share of shard-worker time spent idle at
// window barriers waiting for the slowest shard — which bounds the speedup
// the windowed core can extract at the host's GOMAXPROCS. The recorder must
// be invisible in sim time: every recorded run is checked bit-identical to
// an unrecorded run of the same configuration.
func ShardBalance(scale Scale) Report {
	const id = "shardbalance"
	params := core.Params{P: 100_000 * scale.clamp(), L: 8, O: 2, G: 3}
	shardCounts := []int{1, 2, 4, 8}

	sched, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", err.Error())}}
	}
	cfg := logp.Config{Params: params}

	type outcome struct {
		stats    []flat.ShardStat
		wall     time.Duration
		recordOK bool
		failMsg  string
	}
	runs := mapIndexed(len(shardCounts), func(i int) outcome {
		shards := shardCounts[i]
		plain, err := flat.Run(cfg, progs.NewBroadcast(sched, 1, "datum"), shards)
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		m, err := flat.New(cfg, progs.NewBroadcast(sched, 1, "datum"), shards)
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		m.EnableFlightRecorder()
		start := time.Now()
		rec, err := m.Run()
		wall := time.Since(start)
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		return outcome{
			stats:    m.ShardStats(),
			wall:     wall,
			recordOK: reflect.DeepEqual(plain, rec),
		}
	})
	for _, o := range runs {
		if o.failMsg != "" {
			return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", o.failMsg)}}
		}
	}

	xs := make([]float64, len(shardCounts))
	busyMS := make([]float64, len(shardCounts))
	waitMS := make([]float64, len(shardCounts))
	waitFrac := make([]float64, len(shardCounts))
	wallMS := make([]float64, len(shardCounts))
	merged := make([]float64, len(shardCounts))
	replays := make([]float64, len(shardCounts))
	rewinds := make([]float64, len(shardCounts))
	recordOK, conserved, balanced, wellFormed := true, true, true, true
	for i, o := range runs {
		xs[i] = float64(shardCounts[i])
		var busy, wait, events, inserted, windows int64
		for _, st := range o.stats {
			busy += st.BusyNs
			wait += st.BarrierWaitNs
			events += st.Events
			inserted += st.WheelEvents + st.HeapEvents
			merged[i] += float64(st.MergedIn)
			replays[i] += float64(st.HeldReplays)
			rewinds[i] += float64(st.Rewinds)
			windows += st.Windows
		}
		busyMS[i] = float64(busy) / 1e6
		waitMS[i] = float64(wait) / 1e6
		wallMS[i] = float64(o.wall.Milliseconds())
		if busy+wait > 0 {
			waitFrac[i] = float64(wait) / float64(busy+wait)
		}
		if !o.recordOK {
			recordOK = false
		}
		if events == 0 || inserted < events {
			conserved = false
		}
		// Sharded kernels run every window on every shard together; the
		// sequential kernel has no windows at all.
		if shardCounts[i] > 1 && windows != int64(shardCounts[i])*o.stats[0].Windows {
			balanced = false
		}
		if waitFrac[i] < 0 || waitFrac[i] > 1 {
			wellFormed = false
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "capacity-mode optimal broadcast, P=%d, L=%d o=%d g=%d, GOMAXPROCS=%d, flight recorder on\n\n",
		params.P, params.L, params.O, params.G, runtime.GOMAXPROCS(0))
	b.WriteString(stats.CSV("shards",
		stats.Series{Name: "busy_ms", X: xs, Y: busyMS},
		stats.Series{Name: "barrier_wait_ms", X: xs, Y: waitMS},
		stats.Series{Name: "barrier_wait_frac", X: xs, Y: waitFrac},
		stats.Series{Name: "wall_ms", X: xs, Y: wallMS},
		stats.Series{Name: "merged_in", X: xs, Y: merged},
		stats.Series{Name: "held_replays", X: xs, Y: replays},
		stats.Series{Name: "rewinds", X: xs, Y: rewinds},
	))
	return Report{
		ID:    id,
		Title: "Shard balance: where the windowed kernel's wall-clock time goes",
		Checks: []Check{
			check("recorded Result is bit-identical to the unrecorded run at every shard count", recordOK,
				"flight recorder must not steer sim time"),
			check("every dispatched event was first inserted (wheel + heap covers dispatches)", conserved,
				"insertions vs dispatches per shard count"),
			check("all shards of a windowed run execute every window together", balanced,
				"per-shard window counts must be equal"),
			check("barrier-wait fractions are well-formed", wellFormed, "fractions %v", waitFrac),
		},
		Text: b.String(),
	}
}
