package experiments

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/network"
	"github.com/logp-model/logp/internal/stats"
)

// PatternGaps regenerates Section 5.6: "various network interconnection
// topologies are known to have specific contention-free routing patterns
// ... whereas other communication patterns will saturate intermediate
// routers", motivating the suggested extension of "multiple g's, where the
// one appropriate to the particular communication pattern is used in the
// analysis". The packet simulator drives good and bad permutations through
// a 2D mesh and a butterfly and reports each pattern's mean latency and an
// effective per-pattern gap (cycles per delivered packet per processor).
func PatternGaps(scale Scale) Report {
	s := scale.clamp()
	cfg := network.LoadConfig{
		RouterDelay: 2,
		Load:        0.25,
		Horizon:     int64(3000 * s),
		Warmup:      int64(500 * s),
		Seed:        11,
	}
	patterns := []network.TrafficPattern{
		network.ShiftTraffic,
		network.UniformTraffic,
		network.BitReverseTraffic,
		network.TransposeTraffic,
	}
	tops := []*network.Topology{
		network.Mesh2D(8, 8, false),
		network.Butterfly(6),
	}
	// The effective gap of a pattern is the reciprocal of the offered load
	// at which it saturates: a pattern that saturates at load 0.1 supports
	// one packet per 10 cycles per processor.
	kneeLoads := []float64{0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9}
	effectiveG := func(top *network.Topology, pat network.TrafficPattern) (float64, error) {
		c := cfg
		c.Pattern = pat
		sweep, err := network.SaturationSweep(top, kneeLoads, c)
		if err != nil {
			return 0, err
		}
		knee := network.SaturationLoad(sweep)
		if knee != knee { // NaN: never saturated inside the sweep
			knee = kneeLoads[len(kneeLoads)-1]
		}
		return 1 / knee, nil
	}
	tb := stats.Table{Header: []string{"topology", "pattern", "mean latency @0.25", "effective g (1/saturation load)"}}
	lat := map[string]float64{}
	effg := map[string]float64{}
	// One item per (topology, pattern) cell; topologies are read-only, so
	// concurrent drives over the same one are safe.
	type cell struct {
		lat, effg float64
		fail      failure
	}
	cells := mapIndexed(len(tops)*len(patterns), func(i int) cell {
		top := tops[i/len(patterns)]
		pat := patterns[i%len(patterns)]
		c := cfg
		c.Pattern = pat
		r, err := network.RunLoad(top, c)
		if err != nil {
			return cell{fail: fail("patterns", check("run", false, "%s/%v: %v", top.Name, pat, err))}
		}
		g, err := effectiveG(top, pat)
		if err != nil {
			return cell{fail: fail("patterns", check("knee", false, "%s/%v: %v", top.Name, pat, err))}
		}
		return cell{lat: r.MeanLatency, effg: g}
	})
	for i, c := range cells {
		if c.fail.rep != nil {
			return *c.fail.rep
		}
		top := tops[i/len(patterns)]
		pat := patterns[i%len(patterns)]
		key := top.Name + "/" + pat.String()
		lat[key] = c.lat
		effg[key] = c.effg
		tb.Add(top.Name, pat.String(), c.lat, c.effg)
	}
	meshShift := lat["2d-mesh(8x8)/shift"]
	meshTrans := lat["2d-mesh(8x8)/transpose"]
	bflyShift := lat["butterfly(k=6)/shift"]
	bflyTrans := lat["butterfly(k=6)/transpose"]
	gSpread := effg["2d-mesh(8x8)/transpose"] / effg["2d-mesh(8x8)/shift"]
	text := tb.String()
	text += fmt.Sprintf("\nmesh effective-g spread shift vs transpose: %.1fx — one g cannot describe both;\n", gSpread)
	text += "Section 5.6 suggests multiple g's chosen per communication pattern.\n"
	return Report{
		ID:    "patterns",
		Title: "Good and bad permutations: pattern-dependent effective g (Section 5.6)",
		Text:  text,
		Checks: []Check{
			check("shift is contention-free on the mesh", meshShift < lat["2d-mesh(8x8)/uniform"], "%.1f vs uniform %.1f", meshShift, lat["2d-mesh(8x8)/uniform"]),
			check("transpose saturates the mesh", meshTrans > 3*meshShift, "%.1f vs %.1f", meshTrans, meshShift),
			check("the butterfly tolerates both far better", bflyTrans/bflyShift < meshTrans/meshShift, "bfly ratio %.1f vs mesh ratio %.1f", bflyTrans/bflyShift, meshTrans/meshShift),
			check("effective g varies by pattern", gSpread > 1.5, "%.1fx", gSpread),
		},
	}
}

// ParameterSpace regenerates the closing argument of Section 7: "the model
// defines a four dimensional parameter space of potential machines ... a
// framework for classifying algorithms and identifying which are most
// attractive in various regions of the machine parameter space". For a grid
// of (o, g) points at fixed L and P, it evaluates the optimal broadcast
// time, the minimum time to sum 10k values, and the predicted efficiency of
// the hybrid FFT (computation over computation plus communication).
func ParameterSpace() Report {
	const L, P = 40, 64
	const n = 1 << 16
	os := []int64{1, 4, 16, 64}
	gs := []int64{1, 4, 16, 64}
	tb := stats.Table{Header: []string{"o \\ g", "g=1", "g=4", "g=16", "g=64"}}
	// FFT efficiency: compute = (n/P) log2 n butterfly cycles (1 cycle per
	// butterfly pair of nodes, i.e. the model's unit); communication =
	// hybrid remap g*(n/P - n/P^2) + L, with o charged per message at both
	// ends when it exceeds half the gap.
	lgn := 0
	for v := n; v > 1; v >>= 1 {
		lgn++
	}
	computeCycles := float64(n/P) * float64(lgn) / 2
	effAt := func(o, g int64) float64 {
		perMsg := float64(g)
		if 2*float64(o) > perMsg {
			perMsg = 2 * float64(o)
		}
		comm := perMsg*float64(n/P-n/(P*P)) + float64(L)
		return computeCycles / (computeCycles + comm)
	}
	var rows [][]float64
	for _, o := range os {
		cells := make([]any, 0, len(gs)+1)
		cells = append(cells, fmt.Sprintf("o=%d", o))
		var row []float64
		for _, g := range gs {
			p := core.Params{P: P, L: L, O: o, G: g}
			b := core.BroadcastTime(p)
			eff := effAt(o, g)
			row = append(row, eff)
			cells = append(cells, fmt.Sprintf("bc %d / eff %.2f", b, eff))
		}
		rows = append(rows, row)
		tb.Add(cells...)
	}
	text := "optimal broadcast time and predicted hybrid-FFT efficiency across the (o, g) plane (L=40, P=64, n=2^16):\n\n"
	text += tb.String()
	text += "\nmachines with large g are \"only effective for algorithms with a large ratio of computation to communication\" (Section 7).\n"
	// Checks: efficiency decreases along both axes; the best corner is
	// (o=1, g=1), the worst (o=64, g=64).
	monotone := true
	for i := range rows {
		for j := 1; j < len(rows[i]); j++ {
			if rows[i][j] > rows[i][j-1]+1e-12 {
				monotone = false
			}
		}
	}
	for j := range gs {
		for i := 1; i < len(rows); i++ {
			if rows[i][j] > rows[i-1][j]+1e-12 {
				monotone = false
			}
		}
	}
	return Report{
		ID:    "paramspace",
		Title: "The machine parameter space (Section 7)",
		Text:  text,
		Checks: []Check{
			check("efficiency falls as o and g grow", monotone, ""),
			check("corner contrast is large", rows[0][0] > 0.75 && rows[len(rows)-1][len(gs)-1] < 0.15,
				"best %.2f, worst %.2f", rows[0][0], rows[len(rows)-1][len(gs)-1]),
		},
	}
}
