package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/progs"
	"github.com/logp-model/logp/internal/stats"
	"github.com/logp-model/logp/internal/topo"
)

// tierOverride holds the -tier flag's spec when cmd/figures sets one; the
// indirection through a struct keeps the atomic.Value type consistent.
type tierBox struct{ spec *topo.Spec }

var tierOverride atomic.Value // tierBox

// SetTierSpec overrides the node tier HierTree studies (cmd/figures -tier).
// Only the node tier of the spec is used — the experiment sweeps the cluster
// tier itself, and a rack tier has no place in its two-tier machines. Nil
// restores the built-in default.
func SetTierSpec(s *topo.Spec) {
	tierOverride.Store(tierBox{spec: s})
}

func loadTierSpec() *topo.Spec {
	if b, ok := tierOverride.Load().(tierBox); ok {
		return b.spec
	}
	return nil
}

// HierTree reruns the paper's two optimality studies — the Figure 3 optimal
// broadcast and the Figure 4 optimal summation — on a machine the flat model
// cannot describe: a two-tier cluster whose intra-node links are cheap and
// whose inter-node links carry the base (L, o, g). The study sweeps the
// cluster:node latency ratio and measures where tier-aware trees start to
// beat schedules that are provably optimal under the flat model, which is
// the practical question the hierarchical extension answers: how wrong do
// single-(L, o, g) schedules get once the machine has structure?
//
// Every point is validated three ways: the simulated time of each tree must
// equal topo.EvalBroadcast's analytic per-link walk exactly; the goroutine
// and flat engines (sequential and 4-shard) must agree cycle-for-cycle under
// the tiered model; and at ratio 1 — where the two tiers coincide and the
// machine is flat — the tier-aware tree must not beat flat-optimal, pinning
// the composition against the paper's optimality proof. The headline check
// asserts, from simulation results alone, at least one swept ratio where the
// tier-aware broadcast strictly wins, and the report names the crossover.
// The FFT's cyclic-to-blocked remap (Section 4.1) rides along as the
// bandwidth-bound contrast: all its traffic is fixed by the data layout, so
// locality helps it without any rescheduling.
func HierTree(scale Scale) Report {
	const id = "hiertree"
	const P = 32
	node := topo.Link{L: 2, O: 1, G: 1}
	ppn := 4
	if s := loadTierSpec(); s != nil {
		node, ppn = s.Node, s.ProcsPerNode
	}
	ratios := []int64{1, 2, 4, 8, 16, 32}

	type outcome struct {
		flatPred, flatSim int64
		tierPred, tierSim int64
		enginesOK         bool
		shardedOK         bool
		failMsg           string
	}
	fail := func(err error) outcome { return outcome{failMsg: err.Error()} }

	// runBoth executes one broadcast schedule on the goroutine engine, the
	// sequential flat kernel and the 4-shard kernel, and requires all three
	// to agree (sharded runs report the in-transit high-water marks as zero,
	// so those are masked).
	runBoth := func(cfg logp.Config, sched *core.BroadcastSchedule) (int64, bool, bool, error) {
		gRes, err := logp.RunProgram(cfg, progs.NewBroadcast(sched, 1, "datum"))
		if err != nil {
			return 0, false, false, err
		}
		fRes, err := flat.Run(cfg, progs.NewBroadcast(sched, 1, "datum"), 1)
		if err != nil {
			return 0, false, false, err
		}
		sRes, err := flat.Run(cfg, progs.NewBroadcast(sched, 1, "datum"), 4)
		if err != nil {
			return 0, false, false, err
		}
		norm := fRes
		norm.MaxInTransitFrom, norm.MaxInTransitTo = 0, 0
		return fRes.Time, reflect.DeepEqual(gRes, fRes), reflect.DeepEqual(norm, sRes), nil
	}

	runs := mapIndexed(len(ratios), func(i int) outcome {
		base := core.Params{P: P, L: node.L * ratios[i], O: node.O, G: node.G}
		model, err := topo.TwoTier(base, ppn, node)
		if err != nil {
			return fail(err)
		}
		flatSched, err := core.OptimalBroadcast(base, 0)
		if err != nil {
			return fail(err)
		}
		tierSched, err := topo.TierAwareBroadcast(base, ppn, node, 0)
		if err != nil {
			return fail(err)
		}
		_, flatPred := topo.EvalBroadcast(model, 0, flatSched.Sends)

		cfg := logp.Config{Params: base, DisableCapacity: true, Topology: model}
		flatSim, flatEng, flatShard, err := runBoth(cfg, flatSched)
		if err != nil {
			return fail(err)
		}
		tierSim, tierEng, tierShard, err := runBoth(cfg, tierSched)
		if err != nil {
			return fail(err)
		}
		return outcome{
			flatPred: flatPred, flatSim: flatSim,
			tierPred: tierSched.Finish, tierSim: tierSim,
			enginesOK: flatEng && tierEng,
			shardedOK: flatShard && tierShard,
		}
	})
	for _, o := range runs {
		if o.failMsg != "" {
			return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", o.failMsg)}}
		}
	}

	predicted, enginesOK, shardedOK := true, true, true
	crossover := int64(-1)
	xr := make([]float64, len(ratios))
	flatSim := make([]float64, len(ratios))
	tierSim := make([]float64, len(ratios))
	for i, o := range runs {
		xr[i] = float64(ratios[i])
		flatSim[i] = float64(o.flatSim)
		tierSim[i] = float64(o.tierSim)
		if o.flatSim != o.flatPred || o.tierSim != o.tierPred {
			predicted = false
		}
		enginesOK = enginesOK && o.enginesOK
		shardedOK = shardedOK && o.shardedOK
		if crossover < 0 && o.tierSim < o.flatSim {
			crossover = ratios[i]
		}
	}
	first, last := runs[0], runs[len(runs)-1]
	anchorOK := first.flatSim <= first.tierSim
	strictWin := last.tierSim < last.flatSim

	// Figure 4 rerun: the flat-optimal summation schedule is a fixed
	// reduction tree, so on the tiered machine (same cluster tier, cheap
	// intra-node links) it can only speed up. The sum itself must stay exact.
	sumParams := core.Params{P: 8, L: 5, O: 2, G: 4}
	sumFlat, sumTier, sumOK, err := fig4OnTiers(sumParams, topo.Link{L: 2, O: 1, G: 1}, 4)
	if err != nil {
		return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", err.Error())}}
	}

	// FFT remap: all-to-all-like traffic fixed by the data layout; the tiered
	// machine turns a quarter of the links cheap without any rescheduling.
	// With the capacity constraint off, cheaper links can only help. With it
	// on, the opposite happens — the capacity bound stays global at the
	// cluster tier's ceil(L/g) (it models NIC buffer depth, not a link), so
	// intra-node senders inject at their fast gap and slam into it, and the
	// stall pattern serializes the remap. The experiment reports both, and
	// asserts only the capacity-off direction.
	remapP, remapN := 16, 1024*scale.clamp()
	remapBase := core.Params{P: remapP, L: 8, O: 2, G: 3}
	remapFlat, remapTier, remapEng, err := remapOnTiers(remapBase, node, 4, remapN, true)
	if err != nil {
		return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", err.Error())}}
	}
	remapFlatCap, remapTierCap, remapEngCap, err := remapOnTiers(remapBase, node, 4, remapN, false)
	if err != nil {
		return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", err.Error())}}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "two-tier machine: P=%d, %d procs/node, node link (L=%d o=%d g=%d); cluster tier sweeps L\n\n",
		P, ppn, node.L, node.O, node.G)
	b.WriteString(stats.CSV("cluster_to_node_L_ratio",
		stats.Series{Name: "flat_optimal_tree", X: xr, Y: flatSim},
		stats.Series{Name: "tier_aware_tree", X: xr, Y: tierSim},
	))
	if crossover > 0 {
		fmt.Fprintf(&b, "\ncrossover: tier-aware broadcast first beats flat-optimal at ratio %d\n", crossover)
	} else {
		b.WriteString("\ncrossover: not reached in the swept range\n")
	}
	fmt.Fprintf(&b, "fig4 summation (deadline 28): flat machine %d, tiered machine %d cycles\n", sumFlat, sumTier)
	fmt.Fprintf(&b, "fft remap (N=%d, P=%d, capacity off): flat machine %d, tiered machine %d cycles\n", remapN, remapP, remapFlat, remapTier)
	fmt.Fprintf(&b, "fft remap (capacity on):  flat machine %d, tiered machine %d cycles\n", remapFlatCap, remapTierCap)
	b.WriteString("  (the global ceil(L/g) capacity bound, sized for the cluster tier, throttles the\n" +
		"   fast intra-node links: cheaper links + the same in-flight bound = more stalls)\n")
	return Report{
		ID:    id,
		Title: "Hierarchical LogP: tier-aware trees vs flat-optimal schedules on a two-tier machine",
		Checks: []Check{
			check("simulation matches the per-link walk for both trees at every ratio", predicted,
				"flat %v tier %v", flatSim, tierSim),
			check("goroutine and flat engines agree cycle-for-cycle under tiered parameters", enginesOK, ""),
			check("sharded kernel reproduces the sequential result under tiered parameters", shardedOK, "4 shards vs 1"),
			check("uniform anchor: flat-optimal is not beaten when the tiers coincide", anchorOK,
				"ratio 1: flat %d vs tier %d", first.flatSim, first.tierSim),
			check("tier-aware broadcast strictly beats flat-optimal once tiers diverge", strictWin,
				"ratio %d: tier %d vs flat %d", ratios[len(ratios)-1], last.tierSim, last.flatSim),
			check("fig4 summation finishes no later on the tiered machine, sum exact",
				sumOK && sumTier <= sumFlat, "flat %d vs tiered %d", sumFlat, sumTier),
			check("fft remap (capacity off) finishes no later on the tiered machine, engines agree",
				remapEng && remapEngCap && remapTier <= remapFlat, "flat %d vs tiered %d", remapFlat, remapTier),
		},
		Text: b.String(),
	}
}

// fig4OnTiers runs the Figure 4 optimal summation schedule on the flat
// machine and on a two-tier machine with the same cluster parameters,
// returning both times and whether both runs produced the exact sum.
func fig4OnTiers(params core.Params, node topo.Link, ppn int) (flatTime, tierTime int64, sumOK bool, err error) {
	s, err := core.OptimalSummation(params, 28)
	if err != nil {
		return 0, 0, false, err
	}
	values := make([]float64, s.TotalValues)
	var want float64
	for i := range values {
		values[i] = float64(i + 1)
		want += values[i]
	}
	dist, err := collective.DistributeInputs(s, values)
	if err != nil {
		return 0, 0, false, err
	}
	run := func(cfg logp.Config) (int64, float64, error) {
		var got float64
		res, err := logp.Run(cfg, func(p *logp.Proc) {
			if sum, ok := collective.SumOptimal(p, s, 1, dist[p.ID()]); ok {
				got = sum
			}
		})
		return res.Time, got, err
	}
	flatTime, gotFlat, err := run(logp.Config{Params: params})
	if err != nil {
		return 0, 0, false, err
	}
	model, err := topo.TwoTier(params, ppn, node)
	if err != nil {
		return 0, 0, false, err
	}
	tierTime, gotTier, err := run(logp.Config{Params: params, Topology: model})
	if err != nil {
		return 0, 0, false, err
	}
	return flatTime, tierTime, gotFlat == want && gotTier == want, nil
}

// remapOnTiers runs the staggered FFT remap program on the flat machine and
// on a two-tier machine, each on both engines, returning the two times and
// whether the engines agreed on both machines.
func remapOnTiers(params core.Params, node topo.Link, ppn, n int, nocap bool) (flatTime, tierTime int64, enginesOK bool, err error) {
	run := func(cfg logp.Config) (int64, bool, error) {
		gInst, err := progs.Build("fftremap", params, progs.Args{N: n})
		if err != nil {
			return 0, false, err
		}
		gRes, err := logp.RunProgram(cfg, gInst.Prog)
		if err != nil {
			return 0, false, err
		}
		fInst, err := progs.Build("fftremap", params, progs.Args{N: n})
		if err != nil {
			return 0, false, err
		}
		fRes, err := flat.Run(cfg, fInst.Prog, 1)
		if err != nil {
			return 0, false, err
		}
		return fRes.Time, reflect.DeepEqual(gRes, fRes), nil
	}
	flatTime, okFlat, err := run(logp.Config{Params: params, DisableCapacity: nocap})
	if err != nil {
		return 0, 0, false, err
	}
	model, err := topo.TwoTier(params, ppn, node)
	if err != nil {
		return 0, 0, false, err
	}
	tierTime, okTier, err := run(logp.Config{Params: params, Topology: model, DisableCapacity: nocap})
	if err != nil {
		return 0, 0, false, err
	}
	return flatTime, tierTime, okFlat && okTier, nil
}
