// Package experiments regenerates every table and figure of the paper's
// evaluation from the simulators and analytical schedules in this
// repository. Each experiment returns a Report containing the rendered
// data and a set of qualitative checks (orderings, ratios, knees) that
// encode what the paper's figure shows; cmd/figures prints them and the
// repository benchmarks execute them.
package experiments

import (
	"fmt"
	"strings"
)

// Check is one qualitative assertion an experiment makes about its own
// results — the "shape" of the paper's figure.
type Check struct {
	Name   string
	Pass   bool
	Detail string
}

// Report is one regenerated table or figure.
type Report struct {
	ID     string // e.g. "fig3", "table1"
	Title  string
	Text   string // rendered tables / series / schedule art
	Checks []Check
}

// Failed returns the failing checks.
func (r Report) Failed() []Check {
	var out []Check
	for _, c := range r.Checks {
		if !c.Pass {
			out = append(out, c)
		}
	}
	return out
}

// String renders the report with its checks.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n\n%s\n", r.ID, r.Title, r.Text)
	for _, c := range r.Checks {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %s — %s\n", mark, c.Name, c.Detail)
	}
	return b.String()
}

func check(name string, pass bool, format string, args ...any) Check {
	return Check{Name: name, Pass: pass, Detail: fmt.Sprintf(format, args...)}
}

// Scale trades fidelity for speed: 1 is the scaled-down default used by
// tests and benchmarks; larger values enlarge problem sizes toward the
// paper's (the paper's CM-5 runs use 128 processors and up to 16M-point
// FFTs, which are minutes of simulation).
type Scale int

// clamp returns at least 1.
func (s Scale) clamp() int {
	if s < 1 {
		return 1
	}
	return int(s)
}
