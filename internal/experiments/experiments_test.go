package experiments

import (
	"strings"
	"testing"
)

func assertReport(t *testing.T, r Report, wantID string) {
	t.Helper()
	if r.ID != wantID {
		t.Fatalf("report id %q, want %q", r.ID, wantID)
	}
	if strings.TrimSpace(r.Text) == "" {
		t.Errorf("%s: empty report text", r.ID)
	}
	for _, c := range r.Failed() {
		t.Errorf("%s: check %q failed: %s", r.ID, c.Name, c.Detail)
	}
	if !strings.Contains(r.String(), r.Title) {
		t.Errorf("%s: String() missing title", r.ID)
	}
}

func TestFig2(t *testing.T) { assertReport(t, Fig2(), "fig2") }
func TestFig3(t *testing.T) { assertReport(t, Fig3(), "fig3") }
func TestFig4(t *testing.T) { assertReport(t, Fig4(), "fig4") }
func TestFig5(t *testing.T) { assertReport(t, Fig5(), "fig5") }

func TestFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated FFT sweep")
	}
	t.Parallel()
	assertReport(t, Fig6(1), "fig6")
}

func TestFig7(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated FFT sweep")
	}
	t.Parallel()
	assertReport(t, Fig7(1), "fig7")
}

func TestFig8(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated FFT sweep")
	}
	t.Parallel()
	assertReport(t, Fig8(1), "fig8")
}

func TestTableAvgDistance(t *testing.T) {
	t.Parallel()
	assertReport(t, TableAvgDistance(), "table-dist")
}

func TestTable1(t *testing.T) { assertReport(t, Table1(), "table1") }

func TestNetworkSaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("packet sweep")
	}
	t.Parallel()
	assertReport(t, NetworkSaturation(1), "netsat")
}

func TestCapacitySaturation(t *testing.T) {
	if testing.Short() {
		t.Skip("16-seed load sweep")
	}
	t.Parallel()
	assertReport(t, CapacitySaturation(1), "saturation")
}

func TestLULayouts(t *testing.T) {
	t.Parallel()
	assertReport(t, LULayouts(1), "lu")
}

func TestSortComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated sorts")
	}
	t.Parallel()
	assertReport(t, SortComparison(1), "sort")
}

func TestCCStudy(t *testing.T) {
	t.Parallel()
	assertReport(t, CCStudy(1), "cc")
}

func TestModelComparison(t *testing.T) { assertReport(t, ModelComparison(), "models") }
func TestCapacityAblation(t *testing.T) {
	t.Parallel()
	assertReport(t, CapacityAblation(), "capacity")
}
func TestBroadcastSweep(t *testing.T) { assertReport(t, BroadcastSweep(), "bcast-sweep") }

func TestMultithreading(t *testing.T) {
	t.Parallel()
	assertReport(t, Multithreading(), "multithreading")
}

func TestLongMessages(t *testing.T) { assertReport(t, LongMessages(), "longmsg") }

func TestScaleClamp(t *testing.T) {
	if Scale(0).clamp() != 1 || Scale(-3).clamp() != 1 || Scale(4).clamp() != 4 {
		t.Error("clamp wrong")
	}
}

func TestReportFailedFiltering(t *testing.T) {
	r := Report{ID: "x", Checks: []Check{
		{Name: "a", Pass: true},
		{Name: "b", Pass: false, Detail: "boom"},
	}}
	f := r.Failed()
	if len(f) != 1 || f[0].Name != "b" {
		t.Errorf("failed = %v", f)
	}
	if !strings.Contains(r.String(), "[FAIL] b") || !strings.Contains(r.String(), "[PASS] a") {
		t.Errorf("render:\n%s", r.String())
	}
}

func TestSurfaceToVolume(t *testing.T) {
	t.Parallel()
	assertReport(t, SurfaceToVolume(1), "surface")
}

func TestOverlapFFT(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated FFT runs")
	}
	t.Parallel()
	assertReport(t, OverlapFFT(), "overlap")
}

func TestPatternGaps(t *testing.T) {
	if testing.Short() {
		t.Skip("packet sweeps")
	}
	t.Parallel()
	assertReport(t, PatternGaps(1), "patterns")
}

func TestParameterSpace(t *testing.T) { assertReport(t, ParameterSpace(), "paramspace") }

func TestPRAMEmulation(t *testing.T) {
	t.Parallel()
	assertReport(t, PRAMEmulation(), "pram")
}

func TestRobustness(t *testing.T) {
	t.Parallel()
	assertReport(t, Robustness(), "robustness")
}

func TestBSPComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated FFT runs")
	}
	t.Parallel()
	assertReport(t, BSPComparison(1), "bsp")
}

func TestActiveMessages(t *testing.T) { assertReport(t, ActiveMessages(), "am") }

func TestChaos(t *testing.T) {
	t.Parallel()
	assertReport(t, Chaos(), "chaos")
}
