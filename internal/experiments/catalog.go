package experiments

import "time"

// Entry is one runnable experiment in the catalog. Experiments whose
// problem sizes do not scale ignore the Scale argument.
type Entry struct {
	ID  string
	Run func(Scale) Report
}

// Catalog lists every experiment in the order the paper presents them.
func Catalog() []Entry {
	fixed := func(f func() Report) func(Scale) Report {
		return func(Scale) Report { return f() }
	}
	return []Entry{
		{"fig2", fixed(Fig2)},
		{"fig3", fixed(Fig3)},
		{"fig4", fixed(Fig4)},
		{"fig5", fixed(Fig5)},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"table-dist", fixed(TableAvgDistance)},
		{"table1", fixed(Table1)},
		{"netsat", NetworkSaturation},
		{"saturation", CapacitySaturation},
		{"lu", LULayouts},
		{"sort", SortComparison},
		{"cc", CCStudy},
		{"models", fixed(ModelComparison)},
		{"capacity", fixed(CapacityAblation)},
		{"bcast-sweep", fixed(BroadcastSweep)},
		{"multithreading", fixed(Multithreading)},
		{"longmsg", fixed(LongMessages)},
		{"surface", SurfaceToVolume},
		{"overlap", fixed(OverlapFFT)},
		{"patterns", PatternGaps},
		{"paramspace", fixed(ParameterSpace)},
		{"pram", fixed(PRAMEmulation)},
		{"robustness", fixed(Robustness)},
		{"bsp", BSPComparison},
		{"am", fixed(ActiveMessages)},
		{"whatif", fixed(WhatIf)},
		{"chaos", fixed(Chaos)},
		{"pscale", PScaling},
		{"hiertree", HierTree},
		{"shardbalance", ShardBalance},
	}
}

// RunAll regenerates every experiment at the given scale, running them
// concurrently on the parallel runner at the process-wide default bound
// (experiments with internal sweeps additionally parallelize their own
// items). The reports come back in catalog order and are identical to
// running each entry sequentially. An observer registered with SetObserver
// is notified as each entry finishes.
func RunAll(scale Scale) []Report {
	return Pool{Workers: Parallelism()}.RunAll(scale)
}

// RunAll regenerates every experiment at the given scale on this pool's
// worker bound; see the package-level RunAll for the result contract. Note
// the catalog experiments' internal sweeps still use the process-wide
// default bound.
func (p Pool) RunAll(scale Scale) []Report {
	cat := Catalog()
	obs := loadObserver()
	return MapIndexed(p.bound(), len(cat), func(i int) Report {
		start := time.Now()
		rep := cat[i].Run(scale)
		if obs != nil {
			obs(Observation{ID: cat[i].ID, Index: i, Total: len(cat), Wall: time.Since(start)})
		}
		return rep
	})
}
