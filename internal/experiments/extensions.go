package experiments

import (
	"fmt"
	"math/rand"

	"github.com/logp-model/logp/internal/algo/fft"
	"github.com/logp-model/logp/internal/algo/lu"
	"github.com/logp-model/logp/internal/algo/matmul"
	"github.com/logp-model/logp/internal/algo/stencil"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/stats"
	"github.com/logp-model/logp/internal/vp"
)

// Multithreading regenerates the Section 3.2 latency-masking argument: one
// physical processor hosting V virtual processors that issue remote round
// trips. Throughput rises with V while the request pipeline fills and
// saturates at the bandwidth bound 1/g once about RTT/g virtual processors
// are in flight; context-switch costs (which the base model deliberately
// does not charge) erode the technique.
func Multithreading() Report {
	m := logp.Config{Params: core.Params{P: 9, L: 64, O: 1, G: 8}}
	rtt := 2 * m.Params.PointToPoint()
	vstar := int(rtt / m.Params.SendInterval())
	sweep := []int{1, 2, 4, vstar / 2, vstar, 2 * vstar}
	base := vp.Config{Machine: m, RequestsPerVP: 30, WorkPerReply: 1}
	// Each VP count is an independent machine run (vp.Sweep unrolled onto
	// the parallel runner).
	type vpOut struct {
		res vp.Result
		err error
	}
	outs := mapIndexed(len(sweep), func(i int) vpOut {
		c := base
		c.VPs = sweep[i]
		r, err := vp.Run(c)
		return vpOut{res: r, err: err}
	})
	results := make([]vp.Result, len(outs))
	for i, o := range outs {
		if o.err != nil {
			return Report{ID: "multithreading", Checks: []Check{check("sweep", false, "%v", o.err)}}
		}
		results[i] = o.res
	}
	tb := stats.Table{Header: []string{"virtual procs", "throughput (req/cycle)", "vs 1 VP", "capacity stalls"}}
	var tput []float64
	var stalls []int64
	for i, r := range results {
		tb.Add(sweep[i], fmt.Sprintf("%.4f", r.Throughput), fmt.Sprintf("%.1fx", r.Throughput/results[0].Throughput), r.Stall)
		tput = append(tput, r.Throughput)
		stalls = append(stalls, r.Stall)
	}
	// With an expensive context switch, the gains shrink (Section 6.3's
	// critique of PRAM-style parallel slackness).
	costly := base
	costly.ContextSwitchCost = 40
	costly.VPs = vstar
	cres, err := vp.Run(costly)
	if err != nil {
		return Report{ID: "multithreading", Checks: []Check{check("costly run", false, "%v", err)}}
	}
	ceiling := 1 / float64(m.Params.SendInterval())
	text := tb.String()
	text += fmt.Sprintf("\nsaturation at ~RTT/g = %d VPs; bandwidth bound 1/g = %.4f req/cycle\n", vstar, ceiling)
	text += fmt.Sprintf("with a 40-cycle context switch at %d VPs: %.4f req/cycle\n", vstar, cres.Throughput)
	atStar := tput[len(tput)-2]
	beyond := tput[len(tput)-1]
	return Report{
		ID:    "multithreading",
		Title: "Latency masking by multithreading and its limits (Section 3.2)",
		Text:  text,
		Checks: []Check{
			check("throughput rises while the pipeline fills", tput[2] > 2*tput[0], "4 VPs %.4f vs 1 VP %.4f", tput[2], tput[0]),
			check("saturates near the bandwidth bound 1/g", atStar > ceiling*0.8 && atStar <= ceiling*1.01, "%.4f vs %.4f", atStar, ceiling),
			check("no gain beyond the pipeline limit", beyond <= atStar*1.1, "%.4f vs %.4f", beyond, atStar),
			check("oversubscription does not collapse (launch stalls are brief)", beyond >= atStar*0.8 && stalls[0] == 0, "%.4f vs %.4f, stalls %v", beyond, atStar, stalls),
			check("context switching erodes the technique", cres.Throughput < atStar*0.8, "%.4f vs %.4f", cres.Throughput, atStar),
		},
	}
}

// SurfaceToVolume regenerates the Section 6.4 argument against network
// models: "wherever problems have a local, regular communication pattern,
// such as stencil calculation on a grid, it is easy to lay the data out so
// that only a diminishing fraction of the communication is external ...
// the interprocessor communication diminishes like the surface to volume
// ratio". A Jacobi stencil and a SUMMA matrix multiply are swept over
// per-processor problem sizes; the communication share falls toward zero,
// and the 2D matmul decomposition beats the 1D one by about sqrt(P)/2 in
// communication volume.
func SurfaceToVolume(scale Scale) Report {
	s := scale.clamp()
	m := logp.Config{Params: core.Params{P: 4, L: 20, O: 4, G: 8}}
	tb := stats.Table{Header: []string{"workload", "n", "comm share"}}
	sizes := []int{8 * s, 16 * s, 48 * s}
	type point struct {
		stencilFrac, matmulFrac float64
		fail                    failure
	}
	points := mapIndexed(len(sizes), func(i int) point {
		n := sizes[i]
		rng := rand.New(rand.NewSource(int64(n)))
		g := make([][]float64, n)
		for i := range g {
			g[i] = make([]float64, n)
			for j := range g[i] {
				g[i][j] = rng.Float64()
			}
		}
		_, st, err := stencil.Run(stencil.Config{Machine: m, N: n, Iterations: 4}, g)
		if err != nil {
			return point{fail: fail("surface", check("stencil", false, "%v", err))}
		}
		a, b := lu.Random(n, int64(n)), lu.Random(n, int64(n)+1)
		_, res, err := matmul.Run(matmul.Config{Machine: m, Algo: matmul.SUMMA}, a, b)
		if err != nil {
			return point{fail: fail("surface", check("matmul", false, "%v", err))}
		}
		return point{stencilFrac: st.CommFraction, matmulFrac: 1 - res.BusyFraction()}
	})
	var stencilFracs, matmulFracs []float64
	for i, pt := range points {
		if pt.fail.rep != nil {
			return *pt.fail.rep
		}
		tb.Add("jacobi stencil", sizes[i], fmt.Sprintf("%.1f%%", pt.stencilFrac*100))
		stencilFracs = append(stencilFracs, pt.stencilFrac)
		tb.Add("summa matmul", sizes[i], fmt.Sprintf("%.1f%%", pt.matmulFrac*100))
		matmulFracs = append(matmulFracs, pt.matmulFrac)
	}
	// 1D vs 2D matmul communication volume at a fixed size. Each run draws
	// its own copies of the (deterministic) operand matrices, so the two
	// algorithms can run concurrently without sharing them.
	n := 32 * s
	m16 := logp.Config{Params: core.Params{P: 16, L: 20, O: 4, G: 8}}
	maxRecv := func(alg matmul.Algorithm) int {
		a, b := lu.Random(n, 5), lu.Random(n, 6)
		_, res, err := matmul.Run(matmul.Config{Machine: m16, Algo: alg}, a, b)
		if err != nil {
			return -1
		}
		max := 0
		for _, ps := range res.Procs {
			if ps.MsgsReceived > max {
				max = ps.MsgsReceived
			}
		}
		return max
	}
	algos := []matmul.Algorithm{matmul.RowBroadcast, matmul.SUMMA}
	recvs := mapIndexed(len(algos), func(i int) int { return maxRecv(algos[i]) })
	rows, summa := recvs[0], recvs[1]
	text := tb.String()
	text += fmt.Sprintf("\nmatmul communication per processor at n=%d, P=16: 1D rows %d words, 2D SUMMA %d words (%.1fx)\n",
		n, rows, summa, float64(rows)/float64(summa))
	last := len(stencilFracs) - 1
	return Report{
		ID:    "surface",
		Title: "Surface-to-volume: communication share vs problem size (Section 6.4)",
		Text:  text,
		Checks: []Check{
			check("stencil communication share shrinks", stencilFracs[last] < stencilFracs[0], "%.2f -> %.2f", stencilFracs[0], stencilFracs[last]),
			check("matmul communication share shrinks", matmulFracs[last] < matmulFracs[0], "%.2f -> %.2f", matmulFracs[0], matmulFracs[last]),
			check("large problems are compute-bound", stencilFracs[last] < 0.35 && matmulFracs[last] < 0.35, "stencil %.2f, matmul %.2f", stencilFracs[last], matmulFracs[last]),
			check("2D decomposition communicates ~sqrt(P)/2 less", float64(rows)/float64(summa) > 1.5, "%.1fx", float64(rows)/float64(summa)),
		},
	}
}

// LongMessages regenerates the Section 5.4 discussion: bulk transfers with
// and without a network DMA coprocessor. Without one, the overhead o is
// paid per word; with one, setup costs o once and the stream overlaps
// computation — which "can at best double the performance of each node".
func LongMessages() Report {
	params := core.Params{P: 2, L: 200, O: 66, G: 132} // the CM-5 calibration
	const k = 64
	tb := stats.Table{Header: []string{"mode", "k-word transfer", "sender engaged", "balanced-workload time"}}

	measure := func(cop bool) (total, engaged, balanced int64) {
		c := logp.Config{Params: params, Coprocessor: cop}
		res, err := logp.Run(c, func(p *logp.Proc) {
			if p.ID() == 0 {
				p.SendBulk(1, 0, nil, k)
				return
			}
			p.Recv()
		})
		if err != nil {
			return -1, -1, -1
		}
		total = res.Time
		engaged = res.Procs[0].SendOverhead
		// Balanced workload: rounds of one k-word send plus equal compute.
		work := int64(k) * params.O
		resB, err := logp.Run(c, func(p *logp.Proc) {
			if p.ID() == 0 {
				for r := 0; r < 10; r++ {
					p.SendBulk(1, 0, nil, k)
					p.Compute(work)
				}
				return
			}
			for r := 0; r < 10; r++ {
				p.Recv()
			}
		})
		if err != nil {
			return -1, -1, -1
		}
		return total, engaged, resB.Time
	}
	type mOut struct{ total, engaged, balanced int64 }
	modes := mapIndexed(2, func(i int) mOut {
		t, e, b := measure(i == 1)
		return mOut{t, e, b}
	})
	pioTotal, pioEngaged, pioBalanced := modes[0].total, modes[0].engaged, modes[0].balanced
	dmaTotal, dmaEngaged, dmaBalanced := modes[1].total, modes[1].engaged, modes[1].balanced
	tb.Add("PIO (o per word)", pioTotal, pioEngaged, pioBalanced)
	tb.Add("DMA coprocessor", dmaTotal, dmaEngaged, dmaBalanced)
	text := tb.String()
	speedup := float64(pioBalanced) / float64(dmaBalanced)
	logGP := 2*params.O + int64(k-1)*params.G + params.L
	text += fmt.Sprintf("\nDMA transfer time = 2o+(k-1)g+L = %d; balanced-workload speedup %.2fx (at best 2x)\n", logGP, speedup)
	return Report{
		ID:    "longmsg",
		Title: "Long messages with and without a network coprocessor (Section 5.4)",
		Text:  text,
		Checks: []Check{
			check("DMA transfer matches the LogGP formula", dmaTotal == logGP, "%d vs %d", dmaTotal, logGP),
			check("DMA frees the processor (engaged o only)", dmaEngaged == params.O, "engaged %d", dmaEngaged),
			check("coprocessor speedup is real but at best 2x", speedup > 1.2 && speedup <= 2.0, "%.2fx", speedup),
		},
	}
}

// OverlapFFT regenerates Section 4.1.5: merging the remap into the
// computation phases. "In future machines we expect architectural
// innovations ... to significantly reduce the value of o with respect to
// g"; on such a machine the fused schedule fills the g-2o transmission
// idle with the final stage's butterflies, while on the CM-5 (o ~ g/2)
// there is less to reclaim.
func OverlapFFT() Report {
	const n = 1 << 12
	input := fftInput(n, 3)
	run := func(o int64, overlap bool) (int64, error) {
		m := fft.CM5Machine(8)
		m.Params.O = o
		cfg := fft.Config{N: n, Machine: m, Cost: fft.CM5Cost(), Schedule: fft.StaggeredSchedule, Overlap: overlap}
		_, _, res, err := fft.Run(cfg, append([]complex128(nil), input...))
		return res.Time, err
	}
	tb := stats.Table{Header: []string{"machine", "plain", "overlapped", "saving"}}
	type row struct{ plain, fused int64 }
	var future, cm5 row
	machines := []struct {
		name string
		o    int64
		dst  *row
	}{{"future (o=6)", 6, &future}, {"CM-5 (o=66)", 66, &cm5}}
	// Four independent runs: (machine, overlap) pairs.
	type cell struct {
		time int64
		err  error
	}
	cells := mapIndexed(len(machines)*2, func(i int) cell {
		t, err := run(machines[i/2].o, i%2 == 1)
		return cell{time: t, err: err}
	})
	for i, r := range machines {
		plain, fused := cells[2*i], cells[2*i+1]
		if plain.err != nil {
			return Report{ID: "overlap", Checks: []Check{check(r.name, false, "%v", plain.err)}}
		}
		if fused.err != nil {
			return Report{ID: "overlap", Checks: []Check{check(r.name, false, "%v", fused.err)}}
		}
		r.dst.plain, r.dst.fused = plain.time, fused.time
		tb.Add(r.name, r.dst.plain, r.dst.fused,
			fmt.Sprintf("%.1f%%", 100*float64(r.dst.plain-r.dst.fused)/float64(r.dst.plain)))
	}
	futureSave := float64(future.plain-future.fused) / float64(future.plain)
	cm5Save := float64(cm5.plain-cm5.fused) / float64(cm5.plain)
	return Report{
		ID:    "overlap",
		Title: "Overlapping communication with computation in the FFT (Section 4.1.5)",
		Text:  tb.String(),
		Checks: []Check{
			check("overlap helps when o << g", future.fused < future.plain && futureSave > 0.02, "%.1f%%", futureSave*100),
			check("less to gain when o ~ g (the CM-5)", cm5Save <= futureSave, "%.1f%% vs %.1f%%", cm5Save*100, futureSave*100),
		},
	}
}
