package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The experiment harness runs many independent simulations per figure —
// problem-size sweeps, schedule variants, load sweeps. Each simulation is a
// self-contained Machine (or packet network) with its own kernel and its own
// seeded random source, so runs share no mutable state and can execute
// concurrently. MapIndexed is the one primitive every converted sweep uses:
// it evaluates f(0..n-1) on a bounded worker pool and assembles the results
// in input order. Because each f(i) is deterministic in i and the output
// slot is fixed by i, the assembled slice — and therefore every Report built
// from it — is bit-identical to what the sequential loop produced.
//
// The worker bound is threaded as an explicit value (MapIndexed's workers
// argument, Pool.Workers) so independent callers — concurrent jobs inside
// the logpsimd daemon, tests — can pick their own bound without racing on
// package state. SetParallelism remains as the process-wide default the
// command-line binaries configure once at startup.

// maxParallel holds the configured process-wide default bound; 0 means
// GOMAXPROCS.
var maxParallel atomic.Int64

// SetParallelism sets the process-wide default worker bound used by the
// package-level sweep entry points (RunAll and every catalog experiment).
// n <= 0 restores the default, runtime.GOMAXPROCS(0). Parallelism only
// changes wall-clock time, never results: sweeps assemble their outputs in
// input order and each simulation is independently seeded. Callers that need
// an independent bound (the simulation daemon's sweep endpoint) should pass
// it to MapIndexed or Pool instead of mutating this global.
func SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	maxParallel.Store(int64(n))
}

// Parallelism reports the resolved process-wide default bound.
func Parallelism() int {
	if n := int(maxParallel.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Pool is a value-typed handle on the parallel runner: a worker bound that
// travels with the caller instead of living in package state. The zero value
// uses runtime.GOMAXPROCS(0). A Pool is trivially copyable and safe for
// concurrent use; two Pools never interfere.
type Pool struct {
	// Workers bounds the simulations in flight; <= 0 means GOMAXPROCS.
	Workers int
}

// bound resolves the pool's worker count.
func (p Pool) bound() int {
	if p.Workers > 0 {
		return p.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// MapIndexed computes [f(0), f(1), ..., f(n-1)] with at most workers
// invocations in flight (workers <= 0 means GOMAXPROCS). Workers draw
// indices from an atomic counter, so no index is computed twice and the
// schedule adapts to uneven item costs; each result lands in its own slot,
// so the output order is the input order regardless of completion order.
func MapIndexed[T any](workers, n int, f func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = f(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = f(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// mapIndexed is MapIndexed at the process-wide default bound: the form every
// catalog experiment uses, preserved so the CLI's SetParallelism keeps
// steering the whole figure pipeline.
func mapIndexed[T any](n int, f func(i int) T) []T {
	return MapIndexed(Parallelism(), n, f)
}

// failure is the per-item error slot used by converted sweeps: the item that
// would have made the sequential loop return early records the Report it
// would have returned. After the map, callers scan the items in input order
// and return the first recorded failure, so the error a caller sees is the
// same one the sequential loop hit first.
type failure struct {
	rep *Report
}

func fail(id string, c Check) failure {
	return failure{rep: &Report{ID: id, Checks: []Check{c}}}
}
