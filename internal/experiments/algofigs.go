package experiments

import (
	"fmt"
	"math/rand"

	"github.com/logp-model/logp/internal/algo/cc"
	"github.com/logp-model/logp/internal/algo/lu"
	parsort "github.com/logp-model/logp/internal/algo/sort"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/models"
	"github.com/logp-model/logp/internal/stats"
)

// simMachine is the moderate machine used by the algorithm studies (the
// CM-5 ratios scaled down so that simulated runs stay fast).
func simMachine(p int) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: 20, O: 4, G: 8}}
}

// LULayouts regenerates the Section 4.2.1 study: factorization time and
// communication volume for the column-cyclic, blocked-grid and
// scattered-grid layouts. The paper's conclusions: the grid layouts cut
// communication by about sqrt(P); the blocked grid loses to load imbalance;
// the scattered grid wins — "the fastest Linpack benchmark programs
// actually employ a scattered grid layout".
func LULayouts(scale Scale) Report {
	n := 32 * scale.clamp()
	P := 16
	a := lu.Random(n, 77)
	tb := stats.Table{Header: []string{"layout", "sim time", "max msgs recvd", "compute max/min", "residual ok"}}
	times := map[lu.Layout]int64{}
	recvs := map[lu.Layout]int{}
	spreads := map[lu.Layout]float64{}
	for _, layout := range []lu.Layout{lu.ColumnCyclic, lu.BlockedGrid, lu.ScatteredGrid} {
		f, perm, res, err := lu.Run(lu.Config{Machine: simMachine(P), Layout: layout}, a.Clone())
		if err != nil {
			return Report{ID: "lu", Checks: []Check{check(layout.String(), false, "%v", err)}}
		}
		maxR := 0
		minC, maxC := int64(1)<<62, int64(0)
		for _, s := range res.Procs {
			if s.MsgsReceived > maxR {
				maxR = s.MsgsReceived
			}
			if s.Compute < minC {
				minC = s.Compute
			}
			if s.Compute > maxC {
				maxC = s.Compute
			}
		}
		if minC == 0 {
			minC = 1
		}
		resid := lu.ResidualPALU(a, f, perm)
		times[layout] = res.Time
		recvs[layout] = maxR
		spreads[layout] = float64(maxC) / float64(minC)
		tb.Add(layout.String(), res.Time, maxR, spreads[layout], resid < 1e-9*float64(n))
	}
	text := tb.String()
	text += fmt.Sprintf("\nn=%d, P=%d; grid receives %.1fx less than column; scattered beats blocked by %.2fx\n",
		n, P, float64(recvs[lu.ColumnCyclic])/float64(recvs[lu.ScatteredGrid]),
		float64(times[lu.BlockedGrid])/float64(times[lu.ScatteredGrid]))
	return Report{
		ID:    "lu",
		Title: "LU decomposition layouts (Section 4.2.1)",
		Text:  text,
		Checks: []Check{
			check("grid layout communicates less than column", recvs[lu.ScatteredGrid] < recvs[lu.ColumnCyclic], "%d vs %d", recvs[lu.ScatteredGrid], recvs[lu.ColumnCyclic]),
			check("scattered grid beats blocked grid", times[lu.ScatteredGrid] < times[lu.BlockedGrid], "%d vs %d", times[lu.ScatteredGrid], times[lu.BlockedGrid]),
			check("blocked grid shows load imbalance", spreads[lu.BlockedGrid] > 2*spreads[lu.ScatteredGrid], "spread %.1f vs %.1f", spreads[lu.BlockedGrid], spreads[lu.ScatteredGrid]),
		},
	}
}

// SortComparison regenerates the Section 4.2.2 study: splitter sort's
// compute-remap-compute pattern versus bitonic sort's oblivious exchanges,
// across per-processor chunk sizes.
func SortComparison(scale Scale) Report {
	P := 8
	sizes := []int{512, 2048, 8192}
	for i := range sizes {
		sizes[i] *= scale.clamp()
	}
	rng := rand.New(rand.NewSource(3))
	var xs, split, bitonic, column []float64
	for _, n := range sizes {
		keys := make([]float64, n)
		for i := range keys {
			keys[i] = rng.NormFloat64()
		}
		run := func(algo parsort.Algorithm) float64 {
			_, st, err := parsort.Run(parsort.Config{Machine: simMachine(P), Algo: algo}, keys)
			if err != nil {
				return -1
			}
			return float64(st.Time)
		}
		xs = append(xs, float64(n))
		split = append(split, run(parsort.Splitter))
		bitonic = append(bitonic, run(parsort.Bitonic))
		column = append(column, run(parsort.Column))
	}
	text := stats.CSV("keys",
		stats.Series{Name: "splitter_cycles", X: xs, Y: split},
		stats.Series{Name: "bitonic_cycles", X: xs, Y: bitonic},
		stats.Series{Name: "column_cycles", X: xs, Y: column},
	)
	last := len(xs) - 1
	text += fmt.Sprintf("\nat n=%d: splitter %.0f vs column %.0f vs bitonic %.0f cycles\n", int(xs[last]), split[last], column[last], bitonic[last])
	return Report{
		ID:    "sort",
		Title: "Parallel sorting: splitter vs column vs bitonic (Section 4.2.2)",
		Text:  text,
		Checks: []Check{
			check("all runs completed", split[last] > 0 && bitonic[last] > 0 && column[last] > 0, ""),
			check("splitter wins at large chunks", split[last] < bitonic[last], "%.0f vs %.0f", split[last], bitonic[last]),
			check("splitter's advantage grows with chunk size", bitonic[last]/split[last] > bitonic[0]/split[0], "%.2f vs %.2f", bitonic[last]/split[last], bitonic[0]/split[0]),
			check("column sort (fixed remaps) beats bitonic's log^2 P exchanges", column[last] < bitonic[last], "%.0f vs %.0f", column[last], bitonic[last]),
		},
	}
}

// CCStudy regenerates the Section 4.2.3 study: contention at component
// representatives, its mitigation by combining, and the compute-bound
// regime on dense graphs.
func CCStudy(scale Scale) Report {
	s := scale.clamp()
	P := 8
	star := cc.Star(256 * s)
	_, naive, err := cc.Run(cc.Config{Machine: simMachine(P), Mode: cc.NaiveMode}, star)
	if err != nil {
		return Report{ID: "cc", Checks: []Check{check("naive", false, "%v", err)}}
	}
	_, comb, err := cc.Run(cc.Config{Machine: simMachine(P), Mode: cc.CombiningMode}, star)
	if err != nil {
		return Report{ID: "cc", Checks: []Check{check("combining", false, "%v", err)}}
	}
	dense := cc.RandomGraph(256*s, 12000*s, 7)
	_, dn, err := cc.Run(cc.Config{Machine: simMachine(P), Mode: cc.CombiningMode}, dense)
	if err != nil {
		return Report{ID: "cc", Checks: []Check{check("dense", false, "%v", err)}}
	}
	sparse := cc.Path(64 * s)
	_, sp, err := cc.Run(cc.Config{Machine: simMachine(P), Mode: cc.CombiningMode}, sparse)
	if err != nil {
		return Report{ID: "cc", Checks: []Check{check("sparse", false, "%v", err)}}
	}
	tb := stats.Table{Header: []string{"workload", "mode", "time", "max recv by a proc", "compute", "comm"}}
	tb.Add("star", "naive", naive.Time, naive.MaxRecvByProc, naive.ComputeCycles, naive.CommCycles)
	tb.Add("star", "combining", comb.Time, comb.MaxRecvByProc, comb.ComputeCycles, comb.CommCycles)
	tb.Add("dense random", "combining", dn.Time, dn.MaxRecvByProc, dn.ComputeCycles, dn.CommCycles)
	tb.Add("path (sparse)", "combining", sp.Time, sp.MaxRecvByProc, sp.ComputeCycles, sp.CommCycles)
	return Report{
		ID:    "cc",
		Title: "Connected components: contention and its mitigation (Section 4.2.3)",
		Text:  tb.String(),
		Checks: []Check{
			check("combining mitigates hub contention", comb.MaxRecvByProc < naive.MaxRecvByProc && comb.Time < naive.Time, "recv %d vs %d", comb.MaxRecvByProc, naive.MaxRecvByProc),
			check("dense graphs are compute-bound", dn.ComputeCycles > dn.CommCycles, "compute %d vs comm %d", dn.ComputeCycles, dn.CommCycles),
			check("sparse graphs are communication-bound", sp.CommCycles > sp.ComputeCycles, "comm %d vs compute %d", sp.CommCycles, sp.ComputeCycles),
		},
	}
}

// ModelComparison regenerates the Section 6 argument quantitatively: the
// predicted broadcast and 10k-value summation times of the four models on
// the CM-5 parameters and on an idealized low-overhead machine.
func ModelComparison() Report {
	machines := []struct {
		name string
		p    core.Params
	}{
		{"CM-5 (ticks)", core.Params{P: 128, L: 200, O: 66, G: 132}},
		{"low-overhead", core.Params{P: 128, L: 20, O: 1, G: 4}},
	}
	tb := stats.Table{Header: []string{"machine", "model", "broadcast", "sum 10k"}}
	var pramB, logpB int64 // on the CM-5 parameters (the first machine)
	bspGEQ, postalGEQ := true, true
	for mi, m := range machines {
		for _, mod := range models.All() {
			b := mod.Broadcast(m.p)
			s := mod.Sum(m.p, 10000)
			tb.Add(m.name, mod.Name(), b, s)
			switch mod.Name() {
			case "PRAM":
				if mi == 0 {
					pramB = b
				}
			case "LogP":
				if mi == 0 {
					logpB = b
				}
				if (models.BSP{}).Broadcast(m.p) < b {
					bspGEQ = false
				}
				if (models.Postal{}).Broadcast(m.p) < b {
					postalGEQ = false
				}
			}
		}
	}
	return Report{
		ID:    "models",
		Title: "Model comparison: PRAM vs Postal vs BSP vs LogP (Section 6)",
		Text:  tb.String(),
		Checks: []Check{
			check("PRAM predicts free communication", pramB <= 1 && logpB > 100*pramB, "%d vs %d", pramB, logpB),
			check("BSP never undercuts the optimal LogP schedule", bspGEQ, ""),
			check("postal never undercuts the optimal LogP schedule", postalGEQ, ""),
		},
	}
}

// CapacityAblation shows why the capacity constraint exists: the naive
// remap's flood pattern with and without the ceil(L/g) limit, and the
// multithreading bound of Section 3.2.
func CapacityAblation() Report {
	params := core.Params{P: 8, L: 24, O: 2, G: 4}
	flood := func(disable bool) (int64, int, int64) {
		cfg := logp.Config{Params: params, DisableCapacity: disable}
		res, err := logp.Run(cfg, func(p *logp.Proc) {
			if p.ID() == 0 {
				for i := 0; i < 7*40; i++ {
					p.Recv()
				}
				return
			}
			for i := 0; i < 40; i++ {
				p.Send(0, 1, i)
			}
		})
		if err != nil {
			return -1, -1, -1
		}
		return res.Time, res.MaxInTransitTo, res.TotalStall()
	}
	tOn, inflightOn, stallOn := flood(false)
	tOff, inflightOff, _ := flood(true)
	tb := stats.Table{Header: []string{"capacity", "time", "max in transit to hub", "stall cycles"}}
	tb.Add("enforced (ceil(L/g)=6)", tOn, inflightOn, stallOn)
	tb.Add("disabled", tOff, inflightOff, int64(0))
	text := tb.String()
	text += fmt.Sprintf("\nmultithreading limit: at most ceil(L/g) = %d virtual processors mask latency (Section 3.2)\n", params.MaxVirtualProcessors())
	return Report{
		ID:    "capacity",
		Title: "Capacity-constraint ablation (Section 3.2 loopholes)",
		Text:  text,
		Checks: []Check{
			check("constraint bounds in-transit count", inflightOn <= params.Capacity(), "%d <= %d", inflightOn, params.Capacity()),
			check("flood stalls senders", stallOn > 0, "%d cycles", stallOn),
			check("disabling it floods the receiver", inflightOff > params.Capacity(), "%d in transit", inflightOff),
		},
	}
}

// BroadcastSweep is the ablation over machine parameters: optimal vs
// binomial vs linear broadcast across a g sweep, showing the optimal
// schedule adapting ("a good algorithm embodies a strategy for adapting to
// different machines").
func BroadcastSweep() Report {
	tb := stats.Table{Header: []string{"params", "optimal", "binomial", "linear", "opt fan-out"}}
	alwaysBest := true
	adapts := false
	var prevFan int
	for _, g := range []int64{1, 4, 16, 64} {
		p := core.Params{P: 64, L: 40, O: 2, G: g}
		s, err := core.OptimalBroadcast(p, 0)
		if err != nil {
			return Report{ID: "bcast-sweep", Checks: []Check{check("schedule", false, "%v", err)}}
		}
		opt := s.Finish
		bin := core.BinomialBroadcastTime(p)
		lin := core.LinearBroadcastTime(p)
		fan := len(s.Sends[0])
		tb.Add(p.String(), opt, bin, lin, fan)
		if opt > bin || opt > lin {
			alwaysBest = false
		}
		if prevFan != 0 && fan != prevFan {
			adapts = true
		}
		prevFan = fan
	}
	return Report{
		ID:    "bcast-sweep",
		Title: "Broadcast schedules across the parameter space (ablation)",
		Text:  tb.String(),
		Checks: []Check{
			check("optimal never loses", alwaysBest, ""),
			check("optimal tree shape adapts to g", adapts, "root fan-out varies"),
		},
	}
}
