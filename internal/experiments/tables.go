package experiments

import (
	"fmt"
	"math"

	"github.com/logp-model/logp/internal/machine"
	"github.com/logp-model/logp/internal/network"
	"github.com/logp-model/logp/internal/stats"
)

// TableAvgDistance regenerates the Section 5.1 average-distance table:
// asymptotic formulas evaluated at P=1024 (the paper's column) next to BFS
// measurements on constructible configurations. The point of the table: for
// practical configurations the topologies differ by only about a factor of
// two (excepting the primitive 2D networks).
func TableAvgDistance() Report {
	rows := []struct {
		display  string
		kind     string
		paper    float64
		topology *network.Topology
		measP    int
	}{
		{"Hypercube", "hypercube", 5, network.Hypercube(6), 64},
		{"Butterfly", "butterfly", 10, network.Butterfly(6), 64},
		{"4deg Fat Tree", "fat-tree-4", 9.33, network.FatTree(4, 3), 64},
		{"3D Torus", "3d-torus", 7.5, network.Mesh3D(4, 4, 4, true), 64},
		{"3D Mesh", "3d-mesh", 10, network.Mesh3D(4, 4, 4, false), 64},
		{"2D Torus", "2d-torus", 16, network.Mesh2D(8, 8, true), 64},
		{"2D Mesh", "2d-mesh", 21, network.Mesh2D(8, 8, false), 64},
	}
	tb := stats.Table{Header: []string{"network", "formula @1024", "paper @1024", "measured (BFS, P=64)", "formula @64"}}
	allClose, measuredTracks := true, true
	var mins, maxs float64 = math.Inf(1), 0
	// The BFS measurement dominates each row's cost; rows are independent.
	type rowOut struct {
		at1024, at64, measured float64
		fail                   failure
	}
	outs := mapIndexed(len(rows), func(i int) rowOut {
		r := rows[i]
		at1024, err := network.AnalyticAverageDistance(r.kind, 1024)
		if err != nil {
			return rowOut{fail: fail("table-dist", check("formula", false, "%v", err))}
		}
		at64, _ := network.AnalyticAverageDistance(r.kind, r.measP)
		return rowOut{at1024: at1024, at64: at64, measured: r.topology.AverageDistance()}
	})
	for i, o := range outs {
		if o.fail.rep != nil {
			return *o.fail.rep
		}
		r := rows[i]
		tb.Add(r.display, o.at1024, r.paper, o.measured, o.at64)
		if math.Abs(o.at1024-r.paper) > 0.45 {
			allClose = false
		}
		if math.Abs(o.measured-o.at64) > 0.35*o.at64 {
			measuredTracks = false
		}
		if o.at1024 < mins {
			mins = o.at1024
		}
		if o.at1024 > maxs && r.kind != "2d-torus" && r.kind != "2d-mesh" {
			maxs = o.at1024
		}
	}
	text := tb.String()
	text += fmt.Sprintf("\nspread at P=1024 excluding 2D networks: %.1f..%.1f (factor %.1f)\n", mins, maxs, maxs/mins)
	return Report{
		ID:    "table-dist",
		Title: "Average inter-node distance by topology (Section 5.1)",
		Text:  text,
		Checks: []Check{
			check("formulas match the paper's column", allClose, ""),
			check("BFS measurements track the formulas", measuredTracks, ""),
			check("topology spread is about a factor of two", maxs/mins <= 2.05, "%.2f", maxs/mins),
		},
	}
}

// Table1 regenerates the unloaded message time table: the T(M=160) column
// recomputed from the primary hardware columns with T = (Tsnd+Trcv) +
// ceil(M/w) + H*r, plus the derived LogP parameters.
func Table1() Report {
	tb := stats.Table{Header: []string{"machine", "network", "cycle ns", "w", "Tsnd+Trcv", "r", "avg H", "T(160) paper", "T(160) model", "derived o us", "derived L us"}}
	allClose := true
	amFasterThanVendor := true
	var vendorCM5, amCM5 float64
	for _, s := range machine.Table1() {
		model := s.UnloadedTime(160, s.AvgHops)
		p := machine.DeriveLogP(s, 1024, 160, s.AvgHops)
		tb.Add(s.Name, s.Network, s.CycleNs, s.WidthW, s.Overhead, s.RouterR, s.AvgHops,
			s.TM160, model, float64(p.O)*s.CycleNs/1000, float64(p.L)*s.CycleNs/1000)
		if math.Abs(model-float64(s.TM160)) > 2 {
			allClose = false
		}
		if s.Name == "CM-5" {
			vendorCM5 = model
		}
		if s.Name == "CM-5 (AM)" {
			amCM5 = model
		}
	}
	if amCM5 >= vendorCM5 {
		amFasterThanVendor = false
	}
	text := tb.String()
	text += "\noverheads dominate: the vendor layers spend 10-100x more in software than in the network\n"
	return Report{
		ID:    "table1",
		Title: "Network timing parameters for a one-way message (Table 1)",
		Text:  text,
		Checks: []Check{
			check("recomputed T(160) matches the published column", allClose, ""),
			check("Active Messages an order of magnitude under the vendor layer", amFasterThanVendor && vendorCM5/amCM5 > 10, "%.0f vs %.0f", vendorCM5, amCM5),
		},
	}
}

// NetworkSaturation regenerates the Section 5.3 behaviour: mean packet
// latency versus offered load on a mesh and a fat tree, flat below the knee
// and exploding past it; hotspot traffic saturates far earlier than uniform.
// (The machine-level capacity knee is the separate "saturation" experiment
// in saturation.go.)
func NetworkSaturation(scale Scale) Report {
	s := scale.clamp()
	horizon := int64(3000 * s)
	loads := []float64{0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.7, 0.9}
	base := network.LoadConfig{RouterDelay: 2, Pattern: network.UniformTraffic, Horizon: horizon, Warmup: horizon / 6, Seed: 42}

	mesh := network.Mesh2D(8, 8, false)
	ft := network.FatTree(4, 3)
	hot := base
	hot.Pattern = network.HotspotTraffic
	// The three load sweeps are independent simulations; run them
	// concurrently and keep the sequential error precedence.
	sweeps := []struct {
		name  string
		top   *network.Topology
		loads []float64
		cfg   network.LoadConfig
	}{
		{"mesh sweep", mesh, loads, base},
		{"fat tree sweep", ft, loads, base},
		{"hotspot sweep", mesh, loads[:5], hot},
	}
	type sweepOut struct {
		res  []network.LoadResult
		fail failure
	}
	outs := mapIndexed(len(sweeps), func(i int) sweepOut {
		s := sweeps[i]
		res, err := network.SaturationSweep(s.top, s.loads, s.cfg)
		if err != nil {
			return sweepOut{fail: fail("netsat", check(s.name, false, "%v", err))}
		}
		return sweepOut{res: res}
	})
	for _, o := range outs {
		if o.fail.rep != nil {
			return *o.fail.rep
		}
	}
	meshRes, ftRes, hotRes := outs[0].res, outs[1].res, outs[2].res

	xs := make([]float64, len(loads))
	meshY := make([]float64, len(loads))
	ftY := make([]float64, len(loads))
	for i := range loads {
		xs[i] = loads[i]
		meshY[i] = meshRes[i].MeanLatency
		ftY[i] = ftRes[i].MeanLatency
	}
	hotY := make([]float64, len(hotRes))
	for i := range hotRes {
		hotY[i] = hotRes[i].MeanLatency
	}
	text := stats.CSV("load",
		stats.Series{Name: "mesh8x8_latency", X: xs, Y: meshY},
		stats.Series{Name: "fattree64_latency", X: xs, Y: ftY},
		stats.Series{Name: "mesh_hotspot_latency", X: xs[:len(hotY)], Y: hotY},
	)
	knee := network.SaturationLoad(meshRes)
	text += fmt.Sprintf("\nmesh saturation knee at offered load ~%.2f\n", knee)

	flatMesh := meshRes[1].MeanLatency < meshRes[0].MeanLatency*1.3
	blowup := meshRes[len(meshRes)-1].MeanLatency > meshRes[0].MeanLatency*4
	hotWorse := hotRes[len(hotRes)-1].MeanLatency > meshRes[4].MeanLatency
	return Report{
		ID:    "netsat",
		Title: "Packet latency vs offered load (Section 5.3)",
		Text:  text,
		Checks: []Check{
			check("latency flat below saturation", flatMesh, "%.1f vs %.1f", meshRes[1].MeanLatency, meshRes[0].MeanLatency),
			check("latency increases sharply at saturation", blowup, "%.1f vs %.1f", meshRes[len(meshRes)-1].MeanLatency, meshRes[0].MeanLatency),
			check("knee exists inside the sweep", !math.IsNaN(knee) && knee > loads[0] && knee < loads[len(loads)-1], "knee %.2f", knee),
			check("hotspot traffic saturates earlier", hotWorse, "hotspot %.1f vs uniform %.1f at load 0.35", hotRes[len(hotRes)-1].MeanLatency, meshRes[4].MeanLatency),
		},
	}
}
