package experiments

import (
	"fmt"
	"reflect"
	"strings"
	"time"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/flat"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/progs"
	"github.com/logp-model/logp/internal/stats"
)

// PScaling sweeps the machine size across four orders of magnitude and runs
// the paper's optimal broadcast tree (Section 4.1) on the goroutine-free
// flat engine at each P. The point is the model's central scaling claim made
// executable at realistic machine sizes: the broadcast completion time grows
// roughly logarithmically in P while the message count grows linearly, and a
// P = 10^6 machine — three orders of magnitude past what one goroutine per
// processor handles comfortably — simulates in seconds. Every run is
// cross-checked against the schedule's analytic finish time, the sharded
// parallel kernel must reproduce the sequential kernel's Result exactly with
// the capacity constraint both off and on, and the smallest size is
// additionally replayed on the goroutine engine, which must agree
// cycle-for-cycle.
func PScaling(scale Scale) Report {
	const id = "pscale"
	base := core.Params{L: 8, O: 2, G: 3}
	sizes := []int{1_000, 10_000, 100_000, 1_000_000 * scale.clamp()}

	type outcome struct {
		predicted int64
		res       logp.Result
		wall      time.Duration
		capWall   time.Duration
		shardedOK bool
		capOK     bool
		failMsg   string
	}
	runs := mapIndexed(len(sizes), func(i int) outcome {
		params := base
		params.P = sizes[i]
		sched, err := core.OptimalBroadcast(params, 0)
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		cfg := logp.Config{Params: params, DisableCapacity: true}
		prog := progs.NewBroadcast(sched, 1, "datum")
		start := time.Now()
		res, err := flat.Run(cfg, prog, 1)
		wall := time.Since(start)
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		sharded, err := flat.Run(cfg, progs.NewBroadcast(sched, 1, "datum"), 4)
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		// Sharded runs do not track the in-transit high-water marks (settling
		// would cross shards); compare everything else exactly.
		norm := res
		norm.MaxInTransitFrom, norm.MaxInTransitTo = 0, 0
		o := outcome{
			predicted: sched.Finish,
			res:       res,
			wall:      wall,
			shardedOK: reflect.DeepEqual(norm, sharded),
		}
		// Capacity on: the same broadcast under the ceil(L/g) in-flight bound
		// (a one-message-per-link tree never hits it, so the schedule timing
		// must not move), sequential against the capacity-sharded kernel with
		// its reserve/commit barrier replay.
		capCfg := logp.Config{Params: params}
		capRes, err := flat.Run(capCfg, progs.NewBroadcast(sched, 1, "datum"), 1)
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		start = time.Now()
		capSharded, err := flat.Run(capCfg, progs.NewBroadcast(sched, 1, "datum"), 4)
		o.capWall = time.Since(start)
		if err != nil {
			return outcome{failMsg: err.Error()}
		}
		// Unlike the capacity-off fast path, the capacity-sharded kernel does
		// settle per-link accounting (at the window barriers), so the
		// in-transit high-water marks are tracked and must match exactly.
		o.capOK = capRes.Time == res.Time && reflect.DeepEqual(capRes, capSharded)
		return o
	})
	for _, o := range runs {
		if o.failMsg != "" {
			return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", o.failMsg)}}
		}
	}

	// Cross-engine spot check at the smallest size: the goroutine reference
	// machine must produce the identical Result.
	smallParams := base
	smallParams.P = sizes[0]
	smallSched, err := core.OptimalBroadcast(smallParams, 0)
	if err != nil {
		return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", err.Error())}}
	}
	gRes, err := logp.RunProgram(logp.Config{Params: smallParams, DisableCapacity: true},
		progs.NewBroadcast(smallSched, 1, "datum"))
	if err != nil {
		return Report{ID: id, Checks: []Check{check("runs completed", false, "%s", err.Error())}}
	}
	crossOK := gRes.Time == runs[0].res.Time && gRes.Messages == runs[0].res.Messages

	ps := make([]float64, len(sizes))
	predicted := make([]float64, len(sizes))
	simulated := make([]float64, len(sizes))
	wallMS := make([]float64, len(sizes))
	rate := make([]float64, len(sizes))
	matched, counted, shardedOK, capOK := true, true, true, true
	for i, o := range runs {
		ps[i] = float64(sizes[i])
		predicted[i] = float64(o.predicted)
		simulated[i] = float64(o.res.Time)
		wallMS[i] = float64(o.wall.Milliseconds())
		rate[i] = float64(o.res.Messages) / o.wall.Seconds()
		if o.res.Time != o.predicted {
			matched = false
		}
		if o.res.Messages != sizes[i]-1 {
			counted = false
		}
		if !o.shardedOK {
			shardedOK = false
		}
		if !o.capOK {
			capOK = false
		}
	}
	last := len(sizes) - 1
	// Completion time must scale like the tree depth, not the machine size:
	// across a 1000x (or larger) P range it may grow by a small constant
	// factor only.
	logGrowth := simulated[last] < 4*simulated[0]
	bigWall := runs[last].wall
	if runs[last].capWall > bigWall {
		bigWall = runs[last].capWall
	}
	ciTime := bigWall < 60*time.Second

	var b strings.Builder
	fmt.Fprintf(&b, "optimal broadcast, L=%d o=%d g=%d, capacity off and on, flat engine (sequential + 4 shards)\n\n",
		base.L, base.O, base.G)
	b.WriteString(stats.CSV("P",
		stats.Series{Name: "predicted_finish", X: ps, Y: predicted},
		stats.Series{Name: "simulated_time", X: ps, Y: simulated},
		stats.Series{Name: "wall_ms", X: ps, Y: wallMS},
		stats.Series{Name: "sim_msgs_per_sec", X: ps, Y: rate},
	))
	return Report{
		ID:    id,
		Title: "Machine-size scaling: optimal broadcast to P = 10^6 on the flat engine",
		Checks: []Check{
			check("simulated time matches the schedule's analytic finish at every P", matched,
				"simulated %v vs predicted %v", simulated, predicted),
			check("every processor reached: P-1 messages at every P", counted, "messages %v", runs[last].res.Messages),
			check("sharded kernel reproduces the sequential Result at every P", shardedOK, "4 shards vs 1"),
			check("capacity-sharded kernel agrees with sequential capacity at every P", capOK,
				"4 shards vs 1, capacity on"),
			check("goroutine engine agrees at P=1000", crossOK,
				"goroutine (time %d, msgs %d) vs flat (time %d, msgs %d)",
				gRes.Time, gRes.Messages, runs[0].res.Time, runs[0].res.Messages),
			check("completion time grows logarithmically, not linearly, in P", logGrowth,
				"time %.0f at P=%.0f vs %.0f at P=%.0f", simulated[0], ps[0], simulated[last], ps[last]),
			check("P=10^6 machine simulates within CI time", ciTime, "%v wall (max of capacity off/on)", bigWall),
		},
		Text: b.String(),
	}
}
