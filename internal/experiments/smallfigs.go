package experiments

import (
	"fmt"
	"strings"

	"github.com/logp-model/logp/internal/algo/fft"
	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/machine"
	"github.com/logp-model/logp/internal/stats"
)

// Fig2 regenerates the microprocessor performance trend: the SPEC series
// and fitted annual growth rates (~54% integer, ~97% floating point).
func Fig2() Report {
	pts := machine.Figure2()
	tb := stats.Table{Header: []string{"year", "machine", "SPECint", "SPECfp"}}
	years := make([]float64, len(pts))
	ints := make([]float64, len(pts))
	fps := make([]float64, len(pts))
	for i, p := range pts {
		tb.Add(int(p.Year), p.Name, p.Integer, p.FP)
		years[i], ints[i], fps[i] = p.Year, p.Integer, p.FP
	}
	ri, err1 := stats.GrowthRate(years, ints)
	rf, err2 := stats.GrowthRate(years, fps)
	text := tb.String()
	text += fmt.Sprintf("\nfitted growth: integer %.0f%%/year, floating point %.0f%%/year\n", ri*100, rf*100)
	return Report{
		ID:    "fig2",
		Title: "Microprocessor performance 1987-1992 (relative to VAX-11/780)",
		Text:  text,
		Checks: []Check{
			check("fits computed", err1 == nil && err2 == nil, "%v %v", err1, err2),
			check("integer ~54%/yr", ri > 0.45 && ri < 0.62, "fitted %.0f%%", ri*100),
			check("floating point ~97%/yr", rf > 0.85 && rf < 1.10, "fitted %.0f%%", rf*100),
		},
	}
}

// Fig3 regenerates the optimal broadcast tree for P=8, L=6, g=4, o=2,
// executes it on the simulated machine, and renders the activity Gantt of
// the figure's right-hand side.
func Fig3() Report {
	params := core.Params{P: 8, L: 6, O: 2, G: 4}
	s, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		return Report{ID: "fig3", Checks: []Check{check("schedule built", false, "%v", err)}}
	}
	cfg := logp.Config{Params: params, CollectTrace: true}
	res, err := logp.Run(cfg, func(p *logp.Proc) {
		collective.Broadcast(p, s, 1, "datum")
	})
	if err != nil {
		return Report{ID: "fig3", Checks: []Check{check("executed", false, "%v", err)}}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v  optimal broadcast\n", params)
	fmt.Fprintf(&b, "receive-complete times: %v (finish %d)\n\n", s.RecvTimes(), s.Finish)
	for proc := 0; proc < params.P; proc++ {
		fmt.Fprintf(&b, "P%d informed at %2d, sends at %v\n", proc, s.RecvDone[proc], sendTimes(s, proc))
	}
	b.WriteString("\n" + res.Trace.Gantt(params.P, 1))
	fmt.Fprintf(&b, "\nbaselines: binomial %d, linear %d cycles\n",
		core.BinomialBroadcastTime(params), core.LinearBroadcastTime(params))
	want := []int64{10, 14, 18, 20, 22, 24, 24}
	got := s.RecvTimes()
	match := len(got) == len(want)
	for i := range want {
		if match && got[i] != want[i] {
			match = false
		}
	}
	return Report{
		ID:    "fig3",
		Title: "Optimal broadcast tree, P=8 L=6 g=4 o=2 (completion 24)",
		Text:  b.String(),
		Checks: []Check{
			check("receive times match the figure", match, "got %v", got),
			check("simulated run completes at 24", res.Time == 24, "ran in %d", res.Time),
			check("optimal <= baselines", s.Finish <= core.BinomialBroadcastTime(params) && s.Finish <= core.LinearBroadcastTime(params), "%d vs %d/%d", s.Finish, core.BinomialBroadcastTime(params), core.LinearBroadcastTime(params)),
		},
	}
}

func sendTimes(s *core.BroadcastSchedule, proc int) []int64 {
	out := make([]int64, len(s.Sends[proc]))
	for i, ev := range s.Sends[proc] {
		out[i] = ev.At
	}
	return out
}

// Fig4 regenerates the optimal summation schedule for T=28, P=8, L=5, g=4,
// o=2, executes it, and reports the communication tree.
func Fig4() Report {
	params := core.Params{P: 8, L: 5, O: 2, G: 4}
	s, err := core.OptimalSummation(params, 28)
	if err != nil {
		return Report{ID: "fig4", Checks: []Check{check("schedule built", false, "%v", err)}}
	}
	values := make([]float64, s.TotalValues)
	var want float64
	for i := range values {
		values[i] = float64(i + 1)
		want += values[i]
	}
	dist, err := collective.DistributeInputs(s, values)
	if err != nil {
		return Report{ID: "fig4", Checks: []Check{check("inputs distributed", false, "%v", err)}}
	}
	var got float64
	cfg := logp.Config{Params: params, CollectTrace: true}
	res, err := logp.Run(cfg, func(p *logp.Proc) {
		if sum, ok := collective.SumOptimal(p, s, 1, dist[p.ID()]); ok {
			got = sum
		}
	})
	if err != nil {
		return Report{ID: "fig4", Checks: []Check{check("executed", false, "%v", err)}}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%v  optimal summation, deadline T=28\n", params)
	fmt.Fprintf(&b, "values summed: %d  (binary-tree baseline needs %d cycles)\n", s.TotalValues, core.BinaryTreeSumTime(params, s.TotalValues))
	fmt.Fprintf(&b, "root children complete at %v; leaves at %v\n\n", s.ChildDeadlines(), s.LeafDeadlines())
	var walk func(n *core.SumNode, depth int)
	walk = func(n *core.SumNode, depth int) {
		fmt.Fprintf(&b, "%sP%d: deadline %2d, %2d local inputs\n", strings.Repeat("  ", depth), n.Proc, n.Deadline, n.LocalInputs)
		for _, c := range n.Children {
			walk(c, depth+1)
		}
	}
	walk(s.Root, 0)
	b.WriteString("\n" + res.Trace.Gantt(params.P, 1))
	return Report{
		ID:    "fig4",
		Title: "Optimal summation schedule, T=28 P=8 L=5 g=4 o=2",
		Text:  b.String(),
		Checks: []Check{
			check("tree matches the figure", fmt.Sprint(s.ChildDeadlines()) == "[18 14 10 6]", "children %v", s.ChildDeadlines()),
			check("simulation meets the deadline", res.Time == 28, "ran in %d", res.Time),
			check("sum correct", got == want, "%v vs %v", got, want),
			check("beats balanced binary tree", core.MinSumTime(params, s.TotalValues) <= core.BinaryTreeSumTime(params, s.TotalValues), ""),
		},
	}
}

// Fig5 regenerates the hybrid-layout assignment of the 8-input butterfly on
// two processors: cyclic through column 2, blocked at column 3.
func Fig5() Report {
	n, P := 8, 2
	var b strings.Builder
	b.WriteString("col:  0 1 2 3   (owner of each butterfly node, hybrid layout)\n")
	allMatch := true
	for r := 0; r < n; r++ {
		fmt.Fprintf(&b, "row %d:", r)
		for c := 0; c <= 3; c++ {
			o := fft.Owner(fft.Hybrid, r, c, n, P)
			fmt.Fprintf(&b, " %d", o)
			want := r % 2
			if c == 3 {
				want = r / 4
			}
			if o != want {
				allMatch = false
			}
		}
		b.WriteString("\n")
	}
	hyb, _ := fft.RemoteRefsPerProcessor(fft.Hybrid, 1<<16, 64)
	pure, _ := fft.RemoteRefsPerProcessor(fft.Cyclic, 1<<16, 64)
	fmt.Fprintf(&b, "\nremote refs per processor at n=2^16, P=64: cyclic %d, hybrid %d (%.1fx lower)\n",
		pure, hyb, float64(pure)/float64(hyb))
	return Report{
		ID:    "fig5",
		Title: "8-input butterfly, P=2, hybrid layout (remap between columns 2 and 3)",
		Text:  b.String(),
		Checks: []Check{
			check("assignment matches the figure", allMatch, ""),
			check("hybrid saves ~log P communication", float64(pure)/float64(hyb) > 5, "ratio %.1f", float64(pure)/float64(hyb)),
		},
	}
}
