package experiments

import (
	"fmt"

	"github.com/logp-model/logp/internal/algo/fft"
	"github.com/logp-model/logp/internal/bsp"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/stats"
)

// BSPComparison regenerates the Section 6.3 critique by execution: the same
// FFT as a bulk-synchronous program (log P barrier-synchronized h-relations
// under the cyclic layout) and as the LogP hybrid algorithm (one staggered
// remap, no barriers), both on the simulated CM-5. The BSP execution pays
// the synchronization per superstep and cannot "use a message as soon as it
// arrives"; the LogP program schedules communication precisely.
func BSPComparison(scale Scale) Report {
	s := scale.clamp()
	P := 16
	sizes := []int{1 << 10, 1 << 12, 1 << 14}
	for i := range sizes {
		sizes[i] *= s
	}
	tb := stats.Table{Header: []string{"points", "LogP hybrid", "BSP supersteps", "BSP/LogP"}}
	type point struct {
		logpTime, bspTime int64
		agree             bool
		fail              failure
	}
	points := mapIndexed(len(sizes), func(i int) point {
		n := sizes[i]
		in := fftInput(n, int64(n))
		cfg := fft.Config{N: n, Machine: fft.CM5Machine(P), Cost: fft.CM5Cost(), Schedule: fft.StaggeredSchedule}
		a, _, logpRes, err := fft.Run(cfg, append([]complex128(nil), in...))
		if err != nil {
			return point{fail: fail("bsp", check("logp run", false, "%v", err))}
		}
		b, bspRes, err := fft.RunBSP(cfg, append([]complex128(nil), in...))
		if err != nil {
			return point{fail: fail("bsp", check("bsp run", false, "%v", err))}
		}
		pt := point{logpTime: logpRes.Time, bspTime: bspRes.Time, agree: true}
		for i := range a {
			d := a[i] - b[i]
			if real(d)*real(d)+imag(d)*imag(d) > 1e-18*float64(n) {
				pt.agree = false
				break
			}
		}
		return pt
	})
	var ratios []float64
	var agree bool = true
	for i, pt := range points {
		if pt.fail.rep != nil {
			return *pt.fail.rep
		}
		if !pt.agree {
			agree = false
		}
		ratio := float64(pt.bspTime) / float64(pt.logpTime)
		ratios = append(ratios, ratio)
		tb.Add(sizes[i], pt.logpTime, pt.bspTime, fmt.Sprintf("%.2fx", ratio))
	}
	// The barrier overhead alone: empty supersteps on the same machine.
	empty, err := bsp.Run(fft.CM5Machine(P), 4, func(st *bsp.Superstep) {})
	if err != nil {
		return Report{ID: "bsp", Checks: []Check{check("empty supersteps", false, "%v", err)}}
	}
	text := tb.String()
	text += fmt.Sprintf("\nfour empty supersteps cost %d cycles of pure synchronization on this machine;\n", empty.Time)
	text += fmt.Sprintf("analytic BSP charge per superstep (w=0, h=%d): %d cycles\n",
		sizes[0]/P, bsp.Cost(core.Params{P: P, L: 200, O: 66, G: 132}, 0, sizes[0]/P))
	last := len(ratios) - 1
	return Report{
		ID:    "bsp",
		Title: "BSP supersteps vs LogP scheduling for the FFT (Section 6.3)",
		Text:  text,
		Checks: []Check{
			check("executions agree numerically", agree, ""),
			check("BSP execution is slower at every size", minOf(ratios) > 1, "min ratio %.2f", minOf(ratios)),
			check("the gap is substantial", ratios[last] > 1.2, "%.2fx", ratios[last]),
			check("empty supersteps still cost synchronization", empty.Time > 0, "%d cycles", empty.Time),
		},
	}
}

func minOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v < m {
			m = v
		}
	}
	return m
}
