package experiments

import (
	"fmt"

	"github.com/logp-model/logp/internal/am"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/machine"
	"github.com/logp-model/logp/internal/stats"
)

// ActiveMessages regenerates the mechanism behind Table 1's vendor-vs-AM
// rows: the vendor synchronous send/receive "involves a pair of messages
// before transmitting the first data element. This protocol is easily
// modeled in terms of our parameters as 3(L+2o) + ng" (Section 5.2), while
// active messages dispatch a handler per message with no handshake. Both
// run on the simulated CM-5, and the measured times hit the formulas
// exactly.
func ActiveMessages() Report {
	params := core.Params{P: 2, L: 200, O: 66, G: 132}
	const words = 16
	c := logp.Config{Params: params}

	var amTime int64
	_, err := logp.Run(c, func(p *logp.Proc) {
		n := am.New(p)
		n.Register(1, func(*am.Node, int, any) {})
		if p.ID() == 0 {
			for i := 0; i < words; i++ {
				n.Send(1, 1, i)
			}
			return
		}
		n.PollN(words)
		amTime = p.Now()
	})
	if err != nil {
		return Report{ID: "am", Checks: []Check{check("am run", false, "%v", err)}}
	}
	var syncTime int64
	_, err = logp.Run(c, func(p *logp.Proc) {
		n := am.New(p)
		if p.ID() == 0 {
			n.SyncSend(1, make([]any, words))
			return
		}
		n.SyncRecv()
		syncTime = p.Now()
	})
	if err != nil {
		return Report{ID: "am", Checks: []Check{check("sync run", false, "%v", err)}}
	}

	formula := 3*params.PointToPoint() + int64(words-1)*params.SendInterval()
	amFormula := params.PointToPoint() + int64(words-1)*params.SendInterval()
	cm5, _ := machine.ByName("CM-5")
	cm5am, _ := machine.ByName("CM-5 (AM)")

	tb := stats.Table{Header: []string{"transfer of 16 words", "measured (cycles)", "formula", "value"}}
	tb.Add("active messages", amTime, "(2o+L) + (n-1)g", amFormula)
	tb.Add("synchronous send/receive", syncTime, "3(L+2o) + (n-1)g", formula)
	text := tb.String()
	text += fmt.Sprintf("\nthe handshake costs two extra round trips: %d cycles\n", syncTime-amTime)
	text += fmt.Sprintf("Table 1's software-layer story: CM-5 vendor overhead %d network cycles vs AM %d (%.0fx)\n",
		cm5.Overhead, cm5am.Overhead, float64(cm5.Overhead)/float64(cm5am.Overhead))
	return Report{
		ID:    "am",
		Title: "Active messages vs the vendor synchronous protocol (Section 5.2, Table 1)",
		Text:  text,
		Checks: []Check{
			check("sync protocol hits 3(L+2o)+(n-1)g exactly", syncTime == formula, "%d vs %d", syncTime, formula),
			check("AM stream hits (2o+L)+(n-1)g exactly", amTime == amFormula, "%d vs %d", amTime, amFormula),
			check("handshake overhead is two round trips", syncTime-amTime == 2*params.PointToPoint(), "%d", syncTime-amTime),
			check("Table 1's overhead gap is an order of magnitude", float64(cm5.Overhead)/float64(cm5am.Overhead) > 10, "%.0fx", float64(cm5.Overhead)/float64(cm5am.Overhead)),
		},
	}
}
