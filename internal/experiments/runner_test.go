package experiments

import (
	"reflect"
	"sync/atomic"
	"testing"
)

func TestMapIndexedOrderAndCoverage(t *testing.T) {
	defer SetParallelism(0)
	for _, workers := range []int{1, 2, 8, 100} {
		SetParallelism(workers)
		var calls atomic.Int64
		out := mapIndexed(37, func(i int) int {
			calls.Add(1)
			return i * i
		})
		if len(out) != 37 || calls.Load() != 37 {
			t.Fatalf("workers=%d: %d results, %d calls", workers, len(out), calls.Load())
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if mapIndexed(0, func(int) int { return 0 }) != nil {
		t.Error("empty map should be nil")
	}
}

// TestMapIndexedExplicitBound drives the exported runner with an explicit
// worker bound while the package default is pinned elsewhere: the value-typed
// path must neither read nor write the global.
func TestMapIndexedExplicitBound(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(1) // the explicit bound below must win regardless
	for _, workers := range []int{0, 1, 3, 64} {
		var calls atomic.Int64
		out := MapIndexed(workers, 23, func(i int) int {
			calls.Add(1)
			return i + 1
		})
		if len(out) != 23 || calls.Load() != 23 {
			t.Fatalf("workers=%d: %d results, %d calls", workers, len(out), calls.Load())
		}
		for i, v := range out {
			if v != i+1 {
				t.Fatalf("workers=%d: out[%d] = %d", workers, i, v)
			}
		}
	}
	if Parallelism() != 1 {
		t.Errorf("MapIndexed mutated the package default: Parallelism() = %d", Parallelism())
	}
}

// TestPoolRunAllMatchesCatalogOrder checks the value-typed harness returns
// reports in catalog order on a small concurrent pool.
func TestPoolRunAllMatchesCatalogOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the whole catalog")
	}
	reports := Pool{Workers: 4}.RunAll(1)
	cat := Catalog()
	if len(reports) != len(cat) {
		t.Fatalf("%d reports for %d catalog entries", len(reports), len(cat))
	}
	for i, r := range reports {
		if r.ID != cat[i].ID {
			t.Errorf("report %d: ID %q, want %q", i, r.ID, cat[i].ID)
		}
	}
}

func TestParallelismResolution(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(3)
	if Parallelism() != 3 {
		t.Errorf("Parallelism() = %d, want 3", Parallelism())
	}
	SetParallelism(-5)
	if Parallelism() < 1 {
		t.Errorf("default parallelism %d", Parallelism())
	}
}

// TestRunnerRaceSmoke drives a handful of cheap generators with many
// workers. It stays active under -short so `go test -race -short` still
// exercises the concurrent paths of the runner and the simulators beneath
// it.
func TestRunnerRaceSmoke(t *testing.T) {
	defer SetParallelism(0)
	SetParallelism(8)
	for _, r := range []Report{Multithreading(), LongMessages(), SurfaceToVolume(1), TableAvgDistance()} {
		if r.ID == "" {
			t.Error("empty report")
		}
	}
}

// TestParallelDeterminism is the regression test for the parallel runner's
// central claim: for every converted experiment generator, running the
// sweeps on many workers produces a Report identical (reflect.DeepEqual) to
// the sequential path, across at least three scales per generator. Scales
// that break a generator's preconditions (FFT sizes must be powers of two,
// so scale 3 does not divide) are included deliberately where cheap: the
// first-failure precedence of the parallel path must match the sequential
// early return too. The full matrix is a few minutes of simulation; -short
// skips it (TestRunnerRaceSmoke keeps race coverage).
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full determinism matrix is expensive")
	}
	defer SetParallelism(0)
	fixed := func(f func() Report) func(Scale) Report {
		return func(Scale) Report { return f() }
	}
	cases := []struct {
		name   string
		run    func(Scale) Report
		scales []Scale
	}{
		{"Fig6", Fig6, []Scale{1, 2, 4}},
		{"Fig7", Fig7, []Scale{1, 2, 4}},
		{"Fig8", Fig8, []Scale{1, 2, 3}}, // 3: non-power-of-two error path
		{"BSPComparison", BSPComparison, []Scale{1, 2, 4}},
		{"NetworkSaturation", NetworkSaturation, []Scale{1, 2, 3}},
		{"CapacitySaturation", CapacitySaturation, []Scale{1, 2}},
		{"PatternGaps", PatternGaps, []Scale{1, 2, 3}},
		{"SurfaceToVolume", SurfaceToVolume, []Scale{1, 2, 3}},
		{"TableAvgDistance", fixed(TableAvgDistance), []Scale{1, 2, 3}},
		{"Multithreading", fixed(Multithreading), []Scale{1, 2, 3}},
		{"LongMessages", fixed(LongMessages), []Scale{1, 2, 3}},
		{"OverlapFFT", fixed(OverlapFFT), []Scale{1, 2, 3}},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, s := range tc.scales {
				SetParallelism(1)
				seq := tc.run(s)
				SetParallelism(8)
				par := tc.run(s)
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("scale %d: parallel report differs from sequential\nseq: %+v\npar: %+v", s, seq, par)
				}
			}
		})
	}
}
