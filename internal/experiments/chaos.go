package experiments

import (
	"fmt"
	"strings"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
	"github.com/logp-model/logp/internal/reliable"
	"github.com/logp-model/logp/internal/stats"
)

// Chaos stresses the paper's reliable-delivery assumption: it sweeps the
// link drop rate and measures how long the reliable broadcast of
// internal/reliable takes to put one value on every processor of the
// Figure 3 machine (P=8, L=6, g=4, o=2). At drop rate zero the protocol
// pays only its ack traffic; every lost frame beyond that costs the
// affected subtree at least one retransmission timeout, so the completion
// time must grow with the drop rate. The zero-rate column doubles as a
// regression anchor: an all-zero FaultPlan must leave the machine
// cycle-identical to a fault-free one, which is checked by re-running the
// exact Figure 3 and Figure 4 schedules under such a plan.
func Chaos() Report {
	const id = "chaos"
	params := core.Params{P: 8, L: 6, O: 2, G: 4}

	// Anchor 1: the optimal broadcast of Figure 3 under an all-zero fault
	// plan still completes in exactly 24 cycles.
	s3, err := core.OptimalBroadcast(params, 0)
	if err != nil {
		return Report{ID: id, Checks: []Check{check("fig3 schedule built", false, "%v", err)}}
	}
	res3, err := logp.Run(logp.Config{Params: params, Faults: &logp.FaultPlan{Seed: 9}}, func(p *logp.Proc) {
		collective.Broadcast(p, s3, 1, "datum")
	})
	if err != nil {
		return Report{ID: id, Checks: []Check{check("fig3 executed", false, "%v", err)}}
	}

	// Anchor 2: the optimal summation of Figure 4 (its own parameters,
	// L=5, deadline T=28) under an all-zero plan still meets the deadline
	// and computes the right sum.
	params4 := core.Params{P: 8, L: 5, O: 2, G: 4}
	s4, err := core.OptimalSummation(params4, 28)
	if err != nil {
		return Report{ID: id, Checks: []Check{check("fig4 schedule built", false, "%v", err)}}
	}
	values := make([]float64, s4.TotalValues)
	var want4 float64
	for i := range values {
		values[i] = float64(i + 1)
		want4 += values[i]
	}
	dist, err := collective.DistributeInputs(s4, values)
	if err != nil {
		return Report{ID: id, Checks: []Check{check("fig4 inputs distributed", false, "%v", err)}}
	}
	var got4 float64
	res4, err := logp.Run(logp.Config{Params: params4, Faults: &logp.FaultPlan{Seed: 9}}, func(p *logp.Proc) {
		if sum, ok := collective.SumOptimal(p, s4, 1, dist[p.ID()]); ok {
			got4 = sum
		}
	})
	if err != nil {
		return Report{ID: id, Checks: []Check{check("fig4 executed", false, "%v", err)}}
	}

	// The sweep: for each drop rate, the same fixed seed set, reliable
	// broadcast on P=8, metric = the time the value reached its last
	// processor (not the machine makespan, which is dominated by the fixed
	// post-broadcast drain horizon).
	rates := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.1}
	const seeds = 16
	type outcome struct {
		last      int64
		retrans   int
		delivered bool
	}
	flat := mapIndexed(len(rates)*seeds, func(i int) outcome {
		rate := rates[i/seeds]
		seed := int64(i%seeds + 1)
		plan := &logp.FaultPlan{Seed: seed, Default: logp.LinkFault{Drop: rate}}
		var done [8]int64
		var payload [8]any
		var retr [8]int
		_, runErr := logp.Run(logp.Config{Params: params, Faults: plan}, func(p *logp.Proc) {
			e := reliable.New(p, reliable.Config{})
			v, _ := reliable.Broadcast(e, 0, 1, "chaos", p.Now()+1_000_000)
			done[p.ID()] = p.Now()
			payload[p.ID()] = v
			e.Drain(p.Now() + 4000)
			retr[p.ID()] = e.Retransmits()
		})
		o := outcome{delivered: runErr == nil}
		for i := 0; i < params.P; i++ {
			if payload[i] != "chaos" {
				o.delivered = false
			}
			if done[i] > o.last {
				o.last = done[i]
			}
			o.retrans += retr[i]
		}
		return o
	})

	tb := stats.Table{Header: []string{"drop rate", "avg completion", "max completion", "avg retransmits"}}
	avg := make([]float64, len(rates))
	allDelivered := true
	var worstRetrans float64
	for ri, rate := range rates {
		var sum, retrans float64
		var worst int64
		for s := 0; s < seeds; s++ {
			o := flat[ri*seeds+s]
			if !o.delivered {
				allDelivered = false
			}
			sum += float64(o.last)
			retrans += float64(o.retrans)
			if o.last > worst {
				worst = o.last
			}
		}
		avg[ri] = sum / seeds
		retrans /= seeds
		if retrans > worstRetrans {
			worstRetrans = retrans
		}
		tb.Add(fmt.Sprintf("%g", rate), avg[ri], worst, retrans)
	}
	monotone := true
	for i := 1; i < len(avg); i++ {
		if avg[i] < avg[i-1] {
			monotone = false
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%v  reliable binomial broadcast, %d seeds per drop rate\n", params, seeds)
	b.WriteString("completion = cycle at which the value reached its last processor\n\n")
	b.WriteString(tb.String())
	fmt.Fprintf(&b, "\nzero-fault anchors: fig3 broadcast %d cycles (paper: 24), fig4 summation %d cycles for sum %g (paper: 28)\n",
		res3.Time, res4.Time, got4)
	return Report{
		ID:    id,
		Title: "Broadcast completion vs link drop rate (reliable layer over faulty LogP)",
		Text:  b.String(),
		Checks: []Check{
			check("zero-fault plan reproduces Figure 3 exactly", res3.Time == 24, "ran in %d", res3.Time),
			check("zero-fault plan reproduces Figure 4 exactly", res4.Time == 28 && got4 == want4, "ran in %d, sum %g", res4.Time, got4),
			check("every broadcast delivered everywhere", allDelivered, "P=%d, %d runs", params.P, len(flat)),
			check("completion non-decreasing in drop rate", monotone, "averages %v", avg),
			check("losses actually forced retransmissions", worstRetrans > 0, "worst avg %.1f", worstRetrans),
		},
	}
}
