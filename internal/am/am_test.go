package am

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func cfg(p int, l, o, g int64) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: l, O: o, G: g}}
}

// TestRemoteIncrement: the classic active-message demo — a histogram of
// remote atomic increments, no request/reply needed.
func TestRemoteIncrement(t *testing.T) {
	const P = 4
	counters := make([]int, P)
	c := cfg(P, 10, 2, 4)
	_, err := logp.Run(c, func(p *logp.Proc) {
		n := New(p)
		n.Register(1, func(n *Node, from int, data any) {
			counters[n.Proc().ID()] += data.(int)
			n.Proc().Compute(1)
		})
		// Everyone increments everyone else's counter by its own id+1.
		for i := 1; i < P; i++ {
			n.Send((p.ID()+i)%P, 1, p.ID()+1)
		}
		n.PollN(P - 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range counters {
		want := 10 - (i + 1) // sum of all ids+1 except my own
		if v != want {
			t.Errorf("counter %d = %d, want %d", i, v, want)
		}
	}
}

// TestAMCostIsOneMessage: an active message costs exactly one LogP message:
// delivered and handled at 2o+L.
func TestAMCostIsOneMessage(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	var handledAt int64
	_, err := logp.Run(c, func(p *logp.Proc) {
		n := New(p)
		n.Register(1, func(n *Node, from int, data any) {
			handledAt = n.Proc().Now()
		})
		switch p.ID() {
		case 0:
			n.Send(1, 1, "x")
		case 1:
			n.PollWait()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := c.Params.PointToPoint(); handledAt != want {
		t.Errorf("handled at %d, want 2o+L = %d", handledAt, want)
	}
}

// TestSyncProtocolCostFormula: Section 5.2 — the synchronous send/receive
// protocol costs 3(L+2o) + ng: an RTS, a CTS, and the pipelined stream
// whose last word lands 2o+L after its initiation at (n-1) gaps past the
// stream start.
func TestSyncProtocolCostFormula(t *testing.T) {
	c := cfg(2, 20, 2, 8)
	const words = 16
	var done int64
	_, err := logp.Run(c, func(p *logp.Proc) {
		n := New(p)
		switch p.ID() {
		case 0:
			data := make([]any, words)
			n.SyncSend(1, data)
		case 1:
			got := n.SyncRecv()
			if len(got) != words {
				t.Errorf("received %d words", len(got))
			}
			done = p.Now()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	p := c.Params
	// RTS: 2o+L; CTS: 2o+L; stream: (words-1) gaps then a full 2o+L for the
	// last word = 3(L+2o) + (n-1)g.
	want := 3*p.PointToPoint() + int64(words-1)*p.SendInterval()
	if done != want {
		t.Errorf("sync protocol took %d, want 3(L+2o)+(n-1)g = %d", done, want)
	}
}

// TestAMBeatsSyncProtocol: the Table 1 story — the same payload moved by
// active messages (no handshake) versus the vendor protocol.
func TestAMBeatsSyncProtocol(t *testing.T) {
	c := cfg(2, 20, 2, 8)
	const words = 16
	amTime := func() int64 {
		var done int64
		_, err := logp.Run(c, func(p *logp.Proc) {
			n := New(p)
			got := 0
			n.Register(1, func(n *Node, from int, data any) { got++ })
			switch p.ID() {
			case 0:
				for i := 0; i < words; i++ {
					n.Send(1, 1, i)
				}
			case 1:
				n.PollN(words)
				done = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}()
	syncTime := func() int64 {
		var done int64
		_, err := logp.Run(c, func(p *logp.Proc) {
			n := New(p)
			switch p.ID() {
			case 0:
				n.SyncSend(1, make([]any, words))
			case 1:
				n.SyncRecv()
				done = p.Now()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return done
	}()
	if amTime >= syncTime {
		t.Errorf("AM %d not faster than the synchronous protocol %d", amTime, syncTime)
	}
	// The difference is about two round trips of handshake.
	if d := syncTime - amTime; d != 2*c.Params.PointToPoint() {
		t.Errorf("handshake overhead %d, want 2(2o+L) = %d", d, 2*c.Params.PointToPoint())
	}
}

func TestHandlerValidation(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	_, err := logp.Run(c, func(p *logp.Proc) {
		if p.ID() != 0 {
			return
		}
		n := New(p)
		n.Register(1, func(*Node, int, any) {})
		defer func() {
			if recover() == nil {
				t.Error("duplicate handler accepted")
			}
		}()
		n.Register(1, func(*Node, int, any) {})
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = logp.Run(c, func(p *logp.Proc) {
		if p.ID() != 0 {
			return
		}
		n := New(p)
		defer func() {
			if recover() == nil {
				t.Error("unregistered handler send accepted")
			}
		}()
		n.Send(1, 9, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPollNonBlocking(t *testing.T) {
	c := cfg(2, 6, 2, 4)
	_, err := logp.Run(c, func(p *logp.Proc) {
		n := New(p)
		n.Register(1, func(*Node, int, any) {})
		if p.ID() == 1 {
			if n.Poll() {
				t.Error("poll on empty inbox handled something")
			}
			p.Wait(20)
			if !n.Poll() {
				t.Error("poll missed an arrived message")
			}
			return
		}
		n.Send(1, 1, nil)
	})
	if err != nil {
		t.Fatal(err)
	}
}
