// Package am implements an Active Message layer on the LogP machine, the
// mechanism behind the "(AM)" rows of Table 1 (von Eicken et al. [33]). An
// active message carries the identifier of a handler that runs at the
// receiver as soon as the message is polled, integrating communication into
// the computation — the hardware-overhead-only path that cuts the CM-5's
// per-message software cost from 3600 cycles to 132.
//
// For contrast, the package also implements the vendor-style synchronous
// send/receive protocol whose cost Section 5.2 derives: "a pair of messages
// before transmitting the first data element ... easily modeled in terms of
// our parameters as 3(L+2o) + ng" — a ready-to-send request, an ok-to-send
// reply, and then the n-word data stream.
package am

import (
	"fmt"

	"github.com/logp-model/logp/internal/logp"
)

// Handler runs at the receiving processor when its message is polled. The
// receive overhead o is already charged by the poll; handlers charge any
// additional work themselves via n.Proc().Compute.
type Handler func(n *Node, from int, data any)

const (
	tagAM   = 22000 // active message: Data = amPayload
	tagRTS  = 22001 // synchronous protocol: request to send (word count)
	tagCTS  = 22002 // synchronous protocol: clear to send
	tagData = 22003 // synchronous protocol: data words
)

type amPayload struct {
	Handler int
	Data    any
}

// Node is one processor's active-message endpoint.
type Node struct {
	p        *logp.Proc
	handlers map[int]Handler
}

// New wraps a processor. Register handlers before any peer can address
// them.
func New(p *logp.Proc) *Node {
	return &Node{p: p, handlers: make(map[int]Handler)}
}

// Proc exposes the underlying processor.
func (n *Node) Proc() *logp.Proc { return n.p }

// Register binds a handler id. Ids must match across processors (SPMD
// style: register the same handlers everywhere).
func (n *Node) Register(id int, h Handler) {
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("am: handler %d registered twice", id))
	}
	n.handlers[id] = h
}

// Send dispatches an active message: one LogP message (cost o at each end)
// whose handler runs at the receiver's next poll.
func (n *Node) Send(dst, handler int, data any) {
	if _, ok := n.handlers[handler]; !ok {
		panic(fmt.Sprintf("am: sending unregistered handler %d", handler))
	}
	n.p.Send(dst, tagAM, amPayload{Handler: handler, Data: data})
}

// Poll receives and runs one pending active message, reporting whether one
// was handled. It blocks only for the reception itself, never for arrival.
func (n *Node) Poll() bool {
	if !n.p.HasTag(tagAM) {
		return false
	}
	m := n.p.RecvTag(tagAM)
	pl := m.Data.(amPayload)
	h, ok := n.handlers[pl.Handler]
	if !ok {
		panic(fmt.Sprintf("am: no handler %d", pl.Handler))
	}
	h(n, m.From, pl.Data)
	return true
}

// PollWait blocks until one active message has been handled.
func (n *Node) PollWait() {
	m := n.p.RecvTag(tagAM)
	pl := m.Data.(amPayload)
	h, ok := n.handlers[pl.Handler]
	if !ok {
		panic(fmt.Sprintf("am: no handler %d", pl.Handler))
	}
	h(n, m.From, pl.Data)
}

// PollN handles exactly count active messages, blocking as needed.
func (n *Node) PollN(count int) {
	for i := 0; i < count; i++ {
		n.PollWait()
	}
}

// --- The vendor-style synchronous send/receive protocol.

// SyncSend transmits words data words to dst under the three-way protocol:
// request-to-send, clear-to-send, then the data stream. On an immediately
// ready receiver the elapsed time is 3(L+2o) + (words-1)*max(g,o) + ... —
// asymptotically the Section 5.2 formula 3(L+2o) + ng.
func (n *Node) SyncSend(dst int, data []any) {
	n.p.Send(dst, tagRTS, len(data))
	n.p.RecvTag(tagCTS)
	for _, v := range data {
		n.p.Send(dst, tagData, v)
	}
}

// SyncRecv accepts one synchronous transmission, returning the words.
func (n *Node) SyncRecv() []any {
	m := n.p.RecvTag(tagRTS)
	words := m.Data.(int)
	n.p.Send(m.From, tagCTS, nil)
	out := make([]any, 0, words)
	for len(out) < words {
		out = append(out, n.p.RecvTag(tagData).Data)
	}
	return out
}
