// Package models implements the competing cost models surveyed in Section 6
// — the PRAM, Valiant's BSP, and the postal model — so that predicted costs
// of the paper's kernel operations (broadcast, summation) can be compared
// across models on the same machine parameters. The divergence between the
// PRAM's free communication, BSP's superstep charges and LogP's
// fine-grained schedule is the paper's core argument for the model.
package models

import (
	"math"

	"github.com/logp-model/logp/internal/core"
)

// Model predicts costs of kernel operations from LogP machine parameters.
// Each model interprets the parameters per its own assumptions; the PRAM
// ignores them entirely.
type Model interface {
	Name() string
	// Broadcast is the predicted time to deliver one word from one
	// processor to the other P-1.
	Broadcast(p core.Params) int64
	// Sum is the predicted time to add n values spread over P processors.
	Sum(p core.Params, n int64) int64
}

// PRAM is the classic model: synchronous processors, free communication
// (g = 0, L = 0, o = 0). Broadcast through shared memory is one step;
// summation is a balanced binary tree of unit-time additions after local
// chains.
type PRAM struct{}

// Name implements Model.
func (PRAM) Name() string { return "PRAM" }

// Broadcast implements Model: a single shared-memory write plus reads,
// charged one unit step.
func (PRAM) Broadcast(p core.Params) int64 {
	if p.P <= 1 {
		return 0
	}
	return 1
}

// Sum implements Model: local chains then a log-depth combining tree of
// unit-time steps.
func (PRAM) Sum(p core.Params, n int64) int64 {
	per := (n + int64(p.P) - 1) / int64(p.P)
	t := per - 1
	if t < 0 {
		t = 0
	}
	return t + log2ceil(p.P)
}

// BSP is Valiant's bulk-synchronous model: supersteps of local work w, an
// h-relation charged g*h, and a synchronization cost l per superstep. We
// map LogP parameters as gBSP = max(g, o) — BSP's gap must absorb the
// per-message processor overhead, since the model has no separate o — and
// l = L + 2o (the minimum full message time, standing in for the barrier
// latency).
type BSP struct{}

// Name implements Model.
func (BSP) Name() string { return "BSP" }

func bspL(p core.Params) int64 { return p.L + 2*p.O }

// Broadcast implements Model: the better of a single superstep in which the
// root sends P-1 messages (h = P-1) and log2 P supersteps of 1-relations
// (the two canonical BSP broadcast strategies).
func (BSP) Broadcast(p core.Params) int64 {
	if p.P <= 1 {
		return 0
	}
	l := bspL(p)
	g := p.SendInterval()
	oneShot := g*int64(p.P-1) + l
	tree := log2ceil(p.P) * (g + l)
	if oneShot < tree {
		return oneShot
	}
	return tree
}

// Sum implements Model: a local-chain superstep followed by log2 P
// combining supersteps, each a 1-relation plus one addition.
func (BSP) Sum(p core.Params, n int64) int64 {
	per := (n + int64(p.P) - 1) / int64(p.P)
	t := per - 1
	if t < 0 {
		t = 0
	}
	return t + log2ceil(p.P)*(p.SendInterval()+bspL(p)+1)
}

// Postal is the postal model of Bar-Noy and Kipnis [4]: a sender is busy
// for one unit, and the message arrives lambda units after submission
// (lambda = L + 2o in LogP terms, normalized by the send interval). The
// paper notes the optimal LogP broadcast "with o = 0 and g = 1 appears in
// [4]".
type Postal struct{}

// Name implements Model.
func (Postal) Name() string { return "Postal" }

// Broadcast implements Model: greedy optimal postal broadcast — identical
// machinery to the LogP optimal tree with o = 0 and g = 1 scaled to the
// send interval.
func (Postal) Broadcast(p core.Params) int64 {
	if p.P <= 1 {
		return 0
	}
	// Number informed by time t obeys N(t) = N(t-1) + N(t-lambda); compute
	// the earliest t with N >= P, in units of the send interval.
	interval := p.SendInterval()
	if interval == 0 {
		interval = 1
	}
	lambda := (p.PointToPoint() + interval - 1) / interval
	if lambda < 1 {
		lambda = 1
	}
	informed := []int64{1} // N(0)
	t := int64(0)
	for informed[t] < int64(p.P) {
		t++
		prev := informed[t-1]
		var arrived int64
		if t >= lambda {
			arrived = informed[t-lambda] // everyone informed by t-lambda sent one more
		}
		informed = append(informed, prev+arrived)
		if t > 1<<30 {
			break
		}
	}
	return t * interval
}

// Sum implements Model: postal reverse-broadcast with one addition per
// combine, approximated by the broadcast time plus the local chains.
func (m Postal) Sum(p core.Params, n int64) int64 {
	per := (n + int64(p.P) - 1) / int64(p.P)
	t := per - 1
	if t < 0 {
		t = 0
	}
	return t + m.Broadcast(p)
}

// LogP wraps the exact schedules of internal/core as a Model.
type LogP struct{}

// Name implements Model.
func (LogP) Name() string { return "LogP" }

// Broadcast implements Model using the optimal broadcast tree.
func (LogP) Broadcast(p core.Params) int64 { return core.BroadcastTime(p) }

// Sum implements Model using the optimal summation schedule.
func (LogP) Sum(p core.Params, n int64) int64 { return core.MinSumTime(p, n) }

// All returns the four models in presentation order.
func All() []Model { return []Model{PRAM{}, Postal{}, BSP{}, LogP{}} }

func log2ceil(p int) int64 {
	if p <= 1 {
		return 0
	}
	return int64(math.Ceil(math.Log2(float64(p))))
}
