package models

import (
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
)

var cm5ish = core.Params{P: 128, L: 200, O: 66, G: 132}

func TestModelOrderingOnRealParameters(t *testing.T) {
	// On realistic parameters: the PRAM wildly underestimates broadcast
	// (free communication); LogP's schedule is no slower than the BSP
	// superstep strategies (it is the same machine charged more precisely).
	pram := PRAM{}.Broadcast(cm5ish)
	logp := LogP{}.Broadcast(cm5ish)
	bsp := BSP{}.Broadcast(cm5ish)
	if pram >= logp/100 {
		t.Errorf("PRAM broadcast %d not << LogP %d", pram, logp)
	}
	if logp > bsp {
		t.Errorf("LogP broadcast %d exceeds BSP %d", logp, bsp)
	}
}

func TestPostalMatchesLogPWhenOverheadFree(t *testing.T) {
	// With o = 0 and g = 1 the optimal LogP broadcast IS the postal
	// broadcast (the paper's footnote on [4]).
	for _, pp := range []int{2, 4, 8, 32, 100} {
		p := core.Params{P: pp, L: 7, O: 0, G: 1}
		postal := Postal{}.Broadcast(p)
		logp := LogP{}.Broadcast(p)
		if postal != logp {
			t.Errorf("P=%d: postal %d != logp %d", pp, postal, logp)
		}
	}
}

func TestDegenerateSingleProcessor(t *testing.T) {
	p := core.Params{P: 1, L: 10, O: 2, G: 3}
	for _, m := range All() {
		if got := m.Broadcast(p); got != 0 {
			t.Errorf("%s: P=1 broadcast %d", m.Name(), got)
		}
		if got := m.Sum(p, 10); got != 9 {
			t.Errorf("%s: P=1 sum of 10 = %d, want 9", m.Name(), got)
		}
	}
}

func TestSumMonotoneInN(t *testing.T) {
	f := func(nn uint16) bool {
		n := int64(nn%5000) + 1
		for _, m := range All() {
			if m.Sum(cm5ish, n+int64(cm5ish.P)) < m.Sum(cm5ish, n) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLogPNeverBeatenByHonestSchedules(t *testing.T) {
	// Any model that charges at least the LogP costs cannot beat the
	// optimal LogP schedule; BSP and Postal should be >= LogP for
	// broadcast across a parameter sweep.
	f := func(pp, ll, oo, gg uint8) bool {
		p := core.Params{
			P: int(pp%64) + 2,
			L: int64(ll % 50),
			O: int64(oo % 16),
			G: int64(gg%16) + 1,
		}
		logp := LogP{}.Broadcast(p)
		return BSP{}.Broadcast(p) >= logp && Postal{}.Broadcast(p) >= logp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestAllNamesDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range All() {
		if seen[m.Name()] {
			t.Errorf("duplicate model name %s", m.Name())
		}
		seen[m.Name()] = true
	}
	if len(seen) != 4 {
		t.Errorf("%d models, want 4", len(seen))
	}
}
