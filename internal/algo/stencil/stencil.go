// Package stencil implements a 2D Jacobi iteration on the LogP machine, the
// "local, regular communication pattern, such as stencil calculation on a
// grid" of Section 6.4: tiles of the grid live on a sqrt(P) x sqrt(P)
// processor grid, each iteration exchanges halo edges with the four
// neighbours and updates the interior. The interprocessor communication
// "diminishes like the surface to volume ratio and with large enough
// problem sizes, the cost of communication becomes trivial" — per-processor
// communication is 4*n/sqrt(P) words per iteration against (n/sqrt(P))^2
// cell updates.
package stencil

import (
	"fmt"
	"math"

	"github.com/logp-model/logp/internal/logp"
)

// Config describes a run.
type Config struct {
	Machine logp.Config
	// N is the grid side; the grid is distributed in square tiles over a
	// square processor grid, so N must be divisible by sqrt(P).
	N int
	// Iterations of Jacobi relaxation.
	Iterations int
	// CellFlops is the cost of one interior update (default 4: three adds
	// and a multiply).
	CellFlops int64
}

func (c Config) flops() int64 {
	if c.CellFlops <= 0 {
		return 4
	}
	return c.CellFlops
}

// Stats reports a run.
type Stats struct {
	Time         int64
	Messages     int
	HaloWords    int     // words exchanged per processor per iteration (max)
	CommFraction float64 // 1 - compute fraction of the busiest phase
}

const tagBase = 17000

type cellMsg struct {
	Idx int
	Val float64
}

// Run performs Jacobi iterations with Dirichlet boundaries (edge cells of
// the global grid stay fixed) and returns the resulting grid, bit-identical
// to the sequential Reference.
func Run(cfg Config, grid [][]float64) ([][]float64, Stats, error) {
	n := cfg.N
	if len(grid) != n {
		return nil, Stats{}, fmt.Errorf("stencil: grid size %d != N %d", len(grid), n)
	}
	P := cfg.Machine.P
	q := int(math.Round(math.Sqrt(float64(P))))
	if q*q != P {
		return nil, Stats{}, fmt.Errorf("stencil: need square P, got %d", P)
	}
	if n%q != 0 {
		return nil, Stats{}, fmt.Errorf("stencil: N=%d not divisible by grid side %d", n, q)
	}
	bs := n / q

	// Tiles with a one-cell halo ring.
	tiles := make([][][]float64, P)
	for t := range tiles {
		tile := make([][]float64, bs+2)
		for i := range tile {
			tile[i] = make([]float64, bs+2)
		}
		tiles[t] = tile
	}
	load := func(t int) {
		pr, pc := t/q, t%q
		for i := 0; i < bs; i++ {
			for j := 0; j < bs; j++ {
				tiles[t][i+1][j+1] = grid[pr*bs+i][pc*bs+j]
			}
		}
	}
	for t := range tiles {
		load(t)
	}

	res, err := logp.Run(cfg.Machine, func(p *logp.Proc) {
		runTile(p, cfg, q, bs, tiles[p.ID()])
	})
	if err != nil {
		return nil, Stats{}, err
	}

	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
	}
	for t := range tiles {
		pr, pc := t/q, t%q
		for i := 0; i < bs; i++ {
			for j := 0; j < bs; j++ {
				out[pr*bs+i][pc*bs+j] = tiles[t][i+1][j+1]
			}
		}
	}

	st := Stats{Time: res.Time, Messages: res.Messages}
	if q > 1 {
		st.HaloWords = 4 * bs // interior tiles exchange four edges
	}
	var busy, total int64
	for _, s := range res.Procs {
		busy += s.Compute
		total += res.Time
	}
	if total > 0 {
		st.CommFraction = 1 - float64(busy)/float64(total)
	}
	return out, st, nil
}

// runTile is one processor's iteration loop over its (bs+2)^2 haloed tile.
func runTile(p *logp.Proc, cfg Config, q, bs int, tile [][]float64) {
	me := p.ID()
	pr, pc := me/q, me%q
	n := cfg.N
	flops := cfg.flops()

	type nb struct {
		proc int
		dir  int // 0 up, 1 down, 2 left, 3 right
	}
	var nbs []nb
	if pr > 0 {
		nbs = append(nbs, nb{(pr-1)*q + pc, 0})
	}
	if pr < q-1 {
		nbs = append(nbs, nb{(pr+1)*q + pc, 1})
	}
	if pc > 0 {
		nbs = append(nbs, nb{pr*q + pc - 1, 2})
	}
	if pc < q-1 {
		nbs = append(nbs, nb{pr*q + pc + 1, 3})
	}

	next := make([][]float64, bs+2)
	for i := range next {
		next[i] = make([]float64, bs+2)
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		tag := func(dir int) int { return tagBase + 8*iter + dir }
		// Send my edges; direction encodes which side of the *receiver*
		// the data lands on (my bottom edge is their top halo).
		for _, nn := range nbs {
			for k := 1; k <= bs; k++ {
				var v float64
				switch nn.dir {
				case 0:
					v = tile[1][k] // my top row -> their bottom halo
				case 1:
					v = tile[bs][k]
				case 2:
					v = tile[k][1]
				case 3:
					v = tile[k][bs]
				}
				p.Send(nn.proc, tag(nn.dir), cellMsg{Idx: k, Val: v})
			}
		}
		// Receive the four (or fewer) halos.
		for _, nn := range nbs {
			// The message I get from my up-neighbour was sent with dir=1
			// (their bottom edge): it fills my row-0 halo.
			var want int
			switch nn.dir {
			case 0:
				want = 1
			case 1:
				want = 0
			case 2:
				want = 3
			case 3:
				want = 2
			}
			for k := 0; k < bs; k++ {
				m := p.RecvTag(tag(want)).Data.(cellMsg)
				switch want {
				case 1:
					tile[0][m.Idx] = m.Val
				case 0:
					tile[bs+1][m.Idx] = m.Val
				case 3:
					tile[m.Idx][0] = m.Val
				case 2:
					tile[m.Idx][bs+1] = m.Val
				}
			}
		}
		// Update: global-boundary cells stay fixed (Dirichlet).
		cells := 0
		for i := 1; i <= bs; i++ {
			gi := pr*bs + i - 1
			for j := 1; j <= bs; j++ {
				gj := pc*bs + j - 1
				if gi == 0 || gi == n-1 || gj == 0 || gj == n-1 {
					next[i][j] = tile[i][j]
					continue
				}
				next[i][j] = 0.25 * (tile[i-1][j] + tile[i+1][j] + tile[i][j-1] + tile[i][j+1])
				cells++
			}
		}
		for i := 1; i <= bs; i++ {
			copy(tile[i][1:bs+1], next[i][1:bs+1])
		}
		if cells > 0 {
			p.Compute(int64(cells) * flops)
		}
	}
}

// Reference runs the same Jacobi iteration sequentially.
func Reference(grid [][]float64, iterations int) [][]float64 {
	n := len(grid)
	cur := make([][]float64, n)
	for i := range cur {
		cur[i] = append([]float64(nil), grid[i]...)
	}
	next := make([][]float64, n)
	for i := range next {
		next[i] = make([]float64, n)
	}
	for t := 0; t < iterations; t++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == 0 || i == n-1 || j == 0 || j == n-1 {
					next[i][j] = cur[i][j]
					continue
				}
				next[i][j] = 0.25 * (cur[i-1][j] + cur[i+1][j] + cur[i][j-1] + cur[i][j+1])
			}
		}
		cur, next = next, cur
	}
	return cur
}
