package stencil

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func machineCfg(p int) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: 20, O: 4, G: 8}}
}

func randomGrid(n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
		for j := range g[i] {
			g[i][j] = rng.Float64() * 100
		}
	}
	return g
}

func maxDiff(a, b [][]float64) float64 {
	var m float64
	for i := range a {
		for j := range a[i] {
			d := a[i][j] - b[i][j]
			if d < 0 {
				d = -d
			}
			if d > m {
				m = d
			}
		}
	}
	return m
}

func TestMatchesSequentialExactly(t *testing.T) {
	for _, c := range []struct{ n, p, iters int }{
		{8, 4, 3}, {16, 4, 5}, {12, 9, 4}, {16, 16, 2}, {8, 1, 4},
	} {
		g := randomGrid(c.n, int64(c.n*c.p))
		want := Reference(g, c.iters)
		got, st, err := Run(Config{Machine: machineCfg(c.p), N: c.n, Iterations: c.iters}, g)
		if err != nil {
			t.Fatalf("n=%d P=%d: %v", c.n, c.p, err)
		}
		if d := maxDiff(got, want); d != 0 {
			t.Errorf("n=%d P=%d: differs from sequential by %g", c.n, c.p, d)
		}
		if c.p > 1 && st.Messages == 0 {
			t.Errorf("n=%d P=%d: no halo exchange", c.n, c.p)
		}
	}
}

func TestHaloMessageCountExact(t *testing.T) {
	// Per iteration, every interior tile edge is crossed twice (once per
	// direction): 2 * 2*q*(q-1) edges * bs words.
	n, p, iters := 16, 4, 3
	q, bs := 2, 8
	_, st, err := Run(Config{Machine: machineCfg(p), N: n, Iterations: iters}, randomGrid(n, 1))
	if err != nil {
		t.Fatal(err)
	}
	want := iters * 2 * 2 * q * (q - 1) * bs
	if st.Messages != want {
		t.Errorf("messages %d, want %d", st.Messages, want)
	}
}

// TestSurfaceToVolume: Section 6.4 — the communication share shrinks as the
// per-processor tile grows.
func TestSurfaceToVolume(t *testing.T) {
	frac := func(n int) float64 {
		_, st, err := Run(Config{Machine: machineCfg(4), N: n, Iterations: 4}, randomGrid(n, 2))
		if err != nil {
			t.Fatal(err)
		}
		return st.CommFraction
	}
	small, large := frac(8), frac(64)
	if large >= small {
		t.Errorf("comm fraction did not shrink: n=8 %.3f, n=64 %.3f", small, large)
	}
	if large > 0.5 {
		t.Errorf("large tiles still communication-dominated: %.3f", large)
	}
}

func TestCorrectUnderJitter(t *testing.T) {
	g := randomGrid(16, 3)
	want := Reference(g, 4)
	cfg := Config{Machine: machineCfg(4), N: 16, Iterations: 4}
	cfg.Machine.LatencyJitter = 15
	cfg.Machine.Seed = 9
	got, _, err := Run(cfg, g)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, want); d != 0 {
		t.Errorf("jitter changed the result by %g", d)
	}
}

func TestPropertyRandomGrids(t *testing.T) {
	f := func(seed int64, it uint8) bool {
		iters := int(it%5) + 1
		g := randomGrid(12, seed)
		want := Reference(g, iters)
		got, _, err := Run(Config{Machine: machineCfg(9), N: 12, Iterations: iters}, g)
		if err != nil {
			return false
		}
		return maxDiff(got, want) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestValidation(t *testing.T) {
	if _, _, err := Run(Config{Machine: machineCfg(3), N: 9, Iterations: 1}, randomGrid(9, 1)); err == nil {
		t.Error("non-square P accepted")
	}
	if _, _, err := Run(Config{Machine: machineCfg(4), N: 9, Iterations: 1}, randomGrid(9, 1)); err == nil {
		t.Error("indivisible N accepted")
	}
	if _, _, err := Run(Config{Machine: machineCfg(4), N: 8, Iterations: 1}, randomGrid(6, 1)); err == nil {
		t.Error("grid/N mismatch accepted")
	}
}

func TestBoundariesFixed(t *testing.T) {
	n := 8
	g := randomGrid(n, 4)
	got, _, err := Run(Config{Machine: machineCfg(4), N: n, Iterations: 6}, g)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for _, j := range []int{0, n - 1} {
			if got[i][j] != g[i][j] || got[j][i] != g[j][i] {
				t.Fatalf("boundary cell changed")
			}
		}
	}
}
