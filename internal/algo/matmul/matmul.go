// Package matmul implements dense matrix multiplication on the LogP
// machine. Section 6.6 lists matrix multiplication among the problems whose
// "communication pattern is built around a small set of communication
// primitives" once data is laid out over large processor nodes; like LU, the
// 2D (grid) decomposition communicates a factor of about sqrt(P) less than
// the 1D (row) decomposition, and because computation grows as n^3/P while
// communication grows as n^2/sqrt(P), large problems become compute-bound —
// the surface-to-volume argument of Section 6.4.
package matmul

import (
	"fmt"
	"math"

	"github.com/logp-model/logp/internal/algo/lu"
	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/logp"
)

// Algorithm selects the decomposition.
type Algorithm int

const (
	// RowBroadcast is the 1D baseline: processor i owns n/P rows of A and
	// C; B is broadcast in its entirety to everyone (n^2 words of
	// communication per processor).
	RowBroadcast Algorithm = iota
	// SUMMA is the 2D algorithm: an sqrt(P) x sqrt(P) grid owns blocks of
	// A, B and C; at step k the k-th block column of A is broadcast along
	// grid rows and the k-th block row of B along grid columns, and every
	// processor accumulates an outer product (2*n^2/sqrt(P) words per
	// processor).
	SUMMA
)

func (a Algorithm) String() string {
	if a == RowBroadcast {
		return "row-broadcast"
	}
	return "summa"
}

// Config describes a run.
type Config struct {
	Machine logp.Config
	Algo    Algorithm
	// FlopCycles is the cost of one floating-point operation (default 1).
	FlopCycles int64
}

func (c Config) flop() int64 {
	if c.FlopCycles <= 0 {
		return 1
	}
	return c.FlopCycles
}

const (
	tagB = 16001
	tagA = 16002
)

// Run multiplies a*b on the simulated machine and returns the product with
// the machine result. The arithmetic is real and the result equals the
// sequential product exactly (same per-element accumulation order).
func Run(cfg Config, a, b *lu.Dense) (*lu.Dense, logp.Result, error) {
	n := a.N
	if b.N != n {
		return nil, logp.Result{}, fmt.Errorf("matmul: size mismatch %d vs %d", n, b.N)
	}
	P := cfg.Machine.P
	switch cfg.Algo {
	case RowBroadcast:
		if n%P != 0 {
			return nil, logp.Result{}, fmt.Errorf("matmul: n=%d not divisible by P=%d", n, P)
		}
	case SUMMA:
		q := int(math.Round(math.Sqrt(float64(P))))
		if q*q != P {
			return nil, logp.Result{}, fmt.Errorf("matmul: SUMMA needs square P, got %d", P)
		}
		if n%q != 0 {
			return nil, logp.Result{}, fmt.Errorf("matmul: n=%d not divisible by grid side %d", n, q)
		}
	default:
		return nil, logp.Result{}, fmt.Errorf("matmul: unknown algorithm %v", cfg.Algo)
	}

	out := lu.NewDense(n)
	var body func(p *logp.Proc)
	if cfg.Algo == RowBroadcast {
		body = func(p *logp.Proc) { runRows(p, cfg, a, b, out) }
	} else {
		body = func(p *logp.Proc) { runSUMMA(p, cfg, a, b, out) }
	}
	res, err := logp.Run(cfg.Machine, body)
	if err != nil {
		return nil, res, err
	}
	return out, res, nil
}

// runRows: processor i owns rows [i*n/P, (i+1)*n/P) of A and C. Processor
// owning each block row of B streams it to everyone (chain pipeline), then
// local multiplication.
func runRows(p *logp.Proc, cfg Config, a, b, out *lu.Dense) {
	n := a.N
	P := p.P()
	me := p.ID()
	rows := n / P
	flop := cfg.flop()

	// Everyone needs all of B: each owner streams its rows through a chain
	// rooted at itself.
	bLocal := lu.NewDense(n)
	for owner := 0; owner < P; owner++ {
		members := make([]int, 0, P)
		for i := 0; i < P; i++ {
			members = append(members, (owner+i)%P)
		}
		m := rows * n
		vals := collective.PipelinedChainBroadcastGroup(p, members, tagB+owner, m, func(i int) any {
			return b.At(owner*rows+i/n, i%n)
		})
		for i, v := range vals {
			bLocal.Set(owner*rows+i/n, i%n, v.(float64))
		}
	}
	// Local block multiply: rows x full B.
	for i := me * rows; i < (me+1)*rows; i++ {
		for k := 0; k < n; k++ {
			aik := a.At(i, k)
			for j := 0; j < n; j++ {
				out.Set(i, j, out.At(i, j)+aik*bLocal.At(k, j))
			}
		}
	}
	p.Compute(2 * int64(rows) * int64(n) * int64(n) * flop)
}

// runSUMMA: the grid algorithm with chain broadcasts along rows and columns.
func runSUMMA(p *logp.Proc, cfg Config, a, b, out *lu.Dense) {
	n := a.N
	P := p.P()
	q := int(math.Round(math.Sqrt(float64(P))))
	me := p.ID()
	pr, pc := me/q, me%q
	bs := n / q // block side
	flop := cfg.flop()

	aBlk := make([]float64, bs*bs) // the A block received this step
	bBlk := make([]float64, bs*bs)

	rowMembers := func(rootC int) []int {
		out := make([]int, 0, q)
		for i := 0; i < q; i++ {
			out = append(out, pr*q+(rootC+i)%q)
		}
		return out
	}
	colMembers := func(rootR int) []int {
		out := make([]int, 0, q)
		for i := 0; i < q; i++ {
			out = append(out, ((rootR+i)%q)*q+pc)
		}
		return out
	}

	for k := 0; k < q; k++ {
		// Broadcast A[pr][k] along my grid row (owner: column k).
		m := bs * bs
		vals := collective.PipelinedChainBroadcastGroup(p, rowMembers(k), tagA+2*k, m, func(i int) any {
			return a.At(pr*bs+i/bs, k*bs+i%bs)
		})
		for i, v := range vals {
			aBlk[i] = v.(float64)
		}
		// Broadcast B[k][pc] along my grid column (owner: row k).
		vals = collective.PipelinedChainBroadcastGroup(p, colMembers(k), tagA+2*k+1, m, func(i int) any {
			return b.At(k*bs+i/bs, pc*bs+i%bs)
		})
		for i, v := range vals {
			bBlk[i] = v.(float64)
		}
		// C[pr][pc] += A[pr][k] * B[k][pc].
		for i := 0; i < bs; i++ {
			for kk := 0; kk < bs; kk++ {
				aik := aBlk[i*bs+kk]
				for j := 0; j < bs; j++ {
					out.Set(pr*bs+i, pc*bs+j, out.At(pr*bs+i, pc*bs+j)+aik*bBlk[kk*bs+j])
				}
			}
		}
		p.Compute(2 * int64(bs) * int64(bs) * int64(bs) * flop)
	}
}
