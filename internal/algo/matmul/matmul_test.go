package matmul

import (
	"testing"

	"github.com/logp-model/logp/internal/algo/lu"
	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func machineCfg(p int) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: 20, O: 4, G: 8}}
}

func TestBothAlgorithmsMatchSequential(t *testing.T) {
	cases := []struct {
		n, p int
		algo Algorithm
	}{
		{16, 4, RowBroadcast},
		{24, 8, RowBroadcast},
		{16, 4, SUMMA},
		{24, 4, SUMMA},
		{18, 9, SUMMA},
		{32, 16, SUMMA},
	}
	for _, c := range cases {
		a := lu.Random(c.n, int64(c.n))
		b := lu.Random(c.n, int64(c.n)*7)
		want := a.Mul(b)
		got, res, err := Run(Config{Machine: machineCfg(c.p), Algo: c.algo}, a, b)
		if err != nil {
			t.Fatalf("n=%d P=%d %v: %v", c.n, c.p, c.algo, err)
		}
		if d := got.MaxAbsDiff(want); d > 1e-12 {
			t.Errorf("n=%d P=%d %v: max diff %g", c.n, c.p, c.algo, d)
		}
		if res.Time <= 0 || res.Messages == 0 {
			t.Errorf("n=%d P=%d %v: degenerate run %+v", c.n, c.p, c.algo, res.Time)
		}
	}
}

// TestSUMMACommunicatesLess: the 2D decomposition moves about sqrt(P)/2
// times fewer words per processor than the 1D broadcast of all of B.
func TestSUMMACommunicatesLess(t *testing.T) {
	n, p := 32, 16
	a := lu.Random(n, 1)
	b := lu.Random(n, 2)
	maxRecv := func(algo Algorithm) int {
		_, res, err := Run(Config{Machine: machineCfg(p), Algo: algo}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		m := 0
		for _, s := range res.Procs {
			if s.MsgsReceived > m {
				m = s.MsgsReceived
			}
		}
		return m
	}
	rows := maxRecv(RowBroadcast)
	summa := maxRecv(SUMMA)
	if summa >= rows {
		t.Errorf("SUMMA receives %d, rows %d", summa, rows)
	}
	ratio := float64(rows) / float64(summa)
	if ratio < 1.5 {
		t.Errorf("communication ratio %.2f, want about sqrt(P)/2 = 2", ratio)
	}
}

// TestSurfaceToVolume: Section 6.4 — "with large enough problem sizes, the
// cost of communication becomes trivial". The compute fraction of SUMMA
// rises with n.
func TestSurfaceToVolume(t *testing.T) {
	p := 4
	frac := func(n int) float64 {
		a := lu.Random(n, 3)
		b := lu.Random(n, 4)
		_, res, err := Run(Config{Machine: machineCfg(p), Algo: SUMMA}, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return res.BusyFraction()
	}
	small, large := frac(8), frac(48)
	if large <= small {
		t.Errorf("compute fraction did not grow: n=8 %.3f, n=48 %.3f", small, large)
	}
	if large < 0.5 {
		t.Errorf("large problem not compute-bound: %.3f", large)
	}
}

func TestValidation(t *testing.T) {
	a := lu.Random(10, 1)
	b := lu.Random(12, 1)
	if _, _, err := Run(Config{Machine: machineCfg(4), Algo: SUMMA}, a, b); err == nil {
		t.Error("size mismatch accepted")
	}
	c := lu.Random(10, 1)
	if _, _, err := Run(Config{Machine: machineCfg(3), Algo: SUMMA}, c, c); err == nil {
		t.Error("non-square P accepted for SUMMA")
	}
	if _, _, err := Run(Config{Machine: machineCfg(9), Algo: SUMMA}, lu.Random(10, 1), lu.Random(10, 1)); err == nil {
		t.Error("n not divisible by grid side accepted")
	}
	if _, _, err := Run(Config{Machine: machineCfg(4), Algo: RowBroadcast}, lu.Random(10, 1), lu.Random(10, 1)); err == nil {
		t.Error("n not divisible by P accepted")
	}
	if _, _, err := Run(Config{Machine: machineCfg(4), Algo: Algorithm(9)}, lu.Random(8, 1), lu.Random(8, 1)); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestDeterminism(t *testing.T) {
	a := lu.Random(16, 5)
	b := lu.Random(16, 6)
	_, r1, err := Run(Config{Machine: machineCfg(4), Algo: SUMMA}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	_, r2, err := Run(Config{Machine: machineCfg(4), Algo: SUMMA}, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Time != r2.Time || r1.Messages != r2.Messages {
		t.Error("nondeterministic")
	}
}
