package cc

import (
	"fmt"
	"sort"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/logp"
)

// Mode selects how label updates travel between processors.
type Mode int

const (
	// NaiveMode sends one message per adjacent edge per changed vertex:
	// the contention-oblivious PRAM transcription. Hubs drown in duplicate
	// candidates.
	NaiveMode Mode = iota
	// CombiningMode deduplicates candidates per (destination vertex) and
	// keeps only the minimum before sending: the "local optimizations"
	// that considerably mitigate the severe contention of naive
	// implementations (Section 4.2.3).
	CombiningMode
)

func (m Mode) String() string {
	if m == NaiveMode {
		return "naive"
	}
	return "combining"
}

// Config describes a parallel connected-components run.
type Config struct {
	Machine logp.Config
	Mode    Mode
	// EdgeOpCycles is the simulated cost of touching one adjacency entry
	// (default 1).
	EdgeOpCycles int64
}

func (c Config) edgeOp() int64 {
	if c.EdgeOpCycles <= 0 {
		return 1
	}
	return c.EdgeOpCycles
}

// Stats reports a run.
type Stats struct {
	Time     int64
	Rounds   int
	Messages int
	// ComputeCycles and CommCycles are summed over processors; a run is
	// compute-bound when the former dominates.
	ComputeCycles int64
	CommCycles    int64
	MaxRecvByProc int
}

const (
	tagUpdate = 11001 // label candidate: Data = [2]int{vertex, label}
	tagFlush  = 11002 // per-round per-peer count of updates sent
	tagDone   = 11003 // reduction of the global change flag
)

// Run labels every vertex with the minimum vertex id of its component, on
// the simulated machine. Vertices are distributed cyclically (vertex v on
// processor v mod P); each processor knows the adjacency of its vertices.
// Rounds alternate: propagate changed labels to neighbours, absorb incoming
// candidates, then agree globally (via reduce+broadcast) whether anything
// changed.
func Run(cfg Config, g *Graph) ([]int, Stats, error) {
	if err := g.Validate(); err != nil {
		return nil, Stats{}, err
	}
	P := cfg.Machine.P
	if P < 1 {
		return nil, Stats{}, fmt.Errorf("cc: no processors")
	}

	// Build per-processor adjacency (instrumentation, not simulated).
	adj := make([]map[int][]int, P)
	for i := range adj {
		adj[i] = make(map[int][]int)
	}
	for _, e := range g.Edges {
		u, v := e[0], e[1]
		adj[u%P][u] = append(adj[u%P][u], v)
		adj[v%P][v] = append(adj[v%P][v], u)
	}

	labels := make([]int, g.N)
	var stats Stats
	rounds := make([]int, P)

	res, err := logp.Run(cfg.Machine, func(p *logp.Proc) {
		rounds[p.ID()] = runProc(p, cfg, g.N, adj[p.ID()], labels)
	})
	if err != nil {
		return nil, Stats{}, err
	}
	stats.Time = res.Time
	stats.Messages = res.Messages
	stats.Rounds = rounds[0]
	for _, s := range res.Procs {
		stats.ComputeCycles += s.Compute
		stats.CommCycles += s.SendOverhead + s.RecvOverhead + s.Stall
		if s.MsgsReceived > stats.MaxRecvByProc {
			stats.MaxRecvByProc = s.MsgsReceived
		}
	}
	return labels, stats, nil
}

// runProc executes the label-propagation rounds for one processor and
// returns the number of rounds.
func runProc(p *logp.Proc, cfg Config, n int, myAdj map[int][]int, labels []int) int {
	P := p.P()
	me := p.ID()
	edgeOp := cfg.edgeOp()

	label := make(map[int]int, len(myAdj))
	var changedList []int // sorted: keeps runs deterministic
	for v := me; v < n; v += P {
		label[v] = v
		if len(myAdj[v]) > 0 {
			changedList = append(changedList, v)
		}
	}
	sort.Ints(changedList)

	round := 0
	for {
		round++
		// Gather candidates for neighbours of vertices whose label changed
		// last round.
		type cand struct{ vertex, label int }
		var outbox []cand
		nextChanged := make(map[int]bool)
		combined := make(map[int]int) // vertex -> best candidate (combining mode)
		for _, v := range changedList {
			lv := label[v]
			for _, w := range myAdj[v] {
				p.Compute(edgeOp)
				if w%P == me {
					if lv < label[w] {
						label[w] = lv
						nextChanged[w] = true // propagates next round
					}
					continue
				}
				if cfg.Mode == CombiningMode {
					if best, ok := combined[w]; !ok || lv < best {
						combined[w] = lv
					}
				} else {
					outbox = append(outbox, cand{w, lv})
				}
			}
		}
		if cfg.Mode == CombiningMode {
			keys := make([]int, 0, len(combined))
			for w := range combined {
				keys = append(keys, w)
			}
			sort.Ints(keys)
			for _, w := range keys {
				outbox = append(outbox, cand{w, combined[w]})
			}
			p.Compute(int64(len(combined))) // the combining compares
		}

		sendCount := make([]int, P)
		for _, c := range outbox {
			dst := c.vertex % P
			p.Send(dst, tagUpdate, [2]int{c.vertex, c.label})
			sendCount[dst]++
		}
		// Flush protocol: tell every peer how many updates it should expect
		// from us this round, so receivers know when the round's traffic is
		// fully drained.
		for i := 1; i < P; i++ {
			d := (me + i) % P
			p.Send(d, tagFlush, sendCount[d])
		}
		expect := 0
		for i := 1; i < P; i++ {
			expect += p.RecvTag(tagFlush).Data.(int)
		}
		for r := 0; r < expect; r++ {
			m := p.RecvTag(tagUpdate).Data.([2]int)
			v, lv := m[0], m[1]
			p.Compute(1)
			if lv < label[v] {
				label[v] = lv
				nextChanged[v] = true
			}
		}

		// Global agreement: did any processor change a label?
		changedHere := len(nextChanged) > 0
		v, _ := collective.BinomialReduce(p, 0, tagDone+2*round, changedHere, func(a, b any) any {
			return a.(bool) || b.(bool)
		})
		verdict := collective.BinomialBroadcast(p, 0, tagDone+2*round+1, v)
		if !verdict.(bool) {
			break
		}
		changedList = changedList[:0]
		for w := range nextChanged {
			changedList = append(changedList, w)
		}
		sort.Ints(changedList)
	}

	for v, lv := range label {
		labels[v] = lv
	}
	return round
}
