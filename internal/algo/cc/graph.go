// Package cc implements the connected-components discussion of
// Section 4.2.3 on the LogP machine. PRAM algorithms for this problem
// funnel increasing numbers of queries at the representatives of large
// components — contention "which the CRCW PRAM ignores, but LogP makes
// apparent". Following the paper's prescription (local optimizations that
// mitigate contention; the cited implementation details are in [31], which
// is not reproducible verbatim), this package implements deterministic
// min-label propagation over distributed vertices in two variants: a naive
// one that sends one message per edge endpoint per round, and a combining
// one that deduplicates candidates per (destination, vertex) before
// sending — the contention mitigation. On sufficiently dense graphs the
// combining variant is compute-bound, the paper's conclusion.
package cc

import (
	"fmt"
	"math/rand"
)

// Graph is an undirected graph on vertices 0..N-1.
type Graph struct {
	N     int
	Edges [][2]int
}

// RandomGraph generates a graph with m distinct random edges (no self
// loops), deterministic in seed.
func RandomGraph(n, m int, seed int64) *Graph {
	if m > n*(n-1)/2 {
		m = n * (n - 1) / 2
	}
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[[2]int]bool, m)
	g := &Graph{N: n}
	for len(g.Edges) < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if seen[key] {
			continue
		}
		seen[key] = true
		g.Edges = append(g.Edges, key)
	}
	return g
}

// Star returns a star graph: vertex 0 connected to all others — the
// worst-case contention pattern (every label query targets the hub's owner).
func Star(n int) *Graph {
	g := &Graph{N: n}
	for v := 1; v < n; v++ {
		g.Edges = append(g.Edges, [2]int{0, v})
	}
	return g
}

// Path returns a path graph 0-1-2-...-n-1: maximum-diameter single
// component, the worst case for propagation round counts.
func Path(n int) *Graph {
	g := &Graph{N: n}
	for v := 1; v < n; v++ {
		g.Edges = append(g.Edges, [2]int{v - 1, v})
	}
	return g
}

// Components computes the reference labeling with union-find: every vertex
// is labeled with the smallest vertex id in its component.
func Components(g *Graph) []int {
	parent := make([]int, g.N)
	for i := range parent {
		parent[i] = i
	}
	var find func(x int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, e := range g.Edges {
		ru, rv := find(e[0]), find(e[1])
		if ru != rv {
			if ru > rv {
				ru, rv = rv, ru
			}
			parent[rv] = ru // smaller id wins, keeping labels canonical
		}
	}
	labels := make([]int, g.N)
	for v := range labels {
		labels[v] = find(v)
	}
	// Normalize: the root chain above may not end at the minimum; enforce
	// min-label by a second pass.
	min := make(map[int]int)
	for v, r := range labels {
		if m, ok := min[r]; !ok || v < m {
			min[r] = v
		}
	}
	for v, r := range labels {
		labels[v] = min[r]
	}
	return labels
}

// CountComponents returns the number of distinct components in a labeling.
func CountComponents(labels []int) int {
	seen := make(map[int]bool)
	for _, l := range labels {
		seen[l] = true
	}
	return len(seen)
}

// Validate checks that a graph's edges are in range.
func (g *Graph) Validate() error {
	for _, e := range g.Edges {
		if e[0] < 0 || e[0] >= g.N || e[1] < 0 || e[1] >= g.N || e[0] == e[1] {
			return fmt.Errorf("cc: bad edge %v in graph of %d vertices", e, g.N)
		}
	}
	return nil
}
