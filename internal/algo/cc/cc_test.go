package cc

import (
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func machineCfg(p int) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: 20, O: 4, G: 8}}
}

func sameLabels(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSequentialComponents(t *testing.T) {
	g := &Graph{N: 7, Edges: [][2]int{{0, 1}, {1, 2}, {3, 4}}}
	labels := Components(g)
	want := []int{0, 0, 0, 3, 3, 5, 6}
	if !sameLabels(labels, want) {
		t.Errorf("labels = %v, want %v", labels, want)
	}
	if CountComponents(labels) != 4 {
		t.Errorf("count = %d, want 4", CountComponents(labels))
	}
}

func TestGraphGenerators(t *testing.T) {
	g := RandomGraph(50, 100, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 100 {
		t.Errorf("%d edges, want 100", len(g.Edges))
	}
	if len(RandomGraph(5, 1000, 1).Edges) != 10 {
		t.Error("edge cap not applied")
	}
	s := Star(10)
	if CountComponents(Components(s)) != 1 {
		t.Error("star not connected")
	}
	p := Path(10)
	if CountComponents(Components(p)) != 1 {
		t.Error("path not connected")
	}
	bad := &Graph{N: 3, Edges: [][2]int{{0, 5}}}
	if bad.Validate() == nil {
		t.Error("bad edge accepted")
	}
}

func TestParallelMatchesUnionFind(t *testing.T) {
	cases := []*Graph{
		RandomGraph(40, 60, 2),
		RandomGraph(64, 300, 3),
		RandomGraph(30, 10, 4), // sparse: many components
		Star(33),
		Path(25),
		{N: 5}, // no edges at all
		{N: 1}, // singleton
	}
	for gi, g := range cases {
		want := Components(g)
		for _, P := range []int{1, 2, 4, 8} {
			for _, mode := range []Mode{NaiveMode, CombiningMode} {
				got, st, err := Run(Config{Machine: machineCfg(P), Mode: mode}, g)
				if err != nil {
					t.Fatalf("graph %d P=%d %v: %v", gi, P, mode, err)
				}
				if !sameLabels(got, want) {
					t.Errorf("graph %d P=%d %v: labels differ from union-find", gi, P, mode)
				}
				if st.Rounds < 1 {
					t.Errorf("graph %d: %d rounds", gi, st.Rounds)
				}
			}
		}
	}
}

func TestParallelPropertyRandom(t *testing.T) {
	f := func(seed int64, nn, mm uint8, mode bool) bool {
		n := int(nn%40) + 2
		m := int(mm % 80)
		g := RandomGraph(n, m, seed)
		want := Components(g)
		md := NaiveMode
		if mode {
			md = CombiningMode
		}
		got, _, err := Run(Config{Machine: machineCfg(4), Mode: md}, g)
		if err != nil {
			return false
		}
		return sameLabels(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCombiningMitigatesContention: on a star graph every edge candidate
// targets the hub's owner. Combining collapses them to one candidate per
// round per processor, slashing what the hub receives and the total time —
// the Section 4.2.3 contention mitigation.
func TestCombiningMitigatesContention(t *testing.T) {
	g := Star(256)
	naive, stN, err := Run(Config{Machine: machineCfg(8), Mode: NaiveMode}, g)
	if err != nil {
		t.Fatal(err)
	}
	comb, stC, err := Run(Config{Machine: machineCfg(8), Mode: CombiningMode}, g)
	if err != nil {
		t.Fatal(err)
	}
	if !sameLabels(naive, comb) {
		t.Fatal("modes disagree")
	}
	if stC.MaxRecvByProc >= stN.MaxRecvByProc {
		t.Errorf("combining hub receives %d, naive %d: no mitigation", stC.MaxRecvByProc, stN.MaxRecvByProc)
	}
	if stC.Time >= stN.Time {
		t.Errorf("combining time %d not below naive %d", stC.Time, stN.Time)
	}
}

// TestDenseGraphIsComputeBound: the paper's conclusion — "for sufficiently
// dense graphs our connected components algorithm is compute-bound".
func TestDenseGraphIsComputeBound(t *testing.T) {
	g := RandomGraph(256, 12000, 7)
	_, st, err := Run(Config{Machine: machineCfg(8), Mode: CombiningMode}, g)
	if err != nil {
		t.Fatal(err)
	}
	if st.ComputeCycles <= st.CommCycles {
		t.Errorf("dense graph not compute-bound: compute %d, comm %d", st.ComputeCycles, st.CommCycles)
	}
	// And a sparse long path is communication-bound by contrast.
	sparse := Path(64)
	_, st2, err := Run(Config{Machine: machineCfg(8), Mode: CombiningMode}, sparse)
	if err != nil {
		t.Fatal(err)
	}
	if st2.CommCycles <= st2.ComputeCycles {
		t.Errorf("sparse path not comm-bound: compute %d, comm %d", st2.ComputeCycles, st2.CommCycles)
	}
}

func TestPathRoundsGrowWithDiameter(t *testing.T) {
	_, short, err := Run(Config{Machine: machineCfg(4), Mode: CombiningMode}, Path(8))
	if err != nil {
		t.Fatal(err)
	}
	_, long, err := Run(Config{Machine: machineCfg(4), Mode: CombiningMode}, Path(64))
	if err != nil {
		t.Fatal(err)
	}
	if long.Rounds <= short.Rounds {
		t.Errorf("rounds: path64 %d, path8 %d", long.Rounds, short.Rounds)
	}
}

func TestRunDeterminism(t *testing.T) {
	g := RandomGraph(60, 200, 11)
	_, a, err := Run(Config{Machine: machineCfg(4), Mode: CombiningMode}, g)
	if err != nil {
		t.Fatal(err)
	}
	_, b, err := Run(Config{Machine: machineCfg(4), Mode: CombiningMode}, g)
	if err != nil {
		t.Fatal(err)
	}
	if a.Time != b.Time || a.Messages != b.Messages || a.Rounds != b.Rounds {
		t.Errorf("nondeterministic: %+v vs %+v", a, b)
	}
}
