package sort

import (
	"math/rand"
	gosort "sort"
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func machineCfg(p int) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: 20, O: 4, G: 8}}
}

func randomKeys(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.NormFloat64() * 100
	}
	return out
}

func checkSorted(t *testing.T, name string, in, out []float64) {
	t.Helper()
	if len(out) != len(in) {
		t.Fatalf("%s: %d keys out, %d in", name, len(out), len(in))
	}
	if !gosort.Float64sAreSorted(out) {
		t.Errorf("%s: output not sorted", name)
		return
	}
	want := append([]float64(nil), in...)
	gosort.Float64s(want)
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("%s: output is not a permutation of the input (at %d)", name, i)
			return
		}
	}
}

func TestSplitterSortSmall(t *testing.T) {
	for _, pc := range []struct{ n, p int }{
		{256, 4}, {300, 4}, {512, 8}, {129, 2}, {1000, 5}, {64, 1},
	} {
		in := randomKeys(pc.n, int64(pc.n))
		out, st, err := Run(Config{Machine: machineCfg(pc.p), Algo: Splitter}, in)
		if err != nil {
			t.Fatalf("n=%d P=%d: %v", pc.n, pc.p, err)
		}
		checkSorted(t, "splitter", in, out)
		if pc.p > 1 && st.Messages == 0 {
			t.Errorf("n=%d P=%d: no messages", pc.n, pc.p)
		}
	}
}

func TestBitonicSort(t *testing.T) {
	for _, pc := range []struct{ n, p int }{
		{256, 4}, {512, 8}, {128, 2}, {64, 1}, {96, 4},
	} {
		in := randomKeys(pc.n, int64(pc.n)*3)
		out, _, err := Run(Config{Machine: machineCfg(pc.p), Algo: Bitonic}, in)
		if err != nil {
			t.Fatalf("n=%d P=%d: %v", pc.n, pc.p, err)
		}
		checkSorted(t, "bitonic", in, out)
	}
}

func TestSortPropertyRandom(t *testing.T) {
	f := func(seed int64, alg bool) bool {
		algo := Splitter
		if alg {
			algo = Bitonic
		}
		in := randomKeys(256, seed)
		out, _, err := Run(Config{Machine: machineCfg(4), Algo: algo}, in)
		if err != nil {
			return false
		}
		if !gosort.Float64sAreSorted(out) {
			return false
		}
		want := append([]float64(nil), in...)
		gosort.Float64s(want)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSortWithDuplicates(t *testing.T) {
	in := make([]float64, 400)
	for i := range in {
		in[i] = float64(i % 7)
	}
	for _, algo := range []Algorithm{Splitter, Bitonic} {
		out, _, err := Run(Config{Machine: machineCfg(4), Algo: algo}, in)
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		checkSorted(t, algo.String(), in, out)
	}
}

func TestSortUnderJitter(t *testing.T) {
	cfg := Config{Machine: machineCfg(8), Algo: Splitter}
	cfg.Machine.LatencyJitter = 15
	cfg.Machine.Seed = 4
	in := randomKeys(512, 99)
	out, _, err := Run(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, "splitter-jitter", in, out)
}

// TestSplitterBeatsBitonicForLargeChunks: with many keys per processor the
// single remap of splitter sort beats bitonic's log^2(P) block exchanges —
// the Section 4.2.2 observation that compute-remap-compute wins when
// "processors handle large subproblems".
func TestSplitterBeatsBitonicForLargeChunks(t *testing.T) {
	in := randomKeys(4096, 12)
	run := func(algo Algorithm) int64 {
		_, st, err := Run(Config{Machine: machineCfg(8), Algo: algo}, in)
		if err != nil {
			t.Fatal(err)
		}
		return st.Time
	}
	split := run(Splitter)
	bit := run(Bitonic)
	if split >= bit {
		t.Errorf("splitter %d not faster than bitonic %d", split, bit)
	}
}

// TestSplitterLoadBalance: oversampling keeps the largest chunk within a
// reasonable factor of the mean.
func TestSplitterLoadBalance(t *testing.T) {
	in := randomKeys(4096, 21)
	_, st, err := Run(Config{Machine: machineCfg(8), Algo: Splitter, Oversample: 32}, in)
	if err != nil {
		t.Fatal(err)
	}
	mean := 4096 / 8
	if st.MaxChunk > 3*mean {
		t.Errorf("max chunk %d more than 3x the mean %d", st.MaxChunk, mean)
	}
}

func TestSortValidation(t *testing.T) {
	if _, _, err := Run(Config{Machine: machineCfg(6), Algo: Bitonic}, randomKeys(128, 1)); err == nil {
		t.Error("bitonic accepted non-power-of-two P")
	}
	if _, _, err := Run(Config{Machine: machineCfg(8), Algo: Splitter}, randomKeys(10, 1)); err == nil {
		t.Error("splitter accepted too few keys for sampling")
	}
}

func TestColumnSort(t *testing.T) {
	// n/P must be even and >= 2(P-1)^2.
	for _, pc := range []struct{ n, p int }{
		{64, 1}, {128, 2}, {256, 4}, {1024, 4}, {800, 5},
	} {
		in := randomKeys(pc.n, int64(pc.n)*11)
		out, st, err := Run(Config{Machine: machineCfg(pc.p), Algo: Column}, in)
		if err != nil {
			t.Fatalf("n=%d P=%d: %v", pc.n, pc.p, err)
		}
		checkSorted(t, "column", in, out)
		if pc.p > 1 && st.Messages == 0 {
			t.Errorf("n=%d P=%d: no messages", pc.n, pc.p)
		}
	}
}

func TestColumnSortWithDuplicates(t *testing.T) {
	in := make([]float64, 512)
	for i := range in {
		in[i] = float64(i % 5)
	}
	out, _, err := Run(Config{Machine: machineCfg(4), Algo: Column}, in)
	if err != nil {
		t.Fatal(err)
	}
	checkSorted(t, "column-dup", in, out)
}

func TestColumnSortProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := randomKeys(512, seed)
		out, _, err := Run(Config{Machine: machineCfg(4), Algo: Column}, in)
		if err != nil {
			return false
		}
		if !gosort.Float64sAreSorted(out) {
			return false
		}
		want := append([]float64(nil), in...)
		gosort.Float64s(want)
		for i := range want {
			if out[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestColumnSortValidation(t *testing.T) {
	// n not divisible by P.
	if _, _, err := Run(Config{Machine: machineCfg(4), Algo: Column}, randomKeys(130, 1)); err == nil {
		t.Error("indivisible n accepted")
	}
	// r below 2(P-1)^2.
	if _, _, err := Run(Config{Machine: machineCfg(8), Algo: Column}, randomKeys(256, 1)); err == nil {
		t.Error("too-small r accepted")
	}
	if columnSortMinRows(1) != 1 || columnSortMinRows(4) != 18 {
		t.Errorf("min rows wrong: %d %d", columnSortMinRows(1), columnSortMinRows(4))
	}
}
