// Package sort implements the parallel sorting discussion of Section 4.2.2
// on the LogP machine: splitter sort ("a fast global step identifies P-1
// values that split the data into P almost equal chunks; the data is
// remapped using the splitters and then each processor performs a local
// sort"), following the compute-remap-compute pattern of the FFT, and a
// bitonic merge sort baseline whose oblivious communication pattern pays a
// full exchange per merge stage.
package sort

import (
	"fmt"
	"math/rand"
	gosort "sort"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/logp"
)

// Algorithm selects the parallel sort.
type Algorithm int

const (
	// Splitter is sample sort: splitter selection, one all-to-all remap,
	// local sort.
	Splitter Algorithm = iota
	// Bitonic is the oblivious bitonic merge sort over P processors, each
	// holding a locally sorted block.
	Bitonic
	// Column is Leighton's column sort: local sorts alternating with fixed
	// remap permutations — oblivious like bitonic, but with the FFT-style
	// compute-remap-compute structure. Requires n/P >= 2(P-1)^2 (and even).
	Column
)

func (a Algorithm) String() string {
	switch a {
	case Splitter:
		return "splitter"
	case Bitonic:
		return "bitonic"
	case Column:
		return "column"
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// Config describes a parallel sort run.
type Config struct {
	Machine logp.Config
	Algo    Algorithm
	// Oversample is the number of sample candidates per processor for
	// splitter selection (default 8). Larger values balance the final
	// chunks better at the cost of a bigger gather.
	Oversample int
	// CompareCycles is the simulated cost of one comparison (default 1).
	CompareCycles int64
}

func (c Config) cmp() int64 {
	if c.CompareCycles <= 0 {
		return 1
	}
	return c.CompareCycles
}

func (c Config) oversample() int {
	if c.Oversample <= 0 {
		return 8
	}
	return c.Oversample
}

// Stats reports what a run did.
type Stats struct {
	Time int64
	// MaxChunk is the largest per-processor final chunk (load balance).
	MaxChunk int
	// Messages is the total message count.
	Messages int
}

// Run sorts the input on the simulated machine and returns the sorted data
// (concatenation of the processors' final chunks), with data distributed
// blockwise to start: processor i holds input[i*n/P : (i+1)*n/P] plus the
// remainder on the last processor.
func Run(cfg Config, input []float64) ([]float64, Stats, error) {
	P := cfg.Machine.P
	n := len(input)
	if P < 1 {
		return nil, Stats{}, fmt.Errorf("sort: no processors")
	}
	if cfg.Algo == Bitonic && P&(P-1) != 0 {
		return nil, Stats{}, fmt.Errorf("sort: bitonic needs power-of-two P, got %d", P)
	}
	if n < P*cfg.oversample() && cfg.Algo == Splitter && P > 1 {
		return nil, Stats{}, fmt.Errorf("sort: need at least %d keys for splitter sampling, got %d", P*cfg.oversample(), n)
	}
	if cfg.Algo == Column && P > 1 {
		if n%P != 0 {
			return nil, Stats{}, fmt.Errorf("sort: column sort needs n divisible by P (n=%d, P=%d)", n, P)
		}
		r := n / P
		if r%2 != 0 || r < columnSortMinRows(P) {
			return nil, Stats{}, fmt.Errorf("sort: column sort needs even n/P >= 2(P-1)^2 (n/P=%d, need %d)", r, columnSortMinRows(P))
		}
	}

	// Initial block distribution.
	chunks := make([][]float64, P)
	per := n / P
	for i := 0; i < P; i++ {
		lo, hi := i*per, (i+1)*per
		if i == P-1 {
			hi = n
		}
		chunks[i] = append([]float64(nil), input[lo:hi]...)
	}

	final := make([][]float64, P)
	res, err := logp.Run(cfg.Machine, func(p *logp.Proc) {
		switch cfg.Algo {
		case Splitter:
			final[p.ID()] = splitterSort(p, cfg, chunks[p.ID()])
		case Bitonic:
			final[p.ID()] = bitonicSort(p, cfg, chunks[p.ID()])
		case Column:
			final[p.ID()] = columnSort(p, cfg, chunks[p.ID()])
		default:
			panic(fmt.Sprintf("sort: unknown algorithm %d", int(cfg.Algo)))
		}
	})
	if err != nil {
		return nil, Stats{}, err
	}

	st := Stats{Time: res.Time, Messages: res.Messages}
	var out []float64
	for _, c := range final {
		if len(c) > st.MaxChunk {
			st.MaxChunk = len(c)
		}
		out = append(out, c...)
	}
	return out, st, nil
}

// localSort sorts x in place, charging n log2 n comparisons.
func localSort(p *logp.Proc, cfg Config, x []float64) {
	gosort.Float64s(x)
	n := int64(len(x))
	if n > 1 {
		lg := int64(0)
		for v := n; v > 1; v >>= 1 {
			lg++
		}
		p.Compute(n * lg * cfg.cmp())
	}
}

const (
	tagSample = 9001
	tagSplit  = 9002
	tagData   = 9003
	tagCount  = 9004
)

// splitterSort: each processor samples its chunk, processor 0 gathers the
// samples and picks P-1 splitters, broadcasts them, everyone partitions its
// chunk and exchanges, then sorts locally.
func splitterSort(p *logp.Proc, cfg Config, mine []float64) []float64 {
	P := p.P()
	if P == 1 {
		localSort(p, cfg, mine)
		return mine
	}
	me := p.ID()
	s := cfg.oversample()

	// Sample pseudorandomly (deterministic per processor) from the local
	// chunk; non-roots ship their samples to processor 0.
	rng := rand.New(rand.NewSource(int64(me)*7919 + 17))
	samples := make([]float64, 0, P*s)
	for i := 0; i < s; i++ {
		v := mine[rng.Intn(len(mine))]
		if me == 0 {
			samples = append(samples, v)
		} else {
			p.Send(0, tagSample, v)
		}
	}

	// Processor 0 selects the splitters.
	var splitters []float64
	if me == 0 {
		for len(samples) < P*s {
			samples = append(samples, p.RecvTag(tagSample).Data.(float64))
		}
		localSort(p, cfg, samples)
		splitters = make([]float64, P-1)
		for i := 1; i < P; i++ {
			splitters[i-1] = samples[i*s]
			p.Compute(1)
		}
	}
	// Broadcast the P-1 splitters down the binomial tree, one word per
	// message as the model requires.
	vals := collective.PipelinedBinomialBroadcast(p, 0, tagSplit, P-1, func(i int) any {
		return splitters[i]
	})
	splitters = make([]float64, P-1)
	for i, v := range vals {
		splitters[i] = v.(float64)
	}

	// Partition the local chunk and exchange counts, then data.
	parts := make([][]float64, P)
	for _, v := range mine {
		d := gosort.SearchFloat64s(splitters, v) // log2(P) compares
		parts[d] = append(parts[d], v)
	}
	lg := int64(1)
	for v := P; v > 1; v >>= 1 {
		lg++
	}
	p.Compute(int64(len(mine)) * lg * cfg.cmp())

	// Tell every peer how many values to expect (staggered destinations),
	// then stream the data the same way, receiving while sending.
	expect := len(parts[me])
	for i := 1; i < P; i++ {
		d := (me + i) % P
		p.Send(d, tagCount, len(parts[d]))
	}
	for i := 1; i < P; i++ {
		expect += p.RecvTag(tagCount).Data.(int)
	}
	out := append([]float64(nil), parts[me]...)
	for i := 1; i < P; i++ {
		d := (me + i) % P
		for _, v := range parts[d] {
			for p.HasTag(tagData) && len(out) < expect {
				out = append(out, p.RecvTag(tagData).Data.(float64))
			}
			p.Send(d, tagData, v)
		}
	}
	for len(out) < expect {
		out = append(out, p.RecvTag(tagData).Data.(float64))
	}
	localSort(p, cfg, out)
	return out
}

// bitonicSort: locally sort, then log2(P) merge rounds; in round j each
// processor exchanges its whole block with its partner and keeps the lower
// or upper half, the classic bitonic merge over blocks.
func bitonicSort(p *logp.Proc, cfg Config, mine []float64) []float64 {
	P := p.P()
	localSort(p, cfg, mine)
	if P == 1 {
		return mine
	}
	me := p.ID()
	round := 0
	for k := 2; k <= P; k <<= 1 {
		for j := k >> 1; j > 0; j >>= 1 {
			partner := me ^ j
			ascending := me&k == 0
			keepLow := (me < partner) == ascending
			// Exchange blocks (one message per key, interleaved). Tags are
			// round-specific: a fast pair can start the next round while a
			// slow pair is still merging, and their messages must not mix.
			theirs := exchangeBlocks(p, partner, round, mine)
			mine = mergeKeep(p, cfg, mine, theirs, keepLow)
			round++
		}
	}
	return mine
}

// exchangeBlocks swaps key blocks with a partner, receiving while sending.
func exchangeBlocks(p *logp.Proc, partner, round int, mine []float64) []float64 {
	tc := tagCount + 16*(round+1)
	td := tagData + 16*(round+1)
	theirs := make([]float64, 0, len(mine))
	// Partner count goes first so both sides know how much to expect.
	p.Send(partner, tc, len(mine))
	expect := p.RecvTag(tc).Data.(int)
	for _, v := range mine {
		for p.HasTag(td) && len(theirs) < expect {
			theirs = append(theirs, p.RecvTag(td).Data.(float64))
		}
		p.Send(partner, td, v)
	}
	for len(theirs) < expect {
		theirs = append(theirs, p.RecvTag(td).Data.(float64))
	}
	return theirs
}

// mergeKeep merges two sorted blocks and keeps the low or high half
// (sized to this processor's block), charging one compare per kept key.
func mergeKeep(p *logp.Proc, cfg Config, a, b []float64, low bool) []float64 {
	keep := len(a)
	merged := make([]float64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			merged = append(merged, a[i])
			i++
		} else {
			merged = append(merged, b[j])
			j++
		}
	}
	merged = append(merged, a[i:]...)
	merged = append(merged, b[j:]...)
	p.Compute(int64(len(merged)) * cfg.cmp())
	if low {
		return merged[:keep]
	}
	return merged[len(merged)-keep:]
}
