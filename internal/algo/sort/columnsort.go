package sort

import (
	gosort "sort"

	"github.com/logp-model/logp/internal/logp"
)

// Column sort (Leighton 1985), the example Section 4.2.2 cites for the
// compute-remap-compute structure: "column sort consists of a series of
// local sorts and remap steps, similar to our FFT algorithm". The keys form
// an r x s matrix with one column per processor (s = P); eight steps
// alternate local column sorts with deterministic remaps:
//
//	1. sort columns    2. transpose (pick up column-major, lay down row-major)
//	3. sort columns    4. untranspose (the inverse)
//	5. sort columns    6-8. shift by r/2, sort, unshift
//
// Steps 6-8 reduce to a boundary merge between adjacent columns: with the
// +/- infinity padding of the shifted matrix, the only conceptual columns
// with work to do are those holding the bottom half of column c and the top
// half of column c+1, so each processor merges its top half with its left
// neighbour's bottom half and the halves return whence they came.
//
// The algorithm is oblivious — every remap is a fixed permutation known in
// advance, so the exchanges use the staggered schedule like the FFT's.
// Correctness requires r >= 2(s-1)^2 and even r.

// columnSortMinRows returns the smallest legal r for s columns.
func columnSortMinRows(s int) int {
	if s <= 1 {
		return 1
	}
	r := 2 * (s - 1) * (s - 1)
	if r%2 == 1 {
		r++
	}
	return r
}

// keyMsg carries one key and its destination slot.
type keyMsg struct {
	Idx int
	Val float64
}

// columnSort runs the steps for this processor's column and returns the
// sorted column (global order is column-major: processor 0 holds the
// smallest r keys).
func columnSort(p *logp.Proc, cfg Config, mine []float64) []float64 {
	P := p.P()
	if P == 1 {
		localSort(p, cfg, mine)
		return mine
	}
	r := len(mine)
	me := p.ID()

	// Step 1+2: sort, then transpose: column-major flat index f = me*r+i
	// lands at row-major position (row f/s, column f mod s).
	localSort(p, cfg, mine)
	mine = remapKeys(p, cfg, mine, 1, func(i int) (int, int) {
		flat := me*r + i
		return flat % P, flat / P
	})
	// Step 3+4: sort, then untranspose: row-major index f' = i*s + me goes
	// back to column-major (column f'/r, row f' mod r).
	localSort(p, cfg, mine)
	mine = remapKeys(p, cfg, mine, 2, func(i int) (int, int) {
		flat := i*P + me
		return flat / r, flat % r
	})
	// Step 5: sort.
	localSort(p, cfg, mine)
	// Steps 6-8 as the boundary merge: my bottom half visits my right
	// neighbour, is sorted together with its top half, and comes back.
	half := r / 2
	const mergeTag = tagData + 500
	if me < P-1 {
		for i := half; i < r; i++ {
			p.Send(me+1, mergeTag, keyMsg{Idx: i - half, Val: mine[i]})
		}
	}
	if me > 0 {
		combined := make([]float64, half, r)
		for k := 0; k < half; k++ {
			m := p.RecvTag(mergeTag).Data.(keyMsg)
			combined[m.Idx] = m.Val
		}
		combined = append(combined, mine[:half]...)
		localSort(p, cfg, combined)
		for i := 0; i < half; i++ {
			p.Send(me-1, mergeTag+1, keyMsg{Idx: i, Val: combined[i]})
		}
		copy(mine[:half], combined[half:])
	}
	if me < P-1 {
		for k := 0; k < half; k++ {
			m := p.RecvTag(mergeTag + 1).Data.(keyMsg)
			mine[half+m.Idx] = m.Val
		}
	}
	return mine
}

// remapKeys sends every local key to the (destProc, destIndex) given by
// dest — a fixed permutation — receives this processor's incoming keys, and
// returns them ordered by destIndex. Staggered destination order,
// receive-interleaved.
func remapKeys(p *logp.Proc, cfg Config, mine []float64, phase int, dest func(i int) (int, int)) []float64 {
	P := p.P()
	me := p.ID()
	tag := tagData + 100*phase
	ctag := tagCount + 100*phase

	type keyed struct {
		idx int
		val float64
	}
	buckets := make([][]keyed, P)
	for i, v := range mine {
		d, idx := dest(i)
		buckets[d] = append(buckets[d], keyed{idx, v})
	}
	// Counts first so receivers know what to expect.
	for i := 1; i < P; i++ {
		d := (me + i) % P
		p.Send(d, ctag, len(buckets[d]))
	}
	expect := len(buckets[me])
	for i := 1; i < P; i++ {
		expect += p.RecvTag(ctag).Data.(int)
	}
	got := make(map[int]float64, expect)
	for _, kv := range buckets[me] {
		got[kv.idx] = kv.val
	}
	recvd := len(buckets[me])
	for i := 1; i < P; i++ {
		d := (me + i) % P
		for _, kv := range buckets[d] {
			for p.HasTag(tag) && recvd < expect {
				m := p.RecvTag(tag).Data.(keyMsg)
				got[m.Idx] = m.Val
				recvd++
			}
			p.Send(d, tag, keyMsg{Idx: kv.idx, Val: kv.val})
		}
	}
	for recvd < expect {
		m := p.RecvTag(tag).Data.(keyMsg)
		got[m.Idx] = m.Val
		recvd++
	}
	out := make([]float64, 0, len(got))
	idxs := make([]int, 0, len(got))
	for idx := range got {
		idxs = append(idxs, idx)
	}
	gosort.Ints(idxs)
	for _, idx := range idxs {
		out = append(out, got[idx])
	}
	return out
}
