package fft

import "testing"

func TestBSPFFTMatchesSequential(t *testing.T) {
	for _, pc := range []struct{ n, p int }{
		{16, 4}, {64, 8}, {256, 16}, {32, 2}, {16, 1},
	} {
		want := randomInput(pc.n, int64(pc.n+pc.p))
		if err := Forward(want); err != nil {
			t.Fatal(err)
		}
		cfg := smallMachine(pc.p)
		cfg.N = pc.n
		got, res, err := RunBSP(cfg, randomInput(pc.n, int64(pc.n+pc.p)))
		if err != nil {
			t.Fatalf("n=%d P=%d: %v", pc.n, pc.p, err)
		}
		if d := maxDiff(got, want); d > 1e-9*float64(pc.n) {
			t.Errorf("n=%d P=%d: max diff %g", pc.n, pc.p, d)
		}
		if pc.p > 1 && res.Messages == 0 {
			t.Errorf("n=%d P=%d: no exchange", pc.n, pc.p)
		}
	}
}

// TestLogPHybridBeatsBSP: the Section 6.3 comparison on the CM-5
// calibration: log P barrier-synchronized h-relations against one staggered
// remap.
func TestLogPHybridBeatsBSP(t *testing.T) {
	cfg := Config{N: 1 << 12, Machine: CM5Machine(16), Cost: CM5Cost(), Schedule: StaggeredSchedule}
	in := randomInput(cfg.N, 5)
	_, _, logpRes, err := Run(cfg, append([]complex128(nil), in...))
	if err != nil {
		t.Fatal(err)
	}
	_, bspRes, err := RunBSP(cfg, append([]complex128(nil), in...))
	if err != nil {
		t.Fatal(err)
	}
	if bspRes.Time <= logpRes.Time {
		t.Errorf("BSP execution %d not slower than LogP hybrid %d", bspRes.Time, logpRes.Time)
	}
	// And they agree numerically.
	a, _, _, err := Run(cfg, append([]complex128(nil), in...))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunBSP(cfg, append([]complex128(nil), in...))
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(a, b); d > 1e-9*float64(cfg.N) {
		t.Errorf("executions disagree by %g", d)
	}
}

func TestBSPFFTValidation(t *testing.T) {
	cfg := smallMachine(8)
	cfg.N = 16 // < P^2
	if _, _, err := RunBSP(cfg, make([]complex128, 16)); err == nil {
		t.Error("N < P^2 accepted")
	}
	cfg.N = 64
	if _, _, err := RunBSP(cfg, make([]complex128, 32)); err == nil {
		t.Error("length mismatch accepted")
	}
}
