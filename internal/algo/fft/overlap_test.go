package fft

import "testing"

// TestOverlapMatchesSequential: the fused stage+remap computes the same
// transform.
func TestOverlapMatchesSequential(t *testing.T) {
	for _, pc := range []struct{ n, p int }{
		{64, 4}, {256, 8}, {512, 16}, {32, 2}, {64, 1},
	} {
		want := randomInput(pc.n, int64(pc.n+pc.p))
		if err := Forward(want); err != nil {
			t.Fatal(err)
		}
		cfg := smallMachine(pc.p)
		cfg.N = pc.n
		cfg.Overlap = true
		got, ph, res, err := Run(cfg, randomInput(pc.n, int64(pc.n+pc.p)))
		if err != nil {
			t.Fatalf("n=%d P=%d: %v", pc.n, pc.p, err)
		}
		if d := maxDiff(got, want); d > 1e-9*float64(pc.n) {
			t.Errorf("n=%d P=%d: max diff %g", pc.n, pc.p, d)
		}
		if ph.Total != res.Time {
			t.Errorf("phase accounting broken: %d vs %d", ph.Total, res.Time)
		}
	}
}

// TestOverlapHidesIdleWhenOverheadIsSmall: Section 4.1.5 — "in future
// machines we expect architectural innovations ... to significantly reduce
// the value of o with respect to g. Algorithms for such machines could try
// to overlap communication with computation." With o << g the fused
// schedule beats compute-then-remap; with o ~ g (the CM-5) there is little
// to gain.
func TestOverlapHidesIdleWhenOverheadIsSmall(t *testing.T) {
	run := func(o, g int64, overlap bool) int64 {
		cfg := CM5Machine(8)
		cfg.Params.O, cfg.Params.G = o, g
		c := Config{N: 1 << 11, Machine: cfg, Cost: CM5Cost(), Schedule: StaggeredSchedule, Overlap: overlap}
		_, _, res, err := Run(c, randomInput(1<<11, 7))
		if err != nil {
			t.Fatal(err)
		}
		return res.Time
	}
	// Future machine: o tiny, g unchanged.
	plainFuture := run(6, 132, false)
	overlapFuture := run(6, 132, true)
	if overlapFuture >= plainFuture {
		t.Errorf("overlap did not help with o<<g: %d vs %d", overlapFuture, plainFuture)
	}
	saving := float64(plainFuture-overlapFuture) / float64(plainFuture)
	if saving < 0.02 {
		t.Errorf("overlap saving only %.1f%% with o<<g", saving*100)
	}
	// CM-5: o comparable to g; overlapping buys little (possibly nothing).
	plainCM5 := run(66, 132, false)
	overlapCM5 := run(66, 132, true)
	cm5Saving := float64(plainCM5-overlapCM5) / float64(plainCM5)
	if cm5Saving > saving {
		t.Errorf("overlap helped the CM-5 (%.1f%%) more than the future machine (%.1f%%)", cm5Saving*100, saving*100)
	}
}

func TestOverlapValidation(t *testing.T) {
	cfg := smallMachine(8)
	cfg.N = 64 // = P^2: too small for whole pairs per chunk
	cfg.Overlap = true
	if _, _, _, err := Run(cfg, randomInput(64, 1)); err == nil {
		t.Error("overlap accepted N < 2P^2")
	}
	cfg.N = 256
	cfg.Schedule = NaiveSchedule
	if _, _, _, err := Run(cfg, randomInput(256, 1)); err == nil {
		t.Error("overlap accepted the naive schedule")
	}
}

// TestOverlapReportsFusedPhases: under Overlap the remap is folded into the
// cyclic phase, so the reported Remap is zero and Cyclic absorbs it.
func TestOverlapReportsFusedPhases(t *testing.T) {
	cfg := smallMachine(4)
	cfg.N = 128
	cfg.Overlap = true
	_, ph, res, err := Run(cfg, randomInput(128, 2))
	if err != nil {
		t.Fatal(err)
	}
	if ph.Remap != 0 {
		t.Errorf("fused remap reported %d", ph.Remap)
	}
	if ph.Cyclic+ph.Blocked != res.Time {
		t.Errorf("phases %d+%d != %d", ph.Cyclic, ph.Blocked, res.Time)
	}
}
