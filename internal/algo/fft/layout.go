package fft

import "fmt"

// Layout is a mapping of butterfly rows to processors (Section 4.1.1).
type Layout int

const (
	// Cyclic assigns row r to processor r mod P: the first log(n/P)
	// butterfly columns are local, the last log P columns each need a
	// remote reference.
	Cyclic Layout = iota
	// Blocked assigns rows [i*n/P, (i+1)*n/P) to processor i: the first
	// log P columns are remote, the rest local.
	Blocked
	// Hybrid is cyclic through column log(n/P) and blocked after: both
	// computation phases are entirely local, with a single all-to-all
	// remap in between (requires n >= P^2).
	Hybrid
)

func (l Layout) String() string {
	switch l {
	case Cyclic:
		return "cyclic"
	case Blocked:
		return "blocked"
	case Hybrid:
		return "hybrid"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// CyclicOwner returns the processor owning row r under the cyclic layout.
func CyclicOwner(r, p int) int { return r % p }

// BlockedOwner returns the processor owning row r under the blocked layout.
func BlockedOwner(r, n, p int) int { return r / (n / p) }

// Owner returns the processor that computes the butterfly node at (row,
// col) for an n-input butterfly on p processors under layout l. Columns are
// numbered 0 (inputs) through log2(n) (outputs); the hybrid remap happens
// between column log(n/P) and the next (Figure 5: for n=8, P=2 the remap is
// between columns 2 and 3).
func Owner(l Layout, row, col, n, p int) int {
	switch l {
	case Cyclic:
		return CyclicOwner(row, p)
	case Blocked:
		return BlockedOwner(row, n, p)
	case Hybrid:
		k, err := log2(n)
		if err != nil {
			panic(err)
		}
		lp, err := log2(p)
		if err != nil {
			panic(err)
		}
		if col <= k-lp {
			return CyclicOwner(row, p)
		}
		return BlockedOwner(row, n, p)
	}
	panic(fmt.Sprintf("fft: unknown layout %d", int(l)))
}

// RemoteRefsPerProcessor counts, for the pure layouts, the number of remote
// data references a processor performs across the whole butterfly
// (Section 4.1.1): under either pure layout, log P columns of n/P nodes each
// need one remote datum; under hybrid, the single remap moves n/P values.
func RemoteRefsPerProcessor(l Layout, n, p int) (int, error) {
	k, err := log2(n)
	if err != nil {
		return 0, err
	}
	lp, err := log2(p)
	if err != nil {
		return 0, err
	}
	if k < 2*lp {
		return 0, fmt.Errorf("fft: hybrid layout requires n >= P^2 (n=%d, P=%d)", n, p)
	}
	switch l {
	case Cyclic, Blocked:
		return lp * (n / p), nil
	case Hybrid:
		// One all-to-all: each processor keeps n/P^2 of its values local
		// and sends the rest.
		return n/p - n/(p*p), nil
	}
	return 0, fmt.Errorf("fft: unknown layout %d", int(l))
}

// CommunicationTime is the analytic communication estimate of Section 4.1.1
// for an n-point FFT on p processors (assuming g >= 2o): the pure layouts
// pay (g*n/P + L) per remote column over log P columns; the hybrid pays a
// single all-to-all, g*(n/P - n/P^2) + L — "lower by a factor of log P".
func CommunicationTime(l Layout, n int, g, lat int64, p int) (int64, error) {
	refs, err := RemoteRefsPerProcessor(l, n, p)
	if err != nil {
		return 0, err
	}
	lp, _ := log2(p)
	switch l {
	case Cyclic, Blocked:
		return g*int64(refs) + lat*int64(lp), nil
	case Hybrid:
		return g*int64(refs) + lat, nil
	}
	return 0, fmt.Errorf("fft: unknown layout %d", int(l))
}
