package fft

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

// CostModel calibrates local computation in machine ticks (Section 4.1.4).
// A "cycle" in the model is the time for one butterfly (10 floating-point
// operations); the cache model behind Figure 7 makes the butterfly cost
// depend on whether the phase's working set fits in cache: the cyclic phase
// computes one large n/P-point FFT and suffers more cache interference than
// the blocked phase, which solves many small P-point FFTs.
type CostModel struct {
	ButterflyInCache    int64 // ticks per butterfly, working set fits cache
	ButterflyCyclicOOC  int64 // cyclic-phase butterfly, out of cache
	ButterflyBlockedOOC int64 // blocked-phase butterfly, out of cache
	LoadStorePerPoint   int64 // ticks of local work per remapped point
	CacheBytes          int64 // per-processor cache capacity
	PointBytes          int64 // bytes per data point (a complex: 16)
}

// CM5Cost is the calibration of Section 4.1.4 for the 33 MHz Sparc nodes of
// the CM-5 (1 tick = one 33 MHz clock, 30.3 ns):
//
//   - 2.8 Mflops in cache and 2.2 Mflops out of cache for the cyclic phase
//     (Figure 7), i.e. 118 and 150 ticks per 10-flop butterfly;
//   - the blocked phase degrades less (many small in-cache FFTs);
//   - 1 us (33 ticks) of load/store work per remapped point;
//   - 64 KB direct-mapped cache.
func CM5Cost() CostModel {
	return CostModel{
		ButterflyInCache:    118,
		ButterflyCyclicOOC:  150,
		ButterflyBlockedOOC: 134,
		LoadStorePerPoint:   33,
		CacheBytes:          64 << 10,
		PointBytes:          16,
	}
}

// CM5Machine is the LogP characterization of the CM-5 from Section 4.1.4,
// in 33 MHz ticks: o = 2 us = 66 ticks, L = 6 us = 200 ticks, g = 4 us =
// 132 ticks (from the 5 MB/s per-processor bisection bandwidth at 20-byte
// messages).
func CM5Machine(p int) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: 200, O: 66, G: 132}}
}

// CM5TickNanos is the duration of one CM-5 tick (33 MHz clock).
const CM5TickNanos = 30.3

// RemapSchedule selects the communication schedule of the remap phase
// (Section 4.1.2).
type RemapSchedule int

const (
	// NaiveSchedule sends rows first-to-last: all processors flood
	// destination 0, then 1, ... — "all but L/g processors will stall on
	// the first send".
	NaiveSchedule RemapSchedule = iota
	// StaggeredSchedule starts processor i at its i*n/P^2-th row so that no
	// two processors target the same destination: contention-free.
	StaggeredSchedule
	// SynchronizedSchedule is staggered plus a barrier after every n/P^2
	// messages, preventing processors from drifting out of sync
	// (Section 4.1.4 / Figure 8).
	SynchronizedSchedule
)

func (s RemapSchedule) String() string {
	switch s {
	case NaiveSchedule:
		return "naive"
	case StaggeredSchedule:
		return "staggered"
	case SynchronizedSchedule:
		return "synchronized"
	}
	return fmt.Sprintf("schedule(%d)", int(s))
}

// Config describes one distributed FFT execution.
type Config struct {
	N        int // transform size, power of two, N >= P^2
	Machine  logp.Config
	Cost     CostModel
	Schedule RemapSchedule

	// Overlap merges the remap into the last cyclic computation stage
	// (Section 4.1.5): each destination chunk's butterflies are computed
	// and its points sent immediately, in staggered order, so the g-2o
	// idle between transmissions is filled with computation. "If o is
	// small compared to g, each processor idles for g-2o cycles between
	// successive transmissions during the remap. The remap can be merged
	// into the computation phases." Requires N >= 2*P^2 (a destination
	// chunk must hold whole butterfly pairs) and the staggered schedule.
	Overlap bool
}

// Phases reports the simulated times of the three phases (all processors
// synchronize at phase boundaries via the hardware barrier, as the CM-5
// implementation does between measured phases).
type Phases struct {
	Cyclic  int64 // phase I: local FFTs under the cyclic layout
	Remap   int64 // phase II: cyclic-to-blocked all-to-all
	Blocked int64 // phase III: local FFTs under the blocked layout
	Total   int64

	// RemapBytesPerProc is the data each processor receives during the
	// remap: 16*(n/P - n/P^2) bytes.
	RemapBytesPerProc int64
}

// RemapRateMBps converts the remap phase into MB/s per processor given the
// tick duration, the Figure 8 metric.
func (ph Phases) RemapRateMBps(tickNanos float64) float64 {
	if ph.Remap <= 0 {
		return 0
	}
	return float64(ph.RemapBytesPerProc) / (float64(ph.Remap) * tickNanos * 1e-9) / 1e6
}

// ComputeMflopsPerProc converts a compute phase time into per-processor
// Mflops (10 flops per butterfly), the Figure 7 metric.
func ComputeMflopsPerProc(butterflies int64, ticks int64, tickNanos float64) float64 {
	if ticks <= 0 {
		return 0
	}
	return float64(butterflies*10) / (float64(ticks) * tickNanos * 1e-9) / 1e6
}

// point is the unit remap payload: one complex value and its global row.
type point struct {
	Row int
	V   complex128
}

// Run executes the hybrid-layout FFT of Section 4.1 on a simulated LogP
// machine: phase I computes each processor's n/P-point FFT under the cyclic
// layout (butterfly columns 1..log(n/P), all local), the remap moves data to
// the blocked layout with the configured schedule, and phase III finishes
// the last log P columns locally. It returns the transform in bit-reversed
// order (the Forward convention), per-phase times, and the machine result.
func Run(cfg Config, input []complex128) ([]complex128, Phases, logp.Result, error) {
	n := cfg.N
	if len(input) != n {
		return nil, Phases{}, logp.Result{}, fmt.Errorf("fft: input length %d != N %d", len(input), n)
	}
	k, err := log2(n)
	if err != nil {
		return nil, Phases{}, logp.Result{}, err
	}
	P := cfg.Machine.P
	lp, err := log2(P)
	if err != nil {
		return nil, Phases{}, logp.Result{}, fmt.Errorf("fft: P must be a power of two: %v", err)
	}
	if P > 1 && n < P*P {
		return nil, Phases{}, logp.Result{}, fmt.Errorf("fft: hybrid layout needs N >= P^2 (N=%d, P=%d)", n, P)
	}
	if cfg.Overlap {
		if P > 1 && n < 2*P*P {
			return nil, Phases{}, logp.Result{}, fmt.Errorf("fft: overlap needs N >= 2*P^2 (N=%d, P=%d)", n, P)
		}
		if cfg.Schedule != StaggeredSchedule {
			return nil, Phases{}, logp.Result{}, fmt.Errorf("fft: overlap requires the staggered schedule")
		}
	}
	local := n / P
	perDest := 0
	if P > 1 {
		perDest = n / (P * P)
	}

	// Per-processor working state and phase timestamps (instrumentation,
	// not simulated data).
	vals := make([][]complex128, P)
	for i := 0; i < P; i++ {
		vals[i] = make([]complex128, local)
		for j := 0; j < local; j++ {
			vals[i][j] = input[j*P+i] // cyclic: row j*P+i
		}
	}
	t1 := make([]int64, P) // end of phase I
	t2 := make([]int64, P) // end of remap

	res, err := logp.Run(cfg.Machine, func(p *logp.Proc) {
		me := p.ID()
		x := vals[me]

		// Phase I: stages 0..k-lp-1 pair bit b = k-1-c, all local under the
		// cyclic layout. This is exactly an n/P-point FFT of the local
		// subsequence, with twiddles derived from global row indices.
		cyclicCost := cfg.Cost.ButterflyInCache
		if int64(local)*cfg.Cost.PointBytes > cfg.Cost.CacheBytes {
			cyclicCost = cfg.Cost.ButterflyCyclicOOC
		}
		fused := cfg.Overlap && P > 1
		stages := k - lp
		if fused {
			stages-- // the last cyclic stage runs inside the fused remap
		}
		for c := 0; c < stages; c++ {
			b := k - 1 - c
			lb := b - lp // paired bit within the local index
			half := 1 << uint(lb)
			for j := 0; j < local; j++ {
				if j&half != 0 {
					continue
				}
				r := j*P + me
				tw := stageTwiddle(r, b)
				a, bb := x[j], x[j|half]
				x[j] = a + bb
				x[j|half] = (a - bb) * tw
			}
			p.Compute(int64(local/2) * cyclicCost)
		}
		if !fused {
			t1[me] = p.Now()
			p.Barrier()
		}

		// Phase II: remap to the blocked layout (fused with the last cyclic
		// stage under Overlap).
		if P > 1 {
			var blocked []complex128
			if fused {
				blocked = fusedStageAndRemap(p, cfg, x, k, lp, cyclicCost)
			} else {
				blocked = remap(p, cfg, x, k, lp)
			}
			copy(x, blocked)
		}
		if fused {
			t1[me] = p.Now() // the fused phase reports as "remap"; cyclic covers the earlier stages
		}
		t2[me] = p.Now()
		p.Barrier()

		// Phase III: stages k-lp..k-1 pair low bits, local under the
		// blocked layout (many small P-point FFTs).
		blockedCost := cfg.Cost.ButterflyInCache
		if int64(local)*cfg.Cost.PointBytes > cfg.Cost.CacheBytes {
			blockedCost = cfg.Cost.ButterflyBlockedOOC
		}
		for c := k - lp; c < k; c++ {
			b := k - 1 - c
			half := 1 << uint(b)
			for t := 0; t < local; t++ {
				if t&half != 0 {
					continue
				}
				r := me*local + t
				tw := stageTwiddle(r, b)
				a, bb := x[t], x[t|half]
				x[t] = a + bb
				x[t|half] = (a - bb) * tw
			}
			p.Compute(int64(local/2) * blockedCost)
		}
	})
	if err != nil {
		return nil, Phases{}, res, err
	}

	var ph Phases
	for i := 0; i < P; i++ {
		if t1[i] > ph.Cyclic {
			ph.Cyclic = t1[i]
		}
		if t2[i] > ph.Remap {
			ph.Remap = t2[i]
		}
	}
	ph.Remap -= ph.Cyclic
	ph.Blocked = res.Time - ph.Cyclic - ph.Remap
	ph.Total = res.Time
	ph.RemapBytesPerProc = int64(local-perDest) * cfg.Cost.PointBytes

	// Assemble the result from the blocked layout.
	out := make([]complex128, n)
	for i := 0; i < P; i++ {
		copy(out[i*local:(i+1)*local], vals[i])
	}
	return out, ph, res, nil
}

// remap performs the cyclic-to-blocked exchange for one processor. Under the
// cyclic layout processor me holds rows j*P+me; row r belongs to blocked
// owner r/(n/P). The rows bound for one destination are a contiguous chunk
// of n/P^2 local indices, so the staggered schedule is simply "start with
// your own chunk index and wrap", which keeps every destination served by
// exactly one sender at a time.
func remap(p *logp.Proc, cfg Config, x []complex128, k, lp int) []complex128 {
	P := p.P()
	me := p.ID()
	n := 1 << uint(k)
	local := n / P
	perDest := n / (P * P)
	out := make([]complex128, local)

	// Keep own chunk.
	for t := 0; t < perDest; t++ {
		j := me*perDest + t
		r := j*P + me
		out[r%local] = x[j]
	}

	var order []int
	switch cfg.Schedule {
	case NaiveSchedule:
		for d := 0; d < P; d++ {
			if d != me {
				order = append(order, d)
			}
		}
	case StaggeredSchedule, SynchronizedSchedule:
		for i := 1; i < P; i++ {
			order = append(order, (me+i)%P)
		}
	default:
		panic(fmt.Sprintf("fft: unknown schedule %d", int(cfg.Schedule)))
	}

	expect := local - perDest
	got := 0
	take := func(m logp.Message) {
		pt := m.Data.(point)
		out[pt.Row%local] = pt.V
		got++
	}
	for _, d := range order {
		for t := 0; t < perDest; t++ {
			// Receiving first keeps the processor from idling while its
			// own senders are blocked, and unblocks remote senders.
			for p.HasMessage() && got < expect {
				take(p.Recv())
			}
			j := d*perDest + t
			r := j*P + me
			if w := cfg.Cost.LoadStorePerPoint; w > 0 {
				p.Compute(w)
			}
			p.Send(d, remapTag, point{Row: r, V: x[j]})
		}
		if cfg.Schedule == SynchronizedSchedule {
			// Drain arrivals, then resynchronize after each n/P^2-message
			// chunk using the hardware barrier (Section 4.1.4).
			for got < (d-me+P)%P*perDest && got < expect {
				take(p.Recv())
			}
			p.Barrier()
		}
	}
	for got < expect {
		take(p.Recv())
	}
	return out
}

// fusedStageAndRemap implements the Section 4.1.5 overlap: the last cyclic
// butterfly stage pairs adjacent local indices (j, j+1), so each remap
// destination chunk can be finalized independently and sent in staggered
// order — and while one chunk's points stream out, the *next* chunk's
// butterflies are computed between transmissions, filling the g-2o idle the
// sender would otherwise spend waiting out the gap.
func fusedStageAndRemap(p *logp.Proc, cfg Config, x []complex128, k, lp int, cyclicCost int64) []complex128 {
	P := p.P()
	me := p.ID()
	n := 1 << uint(k)
	local := n / P
	perDest := n / (P * P)
	b := lp // the last cyclic stage pairs bit lp (local bit 0)
	out := make([]complex128, local)

	expect := local - perDest
	got := 0
	take := func(m logp.Message) {
		pt := m.Data.(point)
		out[pt.Row%local] = pt.V
		got++
	}
	pair := func(d, idx int) {
		j := d*perDest + 2*idx
		r := j*P + me
		tw := stageTwiddle(r, b)
		a, bb := x[j], x[j|1]
		x[j] = a + bb
		x[j|1] = (a - bb) * tw
		p.Compute(cyclicCost)
	}
	pairs := perDest / 2
	chunkAll := func(d int) {
		for idx := 0; idx < pairs; idx++ {
			pair(d, idx)
		}
	}

	// Own chunk first (purely local), and the first remote chunk as the
	// pipeline prologue.
	order := make([]int, P)
	for i := range order {
		order[i] = (me + i) % P
	}
	chunkAll(order[0])
	for t := 0; t < perDest; t++ {
		j := me*perDest + t
		out[(j*P+me)%local] = x[j]
	}
	if P > 1 {
		chunkAll(order[1])
	}
	for i := 1; i < P; i++ {
		d := order[i]
		nextPairs := 0
		if i+1 < P {
			nextPairs = pairs
		}
		drain := func() {
			for p.RecvReady() && got < expect {
				take(p.Recv())
			}
		}
		cursor := 0
		for t := 0; t < perDest; t++ {
			// One butterfly of the next chunk every other transmission:
			// exactly perDest/2 pairs across perDest sends. Receptions are
			// drained whenever they are ripe — polling at several points
			// per iteration keeps the receive clock's 1/g cadence aligned
			// with the arrival stream.
			drain()
			if cursor < nextPairs && t%2 == 0 {
				pair(order[i+1], cursor)
				cursor++
			}
			drain()
			j := d*perDest + t
			if w := cfg.Cost.LoadStorePerPoint; w > 0 {
				p.Compute(w)
			}
			drain()
			p.Send(d, remapTag, point{Row: j*P + me, V: x[j]})
			drain()
		}
		for cursor < nextPairs {
			pair(order[i+1], cursor)
			cursor++
		}
	}
	for got < expect {
		take(p.Recv())
	}
	return out
}

const remapTag = 7001
