package fft

import (
	"fmt"

	"github.com/logp-model/logp/internal/bsp"
	"github.com/logp-model/logp/internal/logp"
)

// RunBSP executes the same transform as Run, but as a bulk-synchronous
// program under the pure cyclic layout (the Section 6.3 comparison): one
// superstep of entirely local stages, then log P supersteps in which every
// processor exchanges its whole slice with its butterfly partner and
// computes its half of the stage. Each remote stage is an h-relation of
// h = n/P words and ends in a global synchronization — where the LogP
// hybrid algorithm pays a single all-to-all remap of the same total volume
// and no barriers. The result (bit-reversed order, cyclic layout
// reassembled) is identical to Run's.
func RunBSP(cfg Config, input []complex128) ([]complex128, logp.Result, error) {
	n := cfg.N
	if len(input) != n {
		return nil, logp.Result{}, fmt.Errorf("fft: input length %d != N %d", len(input), n)
	}
	k, err := log2(n)
	if err != nil {
		return nil, logp.Result{}, err
	}
	P := cfg.Machine.P
	lp, err := log2(P)
	if err != nil {
		return nil, logp.Result{}, fmt.Errorf("fft: P must be a power of two: %v", err)
	}
	if P > 1 && n < P*P {
		return nil, logp.Result{}, fmt.Errorf("fft: need N >= P^2 (N=%d, P=%d)", n, P)
	}
	local := n / P

	vals := make([][]complex128, P)
	for i := 0; i < P; i++ {
		vals[i] = make([]complex128, local)
		for j := 0; j < local; j++ {
			vals[i][j] = input[j*P+i] // cyclic layout throughout
		}
	}
	cost := cfg.Cost.ButterflyInCache
	if int64(local)*cfg.Cost.PointBytes > cfg.Cost.CacheBytes {
		cost = cfg.Cost.ButterflyCyclicOOC
	}

	steps := 1 + lp
	res, err := bsp.Run(cfg.Machine, steps, func(s *bsp.Superstep) {
		me := s.Proc().ID()
		x := vals[me]
		stage := func(c int, partner []complex128) {
			b := k - 1 - c
			if b >= lp {
				// Local stage: both halves of each pair live here.
				lb := b - lp
				half := 1 << uint(lb)
				for j := 0; j < local; j++ {
					if j&half != 0 {
						continue
					}
					r := j*P + me
					tw := stageTwiddle(r, b)
					a, bb := x[j], x[j|half]
					x[j] = a + bb
					x[j|half] = (a - bb) * tw
				}
				s.Compute(int64(local/2) * cost)
				return
			}
			// Remote stage: my row r pairs with r^bit on the partner, same
			// local index j.
			bit := 1 << uint(b)
			low := me&bit == 0
			for j := 0; j < local; j++ {
				rLow := j*P + (me &^ bit)
				tw := stageTwiddle(rLow, b)
				if low {
					x[j] = x[j] + partner[j]
				} else {
					x[j] = (partner[j] - x[j]) * tw
				}
			}
			// Each output is half a butterfly.
			s.Compute(int64(local) * cost / 2)
		}

		if s.Step() == 0 {
			for c := 0; c < k-lp; c++ {
				stage(c, nil)
			}
		} else {
			c := k - lp + s.Step() - 1
			partner := make([]complex128, local)
			for _, m := range s.Received() {
				pt := m.Data.(point)
				partner[pt.Row] = pt.V
			}
			stage(c, partner)
		}
		// Queue the exchange for the next remote stage, if any.
		if s.Step() < lp {
			c := k - lp + s.Step()
			bit := 1 << uint(k-1-c)
			partner := me ^ bit
			for j := 0; j < local; j++ {
				s.Send(partner, point{Row: j, V: x[j]})
			}
		}
	})
	if err != nil {
		return nil, res, err
	}

	// Reassemble from the cyclic layout.
	out := make([]complex128, n)
	for i := 0; i < P; i++ {
		for j := 0; j < local; j++ {
			out[j*P+i] = vals[i][j]
		}
	}
	return out, res, nil
}
