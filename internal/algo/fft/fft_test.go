package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randomInput(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func maxDiff(a, b []complex128) float64 {
	var m float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestForwardMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randomInput(n, int64(n))
		want := DFT(x)
		got := append([]complex128(nil), x...)
		if err := Forward(got); err != nil {
			t.Fatal(err)
		}
		BitReverse(got)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %g", n, d)
		}
	}
}

func TestFFTNaturalOrder(t *testing.T) {
	x := randomInput(32, 5)
	want := DFT(x)
	got := append([]complex128(nil), x...)
	if err := FFT(got); err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("max diff %g", d)
	}
}

func TestForwardRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{0, 3, 6, 100} {
		if err := Forward(make([]complex128, n)); err == nil {
			t.Errorf("n=%d accepted", n)
		}
	}
}

func TestBitReverseInvolution(t *testing.T) {
	f := func(seed int64) bool {
		x := randomInput(64, seed)
		y := append([]complex128(nil), x...)
		BitReverse(y)
		BitReverse(y)
		return maxDiff(x, y) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestFigure5HybridLayout reproduces Figure 5: the 8-input butterfly with
// P=2 under the hybrid layout. Processor 0 computes rows 0,2,4,6 for
// columns 0..2 (cyclic) and rows 0..3 for column 3 (blocked); the remap is
// between columns 2 and 3.
func TestFigure5HybridLayout(t *testing.T) {
	n, P := 8, 2
	for col := 0; col <= 2; col++ {
		for r := 0; r < n; r++ {
			want := r % 2
			if got := Owner(Hybrid, r, col, n, P); got != want {
				t.Errorf("col %d row %d: owner %d, want %d (cyclic)", col, r, got, want)
			}
		}
	}
	for r := 0; r < n; r++ {
		want := r / 4
		if got := Owner(Hybrid, r, 3, n, P); got != want {
			t.Errorf("col 3 row %d: owner %d, want %d (blocked)", r, got, want)
		}
	}
}

func TestPureLayoutOwners(t *testing.T) {
	if CyclicOwner(13, 4) != 1 {
		t.Error("cyclic owner wrong")
	}
	if BlockedOwner(13, 16, 4) != 3 {
		t.Error("blocked owner wrong")
	}
	if Owner(Cyclic, 13, 2, 16, 4) != 1 || Owner(Blocked, 13, 2, 16, 4) != 3 {
		t.Error("Owner dispatch wrong")
	}
}

// TestHybridCommunicationAdvantage checks Section 4.1.1: the hybrid layout's
// communication volume is lower than the pure layouts' by a factor of about
// log P.
func TestHybridCommunicationAdvantage(t *testing.T) {
	n, P := 1<<16, 64
	pure, err := RemoteRefsPerProcessor(Cyclic, n, P)
	if err != nil {
		t.Fatal(err)
	}
	hyb, err := RemoteRefsPerProcessor(Hybrid, n, P)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(pure) / float64(hyb)
	lp := 6.0
	if ratio < lp*0.9 || ratio > lp*1.2 {
		t.Errorf("pure/hybrid refs ratio %.2f, want about log P = %v", ratio, lp)
	}
	if _, err := RemoteRefsPerProcessor(Hybrid, 16, 8); err == nil {
		t.Error("n < P^2 accepted")
	}
	ct, err := CommunicationTime(Hybrid, n, 4, 20, P)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4*int64(hyb) + 20; ct != want {
		t.Errorf("hybrid comm time %d, want %d", ct, want)
	}
	ctPure, err := CommunicationTime(Cyclic, n, 4, 20, P)
	if err != nil {
		t.Fatal(err)
	}
	if ctPure <= ct {
		t.Errorf("pure comm time %d not worse than hybrid %d", ctPure, ct)
	}
}

func smallMachine(p int) Config {
	m := CM5Machine(p)
	// Shrink the tick scale for fast tests: same ratios as the CM-5.
	m.Params.L, m.Params.O, m.Params.G = 20, 7, 13
	return Config{
		Machine:  m,
		Cost:     CostModel{ButterflyInCache: 12, ButterflyCyclicOOC: 15, ButterflyBlockedOOC: 13, LoadStorePerPoint: 3, CacheBytes: 1 << 10, PointBytes: 16},
		Schedule: StaggeredSchedule,
	}
}

// TestDistributedFFTMatchesSequential: the hybrid-layout FFT on the
// simulated machine computes the same transform as the sequential kernel,
// for every schedule and several machine sizes.
func TestDistributedFFTMatchesSequential(t *testing.T) {
	for _, pc := range []struct{ n, p int }{
		{16, 4}, {64, 4}, {64, 8}, {256, 16}, {32, 1}, {16, 2},
	} {
		want := randomInput(pc.n, int64(pc.n+pc.p))
		if err := Forward(want); err != nil {
			t.Fatal(err)
		}
		for _, sched := range []RemapSchedule{NaiveSchedule, StaggeredSchedule, SynchronizedSchedule} {
			cfg := smallMachine(pc.p)
			cfg.N = pc.n
			cfg.Schedule = sched
			in := randomInput(pc.n, int64(pc.n+pc.p))
			got, ph, res, err := Run(cfg, in)
			if err != nil {
				t.Fatalf("n=%d P=%d %v: %v", pc.n, pc.p, sched, err)
			}
			if d := maxDiff(got, want); d > 1e-9*float64(pc.n) {
				t.Errorf("n=%d P=%d %v: max diff %g", pc.n, pc.p, sched, d)
			}
			if ph.Total != res.Time {
				t.Errorf("phase total %d != run time %d", ph.Total, res.Time)
			}
			if pc.p > 1 && ph.Remap <= 0 {
				t.Errorf("n=%d P=%d %v: remap time %d", pc.n, pc.p, sched, ph.Remap)
			}
		}
	}
}

// TestDistributedFFTUnderJitter: latency jitter reorders remap messages;
// the row-tagged exchange must still produce the right transform.
func TestDistributedFFTUnderJitter(t *testing.T) {
	cfg := smallMachine(8)
	cfg.N = 256
	cfg.Machine.LatencyJitter = 15
	cfg.Machine.ComputeJitter = 0.3
	cfg.Machine.Seed = 11
	in := randomInput(256, 3)
	want := append([]complex128(nil), in...)
	if err := Forward(want); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := Run(cfg, in)
	if err != nil {
		t.Fatal(err)
	}
	if d := maxDiff(got, want); d > 1e-9*256 {
		t.Errorf("max diff %g under jitter", d)
	}
}

// TestStaggeredRemapBeatsNaive: the Section 4.1.2 claim, on a scaled-down
// machine: the contention-free staggered schedule remaps much faster than
// the naive schedule.
func TestStaggeredRemapBeatsNaive(t *testing.T) {
	run := func(s RemapSchedule) Phases {
		cfg := smallMachine(8)
		cfg.N = 1 << 10
		cfg.Schedule = s
		_, ph, _, err := Run(cfg, randomInput(cfg.N, 1))
		if err != nil {
			t.Fatal(err)
		}
		return ph
	}
	naive := run(NaiveSchedule)
	stag := run(StaggeredSchedule)
	if stag.Remap >= naive.Remap {
		t.Errorf("staggered remap %d not faster than naive %d", stag.Remap, naive.Remap)
	}
	// Compute phases are schedule-independent.
	if stag.Cyclic != naive.Cyclic {
		t.Errorf("cyclic phase differs: %d vs %d", stag.Cyclic, naive.Cyclic)
	}
}

// TestRemapRateAgainstPrediction: on the full CM-5 calibration the staggered
// remap rate approaches the predicted asymptote 16B / max(1us+2o, g) =
// 3.2 MB/s and never exceeds it.
func TestRemapRateAgainstPrediction(t *testing.T) {
	cfg := Config{
		N:        1 << 12,
		Machine:  CM5Machine(16),
		Cost:     CM5Cost(),
		Schedule: StaggeredSchedule,
	}
	_, ph, _, err := Run(cfg, randomInput(cfg.N, 2))
	if err != nil {
		t.Fatal(err)
	}
	rate := ph.RemapRateMBps(CM5TickNanos)
	if rate > 3.3 {
		t.Errorf("remap rate %.2f MB/s exceeds the o-bound prediction 3.2", rate)
	}
	if rate < 2.0 {
		t.Errorf("remap rate %.2f MB/s far below prediction (deterministic run)", rate)
	}
}

func TestPhaseAccounting(t *testing.T) {
	cfg := smallMachine(4)
	cfg.N = 64
	_, ph, res, err := Run(cfg, randomInput(64, 9))
	if err != nil {
		t.Fatal(err)
	}
	if ph.Cyclic+ph.Remap+ph.Blocked != res.Time {
		t.Errorf("phases %d+%d+%d != total %d", ph.Cyclic, ph.Remap, ph.Blocked, res.Time)
	}
	if ph.RemapBytesPerProc != int64(64/4-64/16)*16 {
		t.Errorf("remap bytes %d", ph.RemapBytesPerProc)
	}
}

func TestRunValidation(t *testing.T) {
	cfg := smallMachine(4)
	cfg.N = 8 // < P^2
	if _, _, _, err := Run(cfg, make([]complex128, 8)); err == nil {
		t.Error("N < P^2 accepted")
	}
	cfg.N = 12 // not a power of two
	if _, _, _, err := Run(cfg, make([]complex128, 12)); err == nil {
		t.Error("non-power-of-two accepted")
	}
	cfg.N = 16
	if _, _, _, err := Run(cfg, make([]complex128, 8)); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCacheModelSwitches(t *testing.T) {
	// With a tiny cache, butterflies cost the out-of-cache rate and the
	// compute phase slows down accordingly.
	base := smallMachine(4)
	base.N = 256
	fast := base
	slow := base
	slow.Cost.CacheBytes = 1 // everything out of cache
	fast.Cost.CacheBytes = 1 << 30
	_, phFast, _, err := Run(fast, randomInput(256, 4))
	if err != nil {
		t.Fatal(err)
	}
	_, phSlow, _, err := Run(slow, randomInput(256, 4))
	if err != nil {
		t.Fatal(err)
	}
	if phSlow.Cyclic <= phFast.Cyclic {
		t.Errorf("out-of-cache cyclic %d not slower than in-cache %d", phSlow.Cyclic, phFast.Cyclic)
	}
	wantRatio := float64(slow.Cost.ButterflyCyclicOOC) / float64(slow.Cost.ButterflyInCache)
	gotRatio := float64(phSlow.Cyclic) / float64(phFast.Cyclic)
	if math.Abs(gotRatio-wantRatio) > 0.01 {
		t.Errorf("cyclic slowdown %.3f, want %.3f", gotRatio, wantRatio)
	}
}

func TestStageTwiddleMatchesSequential(t *testing.T) {
	// The distributed twiddle helper agrees with what Forward uses.
	n := 64
	x := randomInput(n, 8)
	seq := append([]complex128(nil), x...)
	if err := Forward(seq); err != nil {
		t.Fatal(err)
	}
	dis := append([]complex128(nil), x...)
	k, _ := log2(n)
	for c := 0; c < k; c++ {
		b := k - 1 - c
		half := 1 << uint(b)
		for r := 0; r < n; r++ {
			if r&half != 0 {
				continue
			}
			tw := stageTwiddle(r, b)
			a, bb := dis[r], dis[r|half]
			dis[r] = a + bb
			dis[r|half] = (a - bb) * tw
		}
	}
	if d := maxDiff(seq, dis); d > 1e-12*float64(n) {
		t.Errorf("stage-twiddle recomputation differs by %g", d)
	}
}
