// Package fft implements the paper's central example (Section 4.1): the
// "butterfly" FFT on the LogP machine, with cyclic, blocked and hybrid data
// layouts, the naive and staggered remap communication schedules, the CM-5
// cost calibration of Section 4.1.4, and the cache model behind Figure 7.
//
// The distributed algorithm is numerically real: processors exchange actual
// complex values during the remap and the assembled result is verified
// against a direct DFT, while the simulator charges LogP costs for every
// message and calibrated cycle costs for every butterfly.
package fft

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"
)

// Forward computes an in-place decimation-in-frequency FFT of x
// (len a power of two). Results are in bit-reversed order, matching the
// paper's butterfly: "the outputs are in bit-reverse order, so for some
// applications an additional rearrangement step is required."
func Forward(x []complex128) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	for m := n; m >= 2; m >>= 1 {
		half := m >> 1
		// Twiddle base for this stage: e^(-2*pi*i/m).
		w := cmplx.Exp(complex(0, -2*math.Pi/float64(m)))
		for b0 := 0; b0 < n; b0 += m {
			tw := complex(1, 0)
			for t := 0; t < half; t++ {
				i1, i2 := b0+t, b0+t+half
				a, b := x[i1], x[i2]
				x[i1] = a + b
				x[i2] = (a - b) * tw
				tw *= w
			}
		}
	}
	return nil
}

// BitReverse permutes x from bit-reversed to natural order in place.
func BitReverse(x []complex128) {
	n := len(x)
	shift := 64 - uint(bits.Len(uint(n))) + 1
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// FFT computes the DFT of x into natural order (a Forward plus BitReverse).
func FFT(x []complex128) error {
	if err := Forward(x); err != nil {
		return err
	}
	BitReverse(x)
	return nil
}

// DFT computes the discrete Fourier transform directly in O(n^2), the
// oracle the FFT implementations are verified against.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			angle := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * cmplx.Exp(complex(0, angle))
		}
		out[k] = sum
	}
	return out
}

// stageTwiddle returns the twiddle factor for the butterfly pairing rows
// (r, r+2^b) at the stage whose block size is 2^(b+1): e^(-2*pi*i*(r mod
// 2^b)/2^(b+1)). It lets a distributed processor compute twiddles from
// global row indices alone.
func stageTwiddle(r, b int) complex128 {
	half := 1 << uint(b)
	t := r & (half - 1)
	return cmplx.Exp(complex(0, -2*math.Pi*float64(t)/float64(2*half)))
}

// log2 returns log2(n) for a positive power of two, or an error otherwise.
func log2(n int) (int, error) {
	if n <= 0 || n&(n-1) != 0 {
		return 0, fmt.Errorf("fft: %d is not a positive power of two", n)
	}
	return bits.TrailingZeros(uint(n)), nil
}
