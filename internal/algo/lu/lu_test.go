package lu

import (
	"errors"
	"math"
	"testing"
	"testing/quick"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func TestSequentialFactorResidual(t *testing.T) {
	for _, n := range []int{1, 2, 3, 8, 16, 33, 64} {
		a := Random(n, int64(n))
		f := a.Clone()
		perm, err := Factor(f)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if r := ResidualPALU(a, f, perm); r > 1e-9*float64(n) {
			t.Errorf("n=%d: residual %g", n, r)
		}
	}
}

func TestSequentialSolve(t *testing.T) {
	n := 24
	a := Random(n, 7)
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i + 1)
	}
	f := a.Clone()
	perm, err := Factor(f)
	if err != nil {
		t.Fatal(err)
	}
	x := Solve(f, perm, b)
	// Check Ax = b.
	for i := 0; i < n; i++ {
		s := 0.0
		for j := 0; j < n; j++ {
			s += a.At(i, j) * x[j]
		}
		if math.Abs(s-b[i]) > 1e-8 {
			t.Errorf("row %d: Ax=%g, b=%g", i, s, b[i])
		}
	}
}

func TestSingularDetected(t *testing.T) {
	a := NewDense(3) // all zeros
	if _, err := Factor(a); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	// A matrix with a dependent column.
	b := Random(4, 1)
	for i := 0; i < 4; i++ {
		b.Set(i, 2, 0)
	}
	if _, err := Factor(b); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestPivotingIsUsed(t *testing.T) {
	// Leading zero forces a swap.
	a := NewDense(2)
	a.Set(0, 0, 0)
	a.Set(0, 1, 1)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	f := a.Clone()
	perm, err := Factor(f)
	if err != nil {
		t.Fatal(err)
	}
	if perm[0] != 1 || perm[1] != 0 {
		t.Errorf("perm = %v, want [1 0]", perm)
	}
	if r := ResidualPALU(a, f, perm); r > 1e-12 {
		t.Errorf("residual %g", r)
	}
}

func TestFactorPropertyRandom(t *testing.T) {
	f := func(seed int64, nn uint8) bool {
		n := int(nn%24) + 1
		a := Random(n, seed)
		fac := a.Clone()
		perm, err := Factor(fac)
		if err != nil {
			return true // singular random matrix: astronomically unlikely but legal
		}
		return ResidualPALU(a, fac, perm) <= 1e-8*float64(n)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func machineCfg(p int) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: 20, O: 4, G: 8}}
}

// TestParallelMatchesSequential: every layout produces the exact bits of the
// sequential factorization (same pivots, same per-element operation order).
func TestParallelMatchesSequential(t *testing.T) {
	cases := []struct {
		n, p   int
		layout Layout
	}{
		{16, 4, ColumnCyclic},
		{17, 4, ColumnCyclic},
		{24, 8, ColumnCyclic},
		{16, 4, ScatteredGrid},
		{24, 4, ScatteredGrid},
		{18, 9, ScatteredGrid},
		{16, 4, BlockedGrid},
		{24, 4, BlockedGrid},
		{16, 16, ScatteredGrid},
	}
	for _, c := range cases {
		a := Random(c.n, int64(c.n*31+c.p))
		seq := a.Clone()
		seqPerm, err := Factor(seq)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Machine: machineCfg(c.p), Layout: c.layout}
		got, perm, res, err := Run(cfg, a)
		if err != nil {
			t.Fatalf("n=%d P=%d %v: %v", c.n, c.p, c.layout, err)
		}
		if d := got.MaxAbsDiff(seq); d != 0 {
			t.Errorf("n=%d P=%d %v: max diff %g from sequential", c.n, c.p, c.layout, d)
		}
		for i := range perm {
			if perm[i] != seqPerm[i] {
				t.Errorf("n=%d P=%d %v: perm[%d]=%d, want %d", c.n, c.p, c.layout, i, perm[i], seqPerm[i])
				break
			}
		}
		if res.Time <= 0 {
			t.Errorf("n=%d P=%d %v: no simulated time", c.n, c.p, c.layout)
		}
		if r := ResidualPALU(a, got, perm); r > 1e-9*float64(c.n) {
			t.Errorf("n=%d P=%d %v: residual %g", c.n, c.p, c.layout, r)
		}
	}
}

// TestScatteredBeatsBlocked: the load-balance argument of Section 4.2.1. On
// a blocked grid, processors fall idle as elimination proceeds; the
// scattered grid keeps everyone busy until the last sqrt(P) steps, so it
// finishes sooner.
func TestScatteredBeatsBlocked(t *testing.T) {
	n, p := 32, 4
	a := Random(n, 5)
	run := func(l Layout) logp.Result {
		_, _, res, err := Run(Config{Machine: machineCfg(p), Layout: l}, a.Clone())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	blocked := run(BlockedGrid)
	scattered := run(ScatteredGrid)
	if scattered.Time >= blocked.Time {
		t.Errorf("scattered %d not faster than blocked %d", scattered.Time, blocked.Time)
	}
	// The imbalance shows in compute spread: the blocked layout has a much
	// larger max/min compute ratio across processors.
	spread := func(r logp.Result) float64 {
		minC, maxC := int64(1<<62), int64(0)
		for _, s := range r.Procs {
			if s.Compute < minC {
				minC = s.Compute
			}
			if s.Compute > maxC {
				maxC = s.Compute
			}
		}
		if minC == 0 {
			minC = 1
		}
		return float64(maxC) / float64(minC)
	}
	if spread(blocked) <= spread(scattered) {
		t.Errorf("blocked compute spread %.2f not worse than scattered %.2f", spread(blocked), spread(scattered))
	}
}

// TestGridCommunicatesLessThanColumn: the sqrt(P) communication advantage.
// Per update step the column layout delivers the full multiplier column to
// every processor; the grid layout delivers only 2(n-k)/sqrt(P) values.
func TestGridCommunicatesLessThanColumn(t *testing.T) {
	n, p := 32, 16
	a := Random(n, 9)
	maxRecv := func(l Layout) int {
		_, _, res, err := Run(Config{Machine: machineCfg(p), Layout: l}, a.Clone())
		if err != nil {
			t.Fatal(err)
		}
		m := 0
		for _, s := range res.Procs {
			if s.MsgsReceived > m {
				m = s.MsgsReceived
			}
		}
		return m
	}
	col := maxRecv(ColumnCyclic)
	grid := maxRecv(ScatteredGrid)
	if grid >= col {
		t.Errorf("grid max receives %d not below column %d", grid, col)
	}
}

func TestRunValidation(t *testing.T) {
	a := Random(8, 1)
	if _, _, _, err := Run(Config{Machine: machineCfg(3), Layout: ScatteredGrid}, a); err == nil {
		t.Error("non-square P accepted for grid")
	}
	if _, _, _, err := Run(Config{Machine: machineCfg(4), Layout: ScatteredGrid}, Random(9, 1)); err == nil {
		t.Error("n not divisible by grid side accepted")
	}
	if _, _, _, err := Run(Config{Machine: machineCfg(16), Layout: ColumnCyclic}, a); err == nil {
		t.Error("P > n accepted for column layout")
	}
	if _, _, _, err := Run(Config{Machine: machineCfg(4), Layout: Layout(99)}, a); err == nil {
		t.Error("unknown layout accepted")
	}
}

func TestParallelSingularDetected(t *testing.T) {
	a := NewDense(8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if j != 3 {
				a.Set(i, j, float64((i*7+j*3)%5)+1)
			}
		}
	}
	// Make it genuinely singular: zero column 3.
	_, _, _, err := Run(Config{Machine: machineCfg(4), Layout: ColumnCyclic}, a)
	if err == nil {
		t.Skip("random-ish matrix happened to be nonsingular apart from the zero column")
	}
	if !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestFlopCount(t *testing.T) {
	// About 2n^3/3 for large n.
	n := 100
	got := float64(FlopCount(n))
	want := 2.0 * float64(n*n*n) / 3.0
	if got < want*0.95 || got > want*1.15 {
		t.Errorf("FlopCount(%d) = %g, want about %g", n, got, want)
	}
}

func TestMatrixHelpers(t *testing.T) {
	a := Random(4, 2)
	if a.Clone().MaxAbsDiff(a) != 0 {
		t.Error("clone differs")
	}
	b := a.Clone()
	b.SwapRows(0, 3)
	b.SwapRows(3, 0)
	if b.MaxAbsDiff(a) != 0 {
		t.Error("double swap changed the matrix")
	}
	id := NewDense(3)
	for i := 0; i < 3; i++ {
		id.Set(i, i, 1)
	}
	c := Random(3, 3)
	if id.Mul(c).MaxAbsDiff(c) != 0 {
		t.Error("identity multiply changed the matrix")
	}
	perm := []int{2, 0, 1}
	pc := c.Permute(perm)
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if pc.At(i, j) != c.At(perm[i], j) {
				t.Error("permute wrong")
			}
		}
	}
}
