// Package lu implements LU decomposition with partial pivoting
// (Section 4.2.1): a sequential kernel, and distributed variants on the LogP
// machine under the column layout and the blocked and scattered grid
// layouts, exposing the communication-volume and load-balance effects the
// paper derives ("the fastest Linpack benchmark programs actually employ a
// scattered grid layout, a scheme whose benefits are obvious from our
// model").
package lu

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major n x n matrix.
type Dense struct {
	N    int
	Data []float64
}

// NewDense allocates an n x n zero matrix.
func NewDense(n int) *Dense {
	return &Dense{N: n, Data: make([]float64, n*n)}
}

// Random returns an n x n matrix with entries uniform in [-1, 1), using a
// deterministic source. Such matrices are almost surely well-conditioned
// enough for partial pivoting.
func Random(n int, seed int64) *Dense {
	rng := rand.New(rand.NewSource(seed))
	m := NewDense(n)
	for i := range m.Data {
		m.Data[i] = 2*rng.Float64() - 1
	}
	return m
}

// At returns m[i,j].
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set assigns m[i,j] = v.
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Clone copies the matrix.
func (m *Dense) Clone() *Dense {
	c := NewDense(m.N)
	copy(c.Data, m.Data)
	return c
}

// SwapRows exchanges rows i and j.
func (m *Dense) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Data[i*m.N:(i+1)*m.N], m.Data[j*m.N:(j+1)*m.N]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// Mul returns m * other.
func (m *Dense) Mul(other *Dense) *Dense {
	n := m.N
	out := NewDense(n)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				out.Data[i*n+j] += a * other.At(k, j)
			}
		}
	}
	return out
}

// MaxAbsDiff returns the largest absolute elementwise difference.
func (m *Dense) MaxAbsDiff(other *Dense) float64 {
	var d float64
	for i := range m.Data {
		if v := math.Abs(m.Data[i] - other.Data[i]); v > d {
			d = v
		}
	}
	return d
}

// Permute returns the matrix with rows reordered so that row i of the result
// is row perm[i] of m (the permutation P with PA = LU, where perm records
// the source row of each output row).
func (m *Dense) Permute(perm []int) *Dense {
	out := NewDense(m.N)
	for i, src := range perm {
		copy(out.Data[i*m.N:(i+1)*m.N], m.Data[src*m.N:(src+1)*m.N])
	}
	return out
}

// String renders small matrices for debugging.
func (m *Dense) String() string {
	s := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			s += fmt.Sprintf("%8.3f ", m.At(i, j))
		}
		s += "\n"
	}
	return s
}

// SplitLU extracts the unit-lower-triangular L and upper-triangular U from a
// factored matrix stored in packed form (L below the diagonal, U on and
// above).
func SplitLU(f *Dense) (l, u *Dense) {
	n := f.N
	l, u = NewDense(n), NewDense(n)
	for i := 0; i < n; i++ {
		l.Set(i, i, 1)
		for j := 0; j < n; j++ {
			if j < i {
				l.Set(i, j, f.At(i, j))
			} else {
				u.Set(i, j, f.At(i, j))
			}
		}
	}
	return l, u
}

// ResidualPALU returns max|PA - LU| for a factorization of a.
func ResidualPALU(a, factored *Dense, perm []int) float64 {
	l, u := SplitLU(factored)
	return a.Permute(perm).MaxAbsDiff(l.Mul(u))
}
