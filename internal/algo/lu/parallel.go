package lu

import (
	"fmt"
	"math"

	"github.com/logp-model/logp/internal/collective"
	"github.com/logp-model/logp/internal/logp"
)

// Layout selects the data distribution of the parallel factorization
// (Section 4.2.1).
type Layout int

const (
	// ColumnCyclic allocates column j to processor j mod P: only the
	// multiplier column needs to be broadcast each step, but each
	// processor receives the full n-k multipliers.
	ColumnCyclic Layout = iota
	// BlockedGrid tiles the matrix into sqrt(P) x sqrt(P) contiguous
	// blocks: communication drops by sqrt(P), but "by the time the
	// algorithm completes n/sqrt(P) elimination steps, 2 sqrt(P)
	// processors would be idle" — severe load imbalance.
	BlockedGrid
	// ScatteredGrid assigns element (i,j) to grid processor
	// (i mod q, j mod q): the same sqrt(P) communication gain while "all
	// P processors stay active for all but the last sqrt(P) steps" — the
	// layout the fastest Linpack programs use.
	ScatteredGrid
)

func (l Layout) String() string {
	switch l {
	case ColumnCyclic:
		return "column-cyclic"
	case BlockedGrid:
		return "blocked-grid"
	case ScatteredGrid:
		return "scattered-grid"
	}
	return fmt.Sprintf("layout(%d)", int(l))
}

// Config describes a parallel factorization run.
type Config struct {
	Machine logp.Config
	Layout  Layout
	// FlopCycles is the simulated cost of one floating-point operation in
	// machine cycles (default 1: the model's unit-time local operation).
	FlopCycles int64
}

func (c Config) flop() int64 {
	if c.FlopCycles <= 0 {
		return 1
	}
	return c.FlopCycles
}

// message tags, made step-unique so a processor running ahead cannot confuse
// a neighbour still finishing the previous elimination step.
func tagCand(k int) int { return 5*k + 1 } // pivot candidates to the leader
func tagPiv(k int) int  { return 5*k + 2 } // pivot decision broadcast
func tagSwap(k int) int { return 5*k + 3 } // row-swap segment exchange
func tagMult(k int) int { return 5*k + 4 } // multiplier column
func tagURow(k int) int { return 5*k + 5 } // pivot row

// pivotMsg carries a pivot candidate or decision: the row index, the
// magnitude compared during selection, and the raw (signed) value used for
// scaling.
type pivotMsg struct {
	Idx int
	Abs float64
	Raw float64
}

// entryMsg carries one matrix element.
type entryMsg struct {
	Idx int // row for multipliers, column for pivot-row entries
	Val float64
}

// Run factors a on the simulated LogP machine under the configured layout.
// It returns the packed LU factors, the permutation (PA = LU), and the
// machine result. The arithmetic is real: every multiplier and pivot-row
// element crosses the simulated network, and the result is bit-identical to
// the sequential Factor (same pivot choices, same operation order per
// element).
func Run(cfg Config, a *Dense) (*Dense, []int, logp.Result, error) {
	n := a.N
	P := cfg.Machine.P
	switch cfg.Layout {
	case ColumnCyclic:
		if P > n {
			return nil, nil, logp.Result{}, fmt.Errorf("lu: P=%d exceeds n=%d columns", P, n)
		}
	case BlockedGrid, ScatteredGrid:
		q := int(math.Round(math.Sqrt(float64(P))))
		if q*q != P {
			return nil, nil, logp.Result{}, fmt.Errorf("lu: grid layouts need square P, got %d", P)
		}
		if n%q != 0 {
			return nil, nil, logp.Result{}, fmt.Errorf("lu: n=%d not divisible by grid side %d", n, q)
		}
	default:
		return nil, nil, logp.Result{}, fmt.Errorf("lu: unknown layout %v", cfg.Layout)
	}

	locals := make([]*Dense, P)
	perms := make([][]int, P)
	var failed error
	body := func(p *logp.Proc) {
		var pm []int
		var err error
		switch cfg.Layout {
		case ColumnCyclic:
			pm, err = runColumn(p, cfg, a, locals)
		default:
			pm, err = runGrid(p, cfg, a, locals)
		}
		perms[p.ID()] = pm
		if err != nil && failed == nil {
			failed = err
		}
	}
	res, err := logp.Run(cfg.Machine, body)
	if err != nil {
		return nil, nil, res, err
	}
	if failed != nil {
		return nil, nil, res, failed
	}

	// Assemble the factored matrix from each element's owner.
	q := int(math.Round(math.Sqrt(float64(P))))
	out := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			out.Set(i, j, locals[ownerOf(cfg.Layout, i, j, n, P, q)].At(i, j))
		}
	}
	return out, perms[0], res, nil
}

// ownerOf maps element (i,j) to its owning processor.
func ownerOf(l Layout, i, j, n, P, q int) int {
	switch l {
	case ColumnCyclic:
		return j % P
	case BlockedGrid:
		b := n / q
		return (i/b)*q + j/b
	case ScatteredGrid:
		return (i%q)*q + j%q
	}
	panic("lu: unknown layout")
}

// runColumn is the 1D column-cyclic elimination: the owner of column k
// searches the pivot and scales locally, then streams (pivot, multipliers)
// to everyone through the pipelined chain broadcast; row swaps are local to
// every processor (each owns full columns).
func runColumn(p *logp.Proc, cfg Config, a *Dense, locals []*Dense) ([]int, error) {
	n := a.N
	P := p.P()
	me := p.ID()
	flop := cfg.flop()

	local := a.Clone() // owned columns: j % P == me
	locals[me] = local
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}

	myCols := func(from int) int {
		c := 0
		for j := from; j < n; j++ {
			if j%P == me {
				c++
			}
		}
		return c
	}

	for k := 0; k < n-1; k++ {
		owner := k % P
		var piv int
		var mult []float64 // multipliers L[k+1..n-1][k]
		singular := false
		if me == owner {
			piv = k
			best := math.Abs(local.At(k, k))
			for i := k + 1; i < n; i++ {
				if v := math.Abs(local.At(i, k)); v > best {
					piv, best = i, v
				}
			}
			p.Compute(int64(n-k) * flop) // pivot-search compares
			if best == 0 {
				// Tell everyone before bailing out, or they block forever
				// on this step's broadcast: stream a sentinel followed by
				// padding.
				singular = true
				piv = -1
			} else {
				if piv != k {
					swapColEntries(local, k, piv, me, P, n)
				}
				pv := local.At(k, k)
				for i := k + 1; i < n; i++ {
					local.Set(i, k, local.At(i, k)/pv)
				}
				p.Compute(int64(n-k-1) * flop) // scaling divides
			}
		}
		// Stream pivot index then multipliers through the chain.
		m := 1 + (n - k - 1)
		vals := collective.PipelinedChainBroadcast(p, owner, tagPiv(k), m, func(i int) any {
			if i == 0 {
				return pivotMsg{Idx: piv}
			}
			if singular {
				return 0.0
			}
			return local.At(k+i, k)
		})
		piv = vals[0].(pivotMsg).Idx
		if piv < 0 {
			return nil, ErrSingular
		}
		mult = make([]float64, n)
		for i := 1; i < m; i++ {
			mult[k+i] = vals[i].(float64)
		}
		// Apply the row swap to owned columns (local: every processor owns
		// whole columns).
		if piv != k && me != owner {
			swapColEntries(local, k, piv, me, P, n)
		}
		if piv != k {
			perm[k], perm[piv] = perm[piv], perm[k]
			p.Compute(int64(myCols(0)) * flop)
		}
		// Rank-1 update of owned columns j > k.
		cols := myCols(k + 1)
		for j := k + 1; j < n; j++ {
			if j%P != me {
				continue
			}
			ukj := local.At(k, j)
			for i := k + 1; i < n; i++ {
				local.Set(i, j, local.At(i, j)-mult[i]*ukj)
			}
		}
		if cols > 0 {
			p.Compute(2 * int64(cols) * int64(n-k-1) * flop)
		}
	}
	if me == (n-1)%P && local.At(n-1, n-1) == 0 {
		return nil, ErrSingular
	}
	return perm, nil
}

// swapColEntries swaps rows r1 and r2 within the columns owned by processor
// me under the column-cyclic layout.
func swapColEntries(local *Dense, r1, r2, me, P, n int) {
	for j := me; j < n; j += P {
		v1, v2 := local.At(r1, j), local.At(r2, j)
		local.Set(r1, j, v2)
		local.Set(r2, j, v1)
	}
}

// runGrid is the 2D elimination on a q x q processor grid, with either
// blocked or scattered (cyclic) assignment. Each step: the q owners of
// column k search the pivot and reduce to a leader; the leader broadcasts
// the decision to everyone; the two affected processor rows exchange row
// segments; the column owners scale and broadcast multipliers along grid
// rows; the pivot-row owners broadcast U[k][j] along grid columns; everyone
// updates its owned trailing submatrix.
func runGrid(p *logp.Proc, cfg Config, a *Dense, locals []*Dense) ([]int, error) {
	n := a.N
	P := p.P()
	q := int(math.Round(math.Sqrt(float64(P))))
	me := p.ID()
	pr, pc := me/q, me%q
	flop := cfg.flop()
	blocked := cfg.Layout == BlockedGrid
	b := n / q

	rowOf := func(i int) int {
		if blocked {
			return i / b
		}
		return i % q
	}
	colOf := func(j int) int {
		if blocked {
			return j / b
		}
		return j % q
	}
	ownsRow := func(i int) bool { return rowOf(i) == pr }
	ownsCol := func(j int) bool { return colOf(j) == pc }

	local := a.Clone()
	locals[me] = local
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}

	countRows := func(from int) int {
		c := 0
		for i := from; i < n; i++ {
			if ownsRow(i) {
				c++
			}
		}
		return c
	}
	countCols := func(from int) int {
		c := 0
		for j := from; j < n; j++ {
			if ownsCol(j) {
				c++
			}
		}
		return c
	}

	mult := make([]float64, n)
	urow := make([]float64, n)

	for k := 0; k < n-1; k++ {
		pcK := colOf(k)
		leaderRow := rowOf(k)
		leader := leaderRow*q + pcK

		// --- Pivot search over column k, rows >= k.
		var decision pivotMsg
		if pc == pcK {
			cand := pivotMsg{Idx: -1, Abs: -1}
			scanned := 0
			for i := k; i < n; i++ {
				if !ownsRow(i) {
					continue
				}
				scanned++
				raw := local.At(i, k)
				if v := math.Abs(raw); v > cand.Abs {
					cand = pivotMsg{Idx: i, Abs: v, Raw: raw}
				}
			}
			if scanned > 0 {
				p.Compute(int64(scanned) * flop)
			}
			if me == leader {
				best := cand
				for c := 0; c < q-1; c++ {
					m := p.RecvTag(tagCand(k)).Data.(pivotMsg)
					// Tie-break on lowest index to match the sequential
					// scan order exactly.
					if m.Abs > best.Abs || (m.Abs == best.Abs && m.Idx >= 0 && (best.Idx < 0 || m.Idx < best.Idx)) {
						best = m
					}
					p.Compute(flop)
				}
				if best.Abs == 0 || best.Idx < 0 {
					best = pivotMsg{Idx: -1} // sentinel: abort collectively
				}
				decision = best
			} else {
				p.Send(leader, tagCand(k), cand)
			}
		}
		// Leader broadcasts the decision (index and signed pivot value).
		d := collective.BinomialBroadcast(p, leader, tagPiv(k), decision)
		decision = d.(pivotMsg)
		piv := decision.Idx
		if piv < 0 {
			return nil, ErrSingular
		}
		if piv != k {
			perm[k], perm[piv] = perm[piv], perm[k]
		}

		// --- Row swap k <-> piv across processor rows.
		if piv != k {
			rk, rp := rowOf(k), rowOf(piv)
			if rk == rp {
				if pr == rk {
					cnt := 0
					for j := 0; j < n; j++ {
						if ownsCol(j) {
							v1, v2 := local.At(k, j), local.At(piv, j)
							local.Set(k, j, v2)
							local.Set(piv, j, v1)
							cnt++
						}
					}
					p.Compute(int64(cnt) * flop)
				}
			} else if pr == rk || pr == rp {
				// Exchange owned segments with the partner in the other
				// processor row, same grid column. I own one of the two
				// rows; after the swap my row index holds the partner's
				// old values.
				myRow := k
				partnerR := rp
				if pr == rp {
					myRow = piv
					partnerR = rk
				}
				partner := partnerR*q + pc
				for j := 0; j < n; j++ {
					if ownsCol(j) {
						p.Send(partner, tagSwap(k), entryMsg{Idx: j, Val: local.At(myRow, j)})
					}
				}
				cnt := countCols(0)
				for c := 0; c < cnt; c++ {
					m := p.RecvTag(tagSwap(k)).Data.(entryMsg)
					local.Set(myRow, m.Idx, m.Val)
				}
				p.Compute(int64(cnt) * flop)
			}
		}

		// --- Scale column k and broadcast multipliers along grid rows.
		expectMult := 0
		if pc == pcK {
			for i := k + 1; i < n; i++ {
				if !ownsRow(i) {
					continue
				}
				v := local.At(i, k) / decision.Raw
				local.Set(i, k, v)
				mult[i] = v
				for t := 1; t < q; t++ {
					p.Send(pr*q+(pc+t)%q, tagMult(k), entryMsg{Idx: i, Val: v})
				}
			}
			if c := countRows(k + 1); c > 0 {
				p.Compute(int64(c) * flop) // the divides
			}
		} else {
			expectMult = countRows(k + 1)
		}

		// --- Broadcast pivot row U[k][j>k] along grid columns.
		expectURow := 0
		if pr == leaderRow {
			for j := k + 1; j < n; j++ {
				if !ownsCol(j) {
					continue
				}
				v := local.At(k, j)
				urow[j] = v
				for t := 1; t < q; t++ {
					p.Send(((pr+t)%q)*q+pc, tagURow(k), entryMsg{Idx: j, Val: v})
				}
			}
		} else {
			expectURow = countCols(k + 1)
		}

		for c := 0; c < expectMult; c++ {
			m := p.RecvTag(tagMult(k)).Data.(entryMsg)
			mult[m.Idx] = m.Val
		}
		for c := 0; c < expectURow; c++ {
			m := p.RecvTag(tagURow(k)).Data.(entryMsg)
			urow[m.Idx] = m.Val
		}

		// --- Rank-1 update of the owned trailing submatrix.
		cnt := 0
		for i := k + 1; i < n; i++ {
			if !ownsRow(i) {
				continue
			}
			li := mult[i]
			for j := k + 1; j < n; j++ {
				if !ownsCol(j) {
					continue
				}
				local.Set(i, j, local.At(i, j)-li*urow[j])
				cnt++
			}
		}
		if cnt > 0 {
			p.Compute(2 * int64(cnt) * flop)
		}
	}
	if ownsRow(n-1) && ownsCol(n-1) && local.At(n-1, n-1) == 0 {
		return nil, ErrSingular
	}
	return perm, nil
}
