package lu

import (
	"errors"
	"math"
)

// ErrSingular reports a zero pivot column: the matrix is (numerically)
// singular.
var ErrSingular = errors.New("lu: matrix is singular")

// Factor computes the LU decomposition with partial pivoting in place:
// after return, a holds L (unit diagonal implied) below the diagonal and U
// on and above, and perm[i] gives the original row now in position i
// (PA = LU). This is the n-1 elimination-step algorithm of Section 4.2.1.
func Factor(a *Dense) (perm []int, err error) {
	n := a.N
	perm = make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	for k := 0; k < n-1; k++ {
		// Partial pivoting: the element of column k at or below the
		// diagonal with the largest absolute value (first on ties).
		piv, best := k, math.Abs(a.At(k, k))
		for i := k + 1; i < n; i++ {
			if v := math.Abs(a.At(i, k)); v > best {
				piv, best = i, v
			}
		}
		if best == 0 {
			return nil, ErrSingular
		}
		if piv != k {
			a.SwapRows(k, piv)
			perm[k], perm[piv] = perm[piv], perm[k]
		}
		// Scale column k by the pivot to form the multipliers (column k
		// of L).
		pv := a.At(k, k)
		for i := k + 1; i < n; i++ {
			a.Set(i, k, a.At(i, k)/pv)
		}
		// Rank-1 update of the trailing submatrix:
		// A[i][j] -= L[i][k] * U[k][j].
		for i := k + 1; i < n; i++ {
			lik := a.At(i, k)
			if lik == 0 {
				continue
			}
			row := a.Data[i*n:]
			prow := a.Data[k*n:]
			for j := k + 1; j < n; j++ {
				row[j] -= lik * prow[j]
			}
		}
	}
	if a.At(n-1, n-1) == 0 {
		return nil, ErrSingular
	}
	return perm, nil
}

// Solve solves Ax = b given the in-place factorization and permutation from
// Factor, by forward and back substitution.
func Solve(factored *Dense, perm []int, b []float64) []float64 {
	n := factored.N
	x := make([]float64, n)
	// Apply P and forward-substitute through L (unit diagonal).
	for i := 0; i < n; i++ {
		s := b[perm[i]]
		for j := 0; j < i; j++ {
			s -= factored.At(i, j) * x[j]
		}
		x[i] = s
	}
	// Back-substitute through U.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= factored.At(i, j) * x[j]
		}
		x[i] = s / factored.At(i, i)
	}
	return x
}

// FlopCount returns the floating-point operation count of the factorization,
// about 2n^3/3, used to express simulated times as rates.
func FlopCount(n int) int64 {
	var f int64
	for k := 0; k < n-1; k++ {
		m := int64(n - k - 1)
		f += m            // scaling divides
		f += 2 * m * m    // rank-1 update multiply-adds
		f += int64(n - k) // pivot search compares
	}
	return f
}
