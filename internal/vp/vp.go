// Package vp implements latency masking by multithreading (Section 3.2):
// one physical processor simulates several virtual processors, each issuing
// remote requests, so computation need not stall during a round trip. The
// model's claim, reproduced by this package's experiment: the technique is
// "limited by the available communication bandwidth and by the overhead
// involved in context switching", and the network can hold only ceil(L/g)
// messages per processor — so useful parallelism saturates once the request
// pipeline is full (about round-trip/g virtual processors; the paper states
// the one-way form, L/g) and throughput ceilings at the bandwidth bound
// 1/g. "Under LogP, multithreading represents a convenient technique ...
// as long as these constraints are met, rather than a fundamental
// requirement."
package vp

import (
	"fmt"

	"github.com/logp-model/logp/internal/logp"
)

// Config describes a multithreading run: processor 0 hosts the virtual
// processors; processors 1..P-1 are memory servers answering requests
// round-robin.
type Config struct {
	Machine logp.Config
	// VPs is the number of virtual processors multiplexed on processor 0.
	VPs int
	// RequestsPerVP is how many remote round trips each virtual processor
	// performs.
	RequestsPerVP int
	// WorkPerReply is the local computation a virtual processor runs after
	// each reply, before its next request.
	WorkPerReply int64
	// ContextSwitchCost models the register/cache switch between virtual
	// processors, charged on every reply dispatch. The paper notes "we do
	// not model context switching overhead" in the base model — the default
	// 0 matches that — but also that in practice the technique is limited
	// by it; set it to explore the trade-off (Section 6.3's BSP critique).
	ContextSwitchCost int64
}

// Result reports a run.
type Result struct {
	Time       int64
	Requests   int
	Throughput float64 // requests completed per cycle on the physical processor
	Stall      int64   // capacity-stall cycles at the client
}

const tagBase = 15000

// Run executes the workload and reports client throughput.
func Run(cfg Config) (Result, error) {
	if cfg.Machine.P < 2 {
		return Result{}, fmt.Errorf("vp: need at least one server processor")
	}
	if cfg.VPs < 1 || cfg.RequestsPerVP < 1 {
		return Result{}, fmt.Errorf("vp: need at least one VP and one request")
	}
	total := cfg.VPs * cfg.RequestsPerVP
	servers := cfg.Machine.P - 1

	// Each server answers its share of requests, then stops.
	perServer := make([]int, servers)
	for v := 0; v < cfg.VPs; v++ {
		perServer[v%servers] += cfg.RequestsPerVP
	}

	var clientTime, clientStall int64
	res, err := logp.Run(cfg.Machine, func(p *logp.Proc) {
		if p.ID() != 0 {
			for i := 0; i < perServer[p.ID()-1]; i++ {
				m := p.Recv()
				p.Send(0, m.Tag, nil) // echo the reply, same virtual processor tag
			}
			return
		}
		// The client: launch every virtual processor's first request, then
		// dispatch replies — each reply runs its virtual processor's work
		// and immediately issues that processor's next request, keeping
		// sends and receives interleaved.
		remaining := make([]int, cfg.VPs)
		for v := range remaining {
			remaining[v] = cfg.RequestsPerVP
		}
		for v := 0; v < cfg.VPs; v++ {
			p.Send(1+v%servers, tagBase+v, nil) // stalls at the capacity limit
		}
		for done := 0; done < total; done++ {
			m := p.Recv()
			v := m.Tag - tagBase
			if c := cfg.ContextSwitchCost; c > 0 {
				p.Compute(c)
			}
			if w := cfg.WorkPerReply; w > 0 {
				p.Compute(w)
			}
			remaining[v]--
			if remaining[v] > 0 {
				p.Send(1+v%servers, tagBase+v, nil)
			}
		}
		clientTime = p.Now()
		clientStall = p.Stats().Stall
	})
	if err != nil {
		return Result{}, err
	}
	_ = res
	out := Result{Time: clientTime, Requests: total, Stall: clientStall}
	if clientTime > 0 {
		out.Throughput = float64(total) / float64(clientTime)
	}
	return out, nil
}

// Sweep measures throughput across virtual-processor counts.
func Sweep(base Config, vps []int) ([]Result, error) {
	out := make([]Result, 0, len(vps))
	for _, v := range vps {
		cfg := base
		cfg.VPs = v
		r, err := Run(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}
