package vp

import (
	"testing"

	"github.com/logp-model/logp/internal/core"
	"github.com/logp-model/logp/internal/logp"
)

func machine(p int, l, o, g int64) logp.Config {
	return logp.Config{Params: core.Params{P: p, L: l, O: o, G: g}}
}

func TestSingleVPPaysFullRoundTrip(t *testing.T) {
	// One virtual processor is the unpipelined case: each request costs a
	// full round trip 2(2o+L) plus the work.
	m := machine(2, 20, 2, 4)
	res, err := Run(Config{Machine: m, VPs: 1, RequestsPerVP: 5, WorkPerReply: 3})
	if err != nil {
		t.Fatal(err)
	}
	perReq := 2*(2*m.Params.O+m.Params.L) + 3
	if want := int64(5) * perReq; res.Time != want {
		t.Errorf("time %d, want %d (5 x (2(2o+L)+w))", res.Time, want)
	}
	if res.Requests != 5 {
		t.Errorf("requests %d", res.Requests)
	}
}

// TestMaskingImprovesWithVPs: adding virtual processors overlaps round
// trips, raising throughput.
func TestMaskingImprovesWithVPs(t *testing.T) {
	m := machine(5, 60, 2, 4)
	results, err := Sweep(Config{Machine: m, RequestsPerVP: 20, WorkPerReply: 2}, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !(results[1].Throughput > results[0].Throughput*1.5) {
		t.Errorf("2 VPs: %.4f vs 1 VP %.4f, want a large gain", results[1].Throughput, results[0].Throughput)
	}
	if !(results[2].Throughput > results[1].Throughput) {
		t.Errorf("4 VPs: %.4f not above 2 VPs %.4f", results[2].Throughput, results[1].Throughput)
	}
}

// TestGapLimitsVPs: the Section 3.2 bound, in round-trip form. A virtual
// processor is stalled for a full round trip 2(2o+L) per request, and the
// client can issue at most one request per gap g; so useful parallelism
// saturates at about RTT/g virtual processors (the paper states the
// one-way form, L/g), and the throughput ceiling is the bandwidth bound
// 1/g — more virtual processors buy nothing.
func TestGapLimitsVPs(t *testing.T) {
	m := machine(9, 64, 1, 8)
	rtt := 2 * m.Params.PointToPoint()
	vstar := int(rtt/m.Params.SendInterval()) + 1
	results, err := Sweep(Config{Machine: m, RequestsPerVP: 30, WorkPerReply: 1},
		[]int{vstar, 2 * vstar, 4 * vstar})
	if err != nil {
		t.Fatal(err)
	}
	atStar, at2, at4 := results[0].Throughput, results[1].Throughput, results[2].Throughput
	if at2 > atStar*1.15 || at4 > atStar*1.15 {
		t.Errorf("throughput kept rising past RTT/g VPs: %.4f -> %.4f -> %.4f", atStar, at2, at4)
	}
	ceiling := 1 / float64(m.Params.SendInterval())
	if atStar < ceiling*0.8 || atStar > ceiling*1.01 {
		t.Errorf("saturated throughput %.4f, want about the bandwidth bound 1/g = %.4f", atStar, ceiling)
	}
}

// TestContextSwitchCostErodesGains: with a high switch cost the technique
// loses its benefit — the practical limitation the paper raises against
// PRAM-style excess parallel slackness (Section 6.3).
func TestContextSwitchCostErodesGains(t *testing.T) {
	m := machine(5, 60, 2, 4)
	free, err := Run(Config{Machine: m, VPs: 8, RequestsPerVP: 20, WorkPerReply: 2})
	if err != nil {
		t.Fatal(err)
	}
	costly, err := Run(Config{Machine: m, VPs: 8, RequestsPerVP: 20, WorkPerReply: 2, ContextSwitchCost: 50})
	if err != nil {
		t.Fatal(err)
	}
	if costly.Throughput >= free.Throughput*0.8 {
		t.Errorf("50-cycle context switches barely hurt: %.4f vs %.4f", costly.Throughput, free.Throughput)
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{Machine: machine(1, 10, 1, 2), VPs: 1, RequestsPerVP: 1}); err == nil {
		t.Error("no servers accepted")
	}
	if _, err := Run(Config{Machine: machine(2, 10, 1, 2), VPs: 0, RequestsPerVP: 1}); err == nil {
		t.Error("zero VPs accepted")
	}
}
