// Package network is a packet-level interconnection-network simulator used
// to ground the LogP abstraction in Section 5 of the paper: it builds the
// seven topologies of the average-distance table (Section 5.1), measures
// distances, and simulates store-and-forward packet traffic with per-link
// contention to reproduce the saturation behaviour of Section 5.3 ("there is
// typically a saturation point at which the latency increases sharply; below
// the saturation point the latency is fairly insensitive to the load").
package network

import (
	"fmt"
)

// Topology is an interconnection graph. Vertices 0..NumNodes-1 include both
// processor nodes and switches; ProcNode maps processor i to its vertex.
type Topology struct {
	Name     string
	P        int     // number of processors
	NumNodes int     // total vertices (processors + switches)
	Adj      [][]int // undirected adjacency lists, sorted
	ProcNode []int   // processor -> vertex
	// Width[u][k] is the channel multiplicity of the k-th edge of u (same
	// index as Adj[u]); fat trees have fat upper links. Nil means width 1
	// everywhere.
	Width [][]int
}

// edgeWidth returns the multiplicity of edge (u -> Adj[u][k]).
func (t *Topology) edgeWidth(u, k int) int {
	if t.Width == nil {
		return 1
	}
	return t.Width[u][k]
}

func (t *Topology) addEdge(a, b int) {
	t.Adj[a] = append(t.Adj[a], b)
	t.Adj[b] = append(t.Adj[b], a)
}

// Validate checks structural invariants.
func (t *Topology) Validate() error {
	if len(t.Adj) != t.NumNodes {
		return fmt.Errorf("network: %s: adj size %d != nodes %d", t.Name, len(t.Adj), t.NumNodes)
	}
	if len(t.ProcNode) != t.P {
		return fmt.Errorf("network: %s: %d proc mappings for P=%d", t.Name, len(t.ProcNode), t.P)
	}
	for u, ns := range t.Adj {
		for _, v := range ns {
			if v < 0 || v >= t.NumNodes {
				return fmt.Errorf("network: %s: edge %d-%d out of range", t.Name, u, v)
			}
		}
	}
	if t.Width != nil {
		for u := range t.Adj {
			if len(t.Width[u]) != len(t.Adj[u]) {
				return fmt.Errorf("network: %s: width list mismatch at node %d", t.Name, u)
			}
		}
	}
	return nil
}

// Hypercube builds a d-dimensional binary hypercube: P = 2^d processors,
// every node a processor.
func Hypercube(d int) *Topology {
	p := 1 << uint(d)
	t := &Topology{Name: fmt.Sprintf("hypercube(d=%d)", d), P: p, NumNodes: p}
	t.Adj = make([][]int, p)
	for u := 0; u < p; u++ {
		for b := 0; b < d; b++ {
			v := u ^ (1 << uint(b))
			if v > u {
				t.addEdge(u, v)
			}
		}
	}
	t.ProcNode = identity(p)
	return t
}

// Mesh2D builds a w x h mesh (wrap=false) or torus (wrap=true).
func Mesh2D(w, h int, wrap bool) *Topology {
	name := "2d-mesh"
	if wrap {
		name = "2d-torus"
	}
	p := w * h
	t := &Topology{Name: fmt.Sprintf("%s(%dx%d)", name, w, h), P: p, NumNodes: p}
	t.Adj = make([][]int, p)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				t.addEdge(id(x, y), id(x+1, y))
			} else if wrap && w > 2 {
				t.addEdge(id(x, y), id(0, y))
			}
			if y+1 < h {
				t.addEdge(id(x, y), id(x, y+1))
			} else if wrap && h > 2 {
				t.addEdge(id(x, y), id(x, 0))
			}
		}
	}
	t.ProcNode = identity(p)
	return t
}

// Mesh3D builds an x*y*z mesh or torus.
func Mesh3D(x, y, z int, wrap bool) *Topology {
	name := "3d-mesh"
	if wrap {
		name = "3d-torus"
	}
	p := x * y * z
	t := &Topology{Name: fmt.Sprintf("%s(%dx%dx%d)", name, x, y, z), P: p, NumNodes: p}
	t.Adj = make([][]int, p)
	id := func(i, j, k int) int { return (k*y+j)*x + i }
	for k := 0; k < z; k++ {
		for j := 0; j < y; j++ {
			for i := 0; i < x; i++ {
				if i+1 < x {
					t.addEdge(id(i, j, k), id(i+1, j, k))
				} else if wrap && x > 2 {
					t.addEdge(id(i, j, k), id(0, j, k))
				}
				if j+1 < y {
					t.addEdge(id(i, j, k), id(i, j+1, k))
				} else if wrap && y > 2 {
					t.addEdge(id(i, j, k), id(i, 0, k))
				}
				if k+1 < z {
					t.addEdge(id(i, j, k), id(i, j, k+1))
				} else if wrap && z > 2 {
					t.addEdge(id(i, j, k), id(i, j, 0))
				}
			}
		}
	}
	t.ProcNode = identity(p)
	return t
}

// Butterfly builds a k-stage indirect butterfly: 2^k processors enter at
// column 0 and exit at column k; switch (c, r) connects straight to (c+1, r)
// and across to (c+1, r with bit k-1-c flipped). Every route crosses exactly
// k switch-to-switch links, giving the constant distance log P of the
// Section 5.1 table. Processor i is identified with its column-0 switch;
// the column-k switch of row i delivers to processor i (modelled by an extra
// zero-length identification: we expose the column-k switch as the
// destination vertex of processor i for distance purposes via exit nodes).
func Butterfly(k int) *Topology {
	p := 1 << uint(k)
	cols := k + 1
	t := &Topology{Name: fmt.Sprintf("butterfly(k=%d)", k), P: p, NumNodes: cols * p}
	t.Adj = make([][]int, t.NumNodes)
	id := func(c, r int) int { return c*p + r }
	for c := 0; c < k; c++ {
		bit := 1 << uint(k-1-c)
		for r := 0; r < p; r++ {
			t.addEdge(id(c, r), id(c+1, r))     // straight edge
			t.addEdge(id(c, r), id(c+1, r^bit)) // cross edge
		}
	}
	// Processors sit at column 0; deliveries also terminate at column k.
	// For distance and routing purposes the processor vertex is column 0;
	// a message from i to j routes from (0,i) to (k,j), then exits. We wire
	// the exit by treating column-k row j as reachable; ProcNode is the
	// entry vertex, and ExitNode(j) the exit vertex.
	t.ProcNode = identity(p)
	return t
}

// ExitNode returns the delivery vertex of processor i: distinct from the
// entry vertex only for the butterfly (column k).
func (t *Topology) ExitNode(i int) int {
	if len(t.Adj) == t.P { // direct networks
		return t.ProcNode[i]
	}
	if t.isButterfly() {
		cols := t.NumNodes / t.P
		return (cols-1)*t.P + i
	}
	return t.ProcNode[i]
}

func (t *Topology) isButterfly() bool {
	return len(t.Name) >= 9 && t.Name[:9] == "butterfly"
}

// FatTree builds a complete arity-ary fat tree with the processors at the
// leaves and levels of switches above; the channel multiplicity of a link at
// height h grows by the arity per level (a "fat" link), keeping bisection
// bandwidth constant per processor as in the CM-5's data network.
func FatTree(arity, levels int) *Topology {
	p := 1
	for i := 0; i < levels; i++ {
		p *= arity
	}
	// Vertices: leaves 0..p-1, then switches level by level.
	total := p
	levelStart := make([]int, levels+1)
	levelStart[0] = 0
	count := p
	for h := 1; h <= levels; h++ {
		count /= arity
		levelStart[h] = total
		total += count
	}
	t := &Topology{Name: fmt.Sprintf("fat-tree(%d-ary,h=%d)", arity, levels), P: p, NumNodes: total}
	t.Adj = make([][]int, total)
	t.Width = make([][]int, total)
	// Connect each node at level h-1 to its parent at level h; width of a
	// link at height h is arity^(h-1).
	nodesAt := func(h int) (start, n int) {
		if h == 0 {
			return 0, p
		}
		n = p
		for i := 0; i < h; i++ {
			n /= arity
		}
		return levelStart[h], n
	}
	for h := 1; h <= levels; h++ {
		cstart, cn := nodesAt(h - 1)
		pstart, _ := nodesAt(h)
		w := 1
		for i := 1; i < h; i++ {
			w *= arity
		}
		for c := 0; c < cn; c++ {
			child := cstart + c
			parent := pstart + c/arity
			t.Adj[child] = append(t.Adj[child], parent)
			t.Adj[parent] = append(t.Adj[parent], child)
			t.Width[child] = append(t.Width[child], w)
			t.Width[parent] = append(t.Width[parent], w)
		}
	}
	// Fill width lists for leaves' missing entries (all set above).
	for u := range t.Adj {
		if t.Width[u] == nil {
			t.Width[u] = make([]int, len(t.Adj[u]))
			for i := range t.Width[u] {
				t.Width[u][i] = 1
			}
		}
	}
	t.ProcNode = identity(p)
	return t
}

func identity(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// FailLink removes the edge between u and v (both directions), modelling a
// broken component: "operating in the presence of network faults is
// becoming extremely important as parallel machines go into production use,
// which suggests that the physical interconnect on a single system will
// vary over time to avoid broken components" (Section 2). Routing tables
// built afterwards route around it. Reports whether the edge existed.
func (t *Topology) FailLink(u, v int) bool {
	removed := false
	cut := func(a, b int) {
		for k, n := range t.Adj[a] {
			if n == b {
				t.Adj[a] = append(t.Adj[a][:k:k], t.Adj[a][k+1:]...)
				if t.Width != nil {
					t.Width[a] = append(t.Width[a][:k:k], t.Width[a][k+1:]...)
				}
				removed = true
				return
			}
		}
	}
	cut(u, v)
	cut(v, u)
	return removed
}

// Connected reports whether every processor can still reach every other.
func (t *Topology) Connected() bool {
	if t.P == 0 {
		return true
	}
	dist := t.bfs(t.ProcNode[0])
	for i := 0; i < t.P; i++ {
		if dist[t.ProcNode[i]] < 0 || dist[t.ExitNode(i)] < 0 {
			return false
		}
	}
	return true
}
