package network

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTopologyValidation(t *testing.T) {
	tops := []*Topology{
		Hypercube(4),
		Mesh2D(4, 4, false),
		Mesh2D(4, 4, true),
		Mesh3D(2, 3, 4, false),
		Mesh3D(4, 4, 4, true),
		Butterfly(3),
		FatTree(4, 3),
	}
	for _, top := range tops {
		if err := top.Validate(); err != nil {
			t.Errorf("%s: %v", top.Name, err)
		}
	}
}

func TestHypercubeAverageDistance(t *testing.T) {
	// Exact: the average Hamming distance over distinct pairs is
	// d*2^(d-1)/(2^d - 1).
	for d := 2; d <= 6; d++ {
		h := Hypercube(d)
		got := h.AverageDistance()
		want := float64(d) * float64(int(1)<<uint(d-1)) / float64(int(1)<<uint(d)-1)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("d=%d: avg distance %g, want %g", d, got, want)
		}
		if h.Diameter() != d {
			t.Errorf("d=%d: diameter %d", d, h.Diameter())
		}
	}
}

func TestButterflyConstantDistance(t *testing.T) {
	// Every processor pair is exactly k switch hops apart.
	b := Butterfly(4)
	if got := b.AverageDistance(); got != 4 {
		t.Errorf("avg distance %g, want 4", got)
	}
	if b.Diameter() != 4 {
		t.Errorf("diameter %d, want 4", b.Diameter())
	}
}

func TestMeshDistances(t *testing.T) {
	// 2D mesh k x k: the average distance over distinct processor pairs is
	// exactly 2k/3 (per-dimension mean (k^2-1)/(3k) over all pairs,
	// renormalized to exclude the zero self-pairs).
	k := 8
	m := Mesh2D(k, k, false)
	want := 2 * float64(k) / 3
	if got := m.AverageDistance(); math.Abs(got-want) > 1e-9 {
		t.Errorf("mesh avg %g, want %g", got, want)
	}
	// Torus halves it roughly: per-dim average k/4 * k/(k-1) adjustments;
	// just check the torus is strictly better and the diameter is k (two
	// dims of k/2).
	tor := Mesh2D(k, k, true)
	if tor.AverageDistance() >= m.AverageDistance() {
		t.Error("torus not better than mesh")
	}
	if tor.Diameter() != k {
		t.Errorf("torus diameter %d, want %d", tor.Diameter(), k)
	}
}

func TestFatTreeDistance(t *testing.T) {
	// 4-ary fat tree with 64 leaves: analytic average from the
	// common-ancestor argument must match BFS measurement.
	ft := FatTree(4, 3)
	want, err := AnalyticAverageDistance("fat-tree-4", 64)
	if err != nil {
		t.Fatal(err)
	}
	if got := ft.AverageDistance(); math.Abs(got-want) > 1e-9 {
		t.Errorf("fat tree avg %g, want %g", got, want)
	}
}

// TestSection51TableAt1024 reproduces the Section 5.1 table: asymptotic
// average distance formulas evaluated at P = 1024.
func TestSection51TableAt1024(t *testing.T) {
	cases := []struct {
		kind string
		want float64
		tol  float64
	}{
		{"hypercube", 5, 0.001},
		{"butterfly", 10, 0.001},
		{"fat-tree-4", 9.33, 0.02},
		{"3d-torus", 7.5, 0.1},  // 3/4 * 1024^(1/3) = 7.56; the paper prints 7.5
		{"3d-mesh", 10, 0.1},    // 1024^(1/3) = 10.08
		{"2d-torus", 16, 0.001}, // sqrt(1024)/2
		{"2d-mesh", 21, 0.4},    // 2/3*32 = 21.33; the paper prints 21
	}
	for _, c := range cases {
		got, err := AnalyticAverageDistance(c.kind, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("%s: %g, want %g (+-%g)", c.kind, got, c.want, c.tol)
		}
	}
	if _, err := AnalyticAverageDistance("ring", 1024); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestMeasuredMatchesAnalytic: BFS measurements on constructible
// configurations track the formulas.
func TestMeasuredMatchesAnalytic(t *testing.T) {
	cases := []struct {
		top  *Topology
		kind string
		p    int
		tol  float64
	}{
		{Hypercube(6), "hypercube", 64, 0.05},
		{Butterfly(6), "butterfly", 64, 0.001},
		{Mesh2D(8, 8, false), "2d-mesh", 64, 0.2},
		{Mesh2D(8, 8, true), "2d-torus", 64, 0.3},
		{Mesh3D(4, 4, 4, false), "3d-mesh", 64, 0.4},
		{Mesh3D(4, 4, 4, true), "3d-torus", 64, 0.3},
	}
	for _, c := range cases {
		want, err := AnalyticAverageDistance(c.kind, c.p)
		if err != nil {
			t.Fatal(err)
		}
		got := c.top.AverageDistance()
		if math.Abs(got-want) > want*c.tol {
			t.Errorf("%s: measured %g, formula %g", c.top.Name, got, want)
		}
	}
}

func TestRouterPaths(t *testing.T) {
	top := Mesh2D(4, 4, false)
	r := NewRouter(top)
	path := r.Path(0, 15)
	if len(path) != 7 { // manhattan distance 6
		t.Errorf("path length %d, want 7 vertices", len(path))
	}
	for i := 1; i < len(path); i++ {
		found := false
		for _, v := range top.Adj[path[i-1]] {
			if v == path[i] {
				found = true
			}
		}
		if !found {
			t.Fatalf("path uses non-edge %d-%d", path[i-1], path[i])
		}
	}
	// Butterfly route enters at column 0 and exits at column k.
	b := Butterfly(3)
	rb := NewRouter(b)
	p2 := rb.Path(2, 5)
	if len(p2) != 4 || p2[0] != 2 || p2[3] != b.ExitNode(5) {
		t.Errorf("butterfly path %v", p2)
	}
}

func TestRouterPathsProperty(t *testing.T) {
	top := Hypercube(5)
	r := NewRouter(top)
	f := func(a, b uint8) bool {
		src, dst := int(a%32), int(b%32)
		if src == dst {
			return true
		}
		path := r.Path(src, dst)
		// Shortest path in a hypercube = Hamming distance.
		want := 0
		for x := src ^ dst; x != 0; x &= x - 1 {
			want++
		}
		return len(path) == want+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRunLoadLowLoadLatency(t *testing.T) {
	// At very light load the mean latency approaches distance * routerDelay.
	top := Mesh2D(8, 8, true)
	res, err := RunLoad(top, LoadConfig{RouterDelay: 2, Load: 0.01, Pattern: UniformTraffic, Horizon: 4000, Warmup: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ideal := res.MeanDistance * 2
	if res.MeanLatency > ideal*1.25 {
		t.Errorf("light-load latency %.1f far above contention-free %.1f", res.MeanLatency, ideal)
	}
}

// TestSaturationKnee: the Section 5.3 shape. Latency is flat at low loads
// and blows up past the saturation point.
func TestSaturationKnee(t *testing.T) {
	top := Mesh2D(8, 8, false)
	loads := []float64{0.02, 0.05, 0.1, 0.2, 0.4, 0.7, 0.95}
	results, err := SaturationSweep(top, loads, LoadConfig{
		RouterDelay: 2, Pattern: UniformTraffic, Horizon: 3000, Warmup: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Flat region: latency at 0.05 within 30% of latency at 0.02.
	if results[1].MeanLatency > results[0].MeanLatency*1.3 {
		t.Errorf("below-saturation latency not flat: %.1f vs %.1f", results[1].MeanLatency, results[0].MeanLatency)
	}
	// Blow-up: latency at 0.95 at least 4x the base.
	last := results[len(results)-1]
	if last.MeanLatency < results[0].MeanLatency*4 {
		t.Errorf("no saturation blow-up: %.1f vs base %.1f", last.MeanLatency, results[0].MeanLatency)
	}
	knee := SaturationLoad(results)
	if math.IsNaN(knee) || knee <= loads[0] || knee > 0.95 {
		t.Errorf("knee = %v, want inside the sweep", knee)
	}
}

// TestHotspotSaturatesEarlier: flooding one destination saturates at a much
// lower offered load than uniform traffic — the behaviour the LogP capacity
// constraint abstracts.
func TestHotspotSaturatesEarlier(t *testing.T) {
	top := Mesh2D(8, 8, true)
	loads := []float64{0.02, 0.05, 0.1, 0.2, 0.4}
	base := LoadConfig{RouterDelay: 2, Horizon: 3000, Warmup: 500, Seed: 5}
	uni, err := SaturationSweep(top, loads, func() LoadConfig { c := base; c.Pattern = UniformTraffic; return c }())
	if err != nil {
		t.Fatal(err)
	}
	hot, err := SaturationSweep(top, loads, func() LoadConfig { c := base; c.Pattern = HotspotTraffic; return c }())
	if err != nil {
		t.Fatal(err)
	}
	if hot[len(hot)-1].MeanLatency <= uni[len(uni)-1].MeanLatency {
		t.Errorf("hotspot latency %.1f not above uniform %.1f at load 0.4",
			hot[len(hot)-1].MeanLatency, uni[len(uni)-1].MeanLatency)
	}
}

// TestFatLinksRelieveRootContention: with fat upper links the tree sustains
// uniform traffic that a skinny tree cannot.
func TestFatLinksRelieveRootContention(t *testing.T) {
	fat := FatTree(4, 3)
	skinny := FatTree(4, 3)
	skinny.Width = nil // all links single-channel
	skinny.Name = "skinny-tree"
	cfg := LoadConfig{RouterDelay: 2, Load: 0.2, Pattern: UniformTraffic, Horizon: 2000, Warmup: 400, Seed: 7}
	fr, err := RunLoad(fat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := RunLoad(skinny, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fr.MeanLatency >= sr.MeanLatency {
		t.Errorf("fat tree latency %.1f not below skinny %.1f", fr.MeanLatency, sr.MeanLatency)
	}
}

func TestRunLoadValidation(t *testing.T) {
	top := Hypercube(3)
	if _, err := RunLoad(top, LoadConfig{RouterDelay: 2, Load: 0, Horizon: 100}); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := RunLoad(top, LoadConfig{RouterDelay: 0, Load: 0.1, Horizon: 100}); err == nil {
		t.Error("zero router delay accepted")
	}
	if _, err := RunLoad(top, LoadConfig{RouterDelay: 1, Load: 0.1, Horizon: 0}); err == nil {
		t.Error("zero horizon accepted")
	}
}

func TestTransposePattern(t *testing.T) {
	top := Hypercube(4)
	res, err := RunLoad(top, LoadConfig{RouterDelay: 1, Load: 0.1, Pattern: TransposeTraffic, Horizon: 2000, Warmup: 200, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Transpose in a hypercube: distance is the popcount of P/2 xor mask
	// (here a single bit plus... actually i ^ (i+8)%16 varies); just check
	// delivery happened and latency is sane.
	if res.Delivered == 0 || res.MeanLatency <= 0 {
		t.Errorf("transpose run degenerate: %+v", res)
	}
}

func TestRunLoadDeterminism(t *testing.T) {
	top := Mesh2D(6, 6, true)
	cfg := LoadConfig{RouterDelay: 2, Load: 0.3, Pattern: UniformTraffic, Horizon: 1500, Warmup: 300, Seed: 9}
	a, err := RunLoad(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic load run: %+v vs %+v", a, b)
	}
}
