package network

import (
	"fmt"
	"math"
)

// bfs returns hop distances from src to every vertex.
func (t *Topology) bfs(src int) []int {
	dist := make([]int, t.NumNodes)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range t.Adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// AverageDistance measures the mean hop count between distinct processor
// pairs (entry vertex to exit vertex), the quantity of the Section 5.1
// table.
func (t *Topology) AverageDistance() float64 {
	var total, pairs int64
	for i := 0; i < t.P; i++ {
		dist := t.bfs(t.ProcNode[i])
		for j := 0; j < t.P; j++ {
			if i == j {
				continue
			}
			d := dist[t.ExitNode(j)]
			if d < 0 {
				return math.Inf(1) // disconnected: should not happen
			}
			total += int64(d)
			pairs++
		}
	}
	return float64(total) / float64(pairs)
}

// Diameter is the maximum processor-to-processor distance.
func (t *Topology) Diameter() int {
	max := 0
	for i := 0; i < t.P; i++ {
		dist := t.bfs(t.ProcNode[i])
		for j := 0; j < t.P; j++ {
			if i == j {
				continue
			}
			if d := dist[t.ExitNode(j)]; d > max {
				max = d
			}
		}
	}
	return max
}

// AnalyticAverageDistance returns the asymptotic formula of the Section 5.1
// table evaluated for P processors:
//
//	hypercube   log2(P)/2
//	butterfly   log2(P)
//	fat tree    numerically (the table's 9.33 at P=1024 for 4-ary)
//	3d torus    (3/4) P^(1/3)
//	3d mesh     P^(1/3)
//	2d torus    (1/2) P^(1/2)
//	2d mesh     (2/3) P^(1/2)
func AnalyticAverageDistance(kind string, p int) (float64, error) {
	fp := float64(p)
	switch kind {
	case "hypercube":
		return math.Log2(fp) / 2, nil
	case "butterfly":
		return math.Log2(fp), nil
	case "fat-tree-4":
		// A route climbs to the lowest common ancestor and back down: 2h
		// hops for an ancestor at height h. Among the p-1 other
		// processors, 4^h - 4^(h-1) share my height-h ancestor but not my
		// height-(h-1) one. Evaluates to the table's 9.33 at P=1024.
		l := int(math.Round(math.Log(fp) / math.Log(4)))
		var avg float64
		for h := 1; h <= l; h++ {
			ph := (math.Pow(4, float64(h)) - math.Pow(4, float64(h-1))) / (fp - 1)
			avg += 2 * float64(h) * ph
		}
		return avg, nil
	case "3d-torus":
		return 0.75 * math.Cbrt(fp), nil
	case "3d-mesh":
		return math.Cbrt(fp), nil
	case "2d-torus":
		return 0.5 * math.Sqrt(fp), nil
	case "2d-mesh":
		return 2.0 / 3.0 * math.Sqrt(fp), nil
	}
	return 0, fmt.Errorf("network: unknown topology kind %q", kind)
}
