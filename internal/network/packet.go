package network

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Router precomputes next-hop tables (shortest path, lowest-id tie-break)
// per destination, lazily.
type Router struct {
	t    *Topology
	next map[int][]int // dest vertex -> next-hop per vertex
	dist map[int][]int // dest vertex -> hop distances
}

// NewRouter builds a router for the topology.
func NewRouter(t *Topology) *Router {
	return &Router{t: t, next: make(map[int][]int)}
}

// NextHop returns the neighbour of u on a shortest path to vertex dst.
func (r *Router) NextHop(u, dst int) int {
	table, ok := r.next[dst]
	if !ok {
		table = r.buildTable(dst)
		r.next[dst] = table
	}
	return table[u]
}

// distTo returns (cached) hop distances of every vertex to dst.
func (r *Router) distTo(dst int) []int {
	if r.dist == nil {
		r.dist = make(map[int][]int)
	}
	d, ok := r.dist[dst]
	if !ok {
		d = r.t.bfs(dst)
		r.dist[dst] = d
	}
	return d
}

// buildTable runs a reverse BFS from dst and records, for every vertex, the
// lowest-id neighbour that is one step closer to dst.
func (r *Router) buildTable(dst int) []int {
	dist := r.t.bfs(dst)
	table := make([]int, r.t.NumNodes)
	for u := range table {
		table[u] = -1
		if u == dst || dist[u] < 0 {
			continue
		}
		for _, v := range r.t.Adj[u] { // adjacency construction order; deterministic
			if dist[v] == dist[u]-1 {
				table[u] = v
				break
			}
		}
	}
	return table
}

// Path returns the full vertex path from processor src to processor dst.
func (r *Router) Path(src, dst int) []int {
	u := r.t.ProcNode[src]
	goal := r.t.ExitNode(dst)
	path := []int{u}
	for u != goal {
		u = r.NextHop(u, goal)
		if u < 0 {
			return nil
		}
		path = append(path, u)
	}
	return path
}

// TrafficPattern generates destinations for injected packets.
type TrafficPattern int

const (
	// UniformTraffic picks a uniform random destination per packet.
	UniformTraffic TrafficPattern = iota
	// TransposeTraffic sends every packet from i to (i + P/2) mod P, a
	// fixed permutation that crosses the bisection on every packet — a
	// "bad" permutation for low-dimensional networks (Section 5.6).
	TransposeTraffic
	// HotspotTraffic sends 25% of packets to processor 0 and the rest
	// uniformly: the flooding pattern the capacity constraint discourages.
	HotspotTraffic
	// ShiftTraffic sends from i to i+1 mod P: a nearest-neighbour
	// permutation that is contention-free on meshes and tori — a "good"
	// permutation (Section 5.6).
	ShiftTraffic
	// BitReverseTraffic sends from i to bit-reverse(i): benign on some
	// topologies and adversarial on others.
	BitReverseTraffic
)

func (tp TrafficPattern) String() string {
	switch tp {
	case UniformTraffic:
		return "uniform"
	case TransposeTraffic:
		return "transpose"
	case HotspotTraffic:
		return "hotspot"
	case ShiftTraffic:
		return "shift"
	case BitReverseTraffic:
		return "bit-reverse"
	}
	return fmt.Sprintf("pattern(%d)", int(tp))
}

// LoadConfig describes one offered-load experiment.
type LoadConfig struct {
	RouterDelay int64   // r: cycles per hop (service time of a link)
	Load        float64 // packets per cycle per processor (0..1]
	Pattern     TrafficPattern
	Horizon     int64 // injection window in cycles
	Warmup      int64 // packets injected before this time are not measured
	Seed        int64
	// Adaptive routes each hop to the least-busy outgoing link among those
	// on a shortest path, instead of the fixed lowest-id choice —
	// "adaptive routing techniques are becoming increasingly practical"
	// (Section 2).
	Adaptive bool
}

// LoadResult reports one experiment.
type LoadResult struct {
	Load         float64
	MeanLatency  float64
	P99Latency   int64
	Delivered    int
	MaxQueue     int // deepest per-link backlog observed (in packets)
	Throughput   float64
	MeanDistance float64
}

// pkt is one in-flight packet: routing decisions happen hop by hop.
type pkt struct {
	inject int64
	cur    int // current vertex
	dst    int // destination (exit) vertex
	hops   int
}

// RunLoad injects packets at the configured rate and measures delivered
// latency. The network is store-and-forward with single-packet links: a
// link (channel) serves one packet per RouterDelay cycles; fat links have
// multiple channels. Queueing is FIFO per link via a channel calendar.
func RunLoad(t *Topology, cfg LoadConfig) (LoadResult, error) {
	if err := t.Validate(); err != nil {
		return LoadResult{}, err
	}
	if cfg.Load <= 0 || cfg.Load > 1 {
		return LoadResult{}, fmt.Errorf("network: load %v outside (0,1]", cfg.Load)
	}
	if cfg.RouterDelay < 1 {
		return LoadResult{}, fmt.Errorf("network: router delay %d < 1", cfg.RouterDelay)
	}
	if cfg.Horizon <= 0 {
		return LoadResult{}, fmt.Errorf("network: horizon %d", cfg.Horizon)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	router := NewRouter(t)

	// Pre-generate all packets with injection times (geometric gaps).
	var packets []*pkt
	for p := 0; p < t.P; p++ {
		tm := int64(0)
		for {
			// Geometric inter-arrival with mean 1/load.
			gap := int64(1)
			for rng.Float64() > cfg.Load {
				gap++
			}
			tm += gap
			if tm >= cfg.Horizon {
				break
			}
			dst := destination(cfg.Pattern, p, t.P, rng)
			if dst == p {
				continue
			}
			packets = append(packets, &pkt{inject: tm, cur: t.ProcNode[p], dst: t.ExitNode(dst)})
		}
	}
	// Process hops in global time order with a calendar per directed edge
	// channel. A packet at node u at time tm picks a next hop on a shortest
	// path (the lowest-id one deterministically, the least-busy one under
	// adaptive routing), departs at max(tm, earliest channel free) and
	// arrives RouterDelay later.
	type edgeKey struct{ u, v int }
	freeAt := make(map[edgeKey][]int64)
	channels := func(u, v int) []int64 {
		key := edgeKey{u, v}
		ch := freeAt[key]
		if ch == nil {
			w := 1
			for k, n := range t.Adj[u] {
				if n == v {
					w = t.edgeWidth(u, k)
					break
				}
			}
			ch = make([]int64, w)
			freeAt[key] = ch
		}
		return ch
	}
	soonestFree := func(ch []int64) int {
		best := 0
		for i := 1; i < len(ch); i++ {
			if ch[i] < ch[best] {
				best = i
			}
		}
		return best
	}
	queueDepth := make(map[edgeKey]int)

	h := &hopHeap{}
	for i, p := range packets {
		h.push(hopEvent{t: p.inject, seq: i, p: p})
	}
	var res LoadResult
	var totalLatency int64
	var latencies []int64
	var totalDist int64
	maxQ := 0
	for h.len() > 0 {
		ev := h.pop()
		p := ev.p
		if p.cur == p.dst {
			// Delivered.
			if p.inject >= cfg.Warmup {
				lat := ev.t - p.inject
				totalLatency += lat
				latencies = append(latencies, lat)
				totalDist += int64(p.hops)
				res.Delivered++
			}
			continue
		}
		dist := router.distTo(p.dst)
		if dist[p.cur] < 0 {
			return res, fmt.Errorf("network: no route from %d to %d (disconnected?)", p.cur, p.dst)
		}
		// Candidate next hops: neighbours one step closer.
		v := -1
		var vch []int64
		for _, nb := range t.Adj[p.cur] {
			if dist[nb] != dist[p.cur]-1 {
				continue
			}
			if v < 0 {
				v = nb
				vch = channels(p.cur, nb)
				if !cfg.Adaptive {
					break
				}
				continue
			}
			// Adaptive: prefer the neighbour whose link frees soonest.
			ch := channels(p.cur, nb)
			if ch[soonestFree(ch)] < vch[soonestFree(vch)] {
				v = nb
				vch = ch
			}
		}
		key := edgeKey{p.cur, v}
		best := soonestFree(vch)
		start := ev.t
		if vch[best] > start {
			start = vch[best]
			queueDepth[key]++
			if queueDepth[key] > maxQ {
				maxQ = queueDepth[key]
			}
		} else {
			queueDepth[key] = 0
		}
		vch[best] = start + cfg.RouterDelay
		p.cur = v
		p.hops++
		h.push(hopEvent{t: start + cfg.RouterDelay, seq: ev.seq, p: p})
	}
	if res.Delivered == 0 {
		return res, fmt.Errorf("network: no packets delivered (horizon too small?)")
	}
	res.Load = cfg.Load
	res.MeanLatency = float64(totalLatency) / float64(res.Delivered)
	res.MeanDistance = float64(totalDist) / float64(res.Delivered)
	res.Throughput = float64(res.Delivered) / float64(cfg.Horizon) / float64(t.P)
	res.MaxQueue = maxQ
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	res.P99Latency = latencies[int(math.Min(float64(len(latencies)-1), float64(len(latencies))*0.99))]
	return res, nil
}

func destination(p TrafficPattern, src, P int, rng *rand.Rand) int {
	switch p {
	case UniformTraffic:
		return rng.Intn(P)
	case TransposeTraffic:
		return (src + P/2) % P
	case HotspotTraffic:
		if rng.Float64() < 0.25 {
			return 0
		}
		return rng.Intn(P)
	case ShiftTraffic:
		return (src + 1) % P
	case BitReverseTraffic:
		bits := 0
		for 1<<uint(bits) < P {
			bits++
		}
		rev := 0
		for b := 0; b < bits; b++ {
			if src&(1<<uint(b)) != 0 {
				rev |= 1 << uint(bits-1-b)
			}
		}
		return rev % P
	}
	return 0
}

// SaturationSweep measures mean latency across increasing offered loads:
// the Section 5.3 curve, flat below the knee and sharply rising at
// saturation.
func SaturationSweep(t *Topology, loads []float64, base LoadConfig) ([]LoadResult, error) {
	out := make([]LoadResult, 0, len(loads))
	for _, l := range loads {
		cfg := base
		cfg.Load = l
		r, err := RunLoad(t, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// SaturationLoad estimates the knee: the lowest measured load whose mean
// latency exceeds twice the lowest-load latency.
func SaturationLoad(results []LoadResult) float64 {
	if len(results) == 0 {
		return math.NaN()
	}
	base := results[0].MeanLatency
	for _, r := range results {
		if r.MeanLatency > 2*base {
			return r.Load
		}
	}
	return math.NaN()
}

// hopEvent and hopHeap: a small binary heap keyed by (time, seq).
type hopEvent struct {
	t   int64
	seq int
	p   *pkt
}

type hopHeap struct{ ev []hopEvent }

func (h *hopHeap) len() int { return len(h.ev) }

func (h *hopHeap) less(i, j int) bool {
	if h.ev[i].t != h.ev[j].t {
		return h.ev[i].t < h.ev[j].t
	}
	return h.ev[i].seq < h.ev[j].seq
}

func (h *hopHeap) push(e hopEvent) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.less(parent, i) {
			break
		}
		h.ev[parent], h.ev[i] = h.ev[i], h.ev[parent]
		i = parent
	}
}

func (h *hopHeap) pop() hopEvent {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && h.less(l, small) {
			small = l
		}
		if r < n && h.less(r, small) {
			small = r
		}
		if small == i {
			break
		}
		h.ev[i], h.ev[small] = h.ev[small], h.ev[i]
		i = small
	}
	return top
}
