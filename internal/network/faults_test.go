package network

import (
	"math/rand"
	"testing"
)

func TestFailLinkRemovesEdge(t *testing.T) {
	h := Hypercube(4)
	if !h.FailLink(0, 1) {
		t.Fatal("edge 0-1 not found")
	}
	if h.FailLink(0, 1) {
		t.Fatal("edge removed twice")
	}
	for _, n := range h.Adj[0] {
		if n == 1 {
			t.Fatal("edge still present")
		}
	}
	if err := h.Validate(); err != nil {
		t.Fatal(err)
	}
	if !h.Connected() {
		t.Fatal("hypercube disconnected by one failure")
	}
}

// TestRoutingAroundFaults: Section 2 — the interconnect "will vary over
// time to avoid broken components". With a few failed links the hypercube
// stays connected, distances grow only slightly, and traffic still flows.
func TestRoutingAroundFaults(t *testing.T) {
	h := Hypercube(5) // 80 edges
	base := h.AverageDistance()
	rng := rand.New(rand.NewSource(4))
	failed := 0
	for failed < 6 {
		u := rng.Intn(32)
		if len(h.Adj[u]) <= 1 {
			continue
		}
		v := h.Adj[u][rng.Intn(len(h.Adj[u]))]
		if h.FailLink(u, v) {
			failed++
		}
	}
	if !h.Connected() {
		t.Fatal("6 failures disconnected a 5-cube (unlucky seed; pick another)")
	}
	after := h.AverageDistance()
	if after < base {
		t.Errorf("distance decreased after failures: %g -> %g", base, after)
	}
	if after > base*1.3 {
		t.Errorf("distance grew too much: %g -> %g", base, after)
	}
	res, err := RunLoad(h, LoadConfig{RouterDelay: 2, Load: 0.1, Pattern: UniformTraffic, Horizon: 2000, Warmup: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered == 0 {
		t.Error("no traffic delivered over the degraded network")
	}
}

func TestDisconnectedNetworkReportsError(t *testing.T) {
	// A 2-node "mesh" with its only link cut.
	m := Mesh2D(2, 1, false)
	if !m.FailLink(0, 1) {
		t.Fatal("edge missing")
	}
	if m.Connected() {
		t.Fatal("still connected")
	}
	if _, err := RunLoad(m, LoadConfig{RouterDelay: 1, Load: 0.5, Pattern: UniformTraffic, Horizon: 100, Seed: 1}); err == nil {
		t.Error("routing over a disconnected network did not error")
	}
}

// TestAdaptiveRoutingRelievesContention: on a mesh under load, the
// deterministic lowest-id routing sends every packet along the same
// dimension-ordered path, piling onto popular links; adaptive routing
// spreads packets across the equal-length diagonal alternatives and cuts
// latency. (Patterns with no path diversity, like a pure column shift, gain
// nothing — adaptivity needs alternatives to choose between.)
func TestAdaptiveRoutingRelievesContention(t *testing.T) {
	cfg := LoadConfig{RouterDelay: 2, Load: 0.3, Pattern: UniformTraffic, Horizon: 3000, Warmup: 500, Seed: 6}
	top := Mesh2D(8, 8, false)
	det, err := RunLoad(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adaptive = true
	ad, err := RunLoad(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ad.MeanLatency >= det.MeanLatency {
		t.Errorf("adaptive %.1f not below deterministic %.1f", ad.MeanLatency, det.MeanLatency)
	}
	// Adaptive routing still uses shortest paths only.
	if ad.MeanDistance > det.MeanDistance+1e-9 {
		t.Errorf("adaptive lengthened routes: %.2f vs %.2f", ad.MeanDistance, det.MeanDistance)
	}
}

// TestAdaptiveNoWorseAtLightLoad: with no contention both policies route
// minimally, so latency matches.
func TestAdaptiveNoWorseAtLightLoad(t *testing.T) {
	cfg := LoadConfig{RouterDelay: 2, Load: 0.02, Pattern: UniformTraffic, Horizon: 3000, Warmup: 500, Seed: 8}
	top := Mesh2D(6, 6, true)
	det, err := RunLoad(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Adaptive = true
	ad, err := RunLoad(top, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ad.MeanLatency > det.MeanLatency*1.1 {
		t.Errorf("adaptive hurt light load: %.2f vs %.2f", ad.MeanLatency, det.MeanLatency)
	}
}
