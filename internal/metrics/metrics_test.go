package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge %d, want 4", g.Value())
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	h := NewHistogram(10, 20, 40)
	for _, v := range []int64{1, 5, 10, 11, 20, 39, 100} {
		h.Observe(v)
	}
	wantCounts := []int64{3, 2, 1, 1} // (..10], (10..20], (20..40], overflow
	for i, c := range h.Counts() {
		if c != wantCounts[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, wantCounts[i])
		}
	}
	if h.Count() != 7 || h.Sum() != 186 || h.Min() != 1 || h.Max() != 100 {
		t.Errorf("count %d sum %d min %d max %d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	qs := h.Quantiles(0.5)
	if qs[0] < 5 || qs[0] > 20 {
		t.Errorf("p50 estimate %v outside sane range", qs[0])
	}
	// A boundless histogram (overflow bucket only) still counts but has no
	// bound to interpolate toward: quantiles are NaN, not a panic.
	b := NewHistogram()
	b.Observe(3)
	if q := b.Quantiles(0.5); !math.IsNaN(q[0]) {
		t.Errorf("boundless histogram p50 = %v, want NaN", q[0])
	}
}

func TestHistogramBadBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-ascending bounds accepted")
		}
	}()
	NewHistogram(5, 5)
}

func TestRegistryBeginResets(t *testing.T) {
	r := NewRegistry()
	r.Begin(3, 4, 0)
	if r.Every() != DefaultEvery {
		t.Errorf("default interval %d", r.Every())
	}
	r.OnSend(0, 1)
	r.OnSend(0, 1)
	r.OnDeliver(1, 12)
	r.OnRecv(1)
	r.OnStall(0, 9)
	r.OnDrop(2)
	r.OnDup(2)
	r.Rel[0].Retransmits.Inc()
	r.AddSample(Sample{Time: 5, InFlightFrom: make([]int32, 3), InFlightTo: []int32{0, 4, 0},
		InboxDepth: make([]int32, 3), StallCycles: make([]int64, 3), Utilization: make([]float64, 3)})

	if r.Procs[0].Sends.Value() != 2 || r.Link(0, 1).Value() != 2 {
		t.Error("send accounting wrong")
	}
	if r.DeliveredTotal() != 1 || r.TotalStallCycles() != 9 {
		t.Error("totals wrong")
	}
	if r.PinnedInFraction(1) != 1 || r.PinnedInFraction(0) != 0 {
		t.Errorf("pinned fractions %v %v", r.PinnedInFraction(1), r.PinnedInFraction(0))
	}
	if r.MaxInFlightTo(1) != 4 {
		t.Errorf("max in-flight %d", r.MaxInFlightTo(1))
	}

	r.Begin(3, 4, 64)
	if r.Procs[0].Sends.Value() != 0 || r.Link(0, 1).Value() != 0 ||
		r.Rel[0].Retransmits.Value() != 0 || len(r.Samples) != 0 ||
		r.FlightCycles.Count() != 0 {
		t.Error("Begin did not reset")
	}
	if r.Every() != 64 {
		t.Errorf("interval %d, want 64", r.Every())
	}
}

// populated builds a small deterministic registry for the format tests.
func populated() *Registry {
	r := NewRegistry()
	r.Begin(2, 3, 16)
	r.OnSend(0, 1)
	r.OnSend(1, 0)
	r.OnDeliver(1, 6)
	r.OnDeliver(0, 6)
	r.OnRecv(1)
	r.OnRecv(0)
	r.OnStall(0, 5)
	r.SetSimTime(42)
	r.AddSample(Sample{Time: 16, InFlightFrom: []int32{1, 0}, InFlightTo: []int32{0, 1},
		InboxDepth: []int32{0, 1}, StallCycles: []int64{5, 0}, Delivered: 1, Utilization: []float64{0.5, 0.25}})
	return r
}

func TestWritePrometheusFormat(t *testing.T) {
	var b bytes.Buffer
	if err := WritePrometheus(&b, populated().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE logp_sends_total counter",
		`logp_sends_total{proc="0"} 1`,
		`logp_link_messages_total{from="0",to="1"} 1`,
		"logp_sim_time_cycles 42",
		"logp_capacity_ceiling 3",
		`logp_flight_cycles_bucket{le="+Inf"} 2`,
		"logp_flight_cycles_count 2",
		"logp_flight_cycles_sum 12",
		`logp_capacity_stall_cycles_total{proc="0"} 5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "logp_reliable_") {
		t.Error("reliable families exported with no reliable traffic")
	}
}

func TestWritePrometheusReliableFamilies(t *testing.T) {
	r := populated()
	r.Rel[1].Retransmits.Inc()
	var b bytes.Buffer
	if err := WritePrometheus(&b, r.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `logp_reliable_retransmits_total{proc="1"} 1`) {
		t.Errorf("missing reliable family:\n%s", b.String())
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var b bytes.Buffer
	if err := WriteJSON(&b, populated().Snapshot()); err != nil {
		t.Fatal(err)
	}
	var got Snapshot
	if err := json.Unmarshal(b.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(got.Families) == 0 || len(got.Samples) != 1 {
		t.Errorf("families %d samples %d", len(got.Families), len(got.Samples))
	}
	if got.Samples[0].Time != 16 || got.Samples[0].Delivered != 1 {
		t.Errorf("sample %+v", got.Samples[0])
	}
}

func TestWriteCSVSections(t *testing.T) {
	var b bytes.Buffer
	if err := WriteCSV(&b, populated().Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "metric,labels,value\n") {
		t.Errorf("missing header:\n%s", out)
	}
	for _, want := range []string{
		"logp_sends_total,proc=0,1",
		"logp_flight_cycles_count,,2",
		"time,delivered,in_flight_from_max,in_flight_to_max,inbox_depth_max,stall_cycles_total,utilization_mean",
		"16,1,1,1,1,5,0.3750",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("csv missing %q:\n%s", want, out)
		}
	}
}

func TestFmtValue(t *testing.T) {
	if fmtValue(3) != "3" || fmtValue(3.5) != "3.5" || fmtValue(-2) != "-2" {
		t.Errorf("fmtValue: %s %s %s", fmtValue(3), fmtValue(3.5), fmtValue(-2))
	}
	if v := fmtValue(math.Inf(1)); v != "+Inf" {
		t.Errorf("inf renders %q", v)
	}
}

func TestPinnedFractionEdgeCases(t *testing.T) {
	r := NewRegistry()
	r.Begin(1, 0, 8) // capacity disabled
	if r.PinnedInFraction(0) != 0 {
		t.Error("disabled capacity should report 0")
	}
	r.Begin(1, 2, 8) // no samples
	if r.PinnedInFraction(0) != 0 {
		t.Error("no samples should report 0")
	}
}
