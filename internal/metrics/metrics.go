// Package metrics is the live observability layer of the simulated LogP
// machine: an always-on, allocation-free (when detached) telemetry surface
// that exposes, while a run is in flight, exactly the quantities the paper
// reasons about post-hoc — messages sent and delivered per processor and
// per link, cycles lost to the ceil(L/g) capacity constraint, in-flight
// counts against that ceiling, and inbox queue depths.
//
// Where internal/prof records the full causal DAG of a run (heavyweight,
// replayable), metrics keeps only monotonic counters, gauges and
// fixed-bucket histograms, plus a sim-time sampler that snapshots the
// machine state every few cycles into a time series. Attachment follows the
// profiler's pattern: every hook in the machine sits behind a nil check
// (logp.Config.Metrics), so the metrics-off hot path stays zero-allocation
// per message.
//
// All times and intervals are simulated cycles, never wall time: the
// telemetry describes the modeled machine, and sampling on the simulated
// clock keeps runs bit-reproducible at any host speed.
//
// Snapshots export as Prometheus text exposition, JSON, or CSV (export.go).
package metrics

import "github.com/logp-model/logp/internal/stats"

// DefaultEvery is the sampling interval, in simulated cycles, used when a
// registry is attached without an explicit interval.
const DefaultEvery = 256

// Counter is a monotonically increasing event count. The zero value is
// ready to use. Like the machine itself, counters assume the
// single-threaded simulation kernel and are not safe for concurrent use.
type Counter struct{ v int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n (n must be >= 0 to keep the counter monotonic).
func (c *Counter) Add(n int64) { c.v += n }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous level that can move both ways.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(v int64) { g.v = v }

// Add moves the level by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value reports the current level.
func (g *Gauge) Value() int64 { return g.v }

// Histogram counts observations into fixed buckets chosen at construction.
// Bounds are inclusive upper bounds; one implicit overflow bucket catches
// everything above the last bound. Observing never allocates.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1; trailing overflow bucket
	sum    int64
	n      int64
	min    int64
	max    int64
}

// NewHistogram builds a histogram with the given ascending bucket bounds.
func NewHistogram(bounds ...int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Sum reports the total of all observations.
func (h *Histogram) Sum() int64 { return h.sum }

// Min and Max report the observed extremes (0 with no observations).
func (h *Histogram) Min() int64 { return h.min }

// Max reports the largest observation (0 with no observations).
func (h *Histogram) Max() int64 { return h.max }

// Bounds returns the bucket upper bounds (read-only).
func (h *Histogram) Bounds() []int64 { return h.bounds }

// Counts returns the per-bucket counts including the overflow bucket
// (read-only).
func (h *Histogram) Counts() []int64 { return h.counts }

// Quantiles estimates the given quantiles by linear interpolation inside
// the winning bucket, delegating the percentile math to internal/stats.
func (h *Histogram) Quantiles(qs ...float64) []float64 {
	bounds := make([]float64, len(h.bounds))
	for i, b := range h.bounds {
		bounds[i] = float64(b)
	}
	return stats.HistogramQuantiles(bounds, h.counts, qs)
}

// Merge folds another histogram with identical bounds into this one. All
// histogram state (bucket counts, sum, count, extremes) is commutative, so
// merging per-shard scratch histograms in any fixed order yields the same
// result as observing every value on one histogram — which is what keeps a
// sharded engine's exported metrics bit-identical to a sequential run.
func (h *Histogram) Merge(o *Histogram) {
	if len(o.bounds) != len(h.bounds) {
		panic("metrics: merging histograms with different bounds")
	}
	for i, b := range o.bounds {
		if h.bounds[i] != b {
			panic("metrics: merging histograms with different bounds")
		}
	}
	if o.n == 0 {
		return
	}
	for i, c := range o.counts {
		h.counts[i] += c
	}
	h.sum += o.sum
	if h.n == 0 || o.min < h.min {
		h.min = o.min
	}
	if h.n == 0 || o.max > h.max {
		h.max = o.max
	}
	h.n += o.n
}

// reset clears the histogram for reuse across runs.
func (h *Histogram) reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.sum, h.n, h.min, h.max = 0, 0, 0, 0
}

// ProcMetrics aggregates one processor's live counters. In paper terms:
// Sends and Recvs count o-cycle overhead events, StallCycles is time lost
// to the ceil(L/g) capacity constraint of Section 3, Delivered counts
// arrivals at this processor's module, and Dropped/Duplicated count the
// fault layer's interventions on messages addressed here.
type ProcMetrics struct {
	Sends       Counter // message initiations (Send and SendBulk trains)
	Recvs       Counter // completed receptions
	Delivered   Counter // messages landed in this processor's inbox
	Dropped     Counter // messages to this processor lost by the fault layer
	Duplicated  Counter // network-made extra copies delivered here
	StallEvents Counter // sends that hit the capacity constraint
	StallCycles Counter // cycles spent stalled on the capacity constraint
}

// ReliableMetrics aggregates one processor's reliable-protocol counters
// (internal/reliable): the cost of recovering the paper's "all messages are
// delivered reliably" assumption, in protocol events.
type ReliableMetrics struct {
	DataSends   Counter // first-attempt data frames
	Retransmits Counter // timeout-driven re-sends
	AcksSent    Counter // positive acknowledgements transmitted
	AcksRecv    Counter // acknowledgements received
	DedupHits   Counter // duplicate data frames suppressed by sequence number
	Timeouts    Counter // ack waits that expired
	DeadPeers   Counter // peers declared dead after exhausting the retry budget
}

// Sample is one point of the sim-time series: a snapshot of the machine's
// live state taken every SampleEvery cycles. Per-processor slices have one
// entry per processor.
type Sample struct {
	// Time is the simulated cycle the sample was taken at.
	Time int64 `json:"time"`
	// InFlightFrom / InFlightTo are the messages currently in transit from /
	// to each processor; both are bounded by the ceil(L/g) ceiling when the
	// capacity constraint is enabled.
	InFlightFrom []int32 `json:"in_flight_from"`
	InFlightTo   []int32 `json:"in_flight_to"`
	// InboxDepth is the number of arrived, unreceived messages per inbox.
	InboxDepth []int32 `json:"inbox_depth"`
	// StallCycles is the cumulative per-processor capacity-stall time.
	StallCycles []int64 `json:"stall_cycles"`
	// Delivered is the cumulative machine-wide delivered message count.
	Delivered int64 `json:"delivered"`
	// Utilization is each processor's busy fraction (compute + overheads +
	// stall) over the interval since the previous sample.
	Utilization []float64 `json:"utilization"`
}

// Registry is one machine run's metric set. Attach it via
// logp.Config.Metrics; the machine calls Begin when it is built, the hook
// methods on its hot paths, and AddSample from the cycle-interval sampler.
// A Registry is reset by Begin, so it can be reused across sequential runs
// (like prof.Recorder, it reflects the latest run). It is not safe for
// concurrent use.
type Registry struct {
	p        int
	capacity int
	every    int64
	simTime  int64

	Procs []ProcMetrics
	Rel   []ReliableMetrics
	link  []Counter // p*p traffic matrix, message count from i to j

	// FlightCycles observes each delivered message's network flight time;
	// under faults this includes degradation jitter beyond L.
	FlightCycles *Histogram
	// StallCyclesHist observes the length of each capacity stall.
	StallCyclesHist *Histogram

	Samples []Sample
}

// NewRegistry returns an empty registry; Begin sizes it for a machine.
func NewRegistry() *Registry { return &Registry{} }

// Begin resets the registry for a run on a machine with p processors, a
// capacity ceiling of cap messages in transit (0 if the constraint is
// disabled), and the given sampling interval in cycles (<= 0 takes
// DefaultEvery). The machine calls it when it is built.
func (r *Registry) Begin(p, capacity int, every int64) {
	if every <= 0 {
		every = DefaultEvery
	}
	r.p, r.capacity, r.every, r.simTime = p, capacity, every, 0
	if cap(r.Procs) >= p {
		r.Procs = r.Procs[:p]
		clear(r.Procs)
	} else {
		r.Procs = make([]ProcMetrics, p)
	}
	if cap(r.Rel) >= p {
		r.Rel = r.Rel[:p]
		clear(r.Rel)
	} else {
		r.Rel = make([]ReliableMetrics, p)
	}
	if cap(r.link) >= p*p {
		r.link = r.link[:p*p]
		clear(r.link)
	} else {
		r.link = make([]Counter, p*p)
	}
	if r.FlightCycles == nil {
		// Powers of two cover both tiny figure machines (L=6) and the
		// calibrated CM-5 scale (L=200) without configuration.
		r.FlightCycles = NewHistogram(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
		r.StallCyclesHist = NewHistogram(2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)
	} else {
		r.FlightCycles.reset()
		r.StallCyclesHist.reset()
	}
	r.Samples = r.Samples[:0]
}

// P reports the processor count the registry was sized for.
func (r *Registry) P() int { return r.p }

// Capacity reports the machine's ceil(L/g) in-transit ceiling (0 when the
// constraint was disabled).
func (r *Registry) Capacity() int { return r.capacity }

// Every reports the sampling interval in cycles.
func (r *Registry) Every() int64 { return r.every }

// SimTime reports the run's final simulated time (set by the machine at the
// end of the run).
func (r *Registry) SimTime() int64 { return r.simTime }

// SetSimTime records the run's final simulated time.
func (r *Registry) SetSimTime(t int64) { r.simTime = t }

// Link returns the traffic-matrix counter for the directed from→to link.
func (r *Registry) Link(from, to int) *Counter { return &r.link[from*r.p+to] }

// OnSend records a message initiation on the from→to link.
func (r *Registry) OnSend(from, to int) {
	r.Procs[from].Sends.Inc()
	r.link[from*r.p+to].Inc()
}

// OnStall records a capacity stall of d cycles at proc.
func (r *Registry) OnStall(proc int, d int64) {
	pm := &r.Procs[proc]
	pm.StallEvents.Inc()
	pm.StallCycles.Add(d)
	r.StallCyclesHist.Observe(d)
}

// OnDeliver records a message arriving at processor to after flight cycles
// in the network.
func (r *Registry) OnDeliver(to int, flight int64) {
	r.Procs[to].Delivered.Inc()
	r.FlightCycles.Observe(flight)
}

// OnDrop records a message to processor to lost by the fault layer.
func (r *Registry) OnDrop(to int) { r.Procs[to].Dropped.Inc() }

// OnDup records a network-made duplicate delivered to processor to.
func (r *Registry) OnDup(to int) { r.Procs[to].Duplicated.Inc() }

// OnRecv records a completed reception at proc.
func (r *Registry) OnRecv(proc int) { r.Procs[proc].Recvs.Inc() }

// AddSample appends one time-series point.
func (r *Registry) AddSample(s Sample) { r.Samples = append(r.Samples, s) }

// DeliveredTotal sums delivered messages across processors.
func (r *Registry) DeliveredTotal() int64 {
	var n int64
	for i := range r.Procs {
		n += r.Procs[i].Delivered.Value()
	}
	return n
}

// TotalStallCycles sums capacity-stall cycles across processors.
func (r *Registry) TotalStallCycles() int64 {
	var n int64
	for i := range r.Procs {
		n += r.Procs[i].StallCycles.Value()
	}
	return n
}

// PinnedInFraction reports the fraction of samples in which the in-flight
// count toward proc sat at the capacity ceiling — the signature of a
// saturated link in the paper's Section 3 argument. It returns 0 when the
// constraint was disabled or nothing was sampled.
func (r *Registry) PinnedInFraction(proc int) float64 {
	if r.capacity == 0 || len(r.Samples) == 0 {
		return 0
	}
	pinned := 0
	for _, s := range r.Samples {
		if int(s.InFlightTo[proc]) >= r.capacity {
			pinned++
		}
	}
	return float64(pinned) / float64(len(r.Samples))
}

// MaxInFlightTo reports the largest sampled in-flight count toward proc.
func (r *Registry) MaxInFlightTo(proc int) int {
	m := int32(0)
	for _, s := range r.Samples {
		if s.InFlightTo[proc] > m {
			m = s.InFlightTo[proc]
		}
	}
	return int(m)
}
