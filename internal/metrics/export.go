package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strings"
)

// Export model. A Snapshot is an ordered, format-independent view of a
// metric set: Registry.Snapshot builds one from a machine run, and other
// producers (the experiment runner's wall-time telemetry) can assemble one
// by hand. The three writers render the same Snapshot as Prometheus text
// exposition, JSON, or CSV, so every consumer sees identical numbers.

// Label is one name="value" pair attached to a point.
type Label struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// HistogramSnapshot is an export-ready histogram: per-bucket counts plus
// the summary quantiles (estimated via internal/stats).
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"` // len(Bounds)+1, trailing overflow bucket
	Sum    int64   `json:"sum"`
	Count  int64   `json:"count"`
	Min    int64   `json:"min"`
	Max    int64   `json:"max"`
	P50    float64 `json:"p50"`
	P90    float64 `json:"p90"`
	P99    float64 `json:"p99"`
}

// Point is one labeled value of a family. Histogram families set Hist and
// leave Value at zero.
type Point struct {
	Labels []Label            `json:"labels,omitempty"`
	Value  float64            `json:"value"`
	Hist   *HistogramSnapshot `json:"histogram,omitempty"`
}

// Family is one named metric with its typed points.
type Family struct {
	Name   string  `json:"name"`
	Help   string  `json:"help"`
	Kind   string  `json:"kind"` // "counter", "gauge" or "histogram"
	Points []Point `json:"points"`
}

// Snapshot is a full export: the metric families in a deterministic order,
// plus the sampler's time series.
type Snapshot struct {
	Families []Family `json:"families"`
	Samples  []Sample `json:"samples,omitempty"`
}

// histSnapshot freezes a histogram for export. Quantiles of an empty
// histogram are left at zero rather than NaN so the snapshot stays
// JSON-encodable.
func histSnapshot(h *Histogram) *HistogramSnapshot {
	s := &HistogramSnapshot{
		Bounds: append([]int64(nil), h.Bounds()...),
		Counts: append([]int64(nil), h.Counts()...),
		Sum:    h.Sum(), Count: h.Count(), Min: h.Min(), Max: h.Max(),
	}
	if s.Count > 0 {
		qs := h.Quantiles(0.5, 0.9, 0.99)
		s.P50, s.P90, s.P99 = qs[0], qs[1], qs[2]
	}
	return s
}

// HistSnapshot freezes a histogram for export: the exported form of the
// snapshot builder, for producers that assemble a Snapshot by hand (the
// daemon's wall-clock telemetry in internal/obs).
func HistSnapshot(h *Histogram) *HistogramSnapshot { return histSnapshot(h) }

// procLabel builds the {proc="i"} label set.
func procLabel(i int) []Label { return []Label{{Name: "proc", Value: fmt.Sprintf("%d", i)}} }

// Snapshot freezes the registry's current state for export. Families are
// emitted in a fixed order and points in processor / link order, so two
// identical runs export byte-identical snapshots (the golden-test
// property). Reliable-layer families appear only when the protocol ran.
func (r *Registry) Snapshot() Snapshot {
	var fams []Family
	gauge := func(name, help string, v float64) {
		fams = append(fams, Family{Name: name, Help: help, Kind: "gauge", Points: []Point{{Value: v}}})
	}
	gauge("logp_sim_time_cycles", "Final simulated time of the run.", float64(r.simTime))
	gauge("logp_capacity_ceiling", "The ceil(L/g) in-transit bound (0 = constraint disabled).", float64(r.capacity))
	gauge("logp_sample_interval_cycles", "Sampling interval of the time series.", float64(r.every))

	perProc := func(name, help string, get func(pm *ProcMetrics) int64) {
		f := Family{Name: name, Help: help, Kind: "counter"}
		for i := range r.Procs {
			f.Points = append(f.Points, Point{Labels: procLabel(i), Value: float64(get(&r.Procs[i]))})
		}
		fams = append(fams, f)
	}
	perProc("logp_sends_total", "Message initiations per processor.", func(pm *ProcMetrics) int64 { return pm.Sends.Value() })
	perProc("logp_recvs_total", "Completed receptions per processor.", func(pm *ProcMetrics) int64 { return pm.Recvs.Value() })
	perProc("logp_delivered_total", "Messages arrived at each processor's inbox.", func(pm *ProcMetrics) int64 { return pm.Delivered.Value() })
	perProc("logp_dropped_total", "Messages to each processor lost by the fault layer.", func(pm *ProcMetrics) int64 { return pm.Dropped.Value() })
	perProc("logp_duplicated_total", "Network-made duplicate copies delivered per processor.", func(pm *ProcMetrics) int64 { return pm.Duplicated.Value() })
	perProc("logp_capacity_stall_events_total", "Sends that hit the capacity constraint.", func(pm *ProcMetrics) int64 { return pm.StallEvents.Value() })
	perProc("logp_capacity_stall_cycles_total", "Cycles lost to the capacity constraint.", func(pm *ProcMetrics) int64 { return pm.StallCycles.Value() })

	link := Family{Name: "logp_link_messages_total", Help: "Traffic matrix: messages initiated per directed link.", Kind: "counter"}
	for from := 0; from < r.p; from++ {
		for to := 0; to < r.p; to++ {
			if v := r.link[from*r.p+to].Value(); v != 0 {
				link.Points = append(link.Points, Point{
					Labels: []Label{{Name: "from", Value: fmt.Sprintf("%d", from)}, {Name: "to", Value: fmt.Sprintf("%d", to)}},
					Value:  float64(v),
				})
			}
		}
	}
	fams = append(fams, link)

	fams = append(fams,
		Family{Name: "logp_flight_cycles", Help: "Network flight time per delivered message.", Kind: "histogram",
			Points: []Point{{Hist: histSnapshot(r.FlightCycles)}}},
		Family{Name: "logp_capacity_stall_cycles", Help: "Length of each capacity stall.", Kind: "histogram",
			Points: []Point{{Hist: histSnapshot(r.StallCyclesHist)}}},
	)

	if r.reliableActive() {
		perRel := func(name, help string, get func(rm *ReliableMetrics) int64) {
			f := Family{Name: name, Help: help, Kind: "counter"}
			for i := range r.Rel {
				f.Points = append(f.Points, Point{Labels: procLabel(i), Value: float64(get(&r.Rel[i]))})
			}
			fams = append(fams, f)
		}
		perRel("logp_reliable_data_sends_total", "First-attempt reliable data frames.", func(rm *ReliableMetrics) int64 { return rm.DataSends.Value() })
		perRel("logp_reliable_retransmits_total", "Timeout-driven retransmissions.", func(rm *ReliableMetrics) int64 { return rm.Retransmits.Value() })
		perRel("logp_reliable_acks_sent_total", "Acknowledgements transmitted.", func(rm *ReliableMetrics) int64 { return rm.AcksSent.Value() })
		perRel("logp_reliable_acks_recv_total", "Acknowledgements received.", func(rm *ReliableMetrics) int64 { return rm.AcksRecv.Value() })
		perRel("logp_reliable_dedup_hits_total", "Duplicate data frames suppressed.", func(rm *ReliableMetrics) int64 { return rm.DedupHits.Value() })
		perRel("logp_reliable_timeouts_total", "Ack waits that expired.", func(rm *ReliableMetrics) int64 { return rm.Timeouts.Value() })
		perRel("logp_reliable_dead_peers_total", "Peers declared dead.", func(rm *ReliableMetrics) int64 { return rm.DeadPeers.Value() })
	}

	return Snapshot{Families: fams, Samples: r.Samples}
}

// reliableActive reports whether any reliable-layer counter moved.
func (r *Registry) reliableActive() bool {
	for i := range r.Rel {
		rm := &r.Rel[i]
		if rm.DataSends.Value() != 0 || rm.AcksSent.Value() != 0 || rm.AcksRecv.Value() != 0 ||
			rm.Retransmits.Value() != 0 || rm.DedupHits.Value() != 0 || rm.Timeouts.Value() != 0 ||
			rm.DeadPeers.Value() != 0 {
			return true
		}
	}
	return false
}

// fmtValue renders a float without trailing noise: integers print as
// integers (the common case for counters), everything else as %g.
func fmtValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// promLabels renders {a="x",b="y"} (empty string for no labels).
func promLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Name, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE headers, counter and gauge
// samples, and histograms as cumulative _bucket{le=...} series with _sum
// and _count. The time series is not included — Prometheus scrapes are
// point-in-time; use the CSV or JSON writers for the sampled series.
func WritePrometheus(w io.Writer, s Snapshot) error {
	for _, f := range s.Families {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.Name, f.Help, f.Name, f.Kind); err != nil {
			return err
		}
		for _, p := range f.Points {
			if f.Kind == "histogram" && p.Hist != nil {
				var cum int64
				for i, b := range p.Hist.Bounds {
					cum += p.Hist.Counts[i]
					if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.Name,
						promLabels(p.Labels, Label{Name: "le", Value: fmtValue(float64(b))}), cum); err != nil {
						return err
					}
				}
				cum += p.Hist.Counts[len(p.Hist.Counts)-1]
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n%s_sum%s %d\n%s_count%s %d\n",
					f.Name, promLabels(p.Labels, Label{Name: "le", Value: "+Inf"}), cum,
					f.Name, promLabels(p.Labels), p.Hist.Sum,
					f.Name, promLabels(p.Labels), p.Hist.Count); err != nil {
					return err
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s%s %s\n", f.Name, promLabels(p.Labels), fmtValue(p.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteJSON renders the full snapshot — families and the sampled time
// series — as indented JSON.
func WriteJSON(w io.Writer, s Snapshot) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteCSV renders the snapshot as two CSV sections separated by a blank
// line: a "metric,labels,value" table of every counter and gauge (plus
// histogram summary rows), then the sampled time series with per-processor
// state aggregated per row.
func WriteCSV(w io.Writer, s Snapshot) error {
	if _, err := fmt.Fprintln(w, "metric,labels,value"); err != nil {
		return err
	}
	labelStr := func(labels []Label) string {
		parts := make([]string, len(labels))
		for i, l := range labels {
			parts[i] = l.Name + "=" + l.Value
		}
		return strings.Join(parts, " ")
	}
	for _, f := range s.Families {
		for _, p := range f.Points {
			if f.Kind == "histogram" && p.Hist != nil {
				h := p.Hist
				rows := []struct {
					suffix string
					v      float64
				}{
					{"_count", float64(h.Count)}, {"_sum", float64(h.Sum)},
					{"_min", float64(h.Min)}, {"_max", float64(h.Max)},
					{"_p50", h.P50}, {"_p90", h.P90}, {"_p99", h.P99},
				}
				for _, row := range rows {
					if _, err := fmt.Fprintf(w, "%s%s,%s,%s\n", f.Name, row.suffix, labelStr(p.Labels), fmtValue(row.v)); err != nil {
						return err
					}
				}
				continue
			}
			if _, err := fmt.Fprintf(w, "%s,%s,%s\n", f.Name, labelStr(p.Labels), fmtValue(p.Value)); err != nil {
				return err
			}
		}
	}
	if len(s.Samples) == 0 {
		return nil
	}
	if _, err := fmt.Fprintln(w, "\ntime,delivered,in_flight_from_max,in_flight_to_max,inbox_depth_max,stall_cycles_total,utilization_mean"); err != nil {
		return err
	}
	for _, sm := range s.Samples {
		maxOf := func(xs []int32) int32 {
			var m int32
			for _, x := range xs {
				if x > m {
					m = x
				}
			}
			return m
		}
		var stall int64
		for _, c := range sm.StallCycles {
			stall += c
		}
		var util float64
		for _, u := range sm.Utilization {
			util += u
		}
		if n := len(sm.Utilization); n > 0 {
			util /= float64(n)
		}
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%d,%.4f\n",
			sm.Time, sm.Delivered, maxOf(sm.InFlightFrom), maxOf(sm.InFlightTo),
			maxOf(sm.InboxDepth), stall, util); err != nil {
			return err
		}
	}
	return nil
}
