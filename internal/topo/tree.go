package topo

import (
	"fmt"

	"github.com/logp-model/logp/internal/core"
)

// EvalBroadcast predicts the completion of a broadcast tree under the
// model's per-link costs: the tree is the Sends/root structure of a
// core.BroadcastSchedule (the At times are ignored — senders retransmit as
// fast as their links allow, which is what progs.Broadcast executes), and
// the returned slice gives each processor's RecvDone time — fully received,
// including its receive overhead — with the overall finish as the maximum.
//
// The walk reproduces the machine's cost rules exactly for a tree workload
// with the capacity constraint off: a processor's first send initiates the
// instant its own reception completes, consecutive initiations space by the
// max(o, g) of the link just used, and a message over link (i, j) lands
// 2o+L of that link after its initiation. Every processor receives exactly
// once, so reception gaps never bind. The hiertree experiment pins this
// prediction against simulation.
func EvalBroadcast(m Model, root int, sends [][]core.SendEvent) ([]int64, int64) {
	recvDone, finish, _ := evalBroadcast(m, root, sends, false)
	return recvDone, finish
}

// evalBroadcast is EvalBroadcast, optionally recording each send's
// initiation time into the At fields (used by TierAwareBroadcast to emit a
// fully-timed schedule).
func evalBroadcast(m Model, root int, sends [][]core.SendEvent, setAt bool) ([]int64, int64, [][]core.SendEvent) {
	recvDone := make([]int64, len(sends))
	for i := range recvDone {
		recvDone[i] = -1
	}
	recvDone[root] = 0
	var finish int64
	queue := []int{root}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		next := recvDone[p] // earliest next initiation at p
		for i, se := range sends[p] {
			lk := m.Link(p, se.Child)
			initiation := next
			if setAt {
				sends[p][i].At = initiation
			}
			next = initiation + lk.Interval()
			done := initiation + 2*lk.O + lk.L
			recvDone[se.Child] = done
			if done > finish {
				finish = done
			}
			queue = append(queue, se.Child)
		}
	}
	return recvDone, finish, sends
}

// TierAwareBroadcast composes a broadcast tree that exploits a two-tier
// machine: an optimal broadcast over one leader per node using the cluster
// (base) parameters, then an optimal broadcast within each node using the
// node link, rooted at its leader. Leaders forward across the cluster first
// and fan out locally after — the long links are the critical path, so they
// get the early send slots. The returned schedule carries the composed tree
// with At/RecvDone/Finish evaluated under the TwoTier model, and runs on any
// machine via progs.NewBroadcast.
//
// This is the schedule the flat model cannot express: OptimalBroadcast fits
// one (L, o, g) and its greedy construction assigns children with no notion
// of locality, so most of its edges cross nodes. Once the tiers diverge
// enough, the composed tree strictly beats it — the hiertree experiment
// measures the crossover.
func TierAwareBroadcast(base core.Params, procsPerNode int, node Link, root int) (*core.BroadcastSchedule, error) {
	m, err := TwoTier(base, procsPerNode, node)
	if err != nil {
		return nil, err
	}
	if root < 0 || root >= base.P {
		return nil, fmt.Errorf("topo: broadcast root %d outside [0, P=%d)", root, base.P)
	}
	ppn := procsPerNode
	numNodes := (base.P + ppn - 1) / ppn
	rootNode := root / ppn
	leader := func(k int) int {
		if k == rootNode {
			return root
		}
		return k * ppn
	}

	clusterSched, err := core.OptimalBroadcast(base.WithP(numNodes), rootNode)
	if err != nil {
		return nil, err
	}

	sends := make([][]core.SendEvent, base.P)
	parent := make([]int, base.P)
	for i := range parent {
		parent[i] = -1
	}
	// Leader tier first: each leader's cluster sends precede its node sends.
	for k := 0; k < numNodes; k++ {
		for _, se := range clusterSched.Sends[k] {
			sends[leader(k)] = append(sends[leader(k)], core.SendEvent{Child: leader(se.Child)})
			parent[leader(se.Child)] = leader(k)
		}
	}
	nodeParams := core.Params{L: node.L, O: node.O, G: node.G}
	for k := 0; k < numNodes; k++ {
		lo := k * ppn
		sz := ppn
		if lo+sz > base.P {
			sz = base.P - lo
		}
		if sz == 1 {
			continue
		}
		nodeSched, err := core.OptimalBroadcast(nodeParams.WithP(sz), leader(k)-lo)
		if err != nil {
			return nil, err
		}
		for i := 0; i < sz; i++ {
			for _, se := range nodeSched.Sends[i] {
				sends[lo+i] = append(sends[lo+i], core.SendEvent{Child: lo + se.Child})
				parent[lo+se.Child] = lo + i
			}
		}
	}

	recvDone, finish, sends := evalBroadcast(m, root, sends, true)
	return &core.BroadcastSchedule{
		Params:   base,
		Root:     root,
		Parent:   parent,
		RecvDone: recvDone,
		Sends:    sends,
		Finish:   finish,
	}, nil
}
